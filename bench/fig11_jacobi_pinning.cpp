// Figure 11: performance of the optimized 3D Jacobi smoother versus linear
// problem size on a dual-socket Nehalem EP node (2.66 GHz), in MLUPS.
//
// Three series, as in the paper:
//   * wavefront 1x4            — one thread group of four, pinned to the
//                                physical cores of one socket (circles)
//   * wavefront 1x4, 2/socket  — the same group split across both sockets:
//                                "hazardous for performance" (squares)
//   * threaded (NT stores)     — the baseline without temporal blocking
//                                (triangles)
#include <cstdio>

#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/jacobi.hpp"

namespace {

using namespace likwid;

double measure(workloads::JacobiVariant variant, const std::vector<int>& cpus,
               int n) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  workloads::JacobiConfig cfg;
  cfg.n = n;
  // One wavefront pass (4 coupled time steps) vs. 2 plain sweeps: the
  // steady-state rates are sweep-count independent, this only bounds the
  // simulation cost.
  cfg.sweeps = variant == workloads::JacobiVariant::kWavefront ? 4 : 2;
  cfg.variant = variant;
  workloads::JacobiStencil jacobi(cfg);
  workloads::Placement p;
  p.cpus = cpus;
  for (const int c : cpus) kernel.scheduler().add_busy(c, 1);
  const double t = run_workload(kernel, jacobi, p);
  return jacobi.mlups(t);
}

}  // namespace

int main() {
  std::printf(
      "# Fig. 11: optimized 3D Jacobi smoother vs. problem size, Nehalem EP\n"
      "# paper: wavefront 1x4 on one socket ~1300+ MLUPS; split 2 per\n"
      "# socket loses a factor of ~2 and falls below the threaded baseline\n"
      "# (~1000 MLUPS with NT stores)\n");
  std::printf("%6s %18s %22s %18s\n", "size", "wavefront-1x4",
              "wavefront-2-per-socket", "threaded-NT");
  const std::vector<int> one_socket = {0, 1, 2, 3};
  const std::vector<int> split = {0, 1, 4, 5};
  for (int n = 50; n <= 400; n += 50) {
    const double wf = measure(workloads::JacobiVariant::kWavefront,
                              one_socket, n);
    const double bad = measure(workloads::JacobiVariant::kWavefront, split,
                               n);
    const double base = measure(workloads::JacobiVariant::kThreadedNT,
                                one_socket, n);
    std::printf("%6d %18.0f %22.0f %18.0f\n", n, wf, bad, base);
    std::fflush(stdout);
  }
  return 0;
}
