// Micro harness for the interned counter pipeline: how fast can the suite
// evaluate every derived metric of its event groups for every measured cpu
// — the per-sample hot loop of timeline mode and the likwid-agent daemon?
//
// Four paths over identical inputs:
//   map_parse_eval  the seed implementation: every sample re-parses each
//                   group formula into a shared_ptr AST and evaluates it
//                   against a freshly built std::map<std::string,double>
//                   per (metric, cpu) — exactly what compute_metrics_for()
//                   did before the interned pipeline.
//   map_eval        the obvious first fix: ASTs parsed once up front, but
//                   evaluation still walks the tree and hashes every
//                   variable through a string map built per (sample, cpu).
//   compiled        the scalar interned pipeline: CompiledMetric postfix
//                   programs bound to register slots, counts in a dense
//                   CountSlab, evaluated row-at-a-time through
//                   PerfCtr::compute_metrics_for().
//   batched         the fused struct-of-arrays engine: the set's
//                   BatchProgram evaluated across all cpu rows at once
//                   into a reusable MetricBatch
//                   (PerfCtr::compute_metrics_batched) — zero allocations
//                   per sample after warm-up, measured here through the
//                   counting allocator hook and gated on exactly 0.
//
// Emits a human-readable table and a machine-readable
// BENCH_metric_pipeline.json (CI runs `--smoke` so the bench, the JSON
// schema, the >= 3x batched-over-compiled bar, the bit-equality check and
// the zero-allocation gate cannot bit-rot). Pass `--out FILE` to relocate
// the JSON.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_program.hpp"
#include "core/metric_expr.hpp"
#include "core/perfctr.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/alloc_hook.hpp"

namespace {

using namespace likwid;

struct PathResult {
  std::string name;
  double seconds = 0;
  double ops_per_s = 0;       ///< group-evaluations (samples) per second
  double allocs_per_op = -1;  ///< heap allocations per sample (-1: not measured)
  double bytes_per_op = -1;   ///< heap bytes per sample (-1: not measured)
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything the three paths need about one configured event set.
struct SetFixture {
  int set = 0;
  std::vector<std::string> event_names;  ///< slot order
  std::vector<core::GroupMetric> metrics;
  core::CountSlab counts;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_metric_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }
  const int samples = smoke ? 200 : 20'000;

  // One Westmere EP socket measured with the two groups the monitoring
  // stack rotates by default — the realistic per-sample evaluation load.
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  ossim::SimKernel kernel(machine);
  const std::vector<int> cpus = {0, 1, 2, 3, 4, 5};
  core::PerfCtr ctr(kernel, cpus);
  const std::vector<std::string> groups = {"MEM", "FLOPS_DP"};
  for (const auto& g : groups) ctr.add_group(g);

  const double clock_hz = ctr.clock_hz();
  const double interval = 0.05;  // wall seconds per sample
  std::vector<SetFixture> sets;
  for (int set = 0; set < ctr.num_event_sets(); ++set) {
    SetFixture f;
    f.set = set;
    for (const auto& a : ctr.assignments_of(set)) {
      f.event_names.push_back(a.event_name);
    }
    f.metrics = ctr.group_of(set)->metrics;
    // Deterministic nonzero counts so every formula path (including the
    // cycles-derived runtime) does real arithmetic.
    f.counts = ctr.make_slab(set);
    for (std::size_t r = 0; r < cpus.size(); ++r) {
      const std::span<double> row = f.counts.row(r);
      for (std::size_t s = 0; s < row.size(); ++s) {
        row[s] = 1e6 + 1e5 * static_cast<double>(r + 1) *
                           static_cast<double>(s + 1);
      }
    }
    sets.push_back(std::move(f));
  }

  double sink = 0;  // defeats dead-code elimination across paths

  // --- path 1: the seed hot loop (parse + string-map AST evaluation) ------
  const auto run_map_parse = [&](bool reparse) {
    for (const SetFixture& f : sets) {
      std::vector<core::MetricExpr> parsed;
      if (!reparse) {
        for (const auto& m : f.metrics) {
          parsed.push_back(core::MetricExpr::parse(m.formula));
        }
      }
      for (std::size_t m = 0; m < f.metrics.size(); ++m) {
        std::optional<core::MetricExpr> scratch;
        if (reparse) scratch = core::MetricExpr::parse(f.metrics[m].formula);
        const core::MetricExpr& expr = reparse ? *scratch : parsed[m];
        for (std::size_t r = 0; r < cpus.size(); ++r) {
          std::map<std::string, double> vars;
          const std::span<const double> row = f.counts.row(r);
          for (std::size_t s = 0; s < f.event_names.size(); ++s) {
            vars[f.event_names[s]] = row[s];
          }
          vars["time"] = interval;
          vars["clock"] = clock_hz;
          sink += expr.evaluate(vars);
        }
      }
    }
  };

  // --- path 3: the scalar interned pipeline --------------------------------
  const auto run_compiled = [&]() {
    for (const SetFixture& f : sets) {
      const auto rows = ctr.compute_metrics_for(f.set, f.counts, interval,
                                                /*wall_time=*/true);
      for (const auto& row : rows) {
        for (const double v : row.values) sink += v;
      }
    }
  };

  // --- path 4: the fused struct-of-arrays engine ---------------------------
  // One reusable MetricBatch per set — the steady-state shape of the
  // sampling loop, allocation-free after the first refill.
  std::vector<core::MetricBatch> batches(sets.size());
  const auto run_batched = [&]() {
    for (std::size_t i = 0; i < sets.size(); ++i) {
      const SetFixture& f = sets[i];
      ctr.compute_metrics_batched(f.set, f.counts, batches[i], interval,
                                  /*wall_time=*/true);
      for (const double v : batches[i].mutable_values()) sink += v;
    }
  };

  const auto timed = [&](const std::string& name, int iters,
                         const auto& body) {
    const double t0 = now_seconds();
    for (int s = 0; s < iters; ++s) body();
    PathResult r;
    r.name = name;
    r.seconds = now_seconds() - t0;
    r.ops_per_s = static_cast<double>(iters) / r.seconds;
    return r;
  };

  // Heap traffic per sample through the counting allocator (this binary
  // links likwid_alloc_hook). One warm-up call first: the batched path's
  // contract is zero allocations in the STEADY state.
  const auto measure_allocs = [&](PathResult& r, const auto& body) {
    body();
    const util::AllocCounts before = util::alloc_counts();
    constexpr int kOps = 64;
    for (int s = 0; s < kOps; ++s) body();
    const util::AllocCounts after = util::alloc_counts();
    r.allocs_per_op =
        static_cast<double>(after.allocations - before.allocations) / kOps;
    r.bytes_per_op = static_cast<double>(after.bytes - before.bytes) / kOps;
  };

  std::printf("==================== micro_metric_pipeline ====================\n");
  std::printf("# per-sample evaluation of %zu groups x %zu cpus (%s mode)\n",
              sets.size(), cpus.size(), smoke ? "smoke" : "full");
  // The fast paths run 100x more iterations: at batched speed the map
  // paths' sample count finishes in microseconds, far below timer noise.
  const int iters_fast = samples * 100;
  const PathResult map_parse =
      timed("map_parse_eval", samples, [&] { run_map_parse(true); });
  const PathResult map_eval =
      timed("map_eval", samples, [&] { run_map_parse(false); });
  PathResult compiled = timed("compiled", iters_fast, run_compiled);
  PathResult batched = timed("batched", iters_fast, run_batched);
  measure_allocs(compiled, run_compiled);
  measure_allocs(batched, run_batched);

  // The batched engine must be a pure optimization: bit-equal to the
  // scalar interpreter on the bench fixture, per metric per cpu.
  bool bit_equal = true;
  for (const SetFixture& f : sets) {
    const auto scalar_rows = ctr.compute_metrics_for(f.set, f.counts,
                                                     interval, true);
    core::MetricBatch check;
    ctr.compute_metrics_batched(f.set, f.counts, check, interval, true);
    for (std::size_t m = 0; m < scalar_rows.size(); ++m) {
      for (std::size_t r = 0; r < cpus.size(); ++r) {
        if (std::bit_cast<std::uint64_t>(scalar_rows[m].values[r]) !=
            std::bit_cast<std::uint64_t>(check.values(m)[r])) {
          bit_equal = false;
        }
      }
    }
  }

  const double speedup_parse = compiled.ops_per_s / map_parse.ops_per_s;
  const double speedup_eval = compiled.ops_per_s / map_eval.ops_per_s;
  const double speedup_batched = batched.ops_per_s / compiled.ops_per_s;
  const PathResult* all_paths[] = {&map_parse, &map_eval, &compiled,
                                   &batched};
  for (const PathResult* r : all_paths) {
    std::printf("  %-16s %12.0f samples/s  (%8.3f ms total)",
                r->name.c_str(), r->ops_per_s, r->seconds * 1e3);
    if (r->allocs_per_op >= 0) {
      std::printf("  %6.1f allocs/op  %8.0f B/op", r->allocs_per_op,
                  r->bytes_per_op);
    }
    std::printf("\n");
  }
  std::printf("  speedup compiled vs map_parse_eval: %.1fx\n", speedup_parse);
  std::printf("  speedup compiled vs map_eval:       %.1fx\n", speedup_eval);
  std::printf("  speedup batched  vs compiled:       %.1fx\n", speedup_batched);
  std::printf("  batched bit-equal to compiled:      %s\n",
              bit_equal ? "yes" : "NO");
  std::printf("  (sink %g)\n", sink);

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"metric_pipeline\",\n"
       << "  \"machine\": \"westmere-ep\",\n"
       << "  \"groups\": [\"MEM\", \"FLOPS_DP\"],\n"
       << "  \"cpus\": " << cpus.size() << ",\n"
       << "  \"samples\": " << samples << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": "
       << (std::thread::hardware_concurrency() == 0
               ? 1
               : static_cast<int>(std::thread::hardware_concurrency()))
       << ",\n"
       << "  \"paths\": {\n";
  bool first = true;
  for (const PathResult* r : all_paths) {
    if (!first) json << ",\n";
    first = false;
    json << "    \"" << r->name << "\": {\"ops_per_s\": " << r->ops_per_s
         << ", \"seconds\": " << r->seconds;
    if (r->allocs_per_op >= 0) {
      json << ", \"allocs_per_op\": " << r->allocs_per_op
           << ", \"bytes_per_op\": " << r->bytes_per_op;
    }
    json << "}";
  }
  json << "\n  },\n"
       << "  \"speedup_compiled_vs_map_parse_eval\": " << speedup_parse
       << ",\n"
       << "  \"speedup_compiled_vs_map_eval\": " << speedup_eval << ",\n"
       << "  \"speedup_batched_vs_compiled\": " << speedup_batched << ",\n"
       << "  \"batched_bit_equal\": " << (bit_equal ? "true" : "false")
       << "\n"
       << "}\n";
  json.close();
  std::printf("JSON written to %s\n", out_path.c_str());

  // The acceptance bars, failed loudly so CI catches regressions: the
  // interned pipeline >= 5x over the seed's map path (PR 3), the fused
  // batched engine >= 3x over the scalar interned pipeline with bit-equal
  // output and ZERO steady-state allocations (PR 10).
  if (speedup_parse < 5.0) {
    std::fprintf(stderr,
                 "FAIL: compiled path only %.2fx over the map-based path "
                 "(need >= 5x)\n",
                 speedup_parse);
    return 1;
  }
  if (speedup_batched < 3.0) {
    std::fprintf(stderr,
                 "FAIL: batched path only %.2fx over the compiled path "
                 "(need >= 3x)\n",
                 speedup_batched);
    return 1;
  }
  if (!bit_equal) {
    std::fprintf(stderr,
                 "FAIL: batched output is not bit-equal to the scalar "
                 "interpreter\n");
    return 1;
  }
  if (batched.allocs_per_op != 0.0) {
    std::fprintf(stderr,
                 "FAIL: batched path allocates %.2f times per sample in "
                 "steady state (need exactly 0)\n",
                 batched.allocs_per_op);
    return 1;
  }
  return 0;
}
