// Micro harness for the interned counter pipeline: how fast can the suite
// evaluate every derived metric of its event groups for every measured cpu
// — the per-sample hot loop of timeline mode and the likwid-agent daemon?
//
// Three paths over identical inputs:
//   map_parse_eval  the seed implementation: every sample re-parses each
//                   group formula into a shared_ptr AST and evaluates it
//                   against a freshly built std::map<std::string,double>
//                   per (metric, cpu) — exactly what compute_metrics_for()
//                   did before the interned pipeline.
//   map_eval        the obvious first fix: ASTs parsed once up front, but
//                   evaluation still walks the tree and hashes every
//                   variable through a string map built per (sample, cpu).
//   compiled        the current pipeline: CompiledMetric postfix programs
//                   bound to register slots, counts in a dense CountSlab,
//                   evaluated through PerfCtr::compute_metrics_for().
//
// Emits a human-readable table and a machine-readable
// BENCH_metric_pipeline.json (CI runs `--smoke` so the bench and the JSON
// schema cannot bit-rot). Pass `--out FILE` to relocate the JSON.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/metric_expr.hpp"
#include "core/perfctr.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"

namespace {

using namespace likwid;

struct PathResult {
  std::string name;
  double seconds = 0;
  double ops_per_s = 0;  ///< group-evaluations (samples) per second
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything the three paths need about one configured event set.
struct SetFixture {
  int set = 0;
  std::vector<std::string> event_names;  ///< slot order
  std::vector<core::GroupMetric> metrics;
  core::CountSlab counts;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_metric_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }
  const int samples = smoke ? 200 : 20'000;

  // One Westmere EP socket measured with the two groups the monitoring
  // stack rotates by default — the realistic per-sample evaluation load.
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  ossim::SimKernel kernel(machine);
  const std::vector<int> cpus = {0, 1, 2, 3, 4, 5};
  core::PerfCtr ctr(kernel, cpus);
  const std::vector<std::string> groups = {"MEM", "FLOPS_DP"};
  for (const auto& g : groups) ctr.add_group(g);

  const double clock_hz = ctr.clock_hz();
  const double interval = 0.05;  // wall seconds per sample
  std::vector<SetFixture> sets;
  for (int set = 0; set < ctr.num_event_sets(); ++set) {
    SetFixture f;
    f.set = set;
    for (const auto& a : ctr.assignments_of(set)) {
      f.event_names.push_back(a.event_name);
    }
    f.metrics = ctr.group_of(set)->metrics;
    // Deterministic nonzero counts so every formula path (including the
    // cycles-derived runtime) does real arithmetic.
    f.counts = ctr.make_slab(set);
    for (std::size_t r = 0; r < cpus.size(); ++r) {
      const std::span<double> row = f.counts.row(r);
      for (std::size_t s = 0; s < row.size(); ++s) {
        row[s] = 1e6 + 1e5 * static_cast<double>(r + 1) *
                           static_cast<double>(s + 1);
      }
    }
    sets.push_back(std::move(f));
  }

  double sink = 0;  // defeats dead-code elimination across paths

  // --- path 1: the seed hot loop (parse + string-map AST evaluation) ------
  const auto run_map_parse = [&](bool reparse) {
    for (const SetFixture& f : sets) {
      std::vector<core::MetricExpr> parsed;
      if (!reparse) {
        for (const auto& m : f.metrics) {
          parsed.push_back(core::MetricExpr::parse(m.formula));
        }
      }
      for (std::size_t m = 0; m < f.metrics.size(); ++m) {
        std::optional<core::MetricExpr> scratch;
        if (reparse) scratch = core::MetricExpr::parse(f.metrics[m].formula);
        const core::MetricExpr& expr = reparse ? *scratch : parsed[m];
        for (std::size_t r = 0; r < cpus.size(); ++r) {
          std::map<std::string, double> vars;
          const std::span<const double> row = f.counts.row(r);
          for (std::size_t s = 0; s < f.event_names.size(); ++s) {
            vars[f.event_names[s]] = row[s];
          }
          vars["time"] = interval;
          vars["clock"] = clock_hz;
          sink += expr.evaluate(vars);
        }
      }
    }
  };

  // --- path 3: the interned pipeline --------------------------------------
  const auto run_compiled = [&]() {
    for (const SetFixture& f : sets) {
      const auto rows = ctr.compute_metrics_for(f.set, f.counts, interval,
                                                /*wall_time=*/true);
      for (const auto& row : rows) {
        for (const double v : row.values) sink += v;
      }
    }
  };

  const auto timed = [&](const std::string& name, const auto& body) {
    const double t0 = now_seconds();
    for (int s = 0; s < samples; ++s) body();
    PathResult r;
    r.name = name;
    r.seconds = now_seconds() - t0;
    r.ops_per_s = static_cast<double>(samples) / r.seconds;
    return r;
  };

  std::printf("==================== micro_metric_pipeline ====================\n");
  std::printf("# per-sample evaluation of %zu groups x %zu cpus (%s mode)\n",
              sets.size(), cpus.size(), smoke ? "smoke" : "full");
  const PathResult map_parse =
      timed("map_parse_eval", [&] { run_map_parse(true); });
  const PathResult map_eval =
      timed("map_eval", [&] { run_map_parse(false); });
  const PathResult compiled = timed("compiled", run_compiled);

  const double speedup_parse = compiled.ops_per_s / map_parse.ops_per_s;
  const double speedup_eval = compiled.ops_per_s / map_eval.ops_per_s;
  for (const PathResult* r : {&map_parse, &map_eval, &compiled}) {
    std::printf("  %-16s %12.0f samples/s  (%8.3f ms total)\n",
                r->name.c_str(), r->ops_per_s, r->seconds * 1e3);
  }
  std::printf("  speedup compiled vs map_parse_eval: %.1fx\n", speedup_parse);
  std::printf("  speedup compiled vs map_eval:       %.1fx\n", speedup_eval);
  std::printf("  (sink %g)\n", sink);

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"metric_pipeline\",\n"
       << "  \"machine\": \"westmere-ep\",\n"
       << "  \"groups\": [\"MEM\", \"FLOPS_DP\"],\n"
       << "  \"cpus\": " << cpus.size() << ",\n"
       << "  \"samples\": " << samples << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": "
       << (std::thread::hardware_concurrency() == 0
               ? 1
               : static_cast<int>(std::thread::hardware_concurrency()))
       << ",\n"
       << "  \"paths\": {\n";
  bool first = true;
  for (const PathResult* r : {&map_parse, &map_eval, &compiled}) {
    if (!first) json << ",\n";
    first = false;
    json << "    \"" << r->name << "\": {\"ops_per_s\": " << r->ops_per_s
         << ", \"seconds\": " << r->seconds << "}";
  }
  json << "\n  },\n"
       << "  \"speedup_compiled_vs_map_parse_eval\": " << speedup_parse
       << ",\n"
       << "  \"speedup_compiled_vs_map_eval\": " << speedup_eval << "\n"
       << "}\n";
  json.close();
  std::printf("JSON written to %s\n", out_path.c_str());

  // The ISSUE's acceptance bar: the interned pipeline must beat the seed's
  // map-based path at least 5x. Fail loudly so CI catches regressions.
  if (speedup_parse < 5.0) {
    std::fprintf(stderr,
                 "FAIL: compiled path only %.2fx over the map-based path "
                 "(need >= 5x)\n",
                 speedup_parse);
    return 1;
  }
  return 0;
}
