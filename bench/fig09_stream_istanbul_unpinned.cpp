// Figure 9: STREAM triad, icc binary, dual-socket AMD Istanbul, unpinned.
// Large variance but, without SMT, no strong dependence on thread count.
#include "bench_common.hpp"

int main() {
  using namespace likwid;
  bench::run_stream_figure(
      "Fig. 9: STREAM triad bandwidth [MB/s], icc, AMD Istanbul, unpinned",
      "large variance at every thread count; no SMT means less "
      "oversubscription sensitivity than Westmere",
      hwsim::presets::amd_istanbul(), bench::PinMode::kNone,
      workloads::OpenMpImpl::kIntel, workloads::icc_profile());
  return 0;
}
