// Ablation: counter multiplexing accuracy. The paper: "If the number of
// events is larger than the number of available counters ... likwid-perfCtr
// also supports a multiplexing mode ... On the downside, short-running
// measurements will then carry large statistical errors."
//
// A two-phase workload (flop-heavy first half, flop-free second half) is
// measured with two multiplexed groups. With many fine-grained rotation
// quanta each set samples both phases and the extrapolation converges; with
// few coarse quanta a set may only ever see one phase, giving errors up to
// 2x — exactly the effect the paper warns about.
#include <cstdio>

#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/stream.hpp"

namespace {

using namespace likwid;

double measured_flops_error(int quanta) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  core::PerfCtr ctr(kernel, {0});
  // Three multiplexed sets over a two-phase workload: set-to-phase
  // alignment depends on the rotation granularity.
  ctr.add_group("FLOPS_DP");
  ctr.add_group("BRANCH");
  ctr.add_group("L2");

  // Phase A: vectorized triad (flops). Phase B: same traffic, no flops
  // (a copy kernel modeled with a flop-free compiler profile).
  workloads::StreamConfig a;
  a.array_length = 8'000'000;
  a.repetitions = 1;
  workloads::StreamConfig b = a;
  b.compiler.triad_cycles_per_iter = a.compiler.triad_cycles_per_iter;
  b.compiler.vectorized = true;
  workloads::StreamTriad phase_a(a);
  workloads::StreamTriad phase_b(b);
  const double true_flop_ops = 8'000'000;  // packed ops in phase A only

  workloads::Placement p;
  p.cpus = {0};
  kernel.scheduler().add_busy(0, 1);

  ctr.start();
  // Interleave rotation with the two phases. The phases are sliced
  // differently (q vs q+1 quanta), so set-to-phase alignment is imperfect
  // — the generic situation for real codes, where rotation periods never
  // divide program phases exactly.
  workloads::RunOptions opts_a;
  opts_a.quanta = quanta;
  opts_a.between_quanta = [&ctr](int) { ctr.rotate(); };
  run_workload(kernel, phase_a, p, opts_a);
  ctr.rotate();
  // Phase B posts branch events but no packed-double flops: emulate by a
  // triad whose flops land in the scalar-double bucket (not measured).
  workloads::StreamConfig b2 = b;
  b2.compiler.vectorized = false;  // scalar double: different event
  workloads::StreamTriad phase_b2(b2);
  workloads::RunOptions opts_b = opts_a;
  opts_b.quanta = quanta + 1;
  run_workload(kernel, phase_b2, p, opts_b);
  ctr.stop();

  const double est = ctr.extrapolated_count(
      0, 0, "FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");
  return (est - true_flop_ops) / true_flop_ops;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation: multiplexing extrapolation error vs. rotation quanta\n"
      "# two-phase workload; the FLOPS_DP estimate is extrapolated from\n"
      "# the fraction of runtime its event set was live\n\n");
  std::printf("%8s %16s\n", "quanta", "relative error");
  for (const int quanta : {1, 2, 3, 5, 9, 17, 33}) {
    const double err = measured_flops_error(quanta);
    std::printf("%8d %15.1f%%\n", quanta, err * 100.0);
  }
  std::printf(
      "\n# coarse rotation (few quanta) mis-extrapolates the phased\n"
      "# workload; fine rotation converges toward the true count.\n");
  return 0;
}
