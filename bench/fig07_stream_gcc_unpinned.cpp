// Figure 7: STREAM triad, gcc profile, Westmere EP, unpinned. Lower peak
// than icc; the variance structure differs from the icc case.
#include "bench_common.hpp"

int main() {
  using namespace likwid;
  bench::run_stream_figure(
      "Fig. 7: STREAM triad bandwidth [MB/s], gcc, Westmere EP, unpinned",
      "lower bandwidth than icc throughout (peak ~33000-35000 MB/s); small "
      "thread counts mostly bad, larger counts volatile",
      hwsim::presets::westmere_ep(), bench::PinMode::kNone,
      workloads::OpenMpImpl::kGcc, workloads::gcc_profile());
  return 0;
}
