// Figure 4: STREAM triad, Intel icc profile, dual-socket Westmere EP,
// NOT pinned — large bandwidth variance, worst at small thread counts.
#include "bench_common.hpp"

int main() {
  using namespace likwid;
  bench::run_stream_figure(
      "Fig. 4: STREAM triad bandwidth [MB/s], icc, Westmere EP, unpinned",
      "large variance; low thread counts often land on one socket; high "
      "counts suffer oversubscription; pinned case reaches ~42000 MB/s",
      hwsim::presets::westmere_ep(), bench::PinMode::kNone,
      workloads::OpenMpImpl::kIntel, workloads::icc_profile());
  return 0;
}
