// Figure 8: STREAM triad, gcc, Westmere EP, pinned with likwid-pin (same
// arguments as the icc case of Fig. 5).
#include "bench_common.hpp"

int main() {
  using namespace likwid;
  bench::run_stream_figure(
      "Fig. 8: STREAM triad bandwidth [MB/s], gcc, Westmere EP, likwid-pin",
      "stable but below icc: gcc code sustains less bandwidth per thread "
      "and per socket; SMT helps it slightly",
      hwsim::presets::westmere_ep(), bench::PinMode::kLikwid,
      workloads::OpenMpImpl::kGcc, workloads::gcc_profile());
  return 0;
}
