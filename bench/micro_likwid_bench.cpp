// Micro harness for the likwid-bench subsystem: run every registered
// kernel over a memory-sized socket workgroup, record the simulated
// bandwidth/FLOPS each sustains, and gate on the model cross-check — the
// measured bandwidth of every kernel must agree with the independent
// perfmodel::bandwidth prediction within the documented tolerance. This
// is the trajectory point that ties the microbenchmark subsystem to the
// machine model: if either side drifts, the gate trips.
//
// Emits a human-readable table and a machine-readable
// BENCH_likwid_bench.json (CI runs `--smoke`; scripts/run-benches.sh
// writes the repo-root trajectory file). Pass `--out FILE` to relocate
// the JSON.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "microbench/kernels.hpp"
#include "microbench/runner.hpp"

namespace {

using namespace likwid;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KernelPoint {
  std::string name;
  std::string bound;
  double mbytes_per_s = 0;
  double mflops_per_s = 0;
  double traffic_gbytes_per_s = 0;
  double model_mbytes_per_s = 0;
  double rel_error = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_likwid_bench.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }

  const std::string machine = "westmere-ep";
  // Memory-sized per-thread slices so the gate exercises the waterfilled
  // controller path; smoke shrinks the set and the sweep count.
  const std::string workgroup = smoke ? "S0:32MB:4" : "S0:256MB:6";
  const int sweeps = smoke ? 2 : 4;

  std::printf("==================== micro_likwid_bench ====================\n");
  std::printf("# %s, workgroup %s, %d sweeps (%s mode)\n", machine.c_str(),
              workgroup.c_str(), sweeps, smoke ? "smoke" : "full");
  std::printf("  %-14s %-5s %12s %10s %12s %9s\n", "kernel", "bound",
              "MByte/s", "MFlops/s", "model MB/s", "error");

  const double t0 = now_seconds();
  std::vector<KernelPoint> points;
  double max_rel_error = 0;
  for (const auto& kernel : microbench::kernel_registry()) {
    const auto session = api::Session::configure()
                             .name("micro_likwid_bench")
                             .machine(machine)
                             .build();
    microbench::BenchOptions options;
    options.workgroup = microbench::parse_workgroup(workgroup);
    options.kernel = kernel.name;
    options.sweeps = sweeps;
    options.validate = true;
    const microbench::BenchResult result =
        microbench::run_bench(*session, options);

    KernelPoint p;
    p.name = kernel.name;
    p.bound = result.validation->bound;
    p.mbytes_per_s = result.bandwidth_mbs;
    p.mflops_per_s = result.mflops;
    p.traffic_gbytes_per_s = result.traffic_gbs;
    p.model_mbytes_per_s = result.validation->predicted_mbs;
    p.rel_error = result.validation->rel_error;
    if (p.rel_error > max_rel_error) max_rel_error = p.rel_error;
    std::printf("  %-14s %-5s %12.0f %10.0f %12.0f %8.2f%%\n",
                p.name.c_str(), p.bound.c_str(), p.mbytes_per_s,
                p.mflops_per_s, p.model_mbytes_per_s, 100.0 * p.rel_error);
    points.push_back(std::move(p));
  }
  const double harness_seconds = now_seconds() - t0;

  const double tolerance = microbench::ModelValidation::kTolerance;
  const bool pass = max_rel_error <= tolerance;
  std::printf("  max model error: %.2f%% (tolerance %.0f%%), harness %.2f s\n",
              100.0 * max_rel_error, 100.0 * tolerance, harness_seconds);

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"likwid_bench\",\n"
       << "  \"machine\": \"" << machine << "\",\n"
       << "  \"workgroup\": \"" << workgroup << "\",\n"
       << "  \"sweeps\": " << sweeps << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": "
       << (std::thread::hardware_concurrency() == 0
               ? 1
               : static_cast<int>(std::thread::hardware_concurrency()))
       << ",\n"
       << "  \"tolerance\": " << tolerance << ",\n"
       << "  \"kernels\": {\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const KernelPoint& p = points[i];
    json << "    \"" << p.name << "\": {\"bound\": \"" << p.bound
         << "\", \"mbytes_per_s\": " << p.mbytes_per_s
         << ", \"mflops_per_s\": " << p.mflops_per_s
         << ", \"traffic_gbytes_per_s\": " << p.traffic_gbytes_per_s
         << ", \"model_mbytes_per_s\": " << p.model_mbytes_per_s
         << ", \"rel_error\": " << p.rel_error << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  },\n"
       << "  \"max_rel_error\": " << max_rel_error << ",\n"
       << "  \"harness_seconds\": " << harness_seconds << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  json.close();
  std::printf("JSON written to %s\n", out_path.c_str());

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: kernel bandwidth diverges from the perfmodel "
                 "prediction by %.2f%% (tolerance %.0f%%)\n",
                 100.0 * max_rel_error, 100.0 * tolerance);
    return 1;
  }
  return 0;
}
