// Micro harness for the work-stealing fleet scheduler: how many
// monitoring samples per second can one process collect and fold over a
// 64-node simulated fleet, serially vs on 1/2/4/8 worker threads (the
// likwid-agent --threads path)?
//
// The fleet models the regime the scheduler exists for: every sampling
// step blocks on a simulated counter-access latency
// (MonitorConfig::device_latency_us — /dev/msr, sysfs or a management
// network round trip), with a small per-node skew so the shards are
// unbalanced and work stealing actually runs. Latency is wall time only;
// the sample streams are identical in every configuration. Workers
// overlap the blocked acquisitions, which is why the fleet scales even on
// a single-core runner — and why the speedup gate is a flat 2x at 8
// workers, independent of hardware_threads.
//
// Each configuration builds a fresh fleet (construction excluded from the
// timing), runs the same simulated duration, and reports samples/s plus
// the scheduler's own accounting (task steals, autotuned slice length).
// Correctness rides along: every threaded configuration must fold exactly
// as many rollup rows as the serial baseline.
//
// Emits a human-readable table and a machine-readable
// BENCH_agent_fleet.json (CI runs `--smoke` so the harness, the JSON
// schema and the speedup gate cannot bit-rot). Pass `--out FILE` to
// relocate the JSON.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "monitor/agent.hpp"

namespace {

using namespace likwid;

struct RunResult {
  int workers = 0;  ///< 0 = serial path
  double seconds = 0;
  double samples_per_s = 0;
  std::size_t rollup_rows = 0;
  std::uint64_t steals = 0;
  std::size_t batch_steps = 0;
  bool batch_autotuned = false;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_agent_fleet.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }

  constexpr int kNodes = 64;
  constexpr double kDeviceLatencyUs = 400;
  constexpr double kDeviceLatencySkew = 0.02;
  const int steps = smoke ? 10 : 24;

  monitor::AgentConfig cfg;
  cfg.num_machines = kNodes;
  cfg.monitor.groups = {"MEM"};
  cfg.monitor.interval_seconds = 0.1;
  cfg.duration_seconds = cfg.monitor.interval_seconds * steps;
  cfg.monitor.window_samples = 3;
  cfg.monitor.ring_capacity = static_cast<std::size_t>(steps);
  cfg.monitor.device_latency_us = kDeviceLatencyUs;
  cfg.monitor.device_latency_skew = kDeviceLatencySkew;
  cfg.fleet.batch_samples = 0;  // autotune; the chosen slice is reported

  const auto run_once = [&](int workers) {
    monitor::AgentConfig c = cfg;
    c.fleet.num_threads = std::max(workers, 1);
    // workers == 0 is the serial baseline; every workers >= 1 entry runs
    // the real threaded scheduler, so "threads=1" measures the
    // scheduler's own overhead rather than aliasing serial.
    c.fleet.force_threaded = workers >= 1;
    monitor::Agent agent(c);  // fleet construction is not timed
    const double t0 = now_seconds();
    agent.run();
    RunResult r;
    r.workers = workers;
    r.seconds = now_seconds() - t0;
    r.samples_per_s =
        static_cast<double>(kNodes) * static_cast<double>(steps) / r.seconds;
    r.rollup_rows = agent.rollups().size();
    r.steals = agent.transport().steals;
    r.batch_steps = agent.transport().batch_steps;
    r.batch_autotuned = agent.transport().batch_autotuned;
    return r;
  };

  // Best of two: the timing windows are sub-second, so one noisy-neighbor
  // hiccup on a shared CI runner must not decide the gate. Both
  // executions feed the correctness ride-along (all_rows), so the
  // discarded slower run still has its rollup-row count checked.
  std::vector<std::size_t> all_rows;
  const auto run_config = [&](int workers) {
    const RunResult a = run_once(workers);
    const RunResult b = run_once(workers);
    all_rows.push_back(a.rollup_rows);
    all_rows.push_back(b.rollup_rows);
    return a.samples_per_s >= b.samples_per_s ? a : b;
  };

  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware_threads = hw == 0 ? 1 : static_cast<int>(hw);

  std::printf("==================== micro_agent_fleet ====================\n");
  std::printf(
      "# %d nodes x %d intervals of %s, %.0f us device latency (skew "
      "%.2f), %d hardware threads (%s mode)\n",
      kNodes, steps, cfg.monitor.groups.front().c_str(), kDeviceLatencyUs,
      kDeviceLatencySkew, hardware_threads, smoke ? "smoke" : "full");

  const RunResult serial = run_config(0);
  std::printf("  %-10s %12.0f samples/s  (%8.3f s)  %zu rows\n", "serial",
              serial.samples_per_s, serial.seconds, serial.rollup_rows);

  std::vector<RunResult> threaded;
  for (const int workers : {1, 2, 4, 8}) {
    const RunResult r = run_config(workers);
    std::printf(
        "  %-10s %12.0f samples/s  (%8.3f s)  %zu rows  %4llu steals  "
        "batch %zu%s  (%.2fx)\n",
        ("threads=" + std::to_string(workers)).c_str(), r.samples_per_s,
        r.seconds, r.rollup_rows,
        static_cast<unsigned long long>(r.steals), r.batch_steps,
        r.batch_autotuned ? "*" : "",
        r.samples_per_s / serial.samples_per_s);
    threaded.push_back(r);
  }
  bool rows_match = true;
  for (const std::size_t rows : all_rows) {
    if (rows != serial.rollup_rows) rows_match = false;
  }

  const double speedup_8 = threaded.back().samples_per_s /
                           serial.samples_per_s;
  // Flat gate: the fleet is device-latency-bound by construction, and
  // blocked acquisitions overlap on any core count — 8 workers hiding 8
  // nodes' latencies must at least double throughput even on a one-core
  // runner. (The old worker/aggregator split managed 0.84x here; the
  // work-stealing fold is what raised the bar.)
  const double required_speedup = 2.0;
  std::printf("  speedup 8 workers vs serial: %.2fx (required %.2fx at %d "
              "hardware threads)\n",
              speedup_8, required_speedup, hardware_threads);
  if (!rows_match) {
    std::fprintf(stderr,
                 "FAIL: threaded rollup row counts diverge from serial\n");
    return 1;
  }

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"agent_fleet\",\n"
       << "  \"machine\": \"" << cfg.monitor.machine_preset << "\",\n"
       << "  \"group\": \"" << cfg.monitor.groups.front() << "\",\n"
       << "  \"nodes\": " << kNodes << ",\n"
       << "  \"steps_per_node\": " << steps << ",\n"
       << "  \"device_latency_us\": " << kDeviceLatencyUs << ",\n"
       << "  \"device_latency_skew\": " << kDeviceLatencySkew << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": " << hardware_threads << ",\n"
       << "  \"serial\": {\"samples_per_s\": " << serial.samples_per_s
       << ", \"seconds\": " << serial.seconds << "},\n"
       << "  \"threaded\": {\n";
  for (std::size_t i = 0; i < threaded.size(); ++i) {
    const RunResult& r = threaded[i];
    json << "    \"" << r.workers
         << "\": {\"samples_per_s\": " << r.samples_per_s
         << ", \"seconds\": " << r.seconds
         << ", \"speedup_vs_serial\": "
         << r.samples_per_s / serial.samples_per_s
         << ", \"steals\": " << r.steals
         << ", \"batch_steps\": " << r.batch_steps
         << ", \"batch_autotuned\": "
         << (r.batch_autotuned ? "true" : "false") << "}"
         << (i + 1 < threaded.size() ? "," : "") << "\n";
  }
  const bool pass = speedup_8 >= required_speedup;
  json << "  },\n"
       << "  \"speedup_8_vs_serial\": " << speedup_8 << ",\n"
       << "  \"required_speedup\": " << required_speedup << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  json.close();
  std::printf("JSON written to %s\n", out_path.c_str());

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: 8-worker fleet only %.2fx over serial (need >= "
                 "%.2fx at %d hardware threads)\n",
                 speedup_8, required_speedup, hardware_threads);
    return 1;
  }
  return 0;
}
