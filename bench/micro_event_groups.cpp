// Micro harness: every preconfigured event group of likwid-perfctr
// measured on a synthetic kernel engineered to exercise exactly that
// group's behaviour (Section II-A: "preconfigured event sets (groups) with
// derived metrics ... allows the beginner to concentrate on the useful
// information right away").
//
// For each group the harness runs the matching kernel on one Nehalem EP
// core, measures it through the complete counter stack, and prints the
// group's headline metrics next to the analytically expected value.
#include <cstdio>
#include <string>
#include <vector>

#include "core/perfctr.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace likwid;

struct Case {
  std::string group;
  std::string expectation;
  workloads::SyntheticConfig kernel;
};

void run_case(hwsim::SimMachine& machine, const Case& c) {
  ossim::SimKernel kernel(machine);
  core::PerfCtr ctr(kernel, {0});
  ctr.add_group(c.group);

  workloads::SyntheticKernel workload(c.kernel);
  workloads::Placement p;
  p.cpus = {0};
  kernel.scheduler().add_busy(0, 1);
  ctr.start();
  run_workload(kernel, workload, p);
  ctr.stop();

  std::printf("%-8s on %-12s (%s)\n", c.group.c_str(),
              c.kernel.name.c_str(), c.expectation.c_str());
  for (const auto& row : ctr.compute_metrics(0)) {
    if (row.name() == "Runtime [s]" || row.name() == "CPI") continue;
    std::printf("    %-32s %14.6g\n", row.name().c_str(), row.at(0));
  }
}

}  // namespace

int main() {
  std::printf("==================== micro_event_groups ====================\n");
  std::printf("# Every likwid-perfctr group on its matching synthetic\n");
  std::printf("# kernel, one Nehalem EP core (2.66 GHz, 32k/256k/8M).\n\n");

  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());

  const std::vector<Case> cases = {
      {"FLOPS_DP", "blocked dgemm: near the 10640 MFlops/s model peak",
       workloads::dgemm_kernel(256, 48)},
      {"FLOPS_SP", "saxpy streaming from memory",
       workloads::saxpy_kernel(4 << 20, 2)},
      {"L2", "ladder resident in L2: all traffic at the L1/L2 boundary",
       workloads::cache_ladder_kernel(128 << 10, 64)},
      {"L3", "ladder resident in L3",
       workloads::cache_ladder_kernel(2 << 20, 16)},
      {"MEM", "ladder far beyond L3: memory bandwidth bound",
       workloads::cache_ladder_kernel(64 << 20, 2)},
      {"CACHE", "L2-resident ladder: L1 miss ratio 1",
       workloads::cache_ladder_kernel(128 << 10, 64)},
      {"L2CACHE", "L3-resident ladder: L2 miss ratio 1",
       workloads::cache_ladder_kernel(2 << 20, 16)},
      {"L3CACHE", "memory ladder: L3 miss ratio 1",
       workloads::cache_ladder_kernel(64 << 20, 2)},
      {"DATA", "daxpy: load-to-store ratio 2",
       workloads::daxpy_kernel(1 << 20, 4)},
      {"BRANCH", "branchy reduction over random data: misp. ratio 0.25",
       workloads::branchy_kernel(1 << 20, 4, 0.25)},
      {"TLB", "one load per page over 4x the DTLB reach",
       workloads::tlb_thrash_kernel(256, 64)},
  };
  for (const auto& c : cases) {
    run_case(machine, c);
  }

  std::printf("\n# NT-store ablation: copy with write-allocate vs.\n");
  std::printf("# streaming stores (the Table II mechanism, isolated).\n");
  for (const bool nt : {false, true}) {
    ossim::SimKernel kernel(machine);
    core::PerfCtr ctr(kernel, {0});
    ctr.add_group("MEM");
    workloads::SyntheticKernel workload(
        workloads::copy_kernel(4 << 20, 2, nt));
    workloads::Placement p;
    p.cpus = {0};
    kernel.scheduler().add_busy(0, 1);
    ctr.start();
    run_workload(kernel, workload, p);
    ctr.stop();
    for (const auto& row : ctr.compute_metrics(0)) {
      if (row.name() == "Memory data volume [GBytes]") {
        std::printf("    copy %-14s %8.3f GB\n",
                    nt ? "(NT stores)" : "(write-allocate)",
                    row.at(0));
      }
    }
  }
  return 0;
}
