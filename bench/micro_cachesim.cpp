// Micro-benchmarks for the cache-hierarchy simulator itself: line-touch
// throughput on L1 hits, L2 hits, full memory streams and prefetched
// streams. These bound the cost of the Jacobi figure harnesses.
#include <benchmark/benchmark.h>

#include "cachesim/hierarchy.hpp"
#include "hwsim/presets.hpp"

namespace {

using namespace likwid;
using cachesim::AccessKind;

struct Fixture {
  Fixture()
      : spec(hwsim::presets::nehalem_ep()),
        threads(hwsim::enumerate_hw_threads(spec)),
        h(spec, threads) {}
  hwsim::MachineSpec spec;
  std::vector<hwsim::HwThread> threads;
  cachesim::CacheHierarchy h;
};

void BM_L1Hit(benchmark::State& state) {
  Fixture f;
  f.h.access(0, 0x10000, 64, AccessKind::kLoad);  // warm
  for (auto _ : state) {
    f.h.access(0, 0x10000, 64, AccessKind::kLoad);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L1Hit);

void BM_L2Hit(benchmark::State& state) {
  Fixture f;
  // Two lines that conflict in L1 (same set) but coexist in L2: alternate.
  const std::uint64_t l1_sets = f.spec.data_cache(1).num_sets();
  std::uint64_t a = 0x100000;
  std::uint64_t b = a;
  // Build 9 conflicting addresses to exceed the 8-way L1 set.
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 9; ++i) {
    addrs.push_back(a + static_cast<std::uint64_t>(i) * l1_sets * 64);
  }
  (void)b;
  std::size_t i = 0;
  for (auto _ : state) {
    f.h.access(0, addrs[i % addrs.size()], 64, AccessKind::kLoad);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Hit);

void BM_MemoryStreamLoad(benchmark::State& state) {
  Fixture f;
  std::uint64_t addr = 0x10000000;
  for (auto _ : state) {
    f.h.access(0, addr, 64, AccessKind::kLoad);
    addr += 64;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MemoryStreamLoad);

void BM_MemoryStreamStore(benchmark::State& state) {
  Fixture f;
  std::uint64_t addr = 0x10000000;
  for (auto _ : state) {
    f.h.access(0, addr, 64, AccessKind::kStore);
    addr += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryStreamStore);

void BM_NonTemporalStream(benchmark::State& state) {
  Fixture f;
  std::uint64_t addr = 0x10000000;
  for (auto _ : state) {
    f.h.access(0, addr, 64, AccessKind::kStoreNonTemporal);
    addr += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NonTemporalStream);

void BM_RowAccess(benchmark::State& state) {
  // The Jacobi inner unit: a whole grid row per call.
  Fixture f;
  std::uint64_t addr = 0x10000000;
  const std::uint64_t row = 120 * 8;
  for (auto _ : state) {
    f.h.access(0, addr, row, AccessKind::kLoad);
    addr += row;
  }
  state.SetItemsProcessed(state.iterations() * (row / 64 + 1));
}
BENCHMARK(BM_RowAccess);

}  // namespace

BENCHMARK_MAIN();
