// Ablation: placement policy. The paper's Fig. 5 uses "threads equally
// distributed on the sockets ... first distributed over physical cores,
// then over SMT threads". This harness compares that scatter policy against
// the alternatives a user might naively choose: compact filling (one socket
// first) and SMT-first filling (both hardware threads of a core before the
// next core) for the bandwidth-bound STREAM triad on Westmere EP.
#include <cstdio>
#include <numeric>

#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/stream.hpp"

namespace {

using namespace likwid;

double run_with_placement(hwsim::SimMachine& machine,
                          const std::vector<int>& cpus) {
  ossim::SimKernel kernel(machine);
  workloads::StreamTriad triad(workloads::StreamConfig{});
  workloads::Placement p;
  p.cpus = cpus;
  for (const int c : cpus) kernel.scheduler().add_busy(c, 1);
  const double t = run_workload(kernel, triad, p);
  return triad.reported_bandwidth_mbs(t);
}

}  // namespace

int main() {
  using namespace likwid;
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const core::NodeTopology topo = core::probe_topology(machine);
  const auto scatter_all = core::physical_first_cpu_list(topo);

  std::printf("# Ablation: pin placement policies, STREAM triad [MB/s],\n");
  std::printf("# Westmere EP (os ids 0-11 physical, 12-23 SMT siblings)\n\n");
  std::printf("%8s %12s %12s %12s\n", "threads", "scatter", "compact",
              "smt-first");
  for (const int threads : {2, 4, 6, 8, 12}) {
    // scatter: round-robin over sockets, physical first (the paper's list).
    std::vector<int> scatter(scatter_all.begin(),
                             scatter_all.begin() + threads);
    // compact: fill socket 0's physical cores, then socket 1.
    std::vector<int> compact(threads);
    std::iota(compact.begin(), compact.end(), 0);
    // smt-first: both hardware threads of each core before the next core.
    std::vector<int> smt_first;
    for (int core = 0; core < 12 && static_cast<int>(smt_first.size()) <
                                        threads; ++core) {
      smt_first.push_back(core);       // SMT 0
      if (static_cast<int>(smt_first.size()) < threads) {
        smt_first.push_back(core + 12);  // SMT sibling
      }
    }
    std::printf("%8d %12.0f %12.0f %12.0f\n", threads,
                run_with_placement(machine, scatter),
                run_with_placement(machine, compact),
                run_with_placement(machine, smt_first));
  }
  std::printf(
      "\n# scatter wins for bandwidth: it engages both memory controllers\n"
      "# at the smallest thread counts; smt-first wastes thread slots on\n"
      "# shared cores.\n");
  return 0;
}
