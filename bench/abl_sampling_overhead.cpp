// Ablation: counting vs. overflow-interrupt sampling — the quantified
// version of the paper's Section II-A design choice:
//
//   "overflowing hardware counters can generate interrupts, which can be
//    used for IP or call-stack sampling. The latter option enables a very
//    fine-grained view on a code's resource requirements (limited only by
//    the inherent statistical errors). However, the first option is
//    sufficient in many cases and also practically overhead-free. This is
//    why it was chosen as the underlying principle for likwid-perfCtr."
//
// A two-phase program (daxpy, then a flop-free branchy scan) runs under
// (a) wrapper-mode counting and (b) emulated event-based sampling at
// several periods. The table reports, per configuration: the estimate of
// the packed-flop total, its error, the number of overflow interrupts,
// and the interrupt overhead relative to runtime. Counting is exact with
// zero interrupts; sampling buys its phase-attribution profile with
// overhead that grows as the period shrinks.
#include <cstdio>

#include "core/perfctr.hpp"
#include "core/sampling.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace likwid;

// Deliberately not a round multiple of any sampling period, so the
// undercount (the residue below one period) is visible in the table.
constexpr std::size_t kElements = 3'941'731;
constexpr int kSweeps = 2;
// daxpy posts one packed op per element.
constexpr double kTrueFlopsOps = static_cast<double>(kElements) * kSweeps;

struct RunResult {
  double runtime = 0;
  double counted = 0;     ///< wrapper-mode exact count
  double estimated = 0;   ///< sampling estimate (samples x period)
  std::uint64_t samples = 0;
  double overhead = 0;    ///< interrupt seconds
  double phase_a_share = 0;  ///< fraction of samples attributed to daxpy
};

RunResult run(std::uint64_t period /* 0 = pure counting */) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  kernel.scheduler().add_busy(0, 1);

  core::PerfCtr ctr(kernel, {0});
  ctr.add_custom("FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");
  ctr.start();
  const int index = static_cast<int>(ctr.assignments_of(0).size()) - 1;
  std::unique_ptr<core::SamplingProfiler> prof;
  if (period > 0) {
    prof = std::make_unique<core::SamplingProfiler>(ctr, 0, index, period);
  }

  workloads::Placement p;
  p.cpus = {0};
  RunResult r;
  const auto phase = [&](const workloads::SyntheticConfig& cfg,
                         const std::string& label) {
    workloads::SyntheticKernel k(cfg);
    workloads::RunOptions opts;
    opts.quanta = 32;  // the profiler's polling granularity (timer tick)
    if (prof) {
      opts.between_quanta = [&](int) { prof->poll(label); };
    }
    r.runtime += run_workload(kernel, k, p, opts);
    if (prof) prof->poll(label);
  };
  phase(workloads::daxpy_kernel(kElements, kSweeps), "daxpy");
  phase(workloads::branchy_kernel(kElements, kSweeps, 0.25), "branchy");
  ctr.stop();

  r.counted = ctr.extrapolated_count(
      0, 0, "FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");
  if (prof) {
    r.estimated = prof->estimated_count();
    r.samples = prof->samples();
    r.overhead = prof->overhead_seconds();
    const auto it = prof->histogram().find("daxpy");
    if (it != prof->histogram().end() && prof->samples() > 0) {
      r.phase_a_share = static_cast<double>(it->second) /
                        static_cast<double>(prof->samples());
    }
  }
  return r;
}

}  // namespace

int main() {
  std::printf("================= abl_sampling_overhead =================\n");
  std::printf("# Counting vs. overflow-interrupt sampling (Section II-A).\n");
  std::printf("# Two-phase program: daxpy (packed flops), then a branchy\n");
  std::printf("# scan (none). True packed-op total: %.4g. One interrupt\n",
              kTrueFlopsOps);
  std::printf("# costs 2000 cycles on the 2.66 GHz Nehalem EP core.\n\n");

  std::printf("%-22s %12s %8s %10s %10s %10s\n", "mode", "flop estimate",
              "error", "interrupts", "overhead", "daxpy%%");

  const RunResult counting = run(0);
  std::printf("%-22s %12.4g %7.2f%% %10d %9.3f%% %10s\n",
              "wrapper counting", counting.counted,
              100.0 * (counting.counted - kTrueFlopsOps) / kTrueFlopsOps, 0,
              0.0, "n/a");

  for (const std::uint64_t period :
       {std::uint64_t{1'000'000}, std::uint64_t{100'000},
        std::uint64_t{10'000}, std::uint64_t{1'000}}) {
    const RunResult s = run(period);
    char label[32];
    std::snprintf(label, sizeof label, "sampling @ %llu",
                  static_cast<unsigned long long>(period));
    std::printf("%-22s %12.4g %7.2f%% %10llu %9.3f%% %9.1f%%\n", label,
                s.estimated,
                100.0 * (s.estimated - kTrueFlopsOps) / kTrueFlopsOps,
                static_cast<unsigned long long>(s.samples),
                100.0 * s.overhead / s.runtime, 100.0 * s.phase_a_share);
  }

  std::printf(
      "\n# counting is exact with zero interrupts (\"practically\n"
      "# overhead-free\"); sampling localizes the flops to the daxpy\n"
      "# phase but pays interrupt overhead inversely in the period and\n"
      "# undercounts by up to one period (statistical error).\n");
  return 0;
}
