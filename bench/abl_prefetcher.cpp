// Ablation: the effect of toggling the hardware prefetchers through
// likwid-features (Section II-D: "often it is beneficial to know the
// influence of the hardware prefetchers").
//
// Runs the threaded Jacobi and the STREAM triad with all prefetchers
// enabled vs. disabled on a Nehalem EP socket, reporting prefetch requests,
// memory traffic and performance. Also shows the adjacent-line prefetcher
// over-fetching on a strided (every other line) access pattern — the case
// where disabling a prefetcher helps.
#include <cstdio>

#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/stream.hpp"

namespace {

using namespace likwid;

void set_all_prefetchers(ossim::SimKernel& kernel, bool enable) {
  for (int cpu = 0; cpu < kernel.machine().num_threads(); ++cpu) {
    core::Features f(kernel, cpu);
    f.set_prefetcher(core::Prefetcher::kHardware, enable);
    f.set_prefetcher(core::Prefetcher::kAdjacentLine, enable);
    f.set_prefetcher(core::Prefetcher::kDcu, enable);
    f.set_prefetcher(core::Prefetcher::kIp, enable);
  }
}

void jacobi_case(bool prefetch, int workers) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  set_all_prefetchers(kernel, prefetch);
  workloads::JacobiConfig cfg;
  cfg.n = 96;
  cfg.sweeps = 4;
  workloads::JacobiStencil jacobi(cfg);
  workloads::Placement p;
  for (int c = 0; c < workers; ++c) p.cpus.push_back(c);
  for (const int c : p.cpus) kernel.scheduler().add_busy(c, 1);
  const double t = run_workload(kernel, jacobi, p);
  double prefetches = 0;
  for (const int c : p.cpus) {
    prefetches += kernel.caches().cpu_traffic(c).prefetches_issued;
  }
  const auto& s = kernel.caches().socket_traffic(0);
  std::printf("  jacobi %d thread%s, prefetchers %-3s: %8.0f MLUPS, "
              "%10.3g prefetches, %6.2f GB memory traffic\n",
              workers, workers == 1 ? " " : "s", prefetch ? "ON" : "OFF",
              jacobi.mlups(t), prefetches,
              (s.mem_reads + s.mem_writes) * 64.0 / 1e9);
}

void strided_case(bool adjacent) {
  // Touch every second line: the adjacent-line prefetcher fetches the
  // untouched buddies, doubling memory traffic for no benefit.
  hwsim::SimMachine machine(hwsim::presets::core2_duo());
  ossim::SimKernel kernel(machine);
  core::Features f(kernel, 0);
  f.set_prefetcher(core::Prefetcher::kAdjacentLine, adjacent);
  f.set_prefetcher(core::Prefetcher::kHardware, false);
  f.set_prefetcher(core::Prefetcher::kDcu, false);
  f.set_prefetcher(core::Prefetcher::kIp, false);
  const std::uint64_t lines = 100000;
  for (std::uint64_t l = 0; l < lines; ++l) {
    kernel.caches().access(0, 0x10000000 + l * 128, 64,
                           cachesim::AccessKind::kLoad);
  }
  const auto& s = kernel.caches().socket_traffic(0);
  std::printf("  strided load, CL_PREFETCHER %-3s: %8.0f demanded lines, "
              "%8.0f lines from memory (%.2fx overfetch)\n",
              adjacent ? "ON" : "OFF", static_cast<double>(lines),
              s.mem_reads, s.mem_reads / static_cast<double>(lines));
}

}  // namespace

int main() {
  std::printf("# Ablation: hardware prefetchers (likwid-features)\n\n");
  std::printf(
      "streaming stencil (prefetchers hide memory latency; the effect is\n"
      "largest when a single thread cannot saturate the controller):\n");
  jacobi_case(true, 1);
  jacobi_case(false, 1);
  jacobi_case(true, 4);
  jacobi_case(false, 4);
  std::printf("\nstride-2 pattern (adjacent-line prefetch hurts):\n");
  strided_case(false);
  strided_case(true);
  return 0;
}
