// micro_collector_ingest — throughput and wire efficiency of the
// distributed monitoring pipeline (src/collect): a 1000-node simulated
// fleet streams counter samples over the binary wire format into the
// collector's sharded ingest threads and tiered store, and the bench
// reports ingest rate (samples/s, node streams/s) plus bytes per sample
// on the wire against the uncompressed sample footprint.
//
// The acceptance gate of the wire format lives here: the XOR + varint
// encoding must carry counter-flavored samples at >= 5x less than their
// uncompressed 8 * (3 + n_metrics) bytes. Run `--smoke` for the CI-sized
// fleet; both modes must hold the gate and must finish with zero
// unattributed loss. Writes BENCH_collector.json (scripts/run-benches.sh
// aggregates it; CI asserts its schema and the gate).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "collect/loopback.hpp"

using namespace likwid;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_collector.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }

  collect::LoopbackConfig cfg;
  cfg.fleet.num_nodes = smoke ? 128 : 1000;
  cfg.fleet.seed = 42;
  // Six metric slots: the footprint of a MEM-sized group.
  cfg.fleet.schemas = {collect::make_sim_schema("BENCH_MEM", 6)};
  cfg.steps = smoke ? 64 : 128;
  cfg.batch_samples = 32;  // long batches amortize framing + XOR warmup
  cfg.producer_threads = 2;
  cfg.service.ingest_threads = 2;
  cfg.service.ring_capacity = 64;
  // This bench measures throughput, not backpressure: a generous deadline
  // means every sample arrives and the rate reflects pipeline speed.
  cfg.service.publish_deadline_seconds = 30.0;
  cfg.service.store.chunk_points = 64;
  cfg.service.store.raw_chunks_per_series = 4;

  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware_threads = hw == 0 ? 1 : static_cast<int>(hw);
  std::printf("================= micro_collector_ingest =================\n");
  std::printf("# %zu node streams x %zu samples, batch %zu, %zu+%zu threads, "
              "%d hardware threads (%s mode)\n",
              cfg.fleet.num_nodes, cfg.steps, cfg.batch_samples,
              cfg.producer_threads, cfg.service.ingest_threads,
              hardware_threads, smoke ? "smoke" : "full");

  collect::LoopbackCollector collector(cfg);
  const double t0 = now_seconds();
  collector.run();
  const double seconds = now_seconds() - t0;

  const collect::ProducerStats& producer = collector.producer();
  const collect::DecodeStats decode = collector.service().decode_stats();
  const collect::StoreStats store = collector.service().store_stats();

  const double samples_per_s =
      static_cast<double>(decode.samples) / seconds;
  const double streams_per_s =
      static_cast<double>(cfg.fleet.num_nodes) / seconds;
  const double bytes_per_sample =
      static_cast<double>(producer.bytes_encoded) /
      static_cast<double>(producer.samples_encoded);
  // The uncompressed footprint the wire format competes against:
  // sequence + t_start + t_end + one double per metric slot.
  const double uncompressed_bytes_per_sample =
      8.0 * (3.0 + static_cast<double>(cfg.fleet.schemas[0]->metric_ids.size()));
  const double compression_ratio =
      uncompressed_bytes_per_sample / bytes_per_sample;

  const bool lossless = producer.batches_dropped == 0 &&
                        decode.decode_errors() == 0 &&
                        decode.samples == producer.samples_encoded;
  const double required_ratio = 5.0;
  const bool pass = lossless && compression_ratio >= required_ratio;

  std::printf("  ingest: %12.0f samples/s  %8.0f streams/s  (%8.3f s)\n",
              samples_per_s, streams_per_s, seconds);
  std::printf("  wire:   %6.2f bytes/sample vs %5.1f uncompressed "
              "(%.2fx, required %.1fx)\n",
              bytes_per_sample, uncompressed_bytes_per_sample,
              compression_ratio, required_ratio);
  std::printf("  store:  %llu chunks closed, %llu evicted into buckets, "
              "%llu samples retained raw\n",
              static_cast<unsigned long long>(store.chunks_closed),
              static_cast<unsigned long long>(store.chunks_evicted),
              static_cast<unsigned long long>(
                  store.samples_appended - store.samples_downsampled -
                  store.samples_forgotten));
  if (!lossless) {
    std::fprintf(stderr, "FAIL: lossy run (%llu batches dropped, %llu "
                         "decode errors) — throughput numbers meaningless\n",
                 static_cast<unsigned long long>(producer.batches_dropped),
                 static_cast<unsigned long long>(decode.decode_errors()));
  }

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"collector_ingest\",\n"
       << "  \"nodes\": " << cfg.fleet.num_nodes << ",\n"
       << "  \"steps_per_node\": " << cfg.steps << ",\n"
       << "  \"batch_samples\": " << cfg.batch_samples << ",\n"
       << "  \"metrics_per_sample\": "
       << cfg.fleet.schemas[0]->metric_ids.size() << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": " << hardware_threads << ",\n"
       << "  \"seconds\": " << seconds << ",\n"
       << "  \"samples_per_s\": " << samples_per_s << ",\n"
       << "  \"streams_per_s\": " << streams_per_s << ",\n"
       << "  \"bytes_per_sample\": " << bytes_per_sample << ",\n"
       << "  \"uncompressed_bytes_per_sample\": "
       << uncompressed_bytes_per_sample << ",\n"
       << "  \"compression_ratio\": " << compression_ratio << ",\n"
       << "  \"required_compression_ratio\": " << required_ratio << ",\n"
       << "  \"lossless\": " << (lossless ? "true" : "false") << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  json.close();
  std::printf("JSON written to %s\n", out_path.c_str());

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: wire format carries %.2f bytes/sample — only %.2fx "
                 "under the uncompressed %.1f (need >= %.1fx)\n",
                 bytes_per_sample, compression_ratio,
                 uncompressed_bytes_per_sample, required_ratio);
    return 1;
  }
  return 0;
}
