// Figure 10: STREAM triad, icc, AMD Istanbul, pinned with likwid-pin —
// "good, stable results for all thread counts".
#include "bench_common.hpp"

int main() {
  using namespace likwid;
  bench::run_stream_figure(
      "Fig. 10: STREAM triad bandwidth [MB/s], icc, AMD Istanbul, likwid-pin",
      "stable; saturates near ~23000 MB/s once both sockets are busy",
      hwsim::presets::amd_istanbul(), bench::PinMode::kLikwid,
      workloads::OpenMpImpl::kIntel, workloads::icc_profile());
  return 0;
}
