// Ablation: ccNUMA data placement (first-touch homing) under the STREAM
// triad — the mechanism behind the paper's insistence that "for the case
// of the STREAM triad on these ccNUMA architectures the best performance
// is achieved if threads are equally distributed across the two sockets".
//
// Six threads are pinned to socket 0 of the Westmere EP node; only the
// *data homing* varies:
//   local        every chunk first-touched on the running socket
//   remote       every chunk homed on the other socket (the worst case an
//                unpinned init phase can produce)
//   interleaved  chunks alternate sockets (numactl --interleave analog)
//
// A second sweep scatters the threads over both sockets with the same
// three homings — showing that scattered compute *and* scattered data is
// the only configuration that reaches full node bandwidth.
#include <cstdio>
#include <vector>

#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/stream.hpp"

namespace {

using namespace likwid;

double triad_bandwidth(const std::vector<int>& cpus,
                       const std::vector<int>& homes) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  ossim::SimKernel kernel(machine);
  workloads::StreamConfig cfg;
  cfg.array_length = 8'000'000;
  cfg.repetitions = 4;
  cfg.chunk_home_sockets = homes;
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = cpus;
  for (const int c : cpus) kernel.scheduler().add_busy(c, 1);
  const double t = run_workload(kernel, triad, p);
  return triad.reported_bandwidth_mbs(t);
}

std::vector<int> homes_for(const std::string& mode,
                           const std::vector<int>& cpus,
                           const hwsim::SimMachine& machine) {
  std::vector<int> homes;
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    const int own = machine.socket_of(cpus[i]);
    if (mode == "local") homes.push_back(own);
    if (mode == "remote") homes.push_back(1 - own);
    if (mode == "interleaved") homes.push_back(static_cast<int>(i) % 2);
  }
  return homes;
}

void sweep(const std::string& label, const std::vector<int>& cpus) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  std::printf("%s\n", label.c_str());
  for (const std::string mode : {"local", "remote", "interleaved"}) {
    const double bw =
        triad_bandwidth(cpus, homes_for(mode, cpus, machine));
    std::printf("  %-12s %8.0f MB/s\n", mode.c_str(), bw);
  }
}

}  // namespace

int main() {
  std::printf("==================== abl_numa_homing ====================\n");
  std::printf("# STREAM triad (icc profile) on dual-socket Westmere EP;\n");
  std::printf("# varying only where first touch homed the array chunks.\n\n");

  sweep("6 threads packed on socket 0 (cpus 0-5):", {0, 1, 2, 3, 4, 5});
  std::printf("\n");
  sweep("12 threads scattered over both sockets:",
        {0, 6, 1, 7, 2, 8, 3, 9, 4, 10, 5, 11});

  std::printf(
      "\n# expectation: packed+local saturates one controller (~21 GB/s\n"
      "# STREAM convention); packed+remote is QPI-capped (~14.7 GB/s);\n"
      "# packed+interleaved engages both controllers but half the traffic\n"
      "# crosses QPI (~29.4 GB/s); scattered+local reaches the full\n"
      "# ~42 GB/s node figure; scattered+remote pushes everything over\n"
      "# the one QPI link (~14.7 GB/s); scattered+interleaved aligns each\n"
      "# alternating chunk with its thread's socket and is local again.\n");
  return 0;
}
