// bench_common.hpp — shared machinery for the figure/table reproduction
// harnesses: the STREAM sample runner of Case Study 1 (Figs. 4-10) and
// box-plot statistics matching the paper's plots (100 samples per thread
// count, 25-75 box with median).
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/stream.hpp"

namespace likwid::bench {

struct BoxStats {
  double min = 0, q25 = 0, median = 0, q75 = 0, max = 0;
};

inline BoxStats box_stats(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    return samples[static_cast<std::size_t>(q * (samples.size() - 1))];
  };
  return BoxStats{samples.front(), at(0.25), at(0.5), at(0.75),
                  samples.back()};
}

enum class PinMode {
  kNone,     ///< no explicit pinning (Figs. 4, 7, 9)
  kLikwid,   ///< likwid-pin with the physical-first scatter list (5, 8, 10)
  kScatter,  ///< the Intel OpenMP KMP_AFFINITY=scatter interface (Fig. 6)
};

/// One measured STREAM triad run, reported in STREAM MB/s.
inline double stream_sample(hwsim::SimMachine& machine, std::uint64_t seed,
                            int threads, PinMode pin,
                            workloads::OpenMpImpl impl,
                            const workloads::CompilerProfile& cc) {
  ossim::SimKernel kernel(machine, seed);
  const core::NodeTopology topo = core::probe_topology(machine);
  ossim::ThreadRuntime runtime(kernel.scheduler());

  std::unique_ptr<core::PinWrapper> wrapper;
  if (pin == PinMode::kLikwid) {
    core::PinConfig cfg;
    cfg.cpu_list = core::scatter_cpu_list(topo, threads);
    cfg.model = impl == workloads::OpenMpImpl::kIntel
                    ? core::ThreadModel::kIntel
                    : core::ThreadModel::kGcc;
    cfg.skip = core::default_skip_mask(cfg.model);
    wrapper = std::make_unique<core::PinWrapper>(runtime, cfg);
  }
  const auto team = workloads::launch_openmp_team(runtime, impl, threads);
  if (pin == PinMode::kScatter) {
    // The compiler's own affinity interface pins the workers after the
    // team exists (no shepherd problem: it knows its own threads).
    const auto list = core::scatter_cpu_list(topo, threads);
    for (std::size_t i = 0; i < team.worker_tids.size(); ++i) {
      runtime.set_affinity(team.worker_tids[i],
                           ossim::CpuMask::single(list[i]));
    }
  }

  workloads::StreamConfig cfg;
  cfg.array_length = 20'000'000;
  cfg.repetitions = 2;
  cfg.compiler = cc;
  if (pin == PinMode::kNone) {
    // First touch under the initial random placement, then OS migration
    // before the measured run — the paper's unpinned reality.
    std::vector<int> homes;
    for (const int tid : team.worker_tids) {
      homes.push_back(machine.socket_of(runtime.thread(tid).cpu));
    }
    cfg.chunk_home_sockets = homes;
    runtime.migrate_unpinned();
  }
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = runtime.placement(team.worker_tids);
  const double seconds = run_workload(kernel, triad, p);
  return triad.reported_bandwidth_mbs(seconds);
}

/// Run a full figure: bandwidth box-stats per thread count.
inline void run_stream_figure(const std::string& title,
                              const std::string& paper_note,
                              hwsim::MachineSpec spec, PinMode pin,
                              workloads::OpenMpImpl impl,
                              const workloads::CompilerProfile& cc,
                              int samples = 100) {
  hwsim::SimMachine machine(std::move(spec));
  const int max_threads = machine.num_threads();
  std::printf("# %s\n", title.c_str());
  std::printf("# machine: %s, compiler profile: %s, samples: %d\n",
              machine.spec().name.c_str(), cc.name.c_str(),
              pin == PinMode::kNone ? samples : 1);
  std::printf("# paper: %s\n", paper_note.c_str());
  std::printf("%8s %10s %10s %10s %10s %10s\n", "threads", "min", "q25",
              "median", "q75", "max");
  for (int threads = 1; threads <= max_threads; ++threads) {
    std::vector<double> bw;
    const int n = pin == PinMode::kNone ? samples : 1;
    for (int s = 0; s < n; ++s) {
      bw.push_back(stream_sample(machine,
                                 0x9E3779B9u * static_cast<unsigned>(s) +
                                     static_cast<unsigned>(threads),
                                 threads, pin, impl, cc));
    }
    const BoxStats st = box_stats(bw);
    std::printf("%8d %10.0f %10.0f %10.0f %10.0f %10.0f\n", threads, st.min,
                st.q25, st.median, st.q75, st.max);
  }
  std::printf("\n");
}

}  // namespace likwid::bench
