// Table I: the qualitative LIKWID vs. PAPI comparison. This table is not a
// measurement; it is reproduced verbatim (condensed) with an extra column
// recording which of the LIKWID-side properties this reproduction
// implements and where.
#include <cstdio>

namespace {

struct Row {
  const char* aspect;
  const char* likwid;
  const char* papi;
  const char* repro;
};

constexpr Row kRows[] = {
    {"Dependencies",
     "Linux 2.6 headers only, no kernel patches",
     "kernel patches on older kernels (none > 2.6.31)",
     "simulated msr device: src/hwsim/msr.*"},
    {"Installation",
     "make only; single 21-line build config",
     "autoconf; 400-580 line install docs",
     "cmake + ninja, one CMakeLists per module"},
    {"Command line tools",
     "core is a set of standalone CLI tools",
     "small utilities, not intended standalone",
     "tools/likwid-{topology,perfctr,pin,features}"},
    {"User API support",
     "simple marker API; config stays on the command line",
     "comparatively high-level API; events set up in code",
     "core/marker.* + likwid.hpp C shim"},
    {"Library support",
     "usable as a library, though not the initial intent",
     "mature, well tested library API",
     "every module is a library; tools are thin wrappers"},
    {"Topology information",
     "thread + cache topology from cpuid, text and ASCII art",
     "cpuid-based; no shared-cache groups, no id mapping",
     "core/topology.* + cli ASCII art"},
    {"Thread/process pinning",
     "dedicated portable pinning tool",
     "no support for pinning",
     "core/affinity.* + ossim pthread interposition"},
    {"Multicore support",
     "simultaneous multi-core measurements, user pins",
     "no explicit multicore support",
     "PerfCtr measures cpu lists; counting is core-based"},
    {"Uncore support",
     "socket locks serialize shared-resource counting",
     "no explicit shared-resource support",
     "PerfCtr::socket_lock_cpus + uncore PMU"},
    {"Event abstraction",
     "preconfigured groups with derived metrics",
     "papi events mapping to native events",
     "core/perf_groups.* (11 groups, per-arch)"},
    {"Platform support",
     "x86 on Linux 2.6 only",
     "many architectures and operating systems",
     "7 simulated x86 microarchitectures"},
    {"Correlated measurements",
     "performance counters only",
     "PAPI-C correlates e.g. fan speeds, temperatures",
     "counters only, as published"},
};

}  // namespace

int main() {
  std::printf("# Table I: comparison between LIKWID and PAPI (condensed),\n");
  std::printf("# plus where this reproduction implements the LIKWID side.\n\n");
  for (const Row& r : kRows) {
    std::printf("%s\n", r.aspect);
    std::printf("  LIKWID : %s\n", r.likwid);
    std::printf("  PAPI   : %s\n", r.papi);
    std::printf("  repro  : %s\n\n", r.repro);
  }
  return 0;
}
