// Micro-benchmarks (google-benchmark) for the tool-suite overheads the
// paper stresses: "the overhead is very small (apart from the unavoidable
// API call overhead in marker mode)". Measures the simulator-side cost of
// msr access, cpuid queries, topology probing, counter start/stop and
// marker region entry/exit.
#include <benchmark/benchmark.h>

#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"

namespace {

using namespace likwid;

struct Fixture {
  Fixture()
      : machine(hwsim::presets::nehalem_ep()),
        kernel(machine),
        ctr(kernel, {0, 1, 2, 3}) {
    ctr.add_group("FLOPS_DP");
  }
  hwsim::SimMachine machine;
  ossim::SimKernel kernel;
  core::PerfCtr ctr;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_MsrRead(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kernel.msr_read(0, hwsim::msr::kTsc));
  }
}
BENCHMARK(BM_MsrRead);

void BM_MsrWrite(benchmark::State& state) {
  auto& f = fixture();
  std::uint64_t v = 0;
  for (auto _ : state) {
    f.kernel.msr_write(0, hwsim::msr::kPmc0, ++v);
  }
}
BENCHMARK(BM_MsrWrite);

void BM_CpuidLeafB(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.machine.cpuid(0, 0xB, 1));
  }
}
BENCHMARK(BM_CpuidLeafB);

void BM_TopologyProbe(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::probe_topology(f.machine));
  }
}
BENCHMARK(BM_TopologyProbe);

void BM_CounterStartStop(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    f.ctr.start();
    f.ctr.stop();
  }
}
BENCHMARK(BM_CounterStartStop);

void BM_CounterSnapshot(benchmark::State& state) {
  auto& f = fixture();
  f.ctr.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ctr.snapshot(0));
  }
  f.ctr.stop();
}
BENCHMARK(BM_CounterSnapshot);

void BM_MarkerRegionRoundTrip(benchmark::State& state) {
  auto& f = fixture();
  f.ctr.start();
  core::MarkerSession session(f.ctr, 1, 1);
  const int id = session.register_region("bench");
  for (auto _ : state) {
    session.start_region(0, 0);
    session.stop_region(0, 0, id);
  }
  f.ctr.stop();
}
BENCHMARK(BM_MarkerRegionRoundTrip);

void BM_EventLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hwsim::find_event(hwsim::Arch::kNehalem, "L1D_REPL"));
  }
}
BENCHMARK(BM_EventLookup);

void BM_MetricEvaluation(benchmark::State& state) {
  const core::MetricExpr expr =
      core::MetricExpr::parse("1.0E-06*(A*2.0+B)/time");
  const std::map<std::string, double> vars = {
      {"A", 8.192e6}, {"B", 1.0}, {"time", 0.01}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr.evaluate(vars));
  }
}
BENCHMARK(BM_MetricEvaluation);

}  // namespace

BENCHMARK_MAIN();
