// Table II: likwid-perfctr measurements on one Nehalem EP socket, comparing
// the standard threaded Jacobi solver with and without nontemporal stores
// against the temporally blocked (wavefront) variant.
//
// The uncore events are measured exactly as the paper measured them: the
// tool programs UNC_L3_LINES_IN_ANY / UNC_L3_LINES_OUT_ANY on the socket's
// uncore counters (socket lock), the same number of stencil updates is
// executed in each variant on the four physical cores of one socket, and
// the table reports raw counts, derived data volume, and MLUPS.
#include <cstdio>

#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/jacobi.hpp"

namespace {

using namespace likwid;

struct Row {
  double lines_in = 0;
  double lines_out = 0;
  double volume_gb = 0;
  double mlups = 0;
};

Row measure(workloads::JacobiVariant variant) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  const std::vector<int> cpus = {0, 1, 2, 3};  // one socket, physical cores

  core::PerfCtr ctr(kernel, cpus);
  ctr.add_custom("UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1");

  workloads::JacobiConfig cfg;
  cfg.n = 120;
  cfg.sweeps = 8;  // same update count in all variants
  cfg.variant = variant;
  workloads::JacobiStencil jacobi(cfg);
  workloads::Placement p;
  p.cpus = cpus;
  for (const int c : cpus) kernel.scheduler().add_busy(c, 1);

  ctr.start();
  const double t = run_workload(kernel, jacobi, p);
  ctr.stop();

  const int lock = ctr.socket_lock_cpus().front();
  Row row;
  row.lines_in = ctr.extrapolated_count(0, lock, "UNC_L3_LINES_IN_ANY");
  row.lines_out = ctr.extrapolated_count(0, lock, "UNC_L3_LINES_OUT_ANY");
  row.volume_gb = (row.lines_in + row.lines_out) * 64.0 / 1e9;
  row.mlups = jacobi.mlups(t);
  return row;
}

}  // namespace

int main() {
  std::printf(
      "# Table II: likwid-perfctr measurements on one Nehalem EP socket\n"
      "# (threaded Jacobi with/without nontemporal stores vs. temporally\n"
      "# blocked wavefront; 120^3 grid, 8 sweeps, 4 physical cores)\n#\n"
      "# paper reference values (larger run, same shape):\n"
      "#   UNC_L3_LINES_IN_ANY   5.91e+08   3.44e+08   1.30e+08\n"
      "#   UNC_L3_LINES_OUT_ANY  5.87e+08   3.43e+08   1.29e+08\n"
      "#   Total data volume GB  75.39      43.97      16.57\n"
      "#   Performance MLUPS     784        1032       1331\n#\n");
  const Row threaded = measure(workloads::JacobiVariant::kThreaded);
  const Row nt = measure(workloads::JacobiVariant::kThreadedNT);
  const Row blocked = measure(workloads::JacobiVariant::kWavefront);

  std::printf("%-26s %12s %14s %10s\n", "", "threaded", "threaded (NT)",
              "blocked");
  std::printf("%-26s %12.3g %14.3g %10.3g\n", "UNC_L3_LINES_IN_ANY",
              threaded.lines_in, nt.lines_in, blocked.lines_in);
  std::printf("%-26s %12.3g %14.3g %10.3g\n", "UNC_L3_LINES_OUT_ANY",
              threaded.lines_out, nt.lines_out, blocked.lines_out);
  std::printf("%-26s %12.2f %14.2f %10.2f\n", "Total data volume [GB]",
              threaded.volume_gb, nt.volume_gb, blocked.volume_gb);
  std::printf("%-26s %12.0f %14.0f %10.0f\n", "Performance [MLUPS]",
              threaded.mlups, nt.mlups, blocked.mlups);
  std::printf(
      "\n# shape check: NT/threaded volume ratio = %.2f (paper 0.58),\n"
      "# threaded/blocked traffic factor = %.1fx (paper 4.5x),\n"
      "# MLUPS ordering threaded < NT < blocked: %s\n",
      nt.volume_gb / threaded.volume_gb,
      threaded.volume_gb / blocked.volume_gb,
      (threaded.mlups < nt.mlups && nt.mlups < blocked.mlups) ? "yes" : "NO");
  return 0;
}
