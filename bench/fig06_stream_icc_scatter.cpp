// Figure 6: STREAM triad, icc, Westmere EP, pinned through the Intel
// OpenMP affinity interface (KMP_AFFINITY=scatter) instead of likwid-pin.
// "This option provides the same high performance as with likwid-pin."
#include "bench_common.hpp"

int main() {
  using namespace likwid;
  bench::run_stream_figure(
      "Fig. 6: STREAM triad bandwidth [MB/s], icc, Westmere EP, "
      "KMP_AFFINITY=scatter",
      "indistinguishable from the likwid-pin case (Fig. 5)",
      hwsim::presets::westmere_ep(), bench::PinMode::kScatter,
      workloads::OpenMpImpl::kIntel, workloads::icc_profile());
  return 0;
}
