// Figure 5: STREAM triad, icc, Westmere EP, pinned with likwid-pin:
// threads distributed round-robin over sockets, physical cores before SMT.
// Consistently high bandwidth at every thread count.
#include "bench_common.hpp"

int main() {
  using namespace likwid;
  bench::run_stream_figure(
      "Fig. 5: STREAM triad bandwidth [MB/s], icc, Westmere EP, likwid-pin",
      "monotone rise to ~42000 MB/s at 4-6 threads, then flat; SMT threads "
      "(13-24) add nothing once the memory bus is saturated",
      hwsim::presets::westmere_ep(), bench::PinMode::kLikwid,
      workloads::OpenMpImpl::kIntel, workloads::icc_profile());
  return 0;
}
