// hybrid_mpi — the paper's hybrid MPI+OpenMP pinning scenario:
//
//   $ export OMP_NUM_THREADS=8
//   $ mpiexec -n 64 -pernode likwid-pin -c 0-7 -s 0x3 ./a.out
//
// "This would start 64 MPI processes on 64 nodes with eight threads each,
// and not bind the first two newly created threads" — the Intel MPI
// progress thread and the Intel OpenMP shepherd, selected by skip mask
// 0x3. Here two ranks share one simulated Nehalem EP node (one rank per
// socket), each rank running a four-thread team under its own pin wrapper,
// while likwid-perfctr watches the whole node and attributes the memory
// traffic per socket.
#include <iostream>

#include "api/session.hpp"
#include "cli/output.hpp"
#include "cli/sinks.hpp"
#include "core/likwid.hpp"
#include "util/table.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/stream.hpp"

namespace {

using namespace likwid;

struct Rank {
  std::unique_ptr<ossim::ThreadRuntime> runtime;
  std::unique_ptr<core::PinWrapper> wrapper;
  workloads::TeamLaunch team;
};

Rank launch_rank(ossim::SimKernel& kernel, const std::vector<int>& cpus,
                 int threads) {
  Rank rank;
  rank.runtime = std::make_unique<ossim::ThreadRuntime>(kernel.scheduler());
  core::PinConfig cfg;
  cfg.cpu_list = cpus;
  cfg.model = core::ThreadModel::kIntelMpi;
  cfg.skip = core::default_skip_mask(cfg.model);  // 0x3, as in the paper
  rank.wrapper = std::make_unique<core::PinWrapper>(*rank.runtime, cfg);
  rank.team = workloads::launch_openmp_team(
      *rank.runtime, workloads::OpenMpImpl::kIntelMpi, threads);
  return rank;
}

}  // namespace

int main() {
  using namespace likwid;
  // One node-wide session: both ranks run on its kernel, one measurement
  // attributes their traffic per socket.
  const auto session = api::Session::configure()
                           .name("hybrid_mpi")
                           .machine("nehalem-ep")
                           .cpus({0, 1, 2, 3, 4, 5, 6, 7})
                           .group("MEM")
                           .build();
  ossim::SimKernel& kernel = session->kernel();
  std::cout << cli::render_header(session->topology());
  std::cout << "Two MPI ranks on one node, 4 OpenMP threads each,\n"
               "likwid-pin -s 0x3 (skip MPI progress + OpenMP shepherd):\n\n";

  // Rank 0 owns socket 0's physical cores, rank 1 socket 1's.
  Rank rank0 = launch_rank(kernel, {0, 1, 2, 3}, 4);
  Rank rank1 = launch_rank(kernel, {4, 5, 6, 7}, 4);

  for (int r = 0; r < 2; ++r) {
    const Rank& rank = r == 0 ? rank0 : rank1;
    std::cout << "rank " << r << ": master -> core "
              << rank.runtime->thread(0).cpu << ", workers ->";
    for (const int tid : rank.team.worker_tids) {
      if (tid == 0) continue;
      std::cout << " " << rank.runtime->thread(tid).cpu;
    }
    std::cout << "  (skipped " << rank.wrapper->skipped_count()
              << " service threads)\n";
  }

  // Node-wide measurement: one likwid-perfctr instance, both ranks' work
  // attributed per core / per socket via the MEM group's uncore events.
  session->start();
  workloads::StreamConfig cfg;
  cfg.array_length = 10'000'000;
  cfg.repetitions = 2;
  workloads::StreamTriad triad0(cfg);
  workloads::StreamTriad triad1(cfg);
  workloads::Placement p0;
  p0.cpus = rank0.runtime->placement(rank0.team.worker_tids);
  workloads::Placement p1;
  p1.cpus = rank1.runtime->placement(rank1.team.worker_tids);
  run_workload(kernel, triad0, p0);
  run_workload(kernel, triad1, p1);
  session->stop();

  std::cout << "\n" << cli::AsciiSink().measurement(session->measurement(0));
  const auto& lock_cpus = session->counters().socket_lock_cpus();
  std::cout << "Socket-lock cores "
            << lock_cpus[0] << " and "
            << lock_cpus[1]
            << " carry each socket's QMC counts: both ranks' bandwidth\n"
               "is visible from one measurement session, which is what the\n"
               "paper's MPI-framework integration plan builds on.\n";
  return 0;
}
