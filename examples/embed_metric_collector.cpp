// embed_metric_collector — embedding liblikwid the way downstream
// projects do, end to end.
//
// TVM's profiling module ships a `LikwidMetricCollector` that links
// against the real library's flat perfmon API instead of shelling out to
// likwid-perfctr: it initializes a session over the worker cpus, adds an
// event set, brackets every function call with start/stop and reports the
// counter deltas alongside TVM's own timings. This example reproduces
// that collector pattern over our C-compatible handle API (api/likwid.h):
// nothing below touches a C++ likwid header — exactly what an external
// C/C++/FFI embedder sees.
#include <cstdio>
#include <string>
#include <vector>

#include "api/likwid.h"

namespace {

/// Check a call, printing the failure the way an embedder's error path
/// would surface it.
bool ok(likwid_status status, const char* what) {
  if (status == LIKWID_OK) return true;
  std::fprintf(stderr, "%s failed: %s (%s)\n", what,
               likwid_statusName(status), likwid_lastError());
  return false;
}

/// The TVM-style collector: owns one likwid handle, Start() programs and
/// enables the chosen event set, Stop() disables it and returns one
/// (name, value) pair per event and derived metric.
class MetricCollector {
 public:
  struct Metric {
    std::string name;
    double value = 0;
  };

  MetricCollector(const char* machine, const std::vector<int>& cpus,
                  const char* event_spec)
      : num_cpus_(static_cast<int>(cpus.size())) {
    ok(likwid_init(machine, cpus.data(), num_cpus_, &handle_), "likwid_init");
    ok(likwid_addEventSet(handle_, event_spec, &set_), "likwid_addEventSet");
  }

  ~MetricCollector() { ok(likwid_finalize(handle_), "likwid_finalize"); }

  void Start() {
    ok(likwid_setupCounters(handle_, set_), "likwid_setupCounters");
    ok(likwid_startCounters(handle_), "likwid_startCounters");
  }

  /// Stop and collect: events summed over the measured cpus, metrics from
  /// the first measured cpu (the TVM collector reports per-device totals).
  std::vector<Metric> Stop() {
    ok(likwid_stopCounters(handle_), "likwid_stopCounters");
    std::vector<Metric> out;
    char name[128];
    int events = 0;
    ok(likwid_getNumberOfEvents(handle_, set_, &events),
       "likwid_getNumberOfEvents");
    for (int e = 0; e < events; ++e) {
      ok(likwid_getEventName(handle_, set_, e, name, sizeof(name)),
         "likwid_getEventName");
      double sum = 0;
      for (int c = 0; c < num_cpus_; ++c) {
        double v = 0;
        ok(likwid_getResult(handle_, set_, e, c, &v), "likwid_getResult");
        sum += v;
      }
      out.push_back({name, sum});
    }
    int metrics = 0;
    ok(likwid_getNumberOfMetrics(handle_, set_, &metrics),
       "likwid_getNumberOfMetrics");
    for (int m = 0; m < metrics; ++m) {
      ok(likwid_getMetricName(handle_, set_, m, name, sizeof(name)),
         "likwid_getMetricName");
      double v = 0;
      ok(likwid_getMetric(handle_, set_, m, 0, &v), "likwid_getMetric");
      out.push_back({name, v});
    }
    return out;
  }

  likwid_handle handle() const { return handle_; }

 private:
  likwid_handle handle_ = 0;
  int set_ = 0;
  int num_cpus_ = 0;
};

}  // namespace

int main() {
  const std::vector<int> cpus = {0, 1, 2, 3};
  MetricCollector collector("westmere-ep", cpus, "FLOPS_DP");

  // The embedder's "operator launch": the collector brackets the call,
  // the measured kernel runs through the same handle.
  collector.Start();
  ok(likwid_runWorkload(collector.handle(), "triad", 4'000'000, 5),
     "likwid_runWorkload");
  const auto report = collector.Stop();

  std::printf("TVM-style metric collector over the flat C API\n");
  std::printf("(westmere-ep, cpus 0-3, one STREAM triad call)\n\n");
  std::printf("%-44s %16s\n", "metric", "value");
  for (const auto& metric : report) {
    std::printf("%-44s %16.4g\n", metric.name.c_str(), metric.value);
  }

  // The exception boundary in action: the lifecycle errors an embedder
  // would hit, surfaced as status codes instead of C++ exceptions.
  std::printf("\nboundary checks:\n");
  likwid_handle fresh = 0;
  likwid_init(NULL, cpus.data(), static_cast<int>(cpus.size()), &fresh);
  likwid_addEventSet(fresh, "FLOPS_DP", NULL);
  std::printf("  start without setup -> %s\n",
              likwid_statusName(likwid_startCounters(fresh)));
  std::printf("  unknown group       -> %s\n",
              likwid_statusName(likwid_addEventSet(fresh, "NO_SUCH", NULL)));
  likwid_finalize(fresh);
  std::printf("  stale handle        -> %s\n",
              likwid_statusName(likwid_stopCounters(fresh)));
  return 0;
}
