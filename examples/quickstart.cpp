// quickstart — the paper's Section II-A workflow in ~60 lines, wired
// through the likwid::api::Session facade:
//   1. build a session around a simulated node (a Core 2 Quad, as in the
//      paper's listing),
//   2. probe its topology through cpuid,
//   3. measure the FLOPS_DP performance group over a threaded STREAM triad
//      in marker mode with the two named regions "Init" and "Benchmark",
//   4. print the per-core event counts and derived metrics.
#include <iostream>

#include "api/session.hpp"
#include "cli/output.hpp"
#include "cli/sinks.hpp"
#include "core/likwid.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/stream.hpp"

int main() {
  using namespace likwid;

  // -- the machine: one Session owns node, counters and marker state ------
  const auto session = api::Session::configure()
                           .name("quickstart")
                           .machine("core2-quad")
                           .cpus({0, 1, 2, 3})
                           .group("FLOPS_DP")
                           .build();
  std::cout << cli::render_header(session->topology());

  // -- pin four workers to cores 0-3 (likwid-pin ./a.out) ------------------
  ossim::ThreadRuntime runtime(session->kernel().scheduler());
  core::PinConfig pin;
  pin.cpu_list = {0, 1, 2, 3};
  core::PinWrapper wrapper(runtime, pin);
  const auto team =
      workloads::launch_openmp_team(runtime, workloads::OpenMpImpl::kGcc, 4);
  workloads::Placement placement;
  placement.cpus = runtime.placement(team.worker_tids);

  // -- start counters (likwid-perfctr -c 0-3 -g FLOPS_DP -m) ---------------
  session->start();

  // -- the "application" with markers, as in the paper's listing ----------
  session->bind_ambient_markers();
  likwid_markerInit(/*numberOfThreads=*/4, /*numberOfRegions=*/2);
  const int init_id = likwid_markerRegisterRegion("Init");
  const int bench_id = likwid_markerRegisterRegion("Benchmark");

  workloads::StreamConfig init_cfg;
  init_cfg.array_length = 200'000;
  init_cfg.repetitions = 1;
  workloads::StreamTriad init(init_cfg);
  for (int t = 0; t < 4; ++t) {
    likwid_markerStartRegion(t, placement.cpus[static_cast<std::size_t>(t)]);
  }
  run_workload(session->kernel(), init, placement);
  for (int t = 0; t < 4; ++t) {
    likwid_markerStopRegion(t, placement.cpus[static_cast<std::size_t>(t)],
                            init_id);
  }

  workloads::StreamConfig bench_cfg;
  bench_cfg.array_length = 4'000'000;
  bench_cfg.repetitions = 5;
  workloads::StreamTriad bench(bench_cfg);
  for (int t = 0; t < 4; ++t) {
    likwid_markerStartRegion(t, placement.cpus[static_cast<std::size_t>(t)]);
  }
  run_workload(session->kernel(), bench, placement);
  for (int t = 0; t < 4; ++t) {
    likwid_markerStopRegion(t, placement.cpus[static_cast<std::size_t>(t)],
                            bench_id);
  }
  likwid_markerClose();
  session->stop();

  // -- report: per-region tables through the pluggable ASCII sink ----------
  std::cout << cli::AsciiSink().regions(session->regions(0));
  return 0;
}
