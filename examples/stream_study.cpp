// stream_study — a condensed rerun of the paper's Case Study 1 (Figs. 4/5):
// the influence of thread pinning on OpenMP STREAM triad bandwidth on a
// dual-socket Westmere EP.
//
// For a few thread counts this example takes several unpinned samples
// (random placement, first-touch homing, migration between init and run)
// and one pinned run (likwid-pin round-robin over sockets), printing the
// spread vs. the stable pinned result.
#include <algorithm>
#include <iostream>
#include <vector>

#include "api/session.hpp"
#include "core/affinity.hpp"
#include "hwsim/presets.hpp"
#include "util/strings.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/stream.hpp"

namespace {

using namespace likwid;

/// One unpinned sample: place the team randomly, record first-touch homes,
/// migrate, run, report STREAM MB/s. Each sample is its own session —
/// same preset, sample-specific seed.
double unpinned_sample(std::uint64_t seed, int threads) {
  const auto session = api::Session::configure()
                           .name("stream_study unpinned")
                           .machine("westmere-ep")
                           .seed(seed)
                           .build();
  hwsim::SimMachine& machine = session->machine();
  ossim::SimKernel& kernel = session->kernel();
  ossim::ThreadRuntime runtime(kernel.scheduler());
  const auto team = workloads::launch_openmp_team(
      runtime, workloads::OpenMpImpl::kIntel, threads);

  // First touch: data homed where the workers sit during initialization.
  std::vector<int> homes;
  for (const int tid : team.worker_tids) {
    homes.push_back(machine.socket_of(runtime.thread(tid).cpu));
  }
  // The OS may migrate unpinned threads before the measured run.
  runtime.migrate_unpinned();
  workloads::StreamConfig cfg;
  cfg.chunk_home_sockets = homes;
  workloads::StreamTriad triad(cfg);
  workloads::Placement placement;
  placement.cpus = runtime.placement(team.worker_tids);
  const double seconds = run_workload(kernel, triad, placement);
  return triad.reported_bandwidth_mbs(seconds);
}

double pinned_run(int threads) {
  const auto session = api::Session::configure()
                           .name("stream_study pinned")
                           .machine("westmere-ep")
                           .seed(7)
                           .build();
  const core::NodeTopology& topo = session->topology();
  ossim::ThreadRuntime runtime(session->kernel().scheduler());
  core::PinConfig pin;
  pin.cpu_list = core::scatter_cpu_list(topo, threads);
  pin.model = core::ThreadModel::kIntel;
  pin.skip = core::default_skip_mask(pin.model);
  core::PinWrapper wrapper(runtime, pin);
  const auto team = workloads::launch_openmp_team(
      runtime, workloads::OpenMpImpl::kIntel, threads);
  workloads::StreamTriad triad(workloads::StreamConfig{});
  workloads::Placement placement;
  placement.cpus = runtime.placement(team.worker_tids);
  const double seconds = run_workload(session->kernel(), triad, placement);
  return triad.reported_bandwidth_mbs(seconds);
}

}  // namespace

int main() {
  using namespace likwid;
  std::cout << "STREAM triad on "
            << hwsim::presets::preset_by_key("westmere-ep").name
            << " (icc profile), MB/s\n";
  std::cout << "threads | unpinned min / median / max (25 samples) | "
               "likwid-pin\n";
  for (const int threads : {1, 2, 4, 6, 12, 24}) {
    std::vector<double> samples;
    for (int s = 0; s < 25; ++s) {
      samples.push_back(
          unpinned_sample(1000 + 17 * s + threads, threads));
    }
    std::sort(samples.begin(), samples.end());
    const double pinned = pinned_run(threads);
    std::cout << util::strprintf(
        "%7d | %8.0f / %8.0f / %8.0f            | %8.0f\n", threads,
        samples.front(), samples[samples.size() / 2], samples.back(), pinned);
  }
  return 0;
}
