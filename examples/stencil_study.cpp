// stencil_study — a condensed rerun of the paper's Case Studies 2 and 3:
// the temporally blocked Jacobi smoother on a dual-socket Nehalem EP.
//
// Shows, via likwid-perfctr uncore measurements on one socket, how
// nontemporal stores cut the memory traffic by ~1/3 and how the wavefront
// (temporal blocking) variant cuts it several-fold — and how splitting the
// wavefront group across the two sockets destroys the benefit (the paper's
// Fig. 11 "2 per socket" case).
#include <iostream>

#include "api/session.hpp"
#include "hwsim/presets.hpp"
#include "util/strings.hpp"
#include "workloads/jacobi.hpp"

namespace {

using namespace likwid;

struct Row {
  std::string name;
  double l3_in, l3_out, volume_gb, mlups;
};

Row measure(workloads::JacobiVariant variant, const std::vector<int>& cpus,
            const std::string& name) {
  // A fresh session per variant: same preset, same seed, fresh node.
  const auto session =
      api::Session::configure()
          .name("stencil_study " + name)
          .machine("nehalem-ep")
          .cpus(cpus)
          .custom("UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1")
          .build();
  workloads::JacobiConfig cfg;
  cfg.n = 120;
  cfg.sweeps = 4;
  cfg.variant = variant;
  workloads::JacobiStencil jacobi(cfg);

  core::PerfCtr& ctr = session->counters();
  session->start();
  workloads::Placement placement;
  placement.cpus = cpus;
  const double seconds = run_workload(session->kernel(), jacobi, placement);
  session->stop();

  const int lock_cpu = ctr.socket_lock_cpus().front();
  Row row;
  row.name = name;
  row.l3_in = ctr.extrapolated_count(0, lock_cpu, "UNC_L3_LINES_IN_ANY");
  row.l3_out = ctr.extrapolated_count(0, lock_cpu, "UNC_L3_LINES_OUT_ANY");
  // Sum over all measured sockets for the split-pinning case.
  double total_lines = 0;
  for (const int cpu : ctr.socket_lock_cpus()) {
    total_lines += ctr.extrapolated_count(0, cpu, "UNC_L3_LINES_IN_ANY") +
                   ctr.extrapolated_count(0, cpu, "UNC_L3_LINES_OUT_ANY");
  }
  row.volume_gb = total_lines * 64.0 / 1e9;
  row.mlups = jacobi.mlups(seconds);
  return row;
}

}  // namespace

int main() {
  using namespace likwid;
  std::cout << "3D Jacobi 120^3, 4 sweeps on "
            << hwsim::presets::preset_by_key("nehalem-ep").name << "\n";
  std::cout << "(paper Table II: NT saves ~1/3 traffic; blocking ~4.5x; "
               "Fig. 11: wrong pinning halves wavefront performance)\n\n";

  // One socket of the Nehalem EP: physical cores 0-3 (os ids 0,1,2,3).
  const std::vector<int> one_socket = {0, 1, 2, 3};
  // Wrong pinning: two pipeline stages per socket.
  const std::vector<int> split = {0, 1, 4, 5};

  std::vector<Row> rows;
  rows.push_back(measure(workloads::JacobiVariant::kThreaded, one_socket,
                         "threaded"));
  rows.push_back(measure(workloads::JacobiVariant::kThreadedNT, one_socket,
                         "threaded (NT)"));
  rows.push_back(measure(workloads::JacobiVariant::kWavefront, one_socket,
                         "wavefront 1x4"));
  rows.push_back(measure(workloads::JacobiVariant::kWavefront, split,
                         "wavefront 2+2 (wrong pinning)"));

  std::cout << util::strprintf("%-30s %14s %14s %12s %10s\n", "variant",
                               "UNC_L3_LINES_IN", "UNC_L3_LINES_OUT",
                               "volume [GB]", "MLUPS");
  for (const auto& r : rows) {
    std::cout << util::strprintf("%-30s %14.3g %14.3g %12.2f %10.0f\n",
                                 r.name.c_str(), r.l3_in, r.l3_out,
                                 r.volume_gb, r.mlups);
  }
  return 0;
}
