// node_monitor — likwid-perfctr as a whole-node monitoring tool, the
// paper's "sleep" trick:
//
//   $ likwid-perfctr -c 0-7 -g ... sleep 1
//
// Counting is core-based, not process-based: by measuring every core while
// running only "sleep", whatever else executes on the node shows up in the
// counters. Here a background Jacobi run plays the role of the foreign
// workload, and the monitor sees its memory traffic without ever touching
// the application.
#include <iostream>

#include "cli/output.hpp"
#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/jacobi.hpp"

int main() {
  using namespace likwid;
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  const core::NodeTopology topo = core::probe_topology(machine);
  std::cout << cli::render_header(topo);
  std::cout << "Monitoring all cores with group MEM while a foreign Jacobi\n"
               "run owns socket 0 (the monitor only runs 'sleep'):\n\n";

  // Monitor every physical core of the node.
  core::PerfCtr ctr(kernel, {0, 1, 2, 3, 4, 5, 6, 7});
  ctr.add_group("MEM");
  ctr.start();

  // The "foreign" application: a Jacobi smoother on socket 0, not started
  // by the monitor and invisible to a process-based profiler.
  workloads::JacobiConfig cfg;
  cfg.n = 100;
  cfg.sweeps = 4;
  workloads::JacobiStencil jacobi(cfg);
  workloads::Placement placement;
  placement.cpus = {0, 1, 2, 3};
  run_workload(kernel, jacobi, placement);

  // ... and the monitor's own "application" is just sleep:
  kernel.advance_time(1.0);

  ctr.stop();
  std::cout << cli::render_measurement(ctr, 0);
  std::cout << "\nNote: the QMC (memory controller) events appear on the\n"
               "socket-lock core of socket 0, where the Jacobi ran.\n";
  return 0;
}
