// node_monitor — continuous whole-node monitoring with the monitor
// subsystem, the always-on generalization of the paper's "sleep" trick:
//
//   $ likwid-perfctr -c 0-7 -g ... sleep 1
//
// The one-shot version measured a single interval; likwid-agent's
// Collector closes a counter interval every 100 ms, retains the node-level
// samples in a bounded ring, and the Aggregator rolls them up into
// windowed min/avg/max/p95 statistics. Counting stays core-based, not
// process-based: the collector's resident workload is "foreign" to the
// monitor, which only reads counters — exactly like the real tool
// wrapping `sleep`.
#include <iostream>

#include "cli/series_output.hpp"
#include "monitor/agent.hpp"

int main() {
  using namespace likwid;

  monitor::AgentConfig cfg;
  cfg.num_machines = 2;           // a two-node "fleet"
  cfg.duration_seconds = 3.0;
  cfg.monitor.machine_preset = "nehalem-ep";
  cfg.monitor.groups = {"MEM", "FLOPS_DP"};  // rotate between intervals
  cfg.monitor.interval_seconds = 0.1;
  cfg.monitor.window_samples = 5;

  std::cout << "Monitoring " << cfg.num_machines
            << " nodes for 3 s at 100 ms cadence, multiplexing MEM and\n"
               "FLOPS_DP between intervals. Each node runs its own foreign\n"
               "workload; the monitor never touches it, it only reads the\n"
               "counters.\n\n";

  monitor::Agent agent(cfg);
  agent.run();

  for (const auto& collector : agent.collectors()) {
    std::cout << "machine " << collector->machine_id() << " ran '"
              << collector->workload().name() << "': "
              << collector->samples().size() << " samples, "
              << collector->steps() << " intervals\n";
  }
  std::cout << "\nWindowed rollups (min/avg/max/p95 per metric):\n\n"
            << cli::csv_series(agent.rollups());
  std::cout << "\nNote: with rotation each group sees every other interval;\n"
               "its rates are still computed against the full wall cadence,\n"
               "the same extrapolation likwid-perfctr applies when\n"
               "multiplexing event sets.\n";
  return 0;
}
