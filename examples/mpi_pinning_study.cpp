// mpi_pinning_study — the paper's Section II-C hybrid scenario end to end:
//
//   $ export OMP_NUM_THREADS=8
//   $ mpiexec -n 64 -pernode likwid-pin -c 0-7 -s 0x3 ./a.out
//
// scaled to a 4-node simulated Westmere cluster. The study launches the
// job twice — once without pinning (threads land wherever the scheduler
// puts them) and once wrapped in likwid-pin with the Intel-MPI skip mask —
// and reports the per-rank STREAM bandwidth of both, plus a per-rank
// FLOPS_DP measurement of the pinned job (the Section V MPI-integration
// goal).
#include <algorithm>
#include <cstdio>

#include "hwsim/presets.hpp"
#include "mpisim/launcher.hpp"

using namespace likwid;

namespace {

mpisim::MpirunConfig job_config(bool pinned) {
  mpisim::MpirunConfig cfg;
  cfg.np = 4;
  cfg.pernode = true;
  cfg.omp = workloads::OpenMpImpl::kIntelMpi;
  cfg.omp_threads = 8;
  cfg.pin = pinned;
  if (pinned) {
    // likwid-pin -c 0,6,1,7,2,8,3,9 -s 0x3: scatter over both sockets,
    // skip the MPI progress thread and the OpenMP shepherd.
    cfg.node_cpu_list = {0, 6, 1, 7, 2, 8, 3, 9};
    cfg.skip = util::SkipMask::parse("0x3");
  }
  return cfg;
}

double rank_bandwidth(const workloads::StreamConfig& stream, double seconds) {
  workloads::StreamTriad triad(stream);
  return triad.reported_bandwidth_mbs(seconds);
}

}  // namespace

int main() {
  workloads::StreamConfig stream;
  stream.array_length = 8'000'000;
  stream.repetitions = 4;

  std::printf("hybrid MPI+OpenMP pinning study (4 x westmere-ep, "
              "8 threads per rank)\n\n");

  double unpinned_min = 1e30, unpinned_max = 0;
  {
    mpisim::Cluster cluster(4, hwsim::presets::westmere_ep(), /*seed=*/7);
    mpisim::MpiJob job(cluster, job_config(/*pinned=*/false));
    const auto seconds = job.run_triad(stream);
    for (const double s : seconds) {
      const double bw = rank_bandwidth(stream, s);
      unpinned_min = std::min(unpinned_min, bw);
      unpinned_max = std::max(unpinned_max, bw);
    }
  }
  std::printf("unpinned: per-rank bandwidth %8.0f .. %8.0f MB/s\n",
              unpinned_min, unpinned_max);

  double pinned_min = 1e30;
  {
    mpisim::Cluster cluster(4, hwsim::presets::westmere_ep(), /*seed=*/7);
    mpisim::MpiJob job(cluster, job_config(/*pinned=*/true));
    int total_skipped = 0;
    for (const auto& rank : job.ranks()) {
      total_skipped += rank.wrapper->skipped_count();
    }
    std::printf("pinned:   every rank skipped %d service threads "
                "(mask 0x3), workers scattered over both sockets\n",
                total_skipped / static_cast<int>(job.ranks().size()));
    const auto seconds = job.run_triad(stream);
    for (const double s : seconds) {
      pinned_min = std::min(pinned_min, rank_bandwidth(stream, s));
    }
    std::printf("pinned:   per-rank bandwidth %8.0f MB/s on all ranks\n",
                pinned_min);

    std::printf("\nper-rank FLOPS_DP (pinned job):\n");
    for (const auto& m : job.measure_triad("FLOPS_DP", stream)) {
      for (const auto& row : m.metrics) {
        if (row.name() != "DP MFlops/s") continue;
        double sum = 0;
        for (const double v : row.values) sum += v;
        std::printf("  rank %d (node %d): %8.1f MFlops/s across %zu cpus\n",
                    m.rank, m.node, sum, row.values.size());
      }
    }
  }

  std::printf("\npinned worst rank vs unpinned worst rank: %.2fx\n",
              pinned_min / unpinned_min);
  return 0;
}
