// multiplex_study — counter multiplexing from the library API
// (Section II-A: "likwid-perfCtr also supports a multiplexing mode, where
// counters are assigned to several event sets in a 'round robin' manner.
// On the downside, short-running measurements will then carry large
// statistical errors").
//
// The study measures the STREAM triad three ways:
//   1. three separate runs, one group each (the ground truth),
//   2. one run with the three groups multiplexed over many quanta,
//   3. one *short* multiplexed run (few quanta),
// and reports the extrapolation error of the multiplexed counts.
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "workloads/stream.hpp"

using namespace likwid;

namespace {

const std::vector<std::string> kGroups = {"FLOPS_DP", "L2", "MEM"};

workloads::StreamConfig stream_config(int repetitions) {
  workloads::StreamConfig cfg;
  cfg.array_length = 2'000'000;
  cfg.repetitions = repetitions;
  return cfg;
}

/// Run a two-phase program (vectorized triad, then a scalar-code triad of
/// equal length: the packed-double flops exist only in phase one) with the
/// three groups multiplexed at the given rotation granularity, and return
/// the extrapolated packed-double flop count.
double measured_packed_flops(int quanta_per_phase) {
  auto builder = api::Session::configure()
                     .name("multiplex_study")
                     .machine("nehalem-ep")
                     .cpus({0, 1, 2, 3});
  for (const auto& g : kGroups) builder.group(g);
  const auto session = builder.build();
  ossim::SimKernel& kernel = session->kernel();
  core::PerfCtr& ctr = session->counters();

  workloads::StreamConfig vec_cfg = stream_config(6);
  workloads::StreamConfig scalar_cfg = vec_cfg;
  scalar_cfg.compiler.vectorized = false;  // flops land in the scalar event
  workloads::StreamTriad vectorized(vec_cfg);
  workloads::StreamTriad scalar(scalar_cfg);

  workloads::Placement p;
  p.cpus = {0, 1, 2, 3};
  for (const int c : p.cpus) kernel.scheduler().add_busy(c, 1);

  // The two phases are sliced into q and q+1 quanta: rotation periods
  // never divide real program phases exactly, and that misalignment is
  // precisely where the extrapolation error comes from.
  workloads::RunOptions opts;
  opts.quanta = quanta_per_phase;
  opts.between_quanta = [&ctr](int) { ctr.rotate(); };
  ctr.start();
  run_workload(kernel, vectorized, p, opts);
  ctr.rotate();  // rotation is oblivious to the phase boundary
  workloads::RunOptions opts2 = opts;
  opts2.quanta = quanta_per_phase + 1;
  run_workload(kernel, scalar, p, opts2);
  ctr.stop();

  double sum = 0;
  for (const int cpu : ctr.cpus()) {
    sum += ctr.extrapolated_count(
        0, cpu, "FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");
  }
  return sum;
}

}  // namespace

int main() {
  std::printf("counter multiplexing study: FLOPS_DP + L2 + MEM rotated\n"
              "over a two-phase program (vectorized triad, then scalar)\n"
              "on a Nehalem EP socket\n\n");

  // Ground truth: one packed op per iteration, phase one only.
  const double exact =
      static_cast<double>(stream_config(6).array_length) * 6;

  std::printf("%-26s %16s %12s\n", "rotation granularity",
              "packed-DP flops", "error");
  for (const int quanta : {1, 2, 3, 6, 12, 48}) {
    const double est = measured_packed_flops(quanta);
    std::printf("%3d quanta per phase       %16.4g %11.1f%%\n", quanta, est,
                100.0 * std::fabs(est - exact) / exact);
  }
  std::printf("\nexact count: %.4g — \"short-running measurements will\n"
              "carry large statistical errors\" (Section II-A); finer\n"
              "rotation converges on the truth.\n", exact);
  return 0;
}
