// prefetch_study — the likwid-features workflow of Section II-D as a
// library user would script it:
//
//   1. list the switchable processor features (paper's listing),
//   2. measure a streaming kernel with the MEM group,
//   3. disable the hardware prefetchers through the Features API
//      (IA32_MISC_ENABLE bits, like `likwid-features -u ...`),
//   4. re-measure and compare: streaming bandwidth collapses without the
//      prefetchers ("in some situations turning off hardware prefetching
//      even increases performance" — and in this one it costs).
#include <cstdio>

#include "api/session.hpp"
#include "workloads/synthetic.hpp"

using namespace likwid;

namespace {

double measure_stream_bandwidth(api::Session& session) {
  // Fresh counter scope on the same (feature-reconfigured) node.
  session.reset_counters();
  session.add_group("MEM");
  workloads::SyntheticKernel ladder(
      workloads::cache_ladder_kernel(64 << 20, 2));
  workloads::Placement p;
  p.cpus = {0};
  session.start();
  run_workload(session.kernel(), ladder, p);
  session.stop();
  for (const auto& row : session.measurement(0).metrics) {
    if (row.name == "Memory bandwidth [MBytes/s]") {
      return row.values.front();
    }
  }
  return 0;
}

}  // namespace

int main() {
  const auto session = api::Session::configure()
                           .name("prefetch_study")
                           .machine("core2-duo")
                           .cpus({0})
                           .build();
  session->kernel().scheduler().add_busy(0, 1);

  // Step 1: the likwid-features report.
  core::Features features = session->features(/*cpu=*/0);
  std::printf("switchable features on %s:\n",
              session->machine().spec().name.c_str());
  for (const auto& state : features.report()) {
    std::printf("  %-28s %s\n", state.name.c_str(), state.state.c_str());
  }

  // Step 2: streaming bandwidth with all prefetchers on.
  const double bw_on = measure_stream_bandwidth(*session);

  // Step 3: likwid-features -u HW_PREFETCHER -u DCU_PREFETCHER.
  features.set_prefetcher(core::Prefetcher::kHardware, false);
  features.set_prefetcher(core::Prefetcher::kDcu, false);
  std::printf("\nprefetchers disabled via IA32_MISC_ENABLE\n");

  // Step 4: re-measure.
  const double bw_off = measure_stream_bandwidth(*session);
  std::printf("stream bandwidth, prefetchers on : %8.0f MB/s\n", bw_on);
  std::printf("stream bandwidth, prefetchers off: %8.0f MB/s (%.0f%%)\n",
              bw_off, 100.0 * bw_off / bw_on);

  // Restore, as a well-behaved tool would.
  features.set_prefetcher(core::Prefetcher::kHardware, true);
  features.set_prefetcher(core::Prefetcher::kDcu, true);
  const double bw_restored = measure_stream_bandwidth(*session);
  std::printf("stream bandwidth, restored       : %8.0f MB/s\n", bw_restored);
  return 0;
}
