// Property-based tests: invariants that must hold across randomized
// machine shapes, cache geometries, access streams and counter
// programmings — the sweeps DESIGN.md commits to.
#include <gtest/gtest.h>

#include <random>

#include "cachesim/hierarchy.hpp"
#include "core/topology.hpp"
#include "hwsim/machine.hpp"
#include "hwsim/presets.hpp"
#include "perfmodel/bandwidth.hpp"
#include "util/status.hpp"

namespace likwid {
namespace {

// --- randomized machines -----------------------------------------------------

hwsim::MachineSpec random_intel_machine(std::mt19937_64& rng) {
  hwsim::MachineSpec m = hwsim::presets::nehalem_ep();
  std::uniform_int_distribution<int> sockets(1, 4);
  std::uniform_int_distribution<int> cores(1, 8);
  std::uniform_int_distribution<int> smt(1, 2);
  std::uniform_int_distribution<int> gap(0, 1);
  m.sockets = sockets(rng);
  m.cores_per_socket = cores(rng);
  m.threads_per_core = smt(rng);
  m.core_apic_ids.clear();
  // Possibly non-contiguous core numbering (Westmere style).
  int id = 0;
  for (int c = 0; c < m.cores_per_socket; ++c) {
    m.core_apic_ids.push_back(id);
    id += 1 + gap(rng) * (c == m.cores_per_socket / 2 ? 5 : 0);
  }
  // Keep caches consistent with the new shape.
  const int threads_per_socket = m.cores_per_socket * m.threads_per_core;
  for (auto& c : m.caches) {
    if (c.level == 3) {
      c.shared_by_threads = static_cast<std::uint32_t>(threads_per_socket);
    } else {
      c.shared_by_threads = static_cast<std::uint32_t>(m.threads_per_core);
    }
  }
  m.name = "randomized Nehalem variant";
  return m;
}

class RandomMachine : public ::testing::TestWithParam<int> {};

TEST_P(RandomMachine, TopologyDecodeRoundTrips) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const hwsim::MachineSpec spec = random_intel_machine(rng);
  ASSERT_NO_THROW(spec.validate());
  hwsim::SimMachine machine(spec);
  const core::NodeTopology topo = core::probe_topology(machine);
  EXPECT_EQ(topo.num_sockets, spec.sockets);
  EXPECT_EQ(topo.num_cores_per_socket, spec.cores_per_socket);
  EXPECT_EQ(topo.num_threads_per_core, spec.threads_per_core);
  for (const auto& hw : machine.threads()) {
    const auto& e = topo.threads.at(static_cast<std::size_t>(hw.os_id));
    EXPECT_EQ(e.socket_id, hw.socket);
    EXPECT_EQ(e.core_id, hw.core_apic);
    EXPECT_EQ(e.thread_id, hw.smt);
  }
}

TEST_P(RandomMachine, CacheGroupsAlwaysPartition) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  hwsim::SimMachine machine(random_intel_machine(rng));
  const core::NodeTopology topo = core::probe_topology(machine);
  for (const auto& cache : topo.caches) {
    int covered = 0;
    for (const auto& g : cache.groups) covered += static_cast<int>(g.size());
    EXPECT_EQ(covered, topo.num_hw_threads) << "L" << cache.level;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMachine, ::testing::Range(0, 12));

// --- cache invariants ----------------------------------------------------------

class RandomStream : public ::testing::TestWithParam<int> {};

TEST_P(RandomStream, HitsPlusFillsEqualAccesses) {
  // For any access stream: every L1 access either hits or causes a fill.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const hwsim::MachineSpec spec = hwsim::presets::nehalem_ep();
  const auto threads = hwsim::enumerate_hw_threads(spec);
  cachesim::CacheHierarchy h(spec, threads);
  for (const auto& t : threads) h.set_prefetchers(t.os_id, {});
  std::uniform_int_distribution<std::uint64_t> addr(0, 1 << 22);
  std::uniform_int_distribution<int> kind(0, 2);
  for (int i = 0; i < 20000; ++i) {
    h.access(0, addr(rng) * 8, 8,
             static_cast<cachesim::AccessKind>(kind(rng)));
  }
  const auto& t = h.cpu_traffic(0);
  // NT stores neither hit nor fill L1.
  EXPECT_DOUBLE_EQ(t.l1_hits + t.l1_fills + t.nt_store_lines,
                   t.loads + t.stores);
  // Demand L2 requests = L1 demand misses.
  EXPECT_DOUBLE_EQ(t.l2_requests, t.l2_hits + t.l2_misses);
  // Everything fetched from somewhere: misses are served by L2, L3,
  // remote caches or memory.
  EXPECT_DOUBLE_EQ(t.l2_requests,
                   t.l2_hits + t.l3_hits + t.remote_l3_hits +
                       t.mem_lines_read);
}

TEST_P(RandomStream, MissesDecreaseWithCapacity) {
  // Monotonicity: a larger L2 never produces more L2 misses on the same
  // access stream (fully-LRU inclusion property).
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  std::vector<std::pair<std::uint64_t, bool>> stream;
  std::uniform_int_distribution<std::uint64_t> addr(0, 4096);
  std::uniform_int_distribution<int> w(0, 1);
  for (int i = 0; i < 30000; ++i) {
    stream.push_back({addr(rng) * 64, w(rng) == 1});
  }
  double previous_misses = -1;
  for (const std::uint64_t kb : {64, 256, 1024}) {
    hwsim::MachineSpec spec = hwsim::presets::nehalem_ep();
    for (auto& c : spec.caches) {
      if (c.level == 2) c.size_bytes = kb * 1024;
    }
    const auto threads = hwsim::enumerate_hw_threads(spec);
    cachesim::CacheHierarchy h(spec, threads);
    for (const auto& t : threads) h.set_prefetchers(t.os_id, {});
    for (const auto& [a, is_store] : stream) {
      h.access(0, a, 8,
               is_store ? cachesim::AccessKind::kStore
                        : cachesim::AccessKind::kLoad);
    }
    const double misses = h.cpu_traffic(0).l2_misses;
    if (previous_misses >= 0) {
      EXPECT_LE(misses, previous_misses + 1e-9) << kb << " kB L2";
    }
    previous_misses = misses;
  }
}

TEST_P(RandomStream, InclusiveL3ContainsInnerLevels) {
  // With an inclusive L3, any line resident in L1 must be in the L3.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 17 + 11);
  hwsim::MachineSpec spec = hwsim::presets::nehalem_ep();
  for (auto& c : spec.caches) {
    if (c.level == 3) c.inclusive = true;
  }
  const auto threads = hwsim::enumerate_hw_threads(spec);
  cachesim::CacheHierarchy h(spec, threads);
  for (const auto& t : threads) h.set_prefetchers(t.os_id, {});
  std::uniform_int_distribution<std::uint64_t> addr(0, 1 << 20);
  std::vector<std::uint64_t> touched;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t a = addr(rng) * 64;
    h.access(0, a, 8, cachesim::AccessKind::kLoad);
    touched.push_back(a);
  }
  // Probe: re-access a sample; if it hits L1/L2 instantly (no new memory
  // read) the line must still be L3-resident. Use traffic deltas.
  const auto before = h.cpu_traffic(0);
  int probed = 0;
  for (std::size_t i = touched.size() - 100; i < touched.size(); ++i) {
    h.access(0, touched[i], 8, cachesim::AccessKind::kLoad);
    ++probed;
  }
  const auto after = h.cpu_traffic(0);
  // Recently touched lines must be close: no more memory reads than probes
  // and most should hit the hierarchy.
  EXPECT_LE(after.mem_lines_read - before.mem_lines_read, probed);
  EXPECT_GT(after.l1_hits + after.l3_hits + after.l2_hits -
                (before.l1_hits + before.l3_hits + before.l2_hits),
            probed / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStream, ::testing::Range(0, 8));

// --- bandwidth allocator conservation ---------------------------------------

class RandomDemands : public ::testing::TestWithParam<int> {};

TEST_P(RandomDemands, NeverExceedsCapsAndNeverExceedsDesire) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 2029 + 1);
  std::uniform_real_distribution<double> gbs(0.0, 30.0);
  std::uniform_int_distribution<int> count(1, 12);
  std::uniform_int_distribution<int> domains(1, 4);
  const int n = count(rng);
  const int d = domains(rng);
  std::vector<perfmodel::BandwidthDemand> demands;
  for (int i = 0; i < n; ++i) {
    perfmodel::BandwidthDemand dem;
    dem.desired_gbs = gbs(rng);
    dem.domain_fraction.assign(static_cast<std::size_t>(d), 0.0);
    // Random split over domains, normalized.
    double total = 0;
    std::vector<double> raw(static_cast<std::size_t>(d));
    for (auto& r : raw) {
      r = gbs(rng) + 0.01;
      total += r;
    }
    for (int k = 0; k < d; ++k) {
      dem.domain_fraction[static_cast<std::size_t>(k)] =
          raw[static_cast<std::size_t>(k)] / total;
    }
    demands.push_back(std::move(dem));
  }
  std::vector<double> caps;
  for (int k = 0; k < d; ++k) caps.push_back(gbs(rng) + 5.0);

  const auto achieved = perfmodel::allocate_bandwidth(demands, caps);
  ASSERT_EQ(achieved.size(), demands.size());
  for (std::size_t i = 0; i < achieved.size(); ++i) {
    EXPECT_GE(achieved[i], 0.0);
    EXPECT_LE(achieved[i], demands[i].desired_gbs + 1e-9);
  }
  for (int k = 0; k < d; ++k) {
    double util = 0;
    for (std::size_t i = 0; i < achieved.size(); ++i) {
      if (demands[i].desired_gbs > 0) {
        util += achieved[i] *
                demands[i].domain_fraction[static_cast<std::size_t>(k)];
      }
    }
    EXPECT_LE(util, caps[static_cast<std::size_t>(k)] * 1.01)
        << "domain " << k << " over capacity";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDemands, ::testing::Range(0, 16));

// --- counter width sweep ------------------------------------------------------

class CounterWidth : public ::testing::TestWithParam<int> {};

TEST_P(CounterWidth, DeltaRecoversCountAcrossWrap) {
  const int bits = GetParam();
  const std::uint64_t mask = hwsim::counter_mask(bits);
  // Any (start, added) pair with added < 2^bits is recovered exactly.
  std::mt19937_64 rng(static_cast<std::uint64_t>(bits) * 77);
  std::uniform_int_distribution<std::uint64_t> dist(0, mask);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t start = dist(rng);
    const std::uint64_t added = dist(rng);
    const std::uint64_t stop = (start + added) & mask;
    EXPECT_EQ(hwsim::counter_delta(start, stop, bits), added);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CounterWidth,
                         ::testing::Values(32, 40, 48, 64));

}  // namespace
}  // namespace likwid
