// Tests for the group/metric static analyzer (src/analysis/lint.hpp):
// each bad-fixture class must be rejected with its exact diagnostic, and
// every builtin preset catalog must lint clean of errors on every machine
// model (the same invariant the likwid-lint ctest smoke cases enforce on
// the installed binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "core/perf_groups.hpp"
#include "hwsim/arch.hpp"
#include "hwsim/presets.hpp"

namespace likwid::analysis {
namespace {

hwsim::MachineSpec westmere() {
  return hwsim::presets::preset_by_key("westmere-ep");
}

/// The subset of `diags` produced by one check id.
std::vector<Diagnostic> of_check(const std::vector<Diagnostic>& diags,
                                 const std::string& check) {
  std::vector<Diagnostic> out;
  std::copy_if(diags.begin(), diags.end(), std::back_inserter(out),
               [&](const Diagnostic& d) { return d.check == check; });
  return out;
}

// --- fixture class 1: unschedulable event set -------------------------------

TEST(LintGroup, RejectsEventSetExceedingGeneralPurposeCounters) {
  // Westmere-EP has 4 general-purpose core counters; five core events
  // cannot be scheduled simultaneously.
  const core::EventGroup group{
      "TOOWIDE",
      "fixture: five core events on a four-counter PMU",
      {"MEM_INST_RETIRED_LOADS", "MEM_INST_RETIRED_STORES", "L1D_REPL",
       "L1D_M_EVICT", "L2_LINES_IN_ANY"},
      {{"Runtime [s]", "time"}}};
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "schedulability");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].machine, "westmere-ep");
  EXPECT_EQ(diags[0].group, "TOOWIDE");
  EXPECT_EQ(diags[0].message,
            "5 core events but only 4 general-purpose counters");
}

TEST(LintGroup, RejectsUncoreEventsOnMachinesWithoutUncoreCounters) {
  // Core 2 has no uncore counters at all, so any UNC_* event is
  // unschedulable — but on Core 2 those names are also undocumented, so
  // exercise the budget check on Westmere by exceeding its 8 slots via
  // a group that is fine on the core side.
  core::EventGroup group{"UNCWIDE",
                         "fixture: nine uncore events on an eight-slot PMU",
                         {},
                         {{"Runtime [s]", "time"}}};
  for (int i = 0; i < 9; ++i) {
    // Alternate over the documented uncore events; duplicates still each
    // claim a counter slot, exactly as PerfCtr::add_group assigns them.
    group.events.push_back(i % 2 == 0 ? "UNC_L3_HITS_ANY"
                                      : "UNC_L3_MISS_ANY");
  }
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "schedulability");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].message, "9 uncore events but only 8 uncore counters");
}

TEST(LintGroup, RejectsFixedEventOutsideTheImplicitlyCountedSet) {
  // Only the first two fixed counters are programmed implicitly;
  // CPU_CLK_UNHALTED_REF sits at fixed index 2 and would be dropped.
  const core::EventGroup group{"REFCYC",
                               "fixture: third fixed counter requested",
                               {"CPU_CLK_UNHALTED_REF"},
                               {{"Runtime [s]", "time"}}};
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "schedulability");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].message,
            "fixed event 'CPU_CLK_UNHALTED_REF' is outside the implicitly "
            "counted set and would be silently dropped");
}

// --- fixture class 2: undefined events --------------------------------------

TEST(LintGroup, RejectsEventTheArchitectureDoesNotDocument) {
  const core::EventGroup group{"GHOST",
                               "fixture: event name outside the event table",
                               {"NO_SUCH_EVENT"},
                               {{"Runtime [s]", "time"}}};
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "undefined-event");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].message,
            "event 'NO_SUCH_EVENT' is not documented on Intel Westmere");
}

TEST(LintGroup, RejectsFormulaReferencingAnEventTheSetDoesNotCount) {
  const core::EventGroup group{
      "PHANTOM",
      "fixture: formula over an event the set does not program",
      {"MEM_INST_RETIRED_LOADS"},
      {{"Load rate", "MEM_INST_RETIRED_LOADS/time"},
       {"Store rate", "MEM_INST_RETIRED_STORES/time"}}};
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "undefined-event");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].metric, "Store rate");
  EXPECT_EQ(diags[0].message,
            "formula references 'MEM_INST_RETIRED_STORES', which the event "
            "set does not count");
}

// --- fixture class 3: unused events -----------------------------------------

TEST(LintGroup, WarnsWhenAnEventBurnsACounterSlotForNothing) {
  const core::EventGroup group{
      "WASTE",
      "fixture: programmed event no formula consumes",
      {"MEM_INST_RETIRED_LOADS", "MEM_INST_RETIRED_STORES"},
      {{"Load rate", "MEM_INST_RETIRED_LOADS/time"}}};
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "unused-event");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].message,
            "event 'MEM_INST_RETIRED_STORES' is counted but no metric "
            "formula consumes it");
}

// --- fixture class 4: division by a possibly-zero counter -------------------

TEST(LintGroup, WarnsOnDivisionByAnUnguardedCounter) {
  // MEM_INST_RETIRED_STORES is a plain programmable counter — nothing
  // guarantees a workload stores at all, and x/0 evaluates to 0.
  const core::EventGroup group{
      "RATIO",
      "fixture: ratio over a counter that may read zero",
      {"MEM_INST_RETIRED_LOADS", "MEM_INST_RETIRED_STORES"},
      {{"Load to store ratio",
        "MEM_INST_RETIRED_LOADS/MEM_INST_RETIRED_STORES"}}};
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "zero-division");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].metric, "Load to store ratio");
  EXPECT_EQ(diags[0].message,
            "divisor (MEM_INST_RETIRED_STORES) is not provably nonzero; "
            "x/0 evaluates to 0");
}

TEST(LintGroup, DivisionByAlwaysAdvancingCountersIsClean) {
  // time, clock, and the implicit fixed counters advance on every run
  // that measured anything; ratios over them need no guard.
  const core::EventGroup group{
      "GUARDED",
      "fixture: divisors the analysis proves nonzero",
      {"MEM_INST_RETIRED_LOADS"},
      {{"CPI", "CPU_CLK_UNHALTED_CORE/INSTR_RETIRED_ANY"},
       {"Load rate", "MEM_INST_RETIRED_LOADS/time"},
       {"Clock [MHz]", "1.E-06*clock"},
       {"Loads per cycle",
        "MEM_INST_RETIRED_LOADS/(INSTR_RETIRED_ANY+CPU_CLK_UNHALTED_CORE)"}}};
  EXPECT_TRUE(of_check(lint_group(westmere(), group, "westmere-ep"),
                       "zero-division")
                  .empty());
}

TEST(LintGroup, FlagsAnAlwaysZeroDivisorAsAnError) {
  const core::EventGroup group{"DEADDIV",
                               "fixture: literal zero divisor",
                               {},
                               {{"Broken", "time/0"}}};
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "zero-division");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].message,
            "divisor is always zero — the metric can only report 0");
}

TEST(LintGroup, NotesWhenTheDivisorContainsACancellingSubtraction) {
  // INSTR_RETIRED_ANY alone is provably nonzero, but subtracting another
  // counter from it can cancel — the warning must say so.
  const core::EventGroup group{
      "CANCEL",
      "fixture: guarded counter minus an unguarded one",
      {"MEM_INST_RETIRED_LOADS"},
      {{"Non-load instructions ratio",
        "time/(INSTR_RETIRED_ANY-MEM_INST_RETIRED_LOADS)"}}};
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "zero-division");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].message,
            "divisor (INSTR_RETIRED_ANY, MEM_INST_RETIRED_LOADS) is not "
            "provably nonzero; x/0 evaluates to 0 (contains a subtraction "
            "that can cancel)");
}

// --- formula syntax and group naming ----------------------------------------

TEST(LintGroup, ReportsUnparseableFormulas) {
  const core::EventGroup group{"SYNTAX",
                               "fixture: malformed formula",
                               {},
                               {{"Broken", "(((time"}}};
  const auto diags = of_check(lint_group(westmere(), group, "westmere-ep"),
                              "formula-syntax");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].metric, "Broken");
}

TEST(LintGroup, RejectsMalformedGroupNames) {
  const core::EventGroup group{"flops dp",
                               "fixture: lowercase, embedded space",
                               {},
                               {{"Runtime [s]", "time"}}};
  const auto diags =
      of_check(lint_group(westmere(), group, "westmere-ep"), "group-name");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].message,
            "malformed group name 'flops dp' (expected an uppercase "
            "identifier like FLOPS_DP)");
}

TEST(LintCatalog, RejectsDuplicateAndCaseShadowedGroupNames) {
  const core::EventGroup base{"FLOPS_DP", "fixture", {},
                              {{"Runtime [s]", "time"}}};
  core::EventGroup dup = base;
  core::EventGroup shadow = base;
  shadow.name = "Flops_dp";
  const auto diags = of_check(
      lint_catalog(westmere(), {base, dup, shadow}, "westmere-ep"),
      "group-name");
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].message,
            "duplicate group name 'FLOPS_DP' — the later definition is "
            "unreachable");
  EXPECT_EQ(diags[1].message,
            "group name 'Flops_dp' shadows 'FLOPS_DP' (names differ only "
            "by case)");
  // The mixed-case shadow is also malformed on its own terms.
  EXPECT_EQ(diags[2].message,
            "malformed group name 'Flops_dp' (expected an uppercase "
            "identifier like FLOPS_DP)");
}

// --- the builtin catalogs must lint clean on every machine model ------------

TEST(LintCatalog, EveryBuiltinPresetCatalogHasNoErrors) {
  for (const auto& preset : hwsim::presets::all_presets()) {
    const auto diags = lint_machine(preset.key);
    for (const auto& d : diags) {
      EXPECT_NE(d.severity, Severity::kError)
          << preset.key << ": " << format_diagnostics({d});
    }
  }
}

TEST(LintCatalog, FusedAndScalarZeroDivisionAnalysesAgreeEverywhere) {
  // Every lint pass cross-checks the fused BatchProgram's zero-division
  // analysis against the scalar CompiledMetric analysis and reports any
  // divergence as a `zero-division-parity` error — so linting the whole
  // catalog IS the proof that both interpreters emit identical
  // diagnostics on every machine x group entry.
  const auto diags = lint_all_machines();
  EXPECT_TRUE(of_check(diags, "zero-division-parity").empty())
      << format_diagnostics(of_check(diags, "zero-division-parity"));
}

TEST(LintCatalog, KnownBuiltinWarningsStayCharacterized) {
  // The builtin ratio groups divide by plain counters on purpose — the
  // maybe-zero warnings on those divisors are the only findings the
  // shipped catalogs carry. (The linter's unused-event check caught the
  // Pentium M CACHE group counting DCU_LINES_IN without a consuming
  // formula; the group now reports "L1 misses/s" instead.)
  const auto diags = lint_all_machines();
  EXPECT_EQ(count(diags, Severity::kError), 0u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.check, "zero-division") << format_diagnostics({d});
    EXPECT_EQ(d.severity, Severity::kWarning) << format_diagnostics({d});
  }
  EXPECT_TRUE(of_check(diags, "unused-event").empty());
}

// --- severity plumbing and reporting ----------------------------------------

TEST(LintReport, StrictModePromotesWarningsToFailures) {
  const core::EventGroup group{
      "WASTE", "fixture", {"MEM_INST_RETIRED_LOADS"},
      {{"Runtime [s]", "time"}}};
  const auto diags = lint_group(westmere(), group, "westmere-ep");
  EXPECT_EQ(count(diags, Severity::kError), 0u);
  EXPECT_EQ(count(diags, Severity::kWarning), 1u);
  EXPECT_FALSE(has_errors(diags));
  EXPECT_TRUE(has_errors(diags, /*warnings_as_errors=*/true));
  EXPECT_FALSE(has_errors({}, /*warnings_as_errors=*/true));
}

TEST(LintReport, FormatsOneLinePerDiagnostic) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.check = "zero-division";
  d.machine = "westmere-ep";
  d.group = "DATA";
  d.metric = "Load to store ratio";
  d.message = "divisor may be zero";
  EXPECT_EQ(format_diagnostics({d}),
            "warning: [zero-division] westmere-ep/DATA: "
            "metric 'Load to store ratio': divisor may be zero\n");
}

TEST(LintReport, SummaryTableCountsBySeverityAndCheck) {
  Diagnostic err;
  err.severity = Severity::kError;
  err.check = "schedulability";
  Diagnostic warn;
  warn.severity = Severity::kWarning;
  warn.check = "unused-event";
  const api::ResultTable table =
      report_table({err, warn, warn}, /*groups_linted=*/7,
                   /*machines_linted=*/2);
  EXPECT_EQ(table.group, "LINT");
  ASSERT_EQ(table.cpus.size(), 1u);
  const auto value = [&](const std::string& name) -> double {
    for (const auto& metric : table.metrics) {
      if (metric.name == name) return metric.values.at(0);
    }
    ADD_FAILURE() << "missing metric row " << name;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value("machines linted"), 2.0);
  EXPECT_DOUBLE_EQ(value("groups linted"), 7.0);
  EXPECT_DOUBLE_EQ(value("errors"), 1.0);
  EXPECT_DOUBLE_EQ(value("warnings"), 2.0);
  EXPECT_DOUBLE_EQ(value("error:schedulability"), 1.0);
  EXPECT_DOUBLE_EQ(value("warning:unused-event"), 2.0);
}

}  // namespace
}  // namespace likwid::analysis
