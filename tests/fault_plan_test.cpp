// FaultPlan — the deterministic fault model (fault/plan.hpp): spec
// grammar, per-node assignment, crash schedules and jitter draws. Every
// assertion here is about determinism and parse strictness; the behavior
// of an injected fault is covered by chaos_fleet_test.cpp and the MSR
// device tests below.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fault/msr_fault.hpp"
#include "fault/plan.hpp"
#include "hwsim/msr.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"

namespace likwid {
namespace {

using fault::FaultPlan;
using fault::MsrFaultMode;

TEST(FaultPlan, ParsesFullGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "7:msr-fail=0.05;msr-timeout=0.01;msr-stale=0.03;msr-saturate=0.02;"
      "stall=0.1;crash=2;stall-us=300;slow-consumer-us=50;onset=4");
  EXPECT_EQ(plan.seed(), 7u);
  EXPECT_DOUBLE_EQ(plan.msr_fail_rate(), 0.05);
  EXPECT_DOUBLE_EQ(plan.msr_timeout_rate(), 0.01);
  EXPECT_DOUBLE_EQ(plan.msr_stale_rate(), 0.03);
  EXPECT_DOUBLE_EQ(plan.msr_saturate_rate(), 0.02);
  EXPECT_DOUBLE_EQ(plan.stall_rate(), 0.1);
  EXPECT_EQ(plan.crashes(), 2);
  EXPECT_EQ(plan.stall_us(), 300u);
  EXPECT_EQ(plan.slow_consumer_us(), 50u);
  EXPECT_EQ(plan.onset_window(), 4u);
  EXPECT_TRUE(plan.has_faults());
}

TEST(FaultPlan, DefaultPlanInjectsNothing) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.has_faults());
  for (int id = 0; id < 64; ++id) {
    const fault::NodeFault f = plan.node_fault(id);
    EXPECT_EQ(f.msr, MsrFaultMode::kNone);
    EXPECT_FALSE(f.stall);
  }
  EXPECT_TRUE(plan.faulted_nodes(64).empty());
  EXPECT_TRUE(plan.crash_steps(0, 4, 30).empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const auto expect_invalid = [](const char* text) {
    try {
      FaultPlan::parse(text);
      FAIL() << "accepted '" << text << "'";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument) << text;
    }
  };
  expect_invalid("no-colon");
  expect_invalid("x:msr-fail=0.1");          // non-numeric seed
  expect_invalid("7:");                      // empty spec
  expect_invalid("7:msr-fail");              // missing '='
  expect_invalid("7:msr-fail=1.5");          // rate out of range
  expect_invalid("7:msr-fail=-0.1");         // negative rate
  expect_invalid("7:msr-fail=abc");          // non-numeric rate
  expect_invalid("7:crash=two");             // non-numeric count
  expect_invalid("7:bogus-key=1");           // unknown key
  expect_invalid("7:msr-fail=0.1;;crash=1"); // stray ';'
  expect_invalid("7:onset=0");               // onset must be >= 1
  expect_invalid("7:msr-fail=0.6;msr-stale=0.6");  // modes sum > 1
}

TEST(FaultPlan, NodeAssignmentIsDeterministicAndSeedSensitive) {
  const FaultPlan a = FaultPlan::parse("7:msr-fail=0.2;msr-stale=0.2");
  const FaultPlan b = FaultPlan::parse("7:msr-fail=0.2;msr-stale=0.2");
  const FaultPlan c = FaultPlan::parse("8:msr-fail=0.2;msr-stale=0.2");
  for (int id = 0; id < 256; ++id) {
    EXPECT_EQ(a.node_fault(id).msr, b.node_fault(id).msr) << id;
    EXPECT_EQ(a.node_fault(id).onset_step, b.node_fault(id).onset_step) << id;
  }
  EXPECT_EQ(a.faulted_nodes(256), b.faulted_nodes(256));
  // A different seed must shuffle the assignment (some node differs).
  EXPECT_NE(a.faulted_nodes(256), c.faulted_nodes(256));
}

TEST(FaultPlan, FaultedNodePopulationTracksTheRates) {
  const FaultPlan plan = FaultPlan::parse("11:msr-fail=0.25");
  const std::vector<int> faulted = plan.faulted_nodes(1024);
  // 25% of 1024 with independent uniform draws: 6 sigma ~ +/- 83.
  EXPECT_GT(faulted.size(), 170u);
  EXPECT_LT(faulted.size(), 340u);
  for (const int id : faulted) {
    const fault::NodeFault f = plan.node_fault(id);
    EXPECT_EQ(f.msr, MsrFaultMode::kFail);
    // Onset is always within the window and never step 0.
    EXPECT_GE(f.onset_step, 1u);
    EXPECT_LE(f.onset_step, plan.onset_window());
  }
}

TEST(FaultPlan, MsrModesAreMutuallyExclusivePerNode) {
  const FaultPlan plan = FaultPlan::parse(
      "3:msr-fail=0.25;msr-timeout=0.25;msr-stale=0.25;msr-saturate=0.25");
  int modes[5] = {0, 0, 0, 0, 0};
  for (int id = 0; id < 512; ++id) {
    ++modes[static_cast<int>(plan.node_fault(id).msr)];
  }
  // Every node drew exactly one mode; with the rates summing to 1 none
  // stay healthy, and each mode gets a nontrivial share.
  EXPECT_EQ(modes[static_cast<int>(MsrFaultMode::kNone)], 0);
  for (const MsrFaultMode m :
       {MsrFaultMode::kFail, MsrFaultMode::kTimeout, MsrFaultMode::kStale,
        MsrFaultMode::kSaturate}) {
    EXPECT_GT(modes[static_cast<int>(m)], 64) << to_string(m);
  }
}

TEST(FaultPlan, CrashScheduleCoversExactlyTheRequestedCrashes) {
  const FaultPlan plan = FaultPlan::parse("5:crash=4");
  constexpr int kWorkers = 8;
  constexpr std::uint64_t kSteps = 30;
  std::size_t total = 0;
  for (int w = 0; w < kWorkers; ++w) {
    const std::vector<std::uint64_t> steps =
        plan.crash_steps(w, kWorkers, kSteps);
    EXPECT_TRUE(std::is_sorted(steps.begin(), steps.end()));
    for (const std::uint64_t s : steps) {
      EXPECT_GE(s, 1u);  // never step 0
      EXPECT_LT(s, kSteps);
    }
    total += steps.size();
    // Determinism: the same call yields the same schedule.
    EXPECT_EQ(steps, plan.crash_steps(w, kWorkers, kSteps));
  }
  EXPECT_EQ(total, 4u);
}

TEST(FaultPlan, BackoffJitterIsDeterministicAndInRange) {
  const FaultPlan plan = FaultPlan::parse("9:crash=1");
  for (int w = 0; w < 4; ++w) {
    for (int r = 1; r <= 3; ++r) {
      const double j = plan.backoff_jitter(w, r);
      EXPECT_GE(j, 0.0);
      EXPECT_LT(j, 1.0);
      EXPECT_EQ(j, plan.backoff_jitter(w, r));
    }
  }
  // Distinct (worker, restart) pairs draw distinct jitter.
  EXPECT_NE(plan.backoff_jitter(0, 1), plan.backoff_jitter(1, 1));
  EXPECT_NE(plan.backoff_jitter(0, 1), plan.backoff_jitter(0, 2));
}

// --- MsrFaultDevice on a real register file ---------------------------

TEST(MsrFaultDevice, FailAndTimeoutThrowTheNewStatusCodes) {
  const hwsim::MachineSpec spec = hwsim::presets::westmere_ep();
  for (const auto& [mode, code] :
       {std::pair{MsrFaultMode::kFail, ErrorCode::kUnavailable},
        std::pair{MsrFaultMode::kTimeout, ErrorCode::kDeadlineExceeded}}) {
    hwsim::MsrRegisterFile msrs(spec);
    const auto device =
        std::make_shared<fault::MsrFaultDevice>(spec, mode, /*onset=*/2);
    msrs.set_read_interposer(device);
    // Before onset the device is dormant.
    device->begin_step(0);
    EXPECT_NO_THROW(msrs.read(0, hwsim::msr::kTsc));
    device->begin_step(2);
    try {
      msrs.read(0, hwsim::msr::kTsc);
      FAIL() << to_string(mode);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), code) << to_string(mode);
    }
    EXPECT_GT(device->faults_injected(), 0u);
  }
}

TEST(MsrFaultDevice, StaleFreezesCountersAtFirstArmedRead) {
  const hwsim::MachineSpec spec = hwsim::presets::westmere_ep();
  hwsim::MsrRegisterFile msrs(spec);
  const auto device = std::make_shared<fault::MsrFaultDevice>(
      spec, MsrFaultMode::kStale, /*onset=*/1);
  msrs.set_read_interposer(device);

  msrs.write(0, hwsim::msr::kPmc0, 1000);
  device->begin_step(1);
  EXPECT_EQ(msrs.read(0, hwsim::msr::kPmc0), 1000u);  // freezes here
  msrs.write(0, hwsim::msr::kPmc0, 5000);             // hardware moves on
  EXPECT_EQ(msrs.read(0, hwsim::msr::kPmc0), 1000u);  // reads stay frozen
  // Non-counter registers are untouched (the PMU stays programmable).
  EXPECT_NO_THROW(msrs.write(0, hwsim::msr::kPerfEvtSel0, 0x4300C0));
  EXPECT_EQ(msrs.read(0, hwsim::msr::kPerfEvtSel0), 0x4300C0u);
}

TEST(MsrFaultDevice, SaturatePegsCountersAtAllOnes) {
  const hwsim::MachineSpec spec = hwsim::presets::westmere_ep();
  hwsim::MsrRegisterFile msrs(spec);
  const auto device = std::make_shared<fault::MsrFaultDevice>(
      spec, MsrFaultMode::kSaturate, /*onset=*/0);
  msrs.set_read_interposer(device);
  device->begin_step(0);
  EXPECT_EQ(msrs.read(0, hwsim::msr::kPmc0), ~std::uint64_t{0});
  // Removing the interposer restores honest reads.
  msrs.set_read_interposer(nullptr);
  EXPECT_EQ(msrs.read(0, hwsim::msr::kPmc0), 0u);
}

}  // namespace
}  // namespace likwid
