// Tests for the workload layer: OpenMP team creation patterns, the STREAM
// triad (functional reference + simulated bandwidths + counter events), the
// Jacobi variants (functional reference + traffic ratios of the paper).
#include <gtest/gtest.h>

#include <cmath>

#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/bitops.hpp"
#include "util/status.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/stream.hpp"

namespace likwid::workloads {
namespace {

// --- OpenMP team creation ---------------------------------------------------

class OpenMpTeam : public ::testing::Test {
 protected:
  OpenMpTeam()
      : machine(hwsim::presets::westmere_ep()),
        sched(machine, 3),
        runtime(sched) {}
  hwsim::SimMachine machine;
  ossim::Scheduler sched;
  ossim::ThreadRuntime runtime;
};

TEST_F(OpenMpTeam, GccCreatesNMinusOne) {
  const auto team = launch_openmp_team(runtime, OpenMpImpl::kGcc, 4);
  EXPECT_EQ(team.worker_tids.size(), 4u);
  EXPECT_EQ(team.worker_tids.front(), 0);  // master participates
  EXPECT_TRUE(team.service_tids.empty());
  EXPECT_EQ(runtime.num_threads(), 4);  // main + 3 created
  EXPECT_EQ(expected_creations(OpenMpImpl::kGcc, 4), 3);
}

TEST_F(OpenMpTeam, IntelCreatesShepherdFirst) {
  // "The Intel OpenMP implementation always runs OMP_NUM_THREADS+1
  // threads but uses the first newly created thread as a management
  // thread."
  const auto team = launch_openmp_team(runtime, OpenMpImpl::kIntel, 4);
  EXPECT_EQ(team.worker_tids.size(), 4u);
  ASSERT_EQ(team.service_tids.size(), 1u);
  EXPECT_EQ(team.service_tids.front(), 1);  // first created = shepherd
  EXPECT_EQ(runtime.num_threads(), 5);      // OMP_NUM_THREADS + 1
  EXPECT_EQ(expected_creations(OpenMpImpl::kIntel, 4), 4);
}

TEST_F(OpenMpTeam, IntelMpiCreatesTwoServiceThreads) {
  const auto team = launch_openmp_team(runtime, OpenMpImpl::kIntelMpi, 8);
  EXPECT_EQ(team.worker_tids.size(), 8u);
  EXPECT_EQ(team.service_tids.size(), 2u);
  EXPECT_EQ(expected_creations(OpenMpImpl::kIntelMpi, 8), 9);
}

TEST_F(OpenMpTeam, WorkersAreBusyServiceThreadsAreNot) {
  const auto team = launch_openmp_team(runtime, OpenMpImpl::kIntel, 4);
  for (const int tid : team.worker_tids) {
    EXPECT_TRUE(runtime.thread(tid).busy);
  }
  for (const int tid : team.service_tids) {
    EXPECT_FALSE(runtime.thread(tid).busy);
  }
}

// --- STREAM triad ------------------------------------------------------------

TEST(ReferenceTriad, ComputesCorrectly) {
  std::vector<double> a(100, 0.0), b(100), c(100);
  for (std::size_t i = 0; i < 100; ++i) {
    b[i] = static_cast<double>(i);
    c[i] = 2.0 * static_cast<double>(i);
  }
  reference_triad(a, b, c, 3.0);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a[i], static_cast<double>(i) + 3.0 * 2.0 *
                               static_cast<double>(i));
  }
}

TEST(ReferenceTriad, RejectsMismatchedLengths) {
  std::vector<double> a(3), b(4), c(3);
  EXPECT_THROW(reference_triad(a, b, c, 1.0), Error);
}

class StreamSim : public ::testing::Test {
 protected:
  StreamSim() : machine(hwsim::presets::westmere_ep()), kernel(machine) {}

  double run(const std::vector<int>& cpus, const StreamConfig& cfg) {
    StreamTriad triad(cfg);
    Placement p;
    p.cpus = cpus;
    // Account the workers as busy on their cpus.
    for (const int cpu : cpus) kernel.scheduler().add_busy(cpu, 1);
    const double t = run_workload(kernel, triad, p);
    for (const int cpu : cpus) kernel.scheduler().add_busy(cpu, -1);
    last_bw_ = triad.reported_bandwidth_mbs(t);
    return t;
  }

  hwsim::SimMachine machine;
  ossim::SimKernel kernel;
  double last_bw_ = 0;
};

TEST_F(StreamSim, SingleThreadBandwidthMatchesThreadCap) {
  run({0}, StreamConfig{});
  // 14 GB/s traffic cap * 24/32 reported fraction = 10500 MB/s.
  EXPECT_NEAR(last_bw_, 10500, 50);
}

TEST_F(StreamSim, SocketSaturates) {
  run({0, 1, 2, 3, 4, 5}, StreamConfig{});
  // 28 GB/s socket * 0.75 = 21000 MB/s.
  EXPECT_NEAR(last_bw_, 21000, 200);
}

TEST_F(StreamSim, TwoSocketsDouble) {
  run({0, 1, 2, 6, 7, 8}, StreamConfig{});
  EXPECT_NEAR(last_bw_, 42000, 400);
}

TEST_F(StreamSim, SmtAddsNothingWhenMemoryBound) {
  run({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, StreamConfig{});
  const double physical = last_bw_;
  ossim::SimKernel kernel2(machine);
  StreamConfig cfg;
  StreamTriad triad(cfg);
  Placement p;
  for (int cpu = 0; cpu < 24; ++cpu) {
    p.cpus.push_back(cpu);
    kernel2.scheduler().add_busy(cpu, 1);
  }
  const double t = run_workload(kernel2, triad, p);
  EXPECT_NEAR(triad.reported_bandwidth_mbs(t), physical, physical * 0.02);
}

TEST_F(StreamSim, GccProfileIsSlower) {
  StreamConfig gcc_cfg;
  gcc_cfg.compiler = gcc_profile();
  run({0}, gcc_cfg);
  const double gcc_bw = last_bw_;
  run({0}, StreamConfig{});  // icc
  EXPECT_LT(gcc_bw, last_bw_ * 0.7);
}

TEST_F(StreamSim, GccBenefitsFromSmt) {
  StreamConfig cfg;
  cfg.compiler = gcc_profile();
  // One core, one thread vs. the same core with both SMT threads.
  run({0}, cfg);
  const double one = last_bw_;
  run({0, 12}, cfg);
  EXPECT_GT(last_bw_, one * 1.15);  // SMT helps the sparse gcc code
}

TEST_F(StreamSim, RemoteHomingReducesBandwidth) {
  StreamConfig cfg;
  cfg.chunk_home_sockets = {1};  // data on socket 1, thread on socket 0
  run({0}, cfg);
  EXPECT_NEAR(last_bw_, 10500 * 0.7, 150);
}

TEST_F(StreamSim, CountersSeeFlopsAndTraffic) {
  StreamConfig cfg;
  cfg.array_length = 1'000'000;
  cfg.repetitions = 1;
  // Program FLOPS events on cpu 0 before running.
  auto& msrs = machine.msrs();
  std::uint64_t sel = 0;
  sel = util::deposit_bits(sel, 0, 7, 0x10);   // FP_COMP_OPS packed double
  sel = util::deposit_bits(sel, 8, 15, 0x10);
  sel = util::assign_bit(sel, hwsim::msr::kEvtSelUsr, true);
  sel = util::assign_bit(sel, hwsim::msr::kEvtSelEnable, true);
  msrs.write(0, hwsim::msr::kPerfEvtSel0, sel);
  msrs.write(0, hwsim::msr::kPerfGlobalCtrl, 0x1);
  run({0}, cfg);
  // icc profile: one packed op per iteration.
  EXPECT_EQ(msrs.read(0, hwsim::msr::kPmc0), 1'000'000u);
}

TEST_F(StreamSim, ConfigValidation) {
  StreamConfig cfg;
  cfg.array_length = 0;
  EXPECT_THROW(StreamTriad{cfg}, Error);
  StreamConfig cfg2;
  cfg2.chunk_home_sockets = {0, 1};  // two homes for one worker
  StreamTriad triad(cfg2);
  Placement p;
  p.cpus = {0};
  EXPECT_THROW(triad.run_slice(kernel, p, 1.0), Error);
}

// --- Jacobi -----------------------------------------------------------------

TEST(ReferenceJacobi, InteriorAveragesNeighbours) {
  const int n = 4;
  std::vector<double> src(static_cast<std::size_t>(n) * n * n, 0.0);
  std::vector<double> dst(src.size(), -1.0);
  // Set the six neighbours of (1,1,1).
  const auto at = [n](int k, int j, int i) {
    return (static_cast<std::size_t>(k) * n + static_cast<std::size_t>(j)) * n +
           static_cast<std::size_t>(i);
  };
  src[at(0, 1, 1)] = 6;
  src[at(2, 1, 1)] = 12;
  src[at(1, 0, 1)] = 6;
  src[at(1, 2, 1)] = 12;
  src[at(1, 1, 0)] = 6;
  src[at(1, 1, 2)] = 12;
  reference_jacobi_sweep(dst, src, n);
  EXPECT_DOUBLE_EQ(dst[at(1, 1, 1)], 9.0);
  // Boundary points are copied.
  EXPECT_DOUBLE_EQ(dst[at(0, 0, 0)], src[at(0, 0, 0)]);
}

TEST(ReferenceJacobi, ConvergesToUniformField) {
  const int n = 8;
  std::vector<double> a(static_cast<std::size_t>(n) * n * n, 1.0);
  std::vector<double> b(a.size());
  // Constant boundary = 1, random-ish interior: must converge toward 1.
  a[static_cast<std::size_t>((1 * n + 1) * n + 1)] = 100.0;
  for (int sweep = 0; sweep < 400; ++sweep) {
    reference_jacobi_sweep(b, a, n);
    std::swap(a, b);
  }
  for (const double v : a) {
    EXPECT_NEAR(v, 1.0, 0.05);
  }
}

class JacobiSim : public ::testing::Test {
 protected:
  JacobiSim() : machine(hwsim::presets::nehalem_ep()) {}

  struct Outcome {
    double seconds;
    double mlups;
    double mem_lines;
    double updates;
  };

  Outcome run(JacobiVariant variant, const std::vector<int>& cpus,
              int n = 96) {
    ossim::SimKernel kernel(machine);
    JacobiConfig cfg;
    cfg.n = n;
    cfg.sweeps = 4;
    cfg.variant = variant;
    JacobiStencil jacobi(cfg);
    Placement p;
    p.cpus = cpus;
    for (const int cpu : cpus) kernel.scheduler().add_busy(cpu, 1);
    const double t = run_workload(kernel, jacobi, p);
    Outcome o;
    o.seconds = t;
    o.mlups = jacobi.mlups(t);
    o.updates = jacobi.total_updates();
    o.mem_lines = 0;
    for (int s = 0; s < machine.spec().sockets; ++s) {
      o.mem_lines += kernel.caches().socket_traffic(s).mem_reads +
                     kernel.caches().socket_traffic(s).mem_writes;
    }
    return o;
  }

  hwsim::SimMachine machine;
};

TEST_F(JacobiSim, ThreadedTrafficIsAbout24BytesPerUpdate) {
  const auto o = run(JacobiVariant::kThreaded, {0, 1, 2, 3});
  const double bytes_per_update = o.mem_lines * 64.0 / o.updates;
  EXPECT_NEAR(bytes_per_update, 24.0, 3.0);
}

TEST_F(JacobiSim, NtStoresSaveOneThirdOfTraffic) {
  const auto base = run(JacobiVariant::kThreaded, {0, 1, 2, 3});
  const auto nt = run(JacobiVariant::kThreadedNT, {0, 1, 2, 3});
  const double ratio = nt.mem_lines / base.mem_lines;
  // Paper Table II: 43.97 / 75.39 = 0.58; 16B vs 24B per update = 0.67.
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 0.75);
  EXPECT_GT(nt.mlups, base.mlups);  // and it is faster
}

TEST_F(JacobiSim, WavefrontCutsTrafficSeveralFold) {
  const auto base = run(JacobiVariant::kThreaded, {0, 1, 2, 3});
  const auto wf = run(JacobiVariant::kWavefront, {0, 1, 2, 3});
  const double factor = base.mem_lines / wf.mem_lines;
  // Paper Table II: 75.39 / 16.57 = 4.5-fold decrease.
  EXPECT_GT(factor, 3.0);
  EXPECT_LT(factor, 7.0);
  EXPECT_GT(wf.mlups, base.mlups * 1.3);
}

TEST_F(JacobiSim, WrongPinningHalvesWavefrontPerformance) {
  const auto good = run(JacobiVariant::kWavefront, {0, 1, 2, 3});
  const auto bad = run(JacobiVariant::kWavefront, {0, 1, 4, 5});
  // Paper Fig. 11: pinning pairs to different sockets costs ~2x.
  EXPECT_LT(bad.mlups, good.mlups * 0.65);
}

TEST_F(JacobiSim, MlupsOrderingMatchesTableII) {
  const auto threaded = run(JacobiVariant::kThreaded, {0, 1, 2, 3});
  const auto nt = run(JacobiVariant::kThreadedNT, {0, 1, 2, 3});
  const auto wf = run(JacobiVariant::kWavefront, {0, 1, 2, 3});
  EXPECT_LT(threaded.mlups, nt.mlups);
  EXPECT_LT(nt.mlups, wf.mlups);
}

TEST_F(JacobiSim, ConfigValidation) {
  JacobiConfig cfg;
  cfg.n = 2;
  EXPECT_THROW(JacobiStencil{cfg}, Error);
  JacobiConfig cfg2;
  cfg2.n = 32;
  cfg2.sweeps = 3;  // not a multiple of the 4-deep pipeline
  cfg2.variant = JacobiVariant::kWavefront;
  JacobiStencil jacobi(cfg2);
  ossim::SimKernel kernel(machine);
  Placement p;
  p.cpus = {0, 1, 2, 3};
  EXPECT_THROW(jacobi.run_slice(kernel, p, 1.0), Error);
}

TEST_F(JacobiSim, DuplicateCpusRejected) {
  JacobiConfig cfg;
  cfg.n = 32;
  JacobiStencil jacobi(cfg);
  ossim::SimKernel kernel(machine);
  Placement p;
  p.cpus = {0, 0};
  EXPECT_THROW(jacobi.run_slice(kernel, p, 1.0), Error);
}

// --- run_workload quanta -----------------------------------------------------

TEST(RunWorkload, QuantaSplitTheRunAndCallBack) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  ossim::SimKernel kernel(machine);
  StreamConfig cfg;
  cfg.array_length = 1'000'000;
  StreamTriad triad(cfg);
  Placement p;
  p.cpus = {0};
  int calls = 0;
  RunOptions opts;
  opts.quanta = 4;
  opts.between_quanta = [&calls](int) { ++calls; };
  const double t = run_workload(kernel, triad, p, opts);
  EXPECT_EQ(calls, 3);  // between slices only
  EXPECT_NEAR(kernel.now(), t, 1e-12);
}

}  // namespace
}  // namespace likwid::workloads
