// Tests for BIOS/OS processor-numbering permutations (OsEnumeration): the
// paper's point that os-id numbering "depends on BIOS settings and may
// even differ for otherwise identical processors" while cpuid-based
// probing always recovers the true topology. Every preset is probed under
// every enumeration; the topology-aware helpers (scatter lists, logical
// pin ids) must keep working when the naive "first half are physical
// cores" assumption breaks.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/affinity.hpp"
#include "core/topology.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"

namespace likwid::hwsim {
namespace {

const std::vector<OsEnumeration> kEnumerations = {
    OsEnumeration::kSmtLast, OsEnumeration::kSmtAdjacent,
    OsEnumeration::kSocketRoundRobin};

using PresetEnum = std::tuple<presets::NamedPreset, OsEnumeration>;

class EnumeratedMachine : public ::testing::TestWithParam<PresetEnum> {
 protected:
  MachineSpec spec() const {
    MachineSpec s = std::get<0>(GetParam()).factory();
    s.os_enumeration = std::get<1>(GetParam());
    return s;
  }
};

TEST_P(EnumeratedMachine, TopologyProbeRecoversTheGroundTruth) {
  SimMachine machine(spec());
  const core::NodeTopology topo = core::probe_topology(machine);
  ASSERT_EQ(topo.num_hw_threads, machine.num_threads());
  for (const auto& t : machine.threads()) {
    const core::ThreadEntry& e =
        topo.threads[static_cast<std::size_t>(t.os_id)];
    EXPECT_EQ(e.os_id, t.os_id);
    EXPECT_EQ(e.thread_id, t.smt);
    EXPECT_EQ(e.core_id, t.core_apic);
    EXPECT_EQ(e.socket_id, t.socket);
    EXPECT_EQ(e.apic_id, t.apic_id);
  }
}

TEST_P(EnumeratedMachine, ApicIdsAreAPermutationInvariant) {
  // Renumbering changes which os id carries which APIC id, never the set.
  const MachineSpec base = std::get<0>(GetParam()).factory();
  const SimMachine reference_machine(base);
  std::set<std::uint32_t> reference;
  for (const auto& t : reference_machine.threads()) {
    reference.insert(t.apic_id);
  }
  std::set<std::uint32_t> permuted;
  std::set<int> os_ids;
  SimMachine machine(spec());
  for (const auto& t : machine.threads()) {
    permuted.insert(t.apic_id);
    os_ids.insert(t.os_id);
  }
  EXPECT_EQ(permuted, reference);
  EXPECT_EQ(static_cast<int>(os_ids.size()), machine.num_threads());
}

TEST_P(EnumeratedMachine, ScatterListStaysTopologyAware) {
  SimMachine machine(spec());
  const core::NodeTopology topo = core::probe_topology(machine);
  const int n = std::min(4, machine.num_threads());
  const auto list = core::scatter_cpu_list(topo, n);
  ASSERT_EQ(static_cast<int>(list.size()), n);
  // Scatter fills physical cores before SMT siblings: the first
  // min(n, num_cores) entries are on distinct physical cores, whatever
  // the os numbering looks like.
  const int cores = topo.num_sockets * topo.num_cores_per_socket;
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < std::min(n, cores); ++i) {
    const auto& t = machine.thread(list[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(seen.insert({t.socket, t.core_index}).second)
        << "entry " << i << " repeats a physical core";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, EnumeratedMachine,
    ::testing::Combine(::testing::ValuesIn(presets::all_presets()),
                       ::testing::ValuesIn(kEnumerations)),
    [](const ::testing::TestParamInfo<PresetEnum>& info) {
      std::string name = std::get<0>(info.param).key + "_" +
                         std::string(to_string(std::get<1>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Enumeration, WestmereNumberingsMatchTheKnownPatterns) {
  MachineSpec spec = presets::westmere_ep();

  // Paper listing (smt-last): os 0-11 are SMT-0, sibling of 0 is 12.
  {
    SimMachine m(spec);
    EXPECT_EQ(m.core_siblings(0), (std::vector<int>{0, 12}));
    EXPECT_EQ(m.thread(11).smt, 0);
    EXPECT_EQ(m.thread(12).smt, 1);
  }
  // smt-adjacent: sibling pairs take consecutive os ids.
  {
    spec.os_enumeration = OsEnumeration::kSmtAdjacent;
    SimMachine m(spec);
    EXPECT_EQ(m.core_siblings(0), (std::vector<int>{0, 1}));
    EXPECT_EQ(m.thread(1).smt, 1);
    EXPECT_EQ(m.thread(2).core_index, 1);
  }
  // socket-rr: consecutive os ids alternate sockets.
  {
    spec.os_enumeration = OsEnumeration::kSocketRoundRobin;
    SimMachine m(spec);
    EXPECT_EQ(m.thread(0).socket, 0);
    EXPECT_EQ(m.thread(1).socket, 1);
    EXPECT_EQ(m.thread(2).socket, 0);
  }
}

TEST(Enumeration, LogicalPinIdsResolvePhysicalFirstUnderAnyNumbering) {
  // likwid-pin -c L:0-3 means "four distinct physical cores" regardless
  // of the BIOS numbering — the Section V cpuset goal combined with the
  // enumeration robustness the tool exists for.
  for (const auto e : kEnumerations) {
    MachineSpec spec = presets::westmere_ep();
    spec.os_enumeration = e;
    SimMachine machine(spec);
    const core::NodeTopology topo = core::probe_topology(machine);
    const auto cpus = core::resolve_logical_cpu_list(topo, {0, 1, 2, 3});
    std::set<std::pair<int, int>> cores;
    for (const int c : cpus) {
      const auto& t = machine.thread(c);
      EXPECT_TRUE(cores.insert({t.socket, t.core_index}).second)
          << to_string(e) << ": logical ids landed on one core twice";
      EXPECT_EQ(t.smt, 0) << to_string(e);
    }
  }
}

TEST(Enumeration, ProcCpuinfoShowsTheBiosDependentNumbering) {
  // The motivating contrast of Section II-B: /proc/cpuinfo's view of
  // "processor 1" changes with the BIOS numbering, while cpuid probing
  // (the tests above) does not.
  const auto cpuinfo_for = [](OsEnumeration e) {
    MachineSpec spec = presets::westmere_ep();
    spec.os_enumeration = e;
    SimMachine machine(spec);
    ossim::SimKernel kernel(machine);
    return kernel.proc_cpuinfo();
  };
  const std::string smt_last = cpuinfo_for(OsEnumeration::kSmtLast);
  const std::string adjacent = cpuinfo_for(OsEnumeration::kSmtAdjacent);
  EXPECT_NE(smt_last, adjacent);
  // processor 1 is core 1's SMT-0 thread (apic 2) under smt-last, but
  // core 0's SMT-1 sibling (apic 1) under smt-adjacent.
  EXPECT_NE(smt_last.find("processor\t: 1\n"), std::string::npos);
  const auto apic_of_processor_1 = [](const std::string& text) {
    const auto pos = text.find("processor\t: 1\n");
    const auto apic = text.find("apicid\t\t: ", pos);
    return text.substr(apic, text.find('\n', apic) - apic);
  };
  EXPECT_EQ(apic_of_processor_1(smt_last), "apicid\t\t: 2");
  EXPECT_EQ(apic_of_processor_1(adjacent), "apicid\t\t: 1");
}

TEST(Enumeration, ParseAndFormat) {
  EXPECT_EQ(parse_os_enumeration("smt-last"), OsEnumeration::kSmtLast);
  EXPECT_EQ(parse_os_enumeration("smt-adjacent"),
            OsEnumeration::kSmtAdjacent);
  EXPECT_EQ(parse_os_enumeration("socket-rr"),
            OsEnumeration::kSocketRoundRobin);
  EXPECT_EQ(to_string(OsEnumeration::kSmtAdjacent), "smt-adjacent");
  EXPECT_THROW(parse_os_enumeration("random"), Error);
}

}  // namespace
}  // namespace likwid::hwsim
