// Tests for the util module: strings, bitops, cpu lists, tables, env.
#include <gtest/gtest.h>

#include "util/bitops.hpp"
#include "util/cpulist.hpp"
#include "util/env.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace likwid::util {
namespace {

// --- status ---------------------------------------------------------------

TEST(Status, ErrorCarriesCodeAndMessage) {
  try {
    throw_error(ErrorCode::kNotFound, "the thing");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
    EXPECT_NE(std::string(e.what()).find("the thing"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("NotFound"), std::string::npos);
  }
}

TEST(Status, ResultHoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Status, ResultHoldsFailure) {
  Result<int> r(ErrorCode::kPermission, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kPermission);
  EXPECT_EQ(r.message(), "nope");
  EXPECT_THROW(r.value(), Error);
}

TEST(Status, RequireMacroThrowsInvalidArgument) {
  const auto bad = [] { LIKWID_REQUIRE(false, "broken"); };
  try {
    bad();
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

// --- strings ----------------------------------------------------------------

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split(",a,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitTrimmedDropsEmptyAndTrims) {
  const auto parts = split_trimmed(" a , , b ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, CaseMapping) {
  EXPECT_EQ(to_upper("flops_dp"), "FLOPS_DP");
  EXPECT_EQ(to_lower("FLOPS_DP"), "flops_dp");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("UNC_L3_LINES_IN", "UNC_"));
  EXPECT_FALSE(starts_with("X", "UNC_"));
  EXPECT_TRUE(ends_with("likwid-pin", "-pin"));
  EXPECT_FALSE(ends_with("pin", "likwid-pin"));
}

TEST(Strings, ParseU64Decimal) {
  EXPECT_EQ(parse_u64("1234").value(), 1234u);
  EXPECT_EQ(parse_u64(" 7 ").value(), 7u);
}

TEST(Strings, ParseU64Hex) {
  EXPECT_EQ(parse_u64("0x3").value(), 3u);
  EXPECT_EQ(parse_u64("0xFF").value(), 255u);
  EXPECT_EQ(parse_u64("0X10").value(), 16u);
}

TEST(Strings, ParseU64Malformed) {
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("0x").has_value());
  EXPECT_FALSE(parse_u64("12a").has_value());
  EXPECT_FALSE(parse_u64("-3").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.93").value(), 2.93);
  EXPECT_DOUBLE_EQ(parse_double("1e6").value(), 1e6);
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Strings, ParseSizeBytesUnits) {
  // The likwid-bench workgroup sizes: binary units, case-insensitive.
  EXPECT_EQ(parse_size_bytes("4096").value(), 4096u);
  EXPECT_EQ(parse_size_bytes("100B").value(), 100u);
  EXPECT_EQ(parse_size_bytes("64kB").value(), 64u * 1024);
  EXPECT_EQ(parse_size_bytes("64KB").value(), 64u * 1024);
  EXPECT_EQ(parse_size_bytes("512k").value(), 512u * 1024);
  EXPECT_EQ(parse_size_bytes("2MB").value(), 2u * 1024 * 1024);
  EXPECT_EQ(parse_size_bytes("2mb").value(), 2u * 1024 * 1024);
  EXPECT_EQ(parse_size_bytes("1GB").value(), 1024ull * 1024 * 1024);
  EXPECT_EQ(parse_size_bytes(" 8 MB ").value(), 8u * 1024 * 1024);
  EXPECT_EQ(parse_size_bytes("0kB").value(), 0u);
}

TEST(Strings, ParseSizeBytesMalformed) {
  EXPECT_FALSE(parse_size_bytes("").has_value());
  EXPECT_FALSE(parse_size_bytes("MB").has_value());
  EXPECT_FALSE(parse_size_bytes("1TB").has_value());
  EXPECT_FALSE(parse_size_bytes("12x").has_value());
  EXPECT_FALSE(parse_size_bytes("-1MB").has_value());
  // 2^64 bytes overflows.
  EXPECT_FALSE(parse_size_bytes("17179869184GB").has_value());
}

TEST(Strings, ParseDurationUnits) {
  // The monitoring tools' interval flags: "m" means minutes here, unlike
  // parse_size_bytes where a bare "k"/"m" scales bytes.
  EXPECT_DOUBLE_EQ(parse_duration_seconds("500ms").value(), 0.5);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("10s").value(), 10.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("5m").value(), 300.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("5min").value(), 300.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("1.5h").value(), 5400.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("250us").value(), 0.00025);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("2.5").value(), 2.5);  // bare = s
  EXPECT_DOUBLE_EQ(parse_duration_seconds(" 10 s ").value(), 10.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("10S").value(), 10.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("0s").value(), 0.0);
}

TEST(Strings, ParseDurationMalformed) {
  EXPECT_FALSE(parse_duration_seconds("").has_value());
  EXPECT_FALSE(parse_duration_seconds("s").has_value());     // bare unit
  EXPECT_FALSE(parse_duration_seconds("10x").has_value());   // unknown unit
  EXPECT_FALSE(parse_duration_seconds("10 ss").has_value());
  EXPECT_FALSE(parse_duration_seconds("-5s").has_value());   // negative
  EXPECT_FALSE(parse_duration_seconds("nan").has_value());
  EXPECT_FALSE(parse_duration_seconds("inf").has_value());
  EXPECT_FALSE(parse_duration_seconds("1e400ms").has_value());  // overflow
}

TEST(Strings, FormatMetricMatchesPaperStyle) {
  EXPECT_EQ(format_metric(1624.08), "1624.08");
  EXPECT_EQ(format_metric(0.693493), "0.693493");
  EXPECT_EQ(format_metric(18802400), "1.88024e+07");
}

TEST(Strings, FormatCountIntegralSmall) {
  EXPECT_EQ(format_count(313742), "313742");
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(1), "1");
}

TEST(Strings, FormatCountLargeUsesExponent) {
  EXPECT_EQ(format_count(5.91e8), "5.91e+08");
}

TEST(Strings, FormatSize) {
  EXPECT_EQ(format_size(32 * 1024), "32 kB");
  EXPECT_EQ(format_size(256 * 1024), "256 kB");
  EXPECT_EQ(format_size(12 * 1024 * 1024), "12 MB");
  EXPECT_EQ(format_size(100), "100 B");
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("%.2f GHz", 2.93), "2.93 GHz");
  EXPECT_EQ(strprintf("%d-%d", 0, 3), "0-3");
}

// --- bitops ---------------------------------------------------------------

TEST(BitOps, ExtractBits) {
  EXPECT_EQ(extract_bits(0xABCD, 0, 3), 0xDu);
  EXPECT_EQ(extract_bits(0xABCD, 4, 7), 0xCu);
  EXPECT_EQ(extract_bits(0xABCD, 8, 15), 0xABu);
  EXPECT_EQ(extract_bits(~0ull, 0, 63), ~0ull);
}

TEST(BitOps, DepositBits) {
  EXPECT_EQ(deposit_bits(0, 8, 15, 0xAB), 0xAB00u);
  EXPECT_EQ(deposit_bits(0xFFFF, 4, 7, 0), 0xFF0Fu);
  // Field wider than destination is truncated.
  EXPECT_EQ(deposit_bits(0, 0, 3, 0x1F), 0xFu);
}

TEST(BitOps, ExtractDepositRoundTrip) {
  for (unsigned lo = 0; lo < 32; lo += 5) {
    const unsigned hi = lo + 6;
    const std::uint64_t v = deposit_bits(0x123456789ABCDEFull, lo, hi, 0x55);
    EXPECT_EQ(extract_bits(v, lo, hi), 0x55u) << "lo=" << lo;
  }
}

TEST(BitOps, TestAndAssignBit) {
  std::uint64_t v = 0;
  v = assign_bit(v, 9, true);
  EXPECT_TRUE(test_bit(v, 9));
  v = assign_bit(v, 9, false);
  EXPECT_FALSE(test_bit(v, 9));
}

TEST(BitOps, FieldWidthMatchesApicSemantics) {
  EXPECT_EQ(field_width(1), 0u);
  EXPECT_EQ(field_width(2), 1u);
  EXPECT_EQ(field_width(6), 3u);   // 6 cores need 3 bits
  EXPECT_EQ(field_width(11), 4u);  // Westmere core ids up to 10
  EXPECT_EQ(field_width(16), 4u);
  EXPECT_EQ(field_width(17), 5u);
}

TEST(BitOps, Pow2Helpers) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(12), 16u);
  EXPECT_EQ(next_pow2(16), 16u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_exact(64), 6u);
  EXPECT_THROW(log2_exact(48), Error);
}

// --- cpulist ----------------------------------------------------------------

TEST(CpuList, SingleIds) {
  EXPECT_EQ(parse_cpu_list("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("0,2,4"), (std::vector<int>{0, 2, 4}));
}

TEST(CpuList, Ranges) {
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-2,8,10-11"),
            (std::vector<int>{0, 1, 2, 8, 10, 11}));
}

TEST(CpuList, PreservesFirstOccurrenceOrder) {
  EXPECT_EQ(parse_cpu_list("3,1,2"), (std::vector<int>{3, 1, 2}));
}

TEST(CpuList, CollapsesDuplicates) {
  // Duplicates used to flow into pinning round-robins and PerfCtr cpu
  // rows; they now collapse to the first occurrence.
  EXPECT_EQ(parse_cpu_list("3,1,3"), (std::vector<int>{3, 1}));
  EXPECT_EQ(parse_cpu_list("0,0-2"), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parse_cpu_list("3,1-3"), (std::vector<int>{3, 1, 2}));
  EXPECT_EQ(parse_cpu_list("2-4,3-5"), (std::vector<int>{2, 3, 4, 5}));
  EXPECT_EQ(parse_cpu_list("7,7,7"), (std::vector<int>{7}));
}

TEST(CpuList, RejectsMalformed) {
  EXPECT_THROW(parse_cpu_list(""), Error);
  EXPECT_THROW(parse_cpu_list("a-b"), Error);
  EXPECT_THROW(parse_cpu_list("3-1"), Error);
  EXPECT_THROW(parse_cpu_list("1,,2"), Error);
  EXPECT_THROW(parse_cpu_list("99999"), Error);
}

TEST(CpuList, FormatCompactsRanges) {
  EXPECT_EQ(format_cpu_list({0, 1, 2, 8, 10, 11}), "0-2,8,10,11");
  EXPECT_EQ(format_cpu_list({5}), "5");
  EXPECT_EQ(format_cpu_list({0, 1, 2, 3}), "0-3");
}

TEST(CpuList, FormatParseRoundTrip) {
  const std::vector<int> cpus = {0, 1, 2, 3, 8, 9, 10, 15};
  EXPECT_EQ(parse_cpu_list(format_cpu_list(cpus)), cpus);
}

TEST(SkipMask, PaperValues) {
  // gcc: nothing skipped; intel: first created; intel-MPI: first two.
  EXPECT_FALSE(SkipMask(0x0).skips(0));
  EXPECT_TRUE(SkipMask(0x1).skips(0));
  EXPECT_FALSE(SkipMask(0x1).skips(1));
  EXPECT_TRUE(SkipMask(0x3).skips(0));
  EXPECT_TRUE(SkipMask(0x3).skips(1));
  EXPECT_FALSE(SkipMask(0x3).skips(2));
}

TEST(SkipMask, ParseHexDecimalBinary) {
  EXPECT_EQ(SkipMask::parse("0x3"), SkipMask(3));
  EXPECT_EQ(SkipMask::parse("3"), SkipMask(3));
  EXPECT_EQ(SkipMask::parse("0b11"), SkipMask(3));
  EXPECT_EQ(SkipMask::parse("0b10"), SkipMask(2));
}

TEST(SkipMask, ParseRejectsGarbage) {
  EXPECT_THROW(SkipMask::parse(""), Error);
  EXPECT_THROW(SkipMask::parse("0b"), Error);
  EXPECT_THROW(SkipMask::parse("0b12"), Error);
  EXPECT_THROW(SkipMask::parse("zz"), Error);
}

TEST(SkipMask, CountSkipped) {
  EXPECT_EQ(SkipMask(0x3).count_skipped(8), 2u);
  EXPECT_EQ(SkipMask(0x3).count_skipped(1), 1u);
  EXPECT_EQ(SkipMask(0x0).count_skipped(8), 0u);
}

// --- table ------------------------------------------------------------------

TEST(AsciiTable, RendersPaperStyle) {
  AsciiTable t({"Event", "core 0"});
  t.add_row({"INSTR_RETIRED_ANY", "313742"});
  const std::string expected =
      "+-------------------+--------+\n"
      "| Event             | core 0 |\n"
      "+-------------------+--------+\n"
      "| INSTR_RETIRED_ANY | 313742 |\n"
      "+-------------------+--------+\n";
  EXPECT_EQ(t.render(), expected);
}

TEST(AsciiTable, WidensToLargestCell) {
  AsciiTable t({"a"});
  t.add_row({"wide-cell-here"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| wide-cell-here |"), std::string::npos);
}

TEST(AsciiTable, RejectsArityMismatch) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(AsciiTable, RejectsEmptyHeader) {
  EXPECT_THROW(AsciiTable({}), Error);
}

TEST(Separator, Has61Dashes) {
  EXPECT_EQ(separator_line().size(), 62u);  // 61 dashes + newline
  EXPECT_EQ(separator_line()[0], '-');
  EXPECT_EQ(star_line()[0], '*');
}

// --- env --------------------------------------------------------------------

TEST(Environment, SetGetUnset) {
  Environment env;
  EXPECT_FALSE(env.has("OMP_NUM_THREADS"));
  env.set("OMP_NUM_THREADS", "4");
  EXPECT_EQ(env.get("OMP_NUM_THREADS").value(), "4");
  env.unset("OMP_NUM_THREADS");
  EXPECT_FALSE(env.get("OMP_NUM_THREADS").has_value());
}

TEST(Environment, GetOrDefault) {
  Environment env;
  EXPECT_EQ(env.get_or("LIKWID_PIN_TYPE", "gcc"), "gcc");
  env.set("LIKWID_PIN_TYPE", "intel");
  EXPECT_EQ(env.get_or("LIKWID_PIN_TYPE", "gcc"), "intel");
}

}  // namespace
}  // namespace likwid::util
