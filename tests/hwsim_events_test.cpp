// Tests for the μarch event vocabulary: id/name mapping, core-vs-uncore
// classification, and EventVector arithmetic (the carrier type between the
// execution model and the PMU).
#include <gtest/gtest.h>

#include <set>

#include "hwsim/events.hpp"

namespace likwid::hwsim {
namespace {

TEST(EventIds, NamesAreUniqueAndStable) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    const auto id = static_cast<EventId>(i);
    const std::string_view name = event_id_name(id);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << name;
  }
  EXPECT_EQ(event_id_name(EventId::kUncL3LinesIn), "unc_l3_lines_in");
  EXPECT_EQ(event_id_name(EventId::kInstructionsRetired),
            "instructions_retired");
}

TEST(EventIds, UncoreClassification) {
  EXPECT_FALSE(is_uncore_event(EventId::kInstructionsRetired));
  EXPECT_FALSE(is_uncore_event(EventId::kBusTransMem));
  EXPECT_TRUE(is_uncore_event(EventId::kUncL3LinesIn));
  EXPECT_TRUE(is_uncore_event(EventId::kUncMemWrites));
  EXPECT_TRUE(is_uncore_event(EventId::kUncClockticks));
  EXPECT_FALSE(is_uncore_event(EventId::kCount));
  // Everything at or past the first uncore id is socket scope.
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    const auto id = static_cast<EventId>(i);
    EXPECT_EQ(is_uncore_event(id), i >= kFirstUncoreEvent) << i;
  }
}

TEST(EventVectorTest, StartsZeroed) {
  const EventVector ev;
  EXPECT_TRUE(ev.all_zero());
  EXPECT_EQ(ev[EventId::kCoreCycles], 0.0);
}

TEST(EventVectorTest, AddAndIndex) {
  EventVector ev;
  ev.add(EventId::kLoadsRetired, 10);
  ev.add(EventId::kLoadsRetired, 5);
  ev[EventId::kStoresRetired] = 3;
  EXPECT_EQ(ev[EventId::kLoadsRetired], 15.0);
  EXPECT_EQ(ev[EventId::kStoresRetired], 3.0);
  EXPECT_FALSE(ev.all_zero());
}

TEST(EventVectorTest, AccumulateAndScale) {
  EventVector a;
  a.add(EventId::kFpPackedDouble, 100);
  EventVector b;
  b.add(EventId::kFpPackedDouble, 50);
  b.add(EventId::kBranchesRetired, 7);
  a += b;
  EXPECT_EQ(a[EventId::kFpPackedDouble], 150.0);
  EXPECT_EQ(a[EventId::kBranchesRetired], 7.0);
  a *= 2.0;
  EXPECT_EQ(a[EventId::kFpPackedDouble], 300.0);
  EXPECT_EQ(a[EventId::kBranchesRetired], 14.0);
}

}  // namespace
}  // namespace likwid::hwsim
