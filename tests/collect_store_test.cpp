// Tests for the tiered time-series store (collect/store.hpp): lossless
// raw-tier reads, the chunk-close / downsample / fold / forget cascade,
// bucket aggregate correctness against a hand-rolled reference, and the
// accounting invariant that no sample ever leaves the store uncounted.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "collect/simfleet.hpp"
#include "collect/store.hpp"
#include "core/name_table.hpp"

namespace likwid::collect {
namespace {

monitor::Sample make_sample(
    std::uint64_t seq, const std::shared_ptr<const monitor::MetricSchema>& s,
    std::vector<double> values, double interval = 0.1) {
  monitor::Sample sample;
  sample.sequence = seq;
  sample.t_start = static_cast<double>(seq) * interval;
  sample.t_end = sample.t_start + interval;
  sample.schema = s;
  sample.values = std::move(values);
  return sample;
}

void expect_sample_bits(const monitor::Sample& got,
                        const monitor::Sample& want, std::size_t i) {
  EXPECT_EQ(got.sequence, want.sequence) << i;
  EXPECT_EQ(got.t_start, want.t_start) << i;
  EXPECT_EQ(got.t_end, want.t_end) << i;
  ASSERT_EQ(got.values.size(), want.values.size()) << i;
  for (std::size_t m = 0; m < want.values.size(); ++m) {
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &got.values[m], sizeof(a));
    std::memcpy(&b, &want.values[m], sizeof(b));
    EXPECT_EQ(a, b) << "sample " << i << " slot " << m;
  }
}

/// The reconciliation invariant from the store's file comment.
void expect_accounted(const TimeSeriesStore& store) {
  EXPECT_EQ(store.stats().samples_appended,
            store.samples_in_raw() + store.samples_in_buckets() +
                store.samples_in_summaries() +
                store.stats().samples_forgotten);
}

TEST(Store, RawTierIsLossless) {
  StoreConfig cfg;
  cfg.chunk_points = 8;
  cfg.raw_chunks_per_series = 100;  // nothing evicts
  TimeSeriesStore store(cfg);
  const auto schema = make_sim_schema("STORE_RAW", 3);
  std::vector<monitor::Sample> appended;
  for (std::uint64_t seq = 0; seq < 37; ++seq) {
    appended.push_back(make_sample(
        seq, schema,
        {1000.0 + static_cast<double>(seq), -0.5, 1e9 / (1.0 + seq)}));
    store.append(9, appended.back());
  }
  // 37 samples: 4 closed chunks of 8 plus 5 in the open tail.
  EXPECT_EQ(store.stats().chunks_closed, 4u);
  EXPECT_EQ(store.samples_in_raw(), 37u);
  std::vector<monitor::Sample> out;
  store.raw_samples(9, out);
  ASSERT_EQ(out.size(), appended.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    expect_sample_bits(out[i], appended[i], i);
  }
  EXPECT_GT(store.retained_chunk_bytes(), 0u);
  EXPECT_LT(store.stats().bytes_compressed, store.stats().bytes_uncompressed);
  expect_accounted(store);
}

TEST(Store, SeriesArePerNodeAndGroup) {
  TimeSeriesStore store;
  const auto a = make_sim_schema("STORE_A", 1);
  const auto b = make_sim_schema("STORE_B", 1);
  store.append(1, make_sample(0, a, {1}));
  store.append(1, make_sample(0, b, {2}));
  store.append(2, make_sample(0, a, {3}));
  EXPECT_EQ(store.nodes(), (std::vector<std::uint64_t>{1, 2}));
  ASSERT_NE(store.series(1, a->group_id), nullptr);
  ASSERT_NE(store.series(1, b->group_id), nullptr);
  EXPECT_EQ(store.series(2, b->group_id), nullptr);
  EXPECT_EQ(store.node_series(3), nullptr);
  ASSERT_NE(store.node_series(1), nullptr);
  EXPECT_EQ(store.node_series(1)->size(), 2u);
}

TEST(Store, DownsampleBucketsMatchManualAggregation) {
  StoreConfig cfg;
  cfg.chunk_points = 4;
  cfg.raw_chunks_per_series = 1;  // evict aggressively into buckets
  cfg.downsample_seconds = 1.0;
  cfg.buckets_per_series = 1000;  // no folding in this test
  TimeSeriesStore store(cfg);
  const auto schema = make_sim_schema("STORE_DS", 2);
  // interval 0.25 s -> 4 samples per 1 s bucket; 32 samples = 8 buckets'
  // worth, most of which must have been downsampled out of the raw tier.
  std::vector<monitor::Sample> appended;
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    appended.push_back(make_sample(
        seq, schema,
        {static_cast<double>((seq * 7) % 13), 100.0 - static_cast<double>(seq)},
        0.25));
    store.append(5, appended.back());
  }
  const Series* series = store.series(5, schema->group_id);
  ASSERT_NE(series, nullptr);
  EXPECT_GT(store.stats().chunks_evicted, 0u);
  EXPECT_GT(store.stats().samples_downsampled, 0u);
  expect_accounted(store);

  // Rebuild the expected buckets from the appended samples that are no
  // longer in the raw tier (the oldest samples_downsampled of them).
  std::map<double, Bucket> expected;
  for (std::uint64_t i = 0; i < store.stats().samples_downsampled; ++i) {
    const monitor::Sample& s = appended[i];
    const double window = std::floor(s.t_start / 1.0) * 1.0;
    Bucket& bucket = expected[window];
    if (bucket.count == 0) {
      bucket.t_start = window;
      bucket.t_end = window + 1.0;
      bucket.agg.assign(s.values.size(), MetricAgg{});
    }
    for (std::size_t m = 0; m < s.values.size(); ++m) {
      MetricAgg& agg = bucket.agg[m];
      if (bucket.count == 0) {
        agg = {s.values[m], s.values[m], s.values[m]};
      } else {
        agg.sum += s.values[m];
        agg.min = std::min(agg.min, s.values[m]);
        agg.max = std::max(agg.max, s.values[m]);
      }
    }
    ++bucket.count;
  }
  ASSERT_EQ(series->buckets.size(), expected.size());
  std::size_t index = 0;
  for (const auto& [window, want] : expected) {
    const Bucket& got = series->buckets[index++];
    EXPECT_EQ(got.t_start, want.t_start);
    EXPECT_EQ(got.count, want.count);
    ASSERT_EQ(got.agg.size(), want.agg.size());
    for (std::size_t m = 0; m < want.agg.size(); ++m) {
      EXPECT_DOUBLE_EQ(got.agg[m].sum, want.agg[m].sum) << m;
      EXPECT_EQ(got.agg[m].min, want.agg[m].min) << m;
      EXPECT_EQ(got.agg[m].max, want.agg[m].max) << m;
    }
  }
}

TEST(Store, FoldsBucketsIntoSummaries) {
  StoreConfig cfg;
  cfg.chunk_points = 2;
  cfg.raw_chunks_per_series = 1;
  cfg.downsample_seconds = 0.2;  // one bucket per 2 samples at 0.1 s
  cfg.buckets_per_series = 4;
  cfg.summary_factor = 2;
  cfg.summaries_per_series = 1000;
  TimeSeriesStore store(cfg);
  const auto schema = make_sim_schema("STORE_FOLD", 1);
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    store.append(2, make_sample(seq, schema, {static_cast<double>(seq)}));
  }
  const Series* series = store.series(2, schema->group_id);
  ASSERT_NE(series, nullptr);
  EXPECT_GT(store.stats().buckets_folded, 0u);
  EXPECT_FALSE(series->summaries.empty());
  EXPECT_EQ(store.stats().summaries_evicted, 0u);
  expect_accounted(store);
  // A summary spans summary_factor buckets and keeps min <= max with the
  // combined count.
  for (const Bucket& summary : series->summaries) {
    EXPECT_GT(summary.count, 0u);
    EXPECT_LT(summary.t_start, summary.t_end);
    for (const MetricAgg& agg : summary.agg) {
      EXPECT_LE(agg.min, agg.max);
      EXPECT_LE(agg.min * static_cast<double>(summary.count), agg.sum);
      EXPECT_GE(agg.max * static_cast<double>(summary.count), agg.sum);
    }
  }
}

TEST(Store, ForgetsOldestSummariesCounted) {
  StoreConfig cfg;
  cfg.chunk_points = 2;
  cfg.raw_chunks_per_series = 1;
  cfg.downsample_seconds = 0.2;
  cfg.buckets_per_series = 2;
  cfg.summary_factor = 2;
  cfg.summaries_per_series = 2;  // tiny: data ages all the way out
  TimeSeriesStore store(cfg);
  const auto schema = make_sim_schema("STORE_FORGET", 1);
  for (std::uint64_t seq = 0; seq < 400; ++seq) {
    store.append(3, make_sample(seq, schema, {1.0}));
  }
  EXPECT_GT(store.stats().summaries_evicted, 0u);
  EXPECT_GT(store.stats().samples_forgotten, 0u);
  const Series* series = store.series(3, schema->group_id);
  ASSERT_NE(series, nullptr);
  EXPECT_LE(series->summaries.size(), cfg.summaries_per_series);
  EXPECT_LE(series->buckets.size(), cfg.buckets_per_series);
  EXPECT_LE(series->chunks.size(), cfg.raw_chunks_per_series);
  expect_accounted(store);
}

TEST(Store, BoundedMemoryUnderSustainedLoad) {
  // The whole point of the tier design: memory stays bounded no matter
  // how long the stream runs. Two checkpoints far apart must retain the
  // same number of samples and chunk bytes.
  StoreConfig cfg;
  cfg.chunk_points = 4;
  cfg.raw_chunks_per_series = 2;
  cfg.downsample_seconds = 0.4;
  cfg.buckets_per_series = 4;
  cfg.summary_factor = 2;
  cfg.summaries_per_series = 4;
  TimeSeriesStore store(cfg);
  const auto schema = make_sim_schema("STORE_BOUND", 2);
  SimFleetConfig fleet;
  fleet.schemas = {schema};
  fleet.num_nodes = 1;
  SampleGenerator gen(fleet, 0);
  std::uint64_t retained_at_1k = 0, bytes_at_1k = 0;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    store.append(0, gen.next());
    if (i == 999) {
      retained_at_1k = store.samples_in_raw() + store.samples_in_buckets() +
                       store.samples_in_summaries();
      bytes_at_1k = store.retained_chunk_bytes();
    }
  }
  const std::uint64_t retained = store.samples_in_raw() +
                                 store.samples_in_buckets() +
                                 store.samples_in_summaries();
  EXPECT_EQ(retained, retained_at_1k);
  // Chunk byte sizes wobble a little with the values they compress; the
  // bound is structural (chunk count), not byte-exact.
  EXPECT_LT(store.retained_chunk_bytes(), bytes_at_1k * 2);
  expect_accounted(store);
}

TEST(Store, AppendBatchMatchesSingleAppends) {
  StoreConfig cfg;
  cfg.chunk_points = 4;
  TimeSeriesStore batch_store(cfg), single_store(cfg);
  const auto schema = make_sim_schema("STORE_BATCH", 2);
  std::vector<monitor::Sample> samples;
  for (std::uint64_t seq = 0; seq < 11; ++seq) {
    samples.push_back(
        make_sample(seq, schema, {static_cast<double>(seq), 2.5}));
  }
  batch_store.append_batch(7, samples);
  for (const auto& s : samples) single_store.append(7, s);
  std::vector<monitor::Sample> a, b;
  batch_store.raw_samples(7, a);
  single_store.raw_samples(7, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_sample_bits(a[i], b[i], i);
  EXPECT_EQ(batch_store.stats().samples_appended,
            single_store.stats().samples_appended);
}

}  // namespace
}  // namespace likwid::collect
