// Tests for the agent's sample transport and storage rings:
//  - monitor/ring_buffer.hpp (single-threaded retention): fill-up,
//    wrap/overwrite semantics (including the retire-before-overwrite fix
//    for self-referential pushes on a full ring), age-ordered indexing,
//    pop_front draining, drop accounting, and misuse rejection.
//  - monitor/spsc_ring.hpp (lock-free SPSC transport): full-buffer
//    rejection, wrap-around reuse, a concurrent produce/drain stress
//    run checking that nothing is lost, duplicated or reordered, and an
//    injected slow consumer proving reject-newest keeps the cursors and
//    counters exact under sustained backpressure.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "monitor/ring_buffer.hpp"
#include "monitor/spsc_ring.hpp"
#include "util/status.hpp"

namespace likwid::monitor {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), Error);
}

TEST(RingBuffer, FillsInOrder) {
  RingBuffer<int> ring(3);
  ring.push(10);
  ring.push(11);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_FALSE(ring.full());
  EXPECT_EQ(ring[0], 10);
  EXPECT_EQ(ring[1], 11);
  EXPECT_EQ(ring.front(), 10);
  EXPECT_EQ(ring.back(), 11);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> ring(3);
  for (int v = 0; v < 5; ++v) ring.push(v);
  // 0 and 1 were overwritten; 2,3,4 survive in age order.
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0], 2);
  EXPECT_EQ(ring[1], 3);
  EXPECT_EQ(ring[2], 4);
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(RingBuffer, WrapsRepeatedly) {
  RingBuffer<int> ring(2);
  for (int v = 0; v < 101; ++v) ring.push(v);
  EXPECT_EQ(ring[0], 99);
  EXPECT_EQ(ring[1], 100);
  EXPECT_EQ(ring.pushed(), 101u);
  EXPECT_EQ(ring.dropped(), 99u);
}

TEST(RingBuffer, IndexOutOfRangeThrows) {
  RingBuffer<int> ring(4);
  ring.push(1);
  EXPECT_THROW(ring[1], Error);
  EXPECT_NO_THROW(ring[0]);
}

TEST(RingBuffer, BackOnEmptyThrows) {
  RingBuffer<int> ring(4);
  EXPECT_THROW(ring.back(), Error);
}

TEST(RingBuffer, ClearKeepsLifetimeStatistics) {
  RingBuffer<int> ring(2);
  for (int v = 0; v < 4; ++v) ring.push(v);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pushed(), 4u);
  ring.push(7);
  EXPECT_EQ(ring[0], 7);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(RingBuffer, ClearAfterWrapKeepsAgeOrder) {
  RingBuffer<int> ring(3);
  for (int v = 0; v < 7; ++v) ring.push(v);  // wrapped twice
  ring.clear();
  for (int v = 10; v < 13; ++v) ring.push(v);
  EXPECT_EQ(ring[0], 10);
  EXPECT_EQ(ring[1], 11);
  EXPECT_EQ(ring[2], 12);
  EXPECT_TRUE(ring.full());
}

// Retire-before-overwrite regression anchor: re-enqueueing the full
// ring's own front must stay correct. The by-value push signature copies
// the argument before any slot is touched (so this passed before the
// reorder too); the reorder's real payoff is consistency when the move
// assignment into the slot throws, and this test pins the aliasing
// behavior so a future pass-by-reference push cannot regress it.
TEST(RingBuffer, SelfPushOfFrontOnFullRing) {
  RingBuffer<std::string> ring(3);
  ring.push("aaaa");
  ring.push("bbbb");
  ring.push("cccc");
  ring.push(ring.front());  // re-enqueue the oldest
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0], "bbbb");
  EXPECT_EQ(ring[1], "cccc");
  EXPECT_EQ(ring[2], "aaaa");
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(RingBuffer, PopFrontDrainsInAgeOrder) {
  RingBuffer<int> ring(3);
  for (int v = 0; v < 5; ++v) ring.push(v);  // retains 2,3,4
  EXPECT_EQ(ring.pop_front(), 2);
  EXPECT_EQ(ring.pop_front(), 3);
  ring.push(5);
  EXPECT_EQ(ring.pop_front(), 4);
  EXPECT_EQ(ring.pop_front(), 5);
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.pop_front(), Error);
  // Popped samples are consumed, not dropped.
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(RingBuffer, InterleavedPushPopAcrossManyWraps) {
  RingBuffer<int> ring(4);
  // Consumption (1 pop per 3 pushes) lags production by more than the
  // capacity, so the ring wraps continuously; the retained window must
  // always be the contiguous suffix of what was pushed.
  int oldest = 0;  // value currently at the front
  for (int v = 0; v < 1000; ++v) {
    ring.push(v);
    oldest = std::max(oldest, v + 1 - static_cast<int>(ring.capacity()));
    if (v % 3 == 2) {
      ASSERT_EQ(ring.pop_front(), oldest);
      ++oldest;
    }
    ASSERT_EQ(ring.front(), oldest);
    ASSERT_EQ(ring.back(), v);
  }
  EXPECT_EQ(ring.pushed(), 1000u);
}

// --- SpscRing: the lock-free transport ------------------------------------

TEST(SpscRing, RejectsZeroCapacity) {
  EXPECT_THROW(SpscRing<int>(0), Error);
}

TEST(SpscRing, FullBufferRejectsNewestAndCounts) {
  SpscRing<int> ring(2);
  int v1 = 1, v2 = 2, v3 = 3;
  EXPECT_TRUE(ring.try_push(std::move(v1)));
  EXPECT_TRUE(ring.try_push(std::move(v2)));
  EXPECT_FALSE(ring.try_push(std::move(v3)));  // full: newest bounces
  EXPECT_EQ(ring.pushed(), 2u);
  EXPECT_EQ(ring.rejected(), 1u);
  EXPECT_EQ(ring.size(), 2u);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);  // oldest first; nothing was overwritten
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, WrapAroundReusesSlotsInOrder) {
  SpscRing<int> ring(3);
  int out = 0;
  for (int v = 0; v < 100; ++v) {
    int value = v;
    ASSERT_TRUE(ring.try_push(std::move(value)));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, v);  // cursors far beyond capacity: slots reused FIFO
  }
  EXPECT_EQ(ring.pushed(), 100u);
  EXPECT_EQ(ring.rejected(), 0u);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, DrainIntoRespectsLimitAndOrder) {
  SpscRing<int> ring(8);
  for (int v = 0; v < 6; ++v) {
    int value = v;
    ASSERT_TRUE(ring.try_push(std::move(value)));
  }
  std::vector<int> out;
  EXPECT_EQ(ring.drain_into(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.drain_into(out, 100), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

// Concurrent produce/drain under load: a small ring forces constant
// wrap-around and backpressure while producer and consumer run on real
// threads. Everything pushed must come out exactly once, in order —
// under TSan this is also the memory-ordering proof of the ring.
TEST(SpscRing, ConcurrentProduceDrainUnderLoad) {
  constexpr std::uint64_t kItems = 200'000;
  SpscRing<std::uint64_t> ring(16);

  std::thread producer([&]() {
    for (std::uint64_t v = 0; v < kItems;) {
      std::uint64_t value = v;
      if (ring.try_push(std::move(value))) {
        ++v;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kItems) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);  // in order, no loss, no duplication
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(ring.pushed(), kItems);
  EXPECT_TRUE(ring.empty());
}

// Same under a non-trivially-copyable payload (vector batches, like the
// fleet's Sample batches), draining in bursts.
TEST(SpscRing, ConcurrentBatchDrain) {
  constexpr int kBatches = 5'000;
  constexpr int kBatchLen = 7;
  SpscRing<std::vector<int>> ring(8);

  std::thread producer([&]() {
    for (int b = 0; b < kBatches;) {
      std::vector<int> batch;
      batch.reserve(kBatchLen);
      for (int i = 0; i < kBatchLen; ++i) batch.push_back(b * kBatchLen + i);
      while (!ring.try_push(std::move(batch))) {
        std::this_thread::yield();
      }
      ++b;
    }
  });

  std::vector<std::vector<int>> got;
  while (got.size() < static_cast<std::size_t>(kBatches)) {
    if (ring.drain_into(got, 64) == 0) std::this_thread::yield();
  }
  producer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBatches));
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_EQ(got[static_cast<std::size_t>(b)].size(),
              static_cast<std::size_t>(kBatchLen));
    for (int i = 0; i < kBatchLen; ++i) {
      ASSERT_EQ(got[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)],
                b * kBatchLen + i);
    }
  }
}

// Injected slow consumer, producer that does NOT retry: sustained
// backpressure must reject-newest without corrupting the cursors. The
// delivered stream has to be an ordered subsequence of the input (no
// duplication, no tearing) and the counters must balance exactly:
// pushed + rejected == attempts, delivered == pushed.
TEST(SpscRing, SlowConsumerRejectsNewestWithExactCounters) {
  constexpr std::uint64_t kAttempts = 20'000;
  SpscRing<std::uint64_t> ring(4);

  std::vector<std::uint64_t> delivered;
  std::thread consumer([&]() {
    std::uint64_t out = 0;
    std::uint64_t idle = 0;
    while (true) {
      if (ring.try_pop(out)) {
        delivered.push_back(out);
        idle = 0;
        // The injected slowdown: stall after every pop so the producer
        // keeps hitting a full ring.
        std::this_thread::sleep_for(std::chrono::microseconds(5));
      } else if (++idle > 1'000'000) {
        return;  // producer done and ring drained
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (std::uint64_t v = 0; v < kAttempts; ++v) {
    std::uint64_t value = v;
    ring.try_push(std::move(value));  // a reject is a LOSS, not a retry
  }
  consumer.join();

  // Exact accounting: every attempt either landed or was rejected, and
  // everything that landed came out the other side.
  EXPECT_EQ(ring.pushed() + ring.rejected(), kAttempts);
  EXPECT_EQ(delivered.size(), ring.pushed());
  EXPECT_GT(ring.rejected(), 0u) << "consumer was not slow enough to "
                                    "exercise backpressure";
  EXPECT_TRUE(ring.empty());

  // Cursor integrity: the survivors form a strictly increasing
  // subsequence of the input — any duplication, reordering or torn slot
  // would break monotonicity.
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    ASSERT_LT(delivered[i - 1], delivered[i]) << i;
  }
  if (!delivered.empty()) {
    EXPECT_LT(delivered.back(), kAttempts);
  }
}

}  // namespace
}  // namespace likwid::monitor
