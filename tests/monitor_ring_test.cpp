// Tests for the agent's bounded sample storage (monitor/ring_buffer.hpp):
// fill-up, wrap/overwrite semantics, age-ordered indexing, drop
// accounting, and misuse rejection.
#include <gtest/gtest.h>

#include "monitor/ring_buffer.hpp"
#include "util/status.hpp"

namespace likwid::monitor {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), Error);
}

TEST(RingBuffer, FillsInOrder) {
  RingBuffer<int> ring(3);
  ring.push(10);
  ring.push(11);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_FALSE(ring.full());
  EXPECT_EQ(ring[0], 10);
  EXPECT_EQ(ring[1], 11);
  EXPECT_EQ(ring.front(), 10);
  EXPECT_EQ(ring.back(), 11);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> ring(3);
  for (int v = 0; v < 5; ++v) ring.push(v);
  // 0 and 1 were overwritten; 2,3,4 survive in age order.
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0], 2);
  EXPECT_EQ(ring[1], 3);
  EXPECT_EQ(ring[2], 4);
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(RingBuffer, WrapsRepeatedly) {
  RingBuffer<int> ring(2);
  for (int v = 0; v < 101; ++v) ring.push(v);
  EXPECT_EQ(ring[0], 99);
  EXPECT_EQ(ring[1], 100);
  EXPECT_EQ(ring.pushed(), 101u);
  EXPECT_EQ(ring.dropped(), 99u);
}

TEST(RingBuffer, IndexOutOfRangeThrows) {
  RingBuffer<int> ring(4);
  ring.push(1);
  EXPECT_THROW(ring[1], Error);
  EXPECT_NO_THROW(ring[0]);
}

TEST(RingBuffer, BackOnEmptyThrows) {
  RingBuffer<int> ring(4);
  EXPECT_THROW(ring.back(), Error);
}

TEST(RingBuffer, ClearKeepsLifetimeStatistics) {
  RingBuffer<int> ring(2);
  for (int v = 0; v < 4; ++v) ring.push(v);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pushed(), 4u);
  ring.push(7);
  EXPECT_EQ(ring[0], 7);
  EXPECT_EQ(ring.size(), 1u);
}

}  // namespace
}  // namespace likwid::monitor
