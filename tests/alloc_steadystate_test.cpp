// Zero-allocation regression tests for the steady-state sampling path
// (the tentpole contract of the batched metric engine): after warm-up,
//   IntervalSampler::poll_into -> CountSlab delta -> BatchProgram ->
//   MetricBatch -> monitor::Sample -> SampleRing
// performs NO heap allocations per sample, and the fleet fold loop
// (WindowFolder::add) performs none per folded sample between window
// closes. Counted through the operator new/delete replacement in
// util/alloc_hook.cpp (this binary links `likwid_alloc_hook`).
//
// Carries the `concurrency` ctest label: the contract exists so parallel
// fleet workers never contend on the allocator in their hot loops.
#include <gtest/gtest.h>

#include <vector>

#include "core/perfctr.hpp"
#include "core/sampling.hpp"
#include "hwsim/presets.hpp"
#include "monitor/aggregator.hpp"
#include "monitor/collector.hpp"
#include "monitor/config.hpp"
#include "ossim/kernel.hpp"
#include "util/alloc_hook.hpp"

namespace likwid {
namespace {

std::uint64_t allocations_now() { return util::alloc_counts().allocations; }

TEST(AllocSteadyState, HookCountsThisBinarysAllocations) {
  const std::uint64_t before = allocations_now();
  auto* p = new std::vector<double>(1024);
  delete p;
  EXPECT_GT(allocations_now(), before);
}

TEST(AllocSteadyState, SamplerPollIntoIsAllocationFreeAfterWarmup) {
#if LIKWID_UNDER_SANITIZER
  GTEST_SKIP() << "sanitizer runtime allocates behind the program's back";
#endif
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  ossim::SimKernel kernel(machine);
  core::PerfCtr ctr(kernel, {0, 1, 2, 3});
  ctr.add_group("MEM");
  ctr.add_group("FLOPS_DP");
  ctr.start();
  core::IntervalSampler sampler(ctr);
  core::IntervalSampler::Interval iv;
  // Warm-up: every set must have been polled (rotation covers both) so
  // all reusable buffers — slab, metric batch, scratch columns — reach
  // their steady-state capacity.
  for (int i = 0; i < 6; ++i) {
    kernel.advance_time(0.01);
    sampler.poll_into(iv, /*rotate=*/true);
  }
  for (int i = 0; i < 32; ++i) {
    kernel.advance_time(0.01);
    const std::uint64_t before = allocations_now();
    sampler.poll_into(iv, /*rotate=*/true);
    EXPECT_EQ(allocations_now() - before, 0u) << "poll " << i;
  }
}

TEST(AllocSteadyState, CollectorStepIsAllocationFreeAfterWarmup) {
#if LIKWID_UNDER_SANITIZER
  GTEST_SKIP() << "sanitizer runtime allocates behind the program's back";
#endif
  monitor::MonitorConfig cfg;
  cfg.machine_preset = "nehalem-ep";
  cfg.groups = {"MEM", "FLOPS_DP"};
  cfg.interval_seconds = 0.01;
  cfg.ring_capacity = 4;  // small: retirement/recycling kicks in early
  cfg.window_samples = 4;
  // A fully idle node: the workload loop would allocate task bookkeeping
  // inside the simulated kernel, which is application behavior, not the
  // monitoring path under test.
  cfg.target_utilization = 0.0;
  monitor::Collector collector(0, cfg);
  // Warm-up: fill the ring past capacity so push_swap recycles retired
  // slots, and visit every group at least twice.
  for (int i = 0; i < 12; ++i) collector.step();
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t before = allocations_now();
    collector.step();
    EXPECT_EQ(allocations_now() - before, 0u) << "step " << i;
  }
}

TEST(AllocSteadyState, FoldLoopIsAllocationFreeBetweenWindowCloses) {
#if LIKWID_UNDER_SANITIZER
  GTEST_SKIP() << "sanitizer runtime allocates behind the program's back";
#endif
  monitor::MonitorConfig cfg;
  cfg.machine_preset = "nehalem-ep";
  cfg.groups = {"MEM"};
  cfg.interval_seconds = 0.01;
  cfg.ring_capacity = 64;
  cfg.window_samples = 4;
  cfg.target_utilization = 0.0;
  monitor::Collector collector(0, cfg);
  for (int i = 0; i < 40; ++i) collector.step();
  const monitor::SampleRing& ring = collector.samples();
  ASSERT_EQ(ring.size(), 40u);
  monitor::WindowFolder folder(0, cfg.window_samples);
  // Warm-up: two full windows establish the series buffers' capacity and
  // the emitted-points vector's slack.
  std::size_t i = 0;
  for (; i < 8; ++i) folder.add(ring[i]);
  for (; i < 39; ++i) {
    // A closing add emits a SeriesPoint (amortized growth is allowed
    // there); every other add must be allocation-free.
    const bool closes =
        (folder.samples_folded() + 1) % cfg.window_samples == 0;
    const std::uint64_t before = allocations_now();
    folder.add(ring[i]);
    if (!closes) {
      EXPECT_EQ(allocations_now() - before, 0u) << "sample " << i;
    }
  }
}

}  // namespace
}  // namespace likwid
