// End-to-end sweep: every supported performance group on every simulated
// architecture, measured through the complete stack (counter programming ->
// workload -> PMU -> readout -> derived metrics). Catches cross-arch
// breakage the per-module tests cannot see: AMD 4-counter budgets, Pentium
// M's missing fixed counters, uncore groups on parts without an uncore.
#include <gtest/gtest.h>

#include <cmath>

#include "core/perfctr.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"
#include "workloads/stream.hpp"

namespace likwid::core {
namespace {

class GroupsEndToEnd
    : public ::testing::TestWithParam<hwsim::presets::NamedPreset> {
 protected:
  /// Run a short triad on the first two cpus (or one, on single-cpu parts)
  /// with the given group measured; returns the metric rows.
  std::vector<PerfCtr::MetricRow> measure(hwsim::SimMachine& machine,
                                          const std::string& group,
                                          double* flops_counted = nullptr) {
    ossim::SimKernel kernel(machine);
    std::vector<int> cpus = {0};
    if (machine.num_threads() > 1) cpus.push_back(1);
    PerfCtr ctr(kernel, cpus);
    ctr.add_group(group);
    workloads::StreamConfig cfg;
    cfg.array_length = 400'000;
    cfg.repetitions = 1;
    workloads::StreamTriad triad(cfg);
    workloads::Placement p;
    p.cpus = cpus;
    for (const int c : cpus) kernel.scheduler().add_busy(c, 1);
    ctr.start();
    run_workload(kernel, triad, p);
    ctr.stop();
    if (flops_counted != nullptr) {
      *flops_counted = 0;
      for (const auto& a : ctr.assignments_of(0)) {
        if (a.encoding->id == hwsim::EventId::kFpPackedDouble ||
            a.encoding->id == hwsim::EventId::kFpScalarDouble) {
          *flops_counted += ctr.extrapolated_count(0, 0, a.event_name);
        }
      }
    }
    return ctr.compute_metrics(0);
  }
};

TEST_P(GroupsEndToEnd, EverySupportedGroupMeasuresCleanly) {
  hwsim::SimMachine machine(GetParam().factory());
  const auto groups = supported_groups(machine.arch());
  ASSERT_FALSE(groups.empty());
  for (const auto& g : groups) {
    const auto rows = measure(machine, g.name);
    ASSERT_FALSE(rows.empty()) << g.name;
    EXPECT_EQ(rows.front().name(), "Runtime [s]") << g.name;
    for (const auto& row : rows) {
      for (const double value : row.values) {
        EXPECT_TRUE(std::isfinite(value))
            << GetParam().key << "/" << g.name << "/" << row.name();
        EXPECT_GE(value, 0.0)
            << GetParam().key << "/" << g.name << "/" << row.name();
      }
    }
    // The runtime of a real run is positive on the measured cpus.
    EXPECT_GT(rows.front().at(0), 0) << g.name;
  }
}

TEST_P(GroupsEndToEnd, FlopsDpCountsTheTriadFlops) {
  hwsim::SimMachine machine(GetParam().factory());
  double flop_events = 0;
  const auto rows = measure(machine, "FLOPS_DP", &flop_events);
  // The triad issues one packed op per iteration (2 flops) on the icc
  // profile; each of the (up to) two workers gets its share.
  const double workers = machine.num_threads() > 1 ? 2.0 : 1.0;
  EXPECT_DOUBLE_EQ(flop_events, 400'000 / workers);
  // And the derived MFlops/s metric is positive wherever defined.
  bool found = false;
  for (const auto& row : rows) {
    if (row.name() == "DP MFlops/s") {
      found = true;
      EXPECT_GT(row.at(0), 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(GroupsEndToEnd, MemGroupSeesTheStreamTraffic) {
  hwsim::SimMachine machine(GetParam().factory());
  const auto rows = measure(machine, "MEM");
  for (const auto& row : rows) {
    if (row.name() == "Memory bandwidth [MBytes/s]") {
      // Some cpu (the socket-lock owner for uncore-based groups, any
      // measured cpu for bus-event groups) reports nonzero bandwidth.
      double max_bw = 0;
      for (const double value : row.values) {
        max_bw = std::max(max_bw, value);
      }
      EXPECT_GT(max_bw, 0) << GetParam().key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, GroupsEndToEnd,
    ::testing::ValuesIn(hwsim::presets::all_presets()),
    [](const ::testing::TestParamInfo<hwsim::presets::NamedPreset>& info) {
      std::string name = info.param.key;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace likwid::core
