// Tests for the marker API: region registration, accumulation over repeated
// start/stop pairs (the paper's "Accum" loop), misuse detection, and the
// C-style shim of the paper's listing.
#include <gtest/gtest.h>

#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"
#include "workloads/stream.hpp"

namespace likwid::core {
namespace {

class Marker : public ::testing::Test {
 protected:
  Marker()
      : machine(hwsim::presets::core2_quad()),
        kernel(machine),
        ctr(kernel, {0, 1, 2, 3}) {
    ctr.add_group("FLOPS_DP");
    ctr.start();
  }

  ~Marker() override {
    if (ctr.running()) ctr.stop();
  }

  void run_triad(const std::vector<int>& cpus, std::size_t len) {
    workloads::StreamConfig cfg;
    cfg.array_length = len;
    cfg.repetitions = 1;
    workloads::StreamTriad triad(cfg);
    workloads::Placement p;
    p.cpus = cpus;
    run_workload(kernel, triad, p);
  }

  hwsim::SimMachine machine;
  ossim::SimKernel kernel;
  PerfCtr ctr;
};

TEST_F(Marker, RegisterAssignsSequentialIds) {
  MarkerSession session(ctr, 1, 2);
  EXPECT_EQ(session.register_region("Main"), 0);
  EXPECT_EQ(session.register_region("Accum"), 1);
  // Re-registration returns the existing id.
  EXPECT_EQ(session.register_region("Main"), 0);
}

TEST_F(Marker, RegionCapacityEnforced) {
  MarkerSession session(ctr, 1, 1);
  session.register_region("Only");
  try {
    session.register_region("TooMany");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }
}

TEST_F(Marker, MeasuresOnlyInsideRegion) {
  MarkerSession session(ctr, 1, 1);
  const int id = session.register_region("Main");
  run_triad({0}, 500'000);  // before the region: must not be counted
  session.start_region(0, 0);
  run_triad({0}, 1'000'000);
  session.stop_region(0, 0, id);
  run_triad({0}, 500'000);  // after the region: must not be counted
  const auto& region = session.region(id);
  EXPECT_DOUBLE_EQ(
      region.counts.at(0, *ctr.slot_of(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE")),
      1'000'000);
}

TEST_F(Marker, AccumulatesOverCalls) {
  // The paper: "Event counts are automatically accumulated on multiple
  // calls" — the Accum region inside the j-loop.
  MarkerSession session(ctr, 1, 1);
  const int id = session.register_region("Accum");
  for (int j = 0; j < 5; ++j) {
    session.start_region(0, 0);
    run_triad({0}, 200'000);
    session.stop_region(0, 0, id);
  }
  const auto& region = session.region(id);
  EXPECT_DOUBLE_EQ(
      region.counts.at(0, *ctr.slot_of(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE")),
      1'000'000);
  EXPECT_EQ(region.call_count, 5);
  EXPECT_GT(region.seconds.at(0), 0);
}

TEST_F(Marker, PerThreadRegionsOnDifferentCores) {
  MarkerSession session(ctr, 4, 1);
  const int id = session.register_region("Par");
  for (int t = 0; t < 4; ++t) session.start_region(t, t);
  run_triad({0, 1, 2, 3}, 4'000'000);
  for (int t = 0; t < 4; ++t) session.stop_region(t, t, id);
  const auto& region = session.region(id);
  for (int cpu = 0; cpu < 4; ++cpu) {
    EXPECT_DOUBLE_EQ(
        region.counts.at(
            cpu, *ctr.slot_of(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE")),
        1'000'000);
  }
}

TEST_F(Marker, NestingRejected) {
  MarkerSession session(ctr, 1, 2);
  session.register_region("A");
  session.start_region(0, 0);
  try {
    session.start_region(0, 0);  // nesting / overlap
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidState);
  }
  session.stop_region(0, 0, 0);
}

TEST_F(Marker, StopWithoutStartRejected) {
  MarkerSession session(ctr, 1, 1);
  session.register_region("A");
  EXPECT_THROW(session.stop_region(0, 0, 0), Error);
}

TEST_F(Marker, StopOnDifferentCoreRejected) {
  MarkerSession session(ctr, 1, 1);
  session.register_region("A");
  session.start_region(0, 0);
  EXPECT_THROW(session.stop_region(0, 1, 0), Error);
  session.stop_region(0, 0, 0);
}

TEST_F(Marker, UnregisteredRegionRejected) {
  MarkerSession session(ctr, 1, 1);
  session.start_region(0, 0);
  EXPECT_THROW(session.stop_region(0, 0, 7), Error);
  session.register_region("A");
  session.stop_region(0, 0, 0);
}

TEST_F(Marker, CloseWithOpenRegionRejected) {
  MarkerSession session(ctr, 1, 1);
  session.register_region("A");
  session.start_region(0, 0);
  EXPECT_THROW(session.close(), Error);
  session.stop_region(0, 0, 0);
  session.close();
  EXPECT_TRUE(session.closed());
  EXPECT_THROW(session.start_region(0, 0), Error);
}

TEST_F(Marker, MetricsFromRegionCounts) {
  MarkerSession session(ctr, 1, 1);
  const int id = session.register_region("Bench");
  session.start_region(0, 0);
  run_triad({0}, 2'000'000);
  session.stop_region(0, 0, id);
  const auto& region = session.region(id);
  const auto rows = ctr.compute_metrics_for(0, region.counts,
                                            region.seconds.at(0));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2].name(), "DP MFlops/s");
  EXPECT_GT(rows[2].at(0), 0);
}

TEST_F(Marker, CStyleShimFollowsPaperListing) {
  // The exact call sequence of the paper's Section II-A listing.
  MarkerBinding::bind(&ctr, [] { return 0; });
  const int coreID = likwid_processGetProcessorId();
  EXPECT_EQ(coreID, 0);
  likwid_markerInit(1, 2);
  const int MainId = likwid_markerRegisterRegion("Main");
  const int AccumId = likwid_markerRegisterRegion("Accum");
  likwid_markerStartRegion(0, coreID);
  run_triad({0}, 1'000'000);
  likwid_markerStopRegion(0, coreID, MainId);
  for (int j = 0; j < 3; ++j) {
    likwid_markerStartRegion(0, coreID);
    run_triad({0}, 100'000);
    likwid_markerStopRegion(0, coreID, AccumId);
  }
  likwid_markerClose();
  const auto* session = MarkerBinding::session();
  ASSERT_NE(session, nullptr);
  const std::size_t slot =
      *ctr.slot_of(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE");
  EXPECT_DOUBLE_EQ(session->region(MainId).counts.at(0, slot), 1'000'000);
  EXPECT_DOUBLE_EQ(session->region(AccumId).counts.at(0, slot), 300'000);
  MarkerBinding::unbind();
}

TEST_F(Marker, ShimWithoutBindingRejected) {
  MarkerBinding::unbind();
  EXPECT_THROW(likwid_markerInit(1, 1), Error);
  EXPECT_THROW(likwid_markerRegisterRegion("X"), Error);
  EXPECT_THROW(likwid_markerStartRegion(0, 0), Error);
  EXPECT_THROW(likwid_markerClose(), Error);
}

TEST_F(Marker, DoubleBindRejected) {
  MarkerBinding::bind(&ctr, [] { return 0; });
  EXPECT_THROW(MarkerBinding::bind(&ctr, [] { return 0; }), Error);
  MarkerBinding::unbind();
}

TEST_F(Marker, DoubleBindNamesTheBoundOwner) {
  MarkerEnv env("session 'alpha'");
  env.bind(&ctr, [] { return 0; });
  MarkerBinding::adopt_env(&env);
  try {
    MarkerBinding::bind(&ctr, [] { return 0; });
    FAIL() << "double bind must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidState);
    EXPECT_NE(std::string(e.what()).find("session 'alpha'"),
              std::string::npos)
        << e.what();
  }
  MarkerBinding::unbind();
}

TEST_F(Marker, BindUnbindBindCyclesAreSafe) {
  // Three full cycles, each running the complete marker lifecycle: a
  // stale session or counter pointer from a previous cycle would trip
  // the "called twice" / "already bound" checks immediately.
  for (int cycle = 0; cycle < 3; ++cycle) {
    MarkerBinding::bind(&ctr, [] { return 0; });
    EXPECT_TRUE(MarkerBinding::bound());
    EXPECT_EQ(MarkerBinding::session(), nullptr)
        << "unbind must clear the previous cycle's session";
    likwid_markerInit(1, 1);
    const int id = likwid_markerRegisterRegion("Cycle");
    likwid_markerStartRegion(0, 0);
    run_triad({0}, 100'000);
    likwid_markerStopRegion(0, 0, id);
    likwid_markerClose();
    ASSERT_NE(MarkerBinding::session(), nullptr);
    MarkerBinding::unbind();
    EXPECT_FALSE(MarkerBinding::bound());
    EXPECT_EQ(MarkerBinding::session(), nullptr);
  }
}

TEST_F(Marker, UnbindReleasesASessionEnvWithoutResettingIt) {
  MarkerEnv env("session 'beta'");
  env.bind(&ctr, [] { return 0; });
  MarkerBinding::adopt_env(&env);
  likwid_markerInit(1, 1);
  const int id = likwid_markerRegisterRegion("Kept");
  likwid_markerStartRegion(0, 0);
  run_triad({0}, 100'000);
  likwid_markerStopRegion(0, 0, id);
  likwid_markerClose();
  // release_env only detaches the ambient routing; the owning session's
  // results stay readable. unbind() instead resets the ambient env.
  MarkerBinding::release_env(&env);
  EXPECT_FALSE(MarkerBinding::bound());
  ASSERT_NE(env.session(), nullptr);
  EXPECT_EQ(env.session()->region(id).call_count, 1);
  env.unbind();
  EXPECT_EQ(env.session(), nullptr);
}

TEST_F(Marker, PerSessionEnvsKeepIndependentState) {
  MarkerEnv first("first");
  MarkerEnv second("second");
  first.bind(&ctr, [] { return 0; });
  second.bind(&ctr, [] { return 1; });
  first.init(1, 1);
  second.init(2, 2);
  EXPECT_EQ(first.register_region("A"), 0);
  EXPECT_EQ(second.register_region("B"), 0);
  EXPECT_EQ(second.register_region("C"), 1);
  ASSERT_NE(first.session(), nullptr);
  ASSERT_NE(second.session(), nullptr);
  EXPECT_EQ(first.session()->regions().size(), 1u);
  EXPECT_EQ(second.session()->regions().size(), 2u);
  EXPECT_EQ(first.current_cpu(), 0);
  EXPECT_EQ(second.current_cpu(), 1);
}

}  // namespace
}  // namespace likwid::core
