// Tests for the CSV output renderer (the --csv / -o FILE.csv extension):
// RFC 4180 escaping, section layout, and agreement with the measurement
// data the ASCII tables show.
#include <gtest/gtest.h>

#include <sstream>

#include "cli/csv_output.hpp"
#include "core/perfctr.hpp"
#include "core/topology.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/synthetic.hpp"

namespace likwid::cli {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("INSTR_RETIRED_ANY"), "INSTR_RETIRED_ANY");
  EXPECT_EQ(csv_escape("Runtime [s]"), "Runtime [s]");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, SpecialCharactersAreQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

/// Split CSV text into rows of unquoted cells (no embedded-quote cells in
/// the tool's numeric output, so a simple splitter suffices for plain rows).
std::vector<std::vector<std::string>> parse_rows(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  return rows;
}

class CsvMeasurement : public ::testing::Test {
 protected:
  CsvMeasurement()
      : machine_(hwsim::presets::nehalem_ep()), kernel_(machine_) {}

  std::string measure_csv(const std::string& group) {
    core::PerfCtr ctr(kernel_, {0, 1});
    ctr.add_group(group);
    workloads::SyntheticKernel k(workloads::daxpy_kernel(200'000, 2));
    workloads::Placement p;
    p.cpus = {0, 1};
    kernel_.scheduler().add_busy(0, 1);
    kernel_.scheduler().add_busy(1, 1);
    ctr.start();
    run_workload(kernel_, k, p);
    ctr.stop();
    return csv_measurement(ctr, 0);
  }

  hwsim::SimMachine machine_;
  ossim::SimKernel kernel_;
};

TEST_F(CsvMeasurement, SectionsAndHeadersArePresent) {
  const auto rows = parse_rows(measure_csv("FLOPS_DP"));
  ASSERT_GE(rows.size(), 4u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"GROUP", "FLOPS_DP"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"Event", "Counter", "core 0",
                                               "core 1"}));
  // A metric header follows the event rows.
  bool metric_header = false;
  for (const auto& r : rows) {
    if (!r.empty() && r[0] == "Metric") {
      metric_header = true;
      EXPECT_EQ(r.size(), 3u);  // Metric + 2 cpus
    }
  }
  EXPECT_TRUE(metric_header);
}

TEST_F(CsvMeasurement, EventRowsCarryTheCounterNames) {
  const auto rows = parse_rows(measure_csv("FLOPS_DP"));
  bool fixed_seen = false, pmc_seen = false;
  for (const auto& r : rows) {
    if (r.size() >= 2 && r[1].rfind("FIXC", 0) == 0) fixed_seen = true;
    if (r.size() >= 2 && r[1].rfind("PMC", 0) == 0) pmc_seen = true;
  }
  EXPECT_TRUE(fixed_seen);
  EXPECT_TRUE(pmc_seen);
}

TEST_F(CsvMeasurement, ValuesMatchTheMeasuredCounts) {
  const auto rows = parse_rows(measure_csv("DATA"));
  // daxpy: loads = 2 per iteration, stores = 1; 200k iters x 2 sweeps per
  // worker.
  double loads = -1, stores = -1;
  for (const auto& r : rows) {
    if (r.size() >= 4 && r[0].find("LOADS") != std::string::npos) {
      loads = std::stod(r[2]);
    }
    if (r.size() >= 4 && r[0].find("STORES") != std::string::npos) {
      stores = std::stod(r[2]);
    }
  }
  EXPECT_DOUBLE_EQ(loads, 800'000.0);
  EXPECT_DOUBLE_EQ(stores, 400'000.0);
  // And the derived ratio row reports 2.
  bool ratio_found = false;
  for (const auto& r : rows) {
    if (!r.empty() && r[0] == "Load to store ratio") {
      ratio_found = true;
      EXPECT_DOUBLE_EQ(std::stod(r[1]), 2.0);
    }
  }
  EXPECT_TRUE(ratio_found);
}

TEST(CsvTopology, TablesDescribeTheNode) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const auto topo = core::probe_topology(machine);
  const auto rows = parse_rows(csv_topology(topo));

  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0], (std::vector<std::string>{"TABLE", "node"}));
  int thread_rows = 0;
  bool cache_table = false, sockets_row = false;
  for (const auto& r : rows) {
    if (r.size() == 2 && r[0] == "Sockets") {
      sockets_row = true;
      EXPECT_EQ(r[1], "2");
    }
    if (r.size() == 5 && r[0] != "HWThread" &&
        r[0].find_first_not_of("0123456789") == std::string::npos) {
      ++thread_rows;
    }
    if (r.size() == 2 && r[1] == "caches") cache_table = true;
  }
  EXPECT_TRUE(sockets_row);
  EXPECT_TRUE(cache_table);
  EXPECT_EQ(thread_rows, 24);  // 2 sockets x 6 cores x 2 SMT
}

}  // namespace
}  // namespace likwid::cli
