// Tests for the compiled metric programs (core/compiled_metric.hpp):
// differential fuzzing against the AST evaluator (the oracle the postfix
// lowering must agree with bit for bit), plus the documented edge cases —
// division by zero yields 0, unbound variables throw kNotFound at compile
// time, nested unary minus, exponent literals.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/metric_expr.hpp"
#include "util/status.hpp"

namespace likwid::core {
namespace {

/// Variable universe shared by the fuzzer's expressions and bindings.
const std::vector<std::string>& var_names() {
  static const std::vector<std::string> kVars = {"A", "B", "C", "time",
                                                 "clock", "EVT_0"};
  return kVars;
}

/// Compile with registers 0..n-1 bound to var_names() order.
CompiledMetric compile_with_vars(const MetricExpr& expr) {
  return expr.compile([](std::string_view name) -> int {
    const auto& vars = var_names();
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == name) return static_cast<int>(i);
    }
    return -1;
  });
}

double eval_compiled(const MetricExpr& expr,
                     const std::vector<double>& regs) {
  return compile_with_vars(expr).evaluate(regs);
}

std::map<std::string, double> bindings_of(const std::vector<double>& regs) {
  std::map<std::string, double> vars;
  for (std::size_t i = 0; i < regs.size(); ++i) {
    vars[var_names()[i]] = regs[i];
  }
  return vars;
}

// --- deterministic expression fuzzer ---------------------------------------

/// xorshift64*: tiny, seedable, no <random> verbosity.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  int below(int n) { return static_cast<int>(next() % static_cast<unsigned>(n)); }
};

/// Random expression over var_names() and assorted literals, depth-bounded.
std::string random_expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.below(4) == 0) {
    switch (rng.below(6)) {
      case 0: return var_names()[static_cast<std::size_t>(
          rng.below(static_cast<int>(var_names().size())))];
      case 1: return "0";
      case 2: return "2.5";
      case 3: return "1e-3";
      case 4: return "2.5E+2";
      default: return std::to_string(rng.below(100));
    }
  }
  switch (rng.below(6)) {
    case 0: return "-" + random_expr(rng, depth - 1);
    case 1: return "(" + random_expr(rng, depth - 1) + ")";
    default: {
      static const char* kOps[] = {"+", "-", "*", "/"};
      return random_expr(rng, depth - 1) + kOps[rng.below(4)] +
             random_expr(rng, depth - 1);
    }
  }
}

TEST(CompiledMetric, DifferentialFuzzAgreesWithAstOracle) {
  Rng rng{0x9E3779B97F4A7C15ULL};
  for (int round = 0; round < 2000; ++round) {
    const std::string text = random_expr(rng, 5);
    const MetricExpr expr = MetricExpr::parse(text);
    const CompiledMetric program = compile_with_vars(expr);
    // Several bindings per expression, mixing zeros (division-by-zero
    // paths), negatives and large magnitudes.
    for (int binding = 0; binding < 4; ++binding) {
      std::vector<double> regs(var_names().size());
      for (double& r : regs) {
        switch (rng.below(5)) {
          case 0: r = 0.0; break;
          case 1: r = -3.25; break;
          case 2: r = 1e9; break;
          case 3: r = 1e-9; break;
          default: r = static_cast<double>(rng.below(1000)); break;
        }
      }
      const double want = expr.evaluate(bindings_of(regs));
      const double got = program.evaluate(regs);
      // The programs execute the identical operation tree, so the results
      // are bit-identical, NaN included (0/0 never occurs: /0 -> 0).
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got)) << text;
      } else {
        EXPECT_EQ(want, got) << text;
      }
    }
  }
}

TEST(CompiledMetric, PaperFlopsFormula) {
  const MetricExpr expr =
      MetricExpr::parse("1.0E-06*(A*2.0+B)/time");
  const CompiledMetric program = compile_with_vars(expr);
  // regs: A B C time clock EVT_0
  const std::vector<double> regs = {2'000'000, 1'000'000, 0, 0.5, 2.66e9, 0};
  EXPECT_DOUBLE_EQ(program.evaluate(regs), 1e-6 * 5'000'000 / 0.5);
}

TEST(CompiledMetric, DivisionByZeroYieldsZero) {
  EXPECT_DOUBLE_EQ(eval_compiled(MetricExpr::parse("A/B"),
                                 {7.0, 0.0, 0, 0, 0, 0}),
                   0.0);
  // ... also when the zero denominator is itself a division by zero.
  EXPECT_DOUBLE_EQ(eval_compiled(MetricExpr::parse("1/(A/B)"),
                                 {7.0, 0.0, 0, 0, 0, 0}),
                   0.0);
  EXPECT_DOUBLE_EQ(eval_compiled(MetricExpr::parse("3/0"), {}), 0.0);
}

TEST(CompiledMetric, UnboundVariableThrowsAtCompileTime) {
  const MetricExpr expr = MetricExpr::parse("MISSING/2");
  try {
    compile_with_vars(expr);
    FAIL() << "compile of an unbound variable must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

TEST(CompiledMetric, NestedUnaryMinus) {
  EXPECT_DOUBLE_EQ(eval_compiled(MetricExpr::parse("--A"),
                                 {4.0, 0, 0, 0, 0, 0}),
                   4.0);
  EXPECT_DOUBLE_EQ(eval_compiled(MetricExpr::parse("-(-(-A))"),
                                 {4.0, 0, 0, 0, 0, 0}),
                   -4.0);
  EXPECT_DOUBLE_EQ(eval_compiled(MetricExpr::parse("5--3"), {}), 8.0);
}

TEST(CompiledMetric, ExponentLiterals) {
  EXPECT_DOUBLE_EQ(eval_compiled(MetricExpr::parse("1e-3"), {}), 1e-3);
  EXPECT_DOUBLE_EQ(eval_compiled(MetricExpr::parse("2.5E+2"), {}), 250.0);
  EXPECT_DOUBLE_EQ(eval_compiled(MetricExpr::parse("1e-3*2.5E+2"), {}), 0.25);
}

TEST(CompiledMetric, StackDepthIsTrackedAndBounded) {
  // Left-leaning chains keep the stack shallow...
  const MetricExpr chain = MetricExpr::parse("A+A+A+A+A+A+A+A");
  EXPECT_EQ(compile_with_vars(chain).max_stack_depth(), 2);
  // ... right-nested parentheses deepen it by one per level.
  const MetricExpr nested = MetricExpr::parse("A+(A+(A+(A+A)))");
  EXPECT_EQ(compile_with_vars(nested).max_stack_depth(), 5);
  // Deeper than kMaxStack is rejected at compile time.
  std::string deep = "A";
  for (int i = 0; i < CompiledMetric::kMaxStack; ++i) {
    deep = "A+(" + deep + ")";
  }
  try {
    compile_with_vars(MetricExpr::parse(deep));
    FAIL() << "over-deep program must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }
}

TEST(CompiledMetric, EmptyRegisterFileServesConstantFormulas) {
  // Formulas without variables never touch regs; an empty span is fine.
  const MetricExpr expr = MetricExpr::parse("(1+2)*3-4/5");
  EXPECT_DOUBLE_EQ(compile_with_vars(expr).evaluate({}), 9.0 - 0.8);
}

}  // namespace
}  // namespace likwid::core
