// Tests for the metric expression engine and the performance-group
// definitions across all architectures.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/metric_expr.hpp"
#include "core/perf_groups.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"

namespace likwid::core {
namespace {

// --- metric expressions -------------------------------------------------

double eval(const std::string& text,
            const std::map<std::string, double>& vars = {}) {
  return MetricExpr::parse(text).evaluate(vars);
}

TEST(MetricExpr, Literals) {
  EXPECT_DOUBLE_EQ(eval("42"), 42.0);
  EXPECT_DOUBLE_EQ(eval("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(eval("1.0E-06"), 1e-6);
  EXPECT_DOUBLE_EQ(eval("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(eval("2E+2"), 200.0);
}

TEST(MetricExpr, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval("1+2*3"), 7.0);
  EXPECT_DOUBLE_EQ(eval("(1+2)*3"), 9.0);
  EXPECT_DOUBLE_EQ(eval("10-4-3"), 3.0);   // left associative
  EXPECT_DOUBLE_EQ(eval("24/4/2"), 3.0);
  EXPECT_DOUBLE_EQ(eval("-5+2"), -3.0);
  EXPECT_DOUBLE_EQ(eval("2*-3"), -6.0);
}

TEST(MetricExpr, Variables) {
  EXPECT_DOUBLE_EQ(eval("FLOPS_PD*2.0+FLOPS_SD",
                        {{"FLOPS_PD", 100}, {"FLOPS_SD", 7}}),
                   207.0);
  EXPECT_DOUBLE_EQ(eval("CPU_CLK_UNHALTED_CORE/INSTR_RETIRED_ANY",
                        {{"CPU_CLK_UNHALTED_CORE", 300},
                         {"INSTR_RETIRED_ANY", 200}}),
                   1.5);
}

TEST(MetricExpr, PaperFlopsFormula) {
  // "DP MFlops/s" from the FLOPS_DP group.
  const double v =
      eval("1.0E-06*(PD*2.0+SD)/time",
           {{"PD", 8.192e6}, {"SD", 1}, {"time", 0.01}});
  EXPECT_NEAR(v, 1638.4, 0.1);
}

TEST(MetricExpr, DivisionByZeroYieldsZero) {
  EXPECT_DOUBLE_EQ(eval("5/0"), 0.0);
  EXPECT_DOUBLE_EQ(eval("A/B", {{"A", 5}, {"B", 0}}), 0.0);
}

TEST(MetricExpr, UnboundVariableThrows) {
  const MetricExpr e = MetricExpr::parse("MISSING/2");
  try {
    e.evaluate({});
    FAIL();
  } catch (const Error& err) {
    EXPECT_EQ(err.code(), ErrorCode::kNotFound);
  }
}

TEST(MetricExpr, VariableCollection) {
  const MetricExpr e = MetricExpr::parse("A*(B+C)/A");
  EXPECT_EQ(e.variables(), (std::vector<std::string>{"A", "B", "C"}));
}

TEST(MetricExpr, SyntaxErrorsCarryPosition) {
  for (const char* bad : {"", "1+", "(1", "1 2", "*3", "a..b", "1+%"}) {
    EXPECT_THROW(MetricExpr::parse(bad), Error) << bad;
  }
}

TEST(MetricExpr, WhitespaceTolerant) {
  EXPECT_DOUBLE_EQ(eval("  1 +  2 * ( 3 - 1 ) "), 5.0);
}

// --- performance groups ----------------------------------------------------

TEST(Groups, PaperListIsComplete) {
  // The paper's table of predefined event sets.
  EXPECT_EQ(group_names(),
            (std::vector<std::string>{"FLOPS_DP", "FLOPS_SP", "L2", "L3",
                                      "MEM", "CACHE", "L2CACHE", "L3CACHE",
                                      "DATA", "BRANCH", "TLB"}));
}

TEST(Groups, UnknownGroupNameThrows) {
  EXPECT_THROW(find_group(hwsim::Arch::kCore2, "FLOPS_QP"), Error);
}

TEST(Groups, FlopsDpOnCore2UsesPaperEvents) {
  const auto g = find_group(hwsim::Arch::kCore2, "FLOPS_DP");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->description, "Double Precision MFlops/s");
  EXPECT_EQ(g->events,
            (std::vector<std::string>{"SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
                                      "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE"}));
  // Metrics: Runtime, CPI, DP MFlops/s — as in the paper's listing.
  ASSERT_EQ(g->metrics.size(), 3u);
  EXPECT_EQ(g->metrics[0].name, "Runtime [s]");
  EXPECT_EQ(g->metrics[1].name, "CPI");
  EXPECT_EQ(g->metrics[2].name, "DP MFlops/s");
}

TEST(Groups, MemGroupUsesUncoreOnNehalem) {
  const auto g = find_group(hwsim::Arch::kNehalem, "MEM");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->events,
            (std::vector<std::string>{"UNC_QMC_NORMAL_READS_ANY",
                                      "UNC_QMC_WRITES_FULL_ANY"}));
}

TEST(Groups, MemGroupUsesBusEventsOnCore2) {
  const auto g = find_group(hwsim::Arch::kCore2, "MEM");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->events, (std::vector<std::string>{"BUS_TRANS_MEM"}));
}

TEST(Groups, L3GroupsOnlyWhereL3Exists) {
  EXPECT_FALSE(find_group(hwsim::Arch::kCore2, "L3CACHE").has_value());
  EXPECT_FALSE(find_group(hwsim::Arch::kCore2, "L3").has_value());
  EXPECT_FALSE(find_group(hwsim::Arch::kK8, "L3CACHE").has_value());
  EXPECT_TRUE(find_group(hwsim::Arch::kNehalem, "L3CACHE").has_value());
  EXPECT_TRUE(find_group(hwsim::Arch::kK10, "L3CACHE").has_value());
}

TEST(Groups, DataGroupNeedsLoadStoreSplit) {
  EXPECT_TRUE(find_group(hwsim::Arch::kCore2, "DATA").has_value());
  EXPECT_TRUE(find_group(hwsim::Arch::kWestmere, "DATA").has_value());
  // AMD and Pentium M cannot split loads from stores in our tables.
  EXPECT_FALSE(find_group(hwsim::Arch::kK10, "DATA").has_value());
  EXPECT_FALSE(find_group(hwsim::Arch::kPentiumM, "DATA").has_value());
}

TEST(Groups, PentiumMGroupsLackCpi) {
  // Two counters, no fixed counters: the flop events use both counters and
  // CPI cannot be derived.
  const auto g = find_group(hwsim::Arch::kPentiumM, "FLOPS_DP");
  ASSERT_TRUE(g.has_value());
  for (const auto& m : g->metrics) {
    EXPECT_NE(m.name, "CPI");
  }
}

TEST(Groups, PentiumMCacheGroupConsumesItsOnlyEvent) {
  // Regression: with no room for INSTR next to DCU_LINES_IN, the group
  // used to count the event without any consuming formula (flagged by
  // likwid-lint's unused-event check); it now reports the raw rate.
  const auto g = find_group(hwsim::Arch::kPentiumM, "CACHE");
  ASSERT_TRUE(g.has_value());
  ASSERT_EQ(g->events, std::vector<std::string>{"DCU_LINES_IN"});
  const auto rate = std::find_if(
      g->metrics.begin(), g->metrics.end(),
      [](const GroupMetric& m) { return m.name == "L1 misses/s"; });
  ASSERT_NE(rate, g->metrics.end());
  EXPECT_EQ(rate->formula, "DCU_LINES_IN/time");
}

TEST(Groups, AmdGroupsCarryInstrAndCyclesExplicitly) {
  // No fixed counters on K10: INSTR/CLK occupy two of the four counters.
  const auto g = find_group(hwsim::Arch::kK10, "FLOPS_DP");
  ASSERT_TRUE(g.has_value());
  ASSERT_GE(g->events.size(), 2u);
  EXPECT_EQ(g->events[0], "RETIRED_INSTRUCTIONS");
  EXPECT_EQ(g->events[1], "CPU_CLOCKS_UNHALTED");
}

// Property sweep: every supported group on every architecture must
// reference only documented events, fit in the counter budget, and carry
// parseable metric formulas whose variables are all satisfiable.
class GroupsOnArch : public ::testing::TestWithParam<hwsim::presets::NamedPreset> {};

TEST_P(GroupsOnArch, AllGroupsWellFormed) {
  const hwsim::MachineSpec spec = GetParam().factory();
  const hwsim::Arch arch =
      hwsim::classify_arch(spec.vendor, spec.family, spec.model);
  const auto groups = supported_groups(arch);
  EXPECT_FALSE(groups.empty());
  for (const auto& g : groups) {
    int gp = 0;
    int uncore = 0;
    for (const auto& name : g.events) {
      const auto* enc = hwsim::find_event(arch, name);
      ASSERT_NE(enc, nullptr) << g.name << " references unknown " << name;
      if (enc->klass == hwsim::CounterClass::kCore) ++gp;
      if (enc->klass == hwsim::CounterClass::kUncore) ++uncore;
    }
    EXPECT_LE(gp, spec.pmu.num_gp_counters) << g.name;
    EXPECT_LE(uncore, spec.pmu.num_uncore_counters) << g.name;
    for (const auto& metric : g.metrics) {
      const MetricExpr expr = MetricExpr::parse(metric.formula);
      // Every referenced variable is an event of the set, a fixed-counter
      // event, `time` or `clock`.
      for (const auto& var : expr.variables()) {
        if (var == "time" || var == "clock") continue;
        const auto* enc = hwsim::find_event(arch, var);
        ASSERT_NE(enc, nullptr)
            << g.name << "/" << metric.name << " references " << var;
        const bool in_set =
            std::find(g.events.begin(), g.events.end(), var) != g.events.end();
        EXPECT_TRUE(in_set || enc->klass == hwsim::CounterClass::kFixed)
            << g.name << "/" << metric.name << " uses " << var
            << " which is neither in the set nor fixed";
      }
    }
  }
}

TEST_P(GroupsOnArch, FlopsGroupsAlwaysSupported) {
  const hwsim::MachineSpec spec = GetParam().factory();
  const hwsim::Arch arch =
      hwsim::classify_arch(spec.vendor, spec.family, spec.model);
  EXPECT_TRUE(find_group(arch, "FLOPS_DP").has_value());
  EXPECT_TRUE(find_group(arch, "FLOPS_SP").has_value());
  EXPECT_TRUE(find_group(arch, "BRANCH").has_value());
  EXPECT_TRUE(find_group(arch, "MEM").has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, GroupsOnArch,
    ::testing::ValuesIn(hwsim::presets::all_presets()),
    [](const ::testing::TestParamInfo<hwsim::presets::NamedPreset>& info) {
      std::string name = info.param.key;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace likwid::core
