// Tests for the MSR register file: existence per architecture, read/write
// semantics, read-only bit masking, socket-scoped uncore registers.
#include <gtest/gtest.h>

#include "hwsim/msr.hpp"
#include "hwsim/presets.hpp"
#include "util/bitops.hpp"

namespace likwid::hwsim {
namespace {

TEST(Msr, IntelRegistersExist) {
  const MachineSpec spec = presets::nehalem_ep();
  MsrRegisterFile regs(spec);
  EXPECT_TRUE(regs.exists(msr::kTsc));
  EXPECT_TRUE(regs.exists(msr::kMiscEnable));
  EXPECT_TRUE(regs.exists(msr::kPmc0));
  EXPECT_TRUE(regs.exists(msr::kPmc0 + 3));
  EXPECT_FALSE(regs.exists(msr::kPmc0 + 4));  // only 4 GP counters
  EXPECT_TRUE(regs.exists(msr::kFixedCtr0 + 2));
  EXPECT_TRUE(regs.exists(msr::kPerfGlobalCtrl));
  EXPECT_TRUE(regs.exists(msr::kUncPmc0 + 7));
  EXPECT_FALSE(regs.exists(msr::kAmdPerfCtl0));
}

TEST(Msr, AmdRegistersExist) {
  const MachineSpec spec = presets::amd_istanbul();
  MsrRegisterFile regs(spec);
  EXPECT_TRUE(regs.exists(msr::kAmdPerfCtl0 + 3));
  EXPECT_TRUE(regs.exists(msr::kAmdPerfCtr0 + 3));
  EXPECT_FALSE(regs.exists(msr::kMiscEnable));
  EXPECT_FALSE(regs.exists(msr::kPerfGlobalCtrl));
  EXPECT_FALSE(regs.exists(msr::kUncPmc0));
}

TEST(Msr, Core2HasNoUncoreBlock) {
  MsrRegisterFile regs(presets::core2_quad());
  EXPECT_FALSE(regs.exists(msr::kUncPerfGlobalCtrl));
  EXPECT_FALSE(regs.exists(msr::kUncPmc0));
}

TEST(Msr, UnknownRegisterFaults) {
  MsrRegisterFile regs(presets::core2_quad());
  try {
    regs.read(0, 0xDEAD);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
  EXPECT_THROW(regs.write(0, 0xDEAD, 1), Error);
}

TEST(Msr, InvalidCpuFaults) {
  MsrRegisterFile regs(presets::core2_quad());
  EXPECT_THROW(regs.read(99, msr::kTsc), Error);
  EXPECT_THROW(regs.read(-1, msr::kTsc), Error);
}

TEST(Msr, WriteReadRoundTrip) {
  MsrRegisterFile regs(presets::nehalem_ep());
  regs.write(3, msr::kPmc0, 0x123456789ull);
  EXPECT_EQ(regs.read(3, msr::kPmc0), 0x123456789ull);
  EXPECT_EQ(regs.read(2, msr::kPmc0), 0u);  // per-thread storage
}

TEST(Msr, GlobalStatusIsReadOnly) {
  MsrRegisterFile regs(presets::nehalem_ep());
  try {
    regs.write(0, msr::kPerfGlobalStatus, 1);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPermission);
  }
}

TEST(Msr, MiscEnableReadOnlyBitsPreserved) {
  MsrRegisterFile regs(presets::core2_duo());
  const std::uint64_t before = regs.read(0, msr::kMiscEnable);
  ASSERT_TRUE(util::test_bit(before, msr::kMiscPerfMonAvailable));
  // Attempt to clear the read-only perfmon-available bit: silently kept.
  regs.write(0, msr::kMiscEnable,
             util::assign_bit(before, msr::kMiscPerfMonAvailable, false));
  EXPECT_TRUE(util::test_bit(regs.read(0, msr::kMiscEnable),
                             msr::kMiscPerfMonAvailable));
}

TEST(Msr, MiscEnablePrefetchBitsWritable) {
  MsrRegisterFile regs(presets::core2_duo());
  const std::uint64_t before = regs.read(0, msr::kMiscEnable);
  EXPECT_FALSE(util::test_bit(before, msr::kMiscAdjacentLineDisable));
  regs.write(0, msr::kMiscEnable,
             util::assign_bit(before, msr::kMiscAdjacentLineDisable, true));
  EXPECT_TRUE(util::test_bit(regs.read(0, msr::kMiscEnable),
                             msr::kMiscAdjacentLineDisable));
}

TEST(Msr, MiscEnableResetState) {
  MsrRegisterFile regs(presets::core2_duo());
  const std::uint64_t v = regs.read(0, msr::kMiscEnable);
  EXPECT_TRUE(util::test_bit(v, msr::kMiscFastStrings));
  EXPECT_TRUE(util::test_bit(v, msr::kMiscSpeedStep));
  EXPECT_FALSE(util::test_bit(v, msr::kMiscBtsUnavailable));   // BTS there
  EXPECT_FALSE(util::test_bit(v, msr::kMiscHwPrefetcherDisable));
  EXPECT_TRUE(util::test_bit(v, msr::kMiscIdaDisable));  // no turbo on Core2
}

TEST(Msr, UncoreRegistersAreSocketScoped) {
  const MachineSpec spec = presets::nehalem_ep();
  MsrRegisterFile regs(spec);
  // cpus 0-3 are socket 0, 4-7 socket 1, 8-15 the SMT siblings.
  regs.write(0, msr::kUncPmc0, 777);
  EXPECT_EQ(regs.read(1, msr::kUncPmc0), 777u);   // same socket, other core
  EXPECT_EQ(regs.read(8, msr::kUncPmc0), 777u);   // SMT sibling of cpu 0
  EXPECT_EQ(regs.read(4, msr::kUncPmc0), 0u);     // other socket
  regs.write(5, msr::kUncPmc0, 42);
  EXPECT_EQ(regs.read(4, msr::kUncPmc0), 42u);
  EXPECT_EQ(regs.read(0, msr::kUncPmc0), 777u);
}

TEST(Msr, ResetRestoresPowerOnValues) {
  MsrRegisterFile regs(presets::core2_duo());
  const std::uint64_t misc = regs.read(0, msr::kMiscEnable);
  regs.write(0, msr::kPmc0, 999);
  regs.write(0, msr::kMiscEnable,
             util::assign_bit(misc, msr::kMiscHwPrefetcherDisable, true));
  regs.reset();
  EXPECT_EQ(regs.read(0, msr::kPmc0), 0u);
  EXPECT_EQ(regs.read(0, msr::kMiscEnable), misc);
}

TEST(Msr, PentiumMHasNoFixedOrGlobal) {
  MsrRegisterFile regs(presets::pentium_m());
  EXPECT_FALSE(regs.exists(msr::kFixedCtr0));
  EXPECT_FALSE(regs.exists(msr::kFixedCtrCtrl));
  EXPECT_FALSE(regs.exists(msr::kPerfGlobalCtrl));
  EXPECT_TRUE(regs.exists(msr::kPerfEvtSel0 + 1));
}

}  // namespace
}  // namespace likwid::hwsim
