// Integration tests: the paper's tool compositions and case-study claims,
// executed end-to-end through the full stack (tools -> msr device -> PMU ->
// cache/performance model -> workloads).
#include <gtest/gtest.h>

#include <algorithm>

#include "cli/output.hpp"
#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/stream.hpp"

namespace likwid {
namespace {

// --- Case study 1: pinning and STREAM ------------------------------------

double stream_run(hwsim::SimMachine& machine, std::uint64_t seed, int threads,
                  bool pinned, workloads::OpenMpImpl impl,
                  const workloads::CompilerProfile& cc) {
  ossim::SimKernel kernel(machine, seed);
  const core::NodeTopology topo = core::probe_topology(machine);
  ossim::ThreadRuntime runtime(kernel.scheduler());
  std::unique_ptr<core::PinWrapper> wrapper;
  if (pinned) {
    core::PinConfig cfg;
    cfg.cpu_list = core::scatter_cpu_list(topo, threads);
    cfg.model = impl == workloads::OpenMpImpl::kIntel
                    ? core::ThreadModel::kIntel
                    : core::ThreadModel::kGcc;
    cfg.skip = core::default_skip_mask(cfg.model);
    wrapper = std::make_unique<core::PinWrapper>(runtime, cfg);
  }
  const auto team = workloads::launch_openmp_team(runtime, impl, threads);

  workloads::StreamConfig cfg;
  cfg.array_length = 10'000'000;
  cfg.repetitions = 2;
  cfg.compiler = cc;
  if (!pinned) {
    // First touch happens at the initial placement; the scheduler may then
    // migrate unpinned threads before the measured run.
    std::vector<int> homes;
    for (const int tid : team.worker_tids) {
      homes.push_back(machine.socket_of(runtime.thread(tid).cpu));
    }
    cfg.chunk_home_sockets = homes;
    runtime.migrate_unpinned();
  }
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = runtime.placement(team.worker_tids);
  const double t = run_workload(kernel, triad, p);
  return triad.reported_bandwidth_mbs(t);
}

TEST(CaseStudy1, PinnedBeatsUnpinnedMedianOnWestmere) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  for (const int threads : {2, 6, 12}) {
    std::vector<double> unpinned;
    for (int s = 0; s < 20; ++s) {
      unpinned.push_back(stream_run(machine, 100 + s, threads, false,
                                    workloads::OpenMpImpl::kIntel,
                                    workloads::icc_profile()));
    }
    std::sort(unpinned.begin(), unpinned.end());
    const double median = unpinned[unpinned.size() / 2];
    const double pinned =
        stream_run(machine, 1, threads, true, workloads::OpenMpImpl::kIntel,
                   workloads::icc_profile());
    EXPECT_GE(pinned, median) << threads << " threads";
    // Unpinned runs show real variance (Fig. 4); pinned is deterministic.
    EXPECT_GT(unpinned.back() - unpinned.front(), pinned * 0.05)
        << threads << " threads";
  }
}

TEST(CaseStudy1, PinnedBandwidthIsStableAcrossSeeds) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const double a = stream_run(machine, 1, 6, true,
                              workloads::OpenMpImpl::kIntel,
                              workloads::icc_profile());
  const double b = stream_run(machine, 999, 6, true,
                              workloads::OpenMpImpl::kIntel,
                              workloads::icc_profile());
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(CaseStudy1, PinnedSaturatesBothSockets) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const double bw12 = stream_run(machine, 1, 12, true,
                                 workloads::OpenMpImpl::kIntel,
                                 workloads::icc_profile());
  const double bw24 = stream_run(machine, 1, 24, true,
                                 workloads::OpenMpImpl::kIntel,
                                 workloads::icc_profile());
  // Fig. 5: flat at the node's saturated bandwidth; SMT adds nothing.
  EXPECT_NEAR(bw12, 42000, 1000);
  EXPECT_NEAR(bw24, bw12, bw12 * 0.03);
}

TEST(CaseStudy1, GccLowerPeakThanIcc) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const double icc = stream_run(machine, 1, 12, true,
                                workloads::OpenMpImpl::kIntel,
                                workloads::icc_profile());
  const double gcc = stream_run(machine, 1, 12, true,
                                workloads::OpenMpImpl::kGcc,
                                workloads::gcc_profile());
  // Figs. 5 vs 8: gcc peaks well below icc.
  EXPECT_LT(gcc, icc * 0.9);
  EXPECT_GT(gcc, icc * 0.6);
}

TEST(CaseStudy1, IstanbulPinnedStable) {
  hwsim::SimMachine machine(hwsim::presets::amd_istanbul());
  std::vector<double> unpinned;
  for (int s = 0; s < 15; ++s) {
    unpinned.push_back(stream_run(machine, 300 + s, 6, false,
                                  workloads::OpenMpImpl::kIntel,
                                  workloads::icc_profile()));
  }
  std::sort(unpinned.begin(), unpinned.end());
  const double pinned = stream_run(machine, 1, 6, true,
                                   workloads::OpenMpImpl::kIntel,
                                   workloads::icc_profile());
  // Fig. 10: pinning yields good stable results.
  EXPECT_GE(pinned, unpinned[unpinned.size() / 2]);
  EXPECT_GT(pinned, 15000);
}

// --- Case studies 2+3: the temporally blocked stencil ---------------------

struct JacobiMeasurement {
  double mlups = 0;
  double l3_lines_in = 0;
  double l3_lines_out = 0;
};

JacobiMeasurement measure_jacobi(workloads::JacobiVariant variant,
                                 const std::vector<int>& cpus) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  core::PerfCtr ctr(kernel, cpus);
  ctr.add_custom("UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1");
  workloads::JacobiConfig cfg;
  cfg.n = 96;
  cfg.sweeps = 4;
  cfg.variant = variant;
  workloads::JacobiStencil jacobi(cfg);
  workloads::Placement p;
  p.cpus = cpus;
  for (const int c : cpus) kernel.scheduler().add_busy(c, 1);
  ctr.start();
  const double t = run_workload(kernel, jacobi, p);
  ctr.stop();
  JacobiMeasurement m;
  m.mlups = jacobi.mlups(t);
  for (const int lock : ctr.socket_lock_cpus()) {
    m.l3_lines_in += ctr.extrapolated_count(0, lock, "UNC_L3_LINES_IN_ANY");
    m.l3_lines_out += ctr.extrapolated_count(0, lock, "UNC_L3_LINES_OUT_ANY");
  }
  return m;
}

TEST(CaseStudy3, TableIIShape) {
  const std::vector<int> socket0 = {0, 1, 2, 3};
  const auto threaded = measure_jacobi(workloads::JacobiVariant::kThreaded,
                                       socket0);
  const auto nt = measure_jacobi(workloads::JacobiVariant::kThreadedNT,
                                 socket0);
  const auto blocked = measure_jacobi(workloads::JacobiVariant::kWavefront,
                                      socket0);

  // Uncore counters measured through the tool: lines in ~ lines out for
  // the streaming variants (paper Table II).
  EXPECT_NEAR(threaded.l3_lines_out / threaded.l3_lines_in, 1.0, 0.25);

  // NT stores cut L3 line traffic vs. threaded (paper: 5.91e8 -> 3.44e8).
  const double nt_cut = nt.l3_lines_in / threaded.l3_lines_in;
  EXPECT_GT(nt_cut, 0.4);
  EXPECT_LT(nt_cut, 0.75);

  // Blocking cuts it several-fold (paper: 5.91e8 -> 1.30e8 = 4.5x).
  const double block_cut = threaded.l3_lines_in / blocked.l3_lines_in;
  EXPECT_GT(block_cut, 2.5);

  // MLUPS ordering: threaded < NT < blocked (paper: 784 / 1032 / 1331).
  EXPECT_LT(threaded.mlups, nt.mlups);
  EXPECT_LT(nt.mlups, blocked.mlups);
  // And the blocked speedup is modest, not proportional to the 4.5x
  // traffic cut (the paper's central observation).
  EXPECT_LT(blocked.mlups / threaded.mlups, 2.5);
  EXPECT_GT(blocked.mlups / threaded.mlups, 1.2);
}

TEST(CaseStudy2, WrongPinningReversesTheOptimization) {
  const auto good = measure_jacobi(workloads::JacobiVariant::kWavefront,
                                   {0, 1, 2, 3});
  const auto wrong = measure_jacobi(workloads::JacobiVariant::kWavefront,
                                    {0, 1, 4, 5});
  const auto baseline = measure_jacobi(workloads::JacobiVariant::kThreadedNT,
                                       {0, 1, 2, 3});
  // Fig. 11: wrong pinning costs about a factor of two...
  EXPECT_LT(wrong.mlups, good.mlups * 0.65);
  // ... and is even lower than the threaded NT baseline.
  EXPECT_LT(wrong.mlups, baseline.mlups);
}

// --- tool composition: likwid-perfctr + likwid-pin ------------------------

TEST(ToolComposition, PerfctrWrappingPinnedRun) {
  // The paper's combined invocation:
  //   likwid-perfCtr -c 1 -g ... likwid-pin -c 1 ./a.out
  hwsim::SimMachine machine(hwsim::presets::core2_quad());
  ossim::SimKernel kernel(machine);
  core::PerfCtr ctr(kernel, {1});
  ctr.add_custom(
      "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,"
      "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1");

  ossim::ThreadRuntime runtime(kernel.scheduler());
  core::PinConfig pin;
  pin.cpu_list = {1};
  core::PinWrapper wrapper(runtime, pin);
  const auto team = workloads::launch_openmp_team(
      runtime, workloads::OpenMpImpl::kGcc, 1);

  ctr.start();
  workloads::StreamConfig cfg;
  cfg.array_length = 500'000;
  cfg.repetitions = 1;
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = runtime.placement(team.worker_tids);
  run_workload(kernel, triad, p);
  ctr.stop();

  ASSERT_EQ(p.cpus, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(ctr.extrapolated_count(
                       0, 1, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"),
                   500'000);
  EXPECT_DOUBLE_EQ(ctr.extrapolated_count(
                       0, 1, "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE"),
                   0);
}

TEST(ToolComposition, MonitoringModeSeesForeignWork) {
  // likwid-perfctr -c 0-7 -g MEM sleep 1: core-based counting makes the
  // monitor see work it did not start.
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  core::PerfCtr ctr(kernel, {0, 1, 2, 3, 4, 5, 6, 7});
  ctr.add_group("MEM");
  ctr.start();
  workloads::JacobiConfig cfg;
  cfg.n = 64;
  cfg.sweeps = 4;
  workloads::JacobiStencil jacobi(cfg);
  workloads::Placement p;
  p.cpus = {0, 1, 2, 3};
  run_workload(kernel, jacobi, p);
  kernel.advance_time(1.0);  // the monitor's own "sleep 1"
  ctr.stop();
  EXPECT_GT(ctr.extrapolated_count(0, 0, "UNC_QMC_NORMAL_READS_ANY"), 0);
  EXPECT_EQ(ctr.extrapolated_count(0, 4, "UNC_QMC_NORMAL_READS_ANY"), 0);
}

// --- output rendering -------------------------------------------------------

TEST(Output, TopologyReportContainsPaperSections) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const core::NodeTopology topo = core::probe_topology(machine);
  const std::string report = cli::render_topology_report(topo, true);
  EXPECT_NE(report.find("CPU name:\tIntel Westmere EP processor"),
            std::string::npos);
  EXPECT_NE(report.find("CPU clock:\t2.93 GHz"), std::string::npos);
  EXPECT_NE(report.find("Hardware Thread Topology"), std::string::npos);
  EXPECT_NE(report.find("Sockets:\t\t2"), std::string::npos);
  EXPECT_NE(report.find("Socket 0: ( 0 12 1 13 2 14 3 15 4 16 5 17 )"),
            std::string::npos);
  EXPECT_NE(report.find("Cache Topology"), std::string::npos);
  EXPECT_NE(report.find("Size:\t12 MB"), std::string::npos);
  EXPECT_NE(report.find("Non Inclusive cache"), std::string::npos);
  EXPECT_NE(report.find("Shared among 12 threads"), std::string::npos);
  EXPECT_NE(report.find("( 0 12 )"), std::string::npos);
}

TEST(Output, AsciiArtShowsCoresAndCaches) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const core::NodeTopology topo = core::probe_topology(machine);
  const std::string art = cli::render_topology_ascii(topo);
  EXPECT_NE(art.find("0 12"), std::string::npos);
  EXPECT_NE(art.find("32 kB"), std::string::npos);
  EXPECT_NE(art.find("256 kB"), std::string::npos);
  EXPECT_NE(art.find("12 MB"), std::string::npos);
  // Two socket boxes.
  EXPECT_NE(art.find("6 18"), std::string::npos);
}

TEST(Output, MeasurementTablesRenderEventAndMetricBlocks) {
  hwsim::SimMachine machine(hwsim::presets::core2_quad());
  ossim::SimKernel kernel(machine);
  core::PerfCtr ctr(kernel, {0, 1});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  workloads::StreamConfig cfg;
  cfg.array_length = 100'000;
  cfg.repetitions = 1;
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = {0, 1};
  run_workload(kernel, triad, p);
  ctr.stop();
  const std::string out = cli::render_measurement(ctr, 0);
  EXPECT_NE(out.find("Measuring group FLOPS_DP"), std::string::npos);
  EXPECT_NE(out.find("| Event"), std::string::npos);
  EXPECT_NE(out.find("| core 0"), std::string::npos);
  EXPECT_NE(out.find("| core 1"), std::string::npos);
  EXPECT_NE(out.find("INSTR_RETIRED_ANY"), std::string::npos);
  EXPECT_NE(out.find("| Metric"), std::string::npos);
  EXPECT_NE(out.find("DP MFlops/s"), std::string::npos);
}

}  // namespace
}  // namespace likwid
