// Tests for the machine presets and spec validation.
#include <gtest/gtest.h>

#include "hwsim/machine.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"

namespace likwid::hwsim {
namespace {

class PresetTest : public ::testing::TestWithParam<presets::NamedPreset> {};

TEST_P(PresetTest, SpecValidates) {
  const MachineSpec spec = GetParam().factory();
  EXPECT_NO_THROW(spec.validate());
}

TEST_P(PresetTest, MachineConstructs) {
  SimMachine machine(GetParam().factory());
  EXPECT_EQ(machine.num_threads(), machine.spec().num_hw_threads());
  EXPECT_NO_THROW(machine.arch());
}

TEST_P(PresetTest, ArchClassificationConsistent) {
  const MachineSpec spec = GetParam().factory();
  const Arch arch = classify_arch(spec.vendor, spec.family, spec.model);
  // Event table exists and is non-empty for every supported arch.
  EXPECT_FALSE(event_table(arch).empty());
}

TEST_P(PresetTest, SocketAndSiblingQueries) {
  SimMachine machine(GetParam().factory());
  const auto& spec = machine.spec();
  for (int s = 0; s < spec.sockets; ++s) {
    const auto cpus = machine.cpus_of_socket(s);
    EXPECT_EQ(static_cast<int>(cpus.size()),
              spec.cores_per_socket * spec.threads_per_core);
  }
  const auto sibs = machine.core_siblings(0);
  EXPECT_EQ(static_cast<int>(sibs.size()), spec.threads_per_core);
  EXPECT_EQ(sibs.front(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetTest, ::testing::ValuesIn(presets::all_presets()),
    [](const ::testing::TestParamInfo<presets::NamedPreset>& info) {
      std::string name = info.param.key;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Presets, LookupByKey) {
  EXPECT_EQ(presets::preset_by_key("westmere-ep").name,
            "Intel Westmere EP processor");
  try {
    presets::preset_by_key("pentium-4");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
    // The error lists valid keys to help the user.
    EXPECT_NE(std::string(e.what()).find("westmere-ep"), std::string::npos);
  }
}

TEST(Presets, PaperMachinesHaveExpectedShapes) {
  const MachineSpec wsm = presets::westmere_ep();
  EXPECT_EQ(wsm.sockets, 2);
  EXPECT_EQ(wsm.cores_per_socket, 6);
  EXPECT_EQ(wsm.threads_per_core, 2);
  EXPECT_EQ(wsm.core_apic_ids, (std::vector<int>{0, 1, 2, 8, 9, 10}));
  EXPECT_DOUBLE_EQ(wsm.clock_ghz, 2.93);
  EXPECT_EQ(wsm.data_cache(3).size_bytes, 12ull * 1024 * 1024);

  const MachineSpec nhm = presets::nehalem_ep();
  EXPECT_EQ(nhm.sockets, 2);
  EXPECT_EQ(nhm.cores_per_socket, 4);
  EXPECT_DOUBLE_EQ(nhm.clock_ghz, 2.66);
  EXPECT_EQ(nhm.pmu.num_uncore_counters, 8);

  const MachineSpec c2 = presets::core2_quad();
  EXPECT_EQ(c2.pmu.num_gp_counters, 2);
  EXPECT_EQ(c2.pmu.gp_counter_bits, 40);
  EXPECT_EQ(c2.last_level_cache(), 2);

  const MachineSpec ist = presets::amd_istanbul();
  EXPECT_EQ(ist.cores_per_socket, 6);
  EXPECT_EQ(ist.threads_per_core, 1);
  EXPECT_EQ(ist.data_cache(3).associativity, 48u);
}

TEST(Presets, SupportListVariantsHaveExpectedShapes) {
  // "Pentium M (Banias, Dothan)": Dothan doubles Banias' L2 to 2 MB and
  // keeps leaf-2-only cache discovery.
  const MachineSpec dothan = presets::pentium_m_dothan();
  EXPECT_EQ(dothan.model, 0x0Du);
  EXPECT_EQ(dothan.cache_method, CacheMethod::kIntelLeaf2);
  EXPECT_EQ(dothan.data_cache(2).size_bytes, 2ull * 1024 * 1024);
  EXPECT_EQ(classify_arch(dothan.vendor, dothan.family, dothan.model),
            Arch::kPentiumM);

  // "Core 2 (all variants)": Penryn duo shares one 6 MB 24-way L2.
  const MachineSpec penryn = presets::core2_penryn();
  EXPECT_EQ(penryn.cores_per_socket, 2);
  EXPECT_EQ(penryn.data_cache(2).size_bytes, 6ull * 1024 * 1024);
  EXPECT_EQ(penryn.data_cache(2).shared_by_threads, 2u);
  EXPECT_EQ(classify_arch(penryn.vendor, penryn.family, penryn.model),
            Arch::kCore2);

  // "Nehalem (all variants, including uncore)": Bloomfield is one socket
  // but keeps the full uncore PMU.
  const MachineSpec bloom = presets::nehalem_bloomfield();
  EXPECT_EQ(bloom.sockets, 1);
  EXPECT_EQ(bloom.pmu.num_uncore_counters, 8);
  EXPECT_EQ(bloom.numa_domains(), 1);
  EXPECT_EQ(classify_arch(bloom.vendor, bloom.family, bloom.model),
            Arch::kNehalem);

  // Atom 330: two cores, L2 private per core (shared by SMT pair only).
  const MachineSpec a330 = presets::atom_330();
  EXPECT_EQ(a330.cores_per_socket, 2);
  EXPECT_EQ(a330.num_hw_threads(), 4);
  EXPECT_EQ(a330.data_cache(2).shared_by_threads, 2u);

  // "K10 (Barcelona, Shanghai, Istanbul)": Barcelona's first-gen 2 MB L3.
  const MachineSpec barc = presets::amd_barcelona();
  EXPECT_EQ(barc.cores_per_socket, 4);
  EXPECT_EQ(barc.data_cache(3).size_bytes, 2ull * 1024 * 1024);
  EXPECT_EQ(classify_arch(barc.vendor, barc.family, barc.model), Arch::kK10);

  // "K8 (all variants)": single-core Opteron, one core per NUMA domain.
  const MachineSpec k8sc = presets::amd_k8_single_core();
  EXPECT_EQ(k8sc.sockets, 2);
  EXPECT_EQ(k8sc.cores_per_socket, 1);
  EXPECT_FALSE(k8sc.has_data_cache(3));
  EXPECT_EQ(classify_arch(k8sc.vendor, k8sc.family, k8sc.model), Arch::kK8);
}

TEST(SpecValidation, RejectsBrokenSpecs) {
  MachineSpec spec = presets::core2_quad();
  spec.core_apic_ids = {0, 1};  // wrong arity
  EXPECT_THROW(spec.validate(), Error);

  spec = presets::core2_quad();
  spec.caches[0].line_size = 48;  // not a power of two
  EXPECT_THROW(spec.validate(), Error);

  spec = presets::core2_quad();
  spec.memory.thread_bandwidth_gbs = spec.memory.socket_bandwidth_gbs * 2;
  EXPECT_THROW(spec.validate(), Error);

  spec = presets::core2_quad();
  spec.caches.clear();
  EXPECT_THROW(spec.validate(), Error);

  spec = presets::core2_quad();
  spec.caches[0].shared_by_threads = 3;  // does not divide 4
  EXPECT_THROW(spec.validate(), Error);
}

TEST(SpecValidation, LastLevelAndDataCacheQueries) {
  const MachineSpec nhm = presets::nehalem_ep();
  EXPECT_EQ(nhm.last_level_cache(), 3);
  EXPECT_TRUE(nhm.has_data_cache(2));
  EXPECT_THROW(presets::core2_quad().data_cache(3), Error);
}

TEST(ArchClassify, UnknownPartsRejected) {
  try {
    classify_arch(Vendor::kIntel, 6, 0x99);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
  }
  EXPECT_THROW(classify_arch(Vendor::kAmd, 0x15, 0x1), Error);
}

TEST(ArchClassify, PaperSupportList) {
  // The architectures named in the paper's support list all classify.
  EXPECT_EQ(classify_arch(Vendor::kIntel, 6, 0x09), Arch::kPentiumM);
  EXPECT_EQ(classify_arch(Vendor::kIntel, 6, 0x1C), Arch::kAtom);
  EXPECT_EQ(classify_arch(Vendor::kIntel, 6, 0x0F), Arch::kCore2);
  EXPECT_EQ(classify_arch(Vendor::kIntel, 6, 0x17), Arch::kCore2);
  EXPECT_EQ(classify_arch(Vendor::kIntel, 6, 0x1A), Arch::kNehalem);
  EXPECT_EQ(classify_arch(Vendor::kIntel, 6, 0x2C), Arch::kWestmere);
  EXPECT_EQ(classify_arch(Vendor::kAmd, 0x0F, 0x21), Arch::kK8);
  EXPECT_EQ(classify_arch(Vendor::kAmd, 0x10, 0x08), Arch::kK10);
}

TEST(EventTables, EncodingsUniquePerArchAndClass) {
  for (const auto& preset : presets::all_presets()) {
    const MachineSpec spec = preset.factory();
    const Arch arch = classify_arch(spec.vendor, spec.family, spec.model);
    const auto& table = event_table(arch);
    for (std::size_t i = 0; i < table.size(); ++i) {
      for (std::size_t j = i + 1; j < table.size(); ++j) {
        EXPECT_FALSE(table[i].name == table[j].name)
            << "duplicate event name " << table[i].name;
        if (table[i].klass == table[j].klass &&
            table[i].klass != CounterClass::kFixed) {
          EXPECT_FALSE(table[i].event_code == table[j].event_code &&
                       table[i].umask == table[j].umask)
              << "ambiguous encoding for " << table[i].name << " vs "
              << table[j].name;
        }
      }
    }
  }
}

TEST(EventTables, FindAndDecodeAgree) {
  const auto* enc = find_event(Arch::kCore2,
                               "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE");
  ASSERT_NE(enc, nullptr);
  EXPECT_EQ(enc->event_code, 0xCA);
  EXPECT_EQ(enc->umask, 0x04);
  const auto* back =
      decode_event(Arch::kCore2, 0xCA, 0x04, CounterClass::kCore);
  EXPECT_EQ(back, enc);
  EXPECT_EQ(find_event(Arch::kCore2, "NO_SUCH_EVENT"), nullptr);
}

}  // namespace
}  // namespace likwid::hwsim
