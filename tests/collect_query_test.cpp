// Tests for the collector query surface (collect/query.hpp) over a small
// loopback fleet: the bit-equality contract between collector-side
// rollups and an in-process WindowFolder fold of the same stream, top-k
// ordering, fleet_stats against compute_stats, and the node_status loss
// table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "collect/loopback.hpp"
#include "core/name_table.hpp"

namespace likwid::collect {
namespace {

LoopbackConfig small_fleet_config() {
  LoopbackConfig cfg;
  cfg.fleet.num_nodes = 8;
  cfg.fleet.seed = 7;
  cfg.fleet.schemas = {make_sim_schema("QUERY_MEM", 2),
                       make_sim_schema("QUERY_FLOPS", 1)};
  cfg.steps = 40;
  cfg.batch_samples = 8;
  cfg.producer_threads = 2;
  cfg.service.ingest_threads = 2;
  cfg.service.ring_capacity = 64;
  cfg.service.publish_deadline_seconds = 5.0;  // no drops wanted here
  cfg.service.store.chunk_points = 16;
  cfg.service.store.raw_chunks_per_series = 64;  // raw tier holds everything
  return cfg;
}

/// One completed loopback run shared by every test in this file (the run
/// is deterministic, so sharing it only saves wall clock).
const LoopbackCollector& fleet() {
  static LoopbackCollector* collector = [] {
    auto* c = new LoopbackCollector(small_fleet_config());
    c->run();
    return c;
  }();
  return *collector;
}

void expect_bits(double got, double want, const char* what) {
  std::uint64_t a = 0, b = 0;
  std::memcpy(&a, &got, sizeof(a));
  std::memcpy(&b, &want, sizeof(b));
  EXPECT_EQ(a, b) << what;
}

TEST(Query, EveryNodeIsLosslessUnderGenerousDeadline) {
  const LoopbackCollector& c = fleet();
  EXPECT_EQ(c.producer().batches_dropped, 0u);
  EXPECT_EQ(c.service().decode_stats().decode_errors(), 0u);
  for (std::uint64_t node = 0; node < 8; ++node) {
    EXPECT_TRUE(c.node_lossless(node)) << node;
  }
}

TEST(Query, RawSamplesMatchReplayBitForBit) {
  const LoopbackCollector& c = fleet();
  const QueryEngine query = c.query();
  for (std::uint64_t node = 0; node < 8; ++node) {
    const auto got = query.raw_samples(node);
    const auto want = c.replay(node);
    ASSERT_EQ(got.size(), want.size()) << node;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].sequence, want[i].sequence);
      EXPECT_EQ(got[i].t_start, want[i].t_start);
      EXPECT_EQ(got[i].schema->group_id, want[i].schema->group_id);
      ASSERT_EQ(got[i].values.size(), want[i].values.size());
      for (std::size_t m = 0; m < want[i].values.size(); ++m) {
        expect_bits(got[i].values[m], want[i].values[m], "value");
      }
    }
  }
}

TEST(Query, RollupIsBitEqualToInProcessWindowFolder) {
  // The acceptance contract: query results over healthy nodes must be
  // bit-equal to what the in-process aggregation path produces from the
  // same samples.
  const LoopbackCollector& c = fleet();
  const int window_samples = 5;
  const QueryEngine query = c.query(window_samples);
  for (std::uint64_t node = 0; node < 8; ++node) {
    ASSERT_TRUE(c.node_lossless(node)) << node;
    const auto got = query.rollup(node);

    monitor::WindowFolder folder(static_cast<int>(node), window_samples);
    for (const monitor::Sample& s : c.replay(node)) folder.add(s);
    folder.finish();
    const auto want = folder.take_points();

    ASSERT_EQ(got.size(), want.size()) << node;
    ASSERT_FALSE(want.empty());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].machine_id, want[i].machine_id);
      EXPECT_EQ(got[i].window, want[i].window);
      EXPECT_EQ(got[i].group_id, want[i].group_id);
      EXPECT_EQ(got[i].metric_id, want[i].metric_id);
      expect_bits(got[i].t_start, want[i].t_start, "t_start");
      expect_bits(got[i].t_end, want[i].t_end, "t_end");
      expect_bits(got[i].stats.min, want[i].stats.min, "min");
      expect_bits(got[i].stats.avg, want[i].stats.avg, "avg");
      expect_bits(got[i].stats.max, want[i].stats.max, "max");
      expect_bits(got[i].stats.p95, want[i].stats.p95, "p95");
      EXPECT_EQ(got[i].stats.count, want[i].stats.count);
    }
  }
}

TEST(Query, FleetStatsMatchComputeStatsPerNode) {
  const LoopbackCollector& c = fleet();
  const QueryEngine query = c.query();
  const api::ResultTable table = query.fleet_stats("QUERY_MEM", "SIM_QUERY_MEM_M0");
  EXPECT_EQ(table.group, "QUERY_MEM");
  ASSERT_EQ(table.cpus.size(), 8u);  // node ids ride the cpu-column slot
  ASSERT_EQ(table.metrics.size(), 4u);
  EXPECT_EQ(table.metrics[0].name, "SIM_QUERY_MEM_M0 min");
  EXPECT_EQ(table.metrics[1].name, "SIM_QUERY_MEM_M0 avg");
  EXPECT_EQ(table.metrics[2].name, "SIM_QUERY_MEM_M0 max");
  EXPECT_EQ(table.metrics[3].name, "SIM_QUERY_MEM_M0 p95");

  const core::NameId metric_id = core::intern_name("SIM_QUERY_MEM_M0");
  for (std::size_t col = 0; col < table.cpus.size(); ++col) {
    const auto node = static_cast<std::uint64_t>(table.cpus[col]);
    std::vector<double> values;
    for (const monitor::Sample& s : c.replay(node)) {
      for (std::size_t m = 0; m < s.schema->metric_ids.size(); ++m) {
        if (s.schema->metric_ids[m] == metric_id) values.push_back(s.values[m]);
      }
    }
    ASSERT_FALSE(values.empty());
    const monitor::WindowStats want = monitor::compute_stats(values);
    expect_bits(table.metrics[0].values[col], want.min, "min");
    expect_bits(table.metrics[1].values[col], want.avg, "avg");
    expect_bits(table.metrics[2].values[col], want.max, "max");
    expect_bits(table.metrics[3].values[col], want.p95, "p95");
  }
}

TEST(Query, TopKOrdersNodesByMeanDescending) {
  const LoopbackCollector& c = fleet();
  const QueryEngine query = c.query();
  const api::ResultTable top = query.top_k("QUERY_MEM", "SIM_QUERY_MEM_M0", 3);
  ASSERT_EQ(top.cpus.size(), 3u);
  ASSERT_EQ(top.metrics.size(), 1u);
  const auto& means = top.metrics[0].values;
  ASSERT_EQ(means.size(), 3u);
  EXPECT_GE(means[0], means[1]);
  EXPECT_GE(means[1], means[2]);

  // The winner really is the fleet-wide argmax of the replayed means.
  const core::NameId metric_id = core::intern_name("SIM_QUERY_MEM_M0");
  double best_mean = 0;
  std::uint64_t best_node = 0;
  for (std::uint64_t node = 0; node < 8; ++node) {
    double sum = 0;
    std::size_t n = 0;
    for (const monitor::Sample& s : c.replay(node)) {
      for (std::size_t m = 0; m < s.schema->metric_ids.size(); ++m) {
        if (s.schema->metric_ids[m] == metric_id) {
          sum += s.values[m];
          ++n;
        }
      }
    }
    const double mean = sum / static_cast<double>(n);
    if (node == 0 || mean > best_mean) {
      best_mean = mean;
      best_node = node;
    }
  }
  EXPECT_EQ(static_cast<std::uint64_t>(top.cpus[0]), best_node);
  EXPECT_DOUBLE_EQ(means[0], best_mean);
}

TEST(Query, TopKClampsToFleetSize) {
  const QueryEngine query = fleet().query();
  const api::ResultTable top =
      query.top_k("QUERY_MEM", "SIM_QUERY_MEM_M0", 100);
  EXPECT_EQ(top.cpus.size(), 8u);
}

TEST(Query, UnknownMetricYieldsEmptyTables) {
  const QueryEngine query = fleet().query();
  EXPECT_TRUE(query.top_k("QUERY_MEM", "NO_SUCH_METRIC", 3).cpus.empty());
  EXPECT_TRUE(query.fleet_stats("QUERY_MEM", "NO_SUCH_METRIC").cpus.empty());
}

TEST(Query, NodeStatusAccountsEveryNode) {
  const LoopbackCollector& c = fleet();
  const api::ResultTable status = c.query().node_status();
  EXPECT_EQ(status.group, "COLLECT_NODES");
  ASSERT_EQ(status.cpus.size(), 8u);
  auto row = [&](const std::string& name) -> const api::ResultTable::Values* {
    for (const auto& metric : status.metrics) {
      if (metric.name == name) return &metric.values;
    }
    return nullptr;
  };
  const auto* dropped = row("frames dropped");
  const auto* errors = row("decode errors");
  const auto* ingested = row("samples ingested");
  ASSERT_NE(dropped, nullptr);
  ASSERT_NE(errors, nullptr);
  ASSERT_NE(ingested, nullptr);
  for (std::size_t col = 0; col < status.cpus.size(); ++col) {
    EXPECT_EQ((*dropped)[col], 0.0) << col;
    EXPECT_EQ((*errors)[col], 0.0) << col;
    EXPECT_EQ((*ingested)[col], 40.0) << col;  // steps per node
  }
}

}  // namespace
}  // namespace likwid::collect
