// Concurrency stress tests for the fleet pipeline and the per-handle C
// API — the `concurrency`-labelled suite the TSan CI job runs (see
// CMakeLists.txt). Three surfaces:
//   1. The threaded Agent: the work-stealing task scheduler with sharded
//      window folds must produce exactly the serial rollups, at every
//      worker count, including under rotation, non-divisible shard sizes
//      and forced task stealing (docs/monitor.md states the invariant).
//   2. The C API: independent handles driven from parallel threads
//      (init/measure/read/finalize in each), plus a thread hammering
//      invalid handles, must neither race nor cross-talk.
//   3. The api::Session concurrent-use tripwire and the SpscRing under a
//      fleet-sized produce/drain load.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/likwid.h"
#include "api/session.hpp"
#include "monitor/agent.hpp"
#include "monitor/scheduler.hpp"
#include "util/status.hpp"

namespace likwid {
namespace {

monitor::AgentConfig fleet_config(int machines, int threads) {
  monitor::AgentConfig cfg;
  cfg.num_machines = machines;
  cfg.duration_seconds = 3.0;
  cfg.monitor.interval_seconds = 0.1;  // 30 samples per machine
  cfg.monitor.groups = {"MEM", "FLOPS_DP"};
  cfg.monitor.window_samples = 4;
  cfg.monitor.ring_capacity = 64;  // >= samples: retention sees everything
  cfg.fleet.num_threads = threads;
  cfg.fleet.batch_samples = 5;  // several slices (and re-queues) per task
  return cfg;
}

void expect_same_rollups(const std::vector<monitor::SeriesPoint>& serial,
                         const std::vector<monitor::SeriesPoint>& threaded) {
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const monitor::SeriesPoint& a = serial[i];
    const monitor::SeriesPoint& b = threaded[i];
    EXPECT_EQ(a.machine_id, b.machine_id) << i;
    EXPECT_EQ(a.window, b.window) << i;
    EXPECT_EQ(a.group_id, b.group_id) << i;
    EXPECT_EQ(a.metric_id, b.metric_id) << i;
    // The fold order per machine is identical, so the doubles must be
    // bit-equal, not just close.
    EXPECT_EQ(a.t_start, b.t_start) << i;
    EXPECT_EQ(a.t_end, b.t_end) << i;
    EXPECT_EQ(a.stats.count, b.stats.count) << i;
    EXPECT_EQ(a.stats.min, b.stats.min) << i;
    EXPECT_EQ(a.stats.avg, b.stats.avg) << i;
    EXPECT_EQ(a.stats.max, b.stats.max) << i;
    EXPECT_EQ(a.stats.p95, b.stats.p95) << i;
  }
}

// The scheduler's core promise: every worker count must fold exactly the
// serial rollups. 7 machines over 4 workers also exercises a
// non-divisible initial shard split; batch 5 over 30 steps leaves a short
// final slice per task.
TEST(FleetStress, ThreadedRollupsMatchSerialAtEveryWorkerCount) {
  monitor::Agent serial(fleet_config(7, 1));
  serial.run();
  ASSERT_FALSE(serial.threaded());
  const std::vector<monitor::SeriesPoint> expected = serial.rollups();
  ASSERT_FALSE(expected.empty());

  for (const int workers : {2, 4, 8}) {
    monitor::Agent threaded(fleet_config(7, workers));
    threaded.run();
    ASSERT_TRUE(threaded.threaded()) << workers;
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_rollups(expected, threaded.rollups());
    // The scheduler has no loss path outside quarantine, and this run is
    // fault-free: zero losses is WHY the rollups above match serial
    // exactly. Steal accounting must be internally consistent however the
    // race distributed the tasks.
    const monitor::FleetTransportStats& t = threaded.transport();
    EXPECT_EQ(t.batches_lost, 0u);
    EXPECT_EQ(t.lost_quarantined, 0u);
    EXPECT_EQ(t.steals_per_machine.size(), 7u);
    std::uint64_t per_machine_total = 0;
    for (const std::uint64_t s : t.steals_per_machine) {
      per_machine_total += s;
    }
    EXPECT_EQ(per_machine_total, t.steals);
    // A pinned batch runs exactly ceil(30 / 5) = 6 slices per task, no
    // matter which workers executed them.
    EXPECT_EQ(t.slices_folded, 7u * 6u);
    EXPECT_EQ(t.batch_steps, 5u);
    EXPECT_FALSE(t.batch_autotuned);
  }
}

// Odd pinned slice lengths (1, 3, 7 against 30 samples — short final
// slices at two of them) at every worker count: slice boundaries never
// align with the window length, and the fold must not care.
TEST(FleetStress, OddBatchSizesFoldEquallyWithZeroLosses) {
  monitor::Agent serial(fleet_config(5, 1));
  serial.run();
  const std::vector<monitor::SeriesPoint> expected = serial.rollups();
  ASSERT_FALSE(expected.empty());
  EXPECT_TRUE(serial.transport().steals_per_machine.empty());

  for (const std::size_t batch : {1u, 3u, 7u}) {
    for (const int workers : {2, 4}) {
      monitor::AgentConfig cfg = fleet_config(5, workers);
      cfg.fleet.batch_samples = batch;
      monitor::Agent threaded(cfg);
      threaded.run();
      SCOPED_TRACE("batch=" + std::to_string(batch) +
                   " workers=" + std::to_string(workers));
      expect_same_rollups(expected, threaded.rollups());
      const monitor::FleetTransportStats& t = threaded.transport();
      EXPECT_EQ(t.batches_lost, 0u);
      // ceil(30 / batch) slices per task, all folded.
      EXPECT_EQ(t.slices_folded, 5u * ((30u + batch - 1) / batch));
    }
  }
}

// Stealing determinism, the invariant that makes work stealing safe to
// ship: rollups stay bit-equal to serial even when tasks DO migrate.
// A skewed per-node device latency (node i sleeps 1 + 0.5 * i times the
// base per step) makes the initial contiguous shards wildly unbalanced,
// and 9 nodes over 8 workers leaves idle workers from the start — every
// worker count here MUST observe steals, and the autotuner (batch 0)
// picks the slice lengths. Exclusive task ownership keeps each node's
// sample stream and fold order untouched by any of it.
TEST(FleetStress, ForcedStealsKeepRollupsBitEqualToSerial) {
  const auto skewed_config = [](int threads) {
    monitor::AgentConfig cfg = fleet_config(9, threads);
    cfg.fleet.batch_samples = 0;  // autotune
    cfg.monitor.device_latency_us = 300;
    cfg.monitor.device_latency_skew = 0.5;
    return cfg;
  };
  monitor::Agent serial(skewed_config(1));
  serial.run();
  const std::vector<monitor::SeriesPoint> expected = serial.rollups();
  ASSERT_FALSE(expected.empty());

  for (const int workers : {2, 4, 8}) {
    monitor::Agent threaded(skewed_config(workers));
    threaded.run();
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_rollups(expected, threaded.rollups());
    const monitor::FleetTransportStats& t = threaded.transport();
    EXPECT_GT(t.steals, 0u) << "skewed shards must force task migration";
    EXPECT_EQ(t.batches_lost, 0u);
    EXPECT_TRUE(t.batch_autotuned);
    EXPECT_GE(t.batch_steps, 1u);
    EXPECT_LE(t.batch_steps, monitor::BatchAutotuner::kMaxSlice);
  }
}

TEST(FleetStress, ProgressCallbackReportsMonotonicFoldCounts) {
  monitor::AgentConfig cfg = fleet_config(4, 2);
  monitor::Agent agent(cfg);
  std::atomic<std::uint64_t> last_samples{0};
  std::atomic<int> calls{0};
  // Interval ~0 so every aggregation pass reports.
  agent.set_progress(
      [&](const monitor::FleetProgress& p) {
        EXPECT_GE(p.samples_folded, last_samples.load());
        last_samples.store(p.samples_folded);
        calls.fetch_add(1);
      },
      1e-9);
  agent.run();
  EXPECT_GT(calls.load(), 0);
  EXPECT_LE(last_samples.load(), 4u * 30u);
}

// Two independent C-API sessions measuring concurrently — the scenario
// the per-handle locks exist for. Each thread runs full lifecycles and
// checks its own metric reads; a third thread hammers stale handles.
TEST(FleetStress, ConcurrentSessionsThroughCApi) {
  constexpr int kIterations = 8;
  std::atomic<bool> failed{false};
  const auto lifecycle = [&](const char* machine, const char* group) {
    const int cpus[] = {0, 1};
    for (int it = 0; it < kIterations && !failed.load(); ++it) {
      likwid_handle h = 0;
      if (likwid_init(machine, cpus, 2, &h) != LIKWID_OK) {
        failed.store(true);
        return;
      }
      int set = -1;
      EXPECT_EQ(likwid_addEventSet(h, group, &set), LIKWID_OK);
      EXPECT_EQ(likwid_setupCounters(h, set), LIKWID_OK);
      EXPECT_EQ(likwid_startCounters(h), LIKWID_OK);
      EXPECT_EQ(likwid_runWorkload(h, "triad", 2000, 3), LIKWID_OK);
      EXPECT_EQ(likwid_stopCounters(h), LIKWID_OK);
      int metrics = 0;
      EXPECT_EQ(likwid_getNumberOfMetrics(h, set, &metrics), LIKWID_OK);
      EXPECT_GT(metrics, 0);
      for (int m = 0; m < metrics; ++m) {
        double value = -1;
        EXPECT_EQ(likwid_getMetric(h, set, m, 0, &value), LIKWID_OK);
        EXPECT_TRUE(std::isfinite(value));
      }
      double seconds = 0;
      EXPECT_EQ(likwid_getTimeOfGroup(h, set, &seconds), LIKWID_OK);
      EXPECT_GT(seconds, 0);
      EXPECT_EQ(likwid_finalize(h), LIKWID_OK);
      // The handle is dead for good.
      EXPECT_EQ(likwid_startCounters(h), LIKWID_ERROR_INVALID_HANDLE);
    }
  };

  std::thread a(lifecycle, "westmere-ep", "MEM");
  std::thread b(lifecycle, "westmere-ep", "FLOPS_DP");
  std::thread hammer([&]() {
    // Handle 0 is never issued; every call must fail cleanly and keep the
    // per-thread error message intact.
    for (int i = 0; i < 200; ++i) {
      double value = 0;
      EXPECT_EQ(likwid_getMetric(0, 0, 0, 0, &value),
                LIKWID_ERROR_INVALID_HANDLE);
      EXPECT_NE(std::string(likwid_lastError()).find("handle 0"),
                std::string::npos);
    }
  });
  a.join();
  b.join();
  hammer.join();
  EXPECT_FALSE(failed.load());
}

// Interleaved lifecycle calls on ONE shared handle from two threads: the
// outcome of any single call is order-dependent, but every call must
// return a defined status and the final stop/finalize sequence must see a
// consistent session.
TEST(FleetStress, SharedHandleCallsAreSerialized) {
  const int cpus[] = {0};
  likwid_handle h = 0;
  ASSERT_EQ(likwid_init("westmere-ep", cpus, 1, &h), LIKWID_OK);
  int set = -1;
  ASSERT_EQ(likwid_addEventSet(h, "MEM", &set), LIKWID_OK);
  ASSERT_EQ(likwid_setupCounters(h, set), LIKWID_OK);

  std::atomic<int> start_ok{0};
  const auto racer = [&]() {
    for (int i = 0; i < 50; ++i) {
      const likwid_status s = likwid_startCounters(h);
      if (s == LIKWID_OK) {
        start_ok.fetch_add(1);
        EXPECT_EQ(likwid_advanceTime(h, 1e-3), LIKWID_OK);
        EXPECT_EQ(likwid_stopCounters(h), LIKWID_OK);
      } else {
        // The only legal loss mode is "the other thread held the
        // started/stopped state first".
        EXPECT_EQ(s, LIKWID_ERROR_INVALID_STATE);
      }
    }
  };
  std::thread a(racer);
  std::thread b(racer);
  a.join();
  b.join();
  EXPECT_GT(start_ok.load(), 0);
  EXPECT_EQ(likwid_finalize(h), LIKWID_OK);
}

// The Session tripwire: its guard is a try-lock, so of two overlapping
// entries one proceeds and the other throws Error(kInvalidState) — two
// threads can never be inside the same Session at once. Under TSan this
// test is the proof: if the guard ever admitted both threads, the racing
// rotate() bodies would be flagged. Distinct sessions in the other tests
// prove the independence half of the contract.
TEST(FleetStress, SessionTripwireExcludesConcurrentEntry) {
  const auto session = api::Session::configure()
                           .name("tripwire")
                           .cpus({0})
                           .group("MEM")
                           .group("FLOPS_DP")
                           .build();
  session->start();

  std::atomic<int> succeeded{0};
  std::atomic<int> denied{0};
  const auto racer = [&]() {
    for (int i = 0; i < 5'000; ++i) {
      try {
        session->rotate();
        succeeded.fetch_add(1);
      } catch (const Error& e) {
        ASSERT_EQ(e.code(), ErrorCode::kInvalidState);
        denied.fetch_add(1);
      }
    }
  };
  std::thread a(racer);
  std::thread b(racer);
  a.join();
  b.join();
  EXPECT_EQ(succeeded.load() + denied.load(), 10'000);
  EXPECT_GT(succeeded.load(), 0);
  // No stale ownership once the racers left: the session is usable again
  // from this (third) thread.
  EXPECT_NO_THROW(session->rotate());
  EXPECT_NO_THROW(session->stop());
}

}  // namespace
}  // namespace likwid
