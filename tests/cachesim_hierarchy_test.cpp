// Tests for the full cache hierarchy: demand fills, write-allocate,
// writeback cascades, nontemporal stores, remote-socket migration,
// prefetchers, TLB, and the event-vector projection.
#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"

namespace likwid::cachesim {
namespace {

class Hierarchy : public ::testing::Test {
 protected:
  Hierarchy()
      : spec_(hwsim::presets::nehalem_ep()),
        threads_(hwsim::enumerate_hw_threads(spec_)),
        h_(spec_, threads_) {
    no_prefetch_ = hwsim::PrefetcherSpec{};
    for (const auto& t : threads_) h_.set_prefetchers(t.os_id, no_prefetch_);
  }

  hwsim::MachineSpec spec_;
  std::vector<hwsim::HwThread> threads_;
  CacheHierarchy h_;
  hwsim::PrefetcherSpec no_prefetch_;
};

TEST_F(Hierarchy, InstanceMapping) {
  // Nehalem EP: private L1/L2 per core (shared by SMT pair), L3 per socket.
  EXPECT_EQ(h_.num_l1_instances(), 8);
  EXPECT_EQ(h_.num_l2_instances(), 8);
  EXPECT_EQ(h_.num_l3_instances(), 2);
  // cpu 0 and its SMT sibling (cpu 8) share the L1.
  EXPECT_EQ(h_.instance_of(0, 1), h_.instance_of(8, 1));
  EXPECT_NE(h_.instance_of(0, 1), h_.instance_of(1, 1));
  // Socket mapping for L3.
  EXPECT_EQ(h_.instance_of(0, 3), 0);
  EXPECT_EQ(h_.instance_of(4, 3), 1);
}

TEST_F(Hierarchy, ColdLoadMissesToMemory) {
  h_.access(0, 0x10000, 64, AccessKind::kLoad);
  const auto& t = h_.cpu_traffic(0);
  EXPECT_EQ(t.loads, 1);
  EXPECT_EQ(t.l1_hits, 0);
  EXPECT_EQ(t.l1_fills, 1);
  EXPECT_EQ(t.l2_misses, 1);
  EXPECT_EQ(t.mem_lines_read, 1);
  const auto& s = h_.socket_traffic(0);
  EXPECT_EQ(s.l3_misses, 1);
  EXPECT_EQ(s.l3_lines_in, 1);
  EXPECT_EQ(s.mem_reads, 1);
}

TEST_F(Hierarchy, SecondAccessHitsL1) {
  h_.access(0, 0x10000, 64, AccessKind::kLoad);
  h_.access(0, 0x10000, 64, AccessKind::kLoad);
  const auto& t = h_.cpu_traffic(0);
  EXPECT_EQ(t.l1_hits, 1);
  EXPECT_EQ(t.mem_lines_read, 1);
}

TEST_F(Hierarchy, SmtSiblingHitsSharedL1) {
  h_.access(0, 0x10000, 64, AccessKind::kLoad);
  h_.access(8, 0x10000, 64, AccessKind::kLoad);  // SMT sibling of cpu 0
  EXPECT_EQ(h_.cpu_traffic(8).l1_hits, 1);
}

TEST_F(Hierarchy, NeighbourCoreHitsSharedL3) {
  h_.access(0, 0x10000, 64, AccessKind::kLoad);
  h_.access(1, 0x10000, 64, AccessKind::kLoad);  // same socket, own L1/L2
  const auto& t1 = h_.cpu_traffic(1);
  EXPECT_EQ(t1.l3_hits, 1);
  EXPECT_EQ(t1.mem_lines_read, 0);
  EXPECT_EQ(h_.socket_traffic(0).l3_hits, 1);
}

TEST_F(Hierarchy, RangeAccessTouchesEveryLine) {
  h_.access(0, 0x20000, 640, AccessKind::kLoad);  // 10 lines
  EXPECT_EQ(h_.cpu_traffic(0).loads, 10);
  EXPECT_EQ(h_.cpu_traffic(0).mem_lines_read, 10);
}

TEST_F(Hierarchy, UnalignedRangeCoversStraddledLines) {
  h_.access(0, 0x20000 + 60, 8, AccessKind::kLoad);  // straddles 2 lines
  EXPECT_EQ(h_.cpu_traffic(0).loads, 2);
}

TEST_F(Hierarchy, StoreMissWriteAllocates) {
  h_.access(0, 0x30000, 64, AccessKind::kStore);
  const auto& t = h_.cpu_traffic(0);
  EXPECT_EQ(t.stores, 1);
  EXPECT_EQ(t.mem_lines_read, 1);  // the write-allocate read
  EXPECT_EQ(t.mem_lines_written, 0);  // not yet written back
}

TEST_F(Hierarchy, DirtyEvictionWritesBack) {
  // Fill far beyond all cache capacity with stores, then check that
  // writebacks reached memory.
  const std::uint64_t l3_bytes = spec_.data_cache(3).size_bytes;
  const std::uint64_t span = l3_bytes * 3;
  for (std::uint64_t off = 0; off < span; off += 64) {
    h_.access(0, 0x1000000 + off, 64, AccessKind::kStore);
  }
  const auto& s = h_.socket_traffic(0);
  EXPECT_GT(s.mem_writes, static_cast<double>(span / 64 / 2));
  EXPECT_GT(h_.cpu_traffic(0).l1_writebacks, 0);
  EXPECT_GT(s.l3_lines_out, 0);
}

TEST_F(Hierarchy, StreamingStoreMovesReadAndWriteTraffic) {
  // Pure streaming store over a range 3x the L3: every line costs one
  // write-allocate read and (once the caches are full) one writeback.
  const std::uint64_t l3_lines = spec_.data_cache(3).size_bytes / 64;
  const std::uint64_t lines = l3_lines * 3;
  for (std::uint64_t l = 0; l < lines; ++l) {
    h_.access(0, 0x8000000 + l * 64, 64, AccessKind::kStore);
  }
  const auto& s = h_.socket_traffic(0);
  EXPECT_NEAR(s.mem_reads, static_cast<double>(lines), lines * 0.01);
  // All but the still-resident lines have been written back.
  EXPECT_GT(s.mem_writes, static_cast<double>(lines - l3_lines) * 0.95);
  EXPECT_LE(s.mem_writes, static_cast<double>(lines));
}

TEST_F(Hierarchy, NonTemporalStoreBypassesHierarchy) {
  h_.access(0, 0x40000, 64, AccessKind::kStoreNonTemporal);
  const auto& t = h_.cpu_traffic(0);
  EXPECT_EQ(t.nt_store_lines, 1);
  EXPECT_EQ(t.mem_lines_written, 1);
  EXPECT_EQ(t.mem_lines_read, 0);   // no write-allocate
  EXPECT_EQ(t.l1_fills, 0);
  EXPECT_EQ(h_.socket_traffic(0).l3_lines_in, 0);
}

TEST_F(Hierarchy, NonTemporalStoreInvalidatesCachedCopies) {
  h_.access(0, 0x50000, 64, AccessKind::kLoad);
  h_.access(0, 0x50000, 64, AccessKind::kStoreNonTemporal);
  h_.access(0, 0x50000, 64, AccessKind::kLoad);  // must miss again
  EXPECT_EQ(h_.cpu_traffic(0).mem_lines_read, 2);
}

TEST_F(Hierarchy, RemoteSocketMigration) {
  h_.access(0, 0x60000, 64, AccessKind::kStore);  // socket 0 owns, dirty
  h_.access(4, 0x60000, 64, AccessKind::kLoad);   // socket 1 wants it
  const auto& t = h_.cpu_traffic(4);
  EXPECT_EQ(t.remote_l3_hits, 1);
  EXPECT_EQ(t.mem_lines_read, 0);  // served by migration, not memory
  EXPECT_EQ(h_.socket_traffic(1).l3_lines_in, 1);
  EXPECT_EQ(h_.socket_traffic(0).l3_lines_out, 1);
  // The line is gone from socket 0: cpu 0 now misses locally and migrates
  // it back.
  h_.access(0, 0x60000, 64, AccessKind::kLoad);
  EXPECT_EQ(h_.cpu_traffic(0).remote_l3_hits, 1);
}

TEST_F(Hierarchy, DtlbMissesOncePerPage) {
  // 2 pages of sequential loads -> 2 TLB misses on first touch, none after.
  for (int rep = 0; rep < 2; ++rep) {
    for (std::uint64_t off = 0; off < 8192; off += 64) {
      h_.access(1, 0x100000 + off, 64, AccessKind::kLoad);
    }
  }
  EXPECT_EQ(h_.cpu_traffic(1).dtlb_misses, 2);
}

TEST_F(Hierarchy, DtlbCapacityEviction) {
  // Touch more pages than TLB entries twice; every touch misses when the
  // working set exceeds the TLB (LRU, round-robin sweep).
  const std::uint32_t entries = spec_.tlb.entries;
  for (int rep = 0; rep < 2; ++rep) {
    for (std::uint32_t p = 0; p < entries + 8; ++p) {
      h_.access(2, 0x4000000 + static_cast<std::uint64_t>(p) * 4096, 8,
                AccessKind::kLoad);
    }
  }
  EXPECT_EQ(h_.cpu_traffic(2).dtlb_misses, 2.0 * (entries + 8));
}

TEST_F(Hierarchy, AdjacentLinePrefetchFetchesBuddy) {
  hwsim::PrefetcherSpec adj;
  adj.adjacent_line = true;
  h_.set_prefetchers(0, adj);
  h_.access(0, 0x200000, 64, AccessKind::kLoad);  // even line: buddy is +64
  const auto& t = h_.cpu_traffic(0);
  EXPECT_EQ(t.prefetches_issued, 1);
  EXPECT_EQ(t.mem_lines_read, 2);  // demand + buddy
  // Buddy access now hits (L2).
  h_.access(0, 0x200040, 64, AccessKind::kLoad);
  EXPECT_EQ(t.mem_lines_read, 2);
}

TEST_F(Hierarchy, StreamPrefetcherHidesSequentialMisses) {
  hwsim::PrefetcherSpec stream;
  stream.hardware_prefetcher = true;
  stream.dcu_prefetcher = true;
  h_.set_prefetchers(3, stream);
  for (std::uint64_t l = 0; l < 64; ++l) {
    h_.access(3, 0x300000 + l * 64, 64, AccessKind::kLoad);
  }
  const auto& t = h_.cpu_traffic(3);
  EXPECT_GT(t.prefetches_issued, 30);
  // Many demand accesses were satisfied from L1/L2 thanks to prefetch.
  EXPECT_GT(t.l1_hits + t.l2_hits, 30);
}

TEST_F(Hierarchy, PrefetchersCanBeDisabledPerCpu) {
  hwsim::PrefetcherSpec all;
  all.hardware_prefetcher = all.adjacent_line = true;
  all.dcu_prefetcher = all.ip_prefetcher = true;
  h_.set_prefetchers(5, all);
  h_.set_prefetchers(6, no_prefetch_);
  for (std::uint64_t l = 0; l < 16; ++l) {
    h_.access(5, 0x400000 + l * 64, 64, AccessKind::kLoad);
    h_.access(6, 0x500000 + l * 64, 64, AccessKind::kLoad);
  }
  EXPECT_GT(h_.cpu_traffic(5).prefetches_issued, 0);
  EXPECT_EQ(h_.cpu_traffic(6).prefetches_issued, 0);
}

TEST_F(Hierarchy, EventProjectionMatchesTraffic) {
  h_.access(0, 0x600000, 64 * 100, AccessKind::kStore);
  const auto ev = h_.core_cache_events(0);
  const auto& t = h_.cpu_traffic(0);
  EXPECT_EQ(ev[hwsim::EventId::kL1DLinesIn], t.l1_fills);
  EXPECT_EQ(ev[hwsim::EventId::kL2LinesIn], t.l2_fills);
  EXPECT_EQ(ev[hwsim::EventId::kDtlbMisses], t.dtlb_misses);
  const auto uev = h_.uncore_cache_events(0);
  const auto& s = h_.socket_traffic(0);
  EXPECT_EQ(uev[hwsim::EventId::kUncL3LinesIn], s.l3_lines_in);
  EXPECT_EQ(uev[hwsim::EventId::kUncMemReads], s.mem_reads);
}

TEST_F(Hierarchy, ResetCountersKeepsContents) {
  h_.access(0, 0x700000, 64, AccessKind::kLoad);
  h_.reset_counters();
  EXPECT_EQ(h_.cpu_traffic(0).loads, 0);
  h_.access(0, 0x700000, 64, AccessKind::kLoad);
  EXPECT_EQ(h_.cpu_traffic(0).l1_hits, 1);  // still cached
}

TEST_F(Hierarchy, FlushDropsContents) {
  h_.access(0, 0x800000, 64, AccessKind::kLoad);
  h_.flush();
  h_.reset_counters();
  h_.access(0, 0x800000, 64, AccessKind::kLoad);
  EXPECT_EQ(h_.cpu_traffic(0).mem_lines_read, 1);
}

TEST_F(Hierarchy, InvalidCpuOrZeroLengthRejected) {
  EXPECT_THROW(h_.access(99, 0, 64, AccessKind::kLoad), Error);
  EXPECT_THROW(h_.access(0, 0, 0, AccessKind::kLoad), Error);
  EXPECT_THROW(h_.cpu_traffic(-1), Error);
  EXPECT_THROW(h_.socket_traffic(5), Error);
}

TEST(HierarchyNoL3, Core2WritebacksGoStraightToMemory) {
  const hwsim::MachineSpec spec = hwsim::presets::core2_quad();
  const auto threads = hwsim::enumerate_hw_threads(spec);
  CacheHierarchy h(spec, threads);
  for (const auto& t : threads) h.set_prefetchers(t.os_id, {});
  EXPECT_EQ(h.num_l3_instances(), 0);
  EXPECT_EQ(h.instance_of(0, 3), -1);
  // Stream stores through the 6MB L2.
  const std::uint64_t lines = spec.data_cache(2).size_bytes / 64 * 2;
  for (std::uint64_t l = 0; l < lines; ++l) {
    h.access(0, 0x1000000 + l * 64, 64, AccessKind::kStore);
  }
  EXPECT_GT(h.socket_traffic(0).mem_writes, static_cast<double>(lines) / 4);
  EXPECT_EQ(h.socket_traffic(0).l3_lines_in, 0);
}

TEST(HierarchyShared, Core2QuadL2SharedByCorePairs) {
  const hwsim::MachineSpec spec = hwsim::presets::core2_quad();
  const auto threads = hwsim::enumerate_hw_threads(spec);
  CacheHierarchy h(spec, threads);
  // L2 is shared by core pairs {0,1} and {2,3}.
  EXPECT_EQ(h.num_l2_instances(), 2);
  EXPECT_EQ(h.instance_of(0, 2), h.instance_of(1, 2));
  EXPECT_EQ(h.instance_of(2, 2), h.instance_of(3, 2));
  EXPECT_NE(h.instance_of(1, 2), h.instance_of(2, 2));
}

}  // namespace
}  // namespace likwid::cachesim
