// Tests for the Section V future-work features this reproduction
// implements: NUMA topology reporting, logical (cpuset-style) pinning,
// XML output, and the bandwidth-map building blocks.
#include <gtest/gtest.h>

#include "cli/output.hpp"
#include "cli/xml_output.hpp"
#include "core/likwid.hpp"
#include "core/numa.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"
#include "workloads/stream.hpp"

namespace likwid {
namespace {

// --- NUMA -------------------------------------------------------------------

class NumaTest : public ::testing::Test {
 protected:
  NumaTest() : machine(hwsim::presets::westmere_ep()), kernel(machine) {}
  hwsim::SimMachine machine;
  ossim::SimKernel kernel;
};

TEST_F(NumaTest, OneDomainPerSocket) {
  const core::NumaTopology numa = core::probe_numa(kernel);
  ASSERT_EQ(numa.num_domains(), 2);
  EXPECT_EQ(numa.domains[0].processors, machine.cpus_of_socket(0));
  EXPECT_EQ(numa.domains[1].processors, machine.cpus_of_socket(1));
}

TEST_F(NumaTest, DistancesFollowSlitConvention) {
  const core::NumaTopology numa = core::probe_numa(kernel);
  for (const auto& d : numa.domains) {
    EXPECT_EQ(d.distances[static_cast<std::size_t>(d.id)], 10);
    for (int o = 0; o < numa.num_domains(); ++o) {
      if (o != d.id) {
        EXPECT_GT(d.distances[static_cast<std::size_t>(o)], 10);
      }
    }
  }
}

TEST_F(NumaTest, DomainOfCpu) {
  const core::NumaTopology numa = core::probe_numa(kernel);
  EXPECT_EQ(numa.domain_of(0), 0);
  EXPECT_EQ(numa.domain_of(6), 1);
  EXPECT_EQ(numa.domain_of(12), 0);  // SMT sibling of cpu 0
  EXPECT_THROW(numa.domain_of(99), Error);
}

TEST_F(NumaTest, SingleSocketMachineHasOneDomain) {
  hwsim::SimMachine c2(hwsim::presets::core2_quad());
  ossim::SimKernel k2(c2);
  const core::NumaTopology numa = core::probe_numa(k2);
  EXPECT_EQ(numa.num_domains(), 1);
  EXPECT_EQ(numa.domains[0].distances, (std::vector<int>{10}));
}

TEST_F(NumaTest, TextRendering) {
  const std::string out = cli::render_numa(core::probe_numa(kernel));
  EXPECT_NE(out.find("NUMA Topology"), std::string::npos);
  EXPECT_NE(out.find("NUMA domains: 2"), std::string::npos);
  EXPECT_NE(out.find("Domain 0:"), std::string::npos);
  EXPECT_NE(out.find("Distances: 10"), std::string::npos);
}

// --- logical pinning ---------------------------------------------------------

class LogicalPin : public ::testing::Test {
 protected:
  LogicalPin() : machine(hwsim::presets::westmere_ep()) {}
  hwsim::SimMachine machine;
};

TEST_F(LogicalPin, LogicalIdsFollowTopologyOrder) {
  const core::NodeTopology topo = core::probe_topology(machine);
  // Logical 0,1 are the first cores of socket 0 and socket 1.
  const auto cpus = core::resolve_logical_cpu_list(topo, {0, 1, 2, 3});
  EXPECT_EQ(cpus, (std::vector<int>{0, 6, 1, 7}));
}

TEST_F(LogicalPin, LogicalBeyondMachineRejected) {
  const core::NodeTopology topo = core::probe_topology(machine);
  EXPECT_THROW(core::resolve_logical_cpu_list(topo, {24}), Error);
  EXPECT_THROW(core::resolve_logical_cpu_list(topo, {-1}), Error);
}

TEST_F(LogicalPin, ExpressionParserDistinguishesForms) {
  const core::NodeTopology topo = core::probe_topology(machine);
  EXPECT_EQ(core::parse_pin_cpu_expression(topo, "0-3"),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(core::parse_pin_cpu_expression(topo, "L:0-3"),
            (std::vector<int>{0, 6, 1, 7}));
  EXPECT_THROW(core::parse_pin_cpu_expression(topo, "42"), Error);
  EXPECT_THROW(core::parse_pin_cpu_expression(topo, "L:99"), Error);
}

TEST_F(LogicalPin, LogicalPinningPinsPhysicalFirst) {
  ossim::SimKernel kernel(machine);
  ossim::ThreadRuntime runtime(kernel.scheduler());
  const core::NodeTopology topo = core::probe_topology(machine);
  core::PinConfig cfg;
  cfg.cpu_list = core::parse_pin_cpu_expression(topo, "L:0-5");
  core::PinWrapper wrapper(runtime, cfg);
  for (int i = 1; i < 6; ++i) runtime.create_thread();
  // All six threads on physical cores (os ids < 12), alternating sockets.
  for (int tid = 0; tid < 6; ++tid) {
    EXPECT_LT(runtime.thread(tid).cpu, 12);
  }
  EXPECT_EQ(machine.socket_of(runtime.thread(0).cpu), 0);
  EXPECT_EQ(machine.socket_of(runtime.thread(1).cpu), 1);
}

// --- XML output --------------------------------------------------------------

TEST(XmlEscape, EscapesSpecials) {
  EXPECT_EQ(cli::xml_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
  EXPECT_EQ(cli::xml_escape("plain"), "plain");
}

TEST(XmlOutput, TopologyDocumentWellFormedIsh) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const core::NodeTopology topo = core::probe_topology(machine);
  const std::string xml = cli::xml_topology(topo);
  EXPECT_NE(xml.find("<node cpuName=\"Intel Westmere EP processor\""),
            std::string::npos);
  EXPECT_NE(xml.find("sockets=\"2\""), std::string::npos);
  EXPECT_NE(xml.find("<hwThread id=\"0\""), std::string::npos);
  EXPECT_NE(xml.find("<cache level=\"3\""), std::string::npos);
  EXPECT_NE(xml.find("</node>"), std::string::npos);
  // Balanced tags for the containers we emit.
  const auto count = [&xml](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = xml.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("<cache "), count("</cache>"));
  EXPECT_EQ(count("<group>"), count("</group>"));
}

TEST(XmlOutput, NumaDocument) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  const std::string xml = cli::xml_numa(core::probe_numa(kernel));
  EXPECT_NE(xml.find("<numa domains=\"2\">"), std::string::npos);
  EXPECT_NE(xml.find("<processors>0 1 2 3 8 9 10 11</processors>"),
            std::string::npos);
  EXPECT_NE(xml.find("<distances>10"), std::string::npos);
}

TEST(XmlOutput, MeasurementDocument) {
  hwsim::SimMachine machine(hwsim::presets::core2_quad());
  ossim::SimKernel kernel(machine);
  core::PerfCtr ctr(kernel, {0, 1});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  workloads::StreamConfig cfg;
  cfg.array_length = 100'000;
  cfg.repetitions = 1;
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = {0, 1};
  run_workload(kernel, triad, p);
  ctr.stop();
  const std::string xml = cli::xml_measurement(ctr, 0);
  EXPECT_NE(xml.find("<measurement group=\"FLOPS_DP\""), std::string::npos);
  EXPECT_NE(xml.find("<cpu id=\"0\">"), std::string::npos);
  EXPECT_NE(xml.find(
                "<event name=\"SIMD_COMP_INST_RETIRED_PACKED_DOUBLE\" "
                "counter=\"PMC0\" count=\"50000\"/>"),
            std::string::npos);
  EXPECT_NE(xml.find("<metric name=\"DP MFlops/s\">"), std::string::npos);
}

TEST(XmlOutput, FeaturesDocument) {
  hwsim::SimMachine machine(hwsim::presets::core2_duo());
  ossim::SimKernel kernel(machine);
  core::Features features(kernel, 0);
  const core::NodeTopology topo = core::probe_topology(machine);
  const std::string xml = cli::xml_features(topo, 0, features.report());
  EXPECT_NE(xml.find("<features cpuName=\"Intel Core 2 65nm processor\" "
                     "cpu=\"0\">"),
            std::string::npos);
  EXPECT_NE(xml.find("<feature name=\"Hardware Prefetcher\" "
                     "state=\"enabled\"/>"),
            std::string::npos);
}

// --- ccNUMA bandwidth map building block ----------------------------------

TEST(BandwidthMap, RemoteDomainIsSlower) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const auto run = [&machine](int cpu, int domain) {
    ossim::SimKernel kernel(machine);
    workloads::StreamConfig cfg;
    cfg.array_length = 2'000'000;
    cfg.repetitions = 1;
    cfg.chunk_home_sockets = {domain};
    workloads::StreamTriad triad(cfg);
    workloads::Placement p;
    p.cpus = {cpu};
    kernel.scheduler().add_busy(cpu, 1);
    return run_workload(kernel, triad, p);
  };
  const double local = run(0, 0);
  const double remote = run(0, 1);
  EXPECT_NEAR(remote / local, 1.0 / machine.spec().memory.remote_penalty,
              0.02);
}

}  // namespace
}  // namespace likwid
