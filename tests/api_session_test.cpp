// Tests for likwid::api::Session — the embeddable facade: builder
// configuration, node access, counter lifecycle, per-session marker state
// and the ResultTable result model.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>

#include "api/session.hpp"
#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"
#include "workloads/stream.hpp"

namespace likwid::api {
namespace {

void run_triad(Session& session, std::size_t len, int reps = 1) {
  workloads::StreamConfig cfg;
  cfg.array_length = len;
  cfg.repetitions = reps;
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = session.cpus();
  run_workload(session.kernel(), triad, p);
}

TEST(SessionBuilder, BuildsTheConfiguredNode) {
  const auto session = Session::configure()
                           .name("builder test")
                           .machine("core2-quad")
                           .cpus({0, 1})
                           .group("FLOPS_DP")
                           .build();
  EXPECT_EQ(session->name(), "builder test");
  EXPECT_EQ(session->machine().spec().name,
            hwsim::presets::core2_quad().name);
  EXPECT_EQ(session->counters().num_event_sets(), 1);
  EXPECT_EQ(session->topology().num_sockets, 1);
  EXPECT_EQ(session->cpus(), (std::vector<int>{0, 1}));
}

TEST(SessionBuilder, UnknownPresetRejected) {
  EXPECT_THROW(Session::configure().machine("pdp-11").build(), Error);
}

TEST(SessionBuilder, UnknownGroupRejected) {
  EXPECT_THROW(
      Session::configure().cpus({0}).group("NO_SUCH_GROUP").build(), Error);
}

TEST(Session, CountersRequireConfiguredCpus) {
  const auto session = Session::configure().build();
  try {
    session->counters();
    FAIL() << "counters() without cpus must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidState);
  }
  session->set_cpus({0});
  EXPECT_NO_THROW(session->counters());
  // Once the counters exist the cpu list is frozen.
  EXPECT_THROW(session->set_cpus({0, 1}), Error);
}

TEST(Session, MeasuresAGroupEndToEnd) {
  const auto session = Session::configure()
                           .machine("nehalem-ep")
                           .cpus({0, 1})
                           .group("FLOPS_DP")
                           .build();
  session->start();
  run_triad(*session, 400'000);
  session->stop();

  const ResultTable table = session->measurement(0);
  EXPECT_EQ(table.group, "FLOPS_DP");
  EXPECT_TRUE(table.has_metrics);
  EXPECT_GT(table.seconds, 0);
  EXPECT_EQ(table.cpus, (std::vector<int>{0, 1}));
  ASSERT_FALSE(table.events.empty());
  for (const auto& event : table.events) {
    EXPECT_EQ(event.values.size(), table.cpus.size());
  }
  ASSERT_FALSE(table.metrics.empty());
  EXPECT_EQ(table.metrics.front().name, "Runtime [s]");
  EXPECT_GT(table.metrics.front().values.front(), 0);
}

TEST(Session, CustomSetsCarryNoMetrics) {
  const auto session =
      Session::configure()
          .machine("nehalem-ep")
          .cpus({0})
          .custom("INSTR_RETIRED_ANY:FIXC0")
          .build();
  session->start();
  run_triad(*session, 100'000);
  session->stop();
  const ResultTable table = session->measurement(0);
  EXPECT_EQ(table.group, "custom");
  EXPECT_FALSE(table.has_metrics);
  EXPECT_TRUE(table.metrics.empty());
}

TEST(Session, ResetCountersStartsAFreshScopeOnTheSameNode) {
  const auto session = Session::configure()
                           .machine("core2-quad")
                           .cpus({0})
                           .group("FLOPS_DP")
                           .build();
  session->start();
  run_triad(*session, 200'000);
  session->stop();
  const double first = session->measurement(0).seconds;
  EXPECT_GT(first, 0);

  session->reset_counters();
  EXPECT_FALSE(session->has_counters());
  session->add_group("FLOPS_DP");
  session->start();
  run_triad(*session, 200'000);
  session->stop();
  // A fresh scope accumulates only its own interval, on the same kernel.
  EXPECT_GT(session->measurement(0).seconds, 0);
  EXPECT_LT(session->measurement(0).seconds, 2 * first + 1e-9);
}

TEST(Session, PerSessionMarkersViaAmbientBinding) {
  const auto session = Session::configure()
                           .machine("core2-quad")
                           .cpus({0, 1, 2, 3})
                           .group("FLOPS_DP")
                           .build();
  session->start();
  session->bind_ambient_markers();
  likwid_markerInit(1, 1);
  const int id = likwid_markerRegisterRegion("Bench");
  likwid_markerStartRegion(0, 0);
  run_triad(*session, 400'000);
  likwid_markerStopRegion(0, 0, id);
  likwid_markerClose();
  session->stop();

  const RegionReport report = session->regions(0);
  EXPECT_EQ(report.group, "FLOPS_DP");
  ASSERT_EQ(report.regions.size(), 1u);
  EXPECT_EQ(report.regions.front().name, "Bench");
  EXPECT_EQ(report.regions.front().calls, 1);
  session->release_ambient_markers();
  EXPECT_FALSE(MarkerBinding::bound());
}

TEST(Session, SecondAmbientBindNamesTheHoldingSession) {
  const auto holder = Session::configure()
                          .name("holder")
                          .cpus({0})
                          .group("FLOPS_DP")
                          .build();
  const auto intruder = Session::configure()
                            .name("intruder")
                            .cpus({0})
                            .group("FLOPS_DP")
                            .build();
  holder->bind_ambient_markers();
  try {
    intruder->bind_ambient_markers();
    FAIL() << "second ambient bind must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidState);
    EXPECT_NE(std::string(e.what()).find("holder"), std::string::npos)
        << e.what();
  }
  holder->release_ambient_markers();
  // Now the second session can take over.
  EXPECT_NO_THROW(intruder->bind_ambient_markers());
  intruder->release_ambient_markers();
}

TEST(Session, DestructorReleasesTheAmbientBinding) {
  {
    const auto session =
        Session::configure().cpus({0}).group("FLOPS_DP").build();
    session->bind_ambient_markers();
    EXPECT_NE(MarkerBinding::ambient(), nullptr);
  }
  EXPECT_EQ(MarkerBinding::ambient(), nullptr);
  // The legacy shim can bind again immediately.
  const auto next = Session::configure().cpus({0}).group("FLOPS_DP").build();
  EXPECT_NO_THROW(next->bind_ambient_markers());
}

TEST(Session, AttachSharesAnExternallyOwnedKernel) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  ossim::SimKernel kernel(machine);
  const auto session = Session::attach(kernel, {0, 1}, "attached test");
  EXPECT_EQ(&session->kernel(), &kernel);
  session->add_group("FLOPS_DP");
  session->start();
  workloads::StreamConfig cfg;
  cfg.array_length = 200'000;
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = {0, 1};
  run_workload(kernel, triad, p);
  session->stop();
  EXPECT_GT(session->measurement(0).seconds, 0);
  // The attached session advanced the shared clock.
  EXPECT_GT(kernel.now(), 0);
}

TEST(Session, RegionsWithoutMarkerInitRejected) {
  const auto session =
      Session::configure().cpus({0}).group("FLOPS_DP").build();
  session->start();
  session->stop();
  try {
    session->regions(0);
    FAIL() << "regions() without markers must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidState);
  }
}

// Regression: the const result accessors used to bypass the
// single-thread tripwire, so a second thread reading measurement() while
// the owner was inside the session went undetected. Both threads spend
// essentially all their time inside measurement(0); the first preemption
// mid-call must now surface as Error(kInvalidState) naming the session
// instead of an unflagged data race.
TEST(Session, ConstResultAccessorsTripTheConcurrencyWire) {
  const auto session = Session::configure()
                           .name("tripwire")
                           .cpus({0})
                           .group("FLOPS_DP")
                           .build();
  session->start();
  session->stop();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::atomic<bool> stop{false};
  std::atomic<bool> tripped{false};
  std::string message;
  std::mutex message_mutex;
  const auto hammer = [&] {
    while (!stop.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {
      try {
        (void)session->measurement(0);
      } catch (const Error& e) {
        if (e.code() == ErrorCode::kInvalidState) {
          {
            const std::lock_guard<std::mutex> lock(message_mutex);
            message = e.what();
          }
          tripped.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        throw;
      }
    }
  };

  std::thread other(hammer);
  hammer();
  stop.store(true, std::memory_order_relaxed);
  other.join();

  ASSERT_TRUE(tripped.load()) << "no overlap detected within the deadline";
  EXPECT_NE(message.find("tripwire"), std::string::npos) << message;
  EXPECT_NE(message.find("second thread"), std::string::npos) << message;
}

}  // namespace
}  // namespace likwid::api
