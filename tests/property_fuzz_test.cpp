// Seeded-fuzz property tests complementing tests/property_test.cpp:
// cpu-list and skip-mask parsing round-trips, event-table encode/decode
// inverses across every architecture, counter-allocation validity under
// random event subsets, timing monotonicity under extra remote traffic,
// and the synthetic kernels' steady-state invariants on random machines.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>

#include "core/perfctr.hpp"
#include "hwsim/arch.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "perfmodel/exec_model.hpp"
#include "util/cpulist.hpp"
#include "util/status.hpp"
#include "workloads/synthetic.hpp"

namespace likwid {
namespace {

// --- cpu-list / skip-mask round-trips ----------------------------------------

class CpuListFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CpuListFuzz, FormatParseRoundTrips) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 50; ++round) {
    // Random strictly-increasing list (format_cpu_list compacts ranges).
    std::set<int> chosen;
    const int count = 1 + static_cast<int>(rng() % 24);
    while (static_cast<int>(chosen.size()) < count) {
      chosen.insert(static_cast<int>(rng() % 128));
    }
    const std::vector<int> cpus(chosen.begin(), chosen.end());
    const std::string text = util::format_cpu_list(cpus);
    EXPECT_EQ(util::parse_cpu_list(text), cpus) << text;
  }
}

TEST_P(CpuListFuzz, SkipMaskRoundTripsThroughHex) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t bits = rng() >> (rng() % 32);
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(bits));
    const util::SkipMask mask = util::SkipMask::parse(buf);
    EXPECT_EQ(mask.bits(), bits);
    // count_skipped agrees with bit-by-bit membership.
    unsigned expected = 0;
    for (unsigned i = 0; i < 64; ++i) {
      if ((bits >> i) & 1u) ++expected;
      EXPECT_EQ(mask.skips(i), ((bits >> i) & 1u) != 0);
    }
    EXPECT_EQ(mask.count_skipped(64), expected);
  }
}

TEST_P(CpuListFuzz, GarbageInputsThrowCleanly) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const std::string alphabet = "0123456789-, abcxg";
  int rejected = 0;
  for (int round = 0; round < 100; ++round) {
    std::string text;
    const int len = 1 + static_cast<int>(rng() % 10);
    for (int i = 0; i < len; ++i) {
      text += alphabet[rng() % alphabet.size()];
    }
    try {
      const auto cpus = util::parse_cpu_list(text);
      // Accepted: must be a valid non-empty list of in-range ids with no
      // duplicates (duplicate expressions collapse to first occurrence).
      EXPECT_FALSE(cpus.empty()) << "'" << text << "'";
      std::set<int> distinct;
      for (const int c : cpus) {
        EXPECT_GE(c, 0);
        EXPECT_LE(c, 4095);
        EXPECT_TRUE(distinct.insert(c).second)
            << "duplicate cpu " << c << " from '" << text << "'";
      }
    } catch (const Error& e) {
      ++rejected;
      EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument) << "'" << text << "'";
    }
  }
  // The alphabet is mostly garbage: most inputs must be rejected, and
  // rejection must always be the typed Error above (never a crash).
  EXPECT_GT(rejected, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuListFuzz, ::testing::Range(0, 4));

// --- event tables: encode/decode inverse across every architecture -----------

class EventTableRoundTrip
    : public ::testing::TestWithParam<hwsim::presets::NamedPreset> {};

TEST_P(EventTableRoundTrip, DecodeInvertsEveryDocumentedEncoding) {
  const hwsim::MachineSpec spec = GetParam().factory();
  const hwsim::Arch arch =
      hwsim::classify_arch(spec.vendor, spec.family, spec.model);
  for (const auto& enc : hwsim::event_table(arch)) {
    if (enc.klass == hwsim::CounterClass::kFixed) continue;
    const auto* back = hwsim::decode_event(arch, enc.event_code, enc.umask,
                                           enc.klass);
    ASSERT_NE(back, nullptr) << enc.name;
    EXPECT_EQ(back->id, enc.id) << enc.name;
    EXPECT_EQ(back->name, enc.name);
  }
}

TEST_P(EventTableRoundTrip, UndocumentedEncodingsDecodeToNothing) {
  const hwsim::MachineSpec spec = GetParam().factory();
  const hwsim::Arch arch =
      hwsim::classify_arch(spec.vendor, spec.family, spec.model);
  std::mt19937_64 rng(0xC0FFEE);
  const auto& table = hwsim::event_table(arch);
  int probed = 0;
  while (probed < 64) {
    const auto code = static_cast<std::uint16_t>(rng() % 0x400);
    const auto umask = static_cast<std::uint8_t>(rng() % 0x100);
    const bool documented = std::any_of(
        table.begin(), table.end(), [&](const hwsim::EventEncoding& e) {
          return e.event_code == code && e.umask == umask;
        });
    if (documented) continue;
    ++probed;
    // Like real silicon: an unprogrammed selector simply never counts.
    EXPECT_EQ(hwsim::decode_event(arch, code, umask,
                                  hwsim::CounterClass::kCore),
              nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, EventTableRoundTrip,
    ::testing::ValuesIn(hwsim::presets::all_presets()),
    [](const ::testing::TestParamInfo<hwsim::presets::NamedPreset>& info) {
      std::string name = info.param.key;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- counter allocation under random event subsets ---------------------------

class AllocationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AllocationFuzz, AutoAssignmentNeverDoublesACounter) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  for (const auto& preset : hwsim::presets::all_presets()) {
    hwsim::SimMachine machine(preset.factory());
    ossim::SimKernel kernel(machine);

    // Candidate GP events of this architecture.
    std::vector<std::string> names;
    for (const auto& enc : hwsim::event_table(machine.arch())) {
      if (enc.klass == hwsim::CounterClass::kCore) names.push_back(enc.name);
    }
    for (int round = 0; round < 6; ++round) {
      std::shuffle(names.begin(), names.end(), rng);
      const int take = 1 + static_cast<int>(rng() % 5);
      std::string spec;
      for (int i = 0; i < take && i < static_cast<int>(names.size()); ++i) {
        if (!spec.empty()) spec += ',';
        spec += names[static_cast<std::size_t>(i)];
      }
      core::PerfCtr ctr(kernel, {0});
      try {
        ctr.add_custom(spec);
      } catch (const Error& e) {
        // Exhaustion of the GP budget is the only acceptable failure.
        EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted) << spec;
        continue;
      }
      std::set<std::string> used;
      int gp = 0;
      for (const auto& a : ctr.assignments_of(0)) {
        EXPECT_TRUE(used.insert(a.counter_name).second)
            << preset.key << ": counter " << a.counter_name
            << " assigned twice in '" << spec << "'";
        if (a.counter_name.rfind("PMC", 0) == 0) ++gp;
      }
      EXPECT_LE(gp, machine.spec().pmu.num_gp_counters) << preset.key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationFuzz, ::testing::Range(0, 3));

// --- timing monotonicity ------------------------------------------------------

class TimingMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(TimingMonotonicity, LoneWorkerNeverGainsFromRemoteHoming) {
  // With several workers, pushing one worker's data to the other socket
  // can legitimately *help* (it off-loads a saturated controller). For a
  // lone worker there is no such upside: the remote factor and the QPI
  // cap only penalize, so its runtime must be monotone in the remote
  // share of its traffic.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 12347 + 11);
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const auto model = perfmodel::default_model(machine.spec());
  std::vector<int> load(static_cast<std::size_t>(machine.num_threads()), 0);

  for (int round = 0; round < 20; ++round) {
    const int cpu = static_cast<int>(rng() % 12);
    const int sock = machine.socket_of(cpu);
    const double total = (1.0 + static_cast<double>(rng() % 100)) * 1e7;
    const double cycles_per_iter = 1.0 + static_cast<double>(rng() % 4);
    double prev_seconds = 0;
    for (const double remote_share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      perfmodel::ThreadWork t;
      t.cpu = cpu;
      t.iterations = 1e7;
      t.cycles_per_iter = cycles_per_iter;
      t.mem_bytes_by_socket.assign(2, 0.0);
      t.mem_bytes_by_socket[static_cast<std::size_t>(sock)] =
          total * (1.0 - remote_share);
      t.mem_bytes_by_socket[static_cast<std::size_t>(1 - sock)] =
          total * remote_share;
      t.l2_bytes = total;
      t.l3_bytes = total;
      const auto r = perfmodel::estimate_slice(model, machine, {t}, load);
      EXPECT_GE(r.seconds, prev_seconds * (1.0 - 1e-9))
          << "cpu " << cpu << " remote share " << remote_share;
      prev_seconds = r.seconds;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingMonotonicity, ::testing::Range(0, 4));

// --- synthetic kernel steady-state invariants ---------------------------------

class SyntheticInvariants
    : public ::testing::TestWithParam<hwsim::presets::NamedPreset> {};

TEST_P(SyntheticInvariants, MissFlagsAreMonotoneAcrossLevels) {
  hwsim::SimMachine machine(GetParam().factory());
  std::mt19937_64 rng(99);
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t ws = 64ull << (rng() % 22);  // 64 B .. 128 MB
    const workloads::SyntheticKernel k(
        workloads::cache_ladder_kernel(ws, 1));
    workloads::Placement p;
    p.cpus = {static_cast<int>(rng() %
                               static_cast<unsigned>(machine.num_threads()))};
    const auto t = k.sweep_traffic(machine, p, 0);
    // A hit at an inner level implies no traffic deeper down.
    if (!t.misses_l1) {
      EXPECT_FALSE(t.misses_l2);
    }
    if (!t.misses_l2) {
      EXPECT_FALSE(t.misses_llc);
    }
    EXPECT_GE(t.lines, t.store_lines);
    const auto& tlb = machine.spec().tlb;
    if (t.pages > tlb.entries) {
      EXPECT_GT(t.dtlb_misses, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(t.dtlb_misses, 0.0);
    }
  }
}

TEST_P(SyntheticInvariants, LargerWorkingSetsNeverMissLess) {
  hwsim::SimMachine machine(GetParam().factory());
  workloads::Placement p;
  p.cpus = {0};
  bool prev_l1 = false, prev_llc = false;
  for (std::uint64_t ws = 1024; ws <= (256ull << 20); ws *= 4) {
    const workloads::SyntheticKernel k(
        workloads::cache_ladder_kernel(ws, 1));
    const auto t = k.sweep_traffic(machine, p, 0);
    EXPECT_TRUE(t.misses_l1 || !prev_l1) << ws;
    EXPECT_TRUE(t.misses_llc || !prev_llc) << ws;
    prev_l1 = t.misses_l1;
    prev_llc = t.misses_llc;
  }
  EXPECT_TRUE(prev_l1);
  EXPECT_TRUE(prev_llc);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, SyntheticInvariants,
    ::testing::ValuesIn(hwsim::presets::all_presets()),
    [](const ::testing::TestParamInfo<hwsim::presets::NamedPreset>& info) {
      std::string name = info.param.key;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace likwid
