// Tests for the event-based sampling emulation (core/sampling.hpp): the
// estimate's period-bounded undercount, multi-overflow polls, phase
// attribution, overhead accounting, and misuse rejection — plus the
// IntervalSampler continuous-polling hook (delta tiling, group metric
// evaluation, set rotation).
#include <gtest/gtest.h>

#include "core/perfctr.hpp"
#include "core/sampling.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"
#include "workloads/synthetic.hpp"

namespace likwid::core {
namespace {

class Sampling : public ::testing::Test {
 protected:
  Sampling()
      : machine_(hwsim::presets::nehalem_ep()), kernel_(machine_) {
    kernel_.scheduler().add_busy(0, 1);
  }

  /// Run `cfg` in `quanta` slices, polling the profiler after each with
  /// the given label.
  void run_polled(PerfCtr& ctr, SamplingProfiler& prof,
                  const workloads::SyntheticConfig& cfg, int quanta,
                  const std::string& label) {
    workloads::SyntheticKernel k(cfg);
    workloads::Placement p;
    p.cpus = {0};
    workloads::RunOptions opts;
    opts.quanta = quanta;
    opts.between_quanta = [&](int) { prof.poll(label); };
    run_workload(kernel_, k, p, opts);
    prof.poll(label);  // final tick
    (void)ctr;
  }

  hwsim::SimMachine machine_;
  ossim::SimKernel kernel_;
};

TEST_F(Sampling, EstimateUndercountsByLessThanOnePeriod) {
  PerfCtr ctr(kernel_, {0});
  ctr.add_custom("FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");
  ctr.start();
  const int fixed = static_cast<int>(ctr.assignments_of(0).size()) - 1;
  SamplingProfiler prof(ctr, 0, fixed, /*period=*/10'000);

  // daxpy: one packed op per element; 3 x 100k elements = 300k events.
  run_polled(ctr, prof, workloads::daxpy_kernel(100'000, 3), 16, "daxpy");
  ctr.stop();

  const double truth = 300'000;
  EXPECT_LE(prof.estimated_count(), truth);
  EXPECT_GT(prof.estimated_count(), truth - 10'000);
  EXPECT_EQ(prof.samples(), 30u);
}

TEST_F(Sampling, CoarsePollsAbsorbManyOverflowsAtOnce) {
  PerfCtr ctr(kernel_, {0});
  ctr.add_custom("FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");
  ctr.start();
  const int fixed = static_cast<int>(ctr.assignments_of(0).size()) - 1;
  SamplingProfiler prof(ctr, 0, fixed, /*period=*/1'000);

  // One single poll sees all 100k events: 100 overflows at once.
  run_polled(ctr, prof, workloads::daxpy_kernel(100'000, 1), 1, "all");
  ctr.stop();
  EXPECT_EQ(prof.samples(), 100u);
}

TEST_F(Sampling, HistogramAttributesSamplesToTheFloppyPhase) {
  PerfCtr ctr(kernel_, {0});
  ctr.add_custom("FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");
  ctr.start();
  const int fixed = static_cast<int>(ctr.assignments_of(0).size()) - 1;
  SamplingProfiler prof(ctr, 0, fixed, /*period=*/5'000);

  // Phase A has packed flops; the branchy phase B has none.
  run_polled(ctr, prof, workloads::daxpy_kernel(200'000, 1), 8, "A");
  run_polled(ctr, prof, workloads::branchy_kernel(200'000, 1, 0.1), 8, "B");
  ctr.stop();

  ASSERT_TRUE(prof.histogram().count("A"));
  EXPECT_EQ(prof.histogram().at("A"), prof.samples());
  EXPECT_EQ(prof.histogram().count("B"), 0u);
}

TEST_F(Sampling, OverheadScalesWithSampleCountAndVanishesWithPeriod) {
  const auto overhead_at = [&](std::uint64_t period) {
    hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
    ossim::SimKernel kernel(machine);
    kernel.scheduler().add_busy(0, 1);
    PerfCtr ctr(kernel, {0});
    ctr.add_custom("FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");
    ctr.start();
    const int fixed = static_cast<int>(ctr.assignments_of(0).size()) - 1;
    SamplingProfiler prof(ctr, 0, fixed, period);
    workloads::SyntheticKernel k(workloads::daxpy_kernel(400'000, 1));
    workloads::Placement p;
    p.cpus = {0};
    workloads::RunOptions opts;
    opts.quanta = 8;
    opts.between_quanta = [&](int) { prof.poll("run"); };
    run_workload(kernel, k, p, opts);
    prof.poll("run");
    ctr.stop();
    return prof.overhead_seconds();
  };
  const double fine = overhead_at(1'000);     // 400 interrupts
  const double coarse = overhead_at(100'000);  // 4 interrupts
  EXPECT_GT(fine, 0.0);
  EXPECT_NEAR(fine / coarse, 100.0, 1.0);
}

TEST_F(Sampling, MisuseRejected) {
  PerfCtr ctr(kernel_, {0});
  ctr.add_custom("FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");

  // Not started yet.
  EXPECT_THROW(SamplingProfiler(ctr, 0, 0, 1000), Error);

  ctr.start();
  EXPECT_THROW(SamplingProfiler(ctr, 0, 0, 0), Error);     // zero period
  EXPECT_THROW(SamplingProfiler(ctr, 0, 99, 1000), Error); // bad index
  EXPECT_THROW(SamplingProfiler(ctr, 5, 0, 1000), Error);  // unmeasured cpu
  EXPECT_THROW(SamplingProfiler(ctr, 0, 0, 1000, -1.0), Error);
  ctr.stop();
}

// --- IntervalSampler: the continuous-polling hook --------------------------

TEST_F(Sampling, IntervalPollDeltasTileTheCumulativeCounts) {
  PerfCtr ctr(kernel_, {0});
  ctr.add_custom("FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE");
  ctr.start();
  IntervalSampler sampler(ctr);

  workloads::SyntheticKernel k(workloads::daxpy_kernel(100'000, 1));
  workloads::Placement p;
  p.cpus = {0};
  const std::string ev = "FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE";

  run_workload(kernel_, k, p);
  const IntervalSampler::Interval iv1 = sampler.poll();
  run_workload(kernel_, k, p);
  const IntervalSampler::Interval iv2 = sampler.poll();
  ctr.stop();

  // Equal work per interval -> equal deltas, not growing cumulatives.
  const std::size_t slot = *ctr.slot_of(0, ev);
  EXPECT_NEAR(iv1.counts.at(0, slot), 100'000, 1);
  EXPECT_NEAR(iv2.counts.at(0, slot), iv1.counts.at(0, slot), 1e-6);
  // Intervals tile the timeline and the deltas sum to the cumulative.
  EXPECT_DOUBLE_EQ(iv2.t_start, iv1.t_end);
  EXPECT_GT(iv1.seconds(), 0.0);
  EXPECT_NEAR(ctr.results(0).counts.at(0, slot),
              iv1.counts.at(0, slot) + iv2.counts.at(0, slot), 1e-6);
  // Custom sets have no formulas.
  EXPECT_TRUE(iv1.metrics.empty());
}

TEST_F(Sampling, IntervalPollEvaluatesGroupMetrics) {
  PerfCtr ctr(kernel_, {0});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  IntervalSampler sampler(ctr);

  workloads::SyntheticKernel k(workloads::daxpy_kernel(100'000, 1));
  workloads::Placement p;
  p.cpus = {0};
  run_workload(kernel_, k, p);
  const IntervalSampler::Interval iv = sampler.poll();
  ctr.stop();

  bool found = false;
  for (const auto& row : iv.metrics) {
    if (row.name() == "DP MFlops/s") {
      found = true;
      EXPECT_GT(row.at(0), 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(Sampling, IntervalPollRotatesSets) {
  PerfCtr ctr(kernel_, {0});
  ctr.add_group("FLOPS_DP");
  ctr.add_group("MEM");
  ctr.start();
  IntervalSampler sampler(ctr);

  kernel_.advance_time(0.1);
  const IntervalSampler::Interval iv1 = sampler.poll(/*rotate=*/true);
  EXPECT_EQ(iv1.set, 0);
  EXPECT_EQ(ctr.current_set(), 1);

  kernel_.advance_time(0.1);
  const IntervalSampler::Interval iv2 = sampler.poll(/*rotate=*/true);
  EXPECT_EQ(iv2.set, 1);
  EXPECT_EQ(ctr.current_set(), 0);
  EXPECT_DOUBLE_EQ(iv2.t_start, iv1.t_end);
  ctr.stop();
}

TEST_F(Sampling, IntervalPollRequiresRunningCounters) {
  PerfCtr ctr(kernel_, {0});
  ctr.add_group("FLOPS_DP");
  IntervalSampler sampler(ctr);
  EXPECT_THROW(sampler.poll(), Error);
}

}  // namespace
}  // namespace likwid::core
