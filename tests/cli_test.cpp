// Tests for the CLI layer: argument parsing and the output renderers'
// fidelity to the paper's listing formats.
#include <gtest/gtest.h>

#include "cli/args.hpp"
#include "cli/output.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"

namespace likwid::cli {
namespace {

ArgParser parse(std::initializer_list<const char*> argv,
                std::set<std::string> value_flags = {}) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data(),
                   std::move(value_flags));
}

TEST(Args, FlagsWithoutValues) {
  const auto args = parse({"tool", "-c", "-g"});
  EXPECT_TRUE(args.has("-c"));
  EXPECT_TRUE(args.has("-g"));
  EXPECT_FALSE(args.has("-m"));
  EXPECT_EQ(args.program(), "tool");
}

TEST(Args, FlagsWithValues) {
  const auto args = parse({"tool", "-c", "0-3", "-g", "FLOPS_DP"},
                          {"-c", "-g"});
  EXPECT_EQ(args.value("-c").value(), "0-3");
  EXPECT_EQ(args.value("-g").value(), "FLOPS_DP");
  EXPECT_EQ(args.value_or("-t", "gcc"), "gcc");
}

TEST(Args, PositionalArguments) {
  const auto args = parse({"tool", "-c", "0", "triad", "extra"}, {"-c"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"triad", "extra"}));
}

TEST(Args, MissingValueRejected) {
  EXPECT_THROW(parse({"tool", "-c"}, {"-c"}), Error);
}

TEST(Args, LongOptions) {
  const auto args = parse({"tool", "--machine", "core2-quad", "--xml"},
                          {"--machine"});
  EXPECT_EQ(args.value("--machine").value(), "core2-quad");
  EXPECT_TRUE(args.has("--xml"));
}

TEST(OutputFormat, HeaderMatchesPaperLayout) {
  hwsim::SimMachine machine(hwsim::presets::core2_quad());
  const core::NodeTopology topo = core::probe_topology(machine);
  const std::string header = render_header(topo);
  // "---...---\nCPU name:\t...\nCPU clock:\t2.83 GHz\n---...---\n"
  EXPECT_EQ(header.find(std::string(61, '-')), 0u);
  EXPECT_NE(header.find("CPU name:\tIntel Core 2 45nm processor\n"),
            std::string::npos);
  EXPECT_NE(header.find("CPU clock:\t2.83 GHz\n"), std::string::npos);
}

TEST(OutputFormat, TopologyListsThreadsInOsOrder) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  const core::NodeTopology topo = core::probe_topology(machine);
  const std::string report = render_topology_report(topo, false);
  const std::size_t t0 = report.find("\n0\t");
  const std::size_t t1 = report.find("\n1\t");
  const std::size_t t15 = report.find("\n15\t");
  EXPECT_NE(t0, std::string::npos);
  EXPECT_NE(t1, std::string::npos);
  EXPECT_NE(t15, std::string::npos);
  EXPECT_LT(t0, t1);
  EXPECT_LT(t1, t15);
}

TEST(OutputFormat, NonExtendedReportOmitsCacheDetails) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  const core::NodeTopology topo = core::probe_topology(machine);
  const std::string brief = render_topology_report(topo, false);
  EXPECT_EQ(brief.find("Associativity"), std::string::npos);
  const std::string full = render_topology_report(topo, true);
  EXPECT_NE(full.find("Associativity"), std::string::npos);
  EXPECT_NE(full.find("Number of sets"), std::string::npos);
}

TEST(OutputFormat, AsciiArtBoxesAreAligned) {
  hwsim::SimMachine machine(hwsim::presets::core2_quad());
  const core::NodeTopology topo = core::probe_topology(machine);
  const std::string art = render_topology_ascii(topo);
  // Every line of a socket box has the same width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < art.size()) {
    const std::size_t eol = art.find('\n', pos);
    const std::string line = art.substr(pos, eol - pos);
    if (!line.empty()) {
      if (width == 0) width = line.size();
      EXPECT_EQ(line.size(), width) << "misaligned line: " << line;
    }
    pos = eol + 1;
  }
}

TEST(OutputFormat, FeaturesUsesPaperPhrasing) {
  hwsim::SimMachine machine(hwsim::presets::core2_duo());
  ossim::SimKernel kernel(machine);
  core::Features features(kernel, 0);
  const core::NodeTopology topo = core::probe_topology(machine);
  const std::string out = render_features(topo, 0, features.report());
  EXPECT_NE(out.find("CPU core id:\t0"), std::string::npos);
  EXPECT_NE(out.find("Hardware Prefetcher: enabled"), std::string::npos);
  EXPECT_NE(out.find("Intel Dynamic Acceleration: disabled"),
            std::string::npos);
}

}  // namespace
}  // namespace likwid::cli
