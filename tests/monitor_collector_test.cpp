// Tests for the per-machine Collector and the fleet Agent
// (monitor/collector.hpp, monitor/agent.hpp): sampling cadence, group
// rotation, ring retention, multi-machine determinism and fleet
// heterogeneity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "monitor/agent.hpp"
#include "monitor/collector.hpp"
#include "util/status.hpp"

namespace likwid::monitor {
namespace {

MonitorConfig small_config() {
  MonitorConfig cfg;
  cfg.machine_preset = "nehalem-ep";
  cfg.groups = {"MEM"};
  cfg.interval_seconds = 0.05;
  cfg.ring_capacity = 64;
  cfg.window_samples = 4;
  return cfg;
}

TEST(Collector, SamplesAtTheConfiguredCadence) {
  Collector collector(0, small_config());
  for (int s = 0; s < 10; ++s) collector.step();
  EXPECT_EQ(collector.steps(), 10u);
  ASSERT_EQ(collector.samples().size(), 10u);
  for (std::size_t i = 0; i < collector.samples().size(); ++i) {
    const Sample& s = collector.samples()[i];
    EXPECT_EQ(s.sequence, i);
    EXPECT_EQ(s.group(), "MEM");
    // Each interval covers exactly the cadence (the busy loop sizes its
    // slices to land on the budget) and the samples tile the timeline
    // contiguously.
    EXPECT_NEAR(s.seconds(), 0.05, 1e-9);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(s.t_start, collector.samples()[i - 1].t_end);
    }
  }
  // The kernel clock advanced with the samples.
  EXPECT_GE(collector.kernel().now(), 0.5 - 1e-9);
}

TEST(Collector, ProducesMemMetrics) {
  Collector collector(0, small_config());
  collector.step();
  const Sample& s = collector.samples().back();
  EXPECT_GT(s.value_of("Memory bandwidth [MBytes/s]"), 0.0);
  EXPECT_GT(s.value_of("Runtime [s]"), 0.0);
  EXPECT_THROW(s.value_of("No such metric"), Error);
}

TEST(Collector, RateMetricsReflectUtilizationNotBusyPeak) {
  // Rates are per wall interval (wall_time metric evaluation), so the
  // sawtooth load modulation must show up in the bandwidth samples instead
  // of every interval reporting the machine's busy-peak bandwidth.
  Collector collector(0, small_config());
  for (int s = 0; s < 8; ++s) collector.step();
  double lo = 0;
  double hi = 0;
  for (std::size_t i = 0; i < collector.samples().size(); ++i) {
    const double bw =
        collector.samples()[i].value_of("Memory bandwidth [MBytes/s]");
    EXPECT_GT(bw, 0.0);
    lo = (i == 0) ? bw : std::min(lo, bw);
    hi = std::max(hi, bw);
  }
  EXPECT_LT(lo, hi);
}

TEST(Collector, RotatesGroupsBetweenIntervals) {
  MonitorConfig cfg = small_config();
  cfg.groups = {"MEM", "FLOPS_DP"};
  Collector collector(0, cfg);
  for (int s = 0; s < 4; ++s) collector.step();
  ASSERT_EQ(collector.samples().size(), 4u);
  EXPECT_EQ(collector.samples()[0].group(), "MEM");
  EXPECT_EQ(collector.samples()[1].group(), "FLOPS_DP");
  EXPECT_EQ(collector.samples()[2].group(), "MEM");
  EXPECT_EQ(collector.samples()[3].group(), "FLOPS_DP");
}

TEST(Collector, NoRotatePinsTheFirstGroup) {
  MonitorConfig cfg = small_config();
  cfg.groups = {"MEM", "FLOPS_DP"};
  cfg.rotate_groups = false;
  Collector collector(0, cfg);
  for (int s = 0; s < 3; ++s) collector.step();
  for (std::size_t i = 0; i < collector.samples().size(); ++i) {
    EXPECT_EQ(collector.samples()[i].group(), "MEM");
  }
}

TEST(Collector, RingRetainsOnlyTheNewestSamples) {
  MonitorConfig cfg = small_config();
  cfg.ring_capacity = 6;
  Collector collector(0, cfg);
  for (int s = 0; s < 10; ++s) collector.step();
  EXPECT_EQ(collector.samples().size(), 6u);
  EXPECT_EQ(collector.samples().dropped(), 4u);
  EXPECT_EQ(collector.samples().front().sequence, 4u);
  EXPECT_EQ(collector.samples().back().sequence, 9u);
}

TEST(Collector, RejectsBadConfig) {
  MonitorConfig cfg = small_config();
  cfg.interval_seconds = 0;
  EXPECT_THROW(Collector(0, cfg), Error);
  cfg = small_config();
  cfg.groups.clear();
  EXPECT_THROW(Collector(0, cfg), Error);
  cfg = small_config();
  cfg.machine_preset = "no-such-machine";
  EXPECT_THROW(Collector(0, cfg), Error);
  cfg = small_config();
  cfg.window_samples = 0;  // must fail up front, not after the run
  EXPECT_THROW(Collector(0, cfg), Error);
  EXPECT_THROW(Collector(-1, small_config()), Error);
}

TEST(Collector, IdenticalConfigsAreDeterministic) {
  Collector a(2, small_config());
  Collector b(2, small_config());
  for (int s = 0; s < 8; ++s) {
    a.step();
    b.step();
  }
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    const Sample& sa = a.samples()[i];
    const Sample& sb = b.samples()[i];
    EXPECT_DOUBLE_EQ(sa.t_start, sb.t_start);
    EXPECT_DOUBLE_EQ(sa.t_end, sb.t_end);
    ASSERT_EQ(sa.schema->group_id, sb.schema->group_id);
    ASSERT_EQ(sa.values.size(), sb.values.size());
    for (std::size_t m = 0; m < sa.values.size(); ++m) {
      EXPECT_DOUBLE_EQ(sa.values[m], sb.values[m])
          << core::resolve_name(sa.schema->metric_ids[m]);
    }
  }
}

TEST(Collector, MachinesRunDistinctResidentWorkloads) {
  Collector a(0, small_config());  // daxpy: memory-bound
  Collector b(2, small_config());  // dgemm: compute-bound
  EXPECT_NE(a.workload().name(), b.workload().name());
  for (int s = 0; s < 4; ++s) {
    a.step();
    b.step();
  }
  // The memory-bound machine moves more data than the compute-bound one.
  double vol_a = 0;
  double vol_b = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    vol_a += a.samples()[i].value_of("Memory data volume [GBytes]");
    vol_b += b.samples()[i].value_of("Memory data volume [GBytes]");
  }
  EXPECT_GT(vol_a, vol_b);
}

TEST(Agent, RunsTheWholeFleetInLockstep) {
  AgentConfig cfg;
  cfg.monitor = small_config();
  cfg.num_machines = 3;
  cfg.duration_seconds = 0.5;  // 10 intervals of 50 ms
  Agent agent(cfg);
  agent.run();
  EXPECT_EQ(agent.steps(), 10u);
  ASSERT_EQ(agent.collectors().size(), 3u);
  for (const auto& collector : agent.collectors()) {
    EXPECT_EQ(collector->steps(), 10u);
    EXPECT_EQ(collector->samples().size(), 10u);
  }
}

TEST(Agent, FleetRollupsAreDeterministic) {
  AgentConfig cfg;
  cfg.monitor = small_config();
  cfg.num_machines = 2;
  cfg.duration_seconds = 0.4;
  Agent a(cfg);
  Agent b(cfg);
  a.run();
  b.run();
  const auto ra = a.rollups();
  const auto rb = b.rollups();
  ASSERT_EQ(ra.size(), rb.size());
  ASSERT_FALSE(ra.empty());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].machine_id, rb[i].machine_id);
    EXPECT_EQ(ra[i].metric_id, rb[i].metric_id);
    EXPECT_DOUBLE_EQ(ra[i].stats.avg, rb[i].stats.avg);
    EXPECT_DOUBLE_EQ(ra[i].stats.p95, rb[i].stats.p95);
  }
}

TEST(Agent, RejectsBadConfig) {
  AgentConfig cfg;
  cfg.monitor = small_config();
  cfg.num_machines = 0;
  EXPECT_THROW(Agent{cfg}, Error);
  cfg.num_machines = 1;
  cfg.duration_seconds = 0;
  EXPECT_THROW(Agent{cfg}, Error);
}

}  // namespace
}  // namespace likwid::monitor
