// Tests for the performance model: bandwidth waterfilling and the slice
// timing estimator (saturation, SMT, oversubscription, NUMA penalties).
#include <gtest/gtest.h>

#include "hwsim/presets.hpp"
#include "perfmodel/bandwidth.hpp"
#include "perfmodel/exec_model.hpp"
#include "util/status.hpp"

namespace likwid::perfmodel {
namespace {

BandwidthDemand demand(double gbs, std::vector<double> fractions) {
  BandwidthDemand d;
  d.desired_gbs = gbs;
  d.domain_fraction = std::move(fractions);
  return d;
}

TEST(Bandwidth, UnconstrainedDemandsPassThrough) {
  const auto got = allocate_bandwidth({demand(5, {1.0}), demand(3, {1.0})},
                                      {20.0});
  EXPECT_DOUBLE_EQ(got[0], 5.0);
  EXPECT_DOUBLE_EQ(got[1], 3.0);
}

TEST(Bandwidth, OverloadedDomainScalesProportionally) {
  const auto got = allocate_bandwidth(
      {demand(15, {1.0}), demand(15, {1.0})}, {20.0});
  EXPECT_NEAR(got[0], 10.0, 1e-6);
  EXPECT_NEAR(got[1], 10.0, 1e-6);
}

TEST(Bandwidth, AsymmetricDemandsKeepRatios) {
  const auto got = allocate_bandwidth(
      {demand(30, {1.0}), demand(10, {1.0})}, {20.0});
  EXPECT_NEAR(got[0] / got[1], 3.0, 1e-6);
  EXPECT_NEAR(got[0] + got[1], 20.0, 1e-6);
}

TEST(Bandwidth, IndependentDomainsDoNotInterfere) {
  const auto got = allocate_bandwidth(
      {demand(15, {1.0, 0.0}), demand(15, {0.0, 1.0})}, {20.0, 20.0});
  EXPECT_DOUBLE_EQ(got[0], 15.0);
  EXPECT_DOUBLE_EQ(got[1], 15.0);
}

TEST(Bandwidth, SplitTrafficSqueezedByBindingDomain) {
  // One thread pulls half local, half remote; the remote domain is
  // saturated by another consumer.
  const auto got = allocate_bandwidth(
      {demand(10, {0.5, 0.5}), demand(20, {0.0, 1.0})}, {20.0, 20.0});
  // Domain 1 carries 5 + 20 = 25 > 20: everything touching it slows down.
  EXPECT_LT(got[0], 10.0);
  EXPECT_LT(got[1], 20.0);
  double util1 = got[0] * 0.5 + got[1];
  EXPECT_LE(util1, 20.0 + 1e-6);
}

TEST(Bandwidth, ZeroDemandAllowed) {
  const auto got = allocate_bandwidth({demand(0, {}), demand(5, {1.0})},
                                      {20.0});
  EXPECT_DOUBLE_EQ(got[0], 0.0);
  EXPECT_DOUBLE_EQ(got[1], 5.0);
}

TEST(Bandwidth, InvalidInputsRejected) {
  EXPECT_THROW(allocate_bandwidth({demand(-1, {1.0})}, {20.0}), Error);
  EXPECT_THROW(allocate_bandwidth({demand(5, {1.0})}, {0.0}), Error);
  EXPECT_THROW(allocate_bandwidth({demand(5, {1.0, 0.0})}, {20.0}), Error);
}

class ExecModel : public ::testing::Test {
 protected:
  ExecModel()
      : machine(hwsim::presets::westmere_ep()),
        model(default_model(machine.spec())),
        load(static_cast<std::size_t>(machine.num_threads()), 0) {}

  ThreadWork stream_work(int cpu, double gb) {
    ThreadWork w;
    w.cpu = cpu;
    w.iterations = gb * 1e9 / 32.0;
    w.cycles_per_iter = 2.0;
    w.l2_bytes = gb * 1e9;
    w.l3_bytes = gb * 1e9;
    w.mem_bytes_by_socket.assign(2, 0.0);
    w.mem_bytes_by_socket[static_cast<std::size_t>(
        machine.socket_of(cpu))] = gb * 1e9;
    return w;
  }

  hwsim::SimMachine machine;
  MachineModel model;
  std::vector<int> load;
};

TEST_F(ExecModel, SingleThreadIsMemoryBoundAtThreadCap) {
  load[0] = 1;
  const auto r = estimate_slice(model, machine, {stream_work(0, 1.0)}, load);
  // 1 GB at 14 GB/s thread cap.
  EXPECT_NEAR(r.seconds, 1.0 / 14.0, 1e-3);
}

TEST_F(ExecModel, SocketSaturatesAtSocketCap) {
  std::vector<ThreadWork> work;
  for (const int cpu : {0, 1, 2}) {  // three cores of socket 0
    work.push_back(stream_work(cpu, 1.0));
    load[static_cast<std::size_t>(cpu)] = 1;
  }
  const auto r = estimate_slice(model, machine, work, load);
  // 3 GB total at the 28 GB/s socket cap.
  EXPECT_NEAR(r.seconds, 3.0 / 28.0, 2e-3);
}

TEST_F(ExecModel, TwoSocketsDoubleTheThroughput) {
  std::vector<ThreadWork> work;
  for (const int cpu : {0, 1, 2, 6, 7, 8}) {  // 3 cores on each socket
    work.push_back(stream_work(cpu, 1.0));
    load[static_cast<std::size_t>(cpu)] = 1;
  }
  const auto r = estimate_slice(model, machine, work, load);
  EXPECT_NEAR(r.seconds, 3.0 / 28.0, 2e-3);  // same time, twice the data
}

TEST_F(ExecModel, OversubscriptionStretchesCoreTime) {
  // Two workers time-slicing one cpu on a compute-bound kernel.
  ThreadWork w;
  w.cpu = 0;
  w.iterations = 1e9;
  w.cycles_per_iter = 2.0;
  w.mem_bytes_by_socket.assign(2, 0.0);
  load[0] = 2;
  const auto solo_load = std::vector<int>(load.size(), 0);
  auto solo = solo_load;
  solo[0] = 1;
  const auto alone = estimate_slice(model, machine, {w}, solo);
  const auto shared = estimate_slice(model, machine, {w, w}, load);
  EXPECT_NEAR(shared.seconds / alone.seconds, 2.0, 0.01);
}

TEST_F(ExecModel, SmtSiblingSharesTheCore) {
  ThreadWork w;
  w.cpu = 0;
  w.iterations = 1e9;
  w.cycles_per_iter = 2.0;
  w.mem_bytes_by_socket.assign(2, 0.0);
  ThreadWork sib = w;
  sib.cpu = 12;  // SMT sibling of cpu 0 on Westmere
  load[0] = 1;
  load[12] = 1;
  TimingOptions opts;
  opts.smt_share = 0.5;
  const auto r = estimate_slice(model, machine, {w, sib}, load, opts);
  std::vector<int> solo_load(load.size(), 0);
  solo_load[0] = 1;
  const auto solo = estimate_slice(model, machine, {w}, solo_load, opts);
  EXPECT_NEAR(r.seconds / solo.seconds, 2.0, 0.01);
}

TEST_F(ExecModel, RemoteTrafficPaysThePenalty) {
  ThreadWork local = stream_work(0, 1.0);
  ThreadWork remote = stream_work(0, 1.0);
  // All of the remote thread's data homed on socket 1.
  remote.mem_bytes_by_socket = {0.0, 1e9};
  std::vector<int> l(load.size(), 0);
  l[0] = 1;
  const auto rl = estimate_slice(model, machine, {local}, l);
  const auto rr = estimate_slice(model, machine, {remote}, l);
  EXPECT_NEAR(rr.seconds / rl.seconds, 1.0 / model.remote_factor, 0.01);
}

TEST_F(ExecModel, QpiLinkCapsAggregateRemoteTraffic) {
  // Six socket-0 threads all streaming from socket 1's memory: the
  // aggregate is limited by the interconnect (28 * 0.7 = 19.6 GB/s), not
  // by the remote controller's full 28 GB/s.
  std::vector<ThreadWork> work;
  for (const int cpu : {0, 1, 2, 3, 4, 5}) {
    ThreadWork w = stream_work(cpu, 1.0);
    w.mem_bytes_by_socket = {0.0, 1e9};
    work.push_back(w);
    load[static_cast<std::size_t>(cpu)] = 1;
  }
  const auto r = estimate_slice(model, machine, work, load);
  EXPECT_NEAR(r.seconds, 6.0 / model.qpi_gbs, 3e-3);
}

TEST_F(ExecModel, QpiLinkIsSharedByBothDirections) {
  // Three threads per socket, each streaming from the *other* socket:
  // all six flows share the one link between the pair.
  std::vector<ThreadWork> work;
  for (const int cpu : {0, 1, 2}) {
    ThreadWork w = stream_work(cpu, 1.0);
    w.mem_bytes_by_socket = {0.0, 1e9};
    work.push_back(w);
    load[static_cast<std::size_t>(cpu)] = 1;
  }
  for (const int cpu : {6, 7, 8}) {
    ThreadWork w = stream_work(cpu, 1.0);
    w.mem_bytes_by_socket = {1e9, 0.0};
    work.push_back(w);
    load[static_cast<std::size_t>(cpu)] = 1;
  }
  const auto r = estimate_slice(model, machine, work, load);
  EXPECT_NEAR(r.seconds, 6.0 / model.qpi_gbs, 3e-3);
}

TEST_F(ExecModel, LocalStreamUnaffectedByQpiSaturation) {
  // One local stream next to five QPI-saturating remote streams: the
  // local thread still runs at its own 14 GB/s cap (the controller has
  // headroom; only the link is saturated).
  std::vector<ThreadWork> work;
  work.push_back(stream_work(0, 1.0));  // local on socket 0
  load[0] = 1;
  for (const int cpu : {1, 2, 3, 4, 5}) {
    ThreadWork w = stream_work(cpu, 1.0);
    w.mem_bytes_by_socket = {0.0, 1e9};
    work.push_back(w);
    load[static_cast<std::size_t>(cpu)] = 1;
  }
  const auto r = estimate_slice(model, machine, work, load);
  EXPECT_NEAR(r.thread_seconds[0], 1.0 / 14.0, 2e-3);
  EXPECT_GT(r.thread_seconds[1], 1.0 / 14.0);
}

TEST_F(ExecModel, SingleSocketSpecsDisableTheLinkCap) {
  const auto bloom =
      default_model(hwsim::presets::nehalem_bloomfield());
  EXPECT_DOUBLE_EQ(bloom.qpi_gbs, 0.0);
  // Dual-socket parts with a remote penalty expose a positive link rate.
  EXPECT_GT(model.qpi_gbs, 0.0);
  EXPECT_LT(model.qpi_gbs, model.mem_bw_socket_gbs);
}

TEST_F(ExecModel, PrefetchFactorReducesBandwidth) {
  ThreadWork w = stream_work(0, 1.0);
  w.prefetch_factor = 0.6;
  std::vector<int> l(load.size(), 0);
  l[0] = 1;
  const auto slow = estimate_slice(model, machine, {w}, l);
  w.prefetch_factor = 1.0;
  const auto fast = estimate_slice(model, machine, {w}, l);
  EXPECT_NEAR(slow.seconds / fast.seconds, 1.0 / 0.6, 0.01);
}

TEST_F(ExecModel, ComputeBoundIgnoresBandwidth) {
  ThreadWork w;
  w.cpu = 0;
  w.iterations = 1e9;
  w.cycles_per_iter = 10.0;  // heavy core work
  w.mem_bytes_by_socket.assign(2, 0.0);
  w.mem_bytes_by_socket[0] = 1e6;  // negligible traffic
  std::vector<int> l(load.size(), 0);
  l[0] = 1;
  const auto r = estimate_slice(model, machine, {w}, l);
  EXPECT_NEAR(r.seconds, 1e10 / (2.93e9), 1e-2);
}

TEST_F(ExecModel, CyclesMatchSeconds) {
  std::vector<int> l(load.size(), 0);
  l[0] = 1;
  const auto r = estimate_slice(model, machine, {stream_work(0, 1.0)}, l);
  EXPECT_NEAR(r.thread_cycles[0], r.thread_seconds[0] * 2.93e9, 1.0);
}

TEST_F(ExecModel, InvalidWorkRejected) {
  ThreadWork w;
  w.cpu = 99;
  EXPECT_THROW(estimate_slice(model, machine, {w}, load), Error);
  ThreadWork bad = stream_work(0, 1.0);
  bad.mem_bytes_by_socket = {1.0};  // wrong arity
  EXPECT_THROW(estimate_slice(model, machine, {bad}, load), Error);
}

TEST_F(ExecModel, DefaultModelTracksSpec) {
  const auto m = default_model(machine.spec());
  EXPECT_DOUBLE_EQ(m.clock_ghz, 2.93);
  EXPECT_DOUBLE_EQ(m.mem_bw_socket_gbs, 28.0);
  EXPECT_DOUBLE_EQ(m.mem_bw_thread_gbs, 14.0);
  EXPECT_DOUBLE_EQ(m.remote_factor, 0.7);
}

}  // namespace
}  // namespace likwid::perfmodel
