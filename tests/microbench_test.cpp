// Tests for the likwid-bench subsystem: the workgroup grammar and its
// affinity-domain resolution, the kernel registry, working-set slicing
// with sweep auto-calibration, pinned threaded execution measured through
// the api::Session, the ResultTable report, and the perfmodel
// cross-validation that closes the loop between measured kernels and the
// machine model.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "api/session.hpp"
#include "cli/sinks.hpp"
#include "hwsim/presets.hpp"
#include "microbench/kernels.hpp"
#include "microbench/runner.hpp"
#include "microbench/workgroup.hpp"
#include "perfmodel/exec_model.hpp"
#include "util/status.hpp"

namespace likwid::microbench {
namespace {

core::NodeTopology westmere_topology() {
  const hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  return core::probe_topology(machine);
}

// --- workgroup grammar ------------------------------------------------------

TEST(WorkgroupParse, DomainAndSize) {
  const WorkgroupSpec spec = parse_workgroup("S0:1MB");
  EXPECT_EQ(spec.domain, "S0");
  EXPECT_EQ(spec.size_bytes, 1024u * 1024);
  EXPECT_EQ(spec.num_threads, -1);  // all threads of the domain
  EXPECT_EQ(spec.chunk, 1);
  EXPECT_EQ(spec.stride, 1);
}

TEST(WorkgroupParse, ThreadCountAndChunkStride) {
  const WorkgroupSpec spec = parse_workgroup("N:2GB:8:2:4");
  EXPECT_EQ(spec.domain, "N");
  EXPECT_EQ(spec.size_bytes, 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(spec.num_threads, 8);
  EXPECT_EQ(spec.chunk, 2);
  EXPECT_EQ(spec.stride, 4);
}

TEST(WorkgroupParse, RejectsMalformed) {
  EXPECT_THROW(parse_workgroup("S0"), Error);            // no size
  EXPECT_THROW(parse_workgroup("S0:1MB:2:1"), Error);    // chunk sans stride
  EXPECT_THROW(parse_workgroup("S0:1MB:2:1:2:9"), Error);
  EXPECT_THROW(parse_workgroup(":1MB"), Error);          // empty domain
  EXPECT_THROW(parse_workgroup("S0:xMB"), Error);        // bad size
  EXPECT_THROW(parse_workgroup("S0:0MB"), Error);        // zero size
  EXPECT_THROW(parse_workgroup("S0:1MB:0"), Error);      // zero threads
  EXPECT_THROW(parse_workgroup("S0:1MB:2:2:1"), Error);  // stride < chunk
  EXPECT_THROW(parse_workgroup("S0:1MB:2:0:1"), Error);  // zero chunk
}

TEST(WorkgroupParse, RejectsFieldsBeyondIntRange) {
  // 2^32 used to truncate to 0 threads (SIGFPE in bytes_per_thread) and
  // 2^32+2 to silently run 2 threads; both must be rejected as parsed.
  EXPECT_THROW(parse_workgroup("S0:1MB:4294967296"), Error);
  EXPECT_THROW(parse_workgroup("S0:1MB:4294967298"), Error);
  EXPECT_THROW(parse_workgroup("S0:1MB:2:1:4294967296"), Error);
  EXPECT_THROW(parse_workgroup("S0:1MB:2:4294967297:4294967298"), Error);
}

// --- affinity domains -------------------------------------------------------

TEST(AffinityDomains, WestmereLabels) {
  const core::NodeTopology topo = westmere_topology();
  const auto domains = affinity_domains(topo);
  std::vector<std::string> labels;
  for (const auto& [label, cpus] : domains) labels.push_back(label);
  EXPECT_EQ(labels, (std::vector<std::string>{"N", "S0", "S1", "C0", "C1",
                                              "M0", "M1"}));
  for (const auto& [label, cpus] : domains) {
    EXPECT_EQ(cpus.size(), label == "N" ? 24u : 12u) << label;
  }
}

TEST(AffinityDomains, PhysicalCoresListedFirst) {
  const core::NodeTopology topo = westmere_topology();
  // Westmere EP: os ids 0-11 are physical cores, 12-23 SMT siblings.
  const std::vector<int> s0 = affinity_domain_cpus(topo, "S0");
  for (int i = 0; i < 6; ++i) EXPECT_LT(s0[static_cast<std::size_t>(i)], 12);
  for (int i = 6; i < 12; ++i) EXPECT_GE(s0[static_cast<std::size_t>(i)], 12);
  // Socket and memory domains coincide on the modeled machines; the
  // second cache group lives on socket 1.
  EXPECT_EQ(affinity_domain_cpus(topo, "M1"), affinity_domain_cpus(topo, "S1"));
  EXPECT_EQ(affinity_domain_cpus(topo, "C1"), affinity_domain_cpus(topo, "S1"));
}

TEST(AffinityDomains, RejectsUnknownLabels) {
  const core::NodeTopology topo = westmere_topology();
  EXPECT_THROW(affinity_domain_cpus(topo, "S2"), Error);
  EXPECT_THROW(affinity_domain_cpus(topo, "M7"), Error);
  EXPECT_THROW(affinity_domain_cpus(topo, "C9"), Error);
  EXPECT_THROW(affinity_domain_cpus(topo, "X0"), Error);
  EXPECT_THROW(affinity_domain_cpus(topo, "Sx"), Error);
  // Indices beyond int used to truncate: 2^32 aliased socket 0 and
  // 2^64-1 indexed sockets[-1] (out-of-bounds read). Both must throw.
  EXPECT_THROW(affinity_domain_cpus(topo, "S4294967296"), Error);
  EXPECT_THROW(affinity_domain_cpus(topo, "S18446744073709551615"), Error);
  EXPECT_THROW(affinity_domain_cpus(topo, "C4294967296"), Error);
}

TEST(WorkgroupResolve, DefaultsToWholeDomain) {
  const core::NodeTopology topo = westmere_topology();
  const Workgroup group = resolve_workgroup(topo, parse_workgroup("S1:1MB"));
  EXPECT_EQ(group.num_threads(), 12);
  EXPECT_EQ(group.spec.num_threads, 12);
  EXPECT_EQ(group.bytes_per_thread(), 1024u * 1024 / 12);
}

TEST(WorkgroupResolve, ChunkStrideSelection) {
  const core::NodeTopology topo = westmere_topology();
  // Every second entry of the physical-first S0 list: cores 0,2,4.
  const Workgroup every_other =
      resolve_workgroup(topo, parse_workgroup("S0:1MB:3:1:2"));
  EXPECT_EQ(every_other.cpus, (std::vector<int>{0, 2, 4}));
  // Chunk 2, stride 4: two consecutive entries, skip two.
  const Workgroup paired =
      resolve_workgroup(topo, parse_workgroup("S0:1MB:4:2:4"));
  EXPECT_EQ(paired.cpus, (std::vector<int>{0, 1, 4, 5}));
}

TEST(WorkgroupResolve, RejectsExhaustedDomain) {
  const core::NodeTopology topo = westmere_topology();
  EXPECT_THROW(resolve_workgroup(topo, parse_workgroup("S0:1MB:13")), Error);
  EXPECT_THROW(resolve_workgroup(topo, parse_workgroup("S0:1MB:12:1:2")),
               Error);
  // A working set below one element per thread is meaningless.
  EXPECT_THROW(resolve_workgroup(topo, parse_workgroup("S0:8B:4")), Error);
}

// --- kernel registry --------------------------------------------------------

TEST(KernelRegistry, ShipsThePaperSet) {
  std::set<std::string> names;
  for (const auto& k : kernel_registry()) names.insert(k.name);
  EXPECT_EQ(names, (std::set<std::string>{"copy", "load", "store",
                                          "stream_triad", "daxpy", "sum",
                                          "peakflops"}));
}

TEST(KernelRegistry, DescriptorsAreConsistent) {
  for (const auto& k : kernel_registry()) {
    SCOPED_TRACE(k.name);
    EXPECT_GE(k.streams, 1);
    EXPECT_GT(k.reported_bytes_per_iter, 0.0);
    ASSERT_NE(k.make, nullptr);
    const workloads::SyntheticConfig cfg = k.make(1000, 2);
    EXPECT_DOUBLE_EQ(cfg.iterations_per_sweep, 1000.0);
    EXPECT_EQ(cfg.sweeps, 2);
    // The working set covers `streams` arrays of 1000 doubles.
    EXPECT_EQ(cfg.access.working_set_bytes,
              static_cast<std::uint64_t>(k.streams) * 8 * 1000);
    // The advertised flop rate matches the instruction mix the kernel
    // actually posts (packed ops carry 2 double flops).
    EXPECT_DOUBLE_EQ(
        2.0 * cfg.mix.packed_double + cfg.mix.scalar_double,
        k.flops_per_iter);
  }
}

TEST(KernelRegistry, ElementsForBytesSlices) {
  const KernelDesc& triad = kernel_by_name("stream_triad");
  EXPECT_EQ(triad.streams, 3);
  EXPECT_EQ(triad.elements_for_bytes(3 * 8 * 1000), 1000u);
  EXPECT_EQ(triad.elements_for_bytes(10), 1u);  // never zero elements
  EXPECT_THROW(kernel_by_name("fft"), Error);
}

// --- runner -----------------------------------------------------------------

std::unique_ptr<api::Session> make_session() {
  return api::Session::configure().name("microbench-test").build();
}

BenchOptions options_for(const std::string& workgroup,
                         const std::string& kernel) {
  BenchOptions options;
  options.workgroup = parse_workgroup(workgroup);
  options.kernel = kernel;
  return options;
}

TEST(BenchRunner, RunsPinnedAndReportsBandwidth) {
  const auto session = make_session();
  BenchOptions options = options_for("S0:1MB:2", "stream_triad");
  options.sweeps = 50;
  const BenchResult result = run_bench(*session, options);

  EXPECT_EQ(result.kernel, "stream_triad");
  EXPECT_EQ(result.workgroup.cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(result.sweeps, 50);
  // 1MB over 2 threads over 3 arrays of doubles.
  EXPECT_EQ(result.elements_per_thread, 1024u * 1024 / 2 / (3 * 8));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.bandwidth_mbs, 0.0);
  EXPECT_GT(result.mflops, 0.0);
  EXPECT_GT(result.traffic_gbs, 0.0);

  // The report rides the ResultTable/OutputSink model.
  const api::ResultTable& table = result.table;
  EXPECT_EQ(table.group, "likwid-bench stream_triad");
  EXPECT_TRUE(table.has_metrics);
  EXPECT_EQ(table.cpus, result.workgroup.cpus);
  ASSERT_EQ(table.metrics.size(), 5u);
  double bandwidth_total = 0;
  for (const auto& row : table.metrics) {
    ASSERT_EQ(row.values.size(), 2u) << row.name;
    if (row.name == "Bandwidth [MBytes/s]") {
      for (const double v : row.values) bandwidth_total += v;
    }
  }
  EXPECT_NEAR(bandwidth_total, result.bandwidth_mbs,
              1e-9 * result.bandwidth_mbs);
}

TEST(BenchRunner, AutoCalibrationHitsTheTargetRuntime) {
  const auto session = make_session();
  BenchOptions options = options_for("S0:256kB:1", "copy");
  options.target_seconds = 0.5;  // sweeps = 0: calibrate
  const BenchResult result = run_bench(*session, options);
  EXPECT_GT(result.sweeps, 1);
  // One sweep over 256kB is microseconds; calibration must land the
  // measured runtime within one sweep of the target.
  EXPECT_GE(result.seconds, 0.5 * 0.9);
  EXPECT_LE(result.seconds, 0.5 * 1.1);
}

TEST(BenchRunner, EveryKernelRunsOnEveryRegime) {
  for (const auto& kernel : kernel_registry()) {
    for (const std::string workgroup : {"S0:64kB:1", "S0:4MB:4", "N:64MB:4"}) {
      SCOPED_TRACE(kernel.name + " " + workgroup);
      const auto session = make_session();
      BenchOptions options = options_for(workgroup, kernel.name);
      options.sweeps = 3;
      options.validate = true;
      const BenchResult result = run_bench(*session, options);
      EXPECT_GT(result.bandwidth_mbs, 0.0);
      ASSERT_TRUE(result.validation.has_value());
      EXPECT_TRUE(result.validation->pass)
          << result.validation->bound << " measured "
          << result.validation->measured_mbs << " predicted "
          << result.validation->predicted_mbs << " error "
          << result.validation->rel_error;
    }
  }
}

TEST(BenchRunner, MeasuresThroughTheSessionCounters) {
  const auto session = make_session();
  BenchOptions options = options_for("S0:64MB:2", "stream_triad");
  options.sweeps = 2;
  options.groups = {"MEM"};
  const BenchResult result = run_bench(*session, options);

  ASSERT_EQ(result.measurements.size(), 1u);
  const api::ResultTable& mem = result.measurements.front();
  EXPECT_EQ(mem.group, "MEM");
  EXPECT_TRUE(mem.has_metrics);
  double counter_mbs = 0;
  for (const auto& row : mem.metrics) {
    if (row.name == "Memory bandwidth [MBytes/s]") {
      for (const double v : row.values) counter_mbs += v;
    }
  }
  // The counters saw the same run the bench timed: the PMU-derived
  // bandwidth equals the actual traffic the kernel reports (write
  // allocate included), which exceeds the STREAM-convention number.
  EXPECT_NEAR(counter_mbs, result.traffic_gbs * 1e3,
              0.01 * counter_mbs);
  EXPECT_GT(counter_mbs, result.bandwidth_mbs);
}

TEST(BenchRunner, MultipleGroupsRotate) {
  const auto session = make_session();
  BenchOptions options = options_for("S0:32MB:2", "daxpy");
  options.sweeps = 4;
  options.groups = {"MEM", "FLOPS_DP"};
  const BenchResult result = run_bench(*session, options);
  ASSERT_EQ(result.measurements.size(), 2u);
  EXPECT_EQ(result.measurements[0].group, "MEM");
  EXPECT_EQ(result.measurements[1].group, "FLOPS_DP");
  // Both multiplexed sets saw a share of the run and extrapolate to
  // nonzero derived metrics.
  for (const auto& table : result.measurements) {
    double total = 0;
    for (const auto& row : table.metrics) {
      for (const double v : row.values) total += v;
    }
    EXPECT_GT(total, 0.0) << table.group;
  }
}

TEST(BenchRunner, SinksRenderTheReport) {
  const auto session = make_session();
  BenchOptions options = options_for("S0:1MB:2", "sum");
  options.sweeps = 10;
  const BenchResult result = run_bench(*session, options);

  const std::string ascii = cli::AsciiSink().measurement(result.table);
  EXPECT_NE(ascii.find("likwid-bench sum"), std::string::npos);
  EXPECT_NE(ascii.find("Bandwidth [MBytes/s]"), std::string::npos);
  EXPECT_EQ(ascii.find("| Event"), std::string::npos);  // metric-only table
  const std::string csv = cli::CsvSink().measurement(result.table);
  EXPECT_NE(csv.find("GROUP,likwid-bench sum"), std::string::npos);
  EXPECT_EQ(csv.find("Event,Counter"), std::string::npos);
  const std::string xml = cli::XmlSink().measurement(result.table);
  EXPECT_NE(xml.find("<measurement"), std::string::npos);
  EXPECT_NE(xml.find("Bandwidth [MBytes/s]"), std::string::npos);
}

// --- model validation -------------------------------------------------------

TEST(ModelValidation, MemoryBoundMatchesWaterfilledPrediction) {
  const auto session = make_session();
  BenchOptions options = options_for("S0:512MB:6", "stream_triad");
  options.sweeps = 1;
  options.validate = true;
  const BenchResult result = run_bench(*session, options);
  ASSERT_TRUE(result.validation.has_value());
  const ModelValidation& v = *result.validation;
  EXPECT_EQ(v.bound, "MEM");
  EXPECT_LE(v.rel_error, v.tolerance);
  // Six Westmere threads saturate the socket controller: the waterfilled
  // prediction sits at the socket cap, not at 6x the single-thread rate.
  const auto model =
      perfmodel::default_model(session->machine().spec());
  const double socket_traffic_mbs = model.mem_bw_socket_gbs * 1e3;
  // Reported bandwidth is 24/32 of the actual traffic for the triad.
  EXPECT_NEAR(v.predicted_mbs, socket_traffic_mbs * 24.0 / 32.0,
              0.02 * v.predicted_mbs);
}

TEST(ModelValidation, CacheResidentRunsAreNotMemoryBound) {
  const auto session = make_session();
  BenchOptions options = options_for("S0:64kB:1", "load");
  options.sweeps = 100;
  options.validate = true;
  const BenchResult result = run_bench(*session, options);
  ASSERT_TRUE(result.validation.has_value());
  EXPECT_NE(result.validation->bound, "MEM");
  EXPECT_TRUE(result.validation->pass);
}

TEST(ModelValidation, SmtSiblingsShareTheCore) {
  // Chunk 2 / stride 2 over... the physical-first list gives cores 0,1;
  // to land on an SMT pair, select explicitly: 12 threads fill both.
  const auto session = make_session();
  BenchOptions options = options_for("S0:48kB:12", "peakflops");
  options.sweeps = 50;
  options.validate = true;
  const BenchResult result = run_bench(*session, options);
  ASSERT_TRUE(result.validation.has_value());
  // All 12 hardware threads of the socket: every worker has a busy SMT
  // sibling, and the prediction still tracks the simulated run.
  EXPECT_TRUE(result.validation->pass)
      << result.validation->rel_error;
}

}  // namespace
}  // namespace likwid::microbench
