// Tests for the wire-format primitives (collect/codec.hpp): varint and
// zigzag round-trips with malformed-input rejection, MSB-first bit I/O,
// the Gorilla XOR double codec (losslessness over every value class,
// window reuse/regrow transitions) and the chainable CRC32.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "collect/codec.hpp"

namespace likwid::collect {
namespace {

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {
      0,   1,   127, 128,  129,   16383, 16384,
      255, 300, 1ull << 32, 1ull << 62, std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t value : cases) {
    Bytes out;
    put_uvarint(out, value);
    ByteReader reader(out);
    const auto back = reader.uvarint();
    ASSERT_TRUE(back.has_value()) << value;
    EXPECT_EQ(*back, value);
    EXPECT_EQ(reader.remaining(), 0u);
  }
}

TEST(Varint, SmallValuesCostOneByte) {
  for (std::uint64_t v = 0; v < 128; ++v) {
    Bytes out;
    put_uvarint(out, v);
    EXPECT_EQ(out.size(), 1u);
  }
}

TEST(Varint, RejectsTruncatedInput) {
  Bytes out;
  put_uvarint(out, 1ull << 40);
  out.pop_back();  // continuation bit set but stream ends
  ByteReader reader(out);
  EXPECT_FALSE(reader.uvarint().has_value());
  EXPECT_FALSE(reader.ok());
}

TEST(Varint, RejectsOverlongEncoding) {
  // Eleven continuation bytes encode more than 64 bits.
  const Bytes overlong(11, 0x80);
  ByteReader reader(overlong);
  EXPECT_FALSE(reader.uvarint().has_value());
}

TEST(Zigzag, FoldsSignsSmall) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  const std::int64_t cases[] = {0, 1, -1, 63, -64,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t value : cases) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(value)), value);
    Bytes out;
    put_svarint(out, value);
    ByteReader reader(out);
    const auto back = reader.svarint();
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, value);
  }
}

TEST(ByteReaderTest, BytesAndU32AreBoundsChecked) {
  const Bytes data = {1, 2, 3, 4, 5};
  ByteReader reader(data);
  const auto first = reader.bytes(3);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[2], 3);
  EXPECT_FALSE(reader.bytes(3).has_value());  // only 2 remain
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);  // failed readers report nothing left

  ByteReader le(data);
  const auto word = le.u32le();
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(*word, 0x04030201u);
}

TEST(BitIo, RoundTripsMixedWidths) {
  BitWriter writer;
  writer.put_bit(true);
  writer.put_bits(0b1011, 4);
  writer.put_bits(0xDEADBEEFCAFEBABEull, 64);
  writer.put_bits(0, 7);
  writer.put_bit(true);
  const Bytes& bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_TRUE(reader.get_bit());
  EXPECT_EQ(reader.get_bits(4), 0b1011u);
  EXPECT_EQ(reader.get_bits(64), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(reader.get_bits(7), 0u);
  EXPECT_TRUE(reader.get_bit());
  EXPECT_TRUE(reader.ok());
}

TEST(BitIo, ReaderFailsPermanentlyPastEnd) {
  BitWriter writer;
  writer.put_bits(0b101, 3);
  BitReader reader(writer.finish());
  reader.get_bits(8);  // consumes the padded byte
  reader.get_bit();    // past the end
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.get_bits(16), 0u);  // failed reader yields zeros
}

/// Round-trip a double series through the XOR codec and require exact
/// bit patterns back (NaN-safe: compares representations, not values).
void expect_xor_roundtrip(const std::vector<double>& series) {
  BitWriter writer;
  XorDoubleEncoder encoder;
  for (const double v : series) encoder.append(writer, v);
  BitReader reader(writer.finish());
  XorDoubleDecoder decoder;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double back = decoder.next(reader);
    std::uint64_t want = 0, got = 0;
    std::memcpy(&want, &series[i], sizeof(want));
    std::memcpy(&got, &back, sizeof(got));
    ASSERT_EQ(got, want) << "index " << i << " value " << series[i];
  }
  EXPECT_TRUE(reader.ok());
}

TEST(XorCodec, ConstantSeriesCostsOneBitPerRepeat) {
  BitWriter writer;
  XorDoubleEncoder encoder;
  for (int i = 0; i < 65; ++i) encoder.append(writer, 42.0);
  // 64 bits for the first value + 1 bit per repeat.
  EXPECT_EQ(writer.bit_count(), 64u + 64u);
  expect_xor_roundtrip(std::vector<double>(65, 42.0));
}

TEST(XorCodec, SmoothIntegralSeriesCompresses) {
  std::vector<double> series;
  for (int i = 0; i < 256; ++i) series.push_back(100000.0 + 3.0 * i);
  BitWriter writer;
  XorDoubleEncoder encoder;
  for (const double v : series) encoder.append(writer, v);
  // The compression claim of the whole wire format in one assert: a
  // counter-like series must cost a small fraction of its 8 uncompressed
  // bytes per point (the end-to-end ≥5x gate lives in the ingest bench).
  EXPECT_LT(writer.finish().size(), series.size() * 3);
  expect_xor_roundtrip(series);
}

TEST(XorCodec, SpecialValuesRoundTrip) {
  const double inf = std::numeric_limits<double>::infinity();
  expect_xor_roundtrip({0.0, -0.0, 1.0, -1.0, inf, -inf,
                        std::numeric_limits<double>::quiet_NaN(),
                        std::numeric_limits<double>::denorm_min(),
                        std::numeric_limits<double>::max(),
                        std::numeric_limits<double>::min(), 0.0});
}

TEST(XorCodec, WindowRegrowsAfterShrink) {
  // Force window transitions: wide XOR, then zero, then narrow, then wide
  // again — exercises the '11' new-window branch after a '10' reuse.
  expect_xor_roundtrip({1.0, 1e300, 1e300, 1e300 + 1e284, 2.0, 3.0, 2.5,
                        -7.0, 1e-300, 0.0, 0.0, 5.0});
}

TEST(XorCodec, RandomDoublesFuzzRoundTrip) {
  std::mt19937_64 rng(0xC0FFEEu);
  std::vector<double> series;
  for (int i = 0; i < 4096; ++i) {
    // Raw bit patterns cover every double class, including NaNs and
    // denormals the arithmetic distributions would never draw.
    const std::uint64_t bits = rng();
    double value = 0;
    std::memcpy(&value, &bits, sizeof(value));
    series.push_back(value);
  }
  expect_xor_roundtrip(series);
}

TEST(Crc32, MatchesKnownVector) {
  // The canonical IEEE check value: crc32("123456789") == 0xCBF43926.
  const char* text = "123456789";
  const Bytes data(text, text + 9);
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, SeedChainsPartialComputations) {
  const Bytes all = {'a', 'b', 'c', 'd', 'e', 'f'};
  const Bytes head = {'a', 'b', 'c'};
  const Bytes tail = {'d', 'e', 'f'};
  EXPECT_EQ(crc32(tail, crc32(head)), crc32(all));
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(Bytes{}), 0u);
}

TEST(U32Le, RoundTrips) {
  Bytes out;
  put_u32le(out, 0xCAFEBABEu);
  ByteReader reader(out);
  EXPECT_EQ(reader.u32le().value(), 0xCAFEBABEu);
}

}  // namespace
}  // namespace likwid::collect
