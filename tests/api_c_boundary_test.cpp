// Tests for the flat C API (api/likwid.h): the full lifecycle, every
// reachable status code at the exception boundary, and the round-trip
// guarantee that Session-produced CSV/XML/ASCII output is byte-identical
// to the pre-redesign writers across the groups_e2e fixture space.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/likwid.h"
#include "api/session.hpp"
#include "cli/csv_output.hpp"
#include "cli/output.hpp"
#include "cli/sinks.hpp"
#include "cli/xml_output.hpp"
#include "core/perf_groups.hpp"
#include "core/perfctr.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "workloads/stream.hpp"

namespace likwid {
namespace {

class CBoundary : public ::testing::Test {
 protected:
  ~CBoundary() override {
    if (handle_ != 0) likwid_finalize(handle_);
  }

  likwid_handle init(const char* machine = "nehalem-ep",
                     std::vector<int> cpus = {0, 1}) {
    EXPECT_EQ(likwid_init(machine, cpus.data(),
                          static_cast<int>(cpus.size()), &handle_),
              LIKWID_OK);
    return handle_;
  }

  likwid_handle handle_ = 0;
};

TEST_F(CBoundary, FullLifecycleMeasuresTheTriad) {
  const likwid_handle h = init();
  int set = -1;
  ASSERT_EQ(likwid_addEventSet(h, "FLOPS_DP", &set), LIKWID_OK);
  EXPECT_EQ(set, 0);
  ASSERT_EQ(likwid_setupCounters(h, set), LIKWID_OK);
  ASSERT_EQ(likwid_startCounters(h), LIKWID_OK);
  ASSERT_EQ(likwid_runWorkload(h, "triad", 400'000, 1), LIKWID_OK);
  ASSERT_EQ(likwid_stopCounters(h), LIKWID_OK);

  int events = 0;
  ASSERT_EQ(likwid_getNumberOfEvents(h, set, &events), LIKWID_OK);
  ASSERT_GT(events, 0);
  char name[128];
  double instructions = -1;
  for (int e = 0; e < events; ++e) {
    ASSERT_EQ(likwid_getEventName(h, set, e, name, sizeof(name)), LIKWID_OK);
    if (std::string(name) == "INSTR_RETIRED_ANY") {
      ASSERT_EQ(likwid_getResult(h, set, e, 0, &instructions), LIKWID_OK);
    }
  }
  EXPECT_GT(instructions, 0);

  int metrics = 0;
  ASSERT_EQ(likwid_getNumberOfMetrics(h, set, &metrics), LIKWID_OK);
  ASSERT_GT(metrics, 0);
  ASSERT_EQ(likwid_getMetricName(h, set, 0, name, sizeof(name)), LIKWID_OK);
  EXPECT_EQ(std::string(name), "Runtime [s]");
  double runtime = 0;
  ASSERT_EQ(likwid_getMetric(h, set, 0, 0, &runtime), LIKWID_OK);
  EXPECT_GT(runtime, 0);
  double seconds = 0;
  ASSERT_EQ(likwid_getTimeOfGroup(h, set, &seconds), LIKWID_OK);
  EXPECT_GT(seconds, 0);
}

TEST_F(CBoundary, InvalidHandleIsReportedOnEveryEntryPoint) {
  const likwid_handle bogus = 424242;
  double value;
  int count;
  char buf[8];
  EXPECT_EQ(likwid_addEventSet(bogus, "FLOPS_DP", nullptr),
            LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_setupCounters(bogus, 0), LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_startCounters(bogus), LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_stopCounters(bogus), LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_runWorkload(bogus, "triad", 1000, 1),
            LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_advanceTime(bogus, 1.0), LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_getNumberOfEvents(bogus, 0, &count),
            LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_getResult(bogus, 0, 0, 0, &value),
            LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_getEventName(bogus, 0, 0, buf, sizeof(buf)),
            LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_finalize(bogus), LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_NE(std::string(likwid_lastError()).find("424242"),
            std::string::npos);
}

TEST_F(CBoundary, FinalizedHandleStaysInvalidForever) {
  const likwid_handle h = init();
  ASSERT_EQ(likwid_finalize(h), LIKWID_OK);
  EXPECT_EQ(likwid_finalize(h), LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_EQ(likwid_startCounters(h), LIKWID_ERROR_INVALID_HANDLE);
  handle_ = 0;  // already gone
}

TEST_F(CBoundary, LifecycleMisuseIsInvalidState) {
  const likwid_handle h = init();
  ASSERT_EQ(likwid_addEventSet(h, "FLOPS_DP", nullptr), LIKWID_OK);
  // Start before setup.
  EXPECT_EQ(likwid_startCounters(h), LIKWID_ERROR_INVALID_STATE);
  // Stop without start.
  EXPECT_EQ(likwid_stopCounters(h), LIKWID_ERROR_INVALID_STATE);
  ASSERT_EQ(likwid_setupCounters(h, 0), LIKWID_OK);
  ASSERT_EQ(likwid_startCounters(h), LIKWID_OK);
  // Double start ("double init" of the measurement).
  EXPECT_EQ(likwid_startCounters(h), LIKWID_ERROR_INVALID_STATE);
  // Re-programming while running is refused too.
  EXPECT_EQ(likwid_setupCounters(h, 0), LIKWID_ERROR_INVALID_STATE);
  ASSERT_EQ(likwid_stopCounters(h), LIKWID_OK);
}

TEST_F(CBoundary, BadArgumentsAndUnknownEntitiesAreMapped) {
  likwid_handle h = 0;
  // Invalid argument: no cpus / null outputs.
  EXPECT_EQ(likwid_init("nehalem-ep", nullptr, 0, &h),
            LIKWID_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(likwid_init("nehalem-ep", nullptr, 2, nullptr),
            LIKWID_ERROR_INVALID_ARGUMENT);
  // Unknown machine preset.
  const int cpus[] = {0};
  EXPECT_NE(likwid_init("vax-780", cpus, 1, &h), LIKWID_OK);

  init();
  EXPECT_EQ(likwid_addEventSet(handle_, "", nullptr),
            LIKWID_ERROR_INVALID_ARGUMENT);
  // Unknown group name.
  EXPECT_EQ(likwid_addEventSet(handle_, "NOT_A_GROUP", nullptr),
            LIKWID_ERROR_NOT_FOUND);
  // Known group, unsupported on this architecture: Pentium M has no L3.
  likwid_handle pm = 0;
  ASSERT_EQ(likwid_init("pentium-m", cpus, 1, &pm), LIKWID_OK);
  EXPECT_EQ(likwid_addEventSet(pm, "L3", nullptr),
            LIKWID_ERROR_UNSUPPORTED);
  likwid_finalize(pm);
  // Out-of-range set / event / cpu indices.
  int count = 0;
  EXPECT_EQ(likwid_getNumberOfEvents(handle_, 7, &count),
            LIKWID_ERROR_NOT_FOUND);
  ASSERT_EQ(likwid_addEventSet(handle_, "FLOPS_DP", nullptr), LIKWID_OK);
  double value = 0;
  EXPECT_EQ(likwid_getResult(handle_, 0, 999, 0, &value),
            LIKWID_ERROR_NOT_FOUND);
  EXPECT_EQ(likwid_getResult(handle_, 0, 0, 99, &value),
            LIKWID_ERROR_NOT_FOUND);
  EXPECT_EQ(likwid_getResult(handle_, 0, 0, 0, nullptr),
            LIKWID_ERROR_INVALID_ARGUMENT);
  // Unknown workload name.
  ASSERT_EQ(likwid_setupCounters(handle_, 0), LIKWID_OK);
  ASSERT_EQ(likwid_startCounters(handle_), LIKWID_OK);
  EXPECT_EQ(likwid_runWorkload(handle_, "doom", 1000, 1),
            LIKWID_ERROR_NOT_FOUND);
  EXPECT_EQ(likwid_advanceTime(handle_, -1.0),
            LIKWID_ERROR_INVALID_ARGUMENT);
  ASSERT_EQ(likwid_stopCounters(handle_), LIKWID_OK);
}

TEST_F(CBoundary, ResourceExhaustionIsMapped) {
  // More programmable events than the architecture has PMC slots: three
  // auto-assigned core events on a two-counter Core 2.
  init("core2-quad", {0});
  EXPECT_EQ(
      likwid_addEventSet(
          handle_,
          "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE,"
          "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE,L2_LINES_IN_ANY",
          nullptr),
      LIKWID_ERROR_RESOURCE_EXHAUSTED);
}

TEST_F(CBoundary, BareEventNameBecomesAOneEventCustomSet) {
  // A bare word that names no performance group is a legal one-event
  // custom list with automatic counter assignment.
  init("core2-quad", {0});
  int set = -1;
  ASSERT_EQ(likwid_addEventSet(handle_, "L1D_REPL", &set), LIKWID_OK);
  char name[64];
  int events = 0;
  ASSERT_EQ(likwid_getNumberOfEvents(handle_, set, &events), LIKWID_OK);
  bool found = false;
  for (int e = 0; e < events; ++e) {
    ASSERT_EQ(likwid_getEventName(handle_, set, e, name, sizeof(name)),
              LIKWID_OK);
    found = found || std::string(name) == "L1D_REPL";
  }
  EXPECT_TRUE(found);
  int metrics = -1;
  ASSERT_EQ(likwid_getNumberOfMetrics(handle_, set, &metrics), LIKWID_OK);
  EXPECT_EQ(metrics, 0);  // custom sets have no formulas
}

TEST_F(CBoundary, DuplicateEventOnTwoCountersReadsPerSlot) {
  // The same event programmed on two counters must read per assignment
  // slot, not per name (a name lookup would alias both to the first).
  init("core2-quad", {0});
  int set = -1;
  ASSERT_EQ(likwid_addEventSet(handle_, "L1D_REPL:PMC0,L1D_REPL:PMC1", &set),
            LIKWID_OK);
  ASSERT_EQ(likwid_setupCounters(handle_, set), LIKWID_OK);
  ASSERT_EQ(likwid_startCounters(handle_), LIKWID_OK);
  ASSERT_EQ(likwid_runWorkload(handle_, "triad", 100'000, 1), LIKWID_OK);
  ASSERT_EQ(likwid_stopCounters(handle_), LIKWID_OK);
  int events = 0;
  ASSERT_EQ(likwid_getNumberOfEvents(handle_, set, &events), LIKWID_OK);
  char name[64];
  char counter[16];
  double a = -1, b = -1;
  for (int e = 0; e < events; ++e) {
    ASSERT_EQ(likwid_getEventName(handle_, set, e, name, sizeof(name)),
              LIKWID_OK);
    if (std::string(name) != "L1D_REPL") continue;
    ASSERT_EQ(likwid_getCounterName(handle_, set, e, counter,
                                    sizeof(counter)),
              LIKWID_OK);
    double v = -1;
    ASSERT_EQ(likwid_getResult(handle_, set, e, 0, &v), LIKWID_OK);
    (std::string(counter) == "PMC0" ? a : b) = v;
  }
  // Both counters saw the same traffic; the point is that both slots are
  // individually addressable and populated.
  EXPECT_GE(a, 0);
  EXPECT_GE(b, 0);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a + b, 0);
}

TEST_F(CBoundary, EveryStatusCodeHasAName) {
  // The boundary maps every ErrorCode; the names are part of the API.
  const likwid_status all[] = {
      LIKWID_OK, LIKWID_ERROR_INVALID_HANDLE, LIKWID_ERROR_INVALID_ARGUMENT,
      LIKWID_ERROR_NOT_FOUND, LIKWID_ERROR_PERMISSION,
      LIKWID_ERROR_UNSUPPORTED, LIKWID_ERROR_RESOURCE_EXHAUSTED,
      LIKWID_ERROR_INVALID_STATE, LIKWID_ERROR_INTERNAL,
      LIKWID_ERROR_UNAVAILABLE, LIKWID_ERROR_DEADLINE_EXCEEDED};
  for (const likwid_status s : all) {
    const std::string name = likwid_statusName(s);
    EXPECT_NE(name.find("LIKWID"), std::string::npos) << s;
  }
  EXPECT_EQ(std::string(likwid_statusName(LIKWID_ERROR_UNSUPPORTED)),
            "LIKWID_ERROR_UNSUPPORTED");
  EXPECT_EQ(std::string(likwid_statusName(LIKWID_ERROR_UNAVAILABLE)),
            "LIKWID_ERROR_UNAVAILABLE");
  EXPECT_EQ(std::string(likwid_statusName(LIKWID_ERROR_DEADLINE_EXCEEDED)),
            "LIKWID_ERROR_DEADLINE_EXCEEDED");
}

TEST_F(CBoundary, InjectedFaultsRoundTripTheNewStatusCodes) {
  // Arm an MSR fault through the C surface, drive a measurement into the
  // faulted read path, and require the matching status at the boundary:
  // kUnavailable -> LIKWID_ERROR_UNAVAILABLE, kDeadlineExceeded ->
  // LIKWID_ERROR_DEADLINE_EXCEEDED.
  const struct {
    const char* mode;
    likwid_status expected;
  } cases[] = {{"msr-fail", LIKWID_ERROR_UNAVAILABLE},
               {"msr-timeout", LIKWID_ERROR_DEADLINE_EXCEEDED}};
  for (const auto& c : cases) {
    likwid_handle h = 0;
    const int cpus[] = {0};
    ASSERT_EQ(likwid_init("nehalem-ep", cpus, 1, &h), LIKWID_OK);
    ASSERT_EQ(likwid_addEventSet(h, "FLOPS_DP", nullptr), LIKWID_OK);
    ASSERT_EQ(likwid_setupCounters(h, 0), LIKWID_OK);
    ASSERT_EQ(likwid_startCounters(h), LIKWID_OK);
    ASSERT_EQ(likwid_injectFault(h, c.mode), LIKWID_OK);
    EXPECT_EQ(likwid_stopCounters(h), c.expected) << c.mode;
    EXPECT_NE(std::string(likwid_lastError()), "") << c.mode;
    likwid_finalize(h);
  }
}

TEST_F(CBoundary, InjectFaultDisarmsAndRejectsBadInput) {
  const likwid_handle h = init();
  ASSERT_EQ(likwid_addEventSet(h, "FLOPS_DP", nullptr), LIKWID_OK);
  ASSERT_EQ(likwid_setupCounters(h, 0), LIKWID_OK);
  // "none" removes an armed fault: the lifecycle completes cleanly.
  ASSERT_EQ(likwid_startCounters(h), LIKWID_OK);
  ASSERT_EQ(likwid_injectFault(h, "msr-fail"), LIKWID_OK);
  ASSERT_EQ(likwid_injectFault(h, "none"), LIKWID_OK);
  EXPECT_EQ(likwid_stopCounters(h), LIKWID_OK);
  // Bad mode string / null mode / bogus handle are all mapped.
  EXPECT_EQ(likwid_injectFault(h, "msr-explode"),
            LIKWID_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(likwid_injectFault(h, nullptr), LIKWID_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(likwid_injectFault(424242, "msr-fail"),
            LIKWID_ERROR_INVALID_HANDLE);
}

TEST_F(CBoundary, LastErrorClearsOnSuccess) {
  EXPECT_EQ(likwid_stopCounters(99999), LIKWID_ERROR_INVALID_HANDLE);
  EXPECT_NE(std::string(likwid_lastError()), "");
  init();
  EXPECT_EQ(std::string(likwid_lastError()), "");
}

// --- round trip: Session output vs the pre-redesign writers -------------

/// Drive one (preset, group) fixture twice — once through direct PerfCtr
/// wiring + the legacy writer entry points, once through the facade +
/// the pluggable sinks — and require byte-identical text. The measured
/// run mirrors tests/groups_e2e_test.cpp.
class RoundTrip : public ::testing::TestWithParam<hwsim::presets::NamedPreset> {
 protected:
  static void run_fixture(ossim::SimKernel& kernel,
                          const std::vector<int>& cpus) {
    workloads::StreamConfig cfg;
    cfg.array_length = 100'000;
    cfg.repetitions = 1;
    workloads::StreamTriad triad(cfg);
    workloads::Placement p;
    p.cpus = cpus;
    for (const int c : cpus) kernel.scheduler().add_busy(c, 1);
    run_workload(kernel, triad, p);
  }
};

TEST_P(RoundTrip, SessionOutputMatchesPreRedesignWriters) {
  hwsim::SimMachine probe(GetParam().factory());
  std::vector<int> cpus = {0};
  if (probe.num_threads() > 1) cpus.push_back(1);

  for (const auto& g : core::supported_groups(probe.arch())) {
    // Pre-redesign path: hand-wired kernel + PerfCtr + writer functions.
    hwsim::SimMachine machine(GetParam().factory());
    ossim::SimKernel kernel(machine);
    core::PerfCtr ctr(kernel, cpus);
    ctr.add_group(g.name);
    ctr.start();
    run_fixture(kernel, cpus);
    ctr.stop();
    const std::string legacy_ascii = cli::render_measurement(ctr, 0);
    const std::string legacy_csv = cli::csv_measurement(ctr, 0);
    const std::string legacy_xml = cli::xml_measurement(ctr, 0);

    // Facade path: Session + ResultTable + pluggable sinks.
    const auto session = api::Session::configure()
                             .machine(GetParam().key)
                             .cpus(cpus)
                             .group(g.name)
                             .build();
    session->start();
    run_fixture(session->kernel(), cpus);
    session->stop();
    const api::ResultTable table = session->measurement(0);

    EXPECT_EQ(cli::AsciiSink().measurement(table), legacy_ascii)
        << GetParam().key << "/" << g.name;
    EXPECT_EQ(cli::CsvSink().measurement(table), legacy_csv)
        << GetParam().key << "/" << g.name;
    EXPECT_EQ(cli::XmlSink().measurement(table), legacy_xml)
        << GetParam().key << "/" << g.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, RoundTrip,
    ::testing::ValuesIn(hwsim::presets::all_presets()),
    [](const ::testing::TestParamInfo<hwsim::presets::NamedPreset>& info) {
      std::string name = info.param.key;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace likwid
