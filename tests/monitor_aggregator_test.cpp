// Tests for the windowed rollup machinery (monitor/aggregator.hpp):
// nearest-rank statistics, node-level reduction semantics per metric kind,
// window bucketing (full, partial, per-group under rotation) and rollup
// timestamps.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "monitor/aggregator.hpp"
#include "util/status.hpp"

namespace likwid::monitor {
namespace {

/// Schema with one metric slot per name, cached per group so every sample
/// of a group shares one schema object (as the Collector guarantees).
std::shared_ptr<const MetricSchema> schema_for(
    const std::string& group, const std::vector<std::string>& metrics) {
  static std::map<std::string, std::shared_ptr<const MetricSchema>> cache;
  auto& slot = cache[group];
  if (!slot) {
    std::vector<core::NameId> ids;
    for (const auto& m : metrics) ids.push_back(core::intern_name(m));
    slot = MetricSchema::create(group, ids);
  }
  return slot;
}

Sample make_sample(std::uint64_t seq, const std::string& group,
                   std::vector<double> values, double interval = 0.1,
                   std::vector<std::string> metrics = {"metric"}) {
  Sample s;
  s.sequence = seq;
  s.t_start = static_cast<double>(seq) * interval;
  s.t_end = s.t_start + interval;
  s.schema = schema_for(group, metrics);
  s.values = std::move(values);
  return s;
}

WindowStats stats_of(std::vector<double> values) {
  return compute_stats(values);
}

TEST(ComputeStats, SingleValue) {
  const WindowStats s = stats_of({3.5});
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.avg, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.p95, 3.5);
  EXPECT_EQ(s.count, 1u);
}

TEST(ComputeStats, KnownDistribution) {
  // 1..20: min 1, max 20, avg 10.5, nearest-rank p95 = ceil(0.95*20)=19th.
  std::vector<double> values;
  for (int v = 20; v >= 1; --v) values.push_back(v);
  const WindowStats s = compute_stats(values);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 20.0);
  EXPECT_DOUBLE_EQ(s.avg, 10.5);
  EXPECT_DOUBLE_EQ(s.p95, 19.0);
  EXPECT_EQ(s.count, 20u);
}

TEST(ComputeStats, P95OfSmallWindow) {
  // ceil(0.95*5) = 5th of the sorted values: the maximum.
  const WindowStats s = stats_of({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.p95, 5.0);
}

TEST(ComputeStats, EmptyThrows) {
  EXPECT_THROW(stats_of({}), Error);
}

// Nearest-rank edge cases around the n=1 window, the exact 95% boundary
// and degenerate all-equal windows.
TEST(ComputeStats, NearestRankSingleElementIsThatElement) {
  // ceil(0.95 * 1) = 1 -> index 0: the only value, even when extreme.
  const WindowStats s = stats_of({-7.25});
  EXPECT_DOUBLE_EQ(s.p95, -7.25);
  EXPECT_DOUBLE_EQ(s.min, -7.25);
  EXPECT_DOUBLE_EQ(s.max, -7.25);
  EXPECT_EQ(s.count, 1u);
}

TEST(ComputeStats, NearestRankExactBoundaryAtTwenty) {
  // n=20 is the smallest window where 0.95*n is integral: the rank is
  // exactly 19 (not 20), so p95 must be the 19th smallest, NOT the max.
  std::vector<double> values;
  for (int v = 1; v <= 20; ++v) values.push_back(v);
  const WindowStats s = compute_stats(values);
  EXPECT_DOUBLE_EQ(s.p95, 19.0);

  // One element fewer: ceil(0.95*19) = ceil(18.05) = 19 -> the max.
  std::vector<double> nineteen;
  for (int v = 1; v <= 19; ++v) nineteen.push_back(v);
  EXPECT_DOUBLE_EQ(compute_stats(nineteen).p95, 19.0);

  // One more: ceil(0.95*21) = 20th of 21 -> again not the max.
  std::vector<double> twentyone;
  for (int v = 1; v <= 21; ++v) twentyone.push_back(v);
  EXPECT_DOUBLE_EQ(compute_stats(twentyone).p95, 20.0);
}

TEST(ComputeStats, AllEqualWindowIsDegenerate) {
  const WindowStats s = stats_of(std::vector<double>(17, 4.5));
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.avg, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
  EXPECT_DOUBLE_EQ(s.p95, 4.5);
  EXPECT_EQ(s.count, 17u);
}

TEST(NodeReduce, RatesSumAcrossCpus) {
  const std::map<int, double> per_cpu = {{0, 1000.0}, {1, 2000.0}, {4, 500.0}};
  EXPECT_DOUBLE_EQ(node_reduce("Memory bandwidth [MBytes/s]", per_cpu),
                   3500.0);
  EXPECT_DOUBLE_EQ(node_reduce("DP MFlops/s", per_cpu), 3500.0);
}

TEST(NodeReduce, VolumesSumAcrossCpus) {
  const std::map<int, double> per_cpu = {{0, 1.5}, {1, 2.5}};
  EXPECT_DOUBLE_EQ(node_reduce("Memory data volume [GBytes]", per_cpu), 4.0);
}

TEST(NodeReduce, RatiosAverageAcrossCpus) {
  const std::map<int, double> per_cpu = {{0, 1.0}, {1, 3.0}};
  EXPECT_DOUBLE_EQ(node_reduce("CPI", per_cpu), 2.0);
  EXPECT_DOUBLE_EQ(node_reduce("L2 miss ratio", per_cpu), 2.0);
}

TEST(NodeReduce, RuntimeTakesSlowestCpu) {
  const std::map<int, double> per_cpu = {{0, 0.5}, {1, 0.9}, {2, 0.2}};
  EXPECT_DOUBLE_EQ(node_reduce("Runtime [s]", per_cpu), 0.9);
}

TEST(NodeReduce, EmptyRowIsZero) {
  EXPECT_DOUBLE_EQ(node_reduce("CPI", {}), 0.0);
}

TEST(ReduceKind, ClassifiesByDisplayName) {
  EXPECT_EQ(reduce_kind_of("Memory bandwidth [MBytes/s]"), ReduceKind::kSum);
  EXPECT_EQ(reduce_kind_of("Memory data volume [GBytes]"), ReduceKind::kSum);
  EXPECT_EQ(reduce_kind_of("Runtime [s]"), ReduceKind::kMax);
  EXPECT_EQ(reduce_kind_of("CPI"), ReduceKind::kAvg);
  const std::vector<double> values = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(reduce_values(ReduceKind::kSum, values), 4.0);
  EXPECT_DOUBLE_EQ(reduce_values(ReduceKind::kMax, values), 3.0);
  EXPECT_DOUBLE_EQ(reduce_values(ReduceKind::kAvg, values), 2.0);
  EXPECT_DOUBLE_EQ(reduce_values(ReduceKind::kAvg, {}), 0.0);
}

TEST(MetricSchemaTest, OutputOrderSortsByName) {
  const auto schema = MetricSchema::create(
      "SORT_TEST", {core::intern_name("zeta"), core::intern_name("alpha"),
                    core::intern_name("mid")});
  ASSERT_EQ(schema->output_order.size(), 3u);
  EXPECT_EQ(core::resolve_name(
                schema->metric_ids[schema->output_order[0]]),
            "alpha");
  EXPECT_EQ(core::resolve_name(
                schema->metric_ids[schema->output_order[1]]),
            "mid");
  EXPECT_EQ(core::resolve_name(
                schema->metric_ids[schema->output_order[2]]),
            "zeta");
}

TEST(Aggregator, RejectsNonPositiveWindow) {
  EXPECT_THROW(Aggregator(0), Error);
}

TEST(Aggregator, ClosesFullWindowsAndTrailingPartial) {
  SampleRing ring(16);
  for (std::uint64_t seq = 0; seq < 7; ++seq) {
    ring.push(make_sample(seq, "MEM", {static_cast<double>(seq)}));
  }
  const Aggregator agg(3);
  const auto points = agg.rollup(9, ring);
  // Windows: {0,1,2}, {3,4,5}, partial {6}; one metric each.
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].machine_id, 9);
  EXPECT_EQ(points[0].window, 0);
  EXPECT_EQ(points[0].stats.count, 3u);
  EXPECT_DOUBLE_EQ(points[0].stats.min, 0.0);
  EXPECT_DOUBLE_EQ(points[0].stats.max, 2.0);
  EXPECT_DOUBLE_EQ(points[0].stats.avg, 1.0);
  EXPECT_EQ(points[1].window, 1);
  EXPECT_DOUBLE_EQ(points[1].stats.min, 3.0);
  EXPECT_EQ(points[2].stats.count, 1u);
  EXPECT_DOUBLE_EQ(points[2].stats.avg, 6.0);
}

TEST(Aggregator, WindowTimestampsSpanTheirSamples) {
  SampleRing ring(8);
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    ring.push(make_sample(seq, "MEM", {1.0}, 0.25));
  }
  const auto points = Aggregator(4).rollup(0, ring);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(points[0].t_end, 1.0);
}

TEST(Aggregator, GroupsWindowIndependentlyUnderRotation) {
  // MEM and FLOPS_DP alternate, as the rotating collector emits them.
  SampleRing ring(16);
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    ring.push(make_sample(seq, seq % 2 == 0 ? "MEM" : "FLOPS_DP",
                          {static_cast<double>(seq)}));
  }
  const auto points = Aggregator(2).rollup(0, ring);
  // Each group contributes 4 samples -> 2 full windows; no partials.
  ASSERT_EQ(points.size(), 4u);
  int mem_windows = 0;
  int flops_windows = 0;
  for (const auto& p : points) {
    EXPECT_EQ(p.stats.count, 2u);
    if (p.group() == "MEM") {
      // MEM samples are the even sequence values.
      EXPECT_EQ(static_cast<int>(p.stats.max) % 2, 0);
      ++mem_windows;
    } else {
      EXPECT_EQ(p.group(), "FLOPS_DP");
      ++flops_windows;
    }
  }
  EXPECT_EQ(mem_windows, 2);
  EXPECT_EQ(flops_windows, 2);
}

TEST(Aggregator, TrailingPartialsFlushInTimeOrder) {
  // Two rotating groups, one partial window each: FLOPS_DP sorts before
  // MEM alphabetically, but MEM's partial opened earlier and must get the
  // lower window index.
  SampleRing ring(8);
  ring.push(make_sample(0, "MEM", {1.0}));
  ring.push(make_sample(1, "FLOPS_DP", {2.0}));
  const auto points = Aggregator(4).rollup(0, ring);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].group(), "MEM");
  EXPECT_EQ(points[0].window, 0);
  EXPECT_EQ(points[1].group(), "FLOPS_DP");
  EXPECT_EQ(points[1].window, 1);
  EXPECT_LT(points[0].t_start, points[1].t_start);
}

TEST(Aggregator, MultipleMetricsPerWindow) {
  SampleRing ring(8);
  for (std::uint64_t seq = 0; seq < 2; ++seq) {
    ring.push(make_sample(seq, "MEM2",
                          {static_cast<double>(seq),
                           10.0 + static_cast<double>(seq)},
                          0.1, {"metric", "other"}));
  }
  const auto points = Aggregator(2).rollup(0, ring);
  ASSERT_EQ(points.size(), 2u);  // one row per metric of the single window
  EXPECT_EQ(points[0].metric(), "metric");
  EXPECT_EQ(points[1].metric(), "other");
  EXPECT_DOUBLE_EQ(points[1].stats.max, 11.0);
}

// --- WindowFolder merge edges ---------------------------------------------
// The collector's query engine folds reconstructed sample batches through
// the same WindowFolder the in-process Aggregator uses; these pin the
// edges that fold must survive: empty input, one-sample windows, and
// batch boundaries landing anywhere relative to window boundaries.

TEST(WindowFolderTest, EmptyFolderFinishEmitsNothing) {
  WindowFolder folder(0, 5);
  folder.finish();
  EXPECT_TRUE(folder.points().empty());
  EXPECT_EQ(folder.samples_folded(), 0u);
}

TEST(WindowFolderTest, FinishIsIdempotent) {
  WindowFolder folder(0, 3);
  folder.add(make_sample(0, "WF_IDEM", {1.0}));
  folder.finish();
  ASSERT_EQ(folder.points().size(), 1u);
  folder.finish();  // nothing left open; must not emit again
  EXPECT_EQ(folder.points().size(), 1u);
}

TEST(WindowFolderTest, SingleSampleWindowsEmitPerSample) {
  WindowFolder folder(3, 1);
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    folder.add(make_sample(seq, "WF_ONE", {static_cast<double>(seq) * 2}));
  }
  folder.finish();
  const auto& points = folder.points();
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].window, static_cast<int>(i));
    EXPECT_EQ(points[i].stats.count, 1u);
    // A one-sample window is degenerate: min == avg == max == p95.
    const double v = static_cast<double>(i) * 2;
    EXPECT_DOUBLE_EQ(points[i].stats.min, v);
    EXPECT_DOUBLE_EQ(points[i].stats.avg, v);
    EXPECT_DOUBLE_EQ(points[i].stats.max, v);
    EXPECT_DOUBLE_EQ(points[i].stats.p95, v);
  }
}

/// Fold `samples` in batch-sized slices through one folder; the batching
/// must be invisible (bit-equal points to a serial one-by-one fold).
void expect_batched_fold_matches_serial(
    const std::vector<Sample>& samples, int window_samples,
    std::size_t batch_size) {
  WindowFolder serial(7, window_samples);
  for (const Sample& s : samples) serial.add(s);
  serial.finish();

  WindowFolder batched(7, window_samples);
  for (std::size_t start = 0; start < samples.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, samples.size());
    for (std::size_t i = start; i < end; ++i) batched.add(samples[i]);
  }
  batched.finish();

  const auto& want = serial.points();
  const auto& got = batched.points();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].window, want[i].window) << i;
    EXPECT_EQ(got[i].group_id, want[i].group_id) << i;
    EXPECT_EQ(got[i].metric_id, want[i].metric_id) << i;
    EXPECT_EQ(got[i].t_start, want[i].t_start) << i;
    EXPECT_EQ(got[i].t_end, want[i].t_end) << i;
    EXPECT_EQ(got[i].stats.count, want[i].stats.count) << i;
    // Bit-equality, not tolerance: the folds must be the same arithmetic.
    EXPECT_EQ(got[i].stats.min, want[i].stats.min) << i;
    EXPECT_EQ(got[i].stats.avg, want[i].stats.avg) << i;
    EXPECT_EQ(got[i].stats.max, want[i].stats.max) << i;
    EXPECT_EQ(got[i].stats.p95, want[i].stats.p95) << i;
  }
}

TEST(WindowFolderTest, BatchBoundariesAreInvisibleToTheFold) {
  // 23 samples, window 5: the quarantine cut lands mid-window for every
  // batch size that does not divide 23 — including batch sizes that slice
  // a window across three batches (size 2) and a trailing partial batch.
  std::vector<Sample> samples;
  for (std::uint64_t seq = 0; seq < 23; ++seq) {
    samples.push_back(make_sample(
        seq, "WF_BATCH", {100.0 + static_cast<double>((seq * 13) % 7)}));
  }
  for (const std::size_t batch_size : {1u, 2u, 4u, 5u, 7u, 23u, 64u}) {
    expect_batched_fold_matches_serial(samples, 5, batch_size);
  }
}

TEST(WindowFolderTest, BatchFoldMatchesSerialUnderGroupRotation) {
  // Rotation interleaves two groups, so each batch cut also splits the
  // PER-GROUP windows at uneven points.
  std::vector<Sample> samples;
  for (std::uint64_t seq = 0; seq < 17; ++seq) {
    samples.push_back(make_sample(seq, seq % 2 == 0 ? "WF_ROT_A" : "WF_ROT_B",
                                  {static_cast<double>(seq)}));
  }
  for (const std::size_t batch_size : {1u, 3u, 8u}) {
    expect_batched_fold_matches_serial(samples, 4, batch_size);
  }
}

}  // namespace
}  // namespace likwid::monitor
