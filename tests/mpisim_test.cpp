// Tests for the simulated MPI layer: rank planning, the hybrid
// pin-with-skip-mask composition of Section II-C, per-node isolation, and
// per-rank counter measurement (the Section V MPI-integration goal).
#include <gtest/gtest.h>

#include <set>

#include "core/perfctr.hpp"
#include "hwsim/presets.hpp"
#include "mpisim/launcher.hpp"
#include "util/status.hpp"

namespace likwid::mpisim {
namespace {

// --- rank planning -----------------------------------------------------------

TEST(PlanRanks, PernodePlacesOneRankPerNode) {
  MpirunConfig cfg;
  cfg.np = 4;
  cfg.pernode = true;
  const auto plans = plan_ranks(cfg, 4, 8);
  ASSERT_EQ(plans.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(plans[static_cast<std::size_t>(r)].node, r);
    EXPECT_EQ(plans[static_cast<std::size_t>(r)].slot, 0);
    // The sole rank on the node owns the full default cpu list.
    EXPECT_EQ(plans[static_cast<std::size_t>(r)].pin_cpus.size(), 8u);
  }
}

TEST(PlanRanks, PernodeRejectsMoreRanksThanNodes) {
  MpirunConfig cfg;
  cfg.np = 5;
  cfg.pernode = true;
  try {
    plan_ranks(cfg, 4, 8);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST(PlanRanks, NpernodeBlockFill) {
  MpirunConfig cfg;
  cfg.np = 4;
  cfg.npernode = 2;
  const auto plans = plan_ranks(cfg, 2, 8);
  EXPECT_EQ(plans[0].node, 0);
  EXPECT_EQ(plans[1].node, 0);
  EXPECT_EQ(plans[2].node, 1);
  EXPECT_EQ(plans[3].node, 1);
  // Two ranks split the 8-cpu list into halves by slot.
  EXPECT_EQ(plans[0].pin_cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(plans[1].pin_cpus, (std::vector<int>{4, 5, 6, 7}));
}

TEST(PlanRanks, RoundRobinMapping) {
  MpirunConfig cfg;
  cfg.np = 4;
  cfg.npernode = 2;
  cfg.mapping = RankMapping::kRoundRobin;
  const auto plans = plan_ranks(cfg, 2, 8);
  EXPECT_EQ(plans[0].node, 0);
  EXPECT_EQ(plans[1].node, 1);
  EXPECT_EQ(plans[2].node, 0);
  EXPECT_EQ(plans[3].node, 1);
  EXPECT_EQ(plans[2].slot, 1);
}

TEST(PlanRanks, NpernodeCapacityEnforced) {
  MpirunConfig cfg;
  cfg.np = 5;
  cfg.npernode = 2;
  EXPECT_THROW(plan_ranks(cfg, 2, 8), Error);
}

TEST(PlanRanks, DefaultBlockFillDerivesRanksPerNode) {
  MpirunConfig cfg;
  cfg.np = 5;
  const auto plans = plan_ranks(cfg, 2, 8);  // ceil(5/2) = 3 per node
  EXPECT_EQ(plans[2].node, 0);
  EXPECT_EQ(plans[3].node, 1);
  EXPECT_EQ(plans[4].node, 1);
}

TEST(PlanRanks, ExplicitCpuListIsSliced) {
  MpirunConfig cfg;
  cfg.np = 2;
  cfg.npernode = 2;
  cfg.node_cpu_list = {0, 2, 4, 6};
  const auto plans = plan_ranks(cfg, 1, 8);
  EXPECT_EQ(plans[0].pin_cpus, (std::vector<int>{0, 2}));
  EXPECT_EQ(plans[1].pin_cpus, (std::vector<int>{4, 6}));
}

TEST(PlanRanks, RejectsInvalidCpuAndOverfullList) {
  MpirunConfig cfg;
  cfg.np = 1;
  cfg.node_cpu_list = {0, 99};
  EXPECT_THROW(plan_ranks(cfg, 1, 8), Error);

  MpirunConfig crowded;
  crowded.np = 4;
  crowded.npernode = 4;
  crowded.node_cpu_list = {0, 1};  // 4 ranks cannot split 2 cpus
  EXPECT_THROW(plan_ranks(crowded, 1, 8), Error);

  MpirunConfig zero;
  zero.np = 0;
  EXPECT_THROW(plan_ranks(zero, 1, 8), Error);
}

// --- launch: the paper's hybrid composition ---------------------------------

TEST(MpiJob, PaperHybridExamplePinsWorkersAndSkipsServiceThreads) {
  // "mpiexec -n 64 -pernode likwid-pin -c 0-7 -s 0x3" scaled to 2 nodes:
  // Intel OpenMP inside Intel MPI, 8 threads, skip mask 0x3.
  Cluster cluster(2, hwsim::presets::westmere_ep());
  MpirunConfig cfg;
  cfg.np = 2;
  cfg.pernode = true;
  cfg.omp = workloads::OpenMpImpl::kIntelMpi;
  cfg.omp_threads = 8;
  cfg.pin = true;
  cfg.node_cpu_list = {0, 1, 2, 3, 4, 5, 6, 7};
  cfg.skip = util::SkipMask::parse("0x3");

  MpiJob job(cluster, cfg);
  ASSERT_EQ(job.ranks().size(), 2u);
  for (const auto& rank : job.ranks()) {
    ASSERT_NE(rank.wrapper, nullptr);
    // The first two created threads (MPI progress + OpenMP shepherd) are
    // not pinned; the 8 workers land on cpus 0-7 in order.
    EXPECT_EQ(rank.wrapper->skipped_count(), 2);
    EXPECT_EQ(rank.worker_cpus,
              (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  }
}

TEST(MpiJob, DefaultSkipMaskFollowsTheThreadingModel) {
  Cluster cluster(1, hwsim::presets::westmere_ep());
  MpirunConfig cfg;
  cfg.np = 1;
  cfg.omp = workloads::OpenMpImpl::kIntel;
  cfg.omp_threads = 4;
  cfg.pin = true;
  cfg.node_cpu_list = {0, 1, 2, 3};

  MpiJob job(cluster, cfg);
  // Intel OpenMP: one shepherd thread skipped (mask 0x1), workers pinned.
  EXPECT_EQ(job.ranks().front().wrapper->skipped_count(), 1);
  EXPECT_EQ(job.ranks().front().worker_cpus,
            (std::vector<int>{0, 1, 2, 3}));
}

TEST(MpiJob, RanksSharingANodeGetDisjointWorkers) {
  Cluster cluster(1, hwsim::presets::westmere_ep());
  MpirunConfig cfg;
  cfg.np = 2;
  cfg.npernode = 2;
  cfg.omp = workloads::OpenMpImpl::kGcc;
  cfg.omp_threads = 6;
  cfg.pin = true;

  MpiJob job(cluster, cfg);
  std::set<int> seen;
  for (const auto& rank : job.ranks()) {
    for (const int cpu : rank.worker_cpus) {
      EXPECT_TRUE(seen.insert(cpu).second)
          << "cpu " << cpu << " assigned to two ranks";
    }
  }
  EXPECT_EQ(seen.size(), 12u);
}

TEST(MpiJob, NodesAreIsolated) {
  Cluster cluster(2, hwsim::presets::nehalem_ep());
  // Writing an MSR on node 0 must not appear on node 1.
  const std::uint32_t kMiscEnable = 0x1A0;
  const auto before = cluster.node(1).kernel->msr_read(0, kMiscEnable);
  cluster.node(0).kernel->msr_write(0, kMiscEnable, before ^ 0x200ull);
  EXPECT_EQ(cluster.node(1).kernel->msr_read(0, kMiscEnable), before);
  EXPECT_NE(cluster.node(0).kernel->msr_read(0, kMiscEnable), before);

  // And the schedulers are independent: busy marks on node 0 do not load
  // node 1.
  cluster.node(0).kernel->scheduler().add_busy(0, 1);
  EXPECT_EQ(cluster.node(1).kernel->scheduler().busy_load(0), 0);
  cluster.node(0).kernel->scheduler().add_busy(0, -1);
}

// --- running and measuring ---------------------------------------------------

TEST(MpiJob, SymmetricPinnedRanksSeeEqualBandwidth) {
  Cluster cluster(3, hwsim::presets::westmere_ep());
  MpirunConfig cfg;
  cfg.np = 3;
  cfg.pernode = true;
  cfg.omp = workloads::OpenMpImpl::kGcc;
  cfg.omp_threads = 6;
  cfg.pin = true;
  cfg.node_cpu_list = {0, 6, 1, 7, 2, 8};  // scatter over both sockets

  MpiJob job(cluster, cfg);
  workloads::StreamConfig stream;
  stream.array_length = 1'000'000;
  stream.repetitions = 2;
  const auto seconds = job.run_triad(stream);
  ASSERT_EQ(seconds.size(), 3u);
  EXPECT_DOUBLE_EQ(seconds[0], seconds[1]);
  EXPECT_DOUBLE_EQ(seconds[1], seconds[2]);
  EXPECT_GT(seconds[0], 0.0);
}

TEST(MpiJob, ScatterBeatsSocketPackingPerRank) {
  // One rank, four workers: spread over both sockets vs. packed onto one.
  // Four icc triad threads oversubscribe a single Westmere socket's memory
  // bus (4 x 14 GB/s demand vs. 28 GB/s), so the scatter placement must be
  // about twice as fast — the Fig. 5 mechanism, rank-local.
  const auto run_with_list = [](std::vector<int> list) {
    Cluster cluster(1, hwsim::presets::westmere_ep());
    MpirunConfig cfg;
    cfg.np = 1;
    cfg.omp = workloads::OpenMpImpl::kGcc;
    cfg.omp_threads = 4;
    cfg.pin = true;
    cfg.node_cpu_list = std::move(list);
    MpiJob job(cluster, cfg);
    workloads::StreamConfig stream;
    stream.array_length = 2'000'000;
    stream.repetitions = 2;
    return job.run_triad(stream).front();
  };
  const double scatter_seconds = run_with_list({0, 6, 1, 7});
  const double packed_seconds = run_with_list({0, 1, 2, 3});
  EXPECT_LT(scatter_seconds * 1.5, packed_seconds);
}

TEST(MpiJob, PerRankMeasurementCountsTheTriadFlops) {
  Cluster cluster(2, hwsim::presets::nehalem_ep());
  MpirunConfig cfg;
  cfg.np = 2;
  cfg.pernode = true;
  cfg.omp = workloads::OpenMpImpl::kGcc;
  cfg.omp_threads = 4;
  cfg.pin = true;
  cfg.node_cpu_list = {0, 1, 2, 3};

  MpiJob job(cluster, cfg);
  workloads::StreamConfig stream;
  stream.array_length = 400'000;
  stream.repetitions = 1;
  const auto results = job.measure_triad("FLOPS_DP", stream);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& m : results) {
    EXPECT_GT(m.seconds, 0.0);
    bool found = false;
    for (const auto& row : m.metrics) {
      if (row.name() != "DP MFlops/s") continue;
      found = true;
      for (const int cpu : {0, 1, 2, 3}) {
        EXPECT_GT(row.at(cpu), 0.0) << "rank " << m.rank;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(MpiJob, MeasurementSeesRankLocalMemoryTraffic) {
  Cluster cluster(1, hwsim::presets::nehalem_ep());
  MpirunConfig cfg;
  cfg.np = 2;
  cfg.npernode = 2;
  cfg.omp = workloads::OpenMpImpl::kGcc;
  cfg.omp_threads = 4;
  cfg.pin = true;
  // Rank 0 on socket 0's physical cores, rank 1 on socket 1's.
  cfg.node_cpu_list = {0, 1, 2, 3, 4, 5, 6, 7};

  MpiJob job(cluster, cfg);
  workloads::StreamConfig stream;
  stream.array_length = 1'000'000;
  stream.repetitions = 1;
  const auto results = job.measure_triad("MEM", stream);
  for (const auto& m : results) {
    double bw = 0;
    for (const auto& row : m.metrics) {
      if (row.name() == "Memory bandwidth [MBytes/s]") {
        for (const double v : row.values) bw = std::max(bw, v);
      }
    }
    EXPECT_GT(bw, 0.0) << "rank " << m.rank;
  }
}

}  // namespace
}  // namespace likwid::mpisim
