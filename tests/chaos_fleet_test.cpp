// Chaos soak of the supervised work-stealing fleet scheduler (the
// `chaos`-labelled suite the TSan CI job runs alongside `concurrency`):
// 64 nodes over 8 workers with >5% of the fleet's MSR devices failing and
// two injected worker crashes — and the pipeline must come out the other
// side with:
//   1. the run COMPLETING (supervision absorbs every injected fault),
//   2. exactly the plan's faulted nodes quarantined (no false positives),
//   3. the healthy nodes' windows BIT-EQUAL to a serial fault-free run
//      (faults on node A must never perturb node B's samples),
//   4. every lost batch attributed to a quarantined node (the scheduler's
//      only loss mode; no silent loss path), and
//   5. the whole thing deterministic in the plan seed — including with
//      tasks stolen mid-window under a skewed device latency.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "monitor/agent.hpp"
#include "util/status.hpp"

namespace likwid {
namespace {

constexpr int kNodes = 64;
constexpr int kWorkers = 8;
constexpr char kPlanSpec[] =
    "7:msr-fail=0.05;msr-stale=0.03;msr-saturate=0.03;crash=2";

monitor::AgentConfig chaos_config(bool with_plan) {
  monitor::AgentConfig cfg;
  cfg.num_machines = kNodes;
  cfg.duration_seconds = 3.0;  // 30 steps per node
  cfg.monitor.interval_seconds = 0.1;
  cfg.monitor.groups = {"MEM", "FLOPS_DP"};
  cfg.monitor.window_samples = 4;
  cfg.monitor.ring_capacity = 64;
  cfg.fleet.num_threads = with_plan ? kWorkers : 1;
  cfg.fleet.batch_samples = 5;
  if (with_plan) {
    cfg.monitor.fault_plan =
        std::make_shared<const fault::FaultPlan>(fault::FaultPlan::parse(
            kPlanSpec));
  }
  return cfg;
}

void expect_same_rollups(const std::vector<monitor::SeriesPoint>& expected,
                         const std::vector<monitor::SeriesPoint>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const monitor::SeriesPoint& a = expected[i];
    const monitor::SeriesPoint& b = actual[i];
    EXPECT_EQ(a.machine_id, b.machine_id) << i;
    EXPECT_EQ(a.window, b.window) << i;
    EXPECT_EQ(a.group_id, b.group_id) << i;
    EXPECT_EQ(a.metric_id, b.metric_id) << i;
    // Healthy nodes' folds must be bit-equal to the fault-free run, not
    // just close: a fault that leaked into another node's sample stream
    // would show up here first.
    EXPECT_EQ(a.t_start, b.t_start) << i;
    EXPECT_EQ(a.t_end, b.t_end) << i;
    EXPECT_EQ(a.stats.count, b.stats.count) << i;
    EXPECT_EQ(a.stats.min, b.stats.min) << i;
    EXPECT_EQ(a.stats.avg, b.stats.avg) << i;
    EXPECT_EQ(a.stats.max, b.stats.max) << i;
    EXPECT_EQ(a.stats.p95, b.stats.p95) << i;
  }
}

TEST(ChaosFleet, SupervisedFleetSurvivesTheFaultPlan) {
  const fault::FaultPlan plan = fault::FaultPlan::parse(kPlanSpec);
  const std::vector<int> faulted = plan.faulted_nodes(kNodes);
  // The plan must actually bite for this soak to mean anything: >= 5% of
  // the fleet carries an MSR fault (the spec's rates sum to 11%).
  ASSERT_GE(faulted.size(), 4u);
  ASSERT_LT(faulted.size(), static_cast<std::size_t>(kNodes) / 2);

  // Reference: the same fleet, serial and fault-free.
  monitor::Agent reference(chaos_config(/*with_plan=*/false));
  reference.run();
  ASSERT_FALSE(reference.threaded());
  std::vector<monitor::SeriesPoint> expected;
  for (const monitor::SeriesPoint& p : reference.rollups()) {
    if (!std::binary_search(faulted.begin(), faulted.end(), p.machine_id)) {
      expected.push_back(p);
    }
  }
  ASSERT_FALSE(expected.empty());

  // The chaos run: 8 work-stealing workers, faults armed.
  monitor::Agent chaos(chaos_config(/*with_plan=*/true));
  ASSERT_NO_THROW(chaos.run()) << "supervision failed to absorb the plan";
  ASSERT_TRUE(chaos.threaded());

  // (2) Quarantine precision: exactly the plan's faulted nodes.
  EXPECT_EQ(chaos.health().quarantined_nodes(), faulted);
  for (const int id : faulted) {
    const monitor::NodeHealthSnapshot s = chaos.health().snapshot(id);
    EXPECT_EQ(s.state, monitor::NodeHealth::kQuarantined) << id;
    EXPECT_GT(s.step_faults, 0u) << id;
    EXPECT_FALSE(s.last_error.empty()) << id;
  }

  // (3) Healthy-node windows bit-equal to the serial fault-free run;
  // quarantined nodes excluded from the series entirely.
  const std::vector<monitor::SeriesPoint> rollups = chaos.rollups();
  for (const monitor::SeriesPoint& p : rollups) {
    EXPECT_FALSE(
        std::binary_search(faulted.begin(), faulted.end(), p.machine_id));
  }
  expect_same_rollups(expected, rollups);

  // Both injected worker crashes were absorbed by restarts.
  EXPECT_EQ(chaos.health().worker_restarts(), 2u);

  // (4) No silent loss: the quarantine flush is the scheduler's only loss
  // mode, the per-machine ledger matches the health snapshots, and every
  // losing machine is quarantined, never healthy.
  const monitor::FleetTransportStats& t = chaos.transport();
  EXPECT_EQ(t.batches_lost, t.lost_quarantined);
  ASSERT_EQ(t.lost_per_machine.size(), static_cast<std::size_t>(kNodes));
  std::uint64_t lost_total = 0;
  for (int id = 0; id < kNodes; ++id) {
    const std::uint64_t lost = t.lost_per_machine[static_cast<size_t>(id)];
    lost_total += lost;
    const monitor::NodeHealthSnapshot s = chaos.health().snapshot(id);
    EXPECT_EQ(s.batches_lost, lost) << id;
    if (lost > 0) {
      EXPECT_NE(s.state, monitor::NodeHealth::kHealthy) << id;
    }
  }
  EXPECT_EQ(lost_total, t.batches_lost);

  // The health report table carries one column per node.
  const api::ResultTable report = chaos.health_report();
  EXPECT_EQ(report.group, "NODE_HEALTH");
  ASSERT_EQ(report.cpus.size(), static_cast<std::size_t>(kNodes));
  ASSERT_FALSE(report.metrics.empty());
  for (const int id : faulted) {
    EXPECT_EQ(report.metrics[0].values[static_cast<std::size_t>(id)], 2.0)
        << id;
  }
}

TEST(ChaosFleet, ChaosRunIsDeterministicInTheSeed) {
  monitor::Agent first(chaos_config(/*with_plan=*/true));
  first.run();
  monitor::Agent second(chaos_config(/*with_plan=*/true));
  second.run();

  EXPECT_EQ(first.health().quarantined_nodes(),
            second.health().quarantined_nodes());
  EXPECT_EQ(first.health().worker_restarts(),
            second.health().worker_restarts());
  expect_same_rollups(first.rollups(), second.rollups());
  // Quarantine-flush losses depend only on each node's own step schedule
  // (which step quarantines it, how many samples its open windows held),
  // so they agree exactly however the stealing race unfolded.
  EXPECT_EQ(first.transport().lost_quarantined,
            second.transport().lost_quarantined);
  EXPECT_EQ(first.transport().lost_per_machine,
            second.transport().lost_per_machine);
}

// Quarantine and loss attribution must survive task stealing: a skewed
// per-node device latency unbalances the shards so tasks migrate
// mid-window, while the fault plan quarantines part of the fleet. The
// quarantine set, the attributed losses and the healthy nodes' windows
// must all come out exactly as in the unstolen (serial, fault-free,
// latency-free) world — device latency is wall time only, and a stolen
// task still folds its node's samples in sequence order.
TEST(ChaosFleet, QuarantineAndLossAttributionSurviveStealing) {
  monitor::AgentConfig cfg = chaos_config(/*with_plan=*/true);
  cfg.num_machines = 16;
  cfg.fleet.num_threads = 4;
  cfg.fleet.batch_samples = 0;  // autotune under chaos too
  cfg.monitor.device_latency_us = 200;
  cfg.monitor.device_latency_skew = 0.5;
  cfg.monitor.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse("7:msr-fail=0.2;msr-stale=0.1"));
  const std::vector<int> faulted =
      cfg.monitor.fault_plan->faulted_nodes(cfg.num_machines);
  ASSERT_FALSE(faulted.empty());

  // Serial fault-free latency-free reference: stealing, latency and the
  // fault plan together must not perturb a single healthy sample.
  monitor::AgentConfig serial_cfg = chaos_config(/*with_plan=*/false);
  serial_cfg.num_machines = cfg.num_machines;
  monitor::Agent serial(serial_cfg);
  serial.run();
  std::vector<monitor::SeriesPoint> expected;
  for (const monitor::SeriesPoint& p : serial.rollups()) {
    if (!std::binary_search(faulted.begin(), faulted.end(), p.machine_id)) {
      expected.push_back(p);
    }
  }
  ASSERT_FALSE(expected.empty());

  monitor::Agent chaos(cfg);
  ASSERT_NO_THROW(chaos.run());
  EXPECT_EQ(chaos.health().quarantined_nodes(), faulted);
  expect_same_rollups(expected, chaos.rollups());

  const monitor::FleetTransportStats& t = chaos.transport();
  EXPECT_GT(t.steals, 0u) << "the skewed shards must force stealing";
  EXPECT_EQ(t.batches_lost, t.lost_quarantined);
  std::uint64_t lost_total = 0;
  for (int id = 0; id < cfg.num_machines; ++id) {
    const std::uint64_t lost = t.lost_per_machine[static_cast<size_t>(id)];
    lost_total += lost;
    EXPECT_EQ(chaos.health().snapshot(id).batches_lost, lost) << id;
    if (lost > 0) {
      EXPECT_TRUE(
          std::binary_search(faulted.begin(), faulted.end(), id))
          << id;
    }
  }
  EXPECT_EQ(lost_total, t.batches_lost);
}

// The injected slow fold consumer (per-slice delay) stretches the run but
// — unlike the old transport rings — nothing backs up and nothing can be
// lost: the healthy fleet still folds bit-equal with zero losses.
TEST(ChaosFleet, SlowFoldPressureIsLossless) {
  monitor::AgentConfig cfg = chaos_config(/*with_plan=*/false);
  cfg.num_machines = 8;
  cfg.fleet.num_threads = 4;
  cfg.monitor.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse("3:slow-consumer-us=200"));

  monitor::Agent reference(cfg);
  // A plan whose only knob is fold speed faults no node: the serial
  // reference can share the config (minus threading).
  monitor::AgentConfig serial_cfg = cfg;
  serial_cfg.fleet.num_threads = 1;
  serial_cfg.monitor.fault_plan.reset();
  monitor::Agent serial(serial_cfg);
  serial.run();

  reference.run();
  ASSERT_TRUE(reference.threaded());
  EXPECT_TRUE(reference.health().quarantined_nodes().empty());
  const monitor::FleetTransportStats& t = reference.transport();
  EXPECT_EQ(t.batches_lost, 0u);
  expect_same_rollups(serial.rollups(), reference.rollups());
}

}  // namespace
}  // namespace likwid
