// Tests for APIC id construction and hardware-thread enumeration, including
// property-style round trips across every machine preset.
#include <gtest/gtest.h>

#include <set>

#include "hwsim/apic.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"

namespace likwid::hwsim {
namespace {

TEST(ApicLayout, WestmereUsesFourCoreBits) {
  const MachineSpec spec = presets::westmere_ep();
  const ApicLayout layout = apic_layout(spec);
  EXPECT_EQ(layout.smt_width, 1u);
  EXPECT_EQ(layout.core_width, 4u);  // core ids reach 10
  EXPECT_EQ(layout.package_shift(), 5u);
}

TEST(ApicLayout, SingleCoreNoSmtHasZeroWidths) {
  const MachineSpec spec = presets::pentium_m();
  const ApicLayout layout = apic_layout(spec);
  EXPECT_EQ(layout.smt_width, 0u);
  EXPECT_EQ(layout.core_width, 0u);
}

TEST(ApicId, ComposeAndSplit) {
  const ApicLayout layout{1, 4};
  const std::uint32_t id = make_apic_id(layout, 1, 10, 1);
  EXPECT_EQ(id, (1u << 5) | (10u << 1) | 1u);
  const ApicParts parts = split_apic_id(layout, id);
  EXPECT_EQ(parts.socket, 1);
  EXPECT_EQ(parts.core_apic, 10);
  EXPECT_EQ(parts.smt, 1);
}

TEST(ApicId, SmtOnNonSmtMachineThrows) {
  const ApicLayout layout{0, 2};
  EXPECT_THROW(make_apic_id(layout, 0, 1, 1), Error);
}

TEST(Enumeration, WestmereMatchesPaperListing) {
  // The paper's likwid-topology table: os ids 0-5 are socket 0 cores
  // 0,1,2,8,9,10 (SMT 0); 6-11 socket 1; 12-23 the SMT siblings.
  const auto threads = enumerate_hw_threads(presets::westmere_ep());
  ASSERT_EQ(threads.size(), 24u);
  EXPECT_EQ(threads[0].socket, 0);
  EXPECT_EQ(threads[0].core_apic, 0);
  EXPECT_EQ(threads[0].smt, 0);
  EXPECT_EQ(threads[3].core_apic, 8);  // non-contiguous physical id
  EXPECT_EQ(threads[5].core_apic, 10);
  EXPECT_EQ(threads[6].socket, 1);
  EXPECT_EQ(threads[12].smt, 1);
  EXPECT_EQ(threads[12].socket, 0);
  EXPECT_EQ(threads[12].core_apic, 0);
  EXPECT_EQ(threads[23].socket, 1);
  EXPECT_EQ(threads[23].core_apic, 10);
}

TEST(Enumeration, OsIdsAreDense) {
  const auto threads = enumerate_hw_threads(presets::nehalem_ep());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    EXPECT_EQ(threads[i].os_id, static_cast<int>(i));
  }
}

TEST(Enumeration, SmtSiblingsShareCoreBitsOfApic) {
  const MachineSpec spec = presets::westmere_ep();
  const auto threads = enumerate_hw_threads(spec);
  const ApicLayout layout = apic_layout(spec);
  // os id i and i+12 are SMT siblings: same apic id except the SMT bit.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(threads[static_cast<std::size_t>(i)].apic_id >> layout.smt_width,
              threads[static_cast<std::size_t>(i + 12)].apic_id >>
                  layout.smt_width);
  }
}

// Property: across all presets, APIC ids are unique and decode back to the
// enumerated (socket, core, smt).
class ApicPresetTest : public ::testing::TestWithParam<presets::NamedPreset> {};

TEST_P(ApicPresetTest, ApicIdsUniqueAndInvertible) {
  const MachineSpec spec = GetParam().factory();
  const ApicLayout layout = apic_layout(spec);
  const auto threads = enumerate_hw_threads(spec);
  ASSERT_EQ(threads.size(), static_cast<std::size_t>(spec.num_hw_threads()));
  std::set<std::uint32_t> ids;
  for (const auto& t : threads) {
    EXPECT_TRUE(ids.insert(t.apic_id).second)
        << "duplicate apic id " << t.apic_id;
    const ApicParts parts = split_apic_id(layout, t.apic_id);
    EXPECT_EQ(parts.socket, t.socket);
    EXPECT_EQ(parts.core_apic, t.core_apic);
    EXPECT_EQ(parts.smt, t.smt);
  }
}

TEST_P(ApicPresetTest, EnumerationCoversAllPositions) {
  const MachineSpec spec = GetParam().factory();
  const auto threads = enumerate_hw_threads(spec);
  std::set<std::tuple<int, int, int>> positions;
  for (const auto& t : threads) {
    positions.insert({t.socket, t.core_index, t.smt});
    EXPECT_GE(t.socket, 0);
    EXPECT_LT(t.socket, spec.sockets);
    EXPECT_GE(t.core_index, 0);
    EXPECT_LT(t.core_index, spec.cores_per_socket);
    EXPECT_GE(t.smt, 0);
    EXPECT_LT(t.smt, spec.threads_per_core);
  }
  EXPECT_EQ(positions.size(), threads.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, ApicPresetTest,
    ::testing::ValuesIn(presets::all_presets()),
    [](const ::testing::TestParamInfo<presets::NamedPreset>& info) {
      std::string name = info.param.key;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace likwid::hwsim
