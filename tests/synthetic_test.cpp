// Tests for the synthetic kernel family: steady-state traffic derivation,
// capacity sharing, and end-to-end event-group metrics measured through
// likwid-perfctr. These are the groups the paper's case studies do not
// reach (BRANCH, TLB, DATA, FLOPS_SP, the cache-ladder regimes of CACHE /
// L2CACHE / L3CACHE).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/perfctr.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"
#include "workloads/synthetic.hpp"

namespace likwid::workloads {
namespace {

using core::PerfCtr;

/// A completed measurement: owns the simulated OS and the counters so
/// callers can inspect raw counts after the metric rows.
struct Measurement {
  std::unique_ptr<ossim::SimKernel> kernel;
  std::unique_ptr<PerfCtr> ctr;
  std::vector<PerfCtr::MetricRow> rows;
};

/// Measure `group` while running `kernel_cfg` on the given cpus.
Measurement run_measured(hwsim::SimMachine& machine,
                         const SyntheticConfig& kernel_cfg,
                         const std::string& group,
                         const std::vector<int>& cpus) {
  Measurement m;
  m.kernel = std::make_unique<ossim::SimKernel>(machine);
  m.ctr = std::make_unique<PerfCtr>(*m.kernel, cpus);
  m.ctr->add_group(group);
  SyntheticKernel workload(kernel_cfg);
  Placement p;
  p.cpus = cpus;
  for (const int c : cpus) m.kernel->scheduler().add_busy(c, 1);
  m.ctr->start();
  run_workload(*m.kernel, workload, p);
  m.ctr->stop();
  m.rows = m.ctr->compute_metrics(0);
  return m;
}

std::vector<PerfCtr::MetricRow> measure_group(hwsim::SimMachine& machine,
                                              const SyntheticConfig& cfg,
                                              const std::string& group,
                                              const std::vector<int>& cpus) {
  return run_measured(machine, cfg, group, cpus).rows;
}

double metric_value(const std::vector<PerfCtr::MetricRow>& rows,
                    const std::string& name, int cpu) {
  for (const auto& row : rows) {
    if (row.name() == name) return row.at(cpu);
  }
  ADD_FAILURE() << "metric '" << name << "' not found";
  return std::nan("");
}

// --- configuration validation ----------------------------------------------

TEST(SyntheticConfig, RejectsInvalidDescriptors) {
  SyntheticConfig c = cache_ladder_kernel(1 << 20, 1);
  c.iterations_per_sweep = 0;
  EXPECT_THROW(SyntheticKernel{c}, Error);

  c = cache_ladder_kernel(1 << 20, 1);
  c.sweeps = 0;
  EXPECT_THROW(SyntheticKernel{c}, Error);

  c = cache_ladder_kernel(1 << 20, 1);
  c.access.stride_bytes = 4;
  EXPECT_THROW(SyntheticKernel{c}, Error);

  c = cache_ladder_kernel(1 << 20, 1);
  c.access.store_fraction = 1.5;
  EXPECT_THROW(SyntheticKernel{c}, Error);

  c = branchy_kernel(1000, 1, 0.2);
  c.mix.mispredict_ratio = -0.1;
  EXPECT_THROW(SyntheticKernel{c}, Error);

  EXPECT_THROW(dgemm_kernel(64, 128), Error);  // block larger than matrix
  EXPECT_THROW(cache_ladder_kernel(32, 1), Error);  // below one line
}

// --- steady-state traffic derivation ----------------------------------------

TEST(SweepTraffic, LadderRegimesFollowTheCacheSizes) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());  // 32k/256k/8M
  Placement p;
  p.cpus = {0};

  const SyntheticKernel in_l1(cache_ladder_kernel(16 * 1024, 1));
  auto t = in_l1.sweep_traffic(machine, p, 0);
  EXPECT_FALSE(t.misses_l1);
  EXPECT_FALSE(t.misses_llc);
  EXPECT_DOUBLE_EQ(t.lines, 256.0);

  const SyntheticKernel in_l2(cache_ladder_kernel(128 * 1024, 1));
  t = in_l2.sweep_traffic(machine, p, 0);
  EXPECT_TRUE(t.misses_l1);
  EXPECT_FALSE(t.misses_l2);

  const SyntheticKernel in_l3(cache_ladder_kernel(1 << 20, 1));
  t = in_l3.sweep_traffic(machine, p, 0);
  EXPECT_TRUE(t.misses_l2);
  EXPECT_FALSE(t.misses_llc);

  const SyntheticKernel in_mem(cache_ladder_kernel(32 << 20, 1));
  t = in_mem.sweep_traffic(machine, p, 0);
  EXPECT_TRUE(t.misses_llc);
}

TEST(SweepTraffic, SmtSiblingsShareTheL1Capacity) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  const auto siblings = machine.core_siblings(0);
  ASSERT_EQ(siblings.size(), 2u);

  // 24 kB fits the 32 kB L1 alone, but two co-resident sweeps do not.
  const SyntheticKernel k(cache_ladder_kernel(24 * 1024, 1));
  Placement alone;
  alone.cpus = {siblings[0]};
  EXPECT_FALSE(k.sweep_traffic(machine, alone, 0).misses_l1);

  Placement shared;
  shared.cpus = {siblings[0], siblings[1]};
  EXPECT_TRUE(k.sweep_traffic(machine, shared, 0).misses_l1);
  EXPECT_TRUE(k.sweep_traffic(machine, shared, 1).misses_l1);

  // Two workers on *different cores* keep private L1s: no sharing.
  Placement apart;
  apart.cpus = {0, 1};
  EXPECT_FALSE(k.sweep_traffic(machine, apart, 0).misses_l1);
}

TEST(SweepTraffic, SocketWorkersShareTheL3) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());  // 8 MB L3/socket
  const SyntheticKernel k(cache_ladder_kernel(3 << 20, 1));  // 3 MB each

  Placement two_cores;  // 6 MB on one socket: fits
  two_cores.cpus = {0, 1};
  EXPECT_FALSE(k.sweep_traffic(machine, two_cores, 0).misses_llc);

  Placement three_cores;  // 9 MB on one socket: overflows
  three_cores.cpus = {0, 1, 2};
  EXPECT_TRUE(k.sweep_traffic(machine, three_cores, 0).misses_llc);

  // Spread across sockets, each socket holds 3 MB: fits again.
  const auto socket1 = machine.cpus_of_socket(1);
  Placement split;
  split.cpus = {0, 1, socket1.front()};
  EXPECT_FALSE(k.sweep_traffic(machine, split, 0).misses_llc);
}

TEST(SweepTraffic, TlbMissesAppearBeyondTheTlbReach) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());  // 64 entries
  Placement p;
  p.cpus = {0};

  const SyntheticKernel fits(tlb_thrash_kernel(32, 1));
  EXPECT_DOUBLE_EQ(fits.sweep_traffic(machine, p, 0).dtlb_misses, 0.0);

  const SyntheticKernel thrash(tlb_thrash_kernel(256, 1));
  const auto t = thrash.sweep_traffic(machine, p, 0);
  EXPECT_DOUBLE_EQ(t.pages, 256.0);
  EXPECT_DOUBLE_EQ(t.dtlb_misses, 256.0);
}

TEST(SweepTraffic, RegisterOnlyKernelsGenerateNoTraffic) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  SyntheticConfig c;
  c.name = "alu";
  c.iterations_per_sweep = 1000;
  c.access.working_set_bytes = 0;
  const SyntheticKernel k(c);
  Placement p;
  p.cpus = {0};
  const auto t = k.sweep_traffic(machine, p, 0);
  EXPECT_DOUBLE_EQ(t.lines, 0.0);
  EXPECT_DOUBLE_EQ(t.dtlb_misses, 0.0);
  EXPECT_FALSE(t.misses_l1);
}

// --- end-to-end group measurements ------------------------------------------

TEST(SyntheticGroups, DataGroupSeesTheLoadStoreMix) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());

  auto rows = measure_group(machine, daxpy_kernel(100'000, 4), "DATA", {0});
  EXPECT_NEAR(metric_value(rows, "Load to store ratio", 0), 2.0, 1e-9);

  rows = measure_group(machine, copy_kernel(100'000, 4), "DATA", {0});
  EXPECT_NEAR(metric_value(rows, "Load to store ratio", 0), 1.0, 1e-9);

  // A store-free reduction: the evaluator reports 0 for x/0, like the tool.
  rows = measure_group(machine, dot_kernel(100'000, 4), "DATA", {0});
  EXPECT_DOUBLE_EQ(metric_value(rows, "Load to store ratio", 0), 0.0);
}

TEST(SyntheticGroups, BranchGroupRecoversTheMispredictRatio) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  const double ratio = 0.3;
  const auto rows =
      measure_group(machine, branchy_kernel(200'000, 2, ratio), "BRANCH", {0});
  EXPECT_NEAR(metric_value(rows, "Branch misprediction ratio", 0), ratio,
              1e-9);
  // One branch per 4 instructions in the branchy mix.
  EXPECT_NEAR(metric_value(rows, "Branch rate", 0), 0.25, 1e-9);
  EXPECT_NEAR(metric_value(rows, "Branch misprediction rate", 0),
              0.25 * ratio, 1e-9);
}

TEST(SyntheticGroups, TlbGroupSeparatesFitFromThrash) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  auto rows = measure_group(machine, tlb_thrash_kernel(32, 8), "TLB", {0});
  EXPECT_DOUBLE_EQ(metric_value(rows, "DTLB miss rate", 0), 0.0);

  const auto m = run_measured(machine, tlb_thrash_kernel(512, 8), "TLB", {0});
  EXPECT_GT(metric_value(m.rows, "DTLB miss rate", 0), 0.0);
  // Every page of every sweep misses: 512 * 8 events.
  double dtlb = -1;
  const auto& assignments = m.ctr->assignments_of(0);
  for (std::size_t slot = 0; slot < assignments.size(); ++slot) {
    if (assignments[slot].event_name.find("DTLB") != std::string::npos) {
      dtlb = m.ctr->results(0).counts.at(0, slot);
    }
  }
  EXPECT_DOUBLE_EQ(dtlb, 512.0 * 8.0);
}

TEST(SyntheticGroups, FlopsSpCountsPackedSingles) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  const auto m =
      run_measured(machine, saxpy_kernel(400'000, 1), "FLOPS_SP", {0});
  EXPECT_GT(metric_value(m.rows, "SP MFlops/s", 0), 0.0);
  double packed = 0;
  for (const auto& a : m.ctr->assignments_of(0)) {
    if (a.encoding->id == hwsim::EventId::kFpPackedSingle) {
      packed = m.ctr->extrapolated_count(0, 0, a.event_name);
    }
  }
  // saxpy issues half a 4-wide packed op per element.
  EXPECT_DOUBLE_EQ(packed, 200'000.0);
}

TEST(SyntheticGroups, DgemmRunsNearPeakFlops) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  const auto rows =
      measure_group(machine, dgemm_kernel(192, 48), "FLOPS_DP", {0});
  const double mflops = metric_value(rows, "DP MFlops/s", 0);
  // Peak of the model: 2 packed ops (4 flops) per cycle at 2.66 GHz.
  const double peak = 4.0 * 2.66e9 / 1e6;
  EXPECT_GT(mflops, 0.5 * peak);
  EXPECT_LE(mflops, 1.01 * peak);
  // Compute-bound code: CPI near the issue-limited 1/3.
  const double cpi = metric_value(rows, "CPI", 0);
  EXPECT_LT(cpi, 1.0);
}

TEST(SyntheticGroups, CacheLadderWalksTheHierarchy) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());

  // Fits L1: no L1 misses.
  auto rows = measure_group(machine, cache_ladder_kernel(16 * 1024, 64),
                            "CACHE", {0});
  EXPECT_DOUBLE_EQ(metric_value(rows, "L1 miss ratio", 0), 0.0);

  // Overflows L1, fits L2: L1 misses on every line, L2 misses none.
  rows = measure_group(machine, cache_ladder_kernel(128 * 1024, 64), "CACHE",
                       {0});
  // One load per line: every load misses L1 in steady state.
  EXPECT_NEAR(metric_value(rows, "L1 miss ratio", 0), 1.0, 1e-9);
  rows = measure_group(machine, cache_ladder_kernel(128 * 1024, 64),
                       "L2CACHE", {0});
  EXPECT_DOUBLE_EQ(metric_value(rows, "L2 miss ratio", 0), 0.0);

  // Overflows L2, fits L3.
  rows = measure_group(machine, cache_ladder_kernel(1 << 20, 16), "L2CACHE",
                       {0});
  EXPECT_NEAR(metric_value(rows, "L2 miss ratio", 0), 1.0, 1e-9);
  rows = measure_group(machine, cache_ladder_kernel(1 << 20, 16), "L3CACHE",
                       {0});
  EXPECT_DOUBLE_EQ(metric_value(rows, "L3 miss ratio", 0), 0.0);

  // Overflows L3: misses reach memory.
  rows = measure_group(machine, cache_ladder_kernel(32 << 20, 2), "L3CACHE",
                       {0});
  EXPECT_NEAR(metric_value(rows, "L3 miss ratio", 0), 1.0, 1e-9);
  rows = measure_group(machine, cache_ladder_kernel(32 << 20, 2), "MEM", {0});
  EXPECT_GT(metric_value(rows, "Memory bandwidth [MBytes/s]", 0), 0.0);
}

TEST(SyntheticGroups, NontemporalCopySavesATthirdOfTraffic) {
  hwsim::SimMachine machine(hwsim::presets::nehalem_ep());
  const std::size_t elems = 4 << 20;  // 64 MB working set: streams memory

  const auto wa_rows =
      measure_group(machine, copy_kernel(elems, 2, false), "MEM", {0});
  const auto nt_rows =
      measure_group(machine, copy_kernel(elems, 2, true), "MEM", {0});
  const double wa_vol = metric_value(wa_rows, "Memory data volume [GBytes]", 0);
  const double nt_vol = metric_value(nt_rows, "Memory data volume [GBytes]", 0);
  ASSERT_GT(wa_vol, 0.0);
  // Write-allocate copy moves 3 lines per 2 (read src, read+write dst);
  // the NT copy moves 2 (read src, stream dst): exactly 1/3 saved — the
  // same mechanism the paper's Table II shows for the Jacobi NT variant.
  EXPECT_NEAR(nt_vol / wa_vol, 2.0 / 3.0, 1e-6);
}

TEST(SyntheticGroups, LadderTrafficIsSharedAcrossAllPresets) {
  // The ladder well beyond every cache must produce memory traffic on any
  // supported architecture (MEM group exists on all of them).
  for (const auto& preset : hwsim::presets::all_presets()) {
    hwsim::SimMachine machine(preset.factory());
    const auto rows = measure_group(
        machine, cache_ladder_kernel(64 << 20, 1), "MEM", {0});
    double best = 0;
    for (const auto& row : rows) {
      if (row.name() == "Memory bandwidth [MBytes/s]") {
        for (const double v : row.values) best = std::max(best, v);
      }
    }
    EXPECT_GT(best, 0.0) << preset.key;
  }
}

}  // namespace
}  // namespace likwid::workloads
