// Tests for the OS simulation: cpu masks, scheduler placement, thread
// runtime with create-hook interposition, busy accounting, /proc/cpuinfo.
#include <gtest/gtest.h>

#include <set>

#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "ossim/threads.hpp"
#include "util/bitops.hpp"
#include "util/status.hpp"

namespace likwid::ossim {
namespace {

TEST(CpuMaskTest, BasicOperations) {
  CpuMask m;
  EXPECT_TRUE(m.empty());
  m.set(3);
  m.set(17);
  EXPECT_TRUE(m.test(3));
  EXPECT_FALSE(m.test(4));
  EXPECT_EQ(m.count(), 2);
  EXPECT_EQ(m.to_list(), (std::vector<int>{3, 17}));
  m.clear(3);
  EXPECT_FALSE(m.test(3));
}

TEST(CpuMaskTest, Factories) {
  EXPECT_EQ(CpuMask::first_n(4).to_list(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(CpuMask::single(7).to_list(), (std::vector<int>{7}));
  EXPECT_EQ(CpuMask::from_list({2, 5}).count(), 2);
  EXPECT_THROW(CpuMask::single(-1), Error);
  EXPECT_THROW(CpuMask::single(CpuMask::kMaxCpus), Error);
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : machine(hwsim::presets::westmere_ep()) {}
  hwsim::SimMachine machine;
};

TEST_F(SchedulerTest, SingleCpuMaskIsHonoredExactly) {
  Scheduler sched(machine, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sched.place(CpuMask::single(5)), 5);
  }
  EXPECT_EQ(sched.load(5), 10);
}

TEST_F(SchedulerTest, WideMaskStaysWithinMask) {
  Scheduler sched(machine, 2);
  CpuMask mask = CpuMask::from_list({1, 3, 5});
  for (int i = 0; i < 50; ++i) {
    const int cpu = sched.place(mask);
    EXPECT_TRUE(mask.test(cpu));
  }
}

TEST_F(SchedulerTest, EmptyMaskRejected) {
  Scheduler sched(machine, 3);
  EXPECT_THROW(sched.place(CpuMask()), Error);
}

TEST_F(SchedulerTest, RandomPlacementVariesWithSeed) {
  std::set<int> first_choices;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Scheduler sched(machine, seed);
    first_choices.insert(sched.place(CpuMask::first_n(24)));
  }
  EXPECT_GT(first_choices.size(), 4u);  // genuinely random
}

TEST_F(SchedulerTest, ReleaseDecrementsLoad) {
  Scheduler sched(machine, 4);
  const int cpu = sched.place(CpuMask::first_n(24));
  EXPECT_EQ(sched.load(cpu), 1);
  sched.release(cpu);
  EXPECT_EQ(sched.load(cpu), 0);
  EXPECT_THROW(sched.release(cpu), Error);  // double release
}

TEST_F(SchedulerTest, BusyAccountingSeparateFromPlacement) {
  Scheduler sched(machine, 5);
  const int cpu = sched.place(CpuMask::single(2));
  EXPECT_EQ(sched.busy_load(cpu), 0);
  sched.add_busy(cpu, 1);
  EXPECT_EQ(sched.busy_load(cpu), 1);
  sched.add_busy(cpu, -1);
  EXPECT_EQ(sched.busy_load(cpu), 0);
}

class ThreadRuntimeTest : public ::testing::Test {
 protected:
  ThreadRuntimeTest()
      : machine(hwsim::presets::westmere_ep()),
        sched(machine, 11),
        runtime(sched) {}
  hwsim::SimMachine machine;
  Scheduler sched;
  ThreadRuntime runtime;
};

TEST_F(ThreadRuntimeTest, MainThreadExistsAndIsPlaced) {
  EXPECT_EQ(runtime.num_threads(), 1);
  EXPECT_TRUE(runtime.thread(0).is_main);
  EXPECT_GE(runtime.thread(0).cpu, 0);
}

TEST_F(ThreadRuntimeTest, CreateAssignsSequentialTids) {
  EXPECT_EQ(runtime.create_thread(), 1);
  EXPECT_EQ(runtime.create_thread(), 2);
  EXPECT_EQ(runtime.num_threads(), 3);
}

TEST_F(ThreadRuntimeTest, CreateHookSeesCreationOrderNotTids) {
  std::vector<std::pair<int, int>> seen;
  runtime.set_create_hook([&](int index, int tid) {
    seen.push_back({index, tid});
  });
  runtime.create_thread();
  runtime.create_thread();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(seen[1], (std::pair<int, int>{1, 2}));
}

TEST_F(ThreadRuntimeTest, HookMayPinBeforePlacement) {
  runtime.set_create_hook([&](int, int tid) {
    runtime.set_affinity(tid, CpuMask::single(9));
  });
  const int tid = runtime.create_thread();
  EXPECT_EQ(runtime.thread(tid).cpu, 9);
}

TEST_F(ThreadRuntimeTest, DoubleHookInstallRejected) {
  runtime.set_create_hook([](int, int) {});
  try {
    runtime.set_create_hook([](int, int) {});
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidState);
  }
  runtime.clear_create_hook();
  EXPECT_NO_THROW(runtime.set_create_hook([](int, int) {}));
}

TEST_F(ThreadRuntimeTest, SetAffinityMigratesOffForbiddenCpu) {
  const int tid = runtime.create_thread();
  const int old_cpu = runtime.thread(tid).cpu;
  CpuMask other = CpuMask::single(old_cpu == 3 ? 4 : 3);
  runtime.set_affinity(tid, other);
  EXPECT_NE(runtime.thread(tid).cpu, old_cpu);
  EXPECT_TRUE(other.test(runtime.thread(tid).cpu));
}

TEST_F(ThreadRuntimeTest, BusyFollowsMigration) {
  const int tid = runtime.create_thread();
  runtime.set_busy(tid, true);
  const int before = runtime.thread(tid).cpu;
  EXPECT_EQ(sched.busy_load(before), 1);
  runtime.set_affinity(tid, CpuMask::single(before == 7 ? 6 : 7));
  EXPECT_EQ(sched.busy_load(before), 0);
  EXPECT_EQ(sched.busy_load(runtime.thread(tid).cpu), 1);
}

TEST_F(ThreadRuntimeTest, MigrateUnpinnedLeavesPinnedAlone) {
  const int pinned = runtime.create_thread();
  runtime.set_affinity(pinned, CpuMask::single(2));
  const int unpinned = runtime.create_thread();
  const int pinned_cpu = runtime.thread(pinned).cpu;
  bool moved = false;
  for (int i = 0; i < 64 && !moved; ++i) {
    const int before = runtime.thread(unpinned).cpu;
    runtime.migrate_unpinned();
    moved = runtime.thread(unpinned).cpu != before;
    EXPECT_EQ(runtime.thread(pinned).cpu, pinned_cpu);
  }
  EXPECT_TRUE(moved);  // random placement eventually moves it
}

TEST_F(ThreadRuntimeTest, UnknownTidFaults) {
  EXPECT_THROW(runtime.thread(42), Error);
  EXPECT_THROW(runtime.set_affinity(42, CpuMask::single(0)), Error);
}

TEST(KernelTest, TimeAdvancesMonotonically) {
  hwsim::SimMachine machine(hwsim::presets::core2_quad());
  SimKernel kernel(machine);
  EXPECT_EQ(kernel.now(), 0.0);
  kernel.advance_time(0.5);
  kernel.advance_time(0.25);
  EXPECT_DOUBLE_EQ(kernel.now(), 0.75);
  EXPECT_THROW(kernel.advance_time(-1), Error);
}

TEST(KernelTest, MsrDeviceRoundTrip) {
  hwsim::SimMachine machine(hwsim::presets::core2_quad());
  SimKernel kernel(machine);
  kernel.msr_write(1, hwsim::msr::kPmc0, 1234);
  EXPECT_EQ(kernel.msr_read(1, hwsim::msr::kPmc0), 1234u);
}

TEST(KernelTest, ProcCpuinfoListsEveryProcessor) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  SimKernel kernel(machine);
  const std::string info = kernel.proc_cpuinfo();
  for (int cpu = 0; cpu < 24; ++cpu) {
    EXPECT_NE(info.find("processor\t: " + std::to_string(cpu) + "\n"),
              std::string::npos);
  }
  EXPECT_NE(info.find("GenuineIntel"), std::string::npos);
  EXPECT_NE(info.find(machine.spec().brand_string), std::string::npos);
  // The paper's point: core ids in cpuinfo do not reveal cache sharing;
  // but physical id (socket) must be present.
  EXPECT_NE(info.find("physical id\t: 1"), std::string::npos);
}

TEST(KernelTest, MiscEnableWriteSyncsPrefetchersIntoCacheSim) {
  hwsim::SimMachine machine(hwsim::presets::core2_duo());
  SimKernel kernel(machine);
  // Disable all four prefetchers through the MSR (as likwid-features does).
  using namespace hwsim::msr;
  std::uint64_t misc = kernel.msr_read(0, kMiscEnable);
  misc = util::assign_bit(misc, kMiscHwPrefetcherDisable, true);
  misc = util::assign_bit(misc, kMiscAdjacentLineDisable, true);
  misc = util::assign_bit(misc, kMiscDcuPrefetcherDisable, true);
  misc = util::assign_bit(misc, kMiscIpPrefetcherDisable, true);
  kernel.msr_write(0, kMiscEnable, misc);
  // Stream: no prefetches must be issued now.
  for (std::uint64_t l = 0; l < 32; ++l) {
    kernel.caches().access(0, 0x10000 + l * 64, 64,
                           cachesim::AccessKind::kLoad);
  }
  EXPECT_EQ(kernel.caches().cpu_traffic(0).prefetches_issued, 0);
}

}  // namespace
}  // namespace likwid::ossim
