// Tests for likwid-pin's core: skip masks per thread model, the wrapper
// state machine against the simulated pthread layer, environment encoding,
// and the placement policies of the case studies.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/affinity.hpp"
#include "core/topology.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"
#include "workloads/openmp_model.hpp"

namespace likwid::core {
namespace {

TEST(SkipMasks, PaperDefaults) {
  EXPECT_EQ(default_skip_mask(ThreadModel::kGcc).bits(), 0x0u);
  EXPECT_EQ(default_skip_mask(ThreadModel::kIntel).bits(), 0x1u);
  EXPECT_EQ(default_skip_mask(ThreadModel::kIntelMpi).bits(), 0x3u);
}

TEST(ThreadModelParse, AcceptsToolNames) {
  EXPECT_EQ(parse_thread_model("gcc"), ThreadModel::kGcc);
  EXPECT_EQ(parse_thread_model("intel"), ThreadModel::kIntel);
  EXPECT_EQ(parse_thread_model("intel-mpi"), ThreadModel::kIntelMpi);
  EXPECT_EQ(parse_thread_model("Intel"), ThreadModel::kIntel);
  EXPECT_THROW(parse_thread_model("pgi"), Error);
}

TEST(PinEnvironment, RoundTrip) {
  PinConfig cfg;
  cfg.cpu_list = {0, 1, 2, 3, 8};
  cfg.skip = util::SkipMask(0x3);
  cfg.model = ThreadModel::kIntelMpi;
  util::Environment env;
  cfg.to_environment(env);
  EXPECT_EQ(env.get("LIKWID_PIN_CPULIST").value(), "0-3,8");
  EXPECT_EQ(env.get("LIKWID_SKIP_MASK").value(), "0x3");
  // The tool disables the Intel compiler's own affinity automatically.
  EXPECT_EQ(env.get("KMP_AFFINITY").value(), "disabled");
  const PinConfig back = PinConfig::from_environment(env);
  EXPECT_EQ(back.cpu_list, cfg.cpu_list);
  EXPECT_EQ(back.skip, cfg.skip);
  EXPECT_EQ(back.model, cfg.model);
}

TEST(PinEnvironment, MissingCpuListRejected) {
  util::Environment env;
  EXPECT_THROW(PinConfig::from_environment(env), Error);
}

class PinWrapperTest : public ::testing::Test {
 protected:
  PinWrapperTest()
      : machine(hwsim::presets::westmere_ep()),
        kernel(machine, 5),
        runtime(kernel.scheduler()) {}

  hwsim::SimMachine machine;
  ossim::SimKernel kernel;
  ossim::ThreadRuntime runtime;
};

TEST_F(PinWrapperTest, PinsMainThreadToFirstEntry) {
  PinConfig cfg;
  cfg.cpu_list = {5, 6, 7};
  PinWrapper wrapper(runtime, cfg);
  EXPECT_EQ(runtime.thread(0).cpu, 5);
  EXPECT_EQ(wrapper.pinned_count(), 1);
}

TEST_F(PinWrapperTest, PinsCreatedThreadsInListOrder) {
  PinConfig cfg;
  cfg.cpu_list = {0, 6, 1, 7};
  PinWrapper wrapper(runtime, cfg);
  const int t1 = runtime.create_thread();
  const int t2 = runtime.create_thread();
  const int t3 = runtime.create_thread();
  EXPECT_EQ(runtime.thread(t1).cpu, 6);
  EXPECT_EQ(runtime.thread(t2).cpu, 1);
  EXPECT_EQ(runtime.thread(t3).cpu, 7);
  EXPECT_EQ(wrapper.pinned_count(), 4);
}

TEST_F(PinWrapperTest, ListWrapsAroundWhenExhausted) {
  PinConfig cfg;
  cfg.cpu_list = {2, 3};
  PinWrapper wrapper(runtime, cfg);
  const int t1 = runtime.create_thread();  // 3
  const int t2 = runtime.create_thread();  // wraps to 2
  EXPECT_EQ(runtime.thread(t1).cpu, 3);
  EXPECT_EQ(runtime.thread(t2).cpu, 2);
}

TEST_F(PinWrapperTest, SkipMaskLeavesShepherdUnpinned) {
  // Intel OpenMP: skip the first created thread (mask 0x1).
  PinConfig cfg;
  cfg.cpu_list = {0, 1, 2, 3};
  cfg.model = ThreadModel::kIntel;
  cfg.skip = default_skip_mask(cfg.model);
  PinWrapper wrapper(runtime, cfg);
  const auto team =
      workloads::launch_openmp_team(runtime, workloads::OpenMpImpl::kIntel, 4);
  // Workers: master on 0, created workers on 1,2,3 in order.
  EXPECT_EQ(runtime.thread(team.worker_tids[0]).cpu, 0);
  EXPECT_EQ(runtime.thread(team.worker_tids[1]).cpu, 1);
  EXPECT_EQ(runtime.thread(team.worker_tids[2]).cpu, 2);
  EXPECT_EQ(runtime.thread(team.worker_tids[3]).cpu, 3);
  // The shepherd kept its full affinity mask.
  const int shepherd = team.service_tids.front();
  EXPECT_GT(runtime.thread(shepherd).affinity.count(), 1);
  EXPECT_EQ(wrapper.skipped_count(), 1);
}

TEST_F(PinWrapperTest, HybridMpiMaskSkipsTwo) {
  PinConfig cfg;
  cfg.cpu_list = {0, 1, 2, 3};
  cfg.model = ThreadModel::kIntelMpi;
  cfg.skip = default_skip_mask(cfg.model);
  PinWrapper wrapper(runtime, cfg);
  const auto team = workloads::launch_openmp_team(
      runtime, workloads::OpenMpImpl::kIntelMpi, 4);
  EXPECT_EQ(wrapper.skipped_count(), 2);
  for (const int tid : team.service_tids) {
    EXPECT_GT(runtime.thread(tid).affinity.count(), 1);
  }
  // Workers still land on 0,1,2,3.
  EXPECT_EQ(runtime.thread(team.worker_tids[1]).cpu, 1);
  EXPECT_EQ(runtime.thread(team.worker_tids[3]).cpu, 3);
}

TEST_F(PinWrapperTest, GccModelPinsEverything) {
  PinConfig cfg;
  cfg.cpu_list = {0, 1, 2, 3};
  PinWrapper wrapper(runtime, cfg);
  const auto team =
      workloads::launch_openmp_team(runtime, workloads::OpenMpImpl::kGcc, 4);
  for (std::size_t i = 0; i < team.worker_tids.size(); ++i) {
    EXPECT_EQ(runtime.thread(team.worker_tids[i]).cpu, static_cast<int>(i));
  }
  EXPECT_EQ(wrapper.skipped_count(), 0);
}

TEST_F(PinWrapperTest, EmptyListRejected) {
  PinConfig cfg;
  EXPECT_THROW(PinWrapper(runtime, cfg), Error);
}

TEST_F(PinWrapperTest, WrapperUninstallsOnDestruction) {
  {
    PinConfig cfg;
    cfg.cpu_list = {0};
    PinWrapper wrapper(runtime, cfg);
  }
  // A new wrapper can be installed afterwards.
  PinConfig cfg2;
  cfg2.cpu_list = {1};
  EXPECT_NO_THROW(PinWrapper(runtime, cfg2));
}

TEST(PlacementPolicies, ScatterDistributesOverSockets) {
  const hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const NodeTopology topo = probe_topology(machine);
  // Scatter: socket-alternating, physical cores first.
  const auto list4 = scatter_cpu_list(topo, 4);
  EXPECT_EQ(list4, (std::vector<int>{0, 6, 1, 7}));
  const auto list12 = scatter_cpu_list(topo, 12);
  // First 12 entries cover all physical cores before any SMT thread.
  for (const int cpu : list12) {
    EXPECT_LT(cpu, 12);  // os ids 12-23 are SMT siblings on Westmere
  }
  const auto all = physical_first_cpu_list(topo);
  EXPECT_EQ(all.size(), 24u);
  // SMT siblings come last.
  EXPECT_GE(all[12], 12);
}

// Regression for the likwid-pin -c path: a duplicate expression like
// "0,0-2" used to survive into the pin round-robin, so two workers landed
// on cpu 0 while cpu 2 stayed idle. The parse now collapses duplicates.
TEST(PinCpuExpression, CollapsesDuplicateIds) {
  const hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const NodeTopology topo = probe_topology(machine);
  EXPECT_EQ(parse_pin_cpu_expression(topo, "0,0-2"),
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parse_pin_cpu_expression(topo, "3,1-3"),
            (std::vector<int>{3, 1, 2}));
  // Logical selections dedupe before resolving against the topology.
  EXPECT_EQ(parse_pin_cpu_expression(topo, "L:0,0-1"),
            resolve_logical_cpu_list(topo, {0, 1}));
}

TEST(PinCpuExpression, DedupedListPinsDistinctCores) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const NodeTopology topo = probe_topology(machine);
  ossim::SimKernel kernel(machine);
  ossim::ThreadRuntime runtime(kernel.scheduler());

  PinConfig cfg;
  cfg.cpu_list = parse_pin_cpu_expression(topo, "0,0-2");
  PinWrapper wrapper(runtime, cfg);
  const auto team =
      workloads::launch_openmp_team(runtime, workloads::OpenMpImpl::kGcc, 3);
  // Three workers over "0,0-2": with the duplicate collapsed every worker
  // gets its own core instead of two sharing cpu 0.
  std::vector<int> cpus = runtime.placement(team.worker_tids);
  std::sort(cpus.begin(), cpus.end());
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2}));
}

TEST(PlacementPolicies, ScatterValidatesThreadCount) {
  const hwsim::SimMachine machine(hwsim::presets::core2_quad());
  const NodeTopology topo = probe_topology(machine);
  EXPECT_THROW(scatter_cpu_list(topo, 0), Error);
  EXPECT_THROW(scatter_cpu_list(topo, 5), Error);
  EXPECT_EQ(scatter_cpu_list(topo, 4).size(), 4u);
}

}  // namespace
}  // namespace likwid::core
