// Tests for the single set-associative cache: LRU replacement, eviction
// reporting, invalidation, dirty tracking, and geometric invariants.
#include <gtest/gtest.h>

#include "cachesim/cache.hpp"

namespace likwid::cachesim {
namespace {

CacheConfig small_cache() {
  // 4 sets x 2 ways x 64 B lines = 512 B.
  return CacheConfig{512, 2, 64, false};
}

TEST(Cache, GeometryDerivation) {
  SetAssociativeCache c(small_cache());
  EXPECT_EQ(c.num_sets(), 4u);
  EXPECT_EQ(c.associativity(), 2u);
  EXPECT_EQ(c.size_bytes(), 512u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssociativeCache(CacheConfig{0, 2, 64, false}), Error);
  EXPECT_THROW(SetAssociativeCache(CacheConfig{512, 2, 48, false}), Error);
  EXPECT_THROW(SetAssociativeCache(CacheConfig{500, 2, 64, false}), Error);
}

TEST(Cache, MissThenHit) {
  SetAssociativeCache c(small_cache());
  EXPECT_FALSE(c.lookup(100, false));
  c.insert(100, false);
  EXPECT_TRUE(c.lookup(100, false));
  EXPECT_TRUE(c.contains(100));
}

TEST(Cache, InsertReportsNoVictimWhileSetHasRoom) {
  SetAssociativeCache c(small_cache());
  EXPECT_FALSE(c.insert(0, false).valid);   // set 0
  EXPECT_FALSE(c.insert(4, false).valid);   // set 0, second way
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  SetAssociativeCache c(small_cache());
  // Lines 0, 4, 8 all map to set 0 (line % 4).
  c.insert(0, false);
  c.insert(4, false);
  EXPECT_TRUE(c.lookup(0, false));  // 0 becomes MRU, 4 is LRU
  const auto ev = c.insert(8, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, 4u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(4));
}

TEST(Cache, EvictionCarriesDirtyBit) {
  SetAssociativeCache c(small_cache());
  c.insert(0, true);
  c.insert(4, false);
  const auto ev = c.insert(8, false);  // evicts dirty line 0
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, 0u);
  EXPECT_TRUE(ev.dirty);
}

TEST(Cache, LookupCanMarkDirty) {
  SetAssociativeCache c(small_cache());
  c.insert(0, false);
  EXPECT_TRUE(c.lookup(0, /*mark_dirty=*/true));  // 0 now dirty and MRU
  c.insert(4, false);  // 4 is now MRU, 0 is LRU
  const auto ev = c.insert(8, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, 0u);  // LRU victim is the marked line
  EXPECT_TRUE(ev.dirty);        // ... and it carries the dirty bit
}

TEST(Cache, DoubleInsertThrows) {
  SetAssociativeCache c(small_cache());
  c.insert(0, false);
  EXPECT_THROW(c.insert(0, false), Error);
}

TEST(Cache, InvalidateRemovesAndReportsDirty) {
  SetAssociativeCache c(small_cache());
  c.insert(0, true);
  const auto r = c.invalidate(0);
  EXPECT_TRUE(r.was_present);
  EXPECT_TRUE(r.was_dirty);
  EXPECT_FALSE(c.contains(0));
  const auto r2 = c.invalidate(0);
  EXPECT_FALSE(r2.was_present);
}

TEST(Cache, FlushEmptiesEverything) {
  SetAssociativeCache c(small_cache());
  for (std::uint64_t l = 0; l < 8; ++l) c.insert(l, true);
  EXPECT_EQ(c.occupancy(), 8u);
  c.flush();
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_FALSE(c.contains(0));
}

TEST(Cache, DistinctSetsDoNotInterfere) {
  SetAssociativeCache c(small_cache());
  c.insert(0, false);  // set 0
  c.insert(1, false);  // set 1
  c.insert(2, false);  // set 2
  c.insert(3, false);  // set 3
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

// Property sweep: streaming through caches of varying geometry never loses
// or duplicates lines and respects capacity.
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheGeometry, StreamingRespectsCapacity) {
  const auto [sets, ways] = GetParam();
  CacheConfig cfg;
  cfg.line_size = 64;
  cfg.associativity = static_cast<std::uint32_t>(ways);
  cfg.size_bytes = static_cast<std::uint64_t>(sets) * ways * 64;
  SetAssociativeCache c(cfg);
  const std::uint64_t capacity = static_cast<std::uint64_t>(sets) * ways;
  for (std::uint64_t line = 0; line < 4 * capacity; ++line) {
    if (!c.lookup(line, false)) c.insert(line, false);
    EXPECT_LE(c.occupancy(), capacity);
  }
  // After the stream the last `capacity` lines are resident (pure LRU).
  for (std::uint64_t line = 3 * capacity; line < 4 * capacity; ++line) {
    EXPECT_TRUE(c.contains(line)) << "line " << line;
  }
  EXPECT_EQ(c.occupancy(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Combine(::testing::Values(1, 4, 64),
                                            ::testing::Values(1, 2, 8, 16)));

}  // namespace
}  // namespace likwid::cachesim
