// Tests for likwid-features: the report of Section II-D, prefetcher
// toggling through IA32_MISC_ENABLE, and the effect on the cache simulator.
#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"
#include "core/features.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"

namespace likwid::core {
namespace {

class FeaturesTest : public ::testing::Test {
 protected:
  FeaturesTest()
      : machine(hwsim::presets::core2_duo()),
        kernel(machine),
        features(kernel, 0) {}
  hwsim::SimMachine machine;
  ossim::SimKernel kernel;
  Features features;
};

TEST_F(FeaturesTest, ReportMatchesPaperListing) {
  const auto report = features.report();
  // The 14 lines of the paper's likwid-features output, in order.
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"Fast-Strings", "enabled"},
      {"Automatic Thermal Control", "enabled"},
      {"Performance monitoring", "enabled"},
      {"Hardware Prefetcher", "enabled"},
      {"Branch Trace Storage", "supported"},
      {"PEBS", "supported"},
      {"Intel Enhanced SpeedStep", "enabled"},
      {"MONITOR/MWAIT", "supported"},
      {"Adjacent Cache Line Prefetch", "enabled"},
      {"Limit CPUID Maxval", "disabled"},
      {"XD Bit Disable", "enabled"},
      {"DCU Prefetcher", "enabled"},
      {"Intel Dynamic Acceleration", "disabled"},
      {"IP Prefetcher", "enabled"},
  };
  ASSERT_EQ(report.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(report[i].name, expected[i].first) << i;
    EXPECT_EQ(report[i].state, expected[i].second) << i;
  }
}

TEST_F(FeaturesTest, PrefetcherNamesParse) {
  EXPECT_EQ(parse_prefetcher("HW_PREFETCHER"), Prefetcher::kHardware);
  EXPECT_EQ(parse_prefetcher("CL_PREFETCHER"), Prefetcher::kAdjacentLine);
  EXPECT_EQ(parse_prefetcher("DCU_PREFETCHER"), Prefetcher::kDcu);
  EXPECT_EQ(parse_prefetcher("IP_PREFETCHER"), Prefetcher::kIp);
  EXPECT_THROW(parse_prefetcher("L2_PREFETCHER"), Error);
}

TEST_F(FeaturesTest, ToggleRoundTrip) {
  // The paper's example: likwid-features -u CL_PREFETCHER.
  EXPECT_TRUE(features.prefetcher_enabled(Prefetcher::kAdjacentLine));
  features.set_prefetcher(Prefetcher::kAdjacentLine, false);
  EXPECT_FALSE(features.prefetcher_enabled(Prefetcher::kAdjacentLine));
  // The report reflects the change.
  bool found = false;
  for (const auto& s : features.report()) {
    if (s.name == "Adjacent Cache Line Prefetch") {
      EXPECT_EQ(s.state, "disabled");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  features.set_prefetcher(Prefetcher::kAdjacentLine, true);
  EXPECT_TRUE(features.prefetcher_enabled(Prefetcher::kAdjacentLine));
}

TEST_F(FeaturesTest, TogglesAreIndependent) {
  features.set_prefetcher(Prefetcher::kHardware, false);
  EXPECT_FALSE(features.prefetcher_enabled(Prefetcher::kHardware));
  EXPECT_TRUE(features.prefetcher_enabled(Prefetcher::kDcu));
  EXPECT_TRUE(features.prefetcher_enabled(Prefetcher::kIp));
  EXPECT_TRUE(features.prefetcher_enabled(Prefetcher::kAdjacentLine));
}

TEST_F(FeaturesTest, DisablingPrefetchersChangesCacheBehaviour) {
  // With everything enabled, a sequential stream triggers prefetches.
  auto& caches = kernel.caches();
  for (std::uint64_t l = 0; l < 32; ++l) {
    caches.access(0, 0x10000 + l * 64, 64, cachesim::AccessKind::kLoad);
  }
  EXPECT_GT(caches.cpu_traffic(0).prefetches_issued, 0);

  // Disable all prefetchers via the tool; the very same stream pattern
  // (different addresses) no longer prefetches.
  features.set_prefetcher(Prefetcher::kHardware, false);
  features.set_prefetcher(Prefetcher::kAdjacentLine, false);
  features.set_prefetcher(Prefetcher::kDcu, false);
  features.set_prefetcher(Prefetcher::kIp, false);
  caches.reset_counters();
  for (std::uint64_t l = 0; l < 32; ++l) {
    caches.access(0, 0x90000 + l * 64, 64, cachesim::AccessKind::kLoad);
  }
  EXPECT_EQ(caches.cpu_traffic(0).prefetches_issued, 0);
}

TEST_F(FeaturesTest, PerCoreState) {
  // Disabling on core 0 leaves core 1 untouched (the MSR is per core).
  Features f1(kernel, 1);
  features.set_prefetcher(Prefetcher::kHardware, false);
  EXPECT_FALSE(features.prefetcher_enabled(Prefetcher::kHardware));
  EXPECT_TRUE(f1.prefetcher_enabled(Prefetcher::kHardware));
}

TEST(FeaturesUnsupported, AmdRejected) {
  hwsim::SimMachine machine(hwsim::presets::amd_istanbul());
  ossim::SimKernel kernel(machine);
  try {
    Features f(kernel, 0);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
  }
}

TEST(FeaturesUnsupported, InvalidCpuRejected) {
  hwsim::SimMachine machine(hwsim::presets::core2_duo());
  ossim::SimKernel kernel(machine);
  EXPECT_THROW(Features(kernel, 7), Error);
}

}  // namespace
}  // namespace likwid::core
