// Tests for the perfctr measurement engine: counter assignment, socket
// locks, wrapper-mode measurement, custom event syntax, failure modes,
// multiplexing with extrapolation, derived metrics.
#include <gtest/gtest.h>

#include "core/perfctr.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"
#include "workloads/stream.hpp"

namespace likwid::core {
namespace {

class PerfCtrCore2 : public ::testing::Test {
 protected:
  PerfCtrCore2()
      : machine(hwsim::presets::core2_quad()), kernel(machine) {}

  void run_triad(const std::vector<int>& cpus, std::size_t len = 1'000'000,
                 int reps = 1) {
    workloads::StreamConfig cfg;
    cfg.array_length = len;
    cfg.repetitions = reps;
    workloads::StreamTriad triad(cfg);
    workloads::Placement p;
    p.cpus = cpus;
    for (const int c : cpus) kernel.scheduler().add_busy(c, 1);
    run_workload(kernel, triad, p);
    for (const int c : cpus) kernel.scheduler().add_busy(c, -1);
  }

  hwsim::SimMachine machine;
  ossim::SimKernel kernel;
};

TEST_F(PerfCtrCore2, GroupAssignmentAddsFixedCounters) {
  PerfCtr ctr(kernel, {0, 1});
  ctr.add_group("FLOPS_DP");
  const auto& a = ctr.assignments_of(0);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0].event_name, "INSTR_RETIRED_ANY");
  EXPECT_EQ(a[0].counter_name, "FIXC0");
  EXPECT_EQ(a[1].event_name, "CPU_CLK_UNHALTED_CORE");
  EXPECT_EQ(a[1].counter_name, "FIXC1");
  EXPECT_EQ(a[2].event_name, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE");
  EXPECT_EQ(a[2].counter_name, "PMC0");
  EXPECT_EQ(a[3].counter_name, "PMC1");
}

TEST_F(PerfCtrCore2, WrapperModeMeasuresTriad) {
  PerfCtr ctr(kernel, {0, 1, 2, 3});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  run_triad({0, 1, 2, 3}, 2'000'000, 2);
  ctr.stop();
  // 4M iterations over 4 workers = 1M packed ops each (icc profile).
  for (const int cpu : {0, 1, 2, 3}) {
    EXPECT_DOUBLE_EQ(ctr.extrapolated_count(
                         0, cpu, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"),
                     1'000'000);
    EXPECT_GT(ctr.extrapolated_count(0, cpu, "INSTR_RETIRED_ANY"), 0);
    EXPECT_GT(ctr.extrapolated_count(0, cpu, "CPU_CLK_UNHALTED_CORE"), 0);
  }
}

TEST_F(PerfCtrCore2, CountersStopWhenStopped) {
  PerfCtr ctr(kernel, {0});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  run_triad({0});
  ctr.stop();
  const double counted =
      ctr.extrapolated_count(0, 0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE");
  run_triad({0});  // not measured
  EXPECT_DOUBLE_EQ(
      ctr.extrapolated_count(0, 0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"),
      counted);
}

TEST_F(PerfCtrCore2, AccumulatesOverStartStopPairs) {
  PerfCtr ctr(kernel, {0});
  ctr.add_group("FLOPS_DP");
  for (int i = 0; i < 3; ++i) {
    ctr.start();
    run_triad({0});
    ctr.stop();
  }
  EXPECT_DOUBLE_EQ(
      ctr.extrapolated_count(0, 0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"),
      3'000'000);
}

TEST_F(PerfCtrCore2, CountingIsCoreBasedNotProcessBased) {
  // Measure core 0 while the work runs on core 2: nothing is counted on 0;
  // measuring core 2 from "outside" sees the foreign work.
  PerfCtr ctr(kernel, {0, 2});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  run_triad({2});
  ctr.stop();
  EXPECT_DOUBLE_EQ(
      ctr.extrapolated_count(0, 0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"),
      0);
  EXPECT_DOUBLE_EQ(
      ctr.extrapolated_count(0, 2, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"),
      1'000'000);
}

TEST_F(PerfCtrCore2, CustomEventSpecWithExplicitCounters) {
  // The paper's command line: -g SIMD_...PACKED_DOUBLE:PMC0,SIMD_...:PMC1.
  PerfCtr ctr(kernel, {1});
  ctr.add_custom(
      "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,"
      "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1");
  const auto& a = ctr.assignments_of(0);
  // Fixed counters implicit + the two custom events.
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[2].counter_name, "PMC0");
  EXPECT_EQ(a[3].counter_name, "PMC1");
  ctr.start();
  run_triad({1});
  ctr.stop();
  EXPECT_DOUBLE_EQ(ctr.extrapolated_count(
                       0, 1, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"),
                   1'000'000);
}

TEST_F(PerfCtrCore2, CustomEventAutoAssignment) {
  PerfCtr ctr(kernel, {0});
  ctr.add_custom("L1D_REPL,L1D_M_EVICT");
  const auto& a = ctr.assignments_of(0);
  EXPECT_EQ(a[2].counter_name, "PMC0");
  EXPECT_EQ(a[3].counter_name, "PMC1");
}

TEST_F(PerfCtrCore2, FailureModes) {
  PerfCtr ctr(kernel, {0});
  // Unknown event name.
  try {
    ctr.add_custom("NO_SUCH_EVENT:PMC0");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
  // Counter out of range (Core 2 has PMC0/PMC1 only).
  try {
    ctr.add_custom("L1D_REPL:PMC5");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
  // Too many events for the counter budget: automatic assignment runs
  // out of free slots, the enum's kResourceExhausted case.
  try {
    ctr.add_custom("L1D_REPL,L1D_M_EVICT,BUS_TRANS_MEM");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }
  // Same counter twice.
  EXPECT_THROW(ctr.add_custom("L1D_REPL:PMC0,L1D_M_EVICT:PMC0"), Error);
  // Stop without start / double start.
  EXPECT_THROW(ctr.stop(), Error);
  ctr.add_group("FLOPS_DP");
  ctr.start();
  EXPECT_THROW(ctr.start(), Error);
  ctr.stop();
}

TEST_F(PerfCtrCore2, InvalidCpuListRejected) {
  EXPECT_THROW(PerfCtr(kernel, {}), Error);
  EXPECT_THROW(PerfCtr(kernel, {0, 0}), Error);
  EXPECT_THROW(PerfCtr(kernel, {99}), Error);
}

TEST_F(PerfCtrCore2, UnsupportedGroupOnArch) {
  PerfCtr ctr(kernel, {0});
  try {
    ctr.add_group("L3CACHE");  // Core 2 has no L3
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
  }
}

TEST_F(PerfCtrCore2, DerivedMetricsMatchHandComputation) {
  PerfCtr ctr(kernel, {0});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  run_triad({0}, 4'000'000, 1);
  ctr.stop();
  const auto metrics = ctr.compute_metrics(0);
  ASSERT_EQ(metrics.size(), 3u);
  const double cycles = ctr.extrapolated_count(0, 0, "CPU_CLK_UNHALTED_CORE");
  const double instr = ctr.extrapolated_count(0, 0, "INSTR_RETIRED_ANY");
  const double pd = ctr.extrapolated_count(
      0, 0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE");
  const double time = cycles / (2.83e9);
  EXPECT_NEAR(metrics[0].at(0), time, time * 1e-6);       // Runtime
  EXPECT_NEAR(metrics[1].at(0), cycles / instr, 1e-9);    // CPI
  EXPECT_NEAR(metrics[2].at(0), 1e-6 * pd * 2.0 / time,
              1e-6);                                              // MFlops
}

class PerfCtrNehalem : public ::testing::Test {
 protected:
  PerfCtrNehalem()
      : machine(hwsim::presets::nehalem_ep()), kernel(machine) {}

  void run_triad_on(const std::vector<int>& cpus) {
    workloads::StreamConfig cfg;
    cfg.array_length = 1'000'000;
    cfg.repetitions = 1;
    workloads::StreamTriad triad(cfg);
    workloads::Placement p;
    p.cpus = cpus;
    for (const int c : cpus) kernel.scheduler().add_busy(c, 1);
    run_workload(kernel, triad, p);
    for (const int c : cpus) kernel.scheduler().add_busy(c, -1);
  }

  hwsim::SimMachine machine;
  ossim::SimKernel kernel;
};

TEST_F(PerfCtrNehalem, SocketLockAssignsOneOwnerPerSocket) {
  PerfCtr ctr(kernel, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(ctr.socket_lock_cpus(), (std::vector<int>{0, 4}));
  PerfCtr ctr2(kernel, {3, 2, 7});
  EXPECT_EQ(ctr2.socket_lock_cpus(), (std::vector<int>{3, 7}));
}

TEST_F(PerfCtrNehalem, UncoreEventsCountOnlyOnLockOwner) {
  PerfCtr ctr(kernel, {0, 1, 4});
  ctr.add_group("MEM");
  ctr.start();
  run_triad_on({0, 1});  // traffic on socket 0 only
  ctr.stop();
  const double reads0 =
      ctr.extrapolated_count(0, 0, "UNC_QMC_NORMAL_READS_ANY");
  const double reads1 =
      ctr.extrapolated_count(0, 1, "UNC_QMC_NORMAL_READS_ANY");
  const double reads4 =
      ctr.extrapolated_count(0, 4, "UNC_QMC_NORMAL_READS_ANY");
  EXPECT_GT(reads0, 0);   // socket-lock owner of socket 0
  EXPECT_EQ(reads1, 0);   // measured, same socket, but not the owner
  EXPECT_EQ(reads4, 0);   // other socket: no traffic there
}

TEST_F(PerfCtrNehalem, UncoreSeesWholeSocketTraffic) {
  // Even when only cpu 0 is measured, the uncore counters see the traffic
  // of the unmeasured cpu 2 on the same socket.
  PerfCtr ctr(kernel, {0});
  ctr.add_group("MEM");
  ctr.start();
  run_triad_on({2});
  ctr.stop();
  EXPECT_GT(ctr.extrapolated_count(0, 0, "UNC_QMC_NORMAL_READS_ANY"), 0);
}

TEST_F(PerfCtrNehalem, MultiplexingExtrapolatesCounts) {
  PerfCtr ctr(kernel, {0});
  ctr.add_group("FLOPS_DP");
  ctr.add_group("BRANCH");
  EXPECT_EQ(ctr.num_event_sets(), 2);

  // Run 4 equal slices, rotating after each: each set sees half the run.
  workloads::StreamConfig cfg;
  cfg.array_length = 4'000'000;
  cfg.repetitions = 1;
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = {0};
  kernel.scheduler().add_busy(0, 1);
  ctr.start();
  workloads::RunOptions opts;
  opts.quanta = 4;
  opts.between_quanta = [&ctr](int) { ctr.rotate(); };
  run_workload(kernel, triad, p, opts);
  ctr.stop();
  kernel.scheduler().add_busy(0, -1);

  // Raw counts: each set measured half the iterations; extrapolation
  // recovers the full-run estimate (steady workload -> exact).
  const double raw = ctr.results(0).counts.at(
      0, *ctr.slot_of(0, "FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE"));
  EXPECT_DOUBLE_EQ(raw, 2'000'000);
  EXPECT_NEAR(ctr.extrapolated_count(0, 0,
                                     "FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE"),
              4'000'000, 1);
  const double branches_raw = ctr.results(1).counts.at(
      0, *ctr.slot_of(1, "BR_INST_RETIRED_ALL_BRANCHES"));
  EXPECT_GT(branches_raw, 0);
  EXPECT_NEAR(
      ctr.extrapolated_count(1, 0, "BR_INST_RETIRED_ALL_BRANCHES"),
      branches_raw * 2, branches_raw * 0.01);
}

TEST_F(PerfCtrNehalem, RotateRequiresMultipleSetsOrWraps) {
  PerfCtr ctr(kernel, {0});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  ctr.rotate();  // single set: rotates back to itself
  EXPECT_EQ(ctr.current_set(), 0);
  EXPECT_TRUE(ctr.running());
  ctr.stop();
}

TEST_F(PerfCtrNehalem, AmdStylePerfCtrWorksToo) {
  hwsim::SimMachine amd(hwsim::presets::amd_istanbul());
  ossim::SimKernel akernel(amd);
  PerfCtr ctr(akernel, {0, 1});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  workloads::StreamConfig cfg;
  cfg.array_length = 1'000'000;
  cfg.repetitions = 1;
  cfg.compiler = workloads::icc_profile();
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = {0, 1};
  run_workload(akernel, triad, p);
  ctr.stop();
  EXPECT_DOUBLE_EQ(
      ctr.extrapolated_count(0, 0, "SSE_RETIRED_PACKED_DOUBLE"), 500'000);
  EXPECT_GT(ctr.extrapolated_count(0, 0, "RETIRED_INSTRUCTIONS"), 0);
}

}  // namespace
}  // namespace likwid::core
