// Differential tests for the fused struct-of-arrays metric engine
// (core/batch_program.hpp): the scalar CompiledMetric interpreter is the
// oracle, and the batched evaluator must reproduce it BIT-EQUAL — same
// IEEE-754 operations in the same dependency order — over every machine
// preset x group catalog entry, over randomized count slabs including
// NaN / infinity / zero-division rows, and over every time-binding mode
// (measured, fallback seconds, wall-time).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/batch_program.hpp"
#include "core/compiled_metric.hpp"
#include "core/count_slab.hpp"
#include "core/metric_expr.hpp"
#include "core/perfctr.hpp"
#include "core/topology.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"

namespace likwid::core {
namespace {

bool bit_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// Fill a slab with counter-like values plus adversarial rows: exact
// zeros (x/0 -> 0 paths), NaN and infinity (propagation must match the
// scalar interpreter bit for bit), and negative values (the abstract
// lattice assumes counters are nonnegative only for LINT purposes — the
// evaluator itself must not care).
void randomize_slab(CountSlab& slab, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> counts(0.0, 1e9);
  std::uniform_int_distribution<int> kind(0, 9);
  for (std::size_t r = 0; r < slab.rows(); ++r) {
    for (double& v : slab.row(r)) {
      switch (kind(rng)) {
        case 0: v = 0.0; break;
        case 1: v = std::numeric_limits<double>::quiet_NaN(); break;
        case 2: v = std::numeric_limits<double>::infinity(); break;
        case 3: v = -counts(rng); break;
        default: v = counts(rng); break;
      }
    }
  }
}

void expect_bit_equal_rows(const PerfCtr& ctr,
                           const std::vector<PerfCtr::MetricRow>& scalar,
                           const MetricBatch& batched,
                           const std::string& context) {
  ASSERT_EQ(scalar.size(), batched.size()) << context;
  ASSERT_EQ(batched.rows(), ctr.cpus().size()) << context;
  for (std::size_t m = 0; m < scalar.size(); ++m) {
    const MetricBatch::RowView view = batched[m];
    EXPECT_EQ(scalar[m].name_id, view.name_id) << context;
    ASSERT_EQ(scalar[m].values.size(), view.values.size()) << context;
    for (std::size_t r = 0; r < view.values.size(); ++r) {
      EXPECT_TRUE(bit_equal(scalar[m].values[r], view.values[r]))
          << context << " metric '" << scalar[m].name() << "' row " << r
          << ": scalar " << scalar[m].values[r] << " batched "
          << view.values[r];
    }
  }
}

// The full catalog sweep: every preset, every group its architecture
// supports, several randomized slabs, all three time-binding modes.
TEST(BatchDifferential, AllMachinesAllGroupsRandomSlabs) {
  std::size_t groups_with_cse_wins = 0;
  for (const auto& preset : hwsim::presets::all_presets()) {
    hwsim::SimMachine machine(preset.factory());
    ossim::SimKernel kernel(machine);
    const NodeTopology topo = probe_topology(machine);
    std::vector<int> cpus;
    for (std::size_t i = 0; i < topo.threads.size() && cpus.size() < 4; ++i) {
      cpus.push_back(topo.threads[i].os_id);
    }
    PerfCtr ctr(kernel, cpus);
    int set = 0;
    std::mt19937_64 rng(0xb47c5ab5 ^ std::hash<std::string>{}(preset.key));
    for (const EventGroup& group : supported_groups(ctr.arch())) {
      ctr.add_group(group.name);
      const std::string context = preset.key + "/" + group.name;
      // Fusion must cover every metric, never add work, and across the
      // catalog actually merge shared subexpressions (counted below).
      const BatchProgram& fused = ctr.fused_metrics(set);
      EXPECT_EQ(fused.num_metrics(), group.metrics.size()) << context;
      EXPECT_LE(fused.num_steps(), fused.fused_instructions()) << context;
      if (fused.num_steps() < fused.fused_instructions()) {
        ++groups_with_cse_wins;
      }
      CountSlab slab = ctr.make_slab(set);
      struct Mode {
        double fallback;
        bool wall_time;
      };
      for (const Mode mode : {Mode{-1.0, false}, Mode{0.37, false},
                              Mode{0.37, true}, Mode{0.0, true}}) {
        for (int round = 0; round < 3; ++round) {
          randomize_slab(slab, rng);
          const std::vector<PerfCtr::MetricRow> scalar =
              ctr.compute_metrics_for(set, slab, mode.fallback,
                                      mode.wall_time);
          MetricBatch batched;
          ctr.compute_metrics_batched(set, slab, batched, mode.fallback,
                                      mode.wall_time);
          expect_bit_equal_rows(ctr, scalar, batched, context);
          if (HasFailure()) return;  // one detailed report is enough
        }
      }
      ++set;
    }
  }
  // The bandwidth/rate groups all divide by time and reuse events across
  // formulas; if no group in the whole catalog fused anything, CSE broke.
  EXPECT_GT(groups_with_cse_wins, 0u);
}

TEST(BatchDifferential, EmptySlabReadsZeroEverywhere) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  ossim::SimKernel kernel(machine);
  PerfCtr ctr(kernel, {0, 1, 2});
  ctr.add_group("FLOPS_DP");
  const CountSlab empty;
  const std::vector<PerfCtr::MetricRow> scalar =
      ctr.compute_metrics_for(0, empty, 0.25);
  MetricBatch batched;
  ctr.compute_metrics_batched(0, empty, batched, 0.25);
  expect_bit_equal_rows(ctr, scalar, batched, "westmere-ep/FLOPS_DP/empty");
}

// A slab whose cpu list is NOT the ctr's (marker regions / foreign
// accumulators): the batched path must go through the row map, covering
// both matched rows and uncovered (-1 -> 0.0) rows.
TEST(BatchDifferential, ForeignCpuListUsesRowMap) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  ossim::SimKernel kernel(machine);
  PerfCtr ctr(kernel, {0, 1, 2, 3});
  ctr.add_group("MEM");
  const std::size_t slots = ctr.make_slab(0).slots();
  // Covers cpus 2 and 3 of the measured list, plus two foreign cpus.
  const auto foreign = std::make_shared<const std::vector<int>>(
      std::vector<int>{2, 3, 9, 11});
  CountSlab slab(foreign, slots);
  std::mt19937_64 rng(7);
  randomize_slab(slab, rng);
  for (const bool wall_time : {false, true}) {
    const std::vector<PerfCtr::MetricRow> scalar =
        ctr.compute_metrics_for(0, slab, 0.5, wall_time);
    MetricBatch batched;
    ctr.compute_metrics_batched(0, slab, batched, 0.5, wall_time);
    expect_bit_equal_rows(ctr, scalar, batched, "westmere-ep/MEM/foreign");
  }
}

// End-to-end: a real measured workload through the wrapper path. The
// public compute_metrics() routes through the batched engine; the scalar
// oracle over the same extrapolated counts must agree bit for bit.
TEST(BatchDifferential, MeasuredWrapperRunMatchesScalar) {
  hwsim::SimMachine machine(hwsim::presets::core2_quad());
  ossim::SimKernel kernel(machine);
  PerfCtr ctr(kernel, {0, 1});
  ctr.add_group("FLOPS_DP");
  ctr.start();
  kernel.advance_time(0.01);
  ctr.stop();
  const CountSlab counts = ctr.extrapolated_counts(0);
  const std::vector<PerfCtr::MetricRow> scalar =
      ctr.compute_metrics_for(0, counts);
  const std::vector<PerfCtr::MetricRow> rows = ctr.compute_metrics(0);
  ASSERT_EQ(scalar.size(), rows.size());
  for (std::size_t m = 0; m < scalar.size(); ++m) {
    ASSERT_EQ(scalar[m].values.size(), rows[m].values.size());
    for (std::size_t r = 0; r < scalar[m].values.size(); ++r) {
      EXPECT_TRUE(bit_equal(scalar[m].values[r], rows[m].values[r]))
          << scalar[m].name() << " row " << r;
    }
  }
}

// Hand-authored fusion: known formulas over a 2-slot register file,
// checking CSE merging, step counts and per-row results directly against
// CompiledMetric::evaluate.
TEST(BatchProgramFuse, HandAuthoredFormulas) {
  const auto reg_of = [](std::string_view name) -> int {
    if (name == "A") return 0;
    if (name == "B") return 1;
    if (name == "time") return 2;
    if (name == "clock") return 3;
    return -1;
  };
  const CompiledMetric p0 = MetricExpr::parse("A/B").compile(reg_of);
  const CompiledMetric p1 = MetricExpr::parse("A/B+B*time").compile(reg_of);
  const CompiledMetric p2 = MetricExpr::parse("clock/(A-B)").compile(reg_of);
  const std::vector<const CompiledMetric*> programs{&p0, &p1, &p2};
  const BatchProgram fused = BatchProgram::fuse(programs, 2);
  EXPECT_EQ(fused.num_metrics(), 3u);
  EXPECT_EQ(fused.fused_instructions(), p0.size() + p1.size() + p2.size());
  // "A/B" (3 scalar instructions) is fully shared with p1's first term.
  EXPECT_LE(fused.num_steps(), fused.fused_instructions() - 3);

  const auto cpus =
      std::make_shared<const std::vector<int>>(std::vector<int>{0, 1, 2});
  CountSlab slab(cpus, 2);
  slab.at(0, 0) = 6.0;
  slab.at(0, 1) = 3.0;   // plain ratio
  slab.at(1, 0) = 5.0;
  slab.at(1, 1) = 0.0;   // x/0 -> 0 and A-B nonzero
  slab.at(2, 0) = 4.0;
  slab.at(2, 1) = 4.0;   // A-B cancels: clock/(A-B) -> 0

  BatchBinding binding;
  binding.counts = &slab;
  binding.time_value = 0.5;
  binding.clock_hz = 2.0e9;
  BatchScratch scratch;
  std::vector<double> out(3 * 3);
  fused.evaluate(binding, 3, scratch, out);
  for (std::size_t r = 0; r < 3; ++r) {
    const double regs[4] = {slab.row(r)[0], slab.row(r)[1], 0.5, 2.0e9};
    EXPECT_TRUE(bit_equal(out[0 * 3 + r], p0.evaluate(regs))) << r;
    EXPECT_TRUE(bit_equal(out[1 * 3 + r], p1.evaluate(regs))) << r;
    EXPECT_TRUE(bit_equal(out[2 * 3 + r], p2.evaluate(regs))) << r;
  }
  EXPECT_DOUBLE_EQ(out[0 * 3 + 1], 0.0);  // 5/0 -> 0
  EXPECT_DOUBLE_EQ(out[2 * 3 + 2], 0.0);  // clock/0 -> 0
}

// The fused zero-division analysis must report exactly the scalar
// analysis's sites — likwid-lint cross-checks this on every group, this
// is the unit-level pin.
TEST(BatchProgramFuse, DivisionRisksMatchScalarPerSite) {
  const auto reg_of = [](std::string_view name) -> int {
    if (name == "A") return 0;
    if (name == "B") return 1;
    if (name == "time") return 2;
    return -1;
  };
  const CompiledMetric p0 = MetricExpr::parse("A/B").compile(reg_of);
  // Duplicated division site: CSE merges the step, but per-site reporting
  // must still list it twice.
  const CompiledMetric p1 = MetricExpr::parse("A/B + A/B").compile(reg_of);
  const CompiledMetric p2 = MetricExpr::parse("A/(B*0)").compile(reg_of);
  const std::vector<const CompiledMetric*> programs{&p0, &p1, &p2};
  const BatchProgram fused = BatchProgram::fuse(programs, 2);
  const std::vector<bool> nonzero{false, false, true};
  const auto fused_risks = fused.division_risks(nonzero);
  ASSERT_EQ(fused_risks.size(), 3u);
  const std::vector<const CompiledMetric*> scalars{&p0, &p1, &p2};
  for (std::size_t m = 0; m < scalars.size(); ++m) {
    const auto scalar_risks = scalars[m]->division_risks(nonzero);
    ASSERT_EQ(fused_risks[m].size(), scalar_risks.size()) << m;
    for (std::size_t i = 0; i < scalar_risks.size(); ++i) {
      EXPECT_EQ(fused_risks[m][i].certain, scalar_risks[i].certain) << m;
      EXPECT_EQ(fused_risks[m][i].cancellation, scalar_risks[i].cancellation)
          << m;
      EXPECT_EQ(fused_risks[m][i].registers, scalar_risks[i].registers) << m;
    }
  }
  EXPECT_EQ(fused_risks[1].size(), 2u);      // both sites of "A/B + A/B"
  EXPECT_TRUE(fused_risks[2][0].certain);    // B*0 is provably zero
}

TEST(MetricBatchView, RowViewMirrorsMetricRowAccessors) {
  hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  ossim::SimKernel kernel(machine);
  PerfCtr ctr(kernel, {0, 2});
  ctr.add_group("BRANCH");
  CountSlab slab = ctr.make_slab(0);
  std::mt19937_64 rng(3);
  randomize_slab(slab, rng);
  MetricBatch batched;
  ctr.compute_metrics_batched(0, slab, batched, 1.0);
  ASSERT_FALSE(batched.empty());
  std::size_t seen = 0;
  for (const MetricBatch::RowView row : batched) {
    EXPECT_FALSE(row.name().empty());
    EXPECT_TRUE(bit_equal(row.at(2), row.values[1]));
    EXPECT_DOUBLE_EQ(row.value_or(5, -1.0), -1.0);
    EXPECT_THROW(row.at(5), Error);
    ++seen;
  }
  EXPECT_EQ(seen, batched.size());
  // clear() keeps capacity but drops the rows.
  batched.clear();
  EXPECT_TRUE(batched.empty());
  EXPECT_EQ(batched.rows(), 0u);
}

}  // namespace
}  // namespace likwid::core
