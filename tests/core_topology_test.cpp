// Tests for the topology decoder: reconstructing thread and cache topology
// purely from emulated cpuid, validated against the machine specs for
// every preset (the decoder itself never sees the spec).
#include <gtest/gtest.h>

#include <set>

#include "core/topology.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"

namespace likwid::core {
namespace {

using hwsim::presets::NamedPreset;

class TopologyDecode : public ::testing::TestWithParam<NamedPreset> {};

TEST_P(TopologyDecode, ThreadTopologyMatchesSpec) {
  const hwsim::SimMachine machine(GetParam().factory());
  const auto& spec = machine.spec();
  const NodeTopology topo = probe_topology(machine);

  EXPECT_EQ(topo.num_hw_threads, spec.num_hw_threads());
  EXPECT_EQ(topo.num_sockets, spec.sockets);
  EXPECT_EQ(topo.num_cores_per_socket, spec.cores_per_socket);
  EXPECT_EQ(topo.num_threads_per_core, spec.threads_per_core);
  EXPECT_EQ(topo.vendor, spec.vendor);
  EXPECT_EQ(topo.family, spec.family);
  EXPECT_EQ(topo.model, spec.model);
  EXPECT_EQ(topo.arch, machine.arch());
  EXPECT_DOUBLE_EQ(topo.clock_ghz, spec.clock_ghz);
}

TEST_P(TopologyDecode, PerThreadMappingMatchesEnumeration) {
  const hwsim::SimMachine machine(GetParam().factory());
  const NodeTopology topo = probe_topology(machine);
  for (const auto& hw : machine.threads()) {
    const ThreadEntry& e = topo.threads.at(static_cast<std::size_t>(hw.os_id));
    EXPECT_EQ(e.os_id, hw.os_id);
    EXPECT_EQ(e.socket_id, hw.socket);
    EXPECT_EQ(e.core_id, hw.core_apic);
    EXPECT_EQ(e.thread_id, hw.smt);
    EXPECT_EQ(e.apic_id, hw.apic_id);
  }
}

TEST_P(TopologyDecode, DataCachesMatchSpec) {
  const hwsim::SimMachine machine(GetParam().factory());
  const auto& spec = machine.spec();
  const NodeTopology topo = probe_topology(machine);

  std::size_t spec_data_caches = 0;
  for (const auto& c : spec.caches) {
    if (c.type != hwsim::CacheType::kInstruction) ++spec_data_caches;
  }
  ASSERT_EQ(topo.caches.size(), spec_data_caches);
  for (const auto& decoded : topo.caches) {
    const auto& expected = spec.data_cache(decoded.level);
    EXPECT_EQ(decoded.size_bytes, expected.size_bytes)
        << "level " << decoded.level;
    EXPECT_EQ(decoded.associativity, expected.associativity);
    EXPECT_EQ(decoded.line_size, expected.line_size);
    EXPECT_EQ(decoded.num_sets, expected.num_sets());
    EXPECT_EQ(decoded.threads_sharing,
              static_cast<int>(expected.shared_by_threads));
  }
}

TEST_P(TopologyDecode, CacheGroupsPartitionTheNode) {
  const hwsim::SimMachine machine(GetParam().factory());
  const NodeTopology topo = probe_topology(machine);
  for (const auto& cache : topo.caches) {
    std::set<int> seen;
    for (const auto& group : cache.groups) {
      EXPECT_EQ(static_cast<int>(group.size()), cache.threads_sharing);
      for (const int os : group) {
        EXPECT_TRUE(seen.insert(os).second)
            << "os id " << os << " in two groups of L" << cache.level;
      }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), topo.num_hw_threads);
  }
}

TEST_P(TopologyDecode, SocketsPartitionTheNode) {
  const hwsim::SimMachine machine(GetParam().factory());
  const NodeTopology topo = probe_topology(machine);
  std::set<int> seen;
  for (const auto& members : topo.sockets) {
    for (const int os : members) {
      EXPECT_TRUE(seen.insert(os).second);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), topo.num_hw_threads);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, TopologyDecode,
    ::testing::ValuesIn(hwsim::presets::all_presets()),
    [](const ::testing::TestParamInfo<NamedPreset>& info) {
      std::string name = info.param.key;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(TopologyWestmere, MatchesPaperListing) {
  const hwsim::SimMachine machine(hwsim::presets::westmere_ep());
  const NodeTopology topo = probe_topology(machine);

  // "Sockets: 2 / Cores per socket: 6 / Threads per core: 2".
  EXPECT_EQ(topo.num_sockets, 2);
  EXPECT_EQ(topo.num_cores_per_socket, 6);
  EXPECT_EQ(topo.num_threads_per_core, 2);

  // HWThread 3 -> Thread 0, Core 8, Socket 0 (the paper's table).
  EXPECT_EQ(topo.threads[3].thread_id, 0);
  EXPECT_EQ(topo.threads[3].core_id, 8);
  EXPECT_EQ(topo.threads[3].socket_id, 0);
  // HWThread 23 -> Thread 1, Core 10, Socket 1.
  EXPECT_EQ(topo.threads[23].thread_id, 1);
  EXPECT_EQ(topo.threads[23].core_id, 10);
  EXPECT_EQ(topo.threads[23].socket_id, 1);

  // "Socket 0: ( 0 12 1 13 2 14 3 15 4 16 5 17 )".
  EXPECT_EQ(topo.sockets[0],
            (std::vector<int>{0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17}));
  EXPECT_EQ(topo.sockets[1],
            (std::vector<int>{6, 18, 7, 19, 8, 20, 9, 21, 10, 22, 11, 23}));

  // L1: 32 kB, 8-way, 64 sets, shared among 2 threads, groups ( 0 12 ) ...
  const CacheEntry& l1 = topo.caches[0];
  EXPECT_EQ(l1.size_bytes, 32u * 1024);
  EXPECT_EQ(l1.associativity, 8u);
  EXPECT_EQ(l1.num_sets, 64u);
  EXPECT_EQ(l1.threads_sharing, 2);
  EXPECT_TRUE(l1.inclusive);
  ASSERT_EQ(l1.groups.size(), 12u);
  EXPECT_EQ(l1.groups[0], (std::vector<int>{0, 12}));
  EXPECT_EQ(l1.groups[1], (std::vector<int>{1, 13}));

  // L3: 12 MB, 16-way, 12288 sets, non-inclusive, shared among 12.
  const CacheEntry& l3 = topo.caches[2];
  EXPECT_EQ(l3.level, 3);
  EXPECT_EQ(l3.size_bytes, 12u * 1024 * 1024);
  EXPECT_EQ(l3.associativity, 16u);
  EXPECT_EQ(l3.num_sets, 12288u);
  EXPECT_FALSE(l3.inclusive);
  EXPECT_EQ(l3.threads_sharing, 12);
  ASSERT_EQ(l3.groups.size(), 2u);
  EXPECT_EQ(l3.groups[0],
            (std::vector<int>{0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17}));
}

TEST(TopologyNames, PaperDisplayNames) {
  EXPECT_EQ(probe_topology(hwsim::SimMachine(hwsim::presets::core2_quad()))
                .cpu_name,
            "Intel Core 2 45nm processor");
  EXPECT_EQ(probe_topology(hwsim::SimMachine(hwsim::presets::core2_duo()))
                .cpu_name,
            "Intel Core 2 65nm processor");
  EXPECT_EQ(probe_topology(hwsim::SimMachine(hwsim::presets::westmere_ep()))
                .cpu_name,
            "Intel Westmere EP processor");
}

TEST(TopologyDecoderSource, WorksThroughArbitraryCpuidSource) {
  // The decoder depends only on the CpuidSource callable — demonstrate by
  // wrapping the emulator manually (this is the seam where real cpuid
  // would plug in on bare metal).
  const hwsim::MachineSpec spec = hwsim::presets::nehalem_ep();
  const hwsim::CpuidEmulator emu(spec);
  const auto threads = hwsim::enumerate_hw_threads(spec);
  int queries = 0;
  const CpuidSource source = [&](int os_id, std::uint32_t leaf,
                                 std::uint32_t sub) {
    ++queries;
    return emu.query(threads.at(static_cast<std::size_t>(os_id)), leaf, sub);
  };
  const NodeTopology topo =
      probe_topology(source, static_cast<int>(threads.size()), 2.66);
  EXPECT_EQ(topo.num_sockets, 2);
  EXPECT_GT(queries, 16);  // at least one query per cpu
}

TEST(TopologyDecoderSource, RejectsUnknownVendor) {
  const CpuidSource source = [](int, std::uint32_t, std::uint32_t) {
    return hwsim::CpuidRegs{};  // all-zero vendor string
  };
  try {
    probe_topology(source, 1, 2.0);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
  }
}

}  // namespace
}  // namespace likwid::core
