// Tests for the PMU: counters only count what their programming selects,
// only while enabled; fixed counters; counter-width wrap; uncore counting
// with socket scope; AMD northbridge visibility from all cores.
#include <gtest/gtest.h>

#include "hwsim/machine.hpp"
#include "hwsim/presets.hpp"
#include "util/bitops.hpp"

namespace likwid::hwsim {
namespace {

std::uint64_t evtsel(std::uint16_t event, std::uint8_t umask,
                     bool enable = true) {
  std::uint64_t sel = 0;
  sel = util::deposit_bits(sel, msr::kEvtSelEventLo, msr::kEvtSelEventHi,
                           event & 0xFF);
  sel = util::deposit_bits(sel, msr::kEvtSelUmaskLo, msr::kEvtSelUmaskHi,
                           umask);
  sel = util::assign_bit(sel, msr::kEvtSelUsr, true);
  sel = util::assign_bit(sel, msr::kEvtSelOs, true);
  sel = util::assign_bit(sel, msr::kEvtSelEnable, enable);
  if (event > 0xFF) {
    sel = util::deposit_bits(sel, msr::kAmdEvtSelExtLo, msr::kAmdEvtSelExtHi,
                             event >> 8);
  }
  return sel;
}

EventVector flops_events() {
  EventVector ev;
  ev[EventId::kFpPackedDouble] = 1000;
  ev[EventId::kFpScalarDouble] = 7;
  ev[EventId::kInstructionsRetired] = 5000;
  ev[EventId::kCoreCycles] = 9000;
  ev[EventId::kRefCycles] = 9000;
  return ev;
}

class PmuCore2 : public ::testing::Test {
 protected:
  PmuCore2() : machine(presets::core2_quad()) {}
  SimMachine machine;
};

TEST_F(PmuCore2, DisabledCountersStaySilent) {
  machine.post_core_events(0, flops_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 0u);
  EXPECT_EQ(machine.msrs().read(0, msr::kFixedCtr0), 0u);
}

TEST_F(PmuCore2, ProgrammedCounterCountsSelectedEvent) {
  // SIMD_COMP_INST_RETIRED_PACKED_DOUBLE = 0xCA/0x04 on Core 2.
  machine.msrs().write(1, msr::kPerfEvtSel0, evtsel(0xCA, 0x04));
  machine.msrs().write(1, msr::kPerfGlobalCtrl, 0x1);
  machine.post_core_events(1, flops_events());
  EXPECT_EQ(machine.msrs().read(1, msr::kPmc0), 1000u);
  // Other cores unaffected (core-based counting).
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 0u);
}

TEST_F(PmuCore2, UmaskDistinguishesEvents) {
  machine.msrs().write(0, msr::kPerfEvtSel0, evtsel(0xCA, 0x04));  // packed
  machine.msrs().write(0, msr::kPerfEvtSel0 + 1, evtsel(0xCA, 0x08));  // scalar
  machine.msrs().write(0, msr::kPerfGlobalCtrl, 0x3);
  machine.post_core_events(0, flops_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 1000u);
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0 + 1), 7u);
}

TEST_F(PmuCore2, UndocumentedEncodingCountsNothing) {
  machine.msrs().write(0, msr::kPerfEvtSel0, evtsel(0x42, 0x42));
  machine.msrs().write(0, msr::kPerfGlobalCtrl, 0x1);
  machine.post_core_events(0, flops_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 0u);
}

TEST_F(PmuCore2, EnableBitGatesCounting) {
  machine.msrs().write(0, msr::kPerfEvtSel0, evtsel(0xCA, 0x04, false));
  machine.msrs().write(0, msr::kPerfGlobalCtrl, 0x1);
  machine.post_core_events(0, flops_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 0u);
}

TEST_F(PmuCore2, GlobalCtrlGatesCounting) {
  machine.msrs().write(0, msr::kPerfEvtSel0, evtsel(0xCA, 0x04));
  machine.msrs().write(0, msr::kPerfGlobalCtrl, 0x0);
  machine.post_core_events(0, flops_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 0u);
}

TEST_F(PmuCore2, NoRingSelectionCountsNothing) {
  std::uint64_t sel = evtsel(0xCA, 0x04);
  sel = util::assign_bit(sel, msr::kEvtSelUsr, false);
  sel = util::assign_bit(sel, msr::kEvtSelOs, false);
  machine.msrs().write(0, msr::kPerfEvtSel0, sel);
  machine.msrs().write(0, msr::kPerfGlobalCtrl, 0x1);
  machine.post_core_events(0, flops_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 0u);
}

TEST_F(PmuCore2, FixedCountersCountWhenEnabled) {
  machine.msrs().write(0, msr::kFixedCtrCtrl, 0x333);
  machine.msrs().write(0, msr::kPerfGlobalCtrl, 0x7ull << 32);
  machine.post_core_events(0, flops_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kFixedCtr0), 5000u);  // instructions
  EXPECT_EQ(machine.msrs().read(0, msr::kFixedCtr0 + 1), 9000u);  // cycles
  EXPECT_EQ(machine.msrs().read(0, msr::kFixedCtr0 + 2), 9000u);  // ref
}

TEST_F(PmuCore2, TscAdvancesWithRefCycles) {
  const std::uint64_t before = machine.msrs().read(0, msr::kTsc);
  machine.post_core_events(0, flops_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kTsc), before + 9000u);
}

TEST_F(PmuCore2, CounterWrapsAtGpWidth) {
  // Core 2 GP counters are 40 bits wide.
  machine.msrs().write(0, msr::kPerfEvtSel0, evtsel(0xCA, 0x04));
  machine.msrs().write(0, msr::kPerfGlobalCtrl, 0x1);
  machine.msrs().write(0, msr::kPmc0, counter_mask(40) - 500);
  machine.post_core_events(0, flops_events());  // +1000 packed ops
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 499u);
  // The wrap-aware delta recovers the true count.
  EXPECT_EQ(counter_delta(counter_mask(40) - 500, 499, 40), 1000u);
}

TEST_F(PmuCore2, AccumulatesAcrossSlices) {
  machine.msrs().write(0, msr::kPerfEvtSel0, evtsel(0xCA, 0x04));
  machine.msrs().write(0, msr::kPerfGlobalCtrl, 0x1);
  machine.post_core_events(0, flops_events());
  machine.post_core_events(0, flops_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 2000u);
}

class PmuNehalem : public ::testing::Test {
 protected:
  PmuNehalem() : machine(presets::nehalem_ep()) {}

  void program_uncore(int cpu) {
    // UNC_L3_LINES_IN_ANY = 0x0A/0x0F on UPMC0.
    machine.msrs().write(cpu, msr::kUncPerfEvtSel0, evtsel(0x0A, 0x0F));
    machine.msrs().write(cpu, msr::kUncFixedCtrCtrl, 1);
    machine.msrs().write(cpu, msr::kUncPerfGlobalCtrl,
                         (std::uint64_t{1} << 32) | 0x1);
  }

  static EventVector l3_events() {
    EventVector ev;
    ev[EventId::kUncL3LinesIn] = 123456;
    ev[EventId::kUncClockticks] = 777;
    return ev;
  }

  SimMachine machine;
};

TEST_F(PmuNehalem, UncoreCountsSocketEvents) {
  program_uncore(0);
  machine.post_uncore_events(0, l3_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kUncPmc0), 123456u);
  EXPECT_EQ(machine.msrs().read(0, msr::kUncFixedCtr0), 777u);
  // Visible through any cpu of socket 0, zero on socket 1.
  EXPECT_EQ(machine.msrs().read(1, msr::kUncPmc0), 123456u);
  EXPECT_EQ(machine.msrs().read(4, msr::kUncPmc0), 0u);
}

TEST_F(PmuNehalem, UncoreEventsToOtherSocketNotCounted) {
  program_uncore(0);
  machine.post_uncore_events(1, l3_events());  // socket 1 traffic
  EXPECT_EQ(machine.msrs().read(0, msr::kUncPmc0), 0u);
}

TEST_F(PmuNehalem, UncoreGlobalCtrlGates) {
  program_uncore(0);
  machine.msrs().write(0, msr::kUncPerfGlobalCtrl, 0);
  machine.post_uncore_events(0, l3_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kUncPmc0), 0u);
}

TEST_F(PmuNehalem, CoreCounterCannotSelectUncoreEvent) {
  // Programming the uncore encoding into a core counter counts nothing.
  machine.msrs().write(0, msr::kPerfEvtSel0, evtsel(0x0A, 0x0F));
  machine.msrs().write(0, msr::kPerfGlobalCtrl, 0x1);
  machine.post_uncore_events(0, l3_events());
  machine.post_core_events(0, l3_events());
  EXPECT_EQ(machine.msrs().read(0, msr::kPmc0), 0u);
}

class PmuAmd : public ::testing::Test {
 protected:
  PmuAmd() : machine(presets::amd_istanbul()) {}
  SimMachine machine;
};

TEST_F(PmuAmd, CoreCounterCounts) {
  // RETIRED_INSTRUCTIONS = 0xC0/0x00, no global ctrl on AMD.
  machine.msrs().write(2, msr::kAmdPerfCtl0, evtsel(0xC0, 0x00));
  EventVector ev;
  ev[EventId::kInstructionsRetired] = 4242;
  machine.post_core_events(2, ev);
  EXPECT_EQ(machine.msrs().read(2, msr::kAmdPerfCtr0), 4242u);
}

TEST_F(PmuAmd, ExtendedEventCodeDecodes) {
  // READ_REQUEST_TO_L3_CACHE_ALL uses the 12-bit code 0x4E0.
  machine.msrs().write(0, msr::kAmdPerfCtl0, evtsel(0x4E0, 0x07));
  EventVector ev;
  ev[EventId::kUncL3Hits] = 99;
  machine.post_uncore_events(0, ev);
  EXPECT_EQ(machine.msrs().read(0, msr::kAmdPerfCtr0), 99u);
}

TEST_F(PmuAmd, NorthbridgeEventsVisibleFromEveryCoreOfSocket) {
  machine.msrs().write(0, msr::kAmdPerfCtl0, evtsel(0x4E0, 0x07));
  machine.msrs().write(3, msr::kAmdPerfCtl0, evtsel(0x4E0, 0x07));
  machine.msrs().write(6, msr::kAmdPerfCtl0, evtsel(0x4E0, 0x07));  // socket 1
  EventVector ev;
  ev[EventId::kUncL3Hits] = 500;
  machine.post_uncore_events(0, ev);
  // Both socket-0 cores observe the full NB count; socket 1 sees nothing.
  EXPECT_EQ(machine.msrs().read(0, msr::kAmdPerfCtr0), 500u);
  EXPECT_EQ(machine.msrs().read(3, msr::kAmdPerfCtr0), 500u);
  EXPECT_EQ(machine.msrs().read(6, msr::kAmdPerfCtr0), 0u);
}

}  // namespace
}  // namespace likwid::hwsim
