// Tests for the cpuid emulator: bit-exact leaf contents for the leaves the
// topology decoder consumes.
#include <gtest/gtest.h>

#include <cstring>

#include "hwsim/cpuid.hpp"
#include "hwsim/presets.hpp"
#include "util/bitops.hpp"

namespace likwid::hwsim {
namespace {

using util::extract_bits;

class Cpuid : public ::testing::Test {
 protected:
  static CpuidRegs q(const MachineSpec& spec, int thread_idx,
                     std::uint32_t leaf, std::uint32_t sub = 0) {
    const CpuidEmulator emu(spec);
    const auto threads = enumerate_hw_threads(spec);
    return emu.query(threads.at(static_cast<std::size_t>(thread_idx)), leaf,
                     sub);
  }
};

TEST_F(Cpuid, VendorStringIntel) {
  const auto r = q(presets::westmere_ep(), 0, 0x0);
  char text[13] = {};
  std::memcpy(text + 0, &r.ebx, 4);
  std::memcpy(text + 4, &r.edx, 4);
  std::memcpy(text + 8, &r.ecx, 4);
  EXPECT_STREQ(text, "GenuineIntel");
}

TEST_F(Cpuid, VendorStringAmd) {
  const auto r = q(presets::amd_istanbul(), 0, 0x0);
  char text[13] = {};
  std::memcpy(text + 0, &r.ebx, 4);
  std::memcpy(text + 4, &r.edx, 4);
  std::memcpy(text + 8, &r.ecx, 4);
  EXPECT_STREQ(text, "AuthenticAMD");
}

TEST_F(Cpuid, MaxLeafReflectsTopologyMethod) {
  EXPECT_EQ(q(presets::westmere_ep(), 0, 0x0).eax, 0xBu);   // leaf B part
  EXPECT_EQ(q(presets::core2_quad(), 0, 0x0).eax, 0xAu);    // legacy + leaf 4
  EXPECT_EQ(q(presets::pentium_m(), 0, 0x0).eax, 0x2u);     // leaf 2 caches
  EXPECT_EQ(q(presets::amd_k8(), 0, 0x0).eax, 0x1u);        // AMD
}

TEST_F(Cpuid, Leaf1FamilyModelStepping) {
  // Westmere EP: family 6, model 0x2C -> base model 0xC, ext model 0x2.
  const auto r = q(presets::westmere_ep(), 0, 0x1);
  EXPECT_EQ(extract_bits(r.eax, 8, 11), 6u);
  EXPECT_EQ(extract_bits(r.eax, 4, 7), 0xCu);
  EXPECT_EQ(extract_bits(r.eax, 16, 19), 0x2u);
}

TEST_F(Cpuid, Leaf1AmdExtendedFamily) {
  // K10: family 0x10 = base 0xF + extended 0x1.
  const auto r = q(presets::amd_istanbul(), 0, 0x1);
  EXPECT_EQ(extract_bits(r.eax, 8, 11), 0xFu);
  EXPECT_EQ(extract_bits(r.eax, 20, 27), 0x1u);
}

TEST_F(Cpuid, Leaf1HttBitAndLogicalCount) {
  const auto smt = q(presets::westmere_ep(), 0, 0x1);
  EXPECT_TRUE(util::test_bit(smt.edx, 28));
  EXPECT_EQ(extract_bits(smt.ebx, 16, 23), 12u);  // 6 cores x 2 threads

  const auto single = q(presets::pentium_m(), 0, 0x1);
  EXPECT_FALSE(util::test_bit(single.edx, 28));
}

TEST_F(Cpuid, Leaf1InitialApicIdVariesPerThread) {
  const MachineSpec spec = presets::core2_quad();
  for (int t = 0; t < 4; ++t) {
    const auto r = q(spec, t, 0x1);
    EXPECT_EQ(extract_bits(r.ebx, 24, 31), static_cast<std::uint32_t>(t));
  }
}

TEST_F(Cpuid, Leaf4EnumeratesCachesInOrder) {
  const MachineSpec spec = presets::nehalem_ep();
  // Subleaf 0: L1D 32kB/8-way/64B shared by 2 threads.
  const auto l1 = q(spec, 0, 0x4, 0);
  EXPECT_EQ(extract_bits(l1.eax, 0, 4), 1u);   // data
  EXPECT_EQ(extract_bits(l1.eax, 5, 7), 1u);   // level 1
  EXPECT_EQ(extract_bits(l1.eax, 14, 25), 1u); // capacity 2 - 1
  EXPECT_EQ(extract_bits(l1.ebx, 0, 11), 63u);
  EXPECT_EQ(extract_bits(l1.ebx, 22, 31), 7u);
  EXPECT_EQ(l1.ecx, 63u);  // 64 sets - 1
  // Subleaf 3: L3 8MB/16-way shared by 8 (capacity 8-1=7).
  const auto l3 = q(spec, 0, 0x4, 3);
  EXPECT_EQ(extract_bits(l3.eax, 0, 4), 3u);   // unified
  EXPECT_EQ(extract_bits(l3.eax, 5, 7), 3u);
  EXPECT_EQ(extract_bits(l3.eax, 14, 25), 7u);
  EXPECT_EQ(extract_bits(l3.ebx, 22, 31), 15u);
  EXPECT_FALSE(util::test_bit(l3.edx, 1));  // non-inclusive
  // Subleaf 4: enumeration ends.
  EXPECT_EQ(extract_bits(q(spec, 0, 0x4, 4).eax, 0, 4), 0u);
}

TEST_F(Cpuid, Leaf4WestmereL3SharedCapacityIsSixteen) {
  // 12 threads share the L3; real silicon reports the pow2 capacity 16.
  const auto l3 = q(presets::westmere_ep(), 0, 0x4, 3);
  EXPECT_EQ(extract_bits(l3.eax, 14, 25), 15u);
}

TEST_F(Cpuid, LeafBSubleaves) {
  const MachineSpec spec = presets::westmere_ep();
  const auto threads = enumerate_hw_threads(spec);
  const CpuidEmulator emu(spec);
  const auto sl0 = emu.query(threads[13], 0xB, 0);  // socket 0 core 1 smt 1
  EXPECT_EQ(extract_bits(sl0.ecx, 8, 15), 1u);      // level type SMT
  EXPECT_EQ(sl0.eax, 1u);                           // smt shift
  EXPECT_EQ(sl0.ebx, 2u);                           // threads per core
  EXPECT_EQ(sl0.edx, threads[13].apic_id);
  const auto sl1 = emu.query(threads[13], 0xB, 1);
  EXPECT_EQ(extract_bits(sl1.ecx, 8, 15), 2u);      // level type core
  EXPECT_EQ(sl1.eax, 5u);                           // package shift
  EXPECT_EQ(sl1.ebx, 12u);                          // threads per package
  const auto sl2 = emu.query(threads[13], 0xB, 2);
  EXPECT_EQ(extract_bits(sl2.ecx, 8, 15), 0u);      // end of enumeration
}

TEST_F(Cpuid, LeafBAbsentOnLegacyParts) {
  const auto r = q(presets::core2_quad(), 0, 0xB);
  EXPECT_EQ(r.eax, 0u);
  EXPECT_EQ(r.ebx, 0u);
}

TEST_F(Cpuid, LeafAReportsPmu) {
  const auto nhm = q(presets::nehalem_ep(), 0, 0xA);
  EXPECT_EQ(extract_bits(nhm.eax, 8, 15), 4u);   // 4 GP counters
  EXPECT_EQ(extract_bits(nhm.eax, 16, 23), 48u);
  EXPECT_EQ(extract_bits(nhm.edx, 0, 4), 3u);    // 3 fixed counters
  const auto c2 = q(presets::core2_quad(), 0, 0xA);
  EXPECT_EQ(extract_bits(c2.eax, 8, 15), 2u);
  EXPECT_EQ(extract_bits(c2.eax, 16, 23), 40u);
}

TEST_F(Cpuid, Leaf2DescriptorsRoundTrip) {
  const auto r = q(presets::pentium_m(), 0, 0x2);
  EXPECT_EQ(r.eax & 0xFF, 0x01u);  // iteration count
  // Collect descriptor bytes and decode them back.
  int found_l1d = 0, found_l2 = 0;
  const std::uint32_t regs[4] = {r.eax, r.ebx, r.ecx, r.edx};
  for (int reg = 0; reg < 4; ++reg) {
    for (int byte = (reg == 0 ? 1 : 0); byte < 4; ++byte) {
      const auto code =
          static_cast<std::uint8_t>((regs[reg] >> (8 * byte)) & 0xFF);
      if (code == 0) continue;
      const CacheDescriptor* d = find_descriptor(code);
      ASSERT_NE(d, nullptr) << "undecodable descriptor";
      if (d->level == 1 && d->type == CacheType::kData) found_l1d++;
      if (d->level == 2) found_l2++;
    }
  }
  EXPECT_EQ(found_l1d, 1);
  EXPECT_EQ(found_l2, 1);
}

TEST_F(Cpuid, BrandStringAcrossThreeLeaves) {
  const MachineSpec spec = presets::westmere_ep();
  const CpuidEmulator emu(spec);
  const auto threads = enumerate_hw_threads(spec);
  char brand[49] = {};
  for (std::uint32_t leaf = 0; leaf < 3; ++leaf) {
    const auto r = emu.query(threads[0], 0x80000002u + leaf);
    std::memcpy(brand + leaf * 16 + 0, &r.eax, 4);
    std::memcpy(brand + leaf * 16 + 4, &r.ebx, 4);
    std::memcpy(brand + leaf * 16 + 8, &r.ecx, 4);
    std::memcpy(brand + leaf * 16 + 12, &r.edx, 4);
  }
  EXPECT_STREQ(brand, spec.brand_string.c_str());
}

TEST_F(Cpuid, AmdLeaf8CoreCount) {
  const auto r = q(presets::amd_istanbul(), 0, 0x80000008u);
  EXPECT_EQ(extract_bits(r.ecx, 0, 7), 5u);  // 6 cores - 1
  EXPECT_EQ(extract_bits(r.ecx, 12, 15), 3u);  // core id field width
}

TEST_F(Cpuid, AmdCacheLeaves) {
  const auto l5 = q(presets::amd_istanbul(), 0, 0x80000005u);
  EXPECT_EQ(extract_bits(l5.ecx, 24, 31), 64u);  // L1D 64 kB
  EXPECT_EQ(extract_bits(l5.ecx, 16, 23), 2u);   // 2-way
  EXPECT_EQ(extract_bits(l5.ecx, 0, 7), 64u);    // 64 B lines
  const auto l6 = q(presets::amd_istanbul(), 0, 0x80000006u);
  EXPECT_EQ(extract_bits(l6.ecx, 16, 31), 512u);             // L2 512 kB
  EXPECT_EQ(amd_assoc_ways(extract_bits(l6.ecx, 12, 15), 16), 16u);
  EXPECT_EQ(extract_bits(l6.edx, 18, 31), 12u);              // L3 6MB/512kB
  EXPECT_EQ(amd_assoc_ways(extract_bits(l6.edx, 12, 15), 48), 48u);
}

TEST_F(Cpuid, AmdLeavesEmptyOnIntel) {
  const auto r = q(presets::core2_quad(), 0, 0x80000005u);
  EXPECT_EQ(r.ecx, 0u);
  EXPECT_EQ(r.edx, 0u);
}

TEST_F(Cpuid, UnknownLeavesReturnZero) {
  const auto r = q(presets::westmere_ep(), 0, 0x7F);
  EXPECT_EQ(r.eax, 0u);
  const auto e = q(presets::westmere_ep(), 0, 0x80001234u);
  EXPECT_EQ(e.eax, 0u);
}

TEST_F(Cpuid, AmdAssocCodeRoundTrip) {
  for (const std::uint32_t ways : {1u, 2u, 4u, 8u, 16u, 32u, 48u, 64u}) {
    EXPECT_EQ(amd_assoc_ways(amd_assoc_code(ways), ways), ways);
  }
}

}  // namespace
}  // namespace likwid::hwsim
