// The distributed-monitoring soak: 1000 simulated node streams through
// the full wire -> ingest -> store pipeline with every loss path
// reconciled, plus a deliberately starved run proving backpressure drops
// are attributed rather than silent. This is the acceptance test of the
// collector subsystem; it carries the `collect` ctest label and runs
// under TSan in CI.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "collect/loopback.hpp"

namespace likwid::collect {
namespace {

void expect_bits(double got, double want, const char* what) {
  std::uint64_t a = 0, b = 0;
  std::memcpy(&a, &got, sizeof(a));
  std::memcpy(&b, &want, sizeof(b));
  EXPECT_EQ(a, b) << what;
}

/// Producer batches must equal decoded batches plus every attributed loss
/// (backpressure drops and decode errors) — the zero-unattributed-loss
/// acceptance criterion.
void expect_loss_reconciled(const LoopbackCollector& c) {
  const ProducerStats& producer = c.producer();
  const DecodeStats decode = c.service().decode_stats();
  EXPECT_EQ(producer.batches_encoded,
            decode.batches + producer.batches_dropped + decode.decode_errors());
  EXPECT_EQ(producer.frames_sent,
            c.service().frames_published());
  EXPECT_EQ(producer.frames_dropped, c.service().frames_dropped());

  // Store-side: nothing ingested leaves the store uncounted either.
  const StoreStats store = c.service().store_stats();
  EXPECT_EQ(store.samples_appended, decode.samples);
  std::uint64_t retained = 0;
  for (std::size_t shard = 0; shard < c.service().num_shards(); ++shard) {
    const TimeSeriesStore& s = c.service().shard(shard);
    retained += s.samples_in_raw() + s.samples_in_buckets() +
                s.samples_in_summaries();
  }
  EXPECT_EQ(store.samples_appended, retained + store.samples_forgotten);
}

TEST(CollectSoak, ThousandNodesZeroUnattributedLoss) {
  LoopbackConfig cfg;
  cfg.fleet.num_nodes = 1000;
  cfg.fleet.seed = 1234;
  cfg.fleet.schemas = {make_sim_schema("SOAK_MEM", 3),
                       make_sim_schema("SOAK_FLOPS", 3)};
  cfg.steps = 48;
  cfg.batch_samples = 8;
  cfg.producer_threads = 2;
  cfg.service.ingest_threads = 2;
  cfg.service.ring_capacity = 64;
  // Generous deadline: on a loaded single-core CI box the ingest threads
  // may lag, but nothing should ever be dropped in this phase.
  cfg.service.publish_deadline_seconds = 5.0;
  cfg.service.store.chunk_points = 16;
  cfg.service.store.raw_chunks_per_series = 64;  // raw tier keeps all 48

  LoopbackCollector collector(cfg);
  collector.run();

  const ProducerStats& producer = collector.producer();
  EXPECT_EQ(producer.samples_encoded, 1000u * 48u);
  EXPECT_EQ(producer.batches_dropped, 0u);
  EXPECT_EQ(producer.samples_dropped, 0u);
  const DecodeStats decode = collector.service().decode_stats();
  EXPECT_EQ(decode.decode_errors(), 0u);
  EXPECT_EQ(decode.samples, 1000u * 48u);
  expect_loss_reconciled(collector);

  // Every stream announced exactly its two schemas once.
  EXPECT_EQ(decode.records,
            decode.batches + 2u * 1000u /* schema records */);

  // Spot-check the bit-equality contract across shards (all four
  // (producer shard, ingest shard) combinations plus the fleet edges).
  const QueryEngine query = collector.query();
  for (const std::uint64_t node : {0u, 1u, 2u, 3u, 499u, 998u, 999u}) {
    ASSERT_TRUE(collector.node_lossless(node)) << node;
    const auto got = query.rollup(node);
    monitor::WindowFolder folder(static_cast<int>(node),
                                 query.window_samples());
    for (const monitor::Sample& s : collector.replay(node)) folder.add(s);
    folder.finish();
    const auto want = folder.take_points();
    ASSERT_EQ(got.size(), want.size()) << node;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].window, want[i].window);
      EXPECT_EQ(got[i].group_id, want[i].group_id);
      EXPECT_EQ(got[i].metric_id, want[i].metric_id);
      expect_bits(got[i].stats.min, want[i].stats.min, "min");
      expect_bits(got[i].stats.avg, want[i].stats.avg, "avg");
      expect_bits(got[i].stats.max, want[i].stats.max, "max");
      expect_bits(got[i].stats.p95, want[i].stats.p95, "p95");
      EXPECT_EQ(got[i].stats.count, want[i].stats.count);
    }
  }
}

TEST(CollectSoak, StarvedRingsDropButEveryLossIsAttributed) {
  // Tiny rings and a near-zero publish deadline force backpressure; the
  // point is not how much is lost but that the books still balance and
  // every drop lands on a specific node.
  LoopbackConfig cfg;
  cfg.fleet.num_nodes = 64;
  cfg.fleet.seed = 99;
  cfg.fleet.schemas = {make_sim_schema("STARVE", 2)};
  cfg.steps = 256;
  cfg.batch_samples = 4;
  cfg.producer_threads = 4;  // outnumber the single ingest thread
  cfg.service.ingest_threads = 1;
  cfg.service.ring_capacity = 2;
  cfg.service.publish_deadline_seconds = 0.0005;
  cfg.service.store.chunk_points = 16;
  cfg.service.store.raw_chunks_per_series = 64;

  LoopbackCollector collector(cfg);
  collector.run();

  const ProducerStats& producer = collector.producer();
  expect_loss_reconciled(collector);

  // Per-node attribution sums to the totals on both sides of the ring.
  ASSERT_EQ(producer.samples_dropped_per_node.size(), 64u);
  std::uint64_t attributed_samples = 0;
  for (const std::uint64_t n : producer.samples_dropped_per_node) {
    attributed_samples += n;
  }
  EXPECT_EQ(attributed_samples, producer.samples_dropped);
  std::uint64_t attributed_frames = 0;
  for (std::uint64_t node = 0; node < 64; ++node) {
    attributed_frames += collector.service().frames_dropped_for(node);
  }
  EXPECT_EQ(attributed_frames, collector.service().frames_dropped());

  // What did arrive still decodes cleanly: dropped schema announcements
  // were rolled back and re-sent, so nothing is stranded as
  // unknown_schema loss.
  const DecodeStats decode = collector.service().decode_stats();
  EXPECT_EQ(decode.unknown_schema, 0u);
  EXPECT_EQ(decode.bad_crc, 0u);
  EXPECT_EQ(decode.samples + producer.samples_dropped,
            producer.samples_encoded);

  // A lossy node must be reported as such; lossless ones keep the
  // bit-equality guarantee even in a starved run.
  const QueryEngine query = collector.query();
  for (std::uint64_t node = 0; node < 64; ++node) {
    if (!collector.node_lossless(node)) continue;
    const auto got = query.rollup(node);
    monitor::WindowFolder folder(static_cast<int>(node),
                                 query.window_samples());
    for (const monitor::Sample& s : collector.replay(node)) folder.add(s);
    folder.finish();
    ASSERT_EQ(got.size(), folder.points().size()) << node;
  }
}

TEST(CollectSoak, RetentionTiersAbsorbLongStreams) {
  // Small retention knobs with a long stream: the raw tier cannot hold
  // everything, so samples age through buckets into summaries — and the
  // retention invariant still closes exactly.
  LoopbackConfig cfg;
  cfg.fleet.num_nodes = 16;
  cfg.fleet.seed = 5;
  cfg.fleet.schemas = {make_sim_schema("SOAK_TIER", 2)};
  cfg.steps = 512;
  cfg.batch_samples = 8;
  cfg.producer_threads = 2;
  cfg.service.ingest_threads = 2;
  cfg.service.publish_deadline_seconds = 5.0;
  cfg.service.store.chunk_points = 8;
  cfg.service.store.raw_chunks_per_series = 2;
  cfg.service.store.downsample_seconds = 1.0;
  cfg.service.store.buckets_per_series = 8;
  cfg.service.store.summary_factor = 4;
  cfg.service.store.summaries_per_series = 4;

  LoopbackCollector collector(cfg);
  collector.run();
  expect_loss_reconciled(collector);
  const StoreStats store = collector.service().store_stats();
  EXPECT_GT(store.chunks_evicted, 0u);
  EXPECT_GT(store.buckets_folded, 0u);
  EXPECT_GT(store.samples_forgotten, 0u);
  // 8-point chunks barely amortize the XOR warmup, so only expect SOME
  // gain here; the >= 5x gate runs in the ingest bench at 64-point
  // chunks and 32-sample wire batches.
  EXPECT_LT(store.bytes_compressed, store.bytes_uncompressed);
}

}  // namespace
}  // namespace likwid::collect
