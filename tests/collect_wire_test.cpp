// Tests for the collector wire format (collect/wire.hpp): stream
// round-trips, the per-stream schema dictionary (strings cross the wire
// once; lost announcements roll back), CRC corruption and truncation
// robustness (fuzzed — a hostile stream must only ever bump error
// counters), and the version-skew contract (unknown record types are
// skipped by frame length, not treated as errors).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "collect/wire.hpp"
#include "core/name_table.hpp"

namespace likwid::collect {
namespace {

std::shared_ptr<const monitor::MetricSchema> schema_for(
    const std::string& group, const std::vector<std::string>& metrics) {
  static std::map<std::string, std::shared_ptr<const monitor::MetricSchema>>
      cache;
  auto& slot = cache[group];
  if (!slot) {
    std::vector<core::NameId> ids;
    for (const auto& m : metrics) ids.push_back(core::intern_name(m));
    slot = monitor::MetricSchema::create(group, ids);
  }
  return slot;
}

monitor::Sample make_sample(
    std::uint64_t seq, const std::shared_ptr<const monitor::MetricSchema>& s,
    std::vector<double> values) {
  monitor::Sample sample;
  sample.sequence = seq;
  sample.t_start = static_cast<double>(seq) * 0.1;
  sample.t_end = sample.t_start + 0.1;
  sample.schema = s;
  sample.values = std::move(values);
  return sample;
}

/// Bit-exact sample equality (NaN-safe on values).
void expect_samples_equal(const std::vector<monitor::Sample>& got,
                          const std::vector<monitor::Sample>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].sequence, want[i].sequence) << i;
    EXPECT_EQ(got[i].t_start, want[i].t_start) << i;
    EXPECT_EQ(got[i].t_end, want[i].t_end) << i;
    EXPECT_EQ(got[i].schema->group_id, want[i].schema->group_id) << i;
    ASSERT_EQ(got[i].values.size(), want[i].values.size()) << i;
    for (std::size_t m = 0; m < want[i].values.size(); ++m) {
      std::uint64_t a = 0, b = 0;
      std::memcpy(&a, &got[i].values[m], sizeof(a));
      std::memcpy(&b, &want[i].values[m], sizeof(b));
      EXPECT_EQ(a, b) << "sample " << i << " slot " << m;
    }
  }
}

TEST(Wire, HeaderAndBatchRoundTrip) {
  const auto schema = schema_for("WIRE_MEM", {"bw", "vol"});
  std::vector<monitor::Sample> batch;
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    batch.push_back(make_sample(
        seq, schema, {1000.0 + static_cast<double>(seq), 5.5}));
  }
  StreamEncoder encoder(17);
  StreamDecoder decoder;
  std::vector<monitor::Sample> out;
  decoder.consume(encoder.header().data, out);
  EXPECT_TRUE(decoder.header_seen());
  EXPECT_EQ(decoder.node_id(), 17u);
  const Frame frame = encoder.encode_batch(batch);
  EXPECT_EQ(frame.batch_count, 1u);
  EXPECT_EQ(frame.sample_count, 8u);
  EXPECT_EQ(decoder.consume(frame.data, out), 8u);
  expect_samples_equal(out, batch);
  EXPECT_EQ(decoder.stats().decode_errors(), 0u);
}

TEST(Wire, SchemaStringsCrossTheWireOnce) {
  const auto schema = schema_for("WIRE_ONCE", {"m0", "m1", "m2"});
  StreamEncoder encoder(1);
  const Frame first =
      encoder.encode_batch({{make_sample(0, schema, {1, 2, 3})}});
  const Frame second =
      encoder.encode_batch({{make_sample(1, schema, {1, 2, 3})}});
  // Same payload, but the first frame carries the Schema record: the
  // dictionary makes every later frame of the group strictly smaller.
  EXPECT_EQ(first.new_schema_ids.size(), 1u);
  EXPECT_TRUE(second.new_schema_ids.empty());
  EXPECT_LT(second.data.size(), first.data.size());

  StreamDecoder decoder;
  std::vector<monitor::Sample> out;
  decoder.consume(first.data, out);
  decoder.consume(second.data, out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(decoder.stats().unknown_schema, 0u);
}

TEST(Wire, RotatingSchemasSplitIntoRuns) {
  const auto mem = schema_for("WIRE_R_MEM", {"bw"});
  const auto flops = schema_for("WIRE_R_FLOPS", {"mflops"});
  std::vector<monitor::Sample> batch;
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    batch.push_back(make_sample(seq, seq % 2 == 0 ? mem : flops,
                                {static_cast<double>(seq)}));
  }
  StreamEncoder encoder(2);
  const Frame frame = encoder.encode_batch(batch);
  EXPECT_EQ(frame.batch_count, 6u);  // alternation: one run per sample
  EXPECT_EQ(frame.new_schema_ids.size(), 2u);
  StreamDecoder decoder;
  std::vector<monitor::Sample> out;
  EXPECT_EQ(decoder.consume(frame.data, out), 6u);
  expect_samples_equal(out, batch);
}

TEST(Wire, UnknownSchemaIsCountedNotFatal) {
  const auto schema = schema_for("WIRE_UNK", {"m"});
  StreamEncoder encoder(3);
  const Frame first = encoder.encode_batch({{make_sample(0, schema, {1})}});
  const Frame second = encoder.encode_batch({{make_sample(1, schema, {2})}});
  StreamDecoder decoder;
  std::vector<monitor::Sample> out;
  // The announcing frame is lost in transport; the follow-up batch must
  // be counted as unknown_schema, not decoded garbage.
  EXPECT_EQ(decoder.consume(second.data, out), 0u);
  EXPECT_EQ(decoder.stats().unknown_schema, 1u);
  EXPECT_TRUE(out.empty());
  // The first frame arriving late re-binds the dictionary.
  decoder.consume(first.data, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Wire, RollbackSchemasReannouncesAfterLoss) {
  const auto schema = schema_for("WIRE_RB", {"m"});
  StreamEncoder encoder(4);
  Frame lost = encoder.encode_batch({{make_sample(0, schema, {1})}});
  ASSERT_EQ(lost.new_schema_ids.size(), 1u);
  // Transport drops the frame; the producer rolls the announcement back,
  // so the NEXT frame re-sends the schema and stays decodable.
  encoder.rollback_schemas(lost);
  const Frame next = encoder.encode_batch({{make_sample(1, schema, {2})}});
  EXPECT_EQ(next.new_schema_ids.size(), 1u);
  StreamDecoder decoder;
  std::vector<monitor::Sample> out;
  EXPECT_EQ(decoder.consume(next.data, out), 1u);
  EXPECT_EQ(decoder.stats().unknown_schema, 0u);
}

TEST(Wire, VersionSkewSkipsUnknownRecordTypes) {
  const auto schema = schema_for("WIRE_SKEW", {"m"});
  StreamEncoder encoder(5);
  const Frame frame = encoder.encode_batch({{make_sample(0, schema, {9})}});
  // Splice a future record type (99, payload "futuredata") in front of
  // the real records, framed exactly like put_record does.
  Bytes spliced;
  const Bytes payload = {'f', 'u', 't', 'u', 'r', 'e'};
  const std::size_t type_pos = spliced.size();
  put_uvarint(spliced, 99);
  const std::size_t type_len = spliced.size() - type_pos;
  put_uvarint(spliced, payload.size());
  spliced.insert(spliced.end(), payload.begin(), payload.end());
  std::uint32_t crc = crc32({spliced.data() + type_pos, type_len});
  crc = crc32(payload, crc);
  put_u32le(spliced, crc);
  spliced.insert(spliced.end(), frame.data.begin(), frame.data.end());

  StreamDecoder decoder;
  std::vector<monitor::Sample> out;
  EXPECT_EQ(decoder.consume(spliced, out), 1u);  // the real batch survives
  EXPECT_EQ(decoder.stats().skipped_records, 1u);
  EXPECT_EQ(decoder.stats().decode_errors(), 0u);
}

TEST(Wire, CorruptionNeverDecodesGarbage) {
  const auto schema = schema_for("WIRE_CORRUPT", {"a", "b"});
  std::vector<monitor::Sample> batch;
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    batch.push_back(make_sample(seq, schema, {1.5, -2.5}));
  }
  StreamEncoder encoder(6);
  const Frame schema_frame = encoder.encode_batch(batch);

  // Flip every byte of the frame, one at a time. Each corrupted frame
  // must either decode nothing or fail with a counted error — and any
  // samples that DO come out must have come from an intact record.
  for (std::size_t i = 0; i < schema_frame.data.size(); ++i) {
    Bytes corrupt = schema_frame.data;
    corrupt[i] ^= 0xFF;
    StreamDecoder decoder;
    std::vector<monitor::Sample> out;
    decoder.consume(corrupt, out);
    if (!out.empty()) {
      // Only a full intact SampleBatch record can emit samples.
      EXPECT_EQ(out.size(), batch.size()) << "byte " << i;
    }
  }
}

TEST(Wire, TruncationIsCountedAtEveryLength) {
  const auto schema = schema_for("WIRE_TRUNC", {"x"});
  StreamEncoder encoder(7);
  const Frame frame = encoder.encode_batch(
      {{make_sample(0, schema, {1}), make_sample(1, schema, {2})}});
  for (std::size_t len = 1; len < frame.data.size(); ++len) {
    StreamDecoder decoder;
    std::vector<monitor::Sample> out;
    decoder.consume({frame.data.data(), len}, out);
    // Never crashes, and a cut anywhere must not yield the full batch
    // without error accounting.
    if (out.size() == 2) {
      EXPECT_EQ(decoder.stats().decode_errors(), 0u);
      EXPECT_EQ(len, frame.data.size());
    }
  }
}

TEST(Wire, FuzzRoundTripRandomBatches) {
  std::mt19937_64 rng(0xF00Du);
  const auto wide = schema_for("WIRE_FUZZ_W", {"m0", "m1", "m2", "m3"});
  const auto narrow = schema_for("WIRE_FUZZ_N", {"n0"});
  StreamEncoder encoder(8);
  StreamDecoder decoder;
  std::uint64_t seq = 0;
  for (int round = 0; round < 200; ++round) {
    const auto& schema = (rng() & 1) != 0 ? wide : narrow;
    std::vector<monitor::Sample> batch;
    const std::size_t n = 1 + rng() % 17;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> values;
      for (std::size_t m = 0; m < schema->metric_ids.size(); ++m) {
        const std::uint64_t bits = rng();
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        values.push_back(v);
      }
      // Occasionally jump the sequence (missed intervals).
      seq += 1 + (rng() % 13 == 0 ? rng() % 1000 : 0);
      batch.push_back(make_sample(seq, schema, std::move(values)));
    }
    const Frame frame = encoder.encode_batch(batch);
    std::vector<monitor::Sample> out;
    ASSERT_EQ(decoder.consume(frame.data, out), batch.size());
    expect_samples_equal(out, batch);
  }
  EXPECT_EQ(decoder.stats().decode_errors(), 0u);
}

TEST(Wire, FuzzRandomBytesNeverCrash) {
  std::mt19937_64 rng(0xBADF00Du);
  for (int round = 0; round < 500; ++round) {
    Bytes noise(1 + rng() % 200);
    for (auto& byte : noise) byte = static_cast<std::uint8_t>(rng());
    StreamDecoder decoder;
    std::vector<monitor::Sample> out;
    decoder.consume(noise, out);  // must not crash or hang (ASan-checked)
  }
}

TEST(Wire, PayloadHelpersRoundTripForTheStore) {
  const auto schema = schema_for("WIRE_STORE", {"s0", "s1"});
  std::vector<monitor::Sample> samples;
  for (std::uint64_t seq = 5; seq < 9; ++seq) {
    samples.push_back(
        make_sample(seq, schema, {static_cast<double>(seq), 0.25}));
  }
  Bytes payload;
  encode_samples_payload(samples, 7, payload);
  std::uint64_t id = 0;
  ASSERT_TRUE(peek_payload_schema_id(payload, id));
  EXPECT_EQ(id, 7u);
  std::vector<monitor::Sample> out;
  ASSERT_TRUE(decode_samples_payload(payload, schema, out));
  expect_samples_equal(out, samples);
}

TEST(Wire, IntegerColumnEdgeCasesStayBitExact) {
  // The integer-column fast path must refuse anything int64 cannot carry
  // bit-for-bit: -0.0, NaN, infinities, fractions, and magnitudes past
  // 2^53 where int64 -> double rounds. One poisoned value sends the
  // whole column through the XOR path; clean columns still take the
  // varint path. Either way the round trip is exact.
  const auto schema =
      schema_for("WIRE_INTCOL", {"clean", "neg0", "huge", "frac", "weird"});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double p53 = 9007199254740992.0;  // 2^53
  std::vector<monitor::Sample> samples;
  samples.push_back(make_sample(
      0, schema, {-1234567.0, -0.0, p53 * 4.0, 0.5, nan}));
  samples.push_back(make_sample(
      1, schema, {-1234560.0, 0.0, p53 * 4.0 + 8.0, 0.5, inf}));
  samples.push_back(make_sample(
      2, schema, {0.0, 1.0, -p53 * 2.0, 1.5, -inf}));
  samples.push_back(make_sample(
      3, schema, {p53, 2.0, 0.0, 2.5, 1e308}));
  Bytes payload;
  encode_samples_payload(samples, 3, payload);
  std::vector<monitor::Sample> out;
  ASSERT_TRUE(decode_samples_payload(payload, schema, out));
  expect_samples_equal(out, samples);
}

TEST(Wire, IrregularSequencesSurviveTheRunLengthPrefix) {
  // A regular prefix, then jumps (including backwards): the run-length
  // header covers the prefix and explicit deltas the tail.
  const auto schema = schema_for("WIRE_SEQRUN", {"v"});
  const std::vector<std::uint64_t> seqs = {10, 11, 12, 13, 40, 39, 1000, 3};
  std::vector<monitor::Sample> samples;
  for (const std::uint64_t seq : seqs) {
    samples.push_back(
        make_sample(seq, schema, {static_cast<double>(seq) * 3.0}));
  }
  Bytes payload;
  encode_samples_payload(samples, 1, payload);
  std::vector<monitor::Sample> out;
  ASSERT_TRUE(decode_samples_payload(payload, schema, out));
  expect_samples_equal(out, samples);
}

TEST(Wire, CounterColumnsCompressPastFiveTimes) {
  // The headline gate of the subsystem, pinned at the payload level:
  // integral counter columns at a steady cadence must beat 5x against
  // the 8-bytes-per-field flat encoding (the bench gates the same ratio
  // end-to-end over the full frame stream).
  const auto schema = schema_for(
      "WIRE_RATIO", {"c0", "c1", "c2", "c3", "c4", "c5"});
  std::vector<monitor::Sample> samples;
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    std::vector<double> values;
    for (std::uint64_t m = 0; m < 6; ++m) {
      values.push_back(static_cast<double>(
          90000 + m * 1000 + seq * (3 + m) + (seq * 2654435761u >> 7) % 4));
    }
    samples.push_back(make_sample(seq, schema, std::move(values)));
  }
  Bytes payload;
  encode_samples_payload(samples, 1, payload);
  const std::size_t flat = samples.size() * 8 * (3 + 6);
  EXPECT_GE(static_cast<double>(flat) / static_cast<double>(payload.size()),
            5.0)
      << payload.size() << " bytes for " << flat << " flat";
  std::vector<monitor::Sample> out;
  ASSERT_TRUE(decode_samples_payload(payload, schema, out));
  expect_samples_equal(out, samples);
}

}  // namespace
}  // namespace likwid::collect
