// End-to-end smoke test for the likwid-agent pipeline: run the fleet the
// way the CLI does (4 machines, 100 ms cadence, 2 s, group MEM), render
// the CSV series, and check its header and row accounting, plus the XML
// twin's well-formedness basics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli/series_output.hpp"
#include "monitor/agent.hpp"

namespace likwid {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class AgentSmoke : public ::testing::Test {
 protected:
  AgentSmoke() {
    cfg_.num_machines = 4;
    cfg_.duration_seconds = 2.0;
    cfg_.monitor.groups = {"MEM"};
    cfg_.monitor.interval_seconds = 0.1;
    cfg_.monitor.window_samples = 5;
  }

  monitor::AgentConfig cfg_;
};

TEST_F(AgentSmoke, CsvHeaderAndRowCount) {
  monitor::Agent agent(cfg_);
  agent.run();
  const auto rollups = agent.rollups();
  ASSERT_FALSE(rollups.empty());

  const auto lines = lines_of(cli::csv_series(rollups));
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "SERIES,likwid-agent");
  EXPECT_EQ(lines[1],
            "machine,window,group,metric,t_start[s],t_end[s],samples,min,avg,"
            "max,p95");
  EXPECT_EQ(lines[1], cli::csv_series_header());
  // One data row per rollup point, nothing else.
  EXPECT_EQ(lines.size(), rollups.size() + 2);

  // 2 s at 100 ms = 20 samples per machine; 5-sample windows = 4 windows;
  // every MEM metric appears in every window of every machine.
  std::set<std::string> metric_names;
  for (const auto& p : rollups) metric_names.insert(p.metric());
  EXPECT_EQ(rollups.size(), 4u * 4u * metric_names.size());

  // Every machine id appears, each with 4 windows, and all rows carry the
  // full 5-sample windows of group MEM.
  std::set<int> machines;
  for (const auto& p : rollups) {
    machines.insert(p.machine_id);
    EXPECT_EQ(p.group(), "MEM");
    EXPECT_EQ(p.stats.count, 5u);
    EXPECT_GE(p.window, 0);
    EXPECT_LT(p.window, 4);
    EXPECT_LE(p.stats.min, p.stats.avg);
    EXPECT_LE(p.stats.avg, p.stats.max);
    EXPECT_LE(p.stats.p95, p.stats.max);
    EXPECT_GE(p.stats.p95, p.stats.min);
  }
  EXPECT_EQ(machines, (std::set<int>{0, 1, 2, 3}));

  // Every data row has exactly the header's column count.
  const std::size_t columns =
      lines_of(cli::csv_series_header()).empty()
          ? 0
          : static_cast<std::size_t>(
                std::count(lines[1].begin(), lines[1].end(), ',') + 1);
  for (std::size_t i = 2; i < lines.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(lines[i].begin(), lines[i].end(), ',') + 1),
              columns)
        << lines[i];
  }
}

TEST_F(AgentSmoke, XmlSeriesIsBalancedAndComplete) {
  monitor::Agent agent(cfg_);
  agent.run();
  const auto rollups = agent.rollups();
  const std::string xml = cli::xml_series(rollups);
  const auto lines = lines_of(xml);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines.front(), "<monitorSeries>");
  EXPECT_EQ(lines.back(), "</monitorSeries>");
  EXPECT_EQ(lines.size(), rollups.size() + 2);
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("<rollup"), std::string::npos);
    EXPECT_NE(lines[i].find("p95="), std::string::npos);
  }
}

}  // namespace
}  // namespace likwid
