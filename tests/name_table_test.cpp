// Tests for the process-wide name interner (core/name_table.hpp): id
// stability, find-vs-intern, resolution failures, and the dense CountSlab
// the interned pipeline carries counts in.
#include <gtest/gtest.h>

#include "core/count_slab.hpp"
#include "core/name_table.hpp"
#include "util/status.hpp"

namespace likwid::core {
namespace {

TEST(NameTable, InternIsIdempotentAndDense) {
  NameTable table;
  const NameId a = table.intern("INSTR_RETIRED_ANY");
  const NameId b = table.intern("CPU_CLK_UNHALTED_CORE");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(table.intern("INSTR_RETIRED_ANY"), a);
  EXPECT_EQ(table.size(), 2u);
}

TEST(NameTable, ResolvesBackToTheExactString) {
  NameTable table;
  const NameId id = table.intern("DP MFlops/s");
  EXPECT_EQ(table.name(id), "DP MFlops/s");
}

TEST(NameTable, FindDoesNotIntern) {
  NameTable table;
  EXPECT_EQ(table.find("never-seen"), kInvalidNameId);
  EXPECT_EQ(table.size(), 0u);
  const NameId id = table.intern("seen");
  EXPECT_EQ(table.find("seen"), id);
}

TEST(NameTable, UnknownIdThrows) {
  NameTable table;
  try {
    table.name(0);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
  EXPECT_THROW(table.name(kInvalidNameId), Error);
}

TEST(NameTable, ReferencesSurviveGrowth) {
  NameTable table;
  const std::string& first = table.name(table.intern("first"));
  for (int i = 0; i < 1000; ++i) {
    table.intern("filler_" + std::to_string(i));
  }
  EXPECT_EQ(first, "first");  // deque storage: no reallocation moved it
}

TEST(NameTable, ProcessWideInstanceIsShared) {
  const NameId id = intern_name("process-wide-entry");
  EXPECT_EQ(NameTable::instance().find("process-wide-entry"), id);
  EXPECT_EQ(resolve_name(id), "process-wide-entry");
}

TEST(CountSlabTest, RowsFollowTheCpuList) {
  const auto cpus = std::make_shared<const std::vector<int>>(
      std::vector<int>{4, 0, 9});
  CountSlab slab(cpus, 2);
  EXPECT_EQ(slab.rows(), 3u);
  EXPECT_EQ(slab.slots(), 2u);
  EXPECT_EQ(slab.row_of(4), 0);
  EXPECT_EQ(slab.row_of(9), 2);
  EXPECT_EQ(slab.row_of(7), -1);
  slab.at(9, 1) = 42.0;
  EXPECT_DOUBLE_EQ(slab.row(2)[1], 42.0);
  EXPECT_DOUBLE_EQ(slab.at(4, 0), 0.0);
  EXPECT_THROW(slab.at(7, 0), Error);   // unmeasured cpu
  EXPECT_THROW(slab.at(4, 2), Error);   // slot out of range
}

TEST(CountSlabTest, SubtractAndScaleAreElementwise) {
  const auto cpus =
      std::make_shared<const std::vector<int>>(std::vector<int>{0, 1});
  CountSlab a(cpus, 2);
  CountSlab b(cpus, 2);
  a.at(0, 0) = 10;
  a.at(1, 1) = 6;
  b.at(0, 0) = 4;
  a.subtract(b);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 6.0);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 3.0);
}

TEST(CountSlabTest, DefaultConstructedIsEmpty) {
  CountSlab slab;
  EXPECT_TRUE(slab.empty());
  EXPECT_EQ(slab.rows(), 0u);
  EXPECT_EQ(slab.row_of(0), -1);
  EXPECT_TRUE(slab.cpus().empty());
}

}  // namespace
}  // namespace likwid::core
