#include "api/result_table.hpp"

#include <algorithm>
#include <utility>

namespace likwid::api {

namespace {

/// One row per assignment of `set`, one column per measured cpu; missing
/// slab rows read as 0.0 (cores that never entered a marker region).
std::vector<ResultTable::EventRow> event_rows(const core::PerfCtr& ctr,
                                              int set,
                                              const core::CountSlab& counts) {
  const auto& assignments = ctr.assignments_of(set);
  std::vector<int> cpu_rows;
  cpu_rows.reserve(ctr.cpus().size());
  for (const int cpu : ctr.cpus()) {
    cpu_rows.push_back(counts.empty() ? -1 : counts.row_of(cpu));
  }
  std::vector<ResultTable::EventRow> rows;
  rows.reserve(assignments.size());
  for (std::size_t slot = 0; slot < assignments.size(); ++slot) {
    ResultTable::EventRow row;
    row.event = assignments[slot].event_name;
    row.counter = assignments[slot].counter_name;
    row.values.reserve(cpu_rows.size());
    for (const int r : cpu_rows) {
      row.values.push_back(
          r < 0 ? 0.0 : counts.row(static_cast<std::size_t>(r))[slot]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ResultTable::MetricRow> metric_rows(
    const core::PerfCtr& ctr,
    const std::vector<core::PerfCtr::MetricRow>& computed) {
  std::vector<ResultTable::MetricRow> rows;
  rows.reserve(computed.size());
  for (const auto& m : computed) {
    ResultTable::MetricRow row;
    row.name = m.name();
    row.values.reserve(ctr.cpus().size());
    for (const int cpu : ctr.cpus()) {
      row.values.push_back(m.value_or(cpu, 0.0));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

ResultTable measurement_table(const core::PerfCtr& ctr, int set) {
  ResultTable table;
  const auto& group = ctr.group_of(set);
  table.group = group ? group->name : "custom";
  table.has_metrics = group.has_value();
  table.seconds = ctr.results(set).measured_seconds;
  table.cpus = ctr.cpus();
  table.events = event_rows(ctr, set, ctr.extrapolated_counts(set));
  if (group) {
    table.metrics = metric_rows(ctr, ctr.compute_metrics(set));
  }
  return table;
}

ResultTable counts_table(const core::PerfCtr& ctr, int set,
                         const core::CountSlab& counts,
                         double fallback_seconds, bool wall_time) {
  ResultTable table;
  const auto& group = ctr.group_of(set);
  table.group = group ? group->name : "custom";
  table.has_metrics = group.has_value();
  table.seconds = fallback_seconds >= 0 ? fallback_seconds : 0.0;
  table.cpus = ctr.cpus();
  table.events = event_rows(ctr, set, counts);
  if (group) {
    table.metrics = metric_rows(
        ctr, ctr.compute_metrics_for(set, counts, fallback_seconds, wall_time));
  }
  return table;
}

RegionReport region_report(const core::PerfCtr& ctr, int set,
                           const core::MarkerSession& session) {
  RegionReport report;
  const auto& group = ctr.group_of(set);
  report.group = group ? group->name : "custom";
  report.has_metrics = group.has_value();
  report.cpus = ctr.cpus();
  for (const auto& region : session.regions()) {
    RegionReport::Region entry;
    entry.name = region.name;
    entry.calls = region.call_count;
    entry.events = event_rows(ctr, set, region.counts);
    if (group) {
      // The region's wall time is the longest any core had it open.
      double wall = 0;
      for (const auto& [cpu, seconds] : region.seconds) {
        wall = std::max(wall, seconds);
      }
      entry.metrics = metric_rows(
          ctr, ctr.compute_metrics_for(set, region.counts, wall));
    }
    report.regions.push_back(std::move(entry));
  }
  return report;
}

}  // namespace likwid::api
