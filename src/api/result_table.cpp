#include "api/result_table.hpp"

#include <algorithm>
#include <utility>

namespace likwid::api {

namespace {

/// One row per assignment of `set`, one column per measured cpu; missing
/// slab rows read as 0.0 (cores that never entered a marker region).
std::vector<ResultTable::EventRow> event_rows(const core::PerfCtr& ctr,
                                              int set,
                                              const core::CountSlab& counts) {
  const auto& assignments = ctr.assignments_of(set);
  std::vector<int> cpu_rows;
  cpu_rows.reserve(ctr.cpus().size());
  for (const int cpu : ctr.cpus()) {
    cpu_rows.push_back(counts.empty() ? -1 : counts.row_of(cpu));
  }
  std::vector<ResultTable::EventRow> rows;
  rows.reserve(assignments.size());
  for (std::size_t slot = 0; slot < assignments.size(); ++slot) {
    ResultTable::EventRow row;
    row.event = assignments[slot].event_name;
    row.counter = assignments[slot].counter_name;
    row.values.reserve(cpu_rows.size());
    for (const int r : cpu_rows) {
      row.values.push_back(
          r < 0 ? 0.0 : counts.row(static_cast<std::size_t>(r))[slot]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ResultTable::MetricRow> metric_rows(
    const core::PerfCtr& ctr, const core::MetricBatch& batch) {
  std::vector<ResultTable::MetricRow> rows;
  rows.reserve(batch.size());
  for (std::size_t m = 0; m < batch.size(); ++m) {
    const core::MetricBatch::RowView view = batch[m];
    ResultTable::MetricRow row;
    row.name = view.name();
    row.values.reserve(ctr.cpus().size());
    for (const int cpu : ctr.cpus()) {
      row.values.push_back(view.value_or(cpu, 0.0));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Release every arena-backed value row BEFORE the arena is rewound, so no
/// vector ever aliases recycled arena memory.
void detach_values(ResultTable& out) {
  for (auto& row : out.events) row.values = ResultTable::Values();
  for (auto& row : out.metrics) row.values = ResultTable::Values();
}

void event_rows_into(const core::PerfCtr& ctr, int set,
                     const core::CountSlab& counts, ResultTable& out,
                     TableScratch& scratch) {
  const auto& assignments = ctr.assignments_of(set);
  scratch.cpu_rows.clear();
  scratch.cpu_rows.reserve(ctr.cpus().size());
  for (const int cpu : ctr.cpus()) {
    scratch.cpu_rows.push_back(counts.empty() ? -1 : counts.row_of(cpu));
  }
  const util::ArenaAllocator<double> alloc(&scratch.arena);
  out.events.resize(assignments.size());
  for (std::size_t slot = 0; slot < assignments.size(); ++slot) {
    ResultTable::EventRow& row = out.events[slot];
    row.event = assignments[slot].event_name;      // in-place string copy
    row.counter = assignments[slot].counter_name;  // (capacity retained)
    row.values = ResultTable::Values(scratch.cpu_rows.size(), 0.0, alloc);
    for (std::size_t c = 0; c < scratch.cpu_rows.size(); ++c) {
      const int r = scratch.cpu_rows[c];
      if (r >= 0) row.values[c] = counts.row(static_cast<std::size_t>(r))[slot];
    }
  }
}

void metric_rows_into(const core::PerfCtr& ctr, const core::MetricBatch& batch,
                      ResultTable& out, TableScratch& scratch) {
  const util::ArenaAllocator<double> alloc(&scratch.arena);
  out.metrics.resize(batch.size());
  for (std::size_t m = 0; m < batch.size(); ++m) {
    const core::MetricBatch::RowView view = batch[m];
    ResultTable::MetricRow& row = out.metrics[m];
    row.name = view.name();
    row.values = ResultTable::Values(ctr.cpus().size(), 0.0, alloc);
    for (std::size_t c = 0; c < ctr.cpus().size(); ++c) {
      row.values[c] = view.value_or(ctr.cpus()[c], 0.0);
    }
  }
}

}  // namespace

ResultTable measurement_table(const core::PerfCtr& ctr, int set) {
  ResultTable table;
  const auto& group = ctr.group_of(set);
  table.group = group ? group->name : "custom";
  table.has_metrics = group.has_value();
  table.seconds = ctr.results(set).measured_seconds;
  table.cpus = ctr.cpus();
  const core::CountSlab counts = ctr.extrapolated_counts(set);
  table.events = event_rows(ctr, set, counts);
  if (group) {
    core::MetricBatch batch;
    ctr.compute_metrics_batched(set, counts, batch);
    table.metrics = metric_rows(ctr, batch);
  }
  return table;
}

void measurement_table_into(const core::PerfCtr& ctr, int set,
                            ResultTable& out, TableScratch& scratch) {
  detach_values(out);
  scratch.arena.reset();
  const auto& group = ctr.group_of(set);
  out.group = group ? group->name : "custom";
  out.has_metrics = group.has_value();
  out.seconds = ctr.results(set).measured_seconds;
  out.cpus = ctr.cpus();
  ctr.extrapolated_counts_into(set, scratch.counts);
  event_rows_into(ctr, set, scratch.counts, out, scratch);
  if (group) {
    ctr.compute_metrics_batched(set, scratch.counts, scratch.batch);
    metric_rows_into(ctr, scratch.batch, out, scratch);
  } else {
    out.metrics.clear();
  }
}

ResultTable counts_table(const core::PerfCtr& ctr, int set,
                         const core::CountSlab& counts,
                         double fallback_seconds, bool wall_time) {
  ResultTable table;
  const auto& group = ctr.group_of(set);
  table.group = group ? group->name : "custom";
  table.has_metrics = group.has_value();
  table.seconds = fallback_seconds >= 0 ? fallback_seconds : 0.0;
  table.cpus = ctr.cpus();
  table.events = event_rows(ctr, set, counts);
  if (group) {
    core::MetricBatch batch;
    ctr.compute_metrics_batched(set, counts, batch, fallback_seconds,
                                wall_time);
    table.metrics = metric_rows(ctr, batch);
  }
  return table;
}

void counts_table_into(const core::PerfCtr& ctr, int set,
                       const core::CountSlab& counts, ResultTable& out,
                       TableScratch& scratch, double fallback_seconds,
                       bool wall_time) {
  detach_values(out);
  scratch.arena.reset();
  const auto& group = ctr.group_of(set);
  out.group = group ? group->name : "custom";
  out.has_metrics = group.has_value();
  out.seconds = fallback_seconds >= 0 ? fallback_seconds : 0.0;
  out.cpus = ctr.cpus();
  event_rows_into(ctr, set, counts, out, scratch);
  if (group) {
    ctr.compute_metrics_batched(set, counts, scratch.batch, fallback_seconds,
                                wall_time);
    metric_rows_into(ctr, scratch.batch, out, scratch);
  } else {
    out.metrics.clear();
  }
}

RegionReport region_report(const core::PerfCtr& ctr, int set,
                           const core::MarkerSession& session) {
  RegionReport report;
  const auto& group = ctr.group_of(set);
  report.group = group ? group->name : "custom";
  report.has_metrics = group.has_value();
  report.cpus = ctr.cpus();
  for (const auto& region : session.regions()) {
    RegionReport::Region entry;
    entry.name = region.name;
    entry.calls = region.call_count;
    entry.events = event_rows(ctr, set, region.counts);
    if (group) {
      // The region's wall time is the longest any core had it open.
      double wall = 0;
      for (const auto& [cpu, seconds] : region.seconds) {
        wall = std::max(wall, seconds);
      }
      core::MetricBatch batch;
      ctr.compute_metrics_batched(set, region.counts, batch, wall);
      entry.metrics = metric_rows(ctr, batch);
    }
    report.regions.push_back(std::move(entry));
  }
  return report;
}

}  // namespace likwid::api
