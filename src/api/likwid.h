/* likwid.h — the C-compatible flat API of the LIKWID reproduction.
 *
 * External programs embed the suite through opaque integer handles and
 * status codes, mirroring the perfmon naming of the real library
 * (perfmon_init / perfmon_addEventSet / perfmon_setupCounters / ...) that
 * downstream projects such as TVM's metric collector link against. Every
 * entry point catches C++ exceptions at the boundary and returns a
 * likwid_status; the message of the last failure is kept per calling
 * thread and readable via likwid_lastError().
 *
 * Thread-safety: the handle registry is internally synchronized and every
 * handle carries its own lock, so INDEPENDENT SESSIONS MEASURE IN
 * PARALLEL — likwid_init/likwid_finalize and calls on distinct handles
 * may run concurrently from any threads with no external locking. Calls
 * on the SAME handle are serialized by that handle's lock; interleaving
 * them from several threads is memory-safe but the lifecycle outcome
 * depends on arrival order (e.g. two racing likwid_startCounters: one
 * wins, the other gets LIKWID_ERROR_INVALID_STATE). Finalizing a handle
 * while another thread still uses it is a caller error: in-flight calls
 * complete safely on the detached session, every later call fails with
 * LIKWID_ERROR_INVALID_HANDLE. This locking contract is machine-checked:
 * the implementation's registry and per-handle locks carry Clang
 * thread-safety annotations (src/util/thread_annotations.hpp) and CI
 * compiles with -Werror=thread-safety.
 *
 * Lifecycle:
 *
 *   likwid_handle h;
 *   likwid_init("westmere-ep", cpus, n_cpus, &h);
 *   int gid;
 *   likwid_addEventSet(h, "FLOPS_DP", &gid);
 *   likwid_setupCounters(h, gid);
 *   likwid_startCounters(h);
 *   ... run measured work (likwid_runWorkload / likwid_advanceTime) ...
 *   likwid_stopCounters(h);
 *   likwid_getResult(h, gid, event_index, cpu_index, &value);
 *   likwid_finalize(h);
 */
#ifndef LIKWID_API_LIKWID_H_
#define LIKWID_API_LIKWID_H_

#ifdef __cplusplus
extern "C" {
#endif

/* Opaque session handle. Handles are never reused; a finalized handle
 * stays invalid forever. */
typedef int likwid_handle;

typedef enum likwid_status {
  LIKWID_OK = 0,
  LIKWID_ERROR_INVALID_HANDLE = 1,    /* unknown or finalized handle */
  LIKWID_ERROR_INVALID_ARGUMENT = 2,  /* malformed input / null pointer */
  LIKWID_ERROR_NOT_FOUND = 3,         /* set/event/metric/cpu out of range */
  LIKWID_ERROR_PERMISSION = 4,        /* msr access denied */
  LIKWID_ERROR_UNSUPPORTED = 5,       /* group/event not on this machine */
  LIKWID_ERROR_RESOURCE_EXHAUSTED = 6,/* no free counter slot */
  LIKWID_ERROR_INVALID_STATE = 7,     /* lifecycle misuse (start before
                                         setup, double start, ...) */
  LIKWID_ERROR_INTERNAL = 8,          /* invariant violation */
  LIKWID_ERROR_UNAVAILABLE = 9,       /* flaky/failed resource (msr read
                                         error, stale or pegged counters);
                                         retrying may help */
  LIKWID_ERROR_DEADLINE_EXCEEDED = 10 /* operation gave up at its time
                                         budget */
} likwid_status;

/* --- lifecycle --------------------------------------------------------- */

/* Build a simulated node from `machine_key` (NULL: "westmere-ep") and
 * measure the `num_cpus` hardware threads in `cpus`. On success writes a
 * fresh handle to `out_handle`. */
likwid_status likwid_init(const char* machine_key, const int* cpus,
                          int num_cpus, likwid_handle* out_handle);

/* Append an event set and write its id to `out_set` (may be NULL).
 * `spec` is a performance-group name ("FLOPS_DP") or a custom event list
 * ("INSTR_RETIRED_ANY:FIXC0,CPU_CLK_UNHALTED_CORE:FIXC1"); a bare word
 * that names no group is tried as a one-event custom set. */
likwid_status likwid_addEventSet(likwid_handle handle, const char* spec,
                                 int* out_set);

/* Program `set` as the one measured by the next likwid_startCounters. */
likwid_status likwid_setupCounters(likwid_handle handle, int set);

/* Enable the set selected by likwid_setupCounters. Calling without a
 * prior setup, or twice in a row, fails with LIKWID_ERROR_INVALID_STATE. */
likwid_status likwid_startCounters(likwid_handle handle);

/* Disable the running set and accumulate counts + elapsed time. */
likwid_status likwid_stopCounters(likwid_handle handle);

/* Destroy the session; the handle becomes permanently invalid. */
likwid_status likwid_finalize(likwid_handle handle);

/* --- driving the measured node ----------------------------------------- */

/* Run a built-in workload on the measured cpus while the counters run:
 * "triad" (STREAM triad; size = array length, reps = repetitions) or
 * "jacobi" (3D stencil; size = grid points per dimension, reps = sweeps). */
likwid_status likwid_runWorkload(likwid_handle handle, const char* workload,
                                 long long size, int reps);

/* Advance the node's clock without launching work (stethoscope mode). */
likwid_status likwid_advanceTime(likwid_handle handle, double seconds);

/* --- results ----------------------------------------------------------- */

likwid_status likwid_getNumberOfEvents(likwid_handle handle, int set,
                                       int* out_count);
likwid_status likwid_getNumberOfMetrics(likwid_handle handle, int set,
                                        int* out_count);

/* Copy the event / counter / metric name into `buffer` (NUL-terminated,
 * truncated to `capacity`). */
likwid_status likwid_getEventName(likwid_handle handle, int set, int index,
                                  char* buffer, int capacity);
likwid_status likwid_getCounterName(likwid_handle handle, int set, int index,
                                    char* buffer, int capacity);
likwid_status likwid_getMetricName(likwid_handle handle, int set, int index,
                                   char* buffer, int capacity);

/* Multiplexing-corrected count of event `event_index` of `set` on the
 * `cpu_index`-th measured cpu (index into the likwid_init cpu list). */
likwid_status likwid_getResult(likwid_handle handle, int set, int event_index,
                               int cpu_index, double* out_value);

/* Derived metric `metric_index` of a group set on the `cpu_index`-th
 * measured cpu. */
likwid_status likwid_getMetric(likwid_handle handle, int set, int metric_index,
                               int cpu_index, double* out_value);

/* Wall time `set` was live, in seconds. */
likwid_status likwid_getTimeOfGroup(likwid_handle handle, int set,
                                    double* out_seconds);

/* --- fault injection --------------------------------------------------- */

/* Arm (or, with "none", disarm) a simulated MSR fault on the session's
 * node, effective immediately: "msr-fail" makes counter reads return
 * LIKWID_ERROR_UNAVAILABLE, "msr-timeout" LIKWID_ERROR_DEADLINE_EXCEEDED,
 * "msr-stale" freezes the counter registers, "msr-saturate" pegs them at
 * all-ones (both surface as LIKWID_ERROR_UNAVAILABLE when the measurement
 * is read back). The chaos hook embedders use to exercise their own error
 * paths against deterministic hardware failure. */
likwid_status likwid_injectFault(likwid_handle handle, const char* mode);

/* --- collector (distributed monitoring) -------------------------------- */

/* A collector handle owns one completed ingest run of the distributed
 * monitoring stack: `num_nodes` simulated node agents stream `steps`
 * counter samples each over the binary wire format into the collector's
 * tiered time-series store, and the queries below run over what was
 * ingested. Handles follow the same rules as likwid_handle: never reused,
 * each call thread-safe, destroyed ids fail forever. */
typedef int likwid_collector;

/* Run the full ingest synchronously and return a queryable handle.
 * `machine_key` / `group` choose whose metric schemas the fleet streams
 * (NULL: "westmere-ep" / "MEM"). */
likwid_status likwid_collector_create(const char* machine_key,
                                      const char* group, int num_nodes,
                                      int steps,
                                      likwid_collector* out_collector);

/* Total samples decoded into the store across every node stream. */
likwid_status likwid_collector_samplesIngested(likwid_collector collector,
                                               long long* out_samples);

/* Frames dropped under backpressure plus records dropped by decode
 * errors — the attributed-loss side of the ingest accounting. */
likwid_status likwid_collector_framesDropped(likwid_collector collector,
                                             long long* out_frames);

/* The `rank`-th hottest node (0 = hottest) by mean of `metric` (NULL:
 * the group's first metric) over the raw retention tier. */
likwid_status likwid_collector_topNode(likwid_collector collector,
                                       const char* metric, int rank,
                                       int* out_node, double* out_mean);

/* Windowed min/avg/max/p95 of `metric` (NULL: the group's first metric)
 * on one node's raw retention tier. Any out pointer may be NULL. */
likwid_status likwid_collector_nodeStats(likwid_collector collector,
                                         int node, const char* metric,
                                         double* out_min, double* out_avg,
                                         double* out_max, double* out_p95);

/* Destroy the collector; the handle becomes permanently invalid. */
likwid_status likwid_collector_destroy(likwid_collector collector);

/* --- diagnostics ------------------------------------------------------- */

/* Static name of a status code ("LIKWID_ERROR_UNSUPPORTED"). */
const char* likwid_statusName(likwid_status status);

/* Message of the most recent failure on this thread; "" when the last
 * call succeeded. The pointer stays valid until the next API call from
 * the same thread. */
const char* likwid_lastError(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* LIKWID_API_LIKWID_H_ */
