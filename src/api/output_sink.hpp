// output_sink.hpp — the pluggable formatting boundary of the public API.
//
// Measurement produces ResultTable / RegionReport / SeriesPoint data;
// an OutputSink turns that data into text. The suite ships three sinks
// (ASCII tables, CSV, XML — see cli/sinks.hpp); embedders implement their
// own to route results into whatever their host system consumes, the way
// TVM's metric collector feeds LIKWID counts into its profiling reports.
#pragma once

#include <string>
#include <vector>

#include "api/result_table.hpp"
#include "monitor/aggregator.hpp"

namespace likwid::api {

class OutputSink {
 public:
  virtual ~OutputSink() = default;

  /// One wrapper-mode result block (event counts + derived metrics).
  virtual std::string measurement(const ResultTable& table) const = 0;

  /// Marker-mode result block (one section per region).
  virtual std::string regions(const RegionReport& report) const = 0;

  /// Timestamped monitoring rollups (the likwid-agent export surface).
  virtual std::string series(
      const std::vector<monitor::SeriesPoint>& points) const = 0;
};

}  // namespace likwid::api
