// likwid_c.cpp — the exception -> status-code boundary behind api/likwid.h.
//
// Every handle owns one api::Session. The wrapper adds the flat API's
// lifecycle bookkeeping (setup-before-start) on top of the facade and
// translates likwid::Error categories into likwid_status values; no
// exception ever crosses into the C caller.
//
// Concurrency model (see the contract in likwid.h): the registry maps
// handle ids to shared_ptr<HandleEntry> under a shared_mutex — shared for
// lookups, exclusive only for init/finalize — and every entry carries its
// own mutex serializing the calls on that handle. Independent sessions
// therefore measure in parallel; the only cross-handle serialization left
// is the registry lock, held for a map operation and never across session
// work. Handle ids come from one atomic counter and are never reused. A
// finalized entry dies when the last in-flight call's shared_ptr drops,
// so racing a call against finalize is memory-safe by construction.
//
// Both locks are Clang thread-safety capabilities
// (util/thread_annotations.hpp): the registry table and every per-handle
// field are LIKWID_GUARDED_BY their mutex, so an entry point that forgets
// to lock fails the -Wthread-safety CI job at compile time. Because the
// analysis is intraprocedural, each entry point inlines its lookup+lock
// prologue via LIKWID_LOCK_LIVE_ENTRY instead of passing a lambda to a
// locking helper (a callback body is analyzed without the caller's lock
// context and would check nothing).
#include "api/likwid.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "collect/loopback.hpp"
#include "core/name_table.hpp"
#include "fault/msr_fault.hpp"
#include "monitor/collector.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/stream.hpp"
#include "workloads/workload.hpp"

namespace {

using likwid::Error;
using likwid::ErrorCode;

struct HandleEntry {
  /// Constructor runs pre-publication (no other thread can hold a
  /// reference yet), which the thread-safety analysis exempts.
  explicit HandleEntry(std::unique_ptr<likwid::api::Session> s)
      : session(std::move(s)) {}

  /// Serializes every call on this handle; never held across another
  /// entry's mutex, so handles cannot deadlock against each other.
  likwid::util::Mutex mutex;
  std::unique_ptr<likwid::api::Session> session LIKWID_GUARDED_BY(mutex);
  /// likwid_setupCounters seen since init/stop.
  bool setup_done LIKWID_GUARDED_BY(mutex) = false;
  /// Derived metrics of each set, evaluated once per measurement and
  /// served to every likwid_getMetric call; invalidated on start.
  std::map<int, std::vector<likwid::core::PerfCtr::MetricRow>> metric_cache
      LIKWID_GUARDED_BY(mutex);
};

/// The process-wide handle table and the lock guarding it — shared for
/// lookups, exclusive for insert/erase. Session work never runs under
/// this lock.
struct Registry {
  likwid::util::SharedMutex mutex;
  std::map<likwid_handle, std::shared_ptr<HandleEntry>> table
      LIKWID_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry instance;
  return instance;
}

/// Handle ids are monotonically increasing and never reused, so stale
/// handles keep failing with LIKWID_ERROR_INVALID_HANDLE forever.
std::atomic<likwid_handle> g_next_handle{1};

thread_local std::string t_last_error;

likwid_status to_status(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return LIKWID_ERROR_INVALID_ARGUMENT;
    case ErrorCode::kNotFound: return LIKWID_ERROR_NOT_FOUND;
    case ErrorCode::kPermission: return LIKWID_ERROR_PERMISSION;
    case ErrorCode::kUnsupported: return LIKWID_ERROR_UNSUPPORTED;
    case ErrorCode::kResourceExhausted: return LIKWID_ERROR_RESOURCE_EXHAUSTED;
    case ErrorCode::kInvalidState: return LIKWID_ERROR_INVALID_STATE;
    case ErrorCode::kInternal: return LIKWID_ERROR_INTERNAL;
    case ErrorCode::kUnavailable: return LIKWID_ERROR_UNAVAILABLE;
    case ErrorCode::kDeadlineExceeded: return LIKWID_ERROR_DEADLINE_EXCEEDED;
  }
  return LIKWID_ERROR_INTERNAL;
}

likwid_status fail(likwid_status status, const std::string& message) {
  t_last_error = message;
  return status;
}

/// Run `fn` behind the exception boundary. `fn` either returns a status
/// (for argument checks) or void (LIKWID_OK on fall-through). Takes no
/// lock: locking is per-handle (LIKWID_LOCK_LIVE_ENTRY) or
/// registry-scoped.
template <typename Fn>
likwid_status guarded(Fn&& fn) {
  try {
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      t_last_error.clear();
      return LIKWID_OK;
    } else {
      const likwid_status status = fn();
      if (status == LIKWID_OK) t_last_error.clear();
      return status;
    }
  } catch (const Error& e) {
    return fail(to_status(e.code()), e.what());
  } catch (const std::exception& e) {
    return fail(LIKWID_ERROR_INTERNAL, e.what());
  } catch (...) {
    return fail(LIKWID_ERROR_INTERNAL, "unknown exception");
  }
}

/// Look up a live handle under the shared registry lock; nullptr when the
/// handle never existed or was finalized.
std::shared_ptr<HandleEntry> find(likwid_handle handle) {
  Registry& reg = registry();
  const likwid::util::SharedLock lock(reg.mutex);
  const auto it = reg.table.find(handle);
  if (it == reg.table.end()) return nullptr;
  return it->second;
}

likwid_status invalid_handle(likwid_handle handle) {
  return fail(LIKWID_ERROR_INVALID_HANDLE,
              "handle " + std::to_string(handle) +
                  " does not name a live likwid session");
}

/// Entry-point prologue: resolve `handle`, pin the entry alive via its
/// shared_ptr (finalize may race us), bind `entry` to it and hold its
/// mutex for the rest of the enclosing scope. Expanded inline — not a
/// locking helper taking a callback — so Clang's intraprocedural
/// thread-safety analysis sees the acquisition and the guarded accesses
/// in one function body.
#define LIKWID_LOCK_LIVE_ENTRY(handle, entry)                         \
  const std::shared_ptr<HandleEntry> entry##_ptr = find(handle);      \
  if (entry##_ptr == nullptr) return invalid_handle(handle);          \
  HandleEntry& entry = *entry##_ptr;                                  \
  const likwid::util::MutexLock entry##_lock(entry.mutex)

likwid_status copy_name(const std::string& name, char* buffer, int capacity) {
  if (buffer == nullptr || capacity <= 0) {
    return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                "null or empty name buffer");
  }
  const std::size_t n =
      std::min(name.size(), static_cast<std::size_t>(capacity) - 1);
  std::memcpy(buffer, name.data(), n);
  buffer[n] = '\0';
  return LIKWID_OK;
}

likwid_status check_set(const likwid::api::Session& session, int set) {
  if (set < 0 || set >= session.counters().num_event_sets()) {
    return fail(LIKWID_ERROR_NOT_FOUND,
                "event set " + std::to_string(set) + " does not exist");
  }
  return LIKWID_OK;
}

}  // namespace

extern "C" {

likwid_status likwid_init(const char* machine_key, const int* cpus,
                          int num_cpus, likwid_handle* out_handle) {
  return guarded([&]() -> likwid_status {
    if (out_handle == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_handle");
    }
    if (cpus == nullptr || num_cpus <= 0) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                  "likwid_init needs at least one measured cpu");
    }
    const likwid_handle handle =
        g_next_handle.fetch_add(1, std::memory_order_relaxed);
    // Build the session outside every lock: node construction is the
    // expensive part and must not serialize concurrent likwid_init calls.
    auto session =
        likwid::api::Session::configure()
            .name("likwid_c handle " + std::to_string(handle))
            .machine(machine_key != nullptr ? machine_key : "westmere-ep")
            .cpus(std::vector<int>(cpus, cpus + num_cpus))
            .build();
    // Construct the counters now so bad cpu lists fail here, not at the
    // first addEventSet.
    session->counters();
    auto entry = std::make_shared<HandleEntry>(std::move(session));
    {
      Registry& reg = registry();
      const likwid::util::ExclusiveLock lock(reg.mutex);
      reg.table.emplace(handle, std::move(entry));
    }
    *out_handle = handle;
    return LIKWID_OK;
  });
}

likwid_status likwid_addEventSet(likwid_handle handle, const char* spec,
                                 int* out_set) {
  return guarded([&]() -> likwid_status {
    if (spec == nullptr || spec[0] == '\0') {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null or empty event spec");
    }
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    const std::string text(spec);
    // Specs with ':' (explicit counters) or ',' (several events) are
    // custom event lists; a bare word is tried as a performance-group
    // name first and falls back to a one-event custom set, so
    // "FLOPS_DP" and "L1D_REPL" both work.
    if (text.find(':') != std::string::npos ||
        text.find(',') != std::string::npos) {
      entry.session->add_custom(text);
    } else {
      try {
        entry.session->add_group(text);
      } catch (const Error& e) {
        if (e.code() != ErrorCode::kNotFound) throw;
        entry.session->add_custom(text);
      }
    }
    if (out_set != nullptr) {
      *out_set = entry.session->counters().num_event_sets() - 1;
    }
    return LIKWID_OK;
  });
}

likwid_status likwid_setupCounters(likwid_handle handle, int set) {
  return guarded([&]() -> likwid_status {
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    entry.session->counters().select_set(set);
    entry.setup_done = true;
    return LIKWID_OK;
  });
}

likwid_status likwid_startCounters(likwid_handle handle) {
  return guarded([&]() -> likwid_status {
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (!entry.setup_done) {
      return fail(LIKWID_ERROR_INVALID_STATE,
                  "likwid_startCounters before likwid_setupCounters");
    }
    if (entry.session->running()) {
      return fail(LIKWID_ERROR_INVALID_STATE,
                  "counters already started (likwid_startCounters called "
                  "twice)");
    }
    entry.session->start();
    entry.metric_cache.clear();  // results are stale once counting resumes
    return LIKWID_OK;
  });
}

likwid_status likwid_stopCounters(likwid_handle handle) {
  return guarded([&]() -> likwid_status {
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (!entry.session->running()) {
      return fail(LIKWID_ERROR_INVALID_STATE,
                  "likwid_stopCounters without running counters");
    }
    entry.session->stop();
    entry.metric_cache.clear();  // re-evaluate over the final counts
    return LIKWID_OK;
  });
}

likwid_status likwid_finalize(likwid_handle handle) {
  return guarded([&]() -> likwid_status {
    // Unregister under the exclusive lock but let the session die outside
    // it: if another thread is mid-call on this handle, its shared_ptr
    // keeps the entry alive until that call returns, and destruction
    // happens on whichever thread drops the last reference.
    std::shared_ptr<HandleEntry> doomed;
    {
      Registry& reg = registry();
      const likwid::util::ExclusiveLock lock(reg.mutex);
      const auto it = reg.table.find(handle);
      if (it == reg.table.end()) return invalid_handle(handle);
      doomed = std::move(it->second);
      reg.table.erase(it);
    }
    return LIKWID_OK;
  });
}

likwid_status likwid_runWorkload(likwid_handle handle, const char* workload,
                                 long long size, int reps) {
  return guarded([&]() -> likwid_status {
    if (workload == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null workload name");
    }
    if (size <= 0 || reps <= 0) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                  "workload size and reps must be positive");
    }
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    likwid::api::Session& session = *entry.session;
    likwid::workloads::Placement placement;
    placement.cpus = session.cpus();
    const std::string name(workload);
    if (name == "triad") {
      likwid::workloads::StreamConfig cfg;
      cfg.array_length = static_cast<std::size_t>(size);
      cfg.repetitions = reps;
      likwid::workloads::StreamTriad triad(cfg);
      run_workload(session.kernel(), triad, placement);
    } else if (name == "jacobi") {
      likwid::workloads::JacobiConfig cfg;
      cfg.n = static_cast<int>(size);
      cfg.sweeps = reps;
      likwid::workloads::JacobiStencil jacobi(cfg);
      run_workload(session.kernel(), jacobi, placement);
    } else {
      return fail(LIKWID_ERROR_NOT_FOUND,
                  "unknown workload '" + name + "' (triad, jacobi)");
    }
    return LIKWID_OK;
  });
}

likwid_status likwid_advanceTime(likwid_handle handle, double seconds) {
  return guarded([&]() -> likwid_status {
    if (!(seconds > 0)) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                  "duration must be positive");
    }
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    entry.session->kernel().advance_time(seconds);
    return LIKWID_OK;
  });
}

likwid_status likwid_getNumberOfEvents(likwid_handle handle, int set,
                                       int* out_count) {
  return guarded([&]() -> likwid_status {
    if (out_count == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_count");
    }
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (const likwid_status s = check_set(*entry.session, set);
        s != LIKWID_OK) {
      return s;
    }
    *out_count = static_cast<int>(
        entry.session->counters().assignments_of(set).size());
    return LIKWID_OK;
  });
}

likwid_status likwid_getNumberOfMetrics(likwid_handle handle, int set,
                                        int* out_count) {
  return guarded([&]() -> likwid_status {
    if (out_count == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_count");
    }
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (const likwid_status s = check_set(*entry.session, set);
        s != LIKWID_OK) {
      return s;
    }
    *out_count =
        static_cast<int>(entry.session->counters().metric_ids(set).size());
    return LIKWID_OK;
  });
}

likwid_status likwid_getEventName(likwid_handle handle, int set, int index,
                                  char* buffer, int capacity) {
  return guarded([&]() -> likwid_status {
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (const likwid_status s = check_set(*entry.session, set);
        s != LIKWID_OK) {
      return s;
    }
    const auto& assignments = entry.session->counters().assignments_of(set);
    if (index < 0 || index >= static_cast<int>(assignments.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "event index out of range");
    }
    return copy_name(assignments[static_cast<std::size_t>(index)].event_name,
                     buffer, capacity);
  });
}

likwid_status likwid_getCounterName(likwid_handle handle, int set, int index,
                                    char* buffer, int capacity) {
  return guarded([&]() -> likwid_status {
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (const likwid_status s = check_set(*entry.session, set);
        s != LIKWID_OK) {
      return s;
    }
    const auto& assignments = entry.session->counters().assignments_of(set);
    if (index < 0 || index >= static_cast<int>(assignments.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "event index out of range");
    }
    return copy_name(assignments[static_cast<std::size_t>(index)].counter_name,
                     buffer, capacity);
  });
}

likwid_status likwid_getMetricName(likwid_handle handle, int set, int index,
                                   char* buffer, int capacity) {
  return guarded([&]() -> likwid_status {
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (const likwid_status s = check_set(*entry.session, set);
        s != LIKWID_OK) {
      return s;
    }
    const auto ids = entry.session->counters().metric_ids(set);
    if (index < 0 || index >= static_cast<int>(ids.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "metric index out of range");
    }
    return copy_name(
        likwid::core::resolve_name(ids[static_cast<std::size_t>(index)]),
        buffer, capacity);
  });
}

likwid_status likwid_getResult(likwid_handle handle, int set, int event_index,
                               int cpu_index, double* out_value) {
  return guarded([&]() -> likwid_status {
    if (out_value == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_value");
    }
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (const likwid_status s = check_set(*entry.session, set);
        s != LIKWID_OK) {
      return s;
    }
    const likwid::core::PerfCtr& ctr = entry.session->counters();
    const auto& assignments = ctr.assignments_of(set);
    if (event_index < 0 ||
        event_index >= static_cast<int>(assignments.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "event index out of range");
    }
    if (cpu_index < 0 || cpu_index >= static_cast<int>(ctr.cpus().size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "cpu index out of range");
    }
    // Index the dense slab by (cpu row, assignment slot): event_index IS
    // the slot, so sets counting the same event on two counters read the
    // right one (a name lookup would alias both to the first slot).
    const likwid::core::CountSlab counts = ctr.extrapolated_counts(set);
    const int row =
        counts.row_of(ctr.cpus()[static_cast<std::size_t>(cpu_index)]);
    *out_value =
        row < 0 ? 0.0
                : counts.row(static_cast<std::size_t>(row))
                      [static_cast<std::size_t>(event_index)];
    return LIKWID_OK;
  });
}

likwid_status likwid_getMetric(likwid_handle handle, int set, int metric_index,
                               int cpu_index, double* out_value) {
  return guarded([&]() -> likwid_status {
    if (out_value == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_value");
    }
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (const likwid_status s = check_set(*entry.session, set);
        s != LIKWID_OK) {
      return s;
    }
    const likwid::core::PerfCtr& ctr = entry.session->counters();
    // Evaluate the set's metrics once per measurement; the read loop of
    // an embedding collector calls likwid_getMetric per (metric, cpu).
    auto cached = entry.metric_cache.find(set);
    if (cached == entry.metric_cache.end()) {
      cached = entry.metric_cache.emplace(set, ctr.compute_metrics(set))
                   .first;
    }
    const auto& rows = cached->second;
    if (metric_index < 0 || metric_index >= static_cast<int>(rows.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "metric index out of range");
    }
    if (cpu_index < 0 || cpu_index >= static_cast<int>(ctr.cpus().size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "cpu index out of range");
    }
    *out_value = rows[static_cast<std::size_t>(metric_index)].value_or(
        ctr.cpus()[static_cast<std::size_t>(cpu_index)], 0.0);
    return LIKWID_OK;
  });
}

likwid_status likwid_getTimeOfGroup(likwid_handle handle, int set,
                                    double* out_seconds) {
  return guarded([&]() -> likwid_status {
    if (out_seconds == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_seconds");
    }
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    if (const likwid_status s = check_set(*entry.session, set);
        s != LIKWID_OK) {
      return s;
    }
    *out_seconds = entry.session->counters().results(set).measured_seconds;
    return LIKWID_OK;
  });
}

likwid_status likwid_injectFault(likwid_handle handle, const char* mode) {
  return guarded([&]() -> likwid_status {
    if (mode == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null fault mode");
    }
    const std::string name(mode);
    likwid::fault::MsrFaultMode fault_mode;
    if (name == "none") {
      fault_mode = likwid::fault::MsrFaultMode::kNone;
    } else if (name == "msr-fail") {
      fault_mode = likwid::fault::MsrFaultMode::kFail;
    } else if (name == "msr-timeout") {
      fault_mode = likwid::fault::MsrFaultMode::kTimeout;
    } else if (name == "msr-stale") {
      fault_mode = likwid::fault::MsrFaultMode::kStale;
    } else if (name == "msr-saturate") {
      fault_mode = likwid::fault::MsrFaultMode::kSaturate;
    } else {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                  "unknown fault mode '" + name +
                      "' (want none, msr-fail, msr-timeout, msr-stale or "
                      "msr-saturate)");
    }
    LIKWID_LOCK_LIVE_ENTRY(handle, entry);
    likwid::hwsim::SimMachine& machine = entry.session->kernel().machine();
    if (fault_mode == likwid::fault::MsrFaultMode::kNone) {
      machine.msrs().set_read_interposer(nullptr);
      return LIKWID_OK;
    }
    // Onset 0 + an immediate begin_step arms the device right away: the
    // very next counter access sees the fault.
    auto device = std::make_shared<likwid::fault::MsrFaultDevice>(
        machine.spec(), fault_mode, /*onset_step=*/0);
    device->begin_step(0);
    machine.msrs().set_read_interposer(std::move(device));
    return LIKWID_OK;
  });
}

}  // extern "C"

namespace {

/// A collector handle owns one COMPLETED loopback ingest run — create()
/// runs the whole pipeline synchronously, so queries never race ingest.
/// Same concurrency shape as HandleEntry: shared registry lock for
/// lookups, per-entry mutex serializing the queries on one handle.
struct CollectorEntry {
  CollectorEntry(std::unique_ptr<likwid::collect::LoopbackCollector> c,
                 std::string g, std::string m)
      : collector(std::move(c)),
        group(std::move(g)),
        default_metric(std::move(m)) {}

  likwid::util::Mutex mutex;
  std::unique_ptr<likwid::collect::LoopbackCollector> collector
      LIKWID_GUARDED_BY(mutex);
  std::string group LIKWID_GUARDED_BY(mutex);
  std::string default_metric LIKWID_GUARDED_BY(mutex);
};

struct CollectorRegistry {
  likwid::util::SharedMutex mutex;
  std::map<likwid_collector, std::shared_ptr<CollectorEntry>> table
      LIKWID_GUARDED_BY(mutex);
};

CollectorRegistry& collector_registry() {
  static CollectorRegistry instance;
  return instance;
}

std::atomic<likwid_collector> g_next_collector{1};

std::shared_ptr<CollectorEntry> find_collector(likwid_collector collector) {
  CollectorRegistry& reg = collector_registry();
  const likwid::util::SharedLock lock(reg.mutex);
  const auto it = reg.table.find(collector);
  if (it == reg.table.end()) return nullptr;
  return it->second;
}

likwid_status invalid_collector(likwid_collector collector) {
  return fail(LIKWID_ERROR_INVALID_HANDLE,
              "collector " + std::to_string(collector) +
                  " does not name a live collector");
}

/// Collector twin of LIKWID_LOCK_LIVE_ENTRY (see that macro for why this
/// is expanded inline rather than a locking helper).
#define LIKWID_LOCK_LIVE_COLLECTOR(handle, entry)                        \
  const std::shared_ptr<CollectorEntry> entry##_ptr =                    \
      find_collector(handle);                                            \
  if (entry##_ptr == nullptr) return invalid_collector(handle);          \
  CollectorEntry& entry = *entry##_ptr;                                  \
  const likwid::util::MutexLock entry##_lock(entry.mutex)

}  // namespace

extern "C" {

likwid_status likwid_collector_create(const char* machine_key,
                                      const char* group, int num_nodes,
                                      int steps,
                                      likwid_collector* out_collector) {
  return guarded([&]() -> likwid_status {
    if (out_collector == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_collector");
    }
    if (num_nodes <= 0 || steps <= 0) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                  "collector needs positive num_nodes and steps");
    }
    const std::string group_name = group != nullptr ? group : "MEM";
    // One template collector supplies the real metric schemas of the
    // group; the simulated fleet streams samples shaped like them.
    likwid::monitor::MonitorConfig monitor_cfg;
    monitor_cfg.machine_preset =
        machine_key != nullptr ? machine_key : "westmere-ep";
    monitor_cfg.groups = {group_name};
    const likwid::monitor::Collector schema_template(0, monitor_cfg);

    likwid::collect::LoopbackConfig cfg;
    cfg.fleet.num_nodes = static_cast<std::size_t>(num_nodes);
    cfg.fleet.schemas = schema_template.schemas();
    cfg.steps = static_cast<std::size_t>(steps);
    // A generous publish deadline: the C API promises a complete ingest,
    // not a backpressure experiment.
    cfg.service.publish_deadline_seconds = 1.0;
    // Run the whole pipeline outside every lock — this is the expensive
    // part, and concurrent creates must not serialize.
    auto loopback =
        std::make_unique<likwid::collect::LoopbackCollector>(cfg);
    loopback->run();
    const std::string default_metric = likwid::core::resolve_name(
        cfg.fleet.schemas.front()->metric_ids.front());

    const likwid_collector handle =
        g_next_collector.fetch_add(1, std::memory_order_relaxed);
    auto entry = std::make_shared<CollectorEntry>(
        std::move(loopback), group_name, default_metric);
    {
      CollectorRegistry& reg = collector_registry();
      const likwid::util::ExclusiveLock lock(reg.mutex);
      reg.table.emplace(handle, std::move(entry));
    }
    *out_collector = handle;
    return LIKWID_OK;
  });
}

likwid_status likwid_collector_samplesIngested(likwid_collector collector,
                                               long long* out_samples) {
  return guarded([&]() -> likwid_status {
    if (out_samples == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_samples");
    }
    LIKWID_LOCK_LIVE_COLLECTOR(collector, entry);
    *out_samples = static_cast<long long>(
        entry.collector->service().decode_stats().samples);
    return LIKWID_OK;
  });
}

likwid_status likwid_collector_framesDropped(likwid_collector collector,
                                             long long* out_frames) {
  return guarded([&]() -> likwid_status {
    if (out_frames == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_frames");
    }
    LIKWID_LOCK_LIVE_COLLECTOR(collector, entry);
    const likwid::collect::CollectorService& service =
        entry.collector->service();
    *out_frames = static_cast<long long>(
        service.frames_dropped() + service.decode_stats().decode_errors());
    return LIKWID_OK;
  });
}

likwid_status likwid_collector_topNode(likwid_collector collector,
                                       const char* metric, int rank,
                                       int* out_node, double* out_mean) {
  return guarded([&]() -> likwid_status {
    if (rank < 0) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "negative rank");
    }
    LIKWID_LOCK_LIVE_COLLECTOR(collector, entry);
    const std::string name =
        metric != nullptr ? metric : entry.default_metric;
    const likwid::api::ResultTable top = entry.collector->query().top_k(
        entry.group, name, static_cast<std::size_t>(rank) + 1);
    if (static_cast<std::size_t>(rank) >= top.cpus.size()) {
      return fail(LIKWID_ERROR_NOT_FOUND,
                  "rank " + std::to_string(rank) +
                      " exceeds the nodes reporting metric '" + name + "'");
    }
    if (out_node != nullptr) {
      *out_node = top.cpus[static_cast<std::size_t>(rank)];
    }
    if (out_mean != nullptr) {
      *out_mean = top.metrics.front().values[static_cast<std::size_t>(rank)];
    }
    return LIKWID_OK;
  });
}

likwid_status likwid_collector_nodeStats(likwid_collector collector,
                                         int node, const char* metric,
                                         double* out_min, double* out_avg,
                                         double* out_max, double* out_p95) {
  return guarded([&]() -> likwid_status {
    LIKWID_LOCK_LIVE_COLLECTOR(collector, entry);
    const std::string name =
        metric != nullptr ? metric : entry.default_metric;
    const likwid::api::ResultTable stats =
        entry.collector->query().fleet_stats(entry.group, name);
    for (std::size_t i = 0; i < stats.cpus.size(); ++i) {
      if (stats.cpus[i] != node) continue;
      if (out_min != nullptr) *out_min = stats.metrics[0].values[i];
      if (out_avg != nullptr) *out_avg = stats.metrics[1].values[i];
      if (out_max != nullptr) *out_max = stats.metrics[2].values[i];
      if (out_p95 != nullptr) *out_p95 = stats.metrics[3].values[i];
      return LIKWID_OK;
    }
    return fail(LIKWID_ERROR_NOT_FOUND,
                "node " + std::to_string(node) +
                    " has no samples of metric '" + name + "'");
  });
}

likwid_status likwid_collector_destroy(likwid_collector collector) {
  return guarded([&]() -> likwid_status {
    std::shared_ptr<CollectorEntry> entry;
    {
      CollectorRegistry& reg = collector_registry();
      const likwid::util::ExclusiveLock lock(reg.mutex);
      const auto it = reg.table.find(collector);
      if (it == reg.table.end()) return invalid_collector(collector);
      entry = std::move(it->second);
      reg.table.erase(it);
    }
    // The entry (and the stores it holds) dies here or when the last
    // in-flight query's shared_ptr drops — racing destroy against a
    // query is memory-safe, same as likwid_finalize.
    return LIKWID_OK;
  });
}

const char* likwid_statusName(likwid_status status) {
  switch (status) {
    case LIKWID_OK: return "LIKWID_OK";
    case LIKWID_ERROR_INVALID_HANDLE: return "LIKWID_ERROR_INVALID_HANDLE";
    case LIKWID_ERROR_INVALID_ARGUMENT:
      return "LIKWID_ERROR_INVALID_ARGUMENT";
    case LIKWID_ERROR_NOT_FOUND: return "LIKWID_ERROR_NOT_FOUND";
    case LIKWID_ERROR_PERMISSION: return "LIKWID_ERROR_PERMISSION";
    case LIKWID_ERROR_UNSUPPORTED: return "LIKWID_ERROR_UNSUPPORTED";
    case LIKWID_ERROR_RESOURCE_EXHAUSTED:
      return "LIKWID_ERROR_RESOURCE_EXHAUSTED";
    case LIKWID_ERROR_INVALID_STATE: return "LIKWID_ERROR_INVALID_STATE";
    case LIKWID_ERROR_INTERNAL: return "LIKWID_ERROR_INTERNAL";
    case LIKWID_ERROR_UNAVAILABLE: return "LIKWID_ERROR_UNAVAILABLE";
    case LIKWID_ERROR_DEADLINE_EXCEEDED:
      return "LIKWID_ERROR_DEADLINE_EXCEEDED";
  }
  return "LIKWID_ERROR_INTERNAL";
}

const char* likwid_lastError(void) { return t_last_error.c_str(); }

}  // extern "C"
