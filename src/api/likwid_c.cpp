// likwid_c.cpp — the exception -> status-code boundary behind api/likwid.h.
//
// Every handle owns one api::Session. The wrapper adds the flat API's
// lifecycle bookkeeping (setup-before-start) on top of the facade and
// translates likwid::Error categories into likwid_status values; no
// exception ever crosses into the C caller.
#include "api/likwid.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "core/name_table.hpp"
#include "util/status.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/stream.hpp"
#include "workloads/workload.hpp"

namespace {

using likwid::Error;
using likwid::ErrorCode;

struct HandleEntry {
  std::unique_ptr<likwid::api::Session> session;
  bool setup_done = false;  ///< likwid_setupCounters seen since init/stop
  /// Derived metrics of each set, evaluated once per measurement and
  /// served to every likwid_getMetric call; invalidated on start.
  std::map<int, std::vector<likwid::core::PerfCtr::MetricRow>> metric_cache;
};

/// Handle ids are monotonically increasing and never reused, so stale
/// handles keep failing with LIKWID_ERROR_INVALID_HANDLE forever.
std::map<likwid_handle, HandleEntry>& handles() {
  static std::map<likwid_handle, HandleEntry> table;
  return table;
}
likwid_handle g_next_handle = 1;

/// Serializes every API call: the handle table (and the sessions behind
/// it) are shared process state. Coarse, but the measured work runs on a
/// simulated clock — there is nothing to overlap.
std::mutex& api_mutex() {
  static std::mutex m;
  return m;
}

thread_local std::string t_last_error;

likwid_status to_status(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return LIKWID_ERROR_INVALID_ARGUMENT;
    case ErrorCode::kNotFound: return LIKWID_ERROR_NOT_FOUND;
    case ErrorCode::kPermission: return LIKWID_ERROR_PERMISSION;
    case ErrorCode::kUnsupported: return LIKWID_ERROR_UNSUPPORTED;
    case ErrorCode::kResourceExhausted: return LIKWID_ERROR_RESOURCE_EXHAUSTED;
    case ErrorCode::kInvalidState: return LIKWID_ERROR_INVALID_STATE;
    case ErrorCode::kInternal: return LIKWID_ERROR_INTERNAL;
  }
  return LIKWID_ERROR_INTERNAL;
}

likwid_status fail(likwid_status status, const std::string& message) {
  t_last_error = message;
  return status;
}

/// Run `fn` behind the exception boundary. `fn` either returns a status
/// (for argument checks) or void (LIKWID_OK on fall-through).
template <typename Fn>
likwid_status guarded(Fn&& fn) {
  const std::lock_guard<std::mutex> lock(api_mutex());
  try {
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      t_last_error.clear();
      return LIKWID_OK;
    } else {
      const likwid_status status = fn();
      if (status == LIKWID_OK) t_last_error.clear();
      return status;
    }
  } catch (const Error& e) {
    return fail(to_status(e.code()), e.what());
  } catch (const std::exception& e) {
    return fail(LIKWID_ERROR_INTERNAL, e.what());
  } catch (...) {
    return fail(LIKWID_ERROR_INTERNAL, "unknown exception");
  }
}

/// Look up a live handle or fail with LIKWID_ERROR_INVALID_HANDLE.
HandleEntry* find(likwid_handle handle) {
  const auto it = handles().find(handle);
  return it == handles().end() ? nullptr : &it->second;
}

likwid_status invalid_handle(likwid_handle handle) {
  return fail(LIKWID_ERROR_INVALID_HANDLE,
              "handle " + std::to_string(handle) +
                  " does not name a live likwid session");
}

likwid_status copy_name(const std::string& name, char* buffer, int capacity) {
  if (buffer == nullptr || capacity <= 0) {
    return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                "null or empty name buffer");
  }
  const std::size_t n =
      std::min(name.size(), static_cast<std::size_t>(capacity) - 1);
  std::memcpy(buffer, name.data(), n);
  buffer[n] = '\0';
  return LIKWID_OK;
}

likwid_status check_set(const likwid::api::Session& session, int set) {
  if (set < 0 || set >= session.counters().num_event_sets()) {
    return fail(LIKWID_ERROR_NOT_FOUND,
                "event set " + std::to_string(set) + " does not exist");
  }
  return LIKWID_OK;
}

}  // namespace

extern "C" {

likwid_status likwid_init(const char* machine_key, const int* cpus,
                          int num_cpus, likwid_handle* out_handle) {
  return guarded([&]() -> likwid_status {
    if (out_handle == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_handle");
    }
    if (cpus == nullptr || num_cpus <= 0) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                  "likwid_init needs at least one measured cpu");
    }
    const likwid_handle handle = g_next_handle;
    auto session =
        likwid::api::Session::configure()
            .name("likwid_c handle " + std::to_string(handle))
            .machine(machine_key != nullptr ? machine_key : "westmere-ep")
            .cpus(std::vector<int>(cpus, cpus + num_cpus))
            .build();
    // Construct the counters now so bad cpu lists fail here, not at the
    // first addEventSet.
    session->counters();
    HandleEntry entry;
    entry.session = std::move(session);
    handles().emplace(handle, std::move(entry));
    ++g_next_handle;
    *out_handle = handle;
    return LIKWID_OK;
  });
}

likwid_status likwid_addEventSet(likwid_handle handle, const char* spec,
                                 int* out_set) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (spec == nullptr || spec[0] == '\0') {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null or empty event spec");
    }
    const std::string text(spec);
    // Specs with ':' (explicit counters) or ',' (several events) are
    // custom event lists; a bare word is tried as a performance-group
    // name first and falls back to a one-event custom set, so
    // "FLOPS_DP" and "L1D_REPL" both work.
    if (text.find(':') != std::string::npos ||
        text.find(',') != std::string::npos) {
      entry->session->add_custom(text);
    } else {
      try {
        entry->session->add_group(text);
      } catch (const Error& e) {
        if (e.code() != ErrorCode::kNotFound) throw;
        entry->session->add_custom(text);
      }
    }
    if (out_set != nullptr) {
      *out_set = entry->session->counters().num_event_sets() - 1;
    }
    return LIKWID_OK;
  });
}

likwid_status likwid_setupCounters(likwid_handle handle, int set) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    entry->session->counters().select_set(set);
    entry->setup_done = true;
    return LIKWID_OK;
  });
}

likwid_status likwid_startCounters(likwid_handle handle) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (!entry->setup_done) {
      return fail(LIKWID_ERROR_INVALID_STATE,
                  "likwid_startCounters before likwid_setupCounters");
    }
    if (entry->session->running()) {
      return fail(LIKWID_ERROR_INVALID_STATE,
                  "counters already started (likwid_startCounters called "
                  "twice)");
    }
    entry->session->start();
    entry->metric_cache.clear();  // results are stale once counting resumes
    return LIKWID_OK;
  });
}

likwid_status likwid_stopCounters(likwid_handle handle) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (!entry->session->running()) {
      return fail(LIKWID_ERROR_INVALID_STATE,
                  "likwid_stopCounters without running counters");
    }
    entry->session->stop();
    entry->metric_cache.clear();  // re-evaluate over the final counts
    return LIKWID_OK;
  });
}

likwid_status likwid_finalize(likwid_handle handle) {
  return guarded([&]() -> likwid_status {
    if (handles().erase(handle) == 0) return invalid_handle(handle);
    return LIKWID_OK;
  });
}

likwid_status likwid_runWorkload(likwid_handle handle, const char* workload,
                                 long long size, int reps) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (workload == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null workload name");
    }
    if (size <= 0 || reps <= 0) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                  "workload size and reps must be positive");
    }
    likwid::api::Session& session = *entry->session;
    likwid::workloads::Placement placement;
    placement.cpus = session.cpus();
    const std::string name(workload);
    if (name == "triad") {
      likwid::workloads::StreamConfig cfg;
      cfg.array_length = static_cast<std::size_t>(size);
      cfg.repetitions = reps;
      likwid::workloads::StreamTriad triad(cfg);
      run_workload(session.kernel(), triad, placement);
    } else if (name == "jacobi") {
      likwid::workloads::JacobiConfig cfg;
      cfg.n = static_cast<int>(size);
      cfg.sweeps = reps;
      likwid::workloads::JacobiStencil jacobi(cfg);
      run_workload(session.kernel(), jacobi, placement);
    } else {
      return fail(LIKWID_ERROR_NOT_FOUND,
                  "unknown workload '" + name + "' (triad, jacobi)");
    }
    return LIKWID_OK;
  });
}

likwid_status likwid_advanceTime(likwid_handle handle, double seconds) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (!(seconds > 0)) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT,
                  "duration must be positive");
    }
    entry->session->kernel().advance_time(seconds);
    return LIKWID_OK;
  });
}

likwid_status likwid_getNumberOfEvents(likwid_handle handle, int set,
                                       int* out_count) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (out_count == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_count");
    }
    if (const likwid_status s = check_set(*entry->session, set);
        s != LIKWID_OK) {
      return s;
    }
    *out_count = static_cast<int>(
        entry->session->counters().assignments_of(set).size());
    return LIKWID_OK;
  });
}

likwid_status likwid_getNumberOfMetrics(likwid_handle handle, int set,
                                        int* out_count) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (out_count == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_count");
    }
    if (const likwid_status s = check_set(*entry->session, set);
        s != LIKWID_OK) {
      return s;
    }
    *out_count =
        static_cast<int>(entry->session->counters().metric_ids(set).size());
    return LIKWID_OK;
  });
}

likwid_status likwid_getEventName(likwid_handle handle, int set, int index,
                                  char* buffer, int capacity) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (const likwid_status s = check_set(*entry->session, set);
        s != LIKWID_OK) {
      return s;
    }
    const auto& assignments = entry->session->counters().assignments_of(set);
    if (index < 0 || index >= static_cast<int>(assignments.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "event index out of range");
    }
    return copy_name(assignments[static_cast<std::size_t>(index)].event_name,
                     buffer, capacity);
  });
}

likwid_status likwid_getCounterName(likwid_handle handle, int set, int index,
                                    char* buffer, int capacity) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (const likwid_status s = check_set(*entry->session, set);
        s != LIKWID_OK) {
      return s;
    }
    const auto& assignments = entry->session->counters().assignments_of(set);
    if (index < 0 || index >= static_cast<int>(assignments.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "event index out of range");
    }
    return copy_name(assignments[static_cast<std::size_t>(index)].counter_name,
                     buffer, capacity);
  });
}

likwid_status likwid_getMetricName(likwid_handle handle, int set, int index,
                                   char* buffer, int capacity) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (const likwid_status s = check_set(*entry->session, set);
        s != LIKWID_OK) {
      return s;
    }
    const auto ids = entry->session->counters().metric_ids(set);
    if (index < 0 || index >= static_cast<int>(ids.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "metric index out of range");
    }
    return copy_name(
        likwid::core::resolve_name(ids[static_cast<std::size_t>(index)]),
        buffer, capacity);
  });
}

likwid_status likwid_getResult(likwid_handle handle, int set, int event_index,
                               int cpu_index, double* out_value) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (out_value == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_value");
    }
    if (const likwid_status s = check_set(*entry->session, set);
        s != LIKWID_OK) {
      return s;
    }
    const likwid::core::PerfCtr& ctr = entry->session->counters();
    const auto& assignments = ctr.assignments_of(set);
    if (event_index < 0 ||
        event_index >= static_cast<int>(assignments.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "event index out of range");
    }
    if (cpu_index < 0 || cpu_index >= static_cast<int>(ctr.cpus().size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "cpu index out of range");
    }
    // Index the dense slab by (cpu row, assignment slot): event_index IS
    // the slot, so sets counting the same event on two counters read the
    // right one (a name lookup would alias both to the first slot).
    const likwid::core::CountSlab counts = ctr.extrapolated_counts(set);
    const int row =
        counts.row_of(ctr.cpus()[static_cast<std::size_t>(cpu_index)]);
    *out_value =
        row < 0 ? 0.0
                : counts.row(static_cast<std::size_t>(row))
                      [static_cast<std::size_t>(event_index)];
    return LIKWID_OK;
  });
}

likwid_status likwid_getMetric(likwid_handle handle, int set, int metric_index,
                               int cpu_index, double* out_value) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (out_value == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_value");
    }
    if (const likwid_status s = check_set(*entry->session, set);
        s != LIKWID_OK) {
      return s;
    }
    const likwid::core::PerfCtr& ctr = entry->session->counters();
    // Evaluate the set's metrics once per measurement; the read loop of
    // an embedding collector calls likwid_getMetric per (metric, cpu).
    auto cached = entry->metric_cache.find(set);
    if (cached == entry->metric_cache.end()) {
      cached = entry->metric_cache.emplace(set, ctr.compute_metrics(set))
                   .first;
    }
    const auto& rows = cached->second;
    if (metric_index < 0 || metric_index >= static_cast<int>(rows.size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "metric index out of range");
    }
    if (cpu_index < 0 || cpu_index >= static_cast<int>(ctr.cpus().size())) {
      return fail(LIKWID_ERROR_NOT_FOUND, "cpu index out of range");
    }
    *out_value = rows[static_cast<std::size_t>(metric_index)].value_or(
        ctr.cpus()[static_cast<std::size_t>(cpu_index)], 0.0);
    return LIKWID_OK;
  });
}

likwid_status likwid_getTimeOfGroup(likwid_handle handle, int set,
                                    double* out_seconds) {
  return guarded([&]() -> likwid_status {
    HandleEntry* entry = find(handle);
    if (entry == nullptr) return invalid_handle(handle);
    if (out_seconds == nullptr) {
      return fail(LIKWID_ERROR_INVALID_ARGUMENT, "null out_seconds");
    }
    if (const likwid_status s = check_set(*entry->session, set);
        s != LIKWID_OK) {
      return s;
    }
    *out_seconds = entry->session->counters().results(set).measured_seconds;
    return LIKWID_OK;
  });
}

const char* likwid_statusName(likwid_status status) {
  switch (status) {
    case LIKWID_OK: return "LIKWID_OK";
    case LIKWID_ERROR_INVALID_HANDLE: return "LIKWID_ERROR_INVALID_HANDLE";
    case LIKWID_ERROR_INVALID_ARGUMENT:
      return "LIKWID_ERROR_INVALID_ARGUMENT";
    case LIKWID_ERROR_NOT_FOUND: return "LIKWID_ERROR_NOT_FOUND";
    case LIKWID_ERROR_PERMISSION: return "LIKWID_ERROR_PERMISSION";
    case LIKWID_ERROR_UNSUPPORTED: return "LIKWID_ERROR_UNSUPPORTED";
    case LIKWID_ERROR_RESOURCE_EXHAUSTED:
      return "LIKWID_ERROR_RESOURCE_EXHAUSTED";
    case LIKWID_ERROR_INVALID_STATE: return "LIKWID_ERROR_INVALID_STATE";
    case LIKWID_ERROR_INTERNAL: return "LIKWID_ERROR_INTERNAL";
  }
  return "LIKWID_ERROR_INTERNAL";
}

const char* likwid_lastError(void) { return t_last_error.c_str(); }

}  // extern "C"
