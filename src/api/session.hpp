// session.hpp — likwid::api::Session, the embeddable facade of the suite.
//
// One Session is one complete measurement context: the simulated node
// (machine + kernel), its probed topology, the performance counters, the
// interval sampler and the per-session marker environment. Before the
// facade, every tool and example hand-wired ossim::SimKernel +
// core::PerfCtr + IntervalSampler + a writer; now that wiring exists in
// exactly one place and external programs embed the suite through this
// class (C++) or through the flat handle API in api/likwid.h (C), the way
// downstream projects embed the real library's perfmon interface.
//
// Construction is builder-based:
//
//   auto session = likwid::api::Session::configure()
//                      .machine("westmere-ep")
//                      .cpus({0, 1, 2, 3})
//                      .group("FLOPS_DP")
//                      .build();
//   session->start();
//   ... run the measured code on session->kernel() ...
//   session->stop();
//   likwid::api::ResultTable table = session->measurement(0);
//
// Thread-safety contract:
//   - One Session is confined to one thread AT A TIME. Calls are not
//     internally locked; two threads must never be inside the same
//     Session concurrently. Handing a Session between threads is fine
//     when the handoff itself synchronizes (thread join, mutex, queue).
//   - Distinct Sessions are independent and may measure in parallel from
//     different threads with no external locking: each owns its machine,
//     kernel, counters, sampler and marker environment. The process-wide
//     state sessions share — the core::NameTable interner, the ambient
//     marker registry, the preset/event tables — is internally
//     synchronized or immutable after first use.
//   - Enforcement: the entry points carry a lock-free tripwire that
//     throws Error(kInvalidState) when it observes two threads
//     overlapping inside one Session. It is a misuse detector (same-thread
//     reentrancy stays allowed), not a serialization mechanism — races it
//     happens to miss are still undefined behavior. The tripwire doubles
//     as a Clang thread-safety capability (UseSlot below): the lazily
//     mutated members are LIKWID_GUARDED_BY it, so an entry point that
//     forgets the guard fails -Wthread-safety at compile time.
//   - The flat C API (api/likwid.h) layers real per-handle locking on top
//     of this contract, so C callers may share a handle across threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/result_table.hpp"
#include "core/features.hpp"
#include "core/marker.hpp"
#include "core/numa.hpp"
#include "core/perfctr.hpp"
#include "core/sampling.hpp"
#include "core/topology.hpp"
#include "hwsim/machine.hpp"
#include "ossim/kernel.hpp"
#include "util/thread_annotations.hpp"

namespace likwid::api {

class Session {
 public:
  class Builder {
   public:
    /// Label used in diagnostics (marker double-bind errors name it).
    Builder& name(std::string value);
    /// Machine preset key ("westmere-ep", "core2-quad", ...).
    Builder& machine(std::string preset_key);
    /// BIOS numbering override ("smt-last", "smt-adjacent", "socket-rr");
    /// empty keeps the preset's default.
    Builder& os_enumeration(std::string mode);
    Builder& seed(std::uint64_t value);
    /// Hardware threads to measure (the tools' -c list).
    Builder& cpus(std::vector<int> list);
    /// Append a performance group as the next event set.
    Builder& group(std::string group_name);
    /// Append a custom event set ("EVT:PMC0,EVT2:PMC1").
    Builder& custom(std::string event_spec);
    /// Callback reporting the calling thread's hardware thread for the
    /// marker API (sched_getcpu analog). Defaults to "first measured cpu".
    Builder& current_cpu(std::function<int()> fn);

    /// Build the node and program the configured event sets. Throws on
    /// unknown presets, bad cpu lists and unsupported groups.
    std::unique_ptr<Session> build();

   private:
    friend class Session;
    std::string name_ = "session";
    std::string machine_ = "westmere-ep";
    std::string os_enumeration_;
    std::uint64_t seed_ = 42;
    std::vector<int> cpus_;
    struct EventSetSpec {
      bool is_group = false;
      std::string spec;
    };
    std::vector<EventSetSpec> sets_;
    std::function<int()> current_cpu_;
  };

  static Builder configure() { return Builder(); }

  /// Attach a session to an externally owned kernel (an mpisim cluster
  /// node, a test fixture). The kernel must outlive the session.
  static std::unique_ptr<Session> attach(ossim::SimKernel& kernel,
                                         std::vector<int> cpus,
                                         std::string name = "attached");

  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& name() const noexcept { return name_; }

  // --- the node ----------------------------------------------------------

  hwsim::SimMachine& machine() noexcept { return kernel_->machine(); }
  ossim::SimKernel& kernel() noexcept { return *kernel_; }
  /// Probed once, cached for the session's lifetime.
  const core::NodeTopology& topology();
  core::NumaTopology numa();
  core::Features features(int cpu);

  // --- counter configuration ---------------------------------------------

  /// Replace the measured cpu list. Only allowed before the counters
  /// exist; throws Error(kInvalidState) afterwards.
  void set_cpus(std::vector<int> cpus);
  const std::vector<int>& cpus() const noexcept { return cpus_; }

  void add_group(const std::string& group_name);
  void add_custom(const std::string& event_spec);

  bool has_counters() const noexcept { return ctr_ != nullptr; }
  /// The session's counters; created on first use from the configured cpu
  /// list. Throws Error(kInvalidState) when no cpus are configured.
  core::PerfCtr& counters();
  const core::PerfCtr& counters() const;

  /// Drop counters, sampler and marker state and start a fresh counter
  /// scope on the same node (repeat-measurement workflows: measure,
  /// reconfigure the machine, measure again).
  void reset_counters();

  // --- measurement --------------------------------------------------------

  void start();
  void stop();
  void rotate();
  bool running() const noexcept { return ctr_ != nullptr && ctr_->running(); }

  /// The session's interval sampler (timeline / monitoring consumers);
  /// created on first use, after the event sets are configured.
  core::IntervalSampler& sampler();

  // --- markers ------------------------------------------------------------

  /// Replace the current-cpu callback (sched_getcpu analog). Only allowed
  /// before the marker environment binds; throws Error(kInvalidState)
  /// afterwards.
  void set_current_cpu(std::function<int()> fn);

  /// This session's marker environment. Bound lazily on first access (to
  /// the session's counters and current-cpu callback), so marker state is
  /// per-session; use MarkerBinding::adopt_env(&markers()) — or
  /// bind_ambient_markers() — to also route the C-style likwid_marker*
  /// functions here.
  core::MarkerEnv& markers();

  /// Make this session's env the target of the global C-style marker
  /// functions. Throws Error(kInvalidState), naming the owner, when
  /// another session holds the ambient binding.
  void bind_ambient_markers();
  /// Release the ambient binding if this session holds it (also done by
  /// the destructor). Marker results stay readable through markers().
  /// Outside the tripwire analysis: it must stay noexcept for the
  /// destructor path, while acquiring the UseSlot can throw; it only
  /// passes the env's address to the CAS-synchronized ambient registry.
  void release_ambient_markers() noexcept LIKWID_NO_THREAD_SAFETY_ANALYSIS;

  // --- results ------------------------------------------------------------

  /// Wrapper-mode results of one event set.
  ResultTable measurement(int set) const;
  /// measurement() into a caller-owned table, refilled from the session's
  /// retained TableScratch — the steady-state form: after the first call
  /// for a set shape, re-extracting results allocates nothing.
  void measurement_into(int set, ResultTable& out) const;
  /// Marker-mode results; requires an initialized marker session.
  RegionReport regions(int set) const;

 private:
  Session() = default;

  /// The "one thread at a time" contract as a Clang thread-safety
  /// capability. Not a mutex: entering claims the slot with a CAS and a
  /// SECOND thread's claim throws Error(kInvalidState) instead of
  /// blocking. The lazily mutated members below are LIKWID_GUARDED_BY
  /// this slot, which is what lets -Wthread-safety prove every entry
  /// point constructs its UseGuard.
  class LIKWID_CAPABILITY("session") UseSlot {
   public:
    /// Claim the slot for the calling thread. Returns true when the call
    /// took ownership (outermost entry), false on same-thread
    /// reentrancy; throws Error(kInvalidState) — naming `session` —
    /// when another thread is inside.
    bool enter(const Session& session) LIKWID_ACQUIRE();
    /// Release the slot (outermost guard only).
    void exit(bool owner) noexcept LIKWID_RELEASE();

   private:
    /// Thread currently inside an entry point (default id = none).
    std::atomic<std::thread::id> active_thread_{};
  };

  /// RAII tripwire guard: entry points construct one; overlapping
  /// construction from a second thread throws Error(kInvalidState)
  /// naming the session. Same-thread reentrancy (start() calling
  /// counters()) is allowed and keeps the outermost guard's ownership.
  class LIKWID_SCOPED_CAPABILITY UseGuard {
   public:
    explicit UseGuard(const Session& session) LIKWID_ACQUIRE(session.use_);
    ~UseGuard() LIKWID_RELEASE();
    UseGuard(const UseGuard&) = delete;
    UseGuard& operator=(const UseGuard&) = delete;

   private:
    const Session* session_;
    bool owner_ = false;
  };

  std::string name_;
  std::unique_ptr<hwsim::SimMachine> owned_machine_;
  std::unique_ptr<ossim::SimKernel> owned_kernel_;
  ossim::SimKernel* kernel_ = nullptr;
  mutable UseSlot use_;
  /// cpus_ and ctr_ stay outside the capability: the hot const noexcept
  /// queries (cpus(), has_counters(), running()) read them guard-free and
  /// must not throw. Their mutation paths (set_cpus, counters,
  /// reset_counters) all hold the guard, so cross-thread mutation still
  /// trips the wire.
  std::vector<int> cpus_;
  std::unique_ptr<core::PerfCtr> ctr_;
  std::optional<core::NodeTopology> topology_ LIKWID_GUARDED_BY(use_);
  std::unique_ptr<core::IntervalSampler> sampler_ LIKWID_GUARDED_BY(use_);
  core::MarkerEnv markers_ LIKWID_GUARDED_BY(use_);
  std::function<int()> current_cpu_ LIKWID_GUARDED_BY(use_);
  /// Arena + evaluation buffers behind measurement_into(), retained for
  /// the session's lifetime so repeated extraction stays allocation-free.
  mutable TableScratch table_scratch_ LIKWID_GUARDED_BY(use_);
};

}  // namespace likwid::api
