#include "api/session.hpp"

#include <utility>

#include "core/likwid.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"

namespace likwid::api {

Session::Builder& Session::Builder::name(std::string value) {
  name_ = std::move(value);
  return *this;
}

Session::Builder& Session::Builder::machine(std::string preset_key) {
  machine_ = std::move(preset_key);
  return *this;
}

Session::Builder& Session::Builder::os_enumeration(std::string mode) {
  os_enumeration_ = std::move(mode);
  return *this;
}

Session::Builder& Session::Builder::seed(std::uint64_t value) {
  seed_ = value;
  return *this;
}

Session::Builder& Session::Builder::cpus(std::vector<int> list) {
  cpus_ = std::move(list);
  return *this;
}

Session::Builder& Session::Builder::group(std::string group_name) {
  sets_.push_back({true, std::move(group_name)});
  return *this;
}

Session::Builder& Session::Builder::custom(std::string event_spec) {
  sets_.push_back({false, std::move(event_spec)});
  return *this;
}

Session::Builder& Session::Builder::current_cpu(std::function<int()> fn) {
  current_cpu_ = std::move(fn);
  return *this;
}

std::unique_ptr<Session> Session::Builder::build() {
  hwsim::MachineSpec spec = hwsim::presets::preset_by_key(machine_);
  if (!os_enumeration_.empty()) {
    spec.os_enumeration = hwsim::parse_os_enumeration(os_enumeration_);
  }
  std::unique_ptr<Session> session(new Session());
  // The fresh session is single-owner until returned; the guard makes
  // the pre-publication writes to guarded members visible to the
  // thread-safety analysis (and costs one uncontended CAS).
  const UseGuard guard(*session);
  session->name_ = name_;
  session->markers_.set_owner(name_);
  session->owned_machine_ = std::make_unique<hwsim::SimMachine>(std::move(spec));
  session->owned_kernel_ =
      std::make_unique<ossim::SimKernel>(*session->owned_machine_, seed_);
  session->kernel_ = session->owned_kernel_.get();
  session->cpus_ = cpus_;
  session->current_cpu_ = current_cpu_;
  for (const auto& set : sets_) {
    if (set.is_group) {
      session->add_group(set.spec);
    } else {
      session->add_custom(set.spec);
    }
  }
  return session;
}

std::unique_ptr<Session> Session::attach(ossim::SimKernel& kernel,
                                         std::vector<int> cpus,
                                         std::string name) {
  std::unique_ptr<Session> session(new Session());
  const UseGuard guard(*session);  // single-owner until returned
  session->name_ = std::move(name);
  session->markers_.set_owner(session->name_);
  session->kernel_ = &kernel;
  session->cpus_ = std::move(cpus);
  return session;
}

bool Session::UseSlot::enter(const Session& session) {
  std::thread::id expected{};
  const std::thread::id self = std::this_thread::get_id();
  if (active_thread_.compare_exchange_strong(expected, self,
                                             std::memory_order_acq_rel)) {
    return true;
  }
  if (expected != self) {
    throw_error(ErrorCode::kInvalidState,
                "session '" + session.name_ +
                    "' entered concurrently from a second thread; a "
                    "Session is single-threaded — use one Session per "
                    "thread or serialize calls externally");
  }
  // Same-thread reentrancy: the outermost guard keeps ownership.
  return false;
}

void Session::UseSlot::exit(bool owner) noexcept {
  if (owner) {
    active_thread_.store(std::thread::id{}, std::memory_order_release);
  }
}

Session::UseGuard::UseGuard(const Session& session) : session_(&session) {
  owner_ = session.use_.enter(session);
}

Session::UseGuard::~UseGuard() { session_->use_.exit(owner_); }

Session::~Session() { release_ambient_markers(); }

const core::NodeTopology& Session::topology() {
  const UseGuard guard(*this);  // lazily mutates the cached topology_
  if (!topology_) {
    topology_ = core::probe_topology(kernel_->machine());
  }
  return *topology_;
}

core::NumaTopology Session::numa() { return core::probe_numa(*kernel_); }

core::Features Session::features(int cpu) {
  return core::Features(*kernel_, cpu);
}

void Session::set_cpus(std::vector<int> cpus) {
  const UseGuard guard(*this);
  if (ctr_ != nullptr) {
    throw_error(ErrorCode::kInvalidState,
                "session '" + name_ +
                    "': cannot change the cpu list after the counters exist");
  }
  cpus_ = std::move(cpus);
}

core::PerfCtr& Session::counters() {
  const UseGuard guard(*this);
  if (ctr_ == nullptr) {
    if (cpus_.empty()) {
      throw_error(ErrorCode::kInvalidState,
                  "session '" + name_ +
                      "': no measured cpus configured (Builder::cpus / "
                      "set_cpus before using the counters)");
    }
    ctr_ = std::make_unique<core::PerfCtr>(*kernel_, cpus_);
  }
  return *ctr_;
}

const core::PerfCtr& Session::counters() const {
  // The const read path trips the same wire as the mutators: a reader
  // overlapping a configuring thread is the misuse the tripwire exists
  // to catch (it previously slipped through unguarded).
  const UseGuard guard(*this);
  if (ctr_ == nullptr) {
    throw_error(ErrorCode::kInvalidState,
                "session '" + name_ + "': counters not configured");
  }
  return *ctr_;
}

void Session::add_group(const std::string& group_name) {
  const UseGuard guard(*this);
  counters().add_group(group_name);
}

void Session::add_custom(const std::string& event_spec) {
  const UseGuard guard(*this);
  counters().add_custom(event_spec);
}

void Session::reset_counters() {
  const UseGuard guard(*this);
  release_ambient_markers();
  markers_.unbind();
  sampler_.reset();
  ctr_.reset();
}

void Session::start() {
  const UseGuard guard(*this);
  counters().start();
}

void Session::stop() {
  const UseGuard guard(*this);
  counters().stop();
}

void Session::rotate() {
  const UseGuard guard(*this);
  counters().rotate();
}

core::IntervalSampler& Session::sampler() {
  const UseGuard guard(*this);
  if (sampler_ == nullptr) {
    sampler_ = std::make_unique<core::IntervalSampler>(counters());
  }
  return *sampler_;
}

void Session::set_current_cpu(std::function<int()> fn) {
  const UseGuard guard(*this);
  if (markers_.bound()) {
    throw_error(ErrorCode::kInvalidState,
                "session '" + name_ +
                    "': marker environment already bound; set the "
                    "current-cpu callback before using markers()");
  }
  current_cpu_ = std::move(fn);
}

core::MarkerEnv& Session::markers() {
  const UseGuard guard(*this);
  if (!markers_.bound()) {
    core::PerfCtr& ctr = counters();
    std::function<int()> current = current_cpu_;
    if (current == nullptr) {
      // The sched_getcpu analog of a single-process harness: the first
      // measured hardware thread.
      const int cpu = cpus_.front();
      current = [cpu]() { return cpu; };
    }
    markers_.bind(&ctr, std::move(current));
  }
  return markers_;
}

void Session::bind_ambient_markers() {
  const UseGuard guard(*this);
  MarkerBinding::adopt_env(&markers());
}

void Session::release_ambient_markers() noexcept {
  MarkerBinding::release_env(&markers_);
}

ResultTable Session::measurement(int set) const {
  const UseGuard guard(*this);
  return measurement_table(counters(), set);
}

void Session::measurement_into(int set, ResultTable& out) const {
  const UseGuard guard(*this);
  measurement_table_into(counters(), set, out, table_scratch_);
}

RegionReport Session::regions(int set) const {
  const UseGuard guard(*this);
  const core::MarkerSession* session = markers_.session();
  if (session == nullptr) {
    throw_error(ErrorCode::kInvalidState,
                "session '" + name_ +
                    "': no marker session (likwid_markerInit / "
                    "markers().init() first)");
  }
  return region_report(counters(), set, *session);
}

}  // namespace likwid::api
