// result_table.hpp — the format-neutral result model of the public API.
//
// A ResultTable is one event set's measurement flattened into plain data:
// the measured cpus in column order, one row per counted event and one row
// per derived metric, all values already extrapolated and evaluated. The
// per-set / per-cpu extraction that used to be copy-pasted across the
// ASCII, CSV and XML writers lives here exactly once; OutputSink
// implementations only format what they are handed.
//
// Value storage is allocator-parameterized: the one-shot builders return
// self-contained tables on the heap (ArenaAllocator's default state is a
// plain heap allocator), while the *_into refill variants carve every
// value row out of a caller-owned TableScratch arena and overwrite names
// in place — after warm-up, re-extracting a table performs zero heap
// allocations, which is what keeps the steady-state sampling->sink path
// allocation-free end to end.
#pragma once

#include <string>
#include <vector>

#include "core/marker.hpp"
#include "core/perfctr.hpp"
#include "util/arena.hpp"

namespace likwid::api {

/// One event set's results, decoupled from PerfCtr and from any output
/// format. Values are aligned with `cpus` (0.0 for cpus the backing slab
/// never saw, matching the writers' historical fallback).
struct ResultTable {
  /// Value storage; default-constructed allocator = plain heap (used by
  /// the by-value builders), arena-bound allocator = TableScratch refills.
  using Values = std::vector<double, util::ArenaAllocator<double>>;

  std::string group;         ///< group name, or "custom" for custom sets
  bool has_metrics = false;  ///< group sets carry derived metrics
  double seconds = 0;        ///< wall time the set was live
  std::vector<int> cpus;     ///< measured cpus, column order of the values

  struct EventRow {
    std::string event;    ///< event name ("INSTR_RETIRED_ANY")
    std::string counter;  ///< counter it ran on ("PMC0", "FIXC1", "UPMC3")
    Values values;
  };
  std::vector<EventRow> events;

  struct MetricRow {
    std::string name;  ///< display name ("DP MFlops/s")
    Values values;
  };
  std::vector<MetricRow> metrics;
};

/// Marker-mode results: one ResultTable worth of rows per region.
struct RegionReport {
  std::string group;
  bool has_metrics = false;
  std::vector<int> cpus;

  struct Region {
    std::string name;
    int calls = 0;
    std::vector<ResultTable::EventRow> events;
    std::vector<ResultTable::MetricRow> metrics;
  };
  std::vector<Region> regions;
};

/// Reusable workspace of the *_into builders: the arena backing the value
/// rows plus the intermediate buffers of one extraction (extrapolated
/// counts, the evaluated metric batch, the cpu->slab-row map). All of it
/// refills in place, so one long-lived (ResultTable, TableScratch) pair
/// extracts measurement after measurement without touching the heap.
/// The scratch must outlive any table filled from it.
struct TableScratch {
  util::Arena arena;
  core::CountSlab counts;
  core::MetricBatch batch;
  std::vector<int> cpu_rows;
};

/// Wrapper-mode table of `set`: extrapolated counts plus, for group sets,
/// the derived metrics.
ResultTable measurement_table(const core::PerfCtr& ctr, int set);

/// measurement_table() into a caller-owned table + scratch, allocation-
/// free once both are warm.
void measurement_table_into(const core::PerfCtr& ctr, int set,
                            ResultTable& out, TableScratch& scratch);

/// Table over externally accumulated counts (marker regions, sampling
/// intervals). `fallback_seconds` / `wall_time` forward to
/// PerfCtr::compute_metrics_batched.
ResultTable counts_table(const core::PerfCtr& ctr, int set,
                         const core::CountSlab& counts,
                         double fallback_seconds = -1.0,
                         bool wall_time = false);

/// counts_table() into a caller-owned table + scratch.
void counts_table_into(const core::PerfCtr& ctr, int set,
                       const core::CountSlab& counts, ResultTable& out,
                       TableScratch& scratch, double fallback_seconds = -1.0,
                       bool wall_time = false);

/// Marker-mode report of `set` over a finished MarkerSession.
RegionReport region_report(const core::PerfCtr& ctr, int set,
                           const core::MarkerSession& session);

}  // namespace likwid::api
