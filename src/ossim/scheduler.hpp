// scheduler.hpp — thread placement for the simulated OS.
//
// Pinned threads (affinity mask with one cpu) always run there. Unpinned
// threads are placed the way a topology-unaware 2010-era kernel places
// busy OpenMP threads: on a uniformly random allowed hardware thread, with
// no guarantee of socket balance and with oversubscription possible. This
// is the mechanism behind the variance in the paper's Figs. 4/7/9.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "hwsim/machine.hpp"
#include "ossim/cpumask.hpp"

namespace likwid::ossim {

class Scheduler {
 public:
  /// `machine` must outlive the scheduler; `seed` drives unpinned placement.
  Scheduler(const hwsim::SimMachine& machine, std::uint64_t seed);

  /// Choose a cpu for a thread with the given affinity mask and account the
  /// load. Single-cpu masks are honored exactly; wider masks use randomized
  /// placement that mildly prefers idle cpus (two candidates, pick the less
  /// loaded — a classic power-of-two-choices balancer, which still leaves
  /// plenty of collisions and socket imbalance).
  int place(const CpuMask& affinity);

  /// Release the load accounted to `cpu` for one thread.
  void release(int cpu);

  /// Number of threads currently placed on `cpu`.
  int load(int cpu) const;

  /// Busy-thread accounting: placed threads that are actually executing
  /// (runtime service threads like OpenMP shepherds sleep and do not
  /// contend for the core). The performance model consumes busy_load.
  void add_busy(int cpu, int delta);
  int busy_load(int cpu) const;

  /// Forget all load (between benchmark samples).
  void reset_load();

  /// Reseed the placement RNG (each unpinned benchmark sample uses a fresh
  /// derived seed so samples differ like separate program runs).
  void reseed(std::uint64_t seed);

  const hwsim::SimMachine& machine() const noexcept { return machine_; }

 private:
  const hwsim::SimMachine& machine_;
  std::mt19937_64 rng_;
  std::vector<int> load_;
  std::vector<int> busy_;
};

}  // namespace likwid::ossim
