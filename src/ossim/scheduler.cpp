#include "ossim/scheduler.hpp"

#include "util/status.hpp"

namespace likwid::ossim {

Scheduler::Scheduler(const hwsim::SimMachine& machine, std::uint64_t seed)
    : machine_(machine), rng_(seed) {
  load_.assign(static_cast<std::size_t>(machine.num_threads()), 0);
  busy_.assign(static_cast<std::size_t>(machine.num_threads()), 0);
}

void Scheduler::add_busy(int cpu, int delta) {
  LIKWID_REQUIRE(cpu >= 0 && cpu < machine_.num_threads(),
                 "add_busy: cpu out of range");
  busy_[static_cast<std::size_t>(cpu)] += delta;
  LIKWID_ASSERT(busy_[static_cast<std::size_t>(cpu)] >= 0,
                "negative busy count");
}

int Scheduler::busy_load(int cpu) const {
  LIKWID_REQUIRE(cpu >= 0 && cpu < machine_.num_threads(),
                 "busy_load: cpu out of range");
  return busy_[static_cast<std::size_t>(cpu)];
}

int Scheduler::place(const CpuMask& affinity) {
  std::vector<int> allowed;
  for (int cpu = 0; cpu < machine_.num_threads(); ++cpu) {
    if (affinity.test(cpu)) allowed.push_back(cpu);
  }
  LIKWID_REQUIRE(!allowed.empty(),
                 "affinity mask selects no cpu of this machine");
  int chosen;
  if (allowed.size() == 1) {
    chosen = allowed.front();
  } else {
    std::uniform_int_distribution<std::size_t> dist(0, allowed.size() - 1);
    const int a = allowed[dist(rng_)];
    const int b = allowed[dist(rng_)];
    chosen = load_[static_cast<std::size_t>(b)] <
                     load_[static_cast<std::size_t>(a)]
                 ? b
                 : a;
  }
  load_[static_cast<std::size_t>(chosen)] += 1;
  return chosen;
}

void Scheduler::release(int cpu) {
  LIKWID_REQUIRE(cpu >= 0 && cpu < machine_.num_threads(),
                 "release: cpu out of range");
  LIKWID_REQUIRE(load_[static_cast<std::size_t>(cpu)] > 0,
                 "release of an idle cpu");
  load_[static_cast<std::size_t>(cpu)] -= 1;
}

int Scheduler::load(int cpu) const {
  LIKWID_REQUIRE(cpu >= 0 && cpu < machine_.num_threads(),
                 "load: cpu out of range");
  return load_[static_cast<std::size_t>(cpu)];
}

void Scheduler::reset_load() {
  for (auto& l : load_) l = 0;
  for (auto& b : busy_) b = 0;
}

void Scheduler::reseed(std::uint64_t seed) { rng_.seed(seed); }

}  // namespace likwid::ossim
