// kernel.hpp — the simulated operating system: owns the scheduler and the
// global clock, exposes the msr device files and /proc/cpuinfo, and hosts
// the cache hierarchy (which on real iron would be silicon, but lives here
// so one kernel object is the complete "running node").
#pragma once

#include <memory>
#include <string>

#include "cachesim/hierarchy.hpp"
#include "hwsim/machine.hpp"
#include "ossim/scheduler.hpp"

namespace likwid::ossim {

class SimKernel {
 public:
  /// `machine` must outlive the kernel.
  explicit SimKernel(hwsim::SimMachine& machine, std::uint64_t seed = 42);

  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  hwsim::SimMachine& machine() noexcept { return machine_; }
  const hwsim::SimMachine& machine() const noexcept { return machine_; }
  Scheduler& scheduler() noexcept { return scheduler_; }
  const Scheduler& scheduler() const noexcept { return scheduler_; }
  cachesim::CacheHierarchy& caches() noexcept { return *caches_; }
  const cachesim::CacheHierarchy& caches() const noexcept { return *caches_; }

  /// Wall-clock of the simulation, seconds since boot.
  double now() const noexcept { return now_seconds_; }
  void advance_time(double seconds);

  /// /dev/cpu/<cpu>/msr analogs (same failure modes as the msr module).
  std::uint64_t msr_read(int cpu, std::uint32_t reg) const;
  void msr_write(int cpu, std::uint32_t reg, std::uint64_t value);

  /// Generate the /proc/cpuinfo text for this node (the information source
  /// the paper contrasts with cpuid-based topology probing).
  std::string proc_cpuinfo() const;

  /// Refresh the cache hierarchy's view of which prefetchers are active
  /// (call after writes to IA32_MISC_ENABLE).
  void sync_prefetchers();

 private:
  hwsim::SimMachine& machine_;
  Scheduler scheduler_;
  std::unique_ptr<cachesim::CacheHierarchy> caches_;
  double now_seconds_ = 0.0;
};

}  // namespace likwid::ossim
