#include "ossim/kernel.hpp"

#include <sstream>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::ossim {

SimKernel::SimKernel(hwsim::SimMachine& machine, std::uint64_t seed)
    : machine_(machine), scheduler_(machine, seed) {
  caches_ = std::make_unique<cachesim::CacheHierarchy>(machine.spec(),
                                                       machine.threads());
}

void SimKernel::advance_time(double seconds) {
  LIKWID_REQUIRE(seconds >= 0, "time cannot run backwards");
  now_seconds_ += seconds;
}

std::uint64_t SimKernel::msr_read(int cpu, std::uint32_t reg) const {
  return machine_.msrs().read(cpu, reg);
}

void SimKernel::msr_write(int cpu, std::uint32_t reg, std::uint64_t value) {
  machine_.msrs().write(cpu, reg, value);
  sync_prefetchers();
}

void SimKernel::sync_prefetchers() {
  for (const auto& t : machine_.threads()) {
    caches_->set_prefetchers(t.os_id, machine_.active_prefetchers(t.os_id));
  }
}

std::string SimKernel::proc_cpuinfo() const {
  const auto& spec = machine_.spec();
  std::ostringstream out;
  for (const auto& t : machine_.threads()) {
    out << "processor\t: " << t.os_id << "\n";
    out << "vendor_id\t: "
        << (spec.vendor == hwsim::Vendor::kIntel ? "GenuineIntel"
                                                 : "AuthenticAMD")
        << "\n";
    out << "cpu family\t: " << spec.family << "\n";
    out << "model\t\t: " << spec.model << "\n";
    out << "model name\t: " << spec.brand_string << "\n";
    out << "stepping\t: " << spec.stepping << "\n";
    out << util::strprintf("cpu MHz\t\t: %.3f", spec.clock_ghz * 1000.0)
        << "\n";
    out << "physical id\t: " << t.socket << "\n";
    out << "siblings\t: "
        << spec.cores_per_socket * spec.threads_per_core << "\n";
    out << "core id\t\t: " << t.core_apic << "\n";
    out << "cpu cores\t: " << spec.cores_per_socket << "\n";
    out << "apicid\t\t: " << t.apic_id << "\n";
    out << "\n";
  }
  return out.str();
}

}  // namespace likwid::ossim
