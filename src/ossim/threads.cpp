#include "ossim/threads.hpp"

#include "util/status.hpp"

namespace likwid::ossim {

ThreadRuntime::ThreadRuntime(Scheduler& scheduler) : scheduler_(scheduler) {
  SimThread main;
  main.tid = 0;
  main.is_main = true;
  main.affinity = CpuMask::first_n(scheduler_.machine().num_threads());
  main.cpu = scheduler_.place(main.affinity);
  threads_.push_back(main);
}

ThreadRuntime::~ThreadRuntime() {
  for (const auto& t : threads_) {
    if (t.cpu >= 0) {
      if (t.busy) scheduler_.add_busy(t.cpu, -1);
      scheduler_.release(t.cpu);
    }
  }
}

void ThreadRuntime::set_busy(int tid, bool busy) {
  SimThread& t = thread(tid);
  if (t.busy == busy) return;
  t.busy = busy;
  if (t.cpu >= 0) scheduler_.add_busy(t.cpu, busy ? 1 : -1);
}

void ThreadRuntime::migrate_unpinned() {
  for (auto& t : threads_) {
    if (t.affinity.count() <= 1 || t.cpu < 0) continue;
    if (t.busy) scheduler_.add_busy(t.cpu, -1);
    scheduler_.release(t.cpu);
    t.cpu = scheduler_.place(t.affinity);
    if (t.busy) scheduler_.add_busy(t.cpu, 1);
  }
}

void ThreadRuntime::set_create_hook(CreateHook hook) {
  LIKWID_REQUIRE(hook != nullptr, "null create hook");
  if (hook_) {
    throw_error(ErrorCode::kInvalidState,
                "a pthread_create interposer is already installed");
  }
  hook_ = std::move(hook);
}

int ThreadRuntime::create_thread() {
  SimThread t;
  t.tid = static_cast<int>(threads_.size());
  t.affinity = CpuMask::first_n(scheduler_.machine().num_threads());
  threads_.push_back(t);
  const int index = created_count_++;
  if (hook_) hook_(index, t.tid);
  SimThread& stored = threads_[static_cast<std::size_t>(t.tid)];
  if (stored.cpu < 0) {
    stored.cpu = scheduler_.place(stored.affinity);
  }
  return stored.tid;
}

void ThreadRuntime::set_affinity(int tid, const CpuMask& mask) {
  LIKWID_REQUIRE(!mask.empty(), "empty affinity mask");
  SimThread& t = thread(tid);
  t.affinity = mask;
  if (t.cpu >= 0 && !mask.test(t.cpu)) {
    if (t.busy) scheduler_.add_busy(t.cpu, -1);
    scheduler_.release(t.cpu);
    t.cpu = scheduler_.place(mask);
    if (t.busy) scheduler_.add_busy(t.cpu, 1);
  } else if (t.cpu < 0) {
    t.cpu = scheduler_.place(mask);
    if (t.busy) scheduler_.add_busy(t.cpu, 1);
  }
}

const SimThread& ThreadRuntime::thread(int tid) const {
  if (tid < 0 || tid >= num_threads()) {
    throw_error(ErrorCode::kNotFound, "no thread with tid " +
                                          std::to_string(tid));
  }
  return threads_[static_cast<std::size_t>(tid)];
}

SimThread& ThreadRuntime::thread(int tid) {
  if (tid < 0 || tid >= num_threads()) {
    throw_error(ErrorCode::kNotFound, "no thread with tid " +
                                          std::to_string(tid));
  }
  return threads_[static_cast<std::size_t>(tid)];
}

std::vector<int> ThreadRuntime::placement(const std::vector<int>& tids) const {
  std::vector<int> cpus;
  cpus.reserve(tids.size());
  for (const int tid : tids) cpus.push_back(thread(tid).cpu);
  return cpus;
}

}  // namespace likwid::ossim
