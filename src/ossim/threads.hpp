// threads.hpp — simulated POSIX thread creation with interposition.
//
// likwid-pin works by overloading pthread_create through an LD_PRELOAD
// shared library; each newly created thread is pinned (or skipped) by the
// wrapper before the application code runs. ThreadRuntime reproduces that
// seam: a registered create-hook observes every thread creation in order
// and may set the new thread's affinity before the scheduler places it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ossim/cpumask.hpp"
#include "ossim/scheduler.hpp"

namespace likwid::ossim {

/// One simulated thread of the application process.
struct SimThread {
  int tid = 0;           ///< 0 is the process main thread
  CpuMask affinity;      ///< allowed cpus
  int cpu = -1;          ///< placement chosen by the scheduler
  bool is_main = false;
  bool busy = false;     ///< actively executing (vs. sleeping shepherd)
};

class ThreadRuntime {
 public:
  /// Called for every pthread_create, in creation order, *before*
  /// placement. `create_index` counts created threads from 0 (the main
  /// thread is not created and has no index, exactly like the real wrapper
  /// which only sees new threads). The hook may call set_affinity().
  using CreateHook = std::function<void(int create_index, int tid)>;

  /// `scheduler` must outlive the runtime. The main thread (tid 0) is
  /// created implicitly with full affinity and placed immediately.
  explicit ThreadRuntime(Scheduler& scheduler);
  ~ThreadRuntime();

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  /// Install the pthread_create interposer (at most one, like LD_PRELOAD).
  /// Throws Error(kInvalidState) if a hook is already installed.
  void set_create_hook(CreateHook hook);
  void clear_create_hook() noexcept { hook_ = nullptr; }

  /// pthread_create analog: makes a new thread (inheriting full affinity),
  /// runs the interposer hook, then asks the scheduler for a placement.
  /// Returns the new tid.
  int create_thread();

  /// sched_setaffinity analog. If the thread is already placed on a cpu
  /// outside the new mask it migrates immediately.
  void set_affinity(int tid, const CpuMask& mask);

  /// Mark a thread as actively executing / sleeping. Busy threads consume
  /// their hardware thread in the performance model; sleeping runtime
  /// service threads (OpenMP shepherds, MPI progress threads) do not.
  void set_busy(int tid, bool busy);

  /// Re-place every thread whose affinity allows more than one cpu — the
  /// analog of the OS load balancer moving unpinned threads over time
  /// (used between first-touch initialization and a measured run).
  void migrate_unpinned();

  const SimThread& thread(int tid) const;
  SimThread& thread(int tid);
  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Threads in creation order (index 0 = main).
  const std::vector<SimThread>& threads() const { return threads_; }

  /// cpus of the given tids, in tid order.
  std::vector<int> placement(const std::vector<int>& tids) const;

 private:
  Scheduler& scheduler_;
  CreateHook hook_;
  std::vector<SimThread> threads_;
  int created_count_ = 0;  ///< number of pthread_create calls so far
};

}  // namespace likwid::ossim
