// cpumask.hpp — cpu_set_t analog for the simulated OS.
#pragma once

#include <bitset>
#include <vector>

#include "util/status.hpp"

namespace likwid::ossim {

/// Affinity mask over hardware threads (cpu_set_t analog).
class CpuMask {
 public:
  static constexpr int kMaxCpus = 256;

  CpuMask() = default;

  /// Mask with cpus [0, n) set.
  static CpuMask first_n(int n) {
    LIKWID_REQUIRE(n >= 0 && n <= kMaxCpus, "cpu count out of range");
    CpuMask m;
    for (int i = 0; i < n; ++i) m.bits_.set(static_cast<std::size_t>(i));
    return m;
  }

  static CpuMask single(int cpu) {
    CpuMask m;
    m.set(cpu);
    return m;
  }

  static CpuMask from_list(const std::vector<int>& cpus) {
    CpuMask m;
    for (const int c : cpus) m.set(c);
    return m;
  }

  void set(int cpu) {
    LIKWID_REQUIRE(cpu >= 0 && cpu < kMaxCpus, "cpu id out of range");
    bits_.set(static_cast<std::size_t>(cpu));
  }
  void clear(int cpu) {
    LIKWID_REQUIRE(cpu >= 0 && cpu < kMaxCpus, "cpu id out of range");
    bits_.reset(static_cast<std::size_t>(cpu));
  }
  bool test(int cpu) const {
    return cpu >= 0 && cpu < kMaxCpus &&
           bits_.test(static_cast<std::size_t>(cpu));
  }

  int count() const noexcept { return static_cast<int>(bits_.count()); }
  bool empty() const noexcept { return bits_.none(); }

  /// Ascending list of set cpus.
  std::vector<int> to_list() const {
    std::vector<int> out;
    for (int i = 0; i < kMaxCpus; ++i) {
      if (bits_.test(static_cast<std::size_t>(i))) out.push_back(i);
    }
    return out;
  }

  bool operator==(const CpuMask&) const = default;

 private:
  std::bitset<kMaxCpus> bits_;
};

}  // namespace likwid::ossim
