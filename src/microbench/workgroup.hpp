// workgroup.hpp — the likwid-bench workgroup syntax.
//
// A workgroup binds one benchmark stream to an affinity domain:
//
//   -w <domain>:<size>[:<nthreads>[:<chunk>:<stride>]]
//
// `domain` is an affinity-domain label resolved against the probed
// NodeTopology (N = node, S<k> = socket, M<k> = NUMA/memory domain,
// C<k> = last-level cache group), `size` is the group's TOTAL working set
// ("1MB", "2GB" — binary units via util::parse_size_bytes), `nthreads`
// defaults to every hardware thread of the domain, and `chunk`/`stride`
// select threads from the domain's thread list: take `chunk` consecutive
// entries, skip ahead `stride` from the chunk start, repeat. Domain lists
// are ordered physical-cores-first (SMT siblings after every physical
// core, the real suite's affinity-domain order), so small thread counts
// land on distinct physical cores by default.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/topology.hpp"

namespace likwid::microbench {

/// Parsed form of one -w argument (nothing resolved yet).
struct WorkgroupSpec {
  std::string domain;            ///< "N", "S0", "M1", "C0", ...
  std::uint64_t size_bytes = 0;  ///< total working set of the group
  int num_threads = -1;          ///< -1: all threads of the domain
  int chunk = 1;
  int stride = 1;
};

/// A spec resolved against a topology: the selected hardware threads.
struct Workgroup {
  WorkgroupSpec spec;
  std::vector<int> cpus;  ///< os ids, selection order

  int num_threads() const { return static_cast<int>(cpus.size()); }
  std::uint64_t bytes_per_thread() const {
    return spec.size_bytes / static_cast<std::uint64_t>(cpus.size());
  }
};

/// Parse "<domain>:<size>[:<nthreads>[:<chunk>:<stride>]]"; throws
/// Error(kInvalidArgument) with the offending field on malformed input.
WorkgroupSpec parse_workgroup(const std::string& text);

/// The hardware threads of an affinity domain, physical cores first.
/// Throws Error(kInvalidArgument) for labels the machine does not have.
std::vector<int> affinity_domain_cpus(const core::NodeTopology& topo,
                                      const std::string& domain);

/// All affinity-domain labels of a machine with their thread lists
/// (likwid-bench -p).
std::vector<std::pair<std::string, std::vector<int>>> affinity_domains(
    const core::NodeTopology& topo);

/// Resolve a spec: pick the workgroup's threads from its domain via the
/// chunk/stride walk. Throws when the domain cannot supply the requested
/// thread count under the given stride.
Workgroup resolve_workgroup(const core::NodeTopology& topo,
                            const WorkgroupSpec& spec);

}  // namespace likwid::microbench
