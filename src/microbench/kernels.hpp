// kernels.hpp — the likwid-bench kernel registry.
//
// The companion paper ("LIKWID: Lightweight Performance Tools",
// arXiv:1104.4874) ships likwid-bench with a fixed set of assembly
// streaming kernels; this registry reproduces that set over the simulated
// memory hierarchy. Each kernel is described declaratively — stream count,
// per-iteration loads/stores/flops, reported-vs-actual byte conventions —
// and materializes as a workloads::SyntheticConfig, so execution reuses
// the existing SyntheticKernel cache/bandwidth machinery (the same
// working-set-aware model the perfctr groups are validated against)
// instead of duplicating the stream kernels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/synthetic.hpp"

namespace likwid::microbench {

/// One registered microbenchmark kernel.
struct KernelDesc {
  std::string name;         ///< registry key (-t)
  std::string description;  ///< one-line listing text (-a)
  /// Number of distinct arrays the kernel streams through; a workgroup's
  /// per-thread byte slice is split evenly over them.
  int streams = 1;
  /// Double-precision flops per element iteration.
  double flops_per_iter = 0;
  /// Bytes the benchmark reports per iteration (the STREAM convention:
  /// write-allocate traffic is not counted). Actual traffic is derived at
  /// run time from the kernel's SweepTraffic, never duplicated here.
  double reported_bytes_per_iter = 8;

  /// Build the executable kernel for one worker's working-set slice.
  /// `elements` is the per-array element count of ONE thread; `sweeps` is
  /// the iteration (repetition) count.
  workloads::SyntheticConfig (*make)(std::size_t elements, int sweeps) =
      nullptr;

  /// Elements per array for a per-thread byte budget.
  std::size_t elements_for_bytes(std::uint64_t bytes_per_thread) const;
};

/// All registered kernels: copy, load, store, stream_triad, daxpy, sum,
/// peakflops (ordered as listed by `likwid-bench -a`).
const std::vector<KernelDesc>& kernel_registry();

/// Look up a kernel by name; throws Error(kNotFound) listing the valid
/// names when `name` is not registered.
const KernelDesc& kernel_by_name(const std::string& name);

}  // namespace likwid::microbench
