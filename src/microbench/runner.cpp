#include "microbench/runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "core/affinity.hpp"
#include "perfmodel/bandwidth.hpp"
#include "perfmodel/exec_model.hpp"
#include "util/status.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/workload.hpp"

namespace likwid::microbench {

namespace {

constexpr int kMaxSweeps = 100000;

/// Per-sweep traffic bytes of one worker at each hierarchy boundary,
/// derived from the kernel's own steady-state SweepTraffic (the exact
/// numbers run_slice feeds into the timing model).
struct BoundaryBytes {
  double l2 = 0;   ///< L1 <-> L2
  double l3 = 0;   ///< L2 <-> L3
  double mem = 0;  ///< memory controller
};

BoundaryBytes boundary_bytes(const workloads::SweepTraffic& t) {
  const double read_lines = t.lines;
  const double wb_lines = t.store_lines;
  BoundaryBytes b;
  if (t.misses_l1) b.l2 = (read_lines + wb_lines) * 64.0;
  if (t.misses_l2) b.l3 = (read_lines + wb_lines) * 64.0;
  if (t.misses_llc) b.mem = (read_lines + wb_lines) * 64.0;
  return b;
}

/// Pin the workgroup's threads through the likwid-pin wrapper and return
/// their placement. The runtime must outlive the measured run.
workloads::Placement pin_workgroup(ossim::ThreadRuntime& runtime,
                                   const Workgroup& group) {
  core::PinConfig cfg;
  cfg.cpu_list = group.cpus;
  cfg.model = core::ThreadModel::kGcc;  // no shepherd: all threads work
  cfg.skip = util::SkipMask(0);
  const core::PinWrapper wrapper(runtime, cfg);
  const workloads::TeamLaunch team = workloads::launch_openmp_team(
      runtime, workloads::OpenMpImpl::kGcc, group.num_threads());
  workloads::Placement placement;
  placement.cpus = runtime.placement(team.worker_tids);
  LIKWID_ASSERT(placement.cpus == group.cpus,
                "workgroup pinning diverged from the cpu selection");
  return placement;
}

}  // namespace

BenchResult run_bench(api::Session& session, const BenchOptions& options) {
  const KernelDesc& desc = kernel_by_name(options.kernel);
  const core::NodeTopology& topo = session.topology();
  Workgroup group = resolve_workgroup(topo, options.workgroup);
  const std::size_t elements =
      desc.elements_for_bytes(group.bytes_per_thread());

  if (session.cpus() != group.cpus) session.set_cpus(group.cpus);
  for (const std::string& g : options.groups) session.add_group(g);
  const bool measured = session.has_counters();

  ossim::ThreadRuntime runtime(session.kernel().scheduler());
  const workloads::Placement placement = pin_workgroup(runtime, group);

  // Sweep auto-calibration: one unmeasured probe sweep (counters are not
  // running yet, and counter reads are delta-based anyway) prices the
  // working set, then the measured run repeats it often enough to cover
  // the target simulated runtime — the real tool's "iterate until the
  // measurement is long enough" loop.
  int sweeps = options.sweeps;
  if (sweeps <= 0) {
    workloads::SyntheticKernel probe(desc.make(elements, 1));
    const double probe_seconds =
        run_workload(session.kernel(), probe, placement);
    sweeps = probe_seconds > 0
                 ? static_cast<int>(std::ceil(
                       options.target_seconds / probe_seconds - 1e-9))
                 : kMaxSweeps;
    sweeps = std::clamp(sweeps, 1, kMaxSweeps);
  }

  workloads::SyntheticKernel kernel(desc.make(elements, sweeps));
  workloads::RunOptions run_options;
  if (measured && session.counters().num_event_sets() > 1) {
    run_options.quanta = 2 * session.counters().num_event_sets();
    core::PerfCtr& ctr = session.counters();
    run_options.between_quanta = [&ctr](int) { ctr.rotate(); };
  }
  if (measured) session.start();
  const double seconds =
      run_workload(session.kernel(), kernel, placement, run_options);
  if (measured) session.stop();

  BenchResult result;
  result.kernel = desc.name;
  result.workgroup = group;
  result.elements_per_thread = elements;
  result.sweeps = sweeps;
  result.seconds = seconds;

  const double iters_per_thread =
      static_cast<double>(elements) * static_cast<double>(sweeps);
  const double reported_per_thread =
      iters_per_thread * desc.reported_bytes_per_iter;
  const double flops_per_thread = iters_per_thread * desc.flops_per_iter;
  const int threads = group.num_threads();
  result.bandwidth_mbs =
      reported_per_thread * threads / seconds / 1e6;
  result.mflops = flops_per_thread * threads / seconds / 1e6;
  double traffic_bytes = 0;
  for (int w = 0; w < threads; ++w) {
    const BoundaryBytes b = boundary_bytes(
        kernel.sweep_traffic(session.machine(), placement, w));
    traffic_bytes += std::max({b.l2, b.l3, b.mem}) * sweeps;
  }
  result.traffic_gbs = traffic_bytes / seconds / 1e9;

  api::ResultTable& table = result.table;
  table.group = "likwid-bench " + desc.name;
  table.has_metrics = true;
  table.seconds = seconds;
  table.cpus = group.cpus;
  const auto metric_row = [&](const std::string& name, double value) {
    api::ResultTable::MetricRow row;
    row.name = name;
    row.values.assign(static_cast<std::size_t>(threads), value);
    table.metrics.push_back(std::move(row));
  };
  metric_row("Runtime [s]", seconds);
  metric_row("Iterations", iters_per_thread);
  metric_row("Bandwidth [MBytes/s]", reported_per_thread / seconds / 1e6);
  metric_row("MFlops/s", flops_per_thread / seconds / 1e6);
  metric_row("Data volume [GBytes]", reported_per_thread / 1e9);

  if (measured) {
    for (int set = 0; set < session.counters().num_event_sets(); ++set) {
      result.measurements.push_back(session.measurement(set));
    }
  }
  if (options.validate) {
    result.validation =
        validate_against_model(session, desc, group, sweeps, seconds);
  }
  return result;
}

ModelValidation validate_against_model(api::Session& session,
                                       const KernelDesc& desc,
                                       const Workgroup& group, int sweeps,
                                       double measured_seconds) {
  LIKWID_REQUIRE(sweeps > 0 && measured_seconds > 0,
                 "validation needs a completed run");
  hwsim::SimMachine& machine = session.machine();
  const perfmodel::MachineModel model =
      perfmodel::default_model(machine.spec());
  const double hz = model.clock_ghz * 1e9;
  const perfmodel::TimingOptions defaults;
  const int sockets = machine.spec().sockets;
  const int threads = group.num_threads();

  const std::size_t elements =
      desc.elements_for_bytes(group.bytes_per_thread());
  const workloads::SyntheticConfig cfg = desc.make(elements, sweeps);
  const workloads::SyntheticKernel kernel(cfg);
  workloads::Placement placement;
  placement.cpus = group.cpus;

  // Pass 1: per-thread bounds independent of shared resources. An SMT
  // sibling inside the workgroup halves-ish the core share, exactly as
  // the execution model assumes.
  const auto sibling_in_group = [&](int cpu) {
    for (const int sib : machine.core_siblings(cpu)) {
      if (sib != cpu &&
          std::find(group.cpus.begin(), group.cpus.end(), sib) !=
              group.cpus.end()) {
        return true;
      }
    }
    return false;
  };
  const double iters =
      static_cast<double>(elements) * static_cast<double>(sweeps);
  std::vector<double> core_t(static_cast<std::size_t>(threads));
  std::vector<double> l2_t(static_cast<std::size_t>(threads));
  std::vector<double> l3_t(static_cast<std::size_t>(threads));
  std::vector<BoundaryBytes> bytes(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    const int cpu = group.cpus[static_cast<std::size_t>(w)];
    const double smt = sibling_in_group(cpu) ? defaults.smt_share : 1.0;
    core_t[static_cast<std::size_t>(w)] =
        iters * cfg.mix.cycles / hz / smt;
    BoundaryBytes b =
        boundary_bytes(kernel.sweep_traffic(machine, placement, w));
    b.l2 *= sweeps;
    b.l3 *= sweeps;
    b.mem *= sweeps;
    bytes[static_cast<std::size_t>(w)] = b;
    l2_t[static_cast<std::size_t>(w)] =
        b.l2 / (model.l2_bytes_per_cycle * hz);
    l3_t[static_cast<std::size_t>(w)] =
        b.l3 / (model.l3_bytes_per_cycle_core * hz);
  }

  // Pass 2: waterfill the shared domains (perfmodel::allocate_bandwidth).
  // Each thread demands what its own pipeline lets it consume; each
  // over-subscribed domain squeezes its consumers proportionally.
  const auto waterfill = [&](auto member_bytes, double per_thread_cap_gbs,
                             double domain_cap_gbs) {
    std::vector<perfmodel::BandwidthDemand> demands(
        static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      const double volume = member_bytes(w);
      if (volume <= 0) continue;
      const double floor_t = std::max(
          {core_t[static_cast<std::size_t>(w)],
           l2_t[static_cast<std::size_t>(w)],
           l3_t[static_cast<std::size_t>(w)],
           volume / (per_thread_cap_gbs * 1e9)});
      perfmodel::BandwidthDemand d;
      d.desired_gbs = volume / floor_t / 1e9;
      d.domain_fraction.assign(static_cast<std::size_t>(sockets), 0.0);
      d.domain_fraction[static_cast<std::size_t>(machine.socket_of(
          group.cpus[static_cast<std::size_t>(w)]))] = 1.0;
      demands[static_cast<std::size_t>(w)] = std::move(d);
    }
    std::vector<double> achieved = perfmodel::allocate_bandwidth(
        demands,
        std::vector<double>(static_cast<std::size_t>(sockets),
                            domain_cap_gbs));
    // Return each thread's squeeze factor (>= 1 when the domain
    // saturates; allocate_bandwidth never exceeds the demand).
    std::vector<double> squeeze(static_cast<std::size_t>(threads), 1.0);
    for (int w = 0; w < threads; ++w) {
      const std::size_t i = static_cast<std::size_t>(w);
      if (demands[i].desired_gbs > 0 && achieved[i] > 0) {
        squeeze[i] = demands[i].desired_gbs / achieved[i];
      }
    }
    return squeeze;
  };

  // Shared L3: the execution model scales the per-core L3 transfer time
  // by the socket's over-subscription factor, so the cross-check derives
  // the same factor from the allocator's proportional squeeze.
  const std::vector<double> l3_squeeze =
      waterfill([&](int w) { return bytes[static_cast<std::size_t>(w)].l3; },
                model.l3_bytes_per_cycle_core * hz / 1e9,
                model.l3_bytes_per_cycle_socket * hz / 1e9);
  std::vector<double> l3_shared_t(static_cast<std::size_t>(threads), 0.0);
  for (int w = 0; w < threads; ++w) {
    const std::size_t i = static_cast<std::size_t>(w);
    l3_shared_t[i] = l3_t[i] * l3_squeeze[i];
  }
  // Memory controllers: transfer time at the waterfilled achieved rate.
  const std::vector<double> mem_squeeze =
      waterfill([&](int w) { return bytes[static_cast<std::size_t>(w)].mem; },
                model.mem_bw_thread_gbs, model.mem_bw_socket_gbs);
  std::vector<double> mem_t(static_cast<std::size_t>(threads), 0.0);
  for (int w = 0; w < threads; ++w) {
    const std::size_t i = static_cast<std::size_t>(w);
    const double volume = bytes[i].mem;
    if (volume <= 0) continue;
    const double floor_t =
        std::max({core_t[i], l2_t[i], l3_t[i],
                  volume / (model.mem_bw_thread_gbs * 1e9)});
    mem_t[i] = floor_t * mem_squeeze[i];
  }

  ModelValidation v;
  double predicted_seconds = 0;
  for (int w = 0; w < threads; ++w) {
    const std::size_t i = static_cast<std::size_t>(w);
    const double t =
        std::max({core_t[i], l2_t[i], l3_shared_t[i], mem_t[i]});
    if (t > predicted_seconds) {
      predicted_seconds = t;
      if (t == mem_t[i]) {
        v.bound = "MEM";
      } else if (t == l3_shared_t[i]) {
        v.bound = "L3";
      } else if (t == l2_t[i]) {
        v.bound = "L2";
      } else {
        v.bound = "core";
      }
    }
  }
  LIKWID_ASSERT(predicted_seconds > 0, "model predicted a zero runtime");

  const double reported_total = iters * desc.reported_bytes_per_iter *
                                static_cast<double>(threads);
  v.measured_mbs = reported_total / measured_seconds / 1e6;
  v.predicted_mbs = reported_total / predicted_seconds / 1e6;
  v.rel_error =
      std::fabs(v.measured_mbs - v.predicted_mbs) / v.predicted_mbs;
  v.pass = v.rel_error <= v.tolerance;
  return v;
}

}  // namespace likwid::microbench
