#include "microbench/workgroup.hpp"

#include <algorithm>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::microbench {

namespace {

/// "S0" -> 0; throws for a missing, malformed or out-of-range index.
/// The range check runs on the parsed u64 BEFORE narrowing: an index
/// like 2^32 must be rejected, not truncated into a valid domain.
int domain_index(const std::string& domain, std::size_t prefix_len,
                 int limit, const char* what) {
  const auto idx = util::parse_u64(domain.substr(prefix_len));
  if (!idx || *idx >= static_cast<std::uint64_t>(limit)) {
    throw_error(ErrorCode::kInvalidArgument,
                "affinity domain '" + domain + "': this machine has " +
                    std::to_string(limit) + " " + what);
  }
  return static_cast<int>(*idx);
}

/// The last-level data/unified cache's sharing groups.
const core::CacheEntry& last_level_cache(const core::NodeTopology& topo) {
  LIKWID_REQUIRE(!topo.caches.empty(), "topology carries no caches");
  const core::CacheEntry* best = &topo.caches.front();
  for (const core::CacheEntry& c : topo.caches) {
    if (c.level > best->level) best = &c;
  }
  return *best;
}

/// Reorder a domain's members physical-cores-first (all SMT-0 threads,
/// then all SMT-1 threads, ...), the way the real suite lists affinity
/// domains: the first N entries of a domain are N distinct physical
/// cores, so default thread selection never lands on an SMT sibling
/// before the physical cores are exhausted.
std::vector<int> physical_first(const core::NodeTopology& topo,
                                const std::vector<int>& members) {
  std::vector<int> out;
  out.reserve(members.size());
  for (int smt = 0; smt < topo.num_threads_per_core; ++smt) {
    for (const int os_id : members) {
      if (topo.threads[static_cast<std::size_t>(os_id)].thread_id == smt) {
        out.push_back(os_id);
      }
    }
  }
  // Foreign enumerations (a thread_id beyond threads_per_core) fall back
  // to the raw member order rather than dropping threads.
  return out.size() == members.size() ? out : members;
}

}  // namespace

WorkgroupSpec parse_workgroup(const std::string& text) {
  const std::vector<std::string> parts = util::split(text, ':');
  if (parts.size() < 2 || parts.size() == 4 || parts.size() > 5) {
    throw_error(ErrorCode::kInvalidArgument,
                "workgroup '" + text +
                    "': expected <domain>:<size>[:<nthreads>[:<chunk>:"
                    "<stride>]]");
  }
  WorkgroupSpec spec;
  spec.domain = std::string(util::trim(parts[0]));
  LIKWID_REQUIRE(!spec.domain.empty(),
                 "workgroup '" + text + "': empty affinity domain");
  const auto size = util::parse_size_bytes(parts[1]);
  if (!size || *size == 0) {
    throw_error(ErrorCode::kInvalidArgument,
                "workgroup '" + text + "': invalid size '" + parts[1] +
                    "' (use e.g. 64kB, 2MB, 1GB)");
  }
  spec.size_bytes = *size;
  // Thread counts and chunk/stride walk a domain list of at most a few
  // thousand entries; anything beyond kMaxField is a typo, and values
  // past it must be rejected BEFORE the int narrowing (2^32 would wrap
  // to 0, 2^32+k would silently run k threads).
  constexpr std::uint64_t kMaxField = 1u << 20;
  if (parts.size() >= 3) {
    const auto threads = util::parse_u64(parts[2]);
    if (!threads || *threads == 0 || *threads > kMaxField) {
      throw_error(ErrorCode::kInvalidArgument,
                  "workgroup '" + text + "': invalid thread count '" +
                      parts[2] + "'");
    }
    spec.num_threads = static_cast<int>(*threads);
  }
  if (parts.size() == 5) {
    const auto chunk = util::parse_u64(parts[3]);
    const auto stride = util::parse_u64(parts[4]);
    if (!chunk || *chunk == 0 || !stride || *stride < *chunk ||
        *stride > kMaxField) {
      throw_error(ErrorCode::kInvalidArgument,
                  "workgroup '" + text + "': chunk:stride must satisfy " +
                      "1 <= chunk <= stride (<= 2^20)");
    }
    spec.chunk = static_cast<int>(*chunk);
    spec.stride = static_cast<int>(*stride);
  }
  return spec;
}

std::vector<int> affinity_domain_cpus(const core::NodeTopology& topo,
                                      const std::string& domain) {
  LIKWID_REQUIRE(!domain.empty(), "empty affinity domain");
  if (domain == "N") {
    // Whole node: sockets concatenated, each physical-first.
    std::vector<int> cpus;
    for (const auto& socket : topo.sockets) {
      const std::vector<int> ordered = physical_first(topo, socket);
      cpus.insert(cpus.end(), ordered.begin(), ordered.end());
    }
    return cpus;
  }
  switch (domain.front()) {
    case 'S': {
      const int s = domain_index(domain, 1, topo.num_sockets, "sockets");
      return physical_first(topo, topo.sockets[static_cast<std::size_t>(s)]);
    }
    case 'M': {
      // One NUMA/memory domain per socket on every modeled machine
      // (core::probe_numa's layout).
      const int m =
          domain_index(domain, 1, topo.num_sockets, "memory domains");
      return physical_first(topo, topo.sockets[static_cast<std::size_t>(m)]);
    }
    case 'C': {
      const core::CacheEntry& llc = last_level_cache(topo);
      const int c = domain_index(domain, 1,
                                 static_cast<int>(llc.groups.size()),
                                 "last-level cache groups");
      return physical_first(topo, llc.groups[static_cast<std::size_t>(c)]);
    }
    default:
      throw_error(ErrorCode::kInvalidArgument,
                  "unknown affinity domain '" + domain +
                      "' (N, S<k>, M<k>, C<k>)");
  }
}

std::vector<std::pair<std::string, std::vector<int>>> affinity_domains(
    const core::NodeTopology& topo) {
  std::vector<std::pair<std::string, std::vector<int>>> out;
  out.emplace_back("N", affinity_domain_cpus(topo, "N"));
  for (int s = 0; s < topo.num_sockets; ++s) {
    out.emplace_back("S" + std::to_string(s),
                     affinity_domain_cpus(topo, "S" + std::to_string(s)));
  }
  const core::CacheEntry& llc = last_level_cache(topo);
  for (std::size_t c = 0; c < llc.groups.size(); ++c) {
    out.emplace_back("C" + std::to_string(c),
                     affinity_domain_cpus(topo, "C" + std::to_string(c)));
  }
  for (int m = 0; m < topo.num_sockets; ++m) {
    out.emplace_back("M" + std::to_string(m),
                     affinity_domain_cpus(topo, "M" + std::to_string(m)));
  }
  return out;
}

Workgroup resolve_workgroup(const core::NodeTopology& topo,
                            const WorkgroupSpec& spec) {
  const std::vector<int> domain = affinity_domain_cpus(topo, spec.domain);
  const int want = spec.num_threads < 0
                       ? static_cast<int>(domain.size())
                       : spec.num_threads;
  Workgroup group;
  group.spec = spec;
  group.spec.num_threads = want;
  std::size_t pos = 0;
  while (static_cast<int>(group.cpus.size()) < want) {
    for (int c = 0;
         c < spec.chunk && static_cast<int>(group.cpus.size()) < want; ++c) {
      const std::size_t idx = pos + static_cast<std::size_t>(c);
      if (idx >= domain.size()) {
        throw_error(ErrorCode::kInvalidArgument,
                    "workgroup " + spec.domain + ": needs " +
                        std::to_string(want) + " threads but the " +
                        std::to_string(domain.size()) + "-thread domain " +
                        "is exhausted at chunk " + std::to_string(spec.chunk) +
                        " stride " + std::to_string(spec.stride));
      }
      group.cpus.push_back(domain[idx]);
    }
    pos += static_cast<std::size_t>(spec.stride);
  }
  LIKWID_REQUIRE(
      group.spec.size_bytes >= group.cpus.size() * 8,
      "workgroup " + spec.domain + ": working set smaller than one " +
          "element per thread");
  return group;
}

}  // namespace likwid::microbench
