// runner.hpp — execute one likwid-bench workgroup.
//
// The runner slices the workgroup's working set evenly over its threads,
// auto-calibrates the sweep count to a target (simulated) runtime the way
// the real likwid-bench iterates until the measurement is long enough,
// pins the benchmark threads through the likwid-pin wrapper machinery,
// runs the kernel on the session's simulated node, and reports per-thread
// bandwidth/FLOPS as an api::ResultTable so every OutputSink (ASCII, CSV,
// XML, or an embedder's own) renders it for free. When the session has
// event sets configured, the run is measured through the counters exactly
// like an application under likwid-perfctr — any -g group works on top.
//
// Model validation cross-checks the kernel-reported bandwidth against an
// independent prediction assembled from perfmodel primitives
// (default_model + allocate_bandwidth), closing the loop between measured
// kernels and the machine model ("Best practices for HPM-assisted
// performance engineering", arXiv:1206.3738).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/result_table.hpp"
#include "api/session.hpp"
#include "microbench/kernels.hpp"
#include "microbench/workgroup.hpp"

namespace likwid::microbench {

struct BenchOptions {
  WorkgroupSpec workgroup;
  std::string kernel = "stream_triad";
  /// Sweeps over the working set; 0 auto-calibrates to `target_seconds`.
  int sweeps = 0;
  /// Simulated runtime the calibration aims for.
  double target_seconds = 1.0;
  /// Performance groups measured over the run (likwid-perfctr -g names);
  /// more than one rotates between work quanta (multiplexing).
  std::vector<std::string> groups;
  /// Cross-check the result against the perfmodel prediction.
  bool validate = false;
};

/// Outcome of the model cross-check.
struct ModelValidation {
  std::string bound;         ///< binding regime: core, L2, L3, MEM
  double measured_mbs = 0;   ///< kernel-reported bandwidth
  double predicted_mbs = 0;  ///< perfmodel prediction, same convention
  double rel_error = 0;      ///< |measured-predicted| / predicted
  double tolerance = kTolerance;
  bool pass = false;

  /// Documented agreement bound: the predictor rebuilds the binding
  /// regime from perfmodel::allocate_bandwidth and the ladder caps
  /// independently of the execution model, so measured and predicted
  /// bandwidth agree within 10% on every registered kernel.
  static constexpr double kTolerance = 0.10;
};

struct BenchResult {
  std::string kernel;
  Workgroup workgroup;
  std::size_t elements_per_thread = 0;  ///< per array
  int sweeps = 0;
  double seconds = 0;          ///< measured simulated wall time
  double bandwidth_mbs = 0;    ///< group total, reported-byte convention
  double mflops = 0;           ///< group total
  double traffic_gbs = 0;      ///< actual hierarchy traffic moved
  /// Per-thread rows (bandwidth, flops, data volume, runtime) keyed by
  /// the pinned cpus — render with any api::OutputSink.
  api::ResultTable table;
  /// Counter measurements of the run, one per configured event set.
  std::vector<api::ResultTable> measurements;
  std::optional<ModelValidation> validation;
};

/// Run one workgroup of `options.kernel` on the session's node. The
/// session must carry no cpu list yet (the workgroup decides it); event
/// sets already added to the session are measured over the run.
BenchResult run_bench(api::Session& session, const BenchOptions& options);

/// The independent model prediction for a resolved workgroup (exposed for
/// tests and the validation report).
ModelValidation validate_against_model(api::Session& session,
                                       const KernelDesc& kernel,
                                       const Workgroup& group, int sweeps,
                                       double measured_seconds);

}  // namespace likwid::microbench
