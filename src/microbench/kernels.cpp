#include "microbench/kernels.hpp"

#include <algorithm>

#include "util/status.hpp"
#include "workloads/stream.hpp"

namespace likwid::microbench {

namespace {

using workloads::SyntheticConfig;

/// Shared scaffold: one element iteration sweeps `streams` arrays of
/// doubles with unit stride (the likwid-bench streaming pattern).
SyntheticConfig streaming_config(const char* name, int streams,
                                 std::size_t elements, int sweeps) {
  SyntheticConfig c;
  c.name = name;
  c.iterations_per_sweep = static_cast<double>(elements);
  c.sweeps = sweeps;
  c.mix.branches = 0.25;  // 4x unrolled backedge
  c.mix.mispredict_ratio = 0.001;
  c.access.working_set_bytes =
      static_cast<std::uint64_t>(streams) * 8 * elements;
  c.access.stride_bytes = 8;
  return c;
}

SyntheticConfig make_copy(std::size_t elements, int sweeps) {
  // The suite already ships the copy kernel for the perfctr groups;
  // likwid-bench reuses it rather than re-describing a[i] = b[i].
  return workloads::copy_kernel(elements, sweeps);
}

SyntheticConfig make_load(std::size_t elements, int sweeps) {
  SyntheticConfig c = streaming_config("load", 1, elements, sweeps);
  c.mix.cycles = 0.5;
  c.mix.instructions = 2.0;
  c.mix.loads = 1.0;
  return c;
}

SyntheticConfig make_store(std::size_t elements, int sweeps) {
  SyntheticConfig c = streaming_config("store", 1, elements, sweeps);
  c.mix.cycles = 0.5;
  c.mix.instructions = 2.0;
  c.mix.stores = 1.0;
  c.access.store_fraction = 1.0;  // every touched line is written
  return c;
}

SyntheticConfig make_stream_triad(std::size_t elements, int sweeps) {
  // Reused from the perfctr synthetic family: the STREAM triad as a
  // working-set-aware kernel.
  return workloads::triad_kernel(elements, sweeps);
}

SyntheticConfig make_daxpy(std::size_t elements, int sweeps) {
  // Reused from the perfctr synthetic family: y[i] += a * x[i].
  return workloads::daxpy_kernel(elements, sweeps);
}

SyntheticConfig make_sum(std::size_t elements, int sweeps) {
  SyntheticConfig c = streaming_config("sum", 1, elements, sweeps);
  c.mix.cycles = 0.5;
  c.mix.instructions = 2.5;
  c.mix.packed_double = 0.5;  // one add per element, packed two-wide
  c.mix.loads = 1.0;
  return c;
}

SyntheticConfig make_peakflops(std::size_t elements, int sweeps) {
  SyntheticConfig c = streaming_config("peakflops", 1, elements, sweeps);
  c.mix.cycles = 1.0;         // two packed ops per cycle
  c.mix.instructions = 3.0;
  c.mix.packed_double = 2.0;  // mul + add, both packed: 4 flops per iter
  c.mix.loads = 1.0;
  return c;
}

}  // namespace

std::size_t KernelDesc::elements_for_bytes(
    std::uint64_t bytes_per_thread) const {
  const std::uint64_t per_element =
      static_cast<std::uint64_t>(streams) * 8;
  return static_cast<std::size_t>(
      std::max<std::uint64_t>(bytes_per_thread / per_element, 1));
}

const std::vector<KernelDesc>& kernel_registry() {
  static const std::vector<KernelDesc> kernels = {
      // The reported-bytes conventions follow the real likwid-bench: pure
      // data volume as seen by the source code, write-allocate excluded
      // (workloads::StreamTriad::kReportedBytesPerIter documents the
      // classic 24-vs-32 triad discrepancy this creates).
      {"copy", "a[i] = b[i]", 2, 0.0, 16.0, make_copy},
      {"load", "s = a[i] (load-only stream)", 1, 0.0, 8.0, make_load},
      {"store", "a[i] = s (store-only stream)", 1, 0.0, 8.0, make_store},
      {"stream_triad", "a[i] = b[i] + s * c[i] (STREAM triad)", 3, 2.0,
       workloads::StreamTriad::kReportedBytesPerIter, make_stream_triad},
      {"daxpy", "y[i] = y[i] + a * x[i]", 2, 2.0, 24.0, make_daxpy},
      {"sum", "s += a[i] (reduction)", 1, 1.0, 8.0, make_sum},
      {"peakflops", "register-blocked multiply-add chain", 1, 4.0, 8.0,
       make_peakflops},
  };
  return kernels;
}

const KernelDesc& kernel_by_name(const std::string& name) {
  for (const KernelDesc& k : kernel_registry()) {
    if (k.name == name) return k;
  }
  std::string known;
  for (const KernelDesc& k : kernel_registry()) {
    if (!known.empty()) known += ", ";
    known += k.name;
  }
  throw_error(ErrorCode::kNotFound,
              "unknown bench kernel '" + name + "' (known: " + known + ")");
}

}  // namespace likwid::microbench
