#include "analysis/lint.hpp"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "core/batch_program.hpp"
#include "core/compiled_metric.hpp"
#include "core/metric_expr.hpp"
#include "hwsim/arch.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::analysis {

namespace {

using hwsim::Arch;
using hwsim::CounterClass;
using hwsim::EventEncoding;
using hwsim::EventId;

/// Events that advance whenever the machine executes at all: a formula
/// dividing by one of these cannot hit the x/0 = 0 fallback on any run
/// that measured something. `time` and `clock` are nonzero by the same
/// argument (a measurement covers nonzero wall time on a nonzero-clock
/// machine).
bool always_advances(const EventEncoding* enc) {
  if (enc == nullptr) return false;
  switch (enc->id) {
    case EventId::kInstructionsRetired:
    case EventId::kCoreCycles:
    case EventId::kRefCycles:
    case EventId::kUncClockticks:
      return true;
    default:
      return false;
  }
}

/// The register file a group's formulas bind against, derived exactly the
/// way PerfCtr builds the event set (add_fixed_counters + add_group):
/// implicit fixed counters first, then the group's non-fixed events in
/// listing order, with `time` and `clock` in the two trailing registers
/// (validate_and_store's reg_of).
struct RegisterFile {
  struct Slot {
    std::string name;
    std::string counter;
    const EventEncoding* enc = nullptr;
  };
  std::vector<Slot> slots;
  int core_events = 0;
  int uncore_events = 0;

  int reg_of(std::string_view name) const {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].name == name) return static_cast<int>(i);
    }
    if (name == "time") return static_cast<int>(slots.size());
    if (name == "clock") return static_cast<int>(slots.size()) + 1;
    return -1;
  }

  /// nonzero_regs span for CompiledMetric::division_risks, covering the
  /// event slots plus the trailing time/clock registers.
  std::vector<bool> nonzero_registers() const {
    std::vector<bool> nonzero(slots.size() + 2, false);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      nonzero[i] = always_advances(slots[i].enc);
    }
    nonzero[slots.size()] = true;      // time
    nonzero[slots.size() + 1] = true;  // clock
    return nonzero;
  }
};

/// Group names follow the builtin convention: uppercase word starting
/// with a letter (FLOPS_DP, L2CACHE, ...).
bool well_formed_name(const std::string& name) {
  if (name.empty()) return false;
  if (std::isupper(static_cast<unsigned char>(name.front())) == 0) {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](char c) {
    const auto uc = static_cast<unsigned char>(c);
    return std::isupper(uc) != 0 || std::isdigit(uc) != 0 || c == '_';
  });
}

std::string upper_copy(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

/// Mirror of PerfCtr::add_fixed_counters' implicit event list.
constexpr const char* kFixedNames[3] = {
    "INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE", "CPU_CLK_UNHALTED_REF"};

class GroupLinter {
 public:
  GroupLinter(const hwsim::MachineSpec& spec, const core::EventGroup& group,
              std::string machine_label)
      : spec_(spec),
        group_(group),
        machine_(std::move(machine_label)),
        arch_(hwsim::classify_arch(spec.vendor, spec.family, spec.model)) {}

  std::vector<Diagnostic> run() {
    check_name();
    build_register_file();
    check_slot_budget();
    check_formulas();
    check_unused_events();
    return std::move(diags_);
  }

 private:
  void emit(Severity severity, std::string check, std::string message,
            std::string metric = "") {
    Diagnostic d;
    d.severity = severity;
    d.check = std::move(check);
    d.machine = machine_;
    d.group = group_.name;
    d.metric = std::move(metric);
    d.message = std::move(message);
    diags_.push_back(std::move(d));
  }

  void check_name() {
    if (!well_formed_name(group_.name)) {
      emit(Severity::kError, "group-name",
           "malformed group name '" + group_.name +
               "' (expected an uppercase identifier like FLOPS_DP)");
    }
  }

  /// PerfCtr::add_group, as a pure function: derive the assignments the
  /// measurement layer would build, diagnosing instead of throwing.
  void build_register_file() {
    const auto& pmu = spec_.pmu;
    if (pmu.num_fixed_counters > 0) {
      for (int i = 0; i < std::min(2, pmu.num_fixed_counters); ++i) {
        const EventEncoding* enc = hwsim::find_event(arch_, kFixedNames[i]);
        if (enc == nullptr || enc->klass != CounterClass::kFixed) {
          emit(Severity::kError, "schedulability",
               std::string("implicit fixed event ") + kFixedNames[i] +
                   " is missing from the architecture's event table");
          continue;
        }
        regs_.slots.push_back(
            {kFixedNames[i], "FIXC" + std::to_string(i), enc});
      }
    }
    int next_pmc = 0;
    int next_upmc = 0;
    for (const auto& name : group_.events) {
      const EventEncoding* enc = hwsim::find_event(arch_, name);
      if (enc == nullptr) {
        emit(Severity::kError, "undefined-event",
             "event '" + name + "' is not documented on " +
                 std::string(hwsim::to_string(arch_)));
        continue;
      }
      switch (enc->klass) {
        case CounterClass::kFixed:
          // The measurement layer drops listed fixed-class events (they
          // are counted implicitly) — but only the implicit ones exist.
          if (pmu.num_fixed_counters <= 0) {
            emit(Severity::kError, "schedulability",
                 "event '" + name +
                     "' needs a fixed counter but this machine has none");
          } else if (enc->fixed_index >=
                     std::min(2, pmu.num_fixed_counters)) {
            emit(Severity::kError, "schedulability",
                 "fixed event '" + name +
                     "' is outside the implicitly counted set and would be "
                     "silently dropped");
          }
          break;
        case CounterClass::kUncore:
          regs_.slots.push_back(
              {name, "UPMC" + std::to_string(next_upmc), enc});
          ++next_upmc;
          ++regs_.uncore_events;
          break;
        case CounterClass::kCore:
          regs_.slots.push_back(
              {name, "PMC" + std::to_string(next_pmc), enc});
          ++next_pmc;
          ++regs_.core_events;
          break;
      }
    }
  }

  /// PerfCtr::validate_and_store's slot-budget errors, as diagnostics.
  void check_slot_budget() {
    const auto& pmu = spec_.pmu;
    if (regs_.core_events > pmu.num_gp_counters) {
      emit(Severity::kError, "schedulability",
           util::strprintf("%d core events but only %d general-purpose "
                           "counters",
                           regs_.core_events, pmu.num_gp_counters));
    }
    if (regs_.uncore_events > pmu.num_uncore_counters) {
      emit(Severity::kError, "schedulability",
           util::strprintf("%d uncore events but only %d uncore counters",
                           regs_.uncore_events, pmu.num_uncore_counters));
    }
  }

  void check_formulas() {
    const std::vector<bool> nonzero = regs_.nonzero_registers();
    // Every formula that compiles is retained (with its scalar risks) for
    // the fused-interpreter parity check after the loop.
    std::vector<core::CompiledMetric> compiled;
    std::vector<std::string> compiled_names;
    std::vector<std::vector<core::CompiledMetric::DivisionRisk>> scalar_risks;
    for (const auto& metric : group_.metrics) {
      std::optional<core::MetricExpr> parsed;
      try {
        parsed = core::MetricExpr::parse(metric.formula);
      } catch (const Error& e) {
        emit(Severity::kError, "formula-syntax", e.what(), metric.name);
        continue;
      }
      const core::MetricExpr& expr = *parsed;
      bool resolvable = true;
      for (const auto& var : expr.variables()) {
        consumed_.insert(var);
        if (regs_.reg_of(var) < 0) {
          emit(Severity::kError, "undefined-event",
               "formula references '" + var +
                   "', which the event set does not count",
               metric.name);
          resolvable = false;
        }
      }
      if (!resolvable) continue;
      core::CompiledMetric program = expr.compile(
          [this](std::string_view name) { return regs_.reg_of(name); });
      std::vector<core::CompiledMetric::DivisionRisk> risks =
          program.division_risks(nonzero);
      for (const auto& risk : risks) {
        std::string divisor;
        for (const auto reg : risk.registers) {
          if (!divisor.empty()) divisor += ", ";
          divisor += reg < static_cast<std::int32_t>(regs_.slots.size())
                         ? regs_.slots[static_cast<std::size_t>(reg)].name
                         : (reg == static_cast<std::int32_t>(
                                       regs_.slots.size())
                                ? "time"
                                : "clock");
        }
        if (risk.certain) {
          emit(Severity::kError, "zero-division",
               "divisor is always zero — the metric can only report 0",
               metric.name);
        } else {
          std::string message =
              divisor.empty()
                  ? "division by a possibly-zero subexpression"
                  : "divisor (" + divisor +
                        ") is not provably nonzero; x/0 evaluates to 0";
          if (risk.cancellation) {
            message += " (contains a subtraction that can cancel)";
          }
          emit(Severity::kWarning, "zero-division", std::move(message),
               metric.name);
        }
      }
      compiled.push_back(std::move(program));
      compiled_names.push_back(metric.name);
      scalar_risks.push_back(std::move(risks));
    }
    check_fused_parity(compiled, compiled_names, scalar_risks, nonzero);
  }

  /// Cross-check: the fused struct-of-arrays interpreter's zero-division
  /// analysis (BatchProgram::division_risks) must report EXACTLY what the
  /// scalar analysis reported per formula — same sites, same severity
  /// inputs, same registers. The two share their lattice
  /// (core/metric_abstract.hpp); a divergence means the engines drifted
  /// and is itself a lint error. Running inside every lint pass makes the
  /// whole machine x group lint suite a parity proof.
  void check_fused_parity(
      const std::vector<core::CompiledMetric>& compiled,
      const std::vector<std::string>& names,
      const std::vector<std::vector<core::CompiledMetric::DivisionRisk>>&
          scalar_risks,
      const std::vector<bool>& nonzero) {
    if (compiled.empty()) return;
    std::vector<const core::CompiledMetric*> programs;
    programs.reserve(compiled.size());
    for (const auto& p : compiled) programs.push_back(&p);
    const core::BatchProgram fused =
        core::BatchProgram::fuse(programs, regs_.slots.size());
    const std::vector<std::vector<core::CompiledMetric::DivisionRisk>>
        fused_risks = fused.division_risks(nonzero);
    for (std::size_t m = 0; m < compiled.size(); ++m) {
      if (risks_equal(scalar_risks[m], fused_risks[m])) continue;
      emit(Severity::kError, "zero-division-parity",
           util::strprintf("fused interpreter reports %zu zero-division "
                           "risk(s) where the scalar analysis reports %zu — "
                           "the metric engines have drifted apart",
                           fused_risks[m].size(), scalar_risks[m].size()),
           names[m]);
    }
  }

  static bool risks_equal(
      const std::vector<core::CompiledMetric::DivisionRisk>& a,
      const std::vector<core::CompiledMetric::DivisionRisk>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].certain != b[i].certain ||
          a[i].cancellation != b[i].cancellation ||
          a[i].registers != b[i].registers) {
        return false;
      }
    }
    return true;
  }

  void check_unused_events() {
    for (const auto& name : group_.events) {
      if (hwsim::find_event(arch_, name) == nullptr) {
        continue;  // already an undefined-event error
      }
      if (consumed_.find(name) == consumed_.end()) {
        emit(Severity::kWarning, "unused-event",
             "event '" + name +
                 "' is counted but no metric formula consumes it");
      }
    }
  }

  const hwsim::MachineSpec& spec_;
  const core::EventGroup& group_;
  std::string machine_;
  Arch arch_;
  RegisterFile regs_;
  std::set<std::string> consumed_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::string_view to_string(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

std::vector<Diagnostic> lint_group(const hwsim::MachineSpec& spec,
                                   const core::EventGroup& group,
                                   const std::string& machine_label) {
  return GroupLinter(spec, group, machine_label).run();
}

std::vector<Diagnostic> lint_catalog(
    const hwsim::MachineSpec& spec,
    const std::vector<core::EventGroup>& groups,
    const std::string& machine_label) {
  std::vector<Diagnostic> diags;
  // Name collisions are catalog-level: find_group resolves by exact
  // match, so an exact duplicate makes the later group unreachable and a
  // case-insensitive near-duplicate invites silent misuse.
  std::set<std::string> seen;
  std::map<std::string, std::string> seen_upper;
  for (const auto& group : groups) {
    if (!seen.insert(group.name).second) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.check = "group-name";
      d.machine = machine_label;
      d.group = group.name;
      d.message = "duplicate group name '" + group.name +
                  "' — the later definition is unreachable";
      diags.push_back(std::move(d));
      continue;
    }
    const auto [it, inserted] =
        seen_upper.emplace(upper_copy(group.name), group.name);
    if (!inserted) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.check = "group-name";
      d.machine = machine_label;
      d.group = group.name;
      d.message = "group name '" + group.name + "' shadows '" + it->second +
                  "' (names differ only by case)";
      diags.push_back(std::move(d));
    }
  }
  for (const auto& group : groups) {
    auto group_diags = lint_group(spec, group, machine_label);
    diags.insert(diags.end(),
                 std::make_move_iterator(group_diags.begin()),
                 std::make_move_iterator(group_diags.end()));
  }
  return diags;
}

std::vector<Diagnostic> lint_machine(const std::string& preset_key) {
  const hwsim::MachineSpec spec = hwsim::presets::preset_by_key(preset_key);
  const Arch arch =
      hwsim::classify_arch(spec.vendor, spec.family, spec.model);
  return lint_catalog(spec, core::supported_groups(arch), preset_key);
}

std::vector<Diagnostic> lint_all_machines() {
  std::vector<Diagnostic> diags;
  for (const auto& preset : hwsim::presets::all_presets()) {
    auto machine_diags = lint_machine(preset.key);
    diags.insert(diags.end(),
                 std::make_move_iterator(machine_diags.begin()),
                 std::make_move_iterator(machine_diags.end()));
  }
  return diags;
}

std::size_t count(const std::vector<Diagnostic>& diags, Severity severity) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(), [severity](const auto& d) {
        return d.severity == severity;
      }));
}

bool has_errors(const std::vector<Diagnostic>& diags,
                bool warnings_as_errors) {
  if (warnings_as_errors) return !diags.empty();
  return count(diags, Severity::kError) > 0;
}

std::string format_diagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const auto& d : diags) {
    out << to_string(d.severity) << ": [" << d.check << "] " << d.machine;
    if (!d.group.empty()) out << "/" << d.group;
    out << ": ";
    if (!d.metric.empty()) out << "metric '" << d.metric << "': ";
    out << d.message << "\n";
  }
  return out.str();
}

api::ResultTable report_table(const std::vector<Diagnostic>& diags,
                              std::size_t groups_linted,
                              std::size_t machines_linted) {
  api::ResultTable table;
  table.group = "LINT";
  table.has_metrics = true;
  // One synthetic value column: lint results have no cpu dimension, but
  // the sink layer renders one column per entry of `cpus`.
  table.cpus = {0};
  const auto add = [&table](const std::string& name, double value) {
    table.metrics.push_back({name, {value}});
  };
  add("machines linted", static_cast<double>(machines_linted));
  add("groups linted", static_cast<double>(groups_linted));
  add("errors", static_cast<double>(count(diags, Severity::kError)));
  add("warnings", static_cast<double>(count(diags, Severity::kWarning)));
  std::map<std::string, std::size_t> by_check;
  for (const auto& d : diags) {
    ++by_check[std::string(to_string(d.severity)) + ":" + d.check];
  }
  for (const auto& [key, n] : by_check) {
    add(key, static_cast<double>(n));
  }
  return table;
}

}  // namespace likwid::analysis
