// lint.hpp — static validation of performance-group and metric
// definitions against a machine model, without executing a measurement.
//
// The paper's discipline is that event sets, counter constraints and
// derived-metric formulas are *declared* — which means a group definition
// can be proven schedulable and its formulas proven well-formed at
// definition time, long before a counter is programmed. This library is
// that proof, mirrored from the measurement layer as pure checks:
//
//   schedulability   the group's events fit the PMU's counter slots
//                    (PerfCtr::add_group + validate_and_store, minus the
//                    side effects)
//   undefined-event  an event name the architecture does not document, or
//                    a formula variable no register of the set carries
//   unused-event     an explicitly listed event no formula consumes —
//                    it burns a counter slot for nothing
//   zero-division    a formula path whose divisor the abstract
//                    interpreter (CompiledMetric::division_risks) cannot
//                    prove nonzero; evaluate() defines x/0 = 0, so such a
//                    metric silently reports 0
//   formula-syntax   a formula MetricExpr cannot parse
//   group-name       malformed, duplicate or case-shadowed group names
//
// Severity model: a definition the measurement layer would reject or that
// can only ever mislead is an error; a definition that is legal but
// wasteful or fragile (unused events, maybe-zero divisors — several
// builtin ratio groups divide by a plain counter on purpose) is a
// warning. likwid-lint --strict promotes warnings to errors.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "api/result_table.hpp"
#include "core/perf_groups.hpp"
#include "hwsim/machine_spec.hpp"

namespace likwid::analysis {

enum class Severity {
  kWarning,  ///< legal but wasteful or fragile
  kError,    ///< the measurement layer would reject it, or it can only mislead
};

std::string_view to_string(Severity severity) noexcept;

/// One finding of the linter, machine- and group-scoped (metric-scoped
/// when a formula is at fault).
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check;    ///< check id ("schedulability", "zero-division", ...)
  std::string machine;  ///< preset key or architecture label
  std::string group;    ///< group name; empty for catalog-level findings
  std::string metric;   ///< metric display name; empty when not formula-scoped
  std::string message;
};

/// Lint one group definition against a machine model.
std::vector<Diagnostic> lint_group(const hwsim::MachineSpec& spec,
                                   const core::EventGroup& group,
                                   const std::string& machine_label);

/// Lint a catalog of groups: name collisions/shadowing across the catalog,
/// then every group via lint_group.
std::vector<Diagnostic> lint_catalog(const hwsim::MachineSpec& spec,
                                     const std::vector<core::EventGroup>& groups,
                                     const std::string& machine_label);

/// Lint every builtin group supported on the preset machine; throws
/// Error(kNotFound) for unknown preset keys.
std::vector<Diagnostic> lint_machine(const std::string& preset_key);

/// Lint every machine preset's builtin catalog.
std::vector<Diagnostic> lint_all_machines();

std::size_t count(const std::vector<Diagnostic>& diags, Severity severity);

/// Whether the findings fail the lint (any error; with
/// `warnings_as_errors`, any diagnostic at all).
bool has_errors(const std::vector<Diagnostic>& diags,
                bool warnings_as_errors = false);

/// One text line per diagnostic:
///   error: [schedulability] westmere-ep/FLOPS_DP: ...
///   warning: [zero-division] core2-quad/DATA: metric 'Load to store ratio': ...
std::string format_diagnostics(const std::vector<Diagnostic>& diags);

/// The findings summarized as a ResultTable for the existing output sinks
/// (ASCII/CSV/XML): one synthetic value column, one metric row per
/// severity and per (severity, check) pair with a nonzero count.
api::ResultTable report_table(const std::vector<Diagnostic>& diags,
                              std::size_t groups_linted,
                              std::size_t machines_linted);

}  // namespace likwid::analysis
