#include "perfmodel/bandwidth.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace likwid::perfmodel {

std::vector<double> allocate_bandwidth(
    const std::vector<BandwidthDemand>& demands,
    const std::vector<double>& domain_capacity_gbs) {
  const std::size_t n = demands.size();
  const std::size_t d = domain_capacity_gbs.size();
  std::vector<double> achieved(n);
  for (std::size_t i = 0; i < n; ++i) {
    LIKWID_REQUIRE(demands[i].desired_gbs >= 0, "negative bandwidth demand");
    LIKWID_REQUIRE(demands[i].domain_fraction.size() == d ||
                       demands[i].desired_gbs == 0,
                   "demand must name a fraction per domain");
    achieved[i] = demands[i].desired_gbs;
  }
  for (const double cap : domain_capacity_gbs) {
    LIKWID_REQUIRE(cap > 0, "non-positive domain capacity");
  }

  // Proportional scaling: repeatedly find domain utilisations and squeeze
  // consumers of any over-committed domain. Each sweep only reduces rates,
  // so the iteration converges monotonically.
  constexpr int kSweeps = 20;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    bool any_overload = false;
    for (std::size_t k = 0; k < d; ++k) {
      double util = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (demands[i].desired_gbs <= 0) continue;
        util += achieved[i] * demands[i].domain_fraction[k];
      }
      if (util > domain_capacity_gbs[k] * (1.0 + 1e-9)) {
        any_overload = true;
        const double scale = domain_capacity_gbs[k] / util;
        for (std::size_t i = 0; i < n; ++i) {
          if (demands[i].desired_gbs <= 0) continue;
          if (demands[i].domain_fraction[k] > 0) {
            // Scale the whole thread rate: its traffic mix is fixed, so a
            // squeezed domain slows all of its traffic.
            achieved[i] *= 1.0 - demands[i].domain_fraction[k] * (1.0 - scale);
          }
        }
      }
    }
    if (!any_overload) break;
  }
  return achieved;
}

}  // namespace likwid::perfmodel
