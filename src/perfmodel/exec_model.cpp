#include "perfmodel/exec_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace likwid::perfmodel {

MachineModel default_model(const hwsim::MachineSpec& spec) {
  MachineModel m;
  m.clock_ghz = spec.clock_ghz;
  m.l2_bytes_per_cycle = 32.0;
  m.l3_bytes_per_cycle_core = 12.0;
  m.l3_bytes_per_cycle_socket = 28.0;
  m.mem_bw_thread_gbs = spec.memory.thread_bandwidth_gbs;
  m.mem_bw_socket_gbs = spec.memory.socket_bandwidth_gbs;
  m.remote_factor = spec.memory.remote_penalty;
  // The interconnect sustains a fraction of a controller's bandwidth; on
  // single-socket parts (or specs without a remote penalty) it never binds.
  m.qpi_gbs = spec.sockets > 1 && spec.memory.remote_penalty < 1.0
                  ? spec.memory.socket_bandwidth_gbs *
                        spec.memory.remote_penalty
                  : 0.0;
  return m;
}

TimingResult estimate_slice(const MachineModel& model,
                            const hwsim::SimMachine& machine,
                            const std::vector<ThreadWork>& work,
                            const std::vector<int>& cpu_load,
                            const TimingOptions& options) {
  const int sockets = machine.spec().sockets;
  LIKWID_REQUIRE(static_cast<int>(cpu_load.size()) == machine.num_threads(),
                 "cpu_load must cover every hardware thread");
  const double hz = model.clock_ghz * 1e9;

  const auto oversub = [&](int cpu) {
    return std::max(1, cpu_load[static_cast<std::size_t>(cpu)]);
  };
  const auto sibling_busy = [&](int cpu) {
    for (const int sib : machine.core_siblings(cpu)) {
      if (sib != cpu && cpu_load[static_cast<std::size_t>(sib)] > 0) {
        return true;
      }
    }
    return false;
  };

  const std::size_t n = work.size();
  std::vector<double> core_time(n), l2_time(n), l3_time(n), mem_total(n),
      mem_cap(n), remote_frac(n);

  // Pass 1: per-thread lower bounds independent of shared contention.
  for (std::size_t i = 0; i < n; ++i) {
    const ThreadWork& w = work[i];
    LIKWID_REQUIRE(w.cpu >= 0 && w.cpu < machine.num_threads(),
                   "worker placed on invalid cpu");
    const int k = oversub(w.cpu);
    const double smt = sibling_busy(w.cpu) ? options.smt_share : 1.0;

    core_time[i] =
        w.iterations * w.cycles_per_iter / hz / smt * static_cast<double>(k);
    l2_time[i] = w.l2_bytes / (model.l2_bytes_per_cycle * hz);
    l3_time[i] = w.l3_bytes / (model.l3_bytes_per_cycle_core * hz);

    double total = 0;
    double remote = 0;
    const int home_self = machine.socket_of(w.cpu);
    if (!w.mem_bytes_by_socket.empty()) {
      LIKWID_REQUIRE(static_cast<int>(w.mem_bytes_by_socket.size()) == sockets,
                     "mem_bytes_by_socket must have one entry per socket");
      for (int s = 0; s < sockets; ++s) {
        total += w.mem_bytes_by_socket[static_cast<std::size_t>(s)];
        if (s != home_self) {
          remote += w.mem_bytes_by_socket[static_cast<std::size_t>(s)];
        }
      }
    }
    mem_total[i] = total;
    remote_frac[i] = total > 0 ? remote / total : 0.0;

    // The thread's own pull rate: code quality, prefetchers, time slicing
    // and the interconnect penalty on its remote share all reduce it.
    const double remote_mult =
        1.0 - remote_frac[i] * (1.0 - model.remote_factor);
    mem_cap[i] = model.mem_bw_thread_gbs * 1e9 * w.bw_scale *
                 w.prefetch_factor * remote_mult / static_cast<double>(k);
  }

  // Pass 2: memory-controller waterfilling across sockets.
  std::vector<BandwidthDemand> demands(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ThreadWork& w = work[i];
    if (mem_total[i] <= 0) continue;
    // Desired rate: what the thread would pull if controllers were infinite
    // — bounded by its own cap and by how fast the rest of the pipeline
    // lets it consume data.
    const double t_other =
        std::max({core_time[i], l2_time[i], l3_time[i],
                  mem_total[i] / mem_cap[i]});
    BandwidthDemand d;
    d.desired_gbs = (mem_total[i] / t_other) / 1e9;
    d.domain_fraction.assign(static_cast<std::size_t>(sockets), 0.0);
    for (int s = 0; s < sockets; ++s) {
      d.domain_fraction[static_cast<std::size_t>(s)] =
          w.mem_bytes_by_socket[static_cast<std::size_t>(s)] / mem_total[i];
    }
    demands[i] = std::move(d);
  }
  std::vector<double> caps(static_cast<std::size_t>(sockets),
                           model.mem_bw_socket_gbs * options.socket_bw_scale);
  std::vector<double> achieved = allocate_bandwidth(demands, caps);

  // Pass 2b: interconnect cap. Remote streams traverse the socket
  // interconnect (QPI / HyperTransport), whose sustainable rate is below
  // the memory controllers'. Each unordered socket pair shares one link;
  // when a link saturates, every thread's remote component is squeezed
  // proportionally while its local component is untouched.
  if (sockets > 1 && model.qpi_gbs > 0) {
    const auto link_of = [sockets](int a, int b) {
      return std::min(a, b) * sockets + std::max(a, b);
    };
    std::vector<double> link_rate(
        static_cast<std::size_t>(sockets * sockets), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (achieved[i] <= 0 || remote_frac[i] <= 0) continue;
      const int src = machine.socket_of(work[i].cpu);
      for (int s = 0; s < sockets; ++s) {
        if (s == src) continue;
        const double frac =
            demands[i].domain_fraction[static_cast<std::size_t>(s)];
        if (frac > 0) {
          link_rate[static_cast<std::size_t>(link_of(src, s))] +=
              achieved[i] * frac;
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (achieved[i] <= 0 || remote_frac[i] <= 0) continue;
      const int src = machine.socket_of(work[i].cpu);
      double rate = 0;
      for (int s = 0; s < sockets; ++s) {
        const double frac =
            demands[i].domain_fraction[static_cast<std::size_t>(s)];
        if (frac <= 0) continue;
        double component = achieved[i] * frac;
        if (s != src) {
          const double lr =
              link_rate[static_cast<std::size_t>(link_of(src, s))];
          if (lr > model.qpi_gbs) component *= model.qpi_gbs / lr;
        }
        rate += component;
      }
      achieved[i] = rate;
    }
  }

  // Pass 3: shared-L3 socket aggregate (proportional squeeze).
  std::vector<double> l3_demand(static_cast<std::size_t>(sockets), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (l3_time[i] <= 0) continue;
    const int s = machine.socket_of(work[i].cpu);
    const double t_other = std::max({core_time[i], l2_time[i], l3_time[i]});
    l3_demand[static_cast<std::size_t>(s)] += work[i].l3_bytes / t_other;
  }
  std::vector<double> l3_scale(static_cast<std::size_t>(sockets), 1.0);
  const double l3_cap = model.l3_bytes_per_cycle_socket * hz;
  for (int s = 0; s < sockets; ++s) {
    if (l3_demand[static_cast<std::size_t>(s)] > l3_cap) {
      l3_scale[static_cast<std::size_t>(s)] =
          l3_demand[static_cast<std::size_t>(s)] / l3_cap;
    }
  }

  TimingResult result;
  result.thread_seconds.resize(n);
  result.thread_cycles.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int s = machine.socket_of(work[i].cpu);
    const double mem_time =
        mem_total[i] > 0 ? mem_total[i] / (achieved[i] * 1e9) : 0.0;
    const double t =
        std::max({core_time[i], l2_time[i],
                  l3_time[i] * l3_scale[static_cast<std::size_t>(s)],
                  mem_time});
    result.thread_seconds[i] = t;
    result.thread_cycles[i] = t * hz;
    result.seconds = std::max(result.seconds, t);
  }
  return result;
}

}  // namespace likwid::perfmodel
