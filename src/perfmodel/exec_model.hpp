// exec_model.hpp — analytic bottleneck timing for one execution slice.
//
// Each worker thread is described by its placement, its core-bound cost and
// the data volumes it moves at each hierarchy boundary; the model computes
// per-thread wall time as the slowest of: instruction throughput, L2
// transfer, shared-L3 transfer (socket-capped), and memory transfer
// (waterfilled across each socket's controller, with remote traffic paying
// the interconnect penalty and loading the *home* socket's controller).
// SMT sharing and core oversubscription stretch the core-bound component
// and shrink the per-thread bandwidth cap.
#pragma once

#include <vector>

#include "hwsim/machine.hpp"
#include "perfmodel/bandwidth.hpp"

namespace likwid::perfmodel {

/// Calibrated machine-level throughput parameters derived from a spec.
struct MachineModel {
  double clock_ghz = 2.0;
  double l2_bytes_per_cycle = 32.0;       ///< per core
  double l3_bytes_per_cycle_core = 12.0;  ///< per core into shared L3
  double l3_bytes_per_cycle_socket = 28.0;
  double mem_bw_thread_gbs = 10.0;        ///< one thread's sustainable traffic
  double mem_bw_socket_gbs = 20.0;
  double remote_factor = 0.7;             ///< remote-access rate multiplier
  double no_prefetch_factor = 0.6;        ///< bw multiplier with HW prefetch off
  /// Sustainable rate of one socket interconnect link (QPI/HyperTransport);
  /// all remote traffic between a socket pair shares this, in both
  /// directions. 0 disables the cap (single-socket parts).
  double qpi_gbs = 0.0;
};

/// Build the default model for a machine (tunable by callers afterwards).
MachineModel default_model(const hwsim::MachineSpec& spec);

/// One worker thread's slice of work.
struct ThreadWork {
  int cpu = -1;                 ///< placement (os id)
  double iterations = 0;        ///< kernel iterations in this slice
  double cycles_per_iter = 1;   ///< pure-core throughput cost
  double instructions = 0;      ///< retired instructions in this slice
  double l2_bytes = 0;          ///< L1<->L2 traffic
  double l3_bytes = 0;          ///< L2<->L3 traffic (local socket)
  /// Memory-controller traffic homed on each socket (read+write bytes).
  /// Local streams put their bytes on the thread's own socket; data homed
  /// remotely puts bytes on the home socket and pays the remote factor.
  std::vector<double> mem_bytes_by_socket;
  double bw_scale = 1.0;        ///< compiler/code quality factor (<=1)
  double prefetch_factor = 1.0; ///< 1 with prefetchers, lower without
};

struct TimingOptions {
  double smt_share = 0.55;      ///< per-thread core share with busy sibling
  double socket_bw_scale = 1.0; ///< compiler factor on socket capacity
};

struct TimingResult {
  double seconds = 0;                   ///< slice wall time (max thread)
  std::vector<double> thread_seconds;   ///< per worker
  std::vector<double> thread_cycles;    ///< busy core cycles per worker
};

/// Estimate the slice timing. `cpu_load[cpu]` is the total number of busy
/// threads placed on each hardware thread (including workers of this slice
/// and anything else the scheduler placed there).
TimingResult estimate_slice(const MachineModel& model,
                            const hwsim::SimMachine& machine,
                            const std::vector<ThreadWork>& work,
                            const std::vector<int>& cpu_load,
                            const TimingOptions& options = {});

}  // namespace likwid::perfmodel
