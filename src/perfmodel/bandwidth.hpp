// bandwidth.hpp — shared-resource bandwidth allocation.
//
// Threads demand bandwidth from shared domains (a socket's memory
// controller, a shared last-level cache). Each thread has its own rate cap
// (what one core can pull) and each domain has a capacity (what the
// controller sustains). The allocator performs iterative proportional
// scaling ("waterfilling"): any over-subscribed domain squeezes its
// consumers proportionally until all constraints hold. This produces the
// saturation behaviour central to the STREAM case study: one thread cannot
// saturate a socket, a few threads can, extra threads add nothing.
#pragma once

#include <vector>

namespace likwid::perfmodel {

/// One consumer of shared bandwidth.
struct BandwidthDemand {
  /// Desired rate in GB/s, already capped by the thread's own ability.
  double desired_gbs = 0.0;
  /// Fraction of this thread's traffic that targets each domain
  /// (must sum to 1 when desired_gbs > 0).
  std::vector<double> domain_fraction;
};

/// Compute achieved per-thread rates under per-domain capacities.
/// Returns achieved GB/s per thread (same order as `demands`).
/// Runs a fixed number of proportional-scaling sweeps; exact for a single
/// binding domain and within ~1% for the multi-domain cases in this code.
std::vector<double> allocate_bandwidth(
    const std::vector<BandwidthDemand>& demands,
    const std::vector<double>& domain_capacity_gbs);

}  // namespace likwid::perfmodel
