#include "hwsim/events.hpp"

namespace likwid::hwsim {

std::string_view event_id_name(EventId id) noexcept {
  switch (id) {
    case EventId::kInstructionsRetired: return "instructions_retired";
    case EventId::kCoreCycles: return "core_cycles";
    case EventId::kRefCycles: return "ref_cycles";
    case EventId::kFpPackedDouble: return "fp_packed_double";
    case EventId::kFpScalarDouble: return "fp_scalar_double";
    case EventId::kFpPackedSingle: return "fp_packed_single";
    case EventId::kFpScalarSingle: return "fp_scalar_single";
    case EventId::kLoadsRetired: return "loads_retired";
    case EventId::kStoresRetired: return "stores_retired";
    case EventId::kBranchesRetired: return "branches_retired";
    case EventId::kBranchesMispredicted: return "branches_mispredicted";
    case EventId::kDtlbMisses: return "dtlb_misses";
    case EventId::kItlbMisses: return "itlb_misses";
    case EventId::kL1DLinesIn: return "l1d_lines_in";
    case EventId::kL1DLinesOut: return "l1d_lines_out";
    case EventId::kL2Requests: return "l2_requests";
    case EventId::kL2Misses: return "l2_misses";
    case EventId::kL2LinesIn: return "l2_lines_in";
    case EventId::kL2LinesOut: return "l2_lines_out";
    case EventId::kHwPrefetchesIssued: return "hw_prefetches_issued";
    case EventId::kBusTransMem: return "bus_trans_mem";
    case EventId::kUncL3LinesIn: return "unc_l3_lines_in";
    case EventId::kUncL3LinesOut: return "unc_l3_lines_out";
    case EventId::kUncL3Hits: return "unc_l3_hits";
    case EventId::kUncL3Misses: return "unc_l3_misses";
    case EventId::kUncMemReads: return "unc_mem_reads";
    case EventId::kUncMemWrites: return "unc_mem_writes";
    case EventId::kUncClockticks: return "unc_clockticks";
    case EventId::kCount: return "count";
  }
  return "unknown";
}

}  // namespace likwid::hwsim
