// presets.hpp — ready-made MachineSpecs for the systems the paper uses and
// the architectures likwid-perfctr supports.
//
// Memory-system numbers are expressed as *traffic* bandwidth (bytes moved
// across the memory controller, including write-allocate transfers); the
// STREAM benchmark reports lower numbers because it counts only 24 B per
// triad iteration while write-allocate moves 32 B.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hwsim/machine_spec.hpp"

namespace likwid::hwsim::presets {

/// Dual-socket Intel Westmere EP (2 x 6 cores x 2 SMT, 2.93 GHz) — the
/// machine of the paper's topology listing and STREAM case study. Physical
/// core ids within a socket are the non-contiguous 0,1,2,8,9,10.
MachineSpec westmere_ep();

/// Dual-socket Intel Nehalem EP (2 x 4 cores x 2 SMT, 2.66 GHz) — the
/// machine of the stencil case studies (Fig. 11, Table II).
MachineSpec nehalem_ep();

/// Intel Core 2 Quad 45nm (1 x 4 cores, 2.83 GHz, two 6 MB L2 islands) —
/// the machine of the FLOPS_DP marker-mode listing.
MachineSpec core2_quad();

/// Intel Core 2 Duo 65nm (1 x 2 cores, 2.40 GHz) — the likwid-features
/// example machine.
MachineSpec core2_duo();

/// Intel Atom (1 core, 2 SMT threads, in-order).
MachineSpec atom();

/// Intel Pentium M Banias (single core; cache parameters only through the
/// cpuid leaf-2 descriptor table).
MachineSpec pentium_m();

/// Intel Pentium M Dothan (90nm shrink of Banias: 2 MB L2, higher clock;
/// still leaf-2-only cache discovery). The paper's support list names
/// "Pentium M (Banias, Dothan)" explicitly.
MachineSpec pentium_m_dothan();

/// Intel Core 2 Duo 45nm (Penryn E8400: 2 cores sharing one 6 MB L2) —
/// the "all variants" of the paper's Core 2 support entry.
MachineSpec core2_penryn();

/// Single-socket Intel Nehalem (Bloomfield Core i7-920: 4 cores x 2 SMT,
/// 8 MB L3, triple-channel DDR3, uncore PMU) — the desktop variant of the
/// paper's "Nehalem (all variants, including uncore events)".
MachineSpec nehalem_bloomfield();

/// Dual-core Intel Atom 330 (2 cores x 2 SMT, private 512 kB L2 per core).
MachineSpec atom_330();

/// Dual-socket AMD K10 Barcelona (2 x 4 cores, small 2 MB shared L3).
MachineSpec amd_barcelona();

/// Dual-socket single-core AMD K8 (Opteron 250) — the oldest "K8 (all
/// variants)" shape: no shared caches, one core per NUMA domain.
MachineSpec amd_k8_single_core();

/// Dual-socket AMD K8 (2 x 2 cores, no shared caches).
MachineSpec amd_k8();

/// Dual-socket AMD K10 Istanbul (2 x 6 cores, shared L3) — the machine of
/// the STREAM Figs. 9/10.
MachineSpec amd_istanbul();

/// Dual-socket AMD K10 Shanghai (2 x 4 cores, shared L3).
MachineSpec amd_shanghai();

/// All presets with stable lookup keys ("westmere-ep", "core2-quad", ...).
struct NamedPreset {
  std::string key;
  std::function<MachineSpec()> factory;
};
const std::vector<NamedPreset>& all_presets();

/// Look up a preset by key; throws Error(kNotFound) listing valid keys.
MachineSpec preset_by_key(const std::string& key);

}  // namespace likwid::hwsim::presets
