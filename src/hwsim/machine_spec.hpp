// machine_spec.hpp — declarative description of a simulated x86 node.
//
// A MachineSpec is pure data: vendor identification, clock, socket/core/SMT
// layout (including non-contiguous physical core numbering as found on
// Westmere EP), the cache hierarchy, how topology and cache parameters are
// discoverable through cpuid, the PMU capabilities, and the memory system
// parameters that drive the bandwidth model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace likwid::hwsim {

enum class Vendor { kIntel, kAmd };

enum class CacheType { kData, kInstruction, kUnified };

/// How software can discover thread topology on this part.
enum class TopologyMethod {
  kIntelLeafB,    ///< cpuid leaf 0xB (Nehalem and newer)
  kIntelLegacy,   ///< cpuid leaf 1 + leaf 4 (Core 2, Atom, Pentium M)
  kAmdLeaf8,      ///< cpuid 0x80000008 NC field + initial APIC id
};

/// How software can discover cache parameters on this part.
enum class CacheMethod {
  kIntelLeaf4,        ///< deterministic cache parameters (Core 2 and newer)
  kIntelLeaf2,        ///< descriptor-table lookup (Pentium M)
  kAmdLegacyLeaves,   ///< 0x80000005 (L1) / 0x80000006 (L2+L3)
};

/// How the BIOS/OS assigns `processor` numbers to hardware threads. The
/// paper's motivation for cpuid-based probing: "how this numbering maps to
/// the node topology depends on BIOS settings and may even differ for
/// otherwise identical processors". The APIC ids never change — only the
/// os-id permutation does.
enum class OsEnumeration {
  kSmtLast,      ///< SMT-0 of every core first, then siblings (the paper's
                 ///< Westmere listing: os 0-11 physical, 12-23 siblings)
  kSmtAdjacent,  ///< SMT siblings adjacent (0,1 share a core)
  kSocketRoundRobin,  ///< consecutive os ids alternate sockets, SMT last
};

/// One level of the cache hierarchy. Instruction caches are included so
/// likwid-topology can report that it omits non-data caches, like the tool.
struct CacheLevelSpec {
  int level = 1;                       ///< 1, 2 or 3
  CacheType type = CacheType::kData;
  std::uint64_t size_bytes = 0;
  std::uint32_t associativity = 0;
  std::uint32_t line_size = 64;
  std::uint32_t shared_by_threads = 1; ///< hw threads sharing one instance
  bool inclusive = false;

  std::uint32_t num_sets() const {
    return static_cast<std::uint32_t>(size_bytes /
                                      (associativity * line_size));
  }
};

/// Performance monitoring capabilities.
struct PmuSpec {
  int num_gp_counters = 2;        ///< general-purpose core counters
  int gp_counter_bits = 48;       ///< width (Core 2: 40)
  int num_fixed_counters = 0;     ///< Intel fixed counters (INSTR, CLK, REF)
  bool has_global_ctrl = false;   ///< IA32_PERF_GLOBAL_CTRL present
  int num_uncore_counters = 0;    ///< Nehalem/Westmere socket-scope counters
  int uncore_counter_bits = 48;
};

/// Simple data-TLB model parameters (for the TLB event group).
struct TlbSpec {
  std::uint32_t entries = 64;
  std::uint32_t page_size = 4096;
};

/// Memory system parameters per NUMA domain (= socket on these machines).
struct MemorySpec {
  double socket_bandwidth_gbs = 20.0;   ///< saturated read+write bandwidth
  double thread_bandwidth_gbs = 10.0;   ///< what a single thread can sustain
  double remote_penalty = 0.7;          ///< multiplicative factor for remote
                                        ///< (other-NUMA-domain) traffic
  double latency_ns = 60.0;
};

/// Prefetchers present on the part (all toggleable through
/// IA32_MISC_ENABLE on Intel; AMD parts expose none here, matching the
/// paper's "likwid-features currently only works for Intel Core 2").
struct PrefetcherSpec {
  bool hardware_prefetcher = false;   ///< L2 streamer
  bool adjacent_line = false;         ///< buddy-line prefetch into L2
  bool dcu_prefetcher = false;        ///< L1 streaming prefetcher
  bool ip_prefetcher = false;         ///< L1 stride predictor keyed by IP
};

/// Full description of one simulated node.
struct MachineSpec {
  std::string name;            ///< likwid-style display name
  std::string brand_string;    ///< cpuid brand string (leaves 0x80000002-4)
  Vendor vendor = Vendor::kIntel;
  std::uint32_t family = 6;
  std::uint32_t model = 0;
  std::uint32_t stepping = 0;
  double clock_ghz = 2.0;

  int sockets = 1;
  int cores_per_socket = 1;
  int threads_per_core = 1;

  /// Physical (APIC) core numbers within a socket. Size must equal
  /// cores_per_socket. Westmere EP famously uses {0,1,2,8,9,10}.
  std::vector<int> core_apic_ids;

  TopologyMethod topology_method = TopologyMethod::kIntelLegacy;
  CacheMethod cache_method = CacheMethod::kIntelLeaf4;
  OsEnumeration os_enumeration = OsEnumeration::kSmtLast;

  std::vector<CacheLevelSpec> caches;  ///< ordered by level, I$ after D$
  PmuSpec pmu;
  TlbSpec tlb;
  MemorySpec memory;
  PrefetcherSpec prefetchers;

  int num_hw_threads() const {
    return sockets * cores_per_socket * threads_per_core;
  }
  int numa_domains() const { return sockets; }

  /// Highest cache level that holds data (2 on Core 2 / K8, 3 on Nehalem).
  int last_level_cache() const;

  /// The data/unified cache spec at `level`; throws kNotFound if absent.
  const CacheLevelSpec& data_cache(int level) const;
  bool has_data_cache(int level) const noexcept;

  /// Validate internal consistency (sizes, counts, share factors);
  /// throws Error(kInvalidArgument) describing the first problem found.
  void validate() const;
};

std::string_view to_string(Vendor vendor) noexcept;
std::string_view to_string(CacheType type) noexcept;
std::string_view to_string(OsEnumeration e) noexcept;

/// Parse "smt-last" / "smt-adjacent" / "socket-rr" (the tools' --enum
/// option); throws Error(kInvalidArgument) otherwise.
OsEnumeration parse_os_enumeration(std::string_view text);

}  // namespace likwid::hwsim
