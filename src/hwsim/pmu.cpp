#include "hwsim/pmu.hpp"

#include <cmath>

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace likwid::hwsim {

using util::extract_bits;
using util::test_bit;

Pmu::Pmu(const MachineSpec& spec, Arch arch, MsrRegisterFile& regs,
         const std::vector<HwThread>& threads)
    : spec_(spec), arch_(arch), regs_(regs), threads_(threads) {}

void Pmu::accumulate(int cpu, std::uint32_t counter_reg, double count,
                     int width_bits) {
  if (count <= 0) return;
  const std::uint64_t old = regs_.read(cpu, counter_reg);
  const std::uint64_t added =
      static_cast<std::uint64_t>(std::llround(count));
  regs_.write(cpu, counter_reg, (old + added) & counter_mask(width_bits));
}

void Pmu::post_core(int cpu, const EventVector& ev) {
  // Advance the TSC by the reference cycles of this slice.
  const double ref = ev[EventId::kRefCycles];
  if (ref > 0) {
    const std::uint64_t tsc = regs_.read(cpu, msr::kTsc);
    regs_.write(cpu, msr::kTsc,
                tsc + static_cast<std::uint64_t>(std::llround(ref)));
  }
  if (spec_.vendor == Vendor::kIntel) {
    post_intel_core(cpu, ev);
  } else {
    post_amd_core(cpu, ev);
  }
}

void Pmu::post_intel_core(int cpu, const EventVector& ev) {
  const bool has_global = spec_.pmu.has_global_ctrl;
  const std::uint64_t global =
      has_global ? regs_.read(cpu, msr::kPerfGlobalCtrl) : ~std::uint64_t{0};

  // Fixed counters: FIXED_CTR_CTRL holds a 4-bit block per counter; any
  // non-zero ring-level selection means "count".
  if (spec_.pmu.num_fixed_counters > 0) {
    const std::uint64_t ctrl = regs_.read(cpu, msr::kFixedCtrCtrl);
    static constexpr EventId kFixedEvents[3] = {
        EventId::kInstructionsRetired, EventId::kCoreCycles,
        EventId::kRefCycles};
    for (int i = 0; i < spec_.pmu.num_fixed_counters && i < 3; ++i) {
      const std::uint64_t ring =
          extract_bits(ctrl, static_cast<unsigned>(4 * i),
                       static_cast<unsigned>(4 * i + 1));
      const bool globally_on = !has_global || test_bit(global, 32u + static_cast<unsigned>(i));
      if (ring != 0 && globally_on) {
        accumulate(cpu, msr::kFixedCtr0 + static_cast<std::uint32_t>(i),
                   ev[kFixedEvents[i]], 48);
      }
    }
  }

  for (int i = 0; i < spec_.pmu.num_gp_counters; ++i) {
    const std::uint64_t sel =
        regs_.read(cpu, msr::kPerfEvtSel0 + static_cast<std::uint32_t>(i));
    if (!test_bit(sel, msr::kEvtSelEnable)) continue;
    if (has_global && !test_bit(global, static_cast<unsigned>(i))) continue;
    // A counter with neither USR nor OS selected counts nothing.
    if (!test_bit(sel, msr::kEvtSelUsr) && !test_bit(sel, msr::kEvtSelOs)) {
      continue;
    }
    const auto event_code = static_cast<std::uint16_t>(
        extract_bits(sel, msr::kEvtSelEventLo, msr::kEvtSelEventHi));
    const auto umask = static_cast<std::uint8_t>(
        extract_bits(sel, msr::kEvtSelUmaskLo, msr::kEvtSelUmaskHi));
    const EventEncoding* enc =
        decode_event(arch_, event_code, umask, CounterClass::kCore);
    if (enc == nullptr || is_uncore_event(enc->id)) continue;
    accumulate(cpu, msr::kPmc0 + static_cast<std::uint32_t>(i), ev[enc->id],
               spec_.pmu.gp_counter_bits);
  }
}

void Pmu::post_amd_core(int cpu, const EventVector& ev) {
  for (int i = 0; i < spec_.pmu.num_gp_counters; ++i) {
    const std::uint64_t sel =
        regs_.read(cpu, msr::kAmdPerfCtl0 + static_cast<std::uint32_t>(i));
    if (!test_bit(sel, msr::kEvtSelEnable)) continue;
    if (!test_bit(sel, msr::kEvtSelUsr) && !test_bit(sel, msr::kEvtSelOs)) {
      continue;
    }
    const auto event_code = static_cast<std::uint16_t>(
        extract_bits(sel, msr::kEvtSelEventLo, msr::kEvtSelEventHi) |
        (extract_bits(sel, msr::kAmdEvtSelExtLo, msr::kAmdEvtSelExtHi) << 8));
    const auto umask = static_cast<std::uint8_t>(
        extract_bits(sel, msr::kEvtSelUmaskLo, msr::kEvtSelUmaskHi));
    const EventEncoding* enc =
        decode_event(arch_, event_code, umask, CounterClass::kCore);
    if (enc == nullptr || is_uncore_event(enc->id)) continue;
    accumulate(cpu, msr::kAmdPerfCtr0 + static_cast<std::uint32_t>(i),
               ev[enc->id], spec_.pmu.gp_counter_bits);
  }
}

void Pmu::post_uncore(int socket, const EventVector& ev) {
  LIKWID_REQUIRE(socket >= 0 && socket < spec_.sockets,
                 "post_uncore: socket out of range");
  if (spec_.vendor == Vendor::kIntel) {
    if (spec_.pmu.num_uncore_counters == 0) return;
    // Uncore MSRs are socket-scoped: reads/writes through any cpu of the
    // socket hit the same storage. Use the first hw thread of the socket.
    int socket_cpu = -1;
    for (const auto& t : threads_) {
      if (t.socket == socket) {
        socket_cpu = t.os_id;
        break;
      }
    }
    LIKWID_ASSERT(socket_cpu >= 0, "socket has no threads");
    const std::uint64_t global =
        regs_.read(socket_cpu, msr::kUncPerfGlobalCtrl);
    const std::uint64_t fixed_ctrl =
        regs_.read(socket_cpu, msr::kUncFixedCtrCtrl);
    if (test_bit(fixed_ctrl, 0) && test_bit(global, 32)) {
      accumulate(socket_cpu, msr::kUncFixedCtr0, ev[EventId::kUncClockticks],
                 spec_.pmu.uncore_counter_bits);
    }
    for (int i = 0; i < spec_.pmu.num_uncore_counters; ++i) {
      const std::uint64_t sel = regs_.read(
          socket_cpu, msr::kUncPerfEvtSel0 + static_cast<std::uint32_t>(i));
      if (!test_bit(sel, msr::kEvtSelEnable)) continue;
      if (!test_bit(global, static_cast<unsigned>(i))) continue;
      const auto event_code = static_cast<std::uint16_t>(
          extract_bits(sel, msr::kEvtSelEventLo, msr::kEvtSelEventHi));
      const auto umask = static_cast<std::uint8_t>(
          extract_bits(sel, msr::kEvtSelUmaskLo, msr::kEvtSelUmaskHi));
      const EventEncoding* enc =
          decode_event(arch_, event_code, umask, CounterClass::kUncore);
      if (enc == nullptr) continue;
      accumulate(socket_cpu, msr::kUncPmc0 + static_cast<std::uint32_t>(i),
                 ev[enc->id], spec_.pmu.uncore_counter_bits);
    }
    return;
  }

  // AMD: northbridge events are visible from every core of the socket.
  for (const auto& t : threads_) {
    if (t.socket != socket) continue;
    for (int i = 0; i < spec_.pmu.num_gp_counters; ++i) {
      const std::uint64_t sel = regs_.read(
          t.os_id, msr::kAmdPerfCtl0 + static_cast<std::uint32_t>(i));
      if (!test_bit(sel, msr::kEvtSelEnable)) continue;
      if (!test_bit(sel, msr::kEvtSelUsr) && !test_bit(sel, msr::kEvtSelOs)) {
        continue;
      }
      const auto event_code = static_cast<std::uint16_t>(
          extract_bits(sel, msr::kEvtSelEventLo, msr::kEvtSelEventHi) |
          (extract_bits(sel, msr::kAmdEvtSelExtLo, msr::kAmdEvtSelExtHi)
           << 8));
      const auto umask = static_cast<std::uint8_t>(
          extract_bits(sel, msr::kEvtSelUmaskLo, msr::kEvtSelUmaskHi));
      const EventEncoding* enc =
          decode_event(arch_, event_code, umask, CounterClass::kCore);
      if (enc == nullptr || !is_uncore_event(enc->id)) continue;
      accumulate(t.os_id, msr::kAmdPerfCtr0 + static_cast<std::uint32_t>(i),
                 ev[enc->id], spec_.pmu.gp_counter_bits);
    }
  }
}

}  // namespace likwid::hwsim
