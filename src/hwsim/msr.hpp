// msr.hpp — model-specific register (MSR) device for the simulated node.
//
// Mirrors the Linux `msr` kernel module semantics that likwid-perfctr and
// likwid-features rely on: per-cpu register files addressed by MSR number,
// with reads/writes failing (EIO analog: Error) for registers that do not
// exist on the part. Socket-scope ("uncore") registers are accessible from
// every hardware thread of the socket but share storage, exactly like the
// Nehalem uncore PMU block.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hwsim/machine_spec.hpp"

namespace likwid::hwsim {

/// Architectural MSR addresses used by the tool suite (Intel SDM /
/// AMD BKDG numbering).
namespace msr {
inline constexpr std::uint32_t kTsc = 0x10;
inline constexpr std::uint32_t kMiscEnable = 0x1A0;       // IA32_MISC_ENABLE
inline constexpr std::uint32_t kPmc0 = 0xC1;              // IA32_PMCx
inline constexpr std::uint32_t kPerfEvtSel0 = 0x186;      // IA32_PERFEVTSELx
inline constexpr std::uint32_t kFixedCtr0 = 0x309;        // IA32_FIXED_CTRx
inline constexpr std::uint32_t kFixedCtrCtrl = 0x38D;
inline constexpr std::uint32_t kPerfGlobalStatus = 0x38E;
inline constexpr std::uint32_t kPerfGlobalCtrl = 0x38F;
inline constexpr std::uint32_t kPerfGlobalOvfCtrl = 0x390;
// Nehalem/Westmere uncore PMU block (socket scope).
inline constexpr std::uint32_t kUncPerfGlobalCtrl = 0x391;
inline constexpr std::uint32_t kUncFixedCtr0 = 0x394;
inline constexpr std::uint32_t kUncFixedCtrCtrl = 0x395;
inline constexpr std::uint32_t kUncPmc0 = 0x3B0;          // ..0x3B7
inline constexpr std::uint32_t kUncPerfEvtSel0 = 0x3C0;   // ..0x3C7
// AMD K8/K10.
inline constexpr std::uint32_t kAmdPerfCtl0 = 0xC0010000; // ..3
inline constexpr std::uint32_t kAmdPerfCtr0 = 0xC0010004; // ..7

/// PERFEVTSEL / PERF_CTL bit fields shared by Intel and AMD encodings.
inline constexpr unsigned kEvtSelEventLo = 0, kEvtSelEventHi = 7;
inline constexpr unsigned kEvtSelUmaskLo = 8, kEvtSelUmaskHi = 15;
inline constexpr unsigned kEvtSelUsr = 16;
inline constexpr unsigned kEvtSelOs = 17;
inline constexpr unsigned kEvtSelEdge = 18;
inline constexpr unsigned kEvtSelPc = 19;
inline constexpr unsigned kEvtSelInt = 20;
inline constexpr unsigned kEvtSelAnyThread = 21;
inline constexpr unsigned kEvtSelEnable = 22;
inline constexpr unsigned kEvtSelInvert = 23;
inline constexpr unsigned kEvtSelCmaskLo = 24, kEvtSelCmaskHi = 31;
// AMD extended event-code bits [35:32] of PERF_CTL.
inline constexpr unsigned kAmdEvtSelExtLo = 32, kAmdEvtSelExtHi = 35;

/// IA32_MISC_ENABLE bits surfaced by likwid-features (Core 2 semantics).
inline constexpr unsigned kMiscFastStrings = 0;
inline constexpr unsigned kMiscThermalControl = 3;
inline constexpr unsigned kMiscPerfMonAvailable = 7;        // read-only
inline constexpr unsigned kMiscHwPrefetcherDisable = 9;
inline constexpr unsigned kMiscBtsUnavailable = 11;          // read-only
inline constexpr unsigned kMiscPebsUnavailable = 12;         // read-only
inline constexpr unsigned kMiscSpeedStep = 16;
inline constexpr unsigned kMiscMonitorMwait = 18;
inline constexpr unsigned kMiscAdjacentLineDisable = 19;
inline constexpr unsigned kMiscLimitCpuidMaxval = 22;
inline constexpr unsigned kMiscXdBitDisable = 34;
inline constexpr unsigned kMiscDcuPrefetcherDisable = 37;
inline constexpr unsigned kMiscIdaDisable = 38;
inline constexpr unsigned kMiscIpPrefetcherDisable = 39;
}  // namespace msr

/// Interposer on the MSR read path — the hook the fault-injection layer
/// (src/fault) uses to simulate flaky hardware: an implementation may
/// observe every read, substitute the returned value (stale / saturated
/// counters), or throw (the EIO / timeout failure modes of the real msr
/// kernel module). Reads are interposed AFTER the register file resolved
/// the register, so nonexistent registers still fail kNotFound first.
///
/// Thread-safety: the interposer is called on whichever thread reads the
/// register file; like the register file itself, one simulated node is
/// confined to one thread at a time, so implementations need no locking.
class MsrReadInterposer {
 public:
  virtual ~MsrReadInterposer() = default;

  /// Called for every read of an existing register. `value` is the real
  /// stored value; returning nullopt passes it through, returning a value
  /// substitutes it, throwing propagates to the reader.
  virtual std::optional<std::uint64_t> on_read(int cpu, std::uint32_t reg,
                                               std::uint64_t value) = 0;
};

/// Backing store for all MSRs of a machine. Registers are declared at
/// construction from the MachineSpec (which PMU registers exist, whether an
/// uncore block is present, Intel vs AMD register sets).
class MsrRegisterFile {
 public:
  explicit MsrRegisterFile(const MachineSpec& spec);

  /// Read MSR `reg` as hardware thread `cpu`.
  /// Throws Error(kNotFound) for unknown cpu or nonexistent register.
  std::uint64_t read(int cpu, std::uint32_t reg) const;

  /// Write MSR `reg` as hardware thread `cpu`. Read-only bits are silently
  /// preserved (matching hardware, which ignores or faults on such writes;
  /// the msr device swallows the distinction). Unknown registers throw
  /// Error(kNotFound); fully read-only registers throw Error(kPermission).
  void write(int cpu, std::uint32_t reg, std::uint64_t value);

  /// True if the register exists on this machine.
  bool exists(std::uint32_t reg) const noexcept;

  int num_threads() const noexcept { return num_threads_; }

  /// Reset every register to its power-on value.
  void reset();

  /// Install (or, with nullptr, remove) a read interposer. The register
  /// file shares ownership so an armed fault device cannot dangle.
  void set_read_interposer(std::shared_ptr<MsrReadInterposer> interposer) {
    interposer_ = std::move(interposer);
  }
  MsrReadInterposer* read_interposer() const noexcept {
    return interposer_.get();
  }

 private:
  enum class Scope { kThread, kSocket };
  struct RegisterInfo {
    Scope scope = Scope::kThread;
    std::uint64_t writable_mask = ~std::uint64_t{0};
    std::uint64_t reset_value = 0;
  };

  void declare(std::uint32_t reg, Scope scope, std::uint64_t writable_mask,
               std::uint64_t reset_value = 0);
  int socket_of(int cpu) const;

  const MachineSpec& spec_;
  int num_threads_ = 0;
  std::unordered_map<std::uint32_t, RegisterInfo> registry_;
  // storage_[thread or socket index][reg] — flat per-scope maps.
  std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> thread_regs_;
  std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> socket_regs_;
  std::shared_ptr<MsrReadInterposer> interposer_;
};

}  // namespace likwid::hwsim
