#include "hwsim/machine_spec.hpp"

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace likwid::hwsim {

int MachineSpec::last_level_cache() const {
  int last = 0;
  for (const auto& c : caches) {
    if (c.type != CacheType::kInstruction) last = std::max(last, c.level);
  }
  return last;
}

bool MachineSpec::has_data_cache(int level) const noexcept {
  for (const auto& c : caches) {
    if (c.level == level && c.type != CacheType::kInstruction) return true;
  }
  return false;
}

const CacheLevelSpec& MachineSpec::data_cache(int level) const {
  for (const auto& c : caches) {
    if (c.level == level && c.type != CacheType::kInstruction) return c;
  }
  throw_error(ErrorCode::kNotFound,
              "no data cache at level " + std::to_string(level));
}

void MachineSpec::validate() const {
  LIKWID_REQUIRE(!name.empty(), "machine name empty");
  LIKWID_REQUIRE(sockets >= 1 && cores_per_socket >= 1 && threads_per_core >= 1,
                 "non-positive topology extent");
  LIKWID_REQUIRE(threads_per_core <= 2, "more than 2 SMT threads unsupported");
  LIKWID_REQUIRE(clock_ghz > 0.1 && clock_ghz < 10.0, "implausible clock");
  LIKWID_REQUIRE(static_cast<int>(core_apic_ids.size()) == cores_per_socket,
                 "core_apic_ids size must equal cores_per_socket");
  for (std::size_t i = 1; i < core_apic_ids.size(); ++i) {
    LIKWID_REQUIRE(core_apic_ids[i] > core_apic_ids[i - 1],
                   "core_apic_ids must be strictly increasing");
  }
  LIKWID_REQUIRE(!caches.empty(), "machine needs at least an L1 cache");
  LIKWID_REQUIRE(has_data_cache(1), "machine needs an L1 data cache");
  for (const auto& c : caches) {
    LIKWID_REQUIRE(c.level >= 1 && c.level <= 3, "cache level out of range");
    LIKWID_REQUIRE(c.size_bytes > 0 && c.associativity > 0 && c.line_size > 0,
                   "cache with zero geometry");
    LIKWID_REQUIRE(util::is_pow2(c.line_size), "line size must be power of 2");
    LIKWID_REQUIRE(c.size_bytes % (c.associativity * c.line_size) == 0,
                   "cache size not divisible into sets");
    LIKWID_REQUIRE(c.shared_by_threads >= 1 &&
                       static_cast<int>(c.shared_by_threads) <=
                           cores_per_socket * threads_per_core,
                   "cache share factor exceeds socket thread count");
    LIKWID_REQUIRE((cores_per_socket * threads_per_core) %
                           static_cast<int>(c.shared_by_threads) ==
                       0,
                   "cache share factor must divide socket thread count");
  }
  LIKWID_REQUIRE(pmu.num_gp_counters >= 1, "PMU needs at least one counter");
  LIKWID_REQUIRE(pmu.gp_counter_bits >= 32 && pmu.gp_counter_bits <= 64,
                 "counter width out of range");
  LIKWID_REQUIRE(memory.socket_bandwidth_gbs > 0 &&
                     memory.thread_bandwidth_gbs > 0,
                 "memory bandwidth must be positive");
  LIKWID_REQUIRE(memory.thread_bandwidth_gbs <= memory.socket_bandwidth_gbs,
                 "single thread cannot exceed socket bandwidth");
  LIKWID_REQUIRE(tlb.entries > 0 && util::is_pow2(tlb.page_size),
                 "bad TLB spec");
}

std::string_view to_string(Vendor vendor) noexcept {
  switch (vendor) {
    case Vendor::kIntel: return "Intel";
    case Vendor::kAmd: return "AMD";
  }
  return "?";
}

std::string_view to_string(CacheType type) noexcept {
  switch (type) {
    case CacheType::kData: return "Data cache";
    case CacheType::kInstruction: return "Instruction cache";
    case CacheType::kUnified: return "Unified cache";
  }
  return "?";
}

std::string_view to_string(OsEnumeration e) noexcept {
  switch (e) {
    case OsEnumeration::kSmtLast: return "smt-last";
    case OsEnumeration::kSmtAdjacent: return "smt-adjacent";
    case OsEnumeration::kSocketRoundRobin: return "socket-rr";
  }
  return "?";
}

OsEnumeration parse_os_enumeration(std::string_view text) {
  if (text == "smt-last") return OsEnumeration::kSmtLast;
  if (text == "smt-adjacent") return OsEnumeration::kSmtAdjacent;
  if (text == "socket-rr") return OsEnumeration::kSocketRoundRobin;
  throw_error(ErrorCode::kInvalidArgument,
              "unknown os enumeration '" + std::string(text) +
                  "' (smt-last, smt-adjacent, socket-rr)");
}

}  // namespace likwid::hwsim
