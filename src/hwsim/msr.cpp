#include "hwsim/msr.hpp"

#include "util/bitops.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::hwsim {

namespace {

std::uint64_t misc_enable_reset(const MachineSpec& spec) {
  using namespace msr;
  std::uint64_t v = 0;
  v = util::assign_bit(v, kMiscFastStrings, true);
  v = util::assign_bit(v, kMiscThermalControl, true);
  v = util::assign_bit(v, kMiscPerfMonAvailable, true);
  v = util::assign_bit(v, kMiscBtsUnavailable, false);   // 0: BTS supported
  v = util::assign_bit(v, kMiscPebsUnavailable, false);  // 0: PEBS supported
  v = util::assign_bit(v, kMiscSpeedStep, true);
  v = util::assign_bit(v, kMiscMonitorMwait, true);
  v = util::assign_bit(v, kMiscXdBitDisable, true);
  // All prefetchers enabled (disable bits clear); Dynamic Acceleration off.
  v = util::assign_bit(v, kMiscIdaDisable, true);
  (void)spec;
  return v;
}

std::uint64_t misc_enable_writable() {
  using namespace msr;
  std::uint64_t m = 0;
  m = util::assign_bit(m, kMiscFastStrings, true);
  m = util::assign_bit(m, kMiscThermalControl, true);
  m = util::assign_bit(m, kMiscHwPrefetcherDisable, true);
  m = util::assign_bit(m, kMiscSpeedStep, true);
  m = util::assign_bit(m, kMiscMonitorMwait, true);
  m = util::assign_bit(m, kMiscAdjacentLineDisable, true);
  m = util::assign_bit(m, kMiscLimitCpuidMaxval, true);
  m = util::assign_bit(m, kMiscXdBitDisable, true);
  m = util::assign_bit(m, kMiscDcuPrefetcherDisable, true);
  m = util::assign_bit(m, kMiscIdaDisable, true);
  m = util::assign_bit(m, kMiscIpPrefetcherDisable, true);
  return m;
}

}  // namespace

MsrRegisterFile::MsrRegisterFile(const MachineSpec& spec)
    : spec_(spec), num_threads_(spec.num_hw_threads()) {
  thread_regs_.resize(static_cast<std::size_t>(num_threads_));
  socket_regs_.resize(static_cast<std::size_t>(spec.sockets));

  declare(msr::kTsc, Scope::kThread, ~std::uint64_t{0});

  if (spec.vendor == Vendor::kIntel) {
    declare(msr::kMiscEnable, Scope::kThread, misc_enable_writable(),
            misc_enable_reset(spec));
    for (int i = 0; i < spec.pmu.num_gp_counters; ++i) {
      declare(msr::kPmc0 + static_cast<std::uint32_t>(i), Scope::kThread,
              ~std::uint64_t{0});
      declare(msr::kPerfEvtSel0 + static_cast<std::uint32_t>(i),
              Scope::kThread, ~std::uint64_t{0});
    }
    for (int i = 0; i < spec.pmu.num_fixed_counters; ++i) {
      declare(msr::kFixedCtr0 + static_cast<std::uint32_t>(i), Scope::kThread,
              ~std::uint64_t{0});
    }
    if (spec.pmu.num_fixed_counters > 0) {
      declare(msr::kFixedCtrCtrl, Scope::kThread, ~std::uint64_t{0});
    }
    if (spec.pmu.has_global_ctrl) {
      declare(msr::kPerfGlobalCtrl, Scope::kThread, ~std::uint64_t{0});
      declare(msr::kPerfGlobalStatus, Scope::kThread, 0);  // read-only
      declare(msr::kPerfGlobalOvfCtrl, Scope::kThread, ~std::uint64_t{0});
    }
    if (spec.pmu.num_uncore_counters > 0) {
      declare(msr::kUncPerfGlobalCtrl, Scope::kSocket, ~std::uint64_t{0});
      declare(msr::kUncFixedCtr0, Scope::kSocket, ~std::uint64_t{0});
      declare(msr::kUncFixedCtrCtrl, Scope::kSocket, ~std::uint64_t{0});
      for (int i = 0; i < spec.pmu.num_uncore_counters; ++i) {
        declare(msr::kUncPmc0 + static_cast<std::uint32_t>(i), Scope::kSocket,
                ~std::uint64_t{0});
        declare(msr::kUncPerfEvtSel0 + static_cast<std::uint32_t>(i),
                Scope::kSocket, ~std::uint64_t{0});
      }
    }
  } else {
    for (int i = 0; i < spec.pmu.num_gp_counters; ++i) {
      declare(msr::kAmdPerfCtl0 + static_cast<std::uint32_t>(i),
              Scope::kThread, ~std::uint64_t{0});
      declare(msr::kAmdPerfCtr0 + static_cast<std::uint32_t>(i),
              Scope::kThread, ~std::uint64_t{0});
    }
  }
}

void MsrRegisterFile::declare(std::uint32_t reg, Scope scope,
                              std::uint64_t writable_mask,
                              std::uint64_t reset_value) {
  registry_[reg] = RegisterInfo{scope, writable_mask, reset_value};
  if (scope == Scope::kThread) {
    for (auto& regs : thread_regs_) regs[reg] = reset_value;
  } else {
    for (auto& regs : socket_regs_) regs[reg] = reset_value;
  }
}

int MsrRegisterFile::socket_of(int cpu) const {
  const int threads_per_socket =
      spec_.cores_per_socket * spec_.threads_per_core;
  // OS numbering is SMT-major (see apic.cpp): the socket of os id `cpu` is
  // (cpu / cores_per_socket) % sockets for each SMT block.
  const int within_smt_block = cpu % (spec_.sockets * spec_.cores_per_socket);
  (void)threads_per_socket;
  return within_smt_block / spec_.cores_per_socket;
}

bool MsrRegisterFile::exists(std::uint32_t reg) const noexcept {
  return registry_.count(reg) != 0;
}

std::uint64_t MsrRegisterFile::read(int cpu, std::uint32_t reg) const {
  LIKWID_REQUIRE(cpu >= 0 && cpu < num_threads_,
                 "msr read: cpu " + std::to_string(cpu) + " out of range");
  const auto it = registry_.find(reg);
  if (it == registry_.end()) {
    throw_error(ErrorCode::kNotFound,
                util::strprintf("msr 0x%X does not exist on %s", reg,
                                spec_.name.c_str()));
  }
  const std::uint64_t value =
      it->second.scope == Scope::kThread
          ? thread_regs_[static_cast<std::size_t>(cpu)].at(reg)
          : socket_regs_[static_cast<std::size_t>(socket_of(cpu))].at(reg);
  if (interposer_ != nullptr) {
    if (const auto injected = interposer_->on_read(cpu, reg, value)) {
      return *injected;
    }
  }
  return value;
}

void MsrRegisterFile::write(int cpu, std::uint32_t reg, std::uint64_t value) {
  LIKWID_REQUIRE(cpu >= 0 && cpu < num_threads_,
                 "msr write: cpu " + std::to_string(cpu) + " out of range");
  const auto it = registry_.find(reg);
  if (it == registry_.end()) {
    throw_error(ErrorCode::kNotFound,
                util::strprintf("msr 0x%X does not exist on %s", reg,
                                spec_.name.c_str()));
  }
  const RegisterInfo& info = it->second;
  if (info.writable_mask == 0) {
    throw_error(ErrorCode::kPermission,
                util::strprintf("msr 0x%X is read-only", reg));
  }
  auto& regs = info.scope == Scope::kThread
                   ? thread_regs_[static_cast<std::size_t>(cpu)]
                   : socket_regs_[static_cast<std::size_t>(socket_of(cpu))];
  const std::uint64_t old = regs.at(reg);
  regs[reg] = (old & ~info.writable_mask) | (value & info.writable_mask);
}

void MsrRegisterFile::reset() {
  for (const auto& [reg, info] : registry_) {
    if (info.scope == Scope::kThread) {
      for (auto& regs : thread_regs_) regs[reg] = info.reset_value;
    } else {
      for (auto& regs : socket_regs_) regs[reg] = info.reset_value;
    }
  }
}

}  // namespace likwid::hwsim
