// arch.hpp — microarchitecture classification and per-architecture
// performance event encoding tables.
//
// This is the "vendor manual" of the simulated hardware: the mapping from
// documented event names (SIMD_COMP_INST_RETIRED_PACKED_DOUBLE, ...) and
// their (event-code, umask) encodings onto the abstract events the machine
// model generates. likwid-perfctr looks events up by name here, programs
// the encodings into PERFEVTSEL MSRs, and the PMU decodes those encodings
// back through the same table — exactly the round trip real hardware does.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hwsim/events.hpp"
#include "hwsim/machine_spec.hpp"

namespace likwid::hwsim {

/// Microarchitectures supported by the tool suite (the paper's list).
enum class Arch {
  kPentiumM,
  kAtom,
  kCore2,
  kNehalem,
  kWestmere,
  kK8,
  kK10,
};

std::string_view to_string(Arch arch) noexcept;

/// Classify a machine from its cpuid identity (vendor/family/model).
/// Throws Error(kUnsupported) for unknown parts — the same behaviour
/// likwid-perfctr shows on unsupported processors.
Arch classify_arch(Vendor vendor, std::uint32_t family, std::uint32_t model);

/// Where an event can be counted.
enum class CounterClass {
  kCore,     ///< general-purpose core counters (PMC0..)
  kFixed,    ///< Intel fixed counters (always-on INSTR/CLK/REF)
  kUncore,   ///< Nehalem/Westmere socket-scope counters (UPMC0..)
};

/// One row of an architecture's event table.
struct EventEncoding {
  std::string name;          ///< documented event name
  std::uint16_t event_code;  ///< selector event field (AMD: up to 12 bits)
  std::uint8_t umask;
  EventId id;                ///< semantic event counted by the model
  CounterClass klass = CounterClass::kCore;
  int fixed_index = -1;      ///< for kFixed: which fixed counter
};

/// The complete event table of an architecture (stable reference).
const std::vector<EventEncoding>& event_table(Arch arch);

/// Look up an event by name; returns nullptr if the architecture does not
/// document this event.
const EventEncoding* find_event(Arch arch, std::string_view name);

/// Reverse lookup used by the PMU: which semantic event does the encoding
/// (event_code, umask) select on this architecture? Returns nullptr for
/// undocumented encodings (such a counter simply never increments).
const EventEncoding* decode_event(Arch arch, std::uint16_t event_code,
                                  std::uint8_t umask, CounterClass klass);

}  // namespace likwid::hwsim
