// cpuid.hpp — emulation of the x86 `cpuid` instruction for a simulated node.
//
// The emulator produces bit-exact register images for the leaves that
// likwid-topology consumes on real hardware:
//   0x0        vendor string + max leaf
//   0x1        family/model/stepping, logical count, initial APIC id, HTT
//   0x2        cache descriptor table (Pentium M era)
//   0x4        deterministic cache parameters (Core 2 and newer)
//   0xA        architectural performance monitoring
//   0xB        extended topology enumeration (Nehalem and newer)
//   0x8000000x brand string, AMD L1/L2/L3 parameters, AMD core count
//
// The topology decoder in src/core/topology.cpp never sees the MachineSpec:
// it reconstructs everything from these leaves, exactly as the real tool
// reconstructs it from silicon.
#pragma once

#include <cstdint>

#include "hwsim/apic.hpp"
#include "hwsim/machine_spec.hpp"

namespace likwid::hwsim {

/// Output registers of one cpuid invocation.
struct CpuidRegs {
  std::uint32_t eax = 0;
  std::uint32_t ebx = 0;
  std::uint32_t ecx = 0;
  std::uint32_t edx = 0;
};

/// Emulates `cpuid` as executed on a specific hardware thread of a machine.
class CpuidEmulator {
 public:
  /// `spec` must outlive the emulator. Throws Error(kUnsupported) if the
  /// spec requests leaf-2 cache reporting with a cache geometry that has no
  /// descriptor code.
  explicit CpuidEmulator(const MachineSpec& spec);

  /// Execute cpuid with EAX=leaf, ECX=subleaf on hardware thread `thread`.
  /// Unknown leaves return all-zero registers (sufficient for the decoder,
  /// which always gates on the max-leaf values).
  CpuidRegs query(const HwThread& thread, std::uint32_t leaf,
                  std::uint32_t subleaf = 0) const;

  std::uint32_t max_standard_leaf() const noexcept { return max_std_leaf_; }
  std::uint32_t max_extended_leaf() const noexcept { return max_ext_leaf_; }

 private:
  CpuidRegs leaf0() const;
  CpuidRegs leaf1(const HwThread& thread) const;
  CpuidRegs leaf2() const;
  CpuidRegs leaf4(std::uint32_t subleaf) const;
  CpuidRegs leafA() const;
  CpuidRegs leafB(const HwThread& thread, std::uint32_t subleaf) const;
  CpuidRegs ext_leaf(const HwThread& thread, std::uint32_t leaf) const;

  const MachineSpec& spec_;
  ApicLayout layout_;
  std::uint32_t max_std_leaf_ = 0;
  std::uint32_t max_ext_leaf_ = 0;
};

/// Intel leaf-2 cache descriptor table entry (the subset this project
/// emulates; values match the Intel SDM descriptor encodings).
struct CacheDescriptor {
  std::uint8_t code;
  int level;
  CacheType type;
  std::uint32_t size_kb;
  std::uint32_t associativity;
  std::uint32_t line_size;
};

/// All descriptors known to the emulator/decoder.
const std::vector<CacheDescriptor>& cache_descriptor_table();

/// Find the descriptor code for a cache spec; returns nullptr if the
/// geometry has no known descriptor.
const CacheDescriptor* find_descriptor(const CacheLevelSpec& cache);

/// Look up a descriptor by code; returns nullptr for unknown codes.
const CacheDescriptor* find_descriptor(std::uint8_t code);

/// AMD L2/L3 associativity field encoding (cpuid 0x80000006).
/// Returns 0xF ("fully associative") for values not representable.
std::uint32_t amd_assoc_code(std::uint32_t ways);
/// Inverse mapping; returns 0 for reserved codes.
std::uint32_t amd_assoc_ways(std::uint32_t code, std::uint32_t full_ways);

}  // namespace likwid::hwsim
