#include "hwsim/presets.hpp"

#include "util/status.hpp"

namespace likwid::hwsim::presets {

namespace {

CacheLevelSpec cache(int level, CacheType type, std::uint64_t size,
                     std::uint32_t assoc, std::uint32_t shared_by,
                     bool inclusive, std::uint32_t line = 64) {
  CacheLevelSpec c;
  c.level = level;
  c.type = type;
  c.size_bytes = size;
  c.associativity = assoc;
  c.line_size = line;
  c.shared_by_threads = shared_by;
  c.inclusive = inclusive;
  return c;
}

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;

}  // namespace

MachineSpec westmere_ep() {
  MachineSpec m;
  m.name = "Intel Westmere EP processor";
  m.brand_string = "Intel(R) Xeon(R) CPU X5670 @ 2.93GHz";
  m.vendor = Vendor::kIntel;
  m.family = 6;
  m.model = 0x2C;
  m.stepping = 2;
  m.clock_ghz = 2.93;
  m.sockets = 2;
  m.cores_per_socket = 6;
  m.threads_per_core = 2;
  m.core_apic_ids = {0, 1, 2, 8, 9, 10};
  m.topology_method = TopologyMethod::kIntelLeafB;
  m.cache_method = CacheMethod::kIntelLeaf4;
  m.caches = {
      cache(1, CacheType::kData, 32 * kKiB, 8, 2, true),
      cache(1, CacheType::kInstruction, 32 * kKiB, 4, 2, true),
      cache(2, CacheType::kUnified, 256 * kKiB, 8, 2, true),
      cache(3, CacheType::kUnified, 12 * kMiB, 16, 12, false),
  };
  m.pmu = PmuSpec{4, 48, 3, true, 8, 48};
  m.tlb = TlbSpec{64, 4096};
  m.memory = MemorySpec{28.0, 14.0, 0.7, 65.0};
  m.prefetchers = PrefetcherSpec{true, true, true, true};
  return m;
}

MachineSpec nehalem_ep() {
  MachineSpec m;
  m.name = "Intel Nehalem EP processor";
  m.brand_string = "Intel(R) Xeon(R) CPU X5550 @ 2.66GHz";
  m.vendor = Vendor::kIntel;
  m.family = 6;
  m.model = 0x1A;
  m.stepping = 5;
  m.clock_ghz = 2.66;
  m.sockets = 2;
  m.cores_per_socket = 4;
  m.threads_per_core = 2;
  m.core_apic_ids = {0, 1, 2, 3};
  m.topology_method = TopologyMethod::kIntelLeafB;
  m.cache_method = CacheMethod::kIntelLeaf4;
  m.caches = {
      cache(1, CacheType::kData, 32 * kKiB, 8, 2, true),
      cache(1, CacheType::kInstruction, 32 * kKiB, 4, 2, true),
      cache(2, CacheType::kUnified, 256 * kKiB, 8, 2, true),
      cache(3, CacheType::kUnified, 8 * kMiB, 16, 8, false),
  };
  m.pmu = PmuSpec{4, 48, 3, true, 8, 48};
  m.tlb = TlbSpec{64, 4096};
  m.memory = MemorySpec{19.0, 9.5, 0.7, 65.0};
  m.prefetchers = PrefetcherSpec{true, true, true, true};
  return m;
}

MachineSpec core2_quad() {
  MachineSpec m;
  m.name = "Intel Core 2 45nm processor";
  m.brand_string = "Intel(R) Core(TM)2 Quad CPU Q9550 @ 2.83GHz";
  m.vendor = Vendor::kIntel;
  m.family = 6;
  m.model = 0x17;
  m.stepping = 6;
  m.clock_ghz = 2.83;
  m.sockets = 1;
  m.cores_per_socket = 4;
  m.threads_per_core = 1;
  m.core_apic_ids = {0, 1, 2, 3};
  m.topology_method = TopologyMethod::kIntelLegacy;
  m.cache_method = CacheMethod::kIntelLeaf4;
  m.caches = {
      cache(1, CacheType::kData, 32 * kKiB, 8, 1, true),
      cache(1, CacheType::kInstruction, 32 * kKiB, 8, 1, true),
      cache(2, CacheType::kUnified, 6 * kMiB, 24, 2, true),
  };
  m.pmu = PmuSpec{2, 40, 3, true, 0, 48};
  m.tlb = TlbSpec{64, 4096};
  m.memory = MemorySpec{8.0, 4.5, 1.0, 85.0};
  m.prefetchers = PrefetcherSpec{true, true, true, true};
  return m;
}

MachineSpec core2_duo() {
  MachineSpec m;
  m.name = "Intel Core 2 65nm processor";
  m.brand_string = "Intel(R) Core(TM)2 CPU 6600 @ 2.40GHz";
  m.vendor = Vendor::kIntel;
  m.family = 6;
  m.model = 0x0F;
  m.stepping = 6;
  m.clock_ghz = 2.40;
  m.sockets = 1;
  m.cores_per_socket = 2;
  m.threads_per_core = 1;
  m.core_apic_ids = {0, 1};
  m.topology_method = TopologyMethod::kIntelLegacy;
  m.cache_method = CacheMethod::kIntelLeaf4;
  m.caches = {
      cache(1, CacheType::kData, 32 * kKiB, 8, 1, true),
      cache(1, CacheType::kInstruction, 32 * kKiB, 8, 1, true),
      cache(2, CacheType::kUnified, 4 * kMiB, 16, 2, true),
  };
  m.pmu = PmuSpec{2, 40, 3, true, 0, 48};
  m.tlb = TlbSpec{64, 4096};
  m.memory = MemorySpec{6.4, 4.0, 1.0, 90.0};
  m.prefetchers = PrefetcherSpec{true, true, true, true};
  return m;
}

MachineSpec atom() {
  MachineSpec m;
  m.name = "Intel Atom processor";
  m.brand_string = "Intel(R) Atom(TM) CPU N270 @ 1.60GHz";
  m.vendor = Vendor::kIntel;
  m.family = 6;
  m.model = 0x1C;
  m.stepping = 2;
  m.clock_ghz = 1.60;
  m.sockets = 1;
  m.cores_per_socket = 1;
  m.threads_per_core = 2;
  m.core_apic_ids = {0};
  m.topology_method = TopologyMethod::kIntelLegacy;
  m.cache_method = CacheMethod::kIntelLeaf4;
  m.caches = {
      cache(1, CacheType::kData, 24 * kKiB, 6, 2, true),
      cache(1, CacheType::kInstruction, 32 * kKiB, 8, 2, true),
      cache(2, CacheType::kUnified, 512 * kKiB, 8, 2, true),
  };
  m.pmu = PmuSpec{2, 40, 3, true, 0, 48};
  m.tlb = TlbSpec{64, 4096};
  m.memory = MemorySpec{3.0, 2.0, 1.0, 110.0};
  m.prefetchers = PrefetcherSpec{true, false, true, false};
  return m;
}

MachineSpec pentium_m() {
  MachineSpec m;
  m.name = "Intel Pentium M processor";
  m.brand_string = "Intel(R) Pentium(R) M processor 1.60GHz";
  m.vendor = Vendor::kIntel;
  m.family = 6;
  m.model = 0x09;  // Banias
  m.stepping = 5;
  m.clock_ghz = 1.60;
  m.sockets = 1;
  m.cores_per_socket = 1;
  m.threads_per_core = 1;
  m.core_apic_ids = {0};
  m.topology_method = TopologyMethod::kIntelLegacy;
  m.cache_method = CacheMethod::kIntelLeaf2;
  m.caches = {
      cache(1, CacheType::kData, 32 * kKiB, 8, 1, true),
      cache(1, CacheType::kInstruction, 32 * kKiB, 8, 1, true),
      cache(2, CacheType::kUnified, 1 * kMiB, 8, 1, true),
  };
  m.pmu = PmuSpec{2, 40, 0, false, 0, 48};
  m.tlb = TlbSpec{64, 4096};
  m.memory = MemorySpec{3.2, 2.5, 1.0, 120.0};
  m.prefetchers = PrefetcherSpec{true, false, false, false};
  return m;
}

MachineSpec pentium_m_dothan() {
  MachineSpec m = pentium_m();
  m.name = "Intel Pentium M (Dothan) processor";
  m.brand_string = "Intel(R) Pentium(R) M processor 2.13GHz";
  m.model = 0x0D;  // Dothan
  m.stepping = 8;
  m.clock_ghz = 2.13;
  for (auto& c : m.caches) {
    if (c.level == 2) c.size_bytes = 2 * kMiB;  // leaf-2 descriptor 0x7D
  }
  m.memory = MemorySpec{3.6, 2.8, 1.0, 115.0};
  return m;
}

MachineSpec core2_penryn() {
  MachineSpec m = core2_duo();
  m.name = "Intel Core 2 45nm processor";
  m.brand_string = "Intel(R) Core(TM)2 Duo CPU E8400 @ 3.00GHz";
  m.model = 0x17;  // Penryn
  m.stepping = 6;
  m.clock_ghz = 3.00;
  for (auto& c : m.caches) {
    if (c.level == 2) {
      c.size_bytes = 6 * kMiB;
      c.associativity = 24;
    }
  }
  m.memory = MemorySpec{8.5, 5.0, 1.0, 80.0};
  return m;
}

MachineSpec nehalem_bloomfield() {
  MachineSpec m = nehalem_ep();
  m.name = "Intel Core i7 processor";
  m.brand_string = "Intel(R) Core(TM) i7 CPU 920 @ 2.67GHz";
  m.model = 0x1A;  // Bloomfield shares the EP model number
  m.stepping = 4;
  m.clock_ghz = 2.67;
  m.sockets = 1;  // desktop part: one socket, one NUMA domain
  m.memory = MemorySpec{17.0, 9.5, 1.0, 60.0};
  return m;
}

MachineSpec atom_330() {
  MachineSpec m = atom();
  m.name = "Intel Atom processor";
  m.brand_string = "Intel(R) Atom(TM) CPU 330 @ 1.60GHz";
  m.cores_per_socket = 2;
  m.core_apic_ids = {0, 1};
  // Diamondville 330 is two Atom dies on one package: the 512 kB L2 stays
  // private to each core (shared only by its two SMT threads).
  m.memory = MemorySpec{4.0, 2.0, 1.0, 110.0};
  return m;
}

MachineSpec amd_k8() {
  MachineSpec m;
  m.name = "AMD K8 processor";
  m.brand_string = "Dual Core AMD Opteron(tm) Processor 275";
  m.vendor = Vendor::kAmd;
  m.family = 0x0F;
  m.model = 0x21;
  m.stepping = 2;
  m.clock_ghz = 2.20;
  m.sockets = 2;
  m.cores_per_socket = 2;
  m.threads_per_core = 1;
  m.core_apic_ids = {0, 1};
  m.topology_method = TopologyMethod::kAmdLeaf8;
  m.cache_method = CacheMethod::kAmdLegacyLeaves;
  m.caches = {
      cache(1, CacheType::kData, 64 * kKiB, 2, 1, false),
      cache(1, CacheType::kInstruction, 64 * kKiB, 2, 1, false),
      cache(2, CacheType::kUnified, 1 * kMiB, 16, 1, false),
  };
  m.pmu = PmuSpec{4, 48, 0, false, 0, 48};
  m.tlb = TlbSpec{32, 4096};
  m.memory = MemorySpec{6.4, 4.0, 0.6, 95.0};
  m.prefetchers = PrefetcherSpec{};  // not exposed, as in the paper
  return m;
}

MachineSpec amd_k8_single_core() {
  MachineSpec m = amd_k8();
  m.name = "AMD K8 processor";
  m.brand_string = "AMD Opteron(tm) Processor 250";
  m.model = 0x05;
  m.stepping = 10;
  m.clock_ghz = 2.40;
  m.cores_per_socket = 1;
  m.core_apic_ids = {0};
  m.memory = MemorySpec{5.8, 4.2, 0.6, 95.0};
  return m;
}

MachineSpec amd_istanbul() {
  MachineSpec m;
  m.name = "AMD K10 (Istanbul) processor";
  m.brand_string = "Six-Core AMD Opteron(tm) Processor 2435";
  m.vendor = Vendor::kAmd;
  m.family = 0x10;
  m.model = 0x08;
  m.stepping = 0;
  m.clock_ghz = 2.60;
  m.sockets = 2;
  m.cores_per_socket = 6;
  m.threads_per_core = 1;
  m.core_apic_ids = {0, 1, 2, 3, 4, 5};
  m.topology_method = TopologyMethod::kAmdLeaf8;
  m.cache_method = CacheMethod::kAmdLegacyLeaves;
  m.caches = {
      cache(1, CacheType::kData, 64 * kKiB, 2, 1, false),
      cache(1, CacheType::kInstruction, 64 * kKiB, 2, 1, false),
      cache(2, CacheType::kUnified, 512 * kKiB, 16, 1, false),
      cache(3, CacheType::kUnified, 6 * kMiB, 48, 6, false),
  };
  m.pmu = PmuSpec{4, 48, 0, false, 0, 48};
  m.tlb = TlbSpec{48, 4096};
  m.memory = MemorySpec{15.5, 7.5, 0.6, 75.0};
  m.prefetchers = PrefetcherSpec{};
  return m;
}

MachineSpec amd_barcelona() {
  MachineSpec m = amd_istanbul();
  m.name = "AMD K10 (Barcelona) processor";
  m.brand_string = "Quad-Core AMD Opteron(tm) Processor 2356";
  m.model = 0x02;
  m.stepping = 3;
  m.clock_ghz = 2.30;
  m.cores_per_socket = 4;
  m.core_apic_ids = {0, 1, 2, 3};
  for (auto& c : m.caches) {
    if (c.level == 3) {
      c.size_bytes = 2 * kMiB;  // Barcelona's small first-generation L3
      c.associativity = 32;
      c.shared_by_threads = 4;
    }
  }
  m.memory = MemorySpec{12.0, 6.0, 0.6, 85.0};
  return m;
}

MachineSpec amd_shanghai() {
  MachineSpec m = amd_istanbul();
  m.name = "AMD K10 (Shanghai) processor";
  m.brand_string = "Quad-Core AMD Opteron(tm) Processor 2378";
  m.model = 0x04;
  m.clock_ghz = 2.40;
  m.cores_per_socket = 4;
  m.core_apic_ids = {0, 1, 2, 3};
  for (auto& c : m.caches) {
    if (c.level == 3) c.shared_by_threads = 4;  // L3 spans the 4 cores
  }
  m.memory = MemorySpec{14.5, 7.0, 0.6, 78.0};
  return m;
}

const std::vector<NamedPreset>& all_presets() {
  static const std::vector<NamedPreset> kPresets = {
      {"westmere-ep", westmere_ep},
      {"nehalem-ep", nehalem_ep},
      {"nehalem-bloomfield", nehalem_bloomfield},
      {"core2-quad", core2_quad},
      {"core2-duo", core2_duo},
      {"core2-penryn", core2_penryn},
      {"atom", atom},
      {"atom-330", atom_330},
      {"pentium-m", pentium_m},
      {"pentium-m-dothan", pentium_m_dothan},
      {"amd-k8", amd_k8},
      {"amd-k8-sc", amd_k8_single_core},
      {"amd-barcelona", amd_barcelona},
      {"amd-istanbul", amd_istanbul},
      {"amd-shanghai", amd_shanghai},
  };
  return kPresets;
}

MachineSpec preset_by_key(const std::string& key) {
  for (const auto& p : all_presets()) {
    if (p.key == key) return p.factory();
  }
  std::string valid;
  for (const auto& p : all_presets()) {
    if (!valid.empty()) valid += ", ";
    valid += p.key;
  }
  throw_error(ErrorCode::kNotFound,
              "unknown machine preset '" + key + "' (valid: " + valid + ")");
}

}  // namespace likwid::hwsim::presets
