#include "hwsim/cpuid.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace likwid::hwsim {

using util::deposit_bits;
using util::next_pow2;

namespace {

std::uint32_t pack4(const char* s) {
  std::uint32_t v = 0;
  std::memcpy(&v, s, 4);
  return v;
}

}  // namespace

const std::vector<CacheDescriptor>& cache_descriptor_table() {
  // Subset of the Intel SDM leaf-2 descriptor encodings, enough to describe
  // the Pentium M-era parts this project models.
  static const std::vector<CacheDescriptor> kTable = {
      {0x2C, 1, CacheType::kData, 32, 8, 64},
      {0x30, 1, CacheType::kInstruction, 32, 8, 64},
      {0x60, 1, CacheType::kData, 16, 8, 64},
      {0x7D, 2, CacheType::kUnified, 2048, 8, 64},
      {0x86, 2, CacheType::kUnified, 512, 4, 64},
      {0x87, 2, CacheType::kUnified, 1024, 8, 64},
  };
  return kTable;
}

const CacheDescriptor* find_descriptor(const CacheLevelSpec& cache) {
  for (const auto& d : cache_descriptor_table()) {
    const bool type_match =
        d.type == cache.type ||
        (d.type == CacheType::kUnified && cache.type == CacheType::kData);
    if (d.level == cache.level && type_match &&
        d.size_kb * 1024ull == cache.size_bytes &&
        d.associativity == cache.associativity &&
        d.line_size == cache.line_size) {
      return &d;
    }
  }
  return nullptr;
}

const CacheDescriptor* find_descriptor(std::uint8_t code) {
  for (const auto& d : cache_descriptor_table()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::uint32_t amd_assoc_code(std::uint32_t ways) {
  switch (ways) {
    case 0: return 0x0;
    case 1: return 0x1;
    case 2: return 0x2;
    case 4: return 0x4;
    case 8: return 0x6;
    case 16: return 0x8;
    case 32: return 0xA;
    case 48: return 0xB;
    case 64: return 0xC;
    case 96: return 0xD;
    case 128: return 0xE;
    default: return 0xF;
  }
}

std::uint32_t amd_assoc_ways(std::uint32_t code, std::uint32_t full_ways) {
  switch (code) {
    case 0x0: return 0;
    case 0x1: return 1;
    case 0x2: return 2;
    case 0x4: return 4;
    case 0x6: return 8;
    case 0x8: return 16;
    case 0xA: return 32;
    case 0xB: return 48;
    case 0xC: return 64;
    case 0xD: return 96;
    case 0xE: return 128;
    case 0xF: return full_ways;
    default: return 0;
  }
}

CpuidEmulator::CpuidEmulator(const MachineSpec& spec)
    : spec_(spec), layout_(apic_layout(spec)) {
  switch (spec_.topology_method) {
    case TopologyMethod::kIntelLeafB:
      max_std_leaf_ = 0xB;
      break;
    case TopologyMethod::kIntelLegacy:
      max_std_leaf_ = spec_.cache_method == CacheMethod::kIntelLeaf2 ? 0x2 : 0xA;
      break;
    case TopologyMethod::kAmdLeaf8:
      max_std_leaf_ = 0x1;
      break;
  }
  max_ext_leaf_ = 0x80000008;
  if (spec_.cache_method == CacheMethod::kIntelLeaf2) {
    // Verify every cache is describable before anything queries leaf 2.
    for (const auto& c : spec_.caches) {
      if (find_descriptor(c) == nullptr) {
        throw_error(ErrorCode::kUnsupported,
                    "cache level " + std::to_string(c.level) +
                        " has no leaf-2 descriptor encoding");
      }
    }
  }
}

CpuidRegs CpuidEmulator::query(const HwThread& thread, std::uint32_t leaf,
                               std::uint32_t subleaf) const {
  if (leaf >= 0x80000000u) {
    if (leaf > max_ext_leaf_) return {};
    return ext_leaf(thread, leaf);
  }
  if (leaf > max_std_leaf_) return {};
  switch (leaf) {
    case 0x0: return leaf0();
    case 0x1: return leaf1(thread);
    case 0x2:
      return spec_.cache_method == CacheMethod::kIntelLeaf2 ? leaf2()
                                                            : CpuidRegs{};
    case 0x4:
      return spec_.cache_method == CacheMethod::kIntelLeaf4 ? leaf4(subleaf)
                                                            : CpuidRegs{};
    case 0xA:
      return spec_.vendor == Vendor::kIntel ? leafA() : CpuidRegs{};
    case 0xB:
      return spec_.topology_method == TopologyMethod::kIntelLeafB
                 ? leafB(thread, subleaf)
                 : CpuidRegs{};
    default: return {};
  }
}

CpuidRegs CpuidEmulator::leaf0() const {
  CpuidRegs r;
  r.eax = max_std_leaf_;
  if (spec_.vendor == Vendor::kIntel) {
    r.ebx = pack4("Genu");
    r.edx = pack4("ineI");
    r.ecx = pack4("ntel");
  } else {
    r.ebx = pack4("Auth");
    r.edx = pack4("enti");
    r.ecx = pack4("cAMD");
  }
  return r;
}

CpuidRegs CpuidEmulator::leaf1(const HwThread& thread) const {
  CpuidRegs r;
  // EAX: stepping / model / family with extended fields.
  const std::uint32_t base_family = std::min<std::uint32_t>(spec_.family, 0xF);
  const std::uint32_t ext_family =
      spec_.family > 0xF ? spec_.family - 0xF : 0;
  const std::uint32_t base_model = spec_.model & 0xF;
  const std::uint32_t ext_model = (spec_.model >> 4) & 0xF;
  std::uint64_t eax = 0;
  eax = deposit_bits(eax, 0, 3, spec_.stepping);
  eax = deposit_bits(eax, 4, 7, base_model);
  eax = deposit_bits(eax, 8, 11, base_family);
  eax = deposit_bits(eax, 16, 19, ext_model);
  eax = deposit_bits(eax, 20, 27, ext_family);
  r.eax = static_cast<std::uint32_t>(eax);

  const int logical_per_pkg = spec_.cores_per_socket * spec_.threads_per_core;
  std::uint64_t ebx = 0;
  ebx = deposit_bits(ebx, 8, 15, spec_.caches[0].line_size / 8);  // CLFLUSH
  ebx = deposit_bits(ebx, 16, 23, static_cast<std::uint32_t>(logical_per_pkg));
  ebx = deposit_bits(ebx, 24, 31, thread.apic_id & 0xFF);  // initial APIC id
  r.ebx = static_cast<std::uint32_t>(ebx);

  // EDX feature flags: TSC(4), MSR(5), APIC(9), SSE(25), SSE2(26), HTT(28).
  std::uint64_t edx = 0;
  edx = util::assign_bit(edx, 4, true);
  edx = util::assign_bit(edx, 5, true);
  edx = util::assign_bit(edx, 9, true);
  edx = util::assign_bit(edx, 25, true);
  edx = util::assign_bit(edx, 26, true);
  edx = util::assign_bit(edx, 28, logical_per_pkg > 1);
  r.edx = static_cast<std::uint32_t>(edx);

  // ECX: SSE3(0), SSSE3(9), MONITOR(3).
  std::uint64_t ecx = 0;
  ecx = util::assign_bit(ecx, 0, true);
  ecx = util::assign_bit(ecx, 3, true);
  ecx = util::assign_bit(ecx, 9, spec_.vendor == Vendor::kIntel);
  r.ecx = static_cast<std::uint32_t>(ecx);
  return r;
}

CpuidRegs CpuidEmulator::leaf2() const {
  // Byte 0 of EAX is the iteration count (always 1 on everything likwid
  // supports); remaining bytes hold descriptor codes. The high bit of a
  // register being clear marks it as valid.
  std::vector<std::uint8_t> codes;
  for (const auto& c : spec_.caches) {
    const CacheDescriptor* d = find_descriptor(c);
    LIKWID_ASSERT(d != nullptr, "undescribable cache checked in constructor");
    codes.push_back(d->code);
  }
  LIKWID_REQUIRE(codes.size() <= 14, "too many caches for leaf-2 encoding");

  std::array<std::uint8_t, 16> bytes{};
  bytes[0] = 0x01;  // run cpuid(2) once
  // Bit 31 of each output register signals "no valid descriptors" — a
  // descriptor >= 0x80 must therefore never occupy a register's top byte
  // (offsets 3/7/11/15). Insert a null descriptor to slide it past.
  std::size_t pos = 1;
  for (const std::uint8_t code : codes) {
    if (pos % 4 == 3 && code >= 0x80) ++pos;
    LIKWID_REQUIRE(pos < bytes.size(), "too many caches for leaf-2 encoding");
    bytes[pos++] = code;
  }

  const auto reg = [&bytes](std::size_t base) {
    return static_cast<std::uint32_t>(bytes[base]) |
           (static_cast<std::uint32_t>(bytes[base + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes[base + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes[base + 3]) << 24);
  };
  CpuidRegs r;
  r.eax = reg(0);
  r.ebx = reg(4);
  r.ecx = reg(8);
  r.edx = reg(12);
  return r;
}

CpuidRegs CpuidEmulator::leaf4(std::uint32_t subleaf) const {
  if (subleaf >= spec_.caches.size()) return {};  // type 0: no more caches
  const CacheLevelSpec& c = spec_.caches[subleaf];

  std::uint32_t type_code = 0;
  switch (c.type) {
    case CacheType::kData: type_code = 1; break;
    case CacheType::kInstruction: type_code = 2; break;
    case CacheType::kUnified: type_code = 3; break;
  }

  CpuidRegs r;
  std::uint64_t eax = 0;
  eax = deposit_bits(eax, 0, 4, type_code);
  eax = deposit_bits(eax, 5, 7, static_cast<std::uint32_t>(c.level));
  eax = deposit_bits(eax, 8, 8, 1);  // self initializing
  // Maximum addressable ids sharing this cache: power-of-two capacity - 1,
  // exactly like real silicon (Westmere L3 shared by 12 reports 15 here).
  eax = deposit_bits(eax, 14, 25,
                     next_pow2(c.shared_by_threads) - 1);
  eax = deposit_bits(
      eax, 26, 31,
      next_pow2(static_cast<std::uint32_t>(spec_.cores_per_socket)) - 1);
  r.eax = static_cast<std::uint32_t>(eax);

  std::uint64_t ebx = 0;
  ebx = deposit_bits(ebx, 0, 11, c.line_size - 1);
  ebx = deposit_bits(ebx, 12, 21, 0);  // partitions - 1
  ebx = deposit_bits(ebx, 22, 31, c.associativity - 1);
  r.ebx = static_cast<std::uint32_t>(ebx);

  r.ecx = c.num_sets() - 1;
  r.edx = c.inclusive ? 0x2u : 0x0u;  // bit 1: cache inclusiveness
  return r;
}

CpuidRegs CpuidEmulator::leafA() const {
  CpuidRegs r;
  std::uint64_t eax = 0;
  const std::uint32_t version = spec_.pmu.num_fixed_counters > 0 ? 3 : 1;
  eax = deposit_bits(eax, 0, 7, version);
  eax = deposit_bits(eax, 8, 15,
                     static_cast<std::uint32_t>(spec_.pmu.num_gp_counters));
  eax = deposit_bits(eax, 16, 23,
                     static_cast<std::uint32_t>(spec_.pmu.gp_counter_bits));
  r.eax = static_cast<std::uint32_t>(eax);
  std::uint64_t edx = 0;
  edx = deposit_bits(edx, 0, 4,
                     static_cast<std::uint32_t>(spec_.pmu.num_fixed_counters));
  edx = deposit_bits(edx, 5, 12, spec_.pmu.num_fixed_counters > 0 ? 48u : 0u);
  r.edx = static_cast<std::uint32_t>(edx);
  return r;
}

CpuidRegs CpuidEmulator::leafB(const HwThread& thread,
                               std::uint32_t subleaf) const {
  CpuidRegs r;
  r.edx = thread.apic_id;  // x2APIC id reported at every subleaf
  std::uint64_t ecx = deposit_bits(0, 0, 7, subleaf);
  if (subleaf == 0) {
    ecx = deposit_bits(ecx, 8, 15, 1);  // level type: SMT
    r.eax = layout_.smt_width;
    r.ebx = static_cast<std::uint32_t>(spec_.threads_per_core);
  } else if (subleaf == 1) {
    ecx = deposit_bits(ecx, 8, 15, 2);  // level type: core
    r.eax = layout_.package_shift();
    r.ebx = static_cast<std::uint32_t>(spec_.cores_per_socket *
                                       spec_.threads_per_core);
  } else {
    ecx = deposit_bits(ecx, 8, 15, 0);  // invalid level: enumeration ends
  }
  r.ecx = static_cast<std::uint32_t>(ecx);
  return r;
}

CpuidRegs CpuidEmulator::ext_leaf(const HwThread& thread,
                                  std::uint32_t leaf) const {
  CpuidRegs r;
  switch (leaf) {
    case 0x80000000u:
      r.eax = max_ext_leaf_;
      return r;
    case 0x80000002u:
    case 0x80000003u:
    case 0x80000004u: {
      char brand[48] = {};
      std::snprintf(brand, sizeof(brand), "%s", spec_.brand_string.c_str());
      const std::size_t off = (leaf - 0x80000002u) * 16;
      std::memcpy(&r.eax, brand + off + 0, 4);
      std::memcpy(&r.ebx, brand + off + 4, 4);
      std::memcpy(&r.ecx, brand + off + 8, 4);
      std::memcpy(&r.edx, brand + off + 12, 4);
      return r;
    }
    case 0x80000005u: {
      if (spec_.vendor != Vendor::kAmd) return {};
      // ECX: L1D (size KB | assoc | lines/tag | line size), EDX: L1I.
      const auto encode_l1 = [](const CacheLevelSpec& c) {
        std::uint64_t v = 0;
        v = deposit_bits(v, 0, 7, c.line_size);
        v = deposit_bits(v, 8, 15, 1);
        v = deposit_bits(v, 16, 23, c.associativity);
        v = deposit_bits(v, 24, 31,
                         static_cast<std::uint32_t>(c.size_bytes / 1024));
        return static_cast<std::uint32_t>(v);
      };
      for (const auto& c : spec_.caches) {
        if (c.level == 1 && c.type == CacheType::kData) r.ecx = encode_l1(c);
        if (c.level == 1 && c.type == CacheType::kInstruction)
          r.edx = encode_l1(c);
      }
      return r;
    }
    case 0x80000006u: {
      if (spec_.vendor != Vendor::kAmd) return {};
      for (const auto& c : spec_.caches) {
        if (c.level == 2 && c.type != CacheType::kInstruction) {
          std::uint64_t v = 0;
          v = deposit_bits(v, 0, 7, c.line_size);
          v = deposit_bits(v, 12, 15, amd_assoc_code(c.associativity));
          v = deposit_bits(v, 16, 31,
                           static_cast<std::uint32_t>(c.size_bytes / 1024));
          r.ecx = static_cast<std::uint32_t>(v);
        }
        if (c.level == 3 && c.type != CacheType::kInstruction) {
          std::uint64_t v = 0;
          v = deposit_bits(v, 0, 7, c.line_size);
          v = deposit_bits(v, 12, 15, amd_assoc_code(c.associativity));
          // Size reported in 512 KB units.
          v = deposit_bits(
              v, 18, 31, static_cast<std::uint32_t>(c.size_bytes / (512 * 1024)));
          r.edx = static_cast<std::uint32_t>(v);
        }
      }
      return r;
    }
    case 0x80000008u: {
      if (spec_.vendor != Vendor::kAmd) return {};
      std::uint64_t ecx = 0;
      ecx = deposit_bits(ecx, 0, 7,
                         static_cast<std::uint32_t>(spec_.cores_per_socket - 1));
      ecx = deposit_bits(ecx, 12, 15, layout_.core_width + layout_.smt_width);
      r.ecx = static_cast<std::uint32_t>(ecx);
      // Reuse EBX/EDX zero; EAX: physical/virtual address sizes.
      r.eax = 0x3028;  // 48-bit virtual, 40-bit physical
      (void)thread;
      return r;
    }
    default:
      return {};
  }
}

}  // namespace likwid::hwsim
