// apic.hpp — APIC ID construction and hardware-thread enumeration.
//
// x86 encodes a hardware thread's position as bit fields inside its APIC ID:
// [ package | core | smt ]. Field widths are powers-of-two capacities, so
// core numbers may be non-contiguous (Westmere EP's 6 cores occupy a 4-bit
// field as 0,1,2,8,9,10). The OS assigns `processor` numbers (os ids)
// independently; this module reproduces the socket-major, SMT-last
// enumeration observed in the paper's likwid-topology listing.
#pragma once

#include <cstdint>
#include <vector>

#include "hwsim/machine_spec.hpp"

namespace likwid::hwsim {

/// One hardware thread of the simulated machine.
struct HwThread {
  int os_id = 0;              ///< Linux "processor" number
  std::uint32_t apic_id = 0;  ///< full (x2)APIC id
  int socket = 0;             ///< package index
  int core_apic = 0;          ///< physical core number within socket (may skip)
  int core_index = 0;         ///< dense core index within socket
  int smt = 0;                ///< thread index within core
  int global_core = 0;        ///< dense core index within the node
};

/// Bit-field widths of the APIC ID for a machine.
struct ApicLayout {
  unsigned smt_width = 0;   ///< bits [0, smt_width) select the SMT thread
  unsigned core_width = 0;  ///< next core_width bits select the core
  unsigned package_shift() const noexcept { return smt_width + core_width; }
};

/// Compute the APIC field layout for a machine spec. The core field must be
/// wide enough for the largest physical core id (not just the core count).
ApicLayout apic_layout(const MachineSpec& spec);

/// Compose an APIC ID from its parts.
std::uint32_t make_apic_id(const ApicLayout& layout, int socket, int core_apic,
                           int smt);

/// Decompose an APIC ID into (socket, core_apic, smt).
struct ApicParts {
  int socket;
  int core_apic;
  int smt;
};
ApicParts split_apic_id(const ApicLayout& layout, std::uint32_t apic_id);

/// Enumerate all hardware threads of the machine in OS order:
/// SMT-0 threads of all sockets first (socket-major, core-minor), then
/// SMT-1 threads, matching the paper's Westmere listing where os ids 0-11
/// are the physical cores and 12-23 their SMT siblings.
std::vector<HwThread> enumerate_hw_threads(const MachineSpec& spec);

}  // namespace likwid::hwsim
