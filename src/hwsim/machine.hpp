// machine.hpp — the SimMachine façade: one object per simulated node, tying
// together the spec, hardware-thread enumeration, cpuid emulation, MSR
// register file and PMU. Everything higher in the stack (OS simulation,
// cache simulation, the LIKWID tools) talks to the machine through this
// class.
#pragma once

#include <memory>
#include <vector>

#include "hwsim/apic.hpp"
#include "hwsim/arch.hpp"
#include "hwsim/cpuid.hpp"
#include "hwsim/events.hpp"
#include "hwsim/machine_spec.hpp"
#include "hwsim/msr.hpp"
#include "hwsim/pmu.hpp"

namespace likwid::hwsim {

class SimMachine {
 public:
  /// Validates the spec and builds all hardware state.
  explicit SimMachine(MachineSpec spec);

  SimMachine(const SimMachine&) = delete;
  SimMachine& operator=(const SimMachine&) = delete;

  const MachineSpec& spec() const noexcept { return spec_; }
  Arch arch() const noexcept { return arch_; }
  double clock_ghz() const noexcept { return spec_.clock_ghz; }

  int num_threads() const noexcept {
    return static_cast<int>(threads_.size());
  }
  const std::vector<HwThread>& threads() const noexcept { return threads_; }

  /// Hardware thread by OS processor number; throws kNotFound if invalid.
  const HwThread& thread(int os_id) const;

  int socket_of(int os_id) const { return thread(os_id).socket; }

  /// OS ids of all hardware threads on `socket`, ascending.
  std::vector<int> cpus_of_socket(int socket) const;

  /// OS ids of the SMT siblings sharing the physical core of `os_id`
  /// (including `os_id` itself), ascending.
  std::vector<int> core_siblings(int os_id) const;

  /// Execute cpuid on hardware thread `os_id`.
  CpuidRegs cpuid(int os_id, std::uint32_t leaf,
                  std::uint32_t subleaf = 0) const;

  MsrRegisterFile& msrs() noexcept { return *msrs_; }
  const MsrRegisterFile& msrs() const noexcept { return *msrs_; }

  /// Deliver execution events to the PMU (see Pmu documentation).
  void post_core_events(int os_id, const EventVector& ev);
  void post_uncore_events(int socket, const EventVector& ev);

  /// Prefetchers currently active on `os_id`: the part's prefetchers minus
  /// those disabled through IA32_MISC_ENABLE. AMD parts report their spec
  /// directly (no MISC_ENABLE modeled, as in the paper's likwid-features).
  PrefetcherSpec active_prefetchers(int os_id) const;

 private:
  MachineSpec spec_;
  Arch arch_;
  std::vector<HwThread> threads_;
  std::unique_ptr<CpuidEmulator> cpuid_;
  std::unique_ptr<MsrRegisterFile> msrs_;
  std::unique_ptr<Pmu> pmu_;
};

}  // namespace likwid::hwsim
