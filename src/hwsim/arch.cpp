#include "hwsim/arch.hpp"

#include <map>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::hwsim {

std::string_view to_string(Arch arch) noexcept {
  switch (arch) {
    case Arch::kPentiumM: return "Intel Pentium M";
    case Arch::kAtom: return "Intel Atom";
    case Arch::kCore2: return "Intel Core 2";
    case Arch::kNehalem: return "Intel Nehalem";
    case Arch::kWestmere: return "Intel Westmere";
    case Arch::kK8: return "AMD K8";
    case Arch::kK10: return "AMD K10";
  }
  return "unknown";
}

Arch classify_arch(Vendor vendor, std::uint32_t family, std::uint32_t model) {
  if (vendor == Vendor::kIntel && family == 6) {
    switch (model) {
      case 0x09:
      case 0x0D: return Arch::kPentiumM;   // Banias, Dothan
      case 0x1C: return Arch::kAtom;
      case 0x0F:
      case 0x16:
      case 0x17: return Arch::kCore2;      // Merom/Conroe 65nm, Penryn 45nm
      case 0x1A:
      case 0x1E:
      case 0x1F: return Arch::kNehalem;
      case 0x25:
      case 0x2C: return Arch::kWestmere;
      default: break;
    }
  }
  if (vendor == Vendor::kAmd) {
    if (family == 0x0F) return Arch::kK8;
    if (family == 0x10) return Arch::kK10;
  }
  throw_error(ErrorCode::kUnsupported,
              util::strprintf("unsupported processor (vendor %s family 0x%X "
                              "model 0x%X)",
                              std::string(to_string(vendor)).c_str(), family,
                              model));
}

namespace {

using CC = CounterClass;

EventEncoding fixed(std::string name, EventId id, int index) {
  return EventEncoding{std::move(name), 0, 0, id, CC::kFixed, index};
}

EventEncoding core(std::string name, std::uint16_t code, std::uint8_t umask,
                   EventId id) {
  return EventEncoding{std::move(name), code, umask, id, CC::kCore, -1};
}

EventEncoding uncore(std::string name, std::uint16_t code, std::uint8_t umask,
                     EventId id) {
  return EventEncoding{std::move(name), code, umask, id, CC::kUncore, -1};
}

// Intel Core 2 family table (also used for Atom, whose relevant events share
// the Core-2 era encodings). Encodings follow the Intel SDM event lists.
std::vector<EventEncoding> make_core2_table() {
  using E = EventId;
  std::vector<EventEncoding> t;
  t.push_back(fixed("INSTR_RETIRED_ANY", E::kInstructionsRetired, 0));
  t.push_back(fixed("CPU_CLK_UNHALTED_CORE", E::kCoreCycles, 1));
  t.push_back(fixed("CPU_CLK_UNHALTED_REF", E::kRefCycles, 2));
  t.push_back(core("INST_RETIRED_ANY_P", 0xC0, 0x00, E::kInstructionsRetired));
  t.push_back(core("CPU_CLK_UNHALTED_CORE_P", 0x3C, 0x00, E::kCoreCycles));
  t.push_back(core("SIMD_COMP_INST_RETIRED_PACKED_SINGLE", 0xCA, 0x01,
                   E::kFpPackedSingle));
  t.push_back(core("SIMD_COMP_INST_RETIRED_SCALAR_SINGLE", 0xCA, 0x02,
                   E::kFpScalarSingle));
  t.push_back(core("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0xCA, 0x04,
                   E::kFpPackedDouble));
  t.push_back(core("SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE", 0xCA, 0x08,
                   E::kFpScalarDouble));
  t.push_back(core("INST_RETIRED_LOADS", 0xC0, 0x01, E::kLoadsRetired));
  t.push_back(core("INST_RETIRED_STORES", 0xC0, 0x02, E::kStoresRetired));
  t.push_back(core("L1D_REPL", 0x45, 0x0F, E::kL1DLinesIn));
  t.push_back(core("L1D_M_EVICT", 0x47, 0x00, E::kL1DLinesOut));
  t.push_back(core("L2_LINES_IN_ANY", 0x24, 0x70, E::kL2LinesIn));
  t.push_back(core("L2_LINES_OUT_ANY", 0x26, 0x70, E::kL2LinesOut));
  t.push_back(core("L2_RQSTS_REFERENCES", 0x2E, 0x4F, E::kL2Requests));
  t.push_back(core("L2_RQSTS_MISS", 0x2E, 0x41, E::kL2Misses));
  t.push_back(core("BUS_TRANS_MEM", 0x6F, 0xC0, E::kBusTransMem));
  t.push_back(core("BR_INST_RETIRED_ANY", 0xC4, 0x00, E::kBranchesRetired));
  t.push_back(
      core("BR_INST_RETIRED_MISPRED", 0xC5, 0x00, E::kBranchesMispredicted));
  t.push_back(core("DTLB_MISSES_ANY", 0x08, 0x01, E::kDtlbMisses));
  t.push_back(core("ITLB_MISSES", 0x82, 0x02, E::kItlbMisses));
  t.push_back(
      core("L1D_PREFETCH_REQUESTS", 0x4E, 0x10, E::kHwPrefetchesIssued));
  return t;
}

// Intel Pentium M: two GP counters, no fixed counters, P6-era encodings.
std::vector<EventEncoding> make_pentium_m_table() {
  using E = EventId;
  std::vector<EventEncoding> t;
  t.push_back(core("INSTR_RETIRED", 0xC0, 0x00, E::kInstructionsRetired));
  t.push_back(core("CPU_CLK_UNHALTED", 0x79, 0x00, E::kCoreCycles));
  t.push_back(core("EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_SINGLE", 0xD9, 0x01,
                   E::kFpPackedSingle));
  t.push_back(core("EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_SINGLE", 0xD9, 0x02,
                   E::kFpScalarSingle));
  t.push_back(core("EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DOUBLE", 0xD9, 0x04,
                   E::kFpPackedDouble));
  t.push_back(core("EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DOUBLE", 0xD9, 0x08,
                   E::kFpScalarDouble));
  t.push_back(core("DCU_LINES_IN", 0x45, 0x00, E::kL1DLinesIn));
  t.push_back(core("L2_LINES_IN", 0x24, 0x00, E::kL2LinesIn));
  t.push_back(core("L2_LINES_OUT", 0x26, 0x00, E::kL2LinesOut));
  t.push_back(core("L2_RQSTS", 0x2E, 0x0F, E::kL2Requests));
  t.push_back(core("BUS_TRAN_MEM", 0x6F, 0x00, E::kBusTransMem));
  t.push_back(core("BR_INST_RETIRED", 0xC4, 0x00, E::kBranchesRetired));
  t.push_back(
      core("BR_MISPRED_RETIRED", 0xC5, 0x00, E::kBranchesMispredicted));
  return t;
}

// Intel Nehalem / Westmere core + uncore tables.
std::vector<EventEncoding> make_nehalem_table() {
  using E = EventId;
  std::vector<EventEncoding> t;
  t.push_back(fixed("INSTR_RETIRED_ANY", E::kInstructionsRetired, 0));
  t.push_back(fixed("CPU_CLK_UNHALTED_CORE", E::kCoreCycles, 1));
  t.push_back(fixed("CPU_CLK_UNHALTED_REF", E::kRefCycles, 2));
  t.push_back(core("INST_RETIRED_ANY_P", 0xC0, 0x01, E::kInstructionsRetired));
  t.push_back(core("CPU_CLK_UNHALTED_CORE_P", 0x3C, 0x00, E::kCoreCycles));
  t.push_back(core("FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE", 0x10, 0x10,
                   E::kFpPackedDouble));
  t.push_back(core("FP_COMP_OPS_EXE_SSE_FP_SCALAR_DOUBLE", 0x10, 0x20,
                   E::kFpScalarDouble));
  t.push_back(core("FP_COMP_OPS_EXE_SSE_FP_PACKED_SINGLE", 0x10, 0x40,
                   E::kFpPackedSingle));
  t.push_back(core("FP_COMP_OPS_EXE_SSE_FP_SCALAR_SINGLE", 0x10, 0x80,
                   E::kFpScalarSingle));
  t.push_back(core("MEM_INST_RETIRED_LOADS", 0x0B, 0x01, E::kLoadsRetired));
  t.push_back(core("MEM_INST_RETIRED_STORES", 0x0B, 0x02, E::kStoresRetired));
  t.push_back(core("L1D_REPL", 0x51, 0x01, E::kL1DLinesIn));
  t.push_back(core("L1D_M_EVICT", 0x51, 0x04, E::kL1DLinesOut));
  t.push_back(core("L2_LINES_IN_ANY", 0xF1, 0x07, E::kL2LinesIn));
  t.push_back(core("L2_LINES_OUT_ANY", 0xF2, 0x0F, E::kL2LinesOut));
  t.push_back(core("L2_RQSTS_REFERENCES", 0x24, 0xFF, E::kL2Requests));
  t.push_back(core("L2_RQSTS_MISS", 0x24, 0xAA, E::kL2Misses));
  t.push_back(core("BR_INST_RETIRED_ALL_BRANCHES", 0xC4, 0x04,
                   E::kBranchesRetired));
  t.push_back(core("BR_MISP_RETIRED_ALL_BRANCHES", 0xC5, 0x04,
                   E::kBranchesMispredicted));
  t.push_back(core("DTLB_MISSES_ANY", 0x49, 0x01, E::kDtlbMisses));
  t.push_back(core("ITLB_MISSES_ANY", 0x85, 0x01, E::kItlbMisses));
  t.push_back(
      core("L1D_PREFETCH_REQUESTS", 0x4E, 0x02, E::kHwPrefetchesIssued));
  // Socket-scope uncore events (the "socket lock" events of the paper).
  t.push_back(uncore("UNC_L3_LINES_IN_ANY", 0x0A, 0x0F, E::kUncL3LinesIn));
  t.push_back(uncore("UNC_L3_LINES_OUT_ANY", 0x0B, 0x0F, E::kUncL3LinesOut));
  t.push_back(uncore("UNC_L3_HITS_ANY", 0x08, 0x03, E::kUncL3Hits));
  t.push_back(uncore("UNC_L3_MISS_ANY", 0x09, 0x03, E::kUncL3Misses));
  t.push_back(
      uncore("UNC_QMC_NORMAL_READS_ANY", 0x2C, 0x07, E::kUncMemReads));
  t.push_back(
      uncore("UNC_QMC_WRITES_FULL_ANY", 0x2F, 0x07, E::kUncMemWrites));
  t.push_back(uncore("UNC_CLK_UNHALTED", 0xFF, 0x00, E::kUncClockticks));
  return t;
}

// AMD K8 (no L3, no NB memory events modeled beyond DRAM accesses).
std::vector<EventEncoding> make_k8_table() {
  using E = EventId;
  std::vector<EventEncoding> t;
  t.push_back(core("RETIRED_INSTRUCTIONS", 0xC0, 0x00,
                   E::kInstructionsRetired));
  t.push_back(core("CPU_CLOCKS_UNHALTED", 0x76, 0x00, E::kCoreCycles));
  t.push_back(core("SSE_RETIRED_PACKED_SINGLE", 0xCB, 0x01,
                   E::kFpPackedSingle));
  t.push_back(core("SSE_RETIRED_SCALAR_SINGLE", 0xCB, 0x02,
                   E::kFpScalarSingle));
  t.push_back(core("SSE_RETIRED_PACKED_DOUBLE", 0xCB, 0x04,
                   E::kFpPackedDouble));
  t.push_back(core("SSE_RETIRED_SCALAR_DOUBLE", 0xCB, 0x08,
                   E::kFpScalarDouble));
  t.push_back(core("DATA_CACHE_REFILLS_L2_AND_NB", 0x42, 0x1F,
                   E::kL1DLinesIn));
  t.push_back(core("DATA_CACHE_EVICTED_ALL", 0x44, 0x3F, E::kL1DLinesOut));
  t.push_back(core("REQUESTS_TO_L2_ALL", 0x7D, 0x07, E::kL2Requests));
  t.push_back(core("L2_CACHE_MISS_ALL", 0x7E, 0x07, E::kL2Misses));
  t.push_back(core("L2_FILL_WRITEBACK_FILL", 0x7F, 0x01, E::kL2LinesIn));
  t.push_back(core("L2_FILL_WRITEBACK_WB", 0x7F, 0x02, E::kL2LinesOut));
  t.push_back(core("RETIRED_BRANCH_INSTRUCTIONS", 0xC2, 0x00,
                   E::kBranchesRetired));
  t.push_back(core("RETIRED_MISPREDICTED_BRANCH_INSTRUCTIONS", 0xC3, 0x00,
                   E::kBranchesMispredicted));
  t.push_back(core("DTLB_L1_AND_L2_MISS", 0x46, 0x07, E::kDtlbMisses));
  // Northbridge DRAM events: counted on core counters, socket scope.
  t.push_back(core("DRAM_ACCESSES_DCT0_READ", 0xE0, 0x01, E::kUncMemReads));
  t.push_back(core("DRAM_ACCESSES_DCT0_WRITE", 0xE0, 0x02, E::kUncMemWrites));
  return t;
}

// AMD K10 (Shanghai/Istanbul): K8 set plus shared-L3 northbridge events.
std::vector<EventEncoding> make_k10_table() {
  using E = EventId;
  std::vector<EventEncoding> t = make_k8_table();
  t.push_back(core("READ_REQUEST_TO_L3_CACHE_ALL", 0x4E0 & 0xFFF, 0x07,
                   E::kUncL3Hits));
  t.push_back(core("L3_CACHE_MISSES_ALL", 0x4E1 & 0xFFF, 0x07,
                   E::kUncL3Misses));
  t.push_back(core("L3_FILLS_CAUSED_BY_L2_EVICTIONS", 0x4E2 & 0xFFF, 0x0F,
                   E::kUncL3LinesIn));
  t.push_back(core("L3_EVICTIONS", 0x4E3 & 0xFFF, 0x0F, E::kUncL3LinesOut));
  return t;
}

const std::map<Arch, std::vector<EventEncoding>>& all_tables() {
  static const std::map<Arch, std::vector<EventEncoding>> kTables = [] {
    std::map<Arch, std::vector<EventEncoding>> m;
    m[Arch::kPentiumM] = make_pentium_m_table();
    m[Arch::kAtom] = make_core2_table();
    m[Arch::kCore2] = make_core2_table();
    m[Arch::kNehalem] = make_nehalem_table();
    m[Arch::kWestmere] = make_nehalem_table();
    m[Arch::kK8] = make_k8_table();
    m[Arch::kK10] = make_k10_table();
    return m;
  }();
  return kTables;
}

}  // namespace

const std::vector<EventEncoding>& event_table(Arch arch) {
  return all_tables().at(arch);
}

const EventEncoding* find_event(Arch arch, std::string_view name) {
  for (const auto& e : event_table(arch)) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const EventEncoding* decode_event(Arch arch, std::uint16_t event_code,
                                  std::uint8_t umask, CounterClass klass) {
  for (const auto& e : event_table(arch)) {
    if (e.klass == klass && e.event_code == event_code && e.umask == umask) {
      return &e;
    }
  }
  return nullptr;
}

}  // namespace likwid::hwsim
