// pmu.hpp — the performance monitoring unit of the simulated machine.
//
// The PMU is purely reactive: the execution engine posts vectors of μarch
// events for a slice of execution, and every counter whose PERFEVTSEL
// programming (as found in the MSR register file at that moment) selects a
// matching event accumulates it. This reproduces the properties the paper
// leans on: counting is core-based, not process-based; counters only count
// while enabled; fixed counters always count INSTR/CLK/REF when switched
// on; uncore counters observe socket-level traffic regardless of which
// thread caused it.
#pragma once

#include <vector>

#include "hwsim/apic.hpp"
#include "hwsim/arch.hpp"
#include "hwsim/events.hpp"
#include "hwsim/machine_spec.hpp"
#include "hwsim/msr.hpp"

namespace likwid::hwsim {

class Pmu {
 public:
  /// All references must outlive the Pmu.
  Pmu(const MachineSpec& spec, Arch arch, MsrRegisterFile& regs,
      const std::vector<HwThread>& threads);

  /// Deliver core-scope events generated on hardware thread `cpu`.
  /// Counters not enabled at this moment miss the events forever (hardware
  /// has no queue), which is what makes wrapper-mode "overhead-free".
  void post_core(int cpu, const EventVector& ev);

  /// Deliver socket-scope events. On Intel parts with an uncore PMU these
  /// land in the socket's uncore counters; on AMD, northbridge events are
  /// observable from every core of the socket (each core counting an NB
  /// event sees the full socket count), as on real K8/K10.
  void post_uncore(int socket, const EventVector& ev);

 private:
  void post_intel_core(int cpu, const EventVector& ev);
  void post_amd_core(int cpu, const EventVector& ev);
  void accumulate(int cpu, std::uint32_t counter_reg, double count,
                  int width_bits);
  void accumulate_socket(int socket_cpu, std::uint32_t counter_reg,
                         double count, int width_bits);

  const MachineSpec& spec_;
  Arch arch_;
  MsrRegisterFile& regs_;
  const std::vector<HwThread>& threads_;
};

/// Mask for an n-bit counter.
constexpr std::uint64_t counter_mask(int bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0}
                    : ((std::uint64_t{1} << bits) - 1);
}

/// Delta between two reads of a wrapping counter (stop - start mod 2^bits).
constexpr std::uint64_t counter_delta(std::uint64_t start, std::uint64_t stop,
                                      int bits) noexcept {
  return (stop - start) & counter_mask(bits);
}

}  // namespace likwid::hwsim
