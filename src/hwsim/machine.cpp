#include "hwsim/machine.hpp"

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace likwid::hwsim {

SimMachine::SimMachine(MachineSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  arch_ = classify_arch(spec_.vendor, spec_.family, spec_.model);
  threads_ = enumerate_hw_threads(spec_);
  cpuid_ = std::make_unique<CpuidEmulator>(spec_);
  msrs_ = std::make_unique<MsrRegisterFile>(spec_);
  pmu_ = std::make_unique<Pmu>(spec_, arch_, *msrs_, threads_);
}

const HwThread& SimMachine::thread(int os_id) const {
  if (os_id < 0 || os_id >= num_threads()) {
    throw_error(ErrorCode::kNotFound,
                "no hardware thread with os id " + std::to_string(os_id));
  }
  return threads_[static_cast<std::size_t>(os_id)];
}

std::vector<int> SimMachine::cpus_of_socket(int socket) const {
  std::vector<int> out;
  for (const auto& t : threads_) {
    if (t.socket == socket) out.push_back(t.os_id);
  }
  return out;
}

std::vector<int> SimMachine::core_siblings(int os_id) const {
  const HwThread& self = thread(os_id);
  std::vector<int> out;
  for (const auto& t : threads_) {
    if (t.socket == self.socket && t.core_index == self.core_index) {
      out.push_back(t.os_id);
    }
  }
  return out;
}

CpuidRegs SimMachine::cpuid(int os_id, std::uint32_t leaf,
                            std::uint32_t subleaf) const {
  return cpuid_->query(thread(os_id), leaf, subleaf);
}

void SimMachine::post_core_events(int os_id, const EventVector& ev) {
  pmu_->post_core(thread(os_id).os_id, ev);
}

void SimMachine::post_uncore_events(int socket, const EventVector& ev) {
  pmu_->post_uncore(socket, ev);
}

PrefetcherSpec SimMachine::active_prefetchers(int os_id) const {
  const PrefetcherSpec& present = spec_.prefetchers;
  if (spec_.vendor != Vendor::kIntel || !msrs_->exists(msr::kMiscEnable)) {
    return present;
  }
  const std::uint64_t misc = msrs_->read(thread(os_id).os_id, msr::kMiscEnable);
  PrefetcherSpec active;
  active.hardware_prefetcher =
      present.hardware_prefetcher &&
      !util::test_bit(misc, msr::kMiscHwPrefetcherDisable);
  active.adjacent_line = present.adjacent_line &&
                         !util::test_bit(misc, msr::kMiscAdjacentLineDisable);
  active.dcu_prefetcher = present.dcu_prefetcher &&
                          !util::test_bit(misc, msr::kMiscDcuPrefetcherDisable);
  active.ip_prefetcher = present.ip_prefetcher &&
                         !util::test_bit(misc, msr::kMiscIpPrefetcherDisable);
  return active;
}

}  // namespace likwid::hwsim
