// events.hpp — the microarchitectural event vocabulary shared between the
// execution/cache simulator (producer) and the PMU (consumer).
//
// The cache simulator and workload engine describe what happened on the
// machine in terms of these abstract events; per-architecture event tables
// (src/core/event_tables.cpp) map vendor-specific event names and
// (event-code, umask) encodings onto them, so the measurement tools program
// real-looking MSR encodings while the hardware model counts real traffic.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace likwid::hwsim {

/// Abstract μarch events. Core events are attributed to the hardware thread
/// that caused them; uncore events are attributed to a socket.
enum class EventId : std::uint16_t {
  // --- execution core ---
  kInstructionsRetired = 0,
  kCoreCycles,            ///< unhalted core clock cycles
  kRefCycles,             ///< unhalted reference cycles (TSC rate)
  kFpPackedDouble,        ///< packed double SSE computational instructions
  kFpScalarDouble,        ///< scalar double SSE computational instructions
  kFpPackedSingle,
  kFpScalarSingle,
  kLoadsRetired,
  kStoresRetired,
  kBranchesRetired,
  kBranchesMispredicted,
  kDtlbMisses,
  kItlbMisses,
  // --- private cache hierarchy (per-core view) ---
  kL1DLinesIn,            ///< cache lines allocated in L1D (fill on miss)
  kL1DLinesOut,           ///< modified lines evicted from L1D
  kL2Requests,            ///< demand requests that reached L2
  kL2Misses,              ///< demand requests that missed L2
  kL2LinesIn,             ///< lines allocated in L2
  kL2LinesOut,            ///< modified lines evicted from L2
  kHwPrefetchesIssued,    ///< lines requested by hardware prefetchers
  kBusTransMem,           ///< memory bus transactions caused by this core
                          ///< (Core 2 style front-side-bus accounting)
  // --- shared cache / memory controller (per-socket, "uncore" view) ---
  kUncL3LinesIn,          ///< lines allocated in L3
  kUncL3LinesOut,         ///< lines victimized from L3
  kUncL3Hits,
  kUncL3Misses,
  kUncMemReads,           ///< full cache-line reads at the memory controller
  kUncMemWrites,          ///< full cache-line writes at the memory controller
  kUncClockticks,         ///< uncore clock
  kCount                  ///< sentinel: number of event ids
};

inline constexpr std::size_t kNumEvents = static_cast<std::size_t>(EventId::kCount);

/// Index of the first socket-scoped ("uncore") event.
inline constexpr std::size_t kFirstUncoreEvent =
    static_cast<std::size_t>(EventId::kUncL3LinesIn);

/// True if this event is counted at socket scope.
constexpr bool is_uncore_event(EventId id) noexcept {
  return static_cast<std::size_t>(id) >= kFirstUncoreEvent &&
         id != EventId::kCount;
}

/// Stable lower_snake name of an event id (for logs and tests).
std::string_view event_id_name(EventId id) noexcept;

/// Dense vector of event counts produced by one slice of execution on one
/// hardware thread (core events) or one socket (uncore events).
class EventVector {
 public:
  EventVector() { counts_.fill(0.0); }

  double& operator[](EventId id) noexcept {
    return counts_[static_cast<std::size_t>(id)];
  }
  double operator[](EventId id) const noexcept {
    return counts_[static_cast<std::size_t>(id)];
  }

  void add(EventId id, double n) noexcept {
    counts_[static_cast<std::size_t>(id)] += n;
  }

  /// Element-wise accumulate another vector.
  EventVector& operator+=(const EventVector& other) noexcept {
    for (std::size_t i = 0; i < kNumEvents; ++i) counts_[i] += other.counts_[i];
    return *this;
  }

  /// Scale all counts (used by multiplexing extrapolation in tests).
  EventVector& operator*=(double factor) noexcept {
    for (auto& c : counts_) c *= factor;
    return *this;
  }

  bool all_zero() const noexcept {
    for (const double c : counts_) {
      if (c != 0.0) return false;
    }
    return true;
  }

 private:
  std::array<double, kNumEvents> counts_;
};

}  // namespace likwid::hwsim
