#include "hwsim/apic.hpp"

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace likwid::hwsim {

ApicLayout apic_layout(const MachineSpec& spec) {
  LIKWID_REQUIRE(!spec.core_apic_ids.empty(), "machine has no cores");
  ApicLayout layout;
  layout.smt_width =
      util::field_width(static_cast<std::uint32_t>(spec.threads_per_core));
  const int max_core_apic = spec.core_apic_ids.back();
  layout.core_width =
      util::field_width(static_cast<std::uint32_t>(max_core_apic) + 1);
  return layout;
}

std::uint32_t make_apic_id(const ApicLayout& layout, int socket, int core_apic,
                           int smt) {
  LIKWID_REQUIRE(socket >= 0 && core_apic >= 0 && smt >= 0,
                 "negative apic component");
  std::uint64_t id = 0;
  id = util::deposit_bits(id, 0,
                          layout.smt_width == 0 ? 0 : layout.smt_width - 1,
                          layout.smt_width == 0 ? 0 : static_cast<unsigned>(smt));
  if (layout.smt_width == 0) {
    LIKWID_REQUIRE(smt == 0, "smt thread on non-SMT machine");
  }
  if (layout.core_width > 0) {
    id = util::deposit_bits(id, layout.smt_width,
                            layout.smt_width + layout.core_width - 1,
                            static_cast<unsigned>(core_apic));
  } else {
    LIKWID_REQUIRE(core_apic == 0, "core id on single-core package");
  }
  id |= static_cast<std::uint64_t>(socket) << layout.package_shift();
  return static_cast<std::uint32_t>(id);
}

ApicParts split_apic_id(const ApicLayout& layout, std::uint32_t apic_id) {
  ApicParts parts{};
  parts.smt = layout.smt_width == 0
                  ? 0
                  : static_cast<int>(
                        util::extract_bits(apic_id, 0, layout.smt_width - 1));
  parts.core_apic =
      layout.core_width == 0
          ? 0
          : static_cast<int>(util::extract_bits(
                apic_id, layout.smt_width,
                layout.smt_width + layout.core_width - 1));
  parts.socket = static_cast<int>(apic_id >> layout.package_shift());
  return parts;
}

std::vector<HwThread> enumerate_hw_threads(const MachineSpec& spec) {
  const ApicLayout layout = apic_layout(spec);
  std::vector<HwThread> threads;
  threads.reserve(static_cast<std::size_t>(spec.num_hw_threads()));
  int os_id = 0;
  const auto emit = [&](int socket, int core, int smt) {
    HwThread t;
    t.os_id = os_id++;
    t.socket = socket;
    t.core_index = core;
    t.core_apic = spec.core_apic_ids[static_cast<std::size_t>(core)];
    t.smt = smt;
    t.global_core = socket * spec.cores_per_socket + core;
    t.apic_id = make_apic_id(layout, socket, t.core_apic, smt);
    threads.push_back(t);
  };
  switch (spec.os_enumeration) {
    case OsEnumeration::kSmtLast:
      for (int smt = 0; smt < spec.threads_per_core; ++smt) {
        for (int socket = 0; socket < spec.sockets; ++socket) {
          for (int core = 0; core < spec.cores_per_socket; ++core) {
            emit(socket, core, smt);
          }
        }
      }
      break;
    case OsEnumeration::kSmtAdjacent:
      for (int socket = 0; socket < spec.sockets; ++socket) {
        for (int core = 0; core < spec.cores_per_socket; ++core) {
          for (int smt = 0; smt < spec.threads_per_core; ++smt) {
            emit(socket, core, smt);
          }
        }
      }
      break;
    case OsEnumeration::kSocketRoundRobin:
      for (int smt = 0; smt < spec.threads_per_core; ++smt) {
        for (int core = 0; core < spec.cores_per_socket; ++core) {
          for (int socket = 0; socket < spec.sockets; ++socket) {
            emit(socket, core, smt);
          }
        }
      }
      break;
  }
  return threads;
}

}  // namespace likwid::hwsim
