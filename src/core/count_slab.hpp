// count_slab.hpp — dense per-cpu x per-slot count storage.
//
// The measurement pipeline used to carry counts as
// std::map<int, std::map<std::string, double>> (cpu -> event name -> count),
// paying string compares and node allocations on every read-out, interval
// delta and metric evaluation. A CountSlab is the interned replacement: one
// flat std::vector<double> with a row per measured cpu (in the PerfCtr's
// cpu order) and a column per event-set slot (the assignment index, which
// doubles as the register index of the compiled metric programs). Event
// names live only in the set's assignment table; the slab itself is pure
// numbers.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace likwid::core {

class CountSlab {
 public:
  CountSlab() = default;

  /// `cpus` maps row index -> os cpu id; shared with the owning PerfCtr so
  /// copying a slab never duplicates the cpu list.
  CountSlab(std::shared_ptr<const std::vector<int>> cpus, std::size_t slots)
      : cpus_(std::move(cpus)), slots_(slots) {
    LIKWID_ASSERT(cpus_ != nullptr, "count slab without a cpu list");
    data_.assign(cpus_->size() * slots_, 0.0);
  }

  bool empty() const noexcept { return data_.empty(); }
  std::size_t slots() const noexcept { return slots_; }
  std::size_t rows() const noexcept { return cpus_ ? cpus_->size() : 0; }

  const std::vector<int>& cpus() const noexcept {
    static const std::vector<int> kNone;
    return cpus_ ? *cpus_ : kNone;
  }

  /// The shared cpu list itself (null for a default-constructed slab).
  /// Pointer identity against PerfCtr::cpus_ptr() is the batched
  /// evaluator's row-map fast path: same list object -> row i is cpu row i.
  const std::shared_ptr<const std::vector<int>>& cpus_ptr() const noexcept {
    return cpus_;
  }

  /// The whole slab, row-major (cpu row x slot) — the struct-of-arrays
  /// view the batched evaluator gathers columns from.
  std::span<const double> data() const noexcept { return data_; }

  /// Row index of an os cpu id; -1 when the cpu is not measured.
  int row_of(int cpu) const noexcept {
    if (!cpus_) return -1;
    for (std::size_t r = 0; r < cpus_->size(); ++r) {
      if ((*cpus_)[r] == cpu) return static_cast<int>(r);
    }
    return -1;
  }

  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * slots_, slots_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * slots_, slots_};
  }

  /// Count of `slot` on os cpu `cpu`; throws Error(kNotFound) for cpus the
  /// slab does not cover (boundary/test convenience — hot paths use row()).
  double at(int cpu, std::size_t slot) const {
    const int r = row_of(cpu);
    if (r < 0 || slot >= slots_) {
      throw_error(ErrorCode::kNotFound,
                  "cpu " + std::to_string(cpu) + " slot " +
                      std::to_string(slot) + " not covered by this slab");
    }
    return data_[static_cast<std::size_t>(r) * slots_ + slot];
  }
  double& at(int cpu, std::size_t slot) {
    const int r = row_of(cpu);
    if (r < 0 || slot >= slots_) {
      throw_error(ErrorCode::kNotFound,
                  "cpu " + std::to_string(cpu) + " slot " +
                      std::to_string(slot) + " not covered by this slab");
    }
    return data_[static_cast<std::size_t>(r) * slots_ + slot];
  }

  /// Elementwise this -= other; layouts must match.
  void subtract(const CountSlab& other) {
    LIKWID_ASSERT(other.data_.size() == data_.size() && other.slots_ == slots_,
                  "slab subtraction with mismatched layouts");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  }

  /// Elementwise scale (multiplex extrapolation).
  void scale(double factor) noexcept {
    for (double& v : data_) v *= factor;
  }

 private:
  std::shared_ptr<const std::vector<int>> cpus_;
  std::size_t slots_ = 0;
  std::vector<double> data_;
};

}  // namespace likwid::core
