#include "core/perf_groups.hpp"

#include "util/status.hpp"

namespace likwid::core {

namespace {

using hwsim::Arch;

std::string bw_formula(const std::string& sum) {
  return "1.0E-06*(" + sum + ")*64.0/time";
}
std::string volume_formula(const std::string& sum) {
  return "1.0E-09*(" + sum + ")*64.0";
}

/// Architecture-specific event names feeding the shared group templates.
struct ArchNames {
  bool has_fixed = false;     ///< INSTR/CLK counted on fixed counters
  std::string instr;          ///< instructions event (fixed or GP)
  std::string cycles;         ///< core cycles event
  std::string pd, sd, ps, ss; ///< packed/scalar double/single flops
  std::string loads, stores;  ///< empty if the arch cannot split them
  std::string l1_in, l1_out;
  std::string l2_in, l2_out;
  std::string l2_req, l2_miss;
  std::string mem_read, mem_write;  ///< or:
  std::string mem_single;           ///< single bus-transaction event
  std::string l3_hits, l3_miss;     ///< empty when there is no L3
  std::string br, br_misp;
  std::string dtlb;                 ///< empty when not countable
  int gp_counters = 2;
};

ArchNames names_for(Arch arch) {
  ArchNames n;
  switch (arch) {
    case Arch::kCore2:
    case Arch::kAtom:
      n.has_fixed = true;
      n.instr = "INSTR_RETIRED_ANY";
      n.cycles = "CPU_CLK_UNHALTED_CORE";
      n.pd = "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE";
      n.sd = "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE";
      n.ps = "SIMD_COMP_INST_RETIRED_PACKED_SINGLE";
      n.ss = "SIMD_COMP_INST_RETIRED_SCALAR_SINGLE";
      n.loads = "INST_RETIRED_LOADS";
      n.stores = "INST_RETIRED_STORES";
      n.l1_in = "L1D_REPL";
      n.l1_out = "L1D_M_EVICT";
      n.l2_in = "L2_LINES_IN_ANY";
      n.l2_out = "L2_LINES_OUT_ANY";
      n.l2_req = "L2_RQSTS_REFERENCES";
      n.l2_miss = "L2_RQSTS_MISS";
      n.mem_single = "BUS_TRANS_MEM";
      n.br = "BR_INST_RETIRED_ANY";
      n.br_misp = "BR_INST_RETIRED_MISPRED";
      n.dtlb = "DTLB_MISSES_ANY";
      n.gp_counters = 2;
      break;
    case Arch::kPentiumM:
      n.has_fixed = false;
      n.instr = "INSTR_RETIRED";
      n.cycles = "CPU_CLK_UNHALTED";
      n.pd = "EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DOUBLE";
      n.sd = "EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DOUBLE";
      n.ps = "EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_SINGLE";
      n.ss = "EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_SINGLE";
      n.l1_in = "DCU_LINES_IN";
      n.l2_in = "L2_LINES_IN";
      n.l2_out = "L2_LINES_OUT";
      n.mem_single = "BUS_TRAN_MEM";
      n.br = "BR_INST_RETIRED";
      n.br_misp = "BR_MISPRED_RETIRED";
      n.gp_counters = 2;
      break;
    case Arch::kNehalem:
    case Arch::kWestmere:
      n.has_fixed = true;
      n.instr = "INSTR_RETIRED_ANY";
      n.cycles = "CPU_CLK_UNHALTED_CORE";
      n.pd = "FP_COMP_OPS_EXE_SSE_FP_PACKED_DOUBLE";
      n.sd = "FP_COMP_OPS_EXE_SSE_FP_SCALAR_DOUBLE";
      n.ps = "FP_COMP_OPS_EXE_SSE_FP_PACKED_SINGLE";
      n.ss = "FP_COMP_OPS_EXE_SSE_FP_SCALAR_SINGLE";
      n.loads = "MEM_INST_RETIRED_LOADS";
      n.stores = "MEM_INST_RETIRED_STORES";
      n.l1_in = "L1D_REPL";
      n.l1_out = "L1D_M_EVICT";
      n.l2_in = "L2_LINES_IN_ANY";
      n.l2_out = "L2_LINES_OUT_ANY";
      n.l2_req = "L2_RQSTS_REFERENCES";
      n.l2_miss = "L2_RQSTS_MISS";
      n.mem_read = "UNC_QMC_NORMAL_READS_ANY";
      n.mem_write = "UNC_QMC_WRITES_FULL_ANY";
      n.l3_hits = "UNC_L3_HITS_ANY";
      n.l3_miss = "UNC_L3_MISS_ANY";
      n.br = "BR_INST_RETIRED_ALL_BRANCHES";
      n.br_misp = "BR_MISP_RETIRED_ALL_BRANCHES";
      n.dtlb = "DTLB_MISSES_ANY";
      n.gp_counters = 4;
      break;
    case Arch::kK8:
    case Arch::kK10:
      n.has_fixed = false;
      n.instr = "RETIRED_INSTRUCTIONS";
      n.cycles = "CPU_CLOCKS_UNHALTED";
      n.pd = "SSE_RETIRED_PACKED_DOUBLE";
      n.sd = "SSE_RETIRED_SCALAR_DOUBLE";
      n.ps = "SSE_RETIRED_PACKED_SINGLE";
      n.ss = "SSE_RETIRED_SCALAR_SINGLE";
      n.l1_in = "DATA_CACHE_REFILLS_L2_AND_NB";
      n.l1_out = "DATA_CACHE_EVICTED_ALL";
      n.l2_in = "L2_FILL_WRITEBACK_FILL";
      n.l2_out = "L2_FILL_WRITEBACK_WB";
      n.l2_req = "REQUESTS_TO_L2_ALL";
      n.l2_miss = "L2_CACHE_MISS_ALL";
      n.mem_read = "DRAM_ACCESSES_DCT0_READ";
      n.mem_write = "DRAM_ACCESSES_DCT0_WRITE";
      if (arch == Arch::kK10) {
        n.l3_hits = "READ_REQUEST_TO_L3_CACHE_ALL";
        n.l3_miss = "L3_CACHE_MISSES_ALL";
      }
      n.br = "RETIRED_BRANCH_INSTRUCTIONS";
      n.br_misp = "RETIRED_MISPREDICTED_BRANCH_INSTRUCTIONS";
      n.dtlb = "DTLB_L1_AND_L2_MISS";
      n.gp_counters = 4;
      break;
  }
  return n;
}

/// Common metric preamble: Runtime always, CPI where INSTR/CLK are counted.
void add_common_metrics(EventGroup& g, const ArchNames& n,
                        bool instr_counted) {
  g.metrics.push_back({"Runtime [s]", "time"});
  if (instr_counted) {
    g.metrics.push_back({"CPI", n.cycles + "/" + n.instr});
  }
}

/// On architectures without fixed counters, INSTR and CLK occupy two GP
/// counters; add them to the set when the budget allows.
bool add_instr_events(EventGroup& g, const ArchNames& n, int payload) {
  if (n.has_fixed) return true;  // fixed counters count them implicitly
  if (payload + 2 <= n.gp_counters) {
    g.events.insert(g.events.begin(), {n.instr, n.cycles});
    return true;
  }
  return false;
}

std::optional<EventGroup> build_group(Arch arch, std::string_view name) {
  const ArchNames n = names_for(arch);
  EventGroup g;
  g.name = std::string(name);

  if (name == "FLOPS_DP") {
    g.description = "Double Precision MFlops/s";
    g.events = {n.pd, n.sd};
    const bool instr = add_instr_events(g, n, 2);
    add_common_metrics(g, n, instr);
    g.metrics.push_back(
        {"DP MFlops/s", "1.0E-06*(" + n.pd + "*2.0+" + n.sd + ")/time"});
    return g;
  }
  if (name == "FLOPS_SP") {
    g.description = "Single Precision MFlops/s";
    g.events = {n.ps, n.ss};
    const bool instr = add_instr_events(g, n, 2);
    add_common_metrics(g, n, instr);
    g.metrics.push_back(
        {"SP MFlops/s", "1.0E-06*(" + n.ps + "*4.0+" + n.ss + ")/time"});
    return g;
  }
  if (name == "L2") {
    if (n.l1_in.empty() || n.l1_out.empty()) return std::nullopt;
    g.description = "L2 cache bandwidth in MBytes/s";
    g.events = {n.l1_in, n.l1_out};
    const bool instr = add_instr_events(g, n, 2);
    add_common_metrics(g, n, instr);
    g.metrics.push_back(
        {"L2 bandwidth [MBytes/s]", bw_formula(n.l1_in + "+" + n.l1_out)});
    g.metrics.push_back(
        {"L2 data volume [GBytes]", volume_formula(n.l1_in + "+" + n.l1_out)});
    return g;
  }
  if (name == "L3") {
    if (n.l2_in.empty() || n.l2_out.empty()) return std::nullopt;
    // The L3 bandwidth group only makes sense with an L3 cache behind L2.
    if (n.l3_hits.empty() && arch != Arch::kNehalem && arch != Arch::kWestmere)
      return std::nullopt;
    g.description = "L3 cache bandwidth in MBytes/s";
    g.events = {n.l2_in, n.l2_out};
    const bool instr = add_instr_events(g, n, 2);
    add_common_metrics(g, n, instr);
    g.metrics.push_back(
        {"L3 bandwidth [MBytes/s]", bw_formula(n.l2_in + "+" + n.l2_out)});
    g.metrics.push_back(
        {"L3 data volume [GBytes]", volume_formula(n.l2_in + "+" + n.l2_out)});
    return g;
  }
  if (name == "MEM") {
    g.description = "Main memory bandwidth in MBytes/s";
    if (!n.mem_single.empty()) {
      g.events = {n.mem_single};
      const bool instr = add_instr_events(g, n, 1);
      add_common_metrics(g, n, instr);
      g.metrics.push_back(
          {"Memory bandwidth [MBytes/s]", bw_formula(n.mem_single)});
      g.metrics.push_back(
          {"Memory data volume [GBytes]", volume_formula(n.mem_single)});
    } else {
      g.events = {n.mem_read, n.mem_write};
      const bool instr = add_instr_events(g, n, 2);
      add_common_metrics(g, n, instr);
      g.metrics.push_back({"Memory bandwidth [MBytes/s]",
                           bw_formula(n.mem_read + "+" + n.mem_write)});
      g.metrics.push_back({"Memory data volume [GBytes]",
                           volume_formula(n.mem_read + "+" + n.mem_write)});
    }
    return g;
  }
  if (name == "CACHE") {
    g.description = "L1 Data cache miss rate/ratio";
    g.events = {n.l1_in};
    int payload = 1;
    const bool with_refs = !n.loads.empty() && n.gp_counters >= 3;
    if (with_refs) {
      g.events.push_back(n.loads);
      g.events.push_back(n.stores);
      payload = 3;
    }
    const bool instr = add_instr_events(g, n, payload);
    add_common_metrics(g, n, instr);
    if (instr) {
      g.metrics.push_back(
          {"L1 miss rate", n.l1_in + "/" + n.instr});
    } else {
      // Two-counter machines (Pentium M) cannot fit INSTR next to the
      // payload, so the per-instruction rate is impossible — report the
      // raw replacement rate instead of counting an event no formula
      // consumes (likwid-lint's unused-event check).
      g.metrics.push_back({"L1 misses/s", n.l1_in + "/time"});
    }
    if (with_refs) {
      g.metrics.push_back({"L1 miss ratio",
                           n.l1_in + "/(" + n.loads + "+" + n.stores + ")"});
    }
    return g;
  }
  if (name == "L2CACHE") {
    if (n.l2_req.empty()) return std::nullopt;
    g.description = "L2 Data cache miss rate/ratio";
    g.events = {n.l2_req, n.l2_miss};
    const bool instr = add_instr_events(g, n, 2);
    add_common_metrics(g, n, instr);
    if (instr) {
      g.metrics.push_back({"L2 miss rate", n.l2_miss + "/" + n.instr});
    }
    g.metrics.push_back({"L2 miss ratio", n.l2_miss + "/" + n.l2_req});
    return g;
  }
  if (name == "L3CACHE") {
    if (n.l3_hits.empty()) return std::nullopt;
    g.description = "L3 Data cache miss rate/ratio";
    g.events = {n.l3_hits, n.l3_miss};
    const bool instr = add_instr_events(g, n, 2);
    add_common_metrics(g, n, instr);
    if (instr) {
      g.metrics.push_back({"L3 miss rate", n.l3_miss + "/" + n.instr});
    }
    g.metrics.push_back(
        {"L3 miss ratio", n.l3_miss + "/(" + n.l3_hits + "+" + n.l3_miss + ")"});
    return g;
  }
  if (name == "DATA") {
    if (n.loads.empty()) return std::nullopt;
    g.description = "Load to store ratio";
    g.events = {n.loads, n.stores};
    const bool instr = add_instr_events(g, n, 2);
    add_common_metrics(g, n, instr);
    g.metrics.push_back({"Load to store ratio", n.loads + "/" + n.stores});
    return g;
  }
  if (name == "BRANCH") {
    g.description = "Branch prediction miss rate/ratio";
    g.events = {n.br, n.br_misp};
    const bool instr = add_instr_events(g, n, 2);
    add_common_metrics(g, n, instr);
    if (instr) {
      g.metrics.push_back({"Branch rate", n.br + "/" + n.instr});
      g.metrics.push_back(
          {"Branch misprediction rate", n.br_misp + "/" + n.instr});
    }
    g.metrics.push_back(
        {"Branch misprediction ratio", n.br_misp + "/" + n.br});
    return g;
  }
  if (name == "TLB") {
    if (n.dtlb.empty()) return std::nullopt;
    g.description = "Translation lookaside buffer miss rate/ratio";
    g.events = {n.dtlb};
    const bool instr = add_instr_events(g, n, 1);
    add_common_metrics(g, n, instr);
    if (instr) {
      g.metrics.push_back({"DTLB miss rate", n.dtlb + "/" + n.instr});
    }
    return g;
  }
  return std::nullopt;
}

}  // namespace

const std::vector<std::string>& group_names() {
  static const std::vector<std::string> kNames = {
      "FLOPS_DP", "FLOPS_SP", "L2",   "L3",     "MEM", "CACHE",
      "L2CACHE",  "L3CACHE",  "DATA", "BRANCH", "TLB"};
  return kNames;
}

std::vector<EventGroup> supported_groups(hwsim::Arch arch) {
  std::vector<EventGroup> out;
  for (const auto& name : group_names()) {
    if (auto g = build_group(arch, name)) out.push_back(std::move(*g));
  }
  return out;
}

std::optional<EventGroup> find_group(hwsim::Arch arch, std::string_view name) {
  bool known = false;
  for (const auto& n : group_names()) {
    if (n == name) {
      known = true;
      break;
    }
  }
  if (!known) {
    throw_error(ErrorCode::kNotFound,
                "unknown performance group '" + std::string(name) + "'");
  }
  return build_group(arch, name);
}

}  // namespace likwid::core
