#include "core/likwid.hpp"

#include "util/status.hpp"

namespace likwid {

namespace {
/// The env behind the legacy MarkerBinding::bind(ctr, fn) convenience.
core::MarkerEnv& legacy_env() {
  static core::MarkerEnv env("MarkerBinding");
  return env;
}
/// The one env the C-style marker functions operate on.
core::MarkerEnv* g_ambient = nullptr;

core::MarkerEnv& require_ambient(const char* what) {
  if (g_ambient == nullptr) {
    throw_error(ErrorCode::kInvalidState,
                std::string(what) + ": not running under likwid-perfctr -m");
  }
  return *g_ambient;
}
}  // namespace

void MarkerBinding::bind(core::PerfCtr* ctr, std::function<int()> current_cpu) {
  const bool was_ambient = g_ambient == &legacy_env();
  adopt_env(&legacy_env());
  try {
    legacy_env().bind(ctr, std::move(current_cpu));
  } catch (...) {
    if (!was_ambient) g_ambient = nullptr;
    throw;
  }
}

void MarkerBinding::unbind() noexcept {
  if (g_ambient != nullptr) g_ambient->unbind();
  // The legacy env is library-owned: reset it even when a session env was
  // ambient, so no stale state survives into the next bind cycle.
  legacy_env().unbind();
  g_ambient = nullptr;
}

bool MarkerBinding::bound() noexcept {
  return g_ambient != nullptr && g_ambient->bound();
}

void MarkerBinding::adopt_env(core::MarkerEnv* env) {
  LIKWID_REQUIRE(env != nullptr, "null marker environment");
  if (g_ambient != nullptr && g_ambient != env) {
    throw_error(ErrorCode::kInvalidState,
                "marker environment is already bound by '" +
                    g_ambient->owner() + "'");
  }
  g_ambient = env;
}

void MarkerBinding::release_env(core::MarkerEnv* env) noexcept {
  if (g_ambient == env) g_ambient = nullptr;
}

core::MarkerEnv* MarkerBinding::ambient() noexcept { return g_ambient; }

core::MarkerSession* MarkerBinding::session() {
  return g_ambient != nullptr ? g_ambient->session() : nullptr;
}

core::PerfCtr* MarkerBinding::counters() {
  return g_ambient != nullptr ? g_ambient->counters() : nullptr;
}

int MarkerBinding::current_cpu() {
  return require_ambient("likwid_processGetProcessorId").current_cpu();
}

void likwid_markerInit(int numberOfThreads, int numberOfRegions) {
  require_ambient("likwid_markerInit").init(numberOfThreads, numberOfRegions);
}

int likwid_markerRegisterRegion(const char* name) {
  return require_ambient("likwid_markerRegisterRegion")
      .register_region(name != nullptr ? name : "");
}

void likwid_markerStartRegion(int threadId, int coreId) {
  require_ambient("likwid_markerStartRegion").start_region(threadId, coreId);
}

void likwid_markerStopRegion(int threadId, int coreId, int regionId) {
  require_ambient("likwid_markerStopRegion")
      .stop_region(threadId, coreId, regionId);
}

void likwid_markerClose() { require_ambient("likwid_markerClose").close(); }

int likwid_processGetProcessorId() { return MarkerBinding::current_cpu(); }

}  // namespace likwid
