#include "core/likwid.hpp"

#include <memory>

#include "util/status.hpp"

namespace likwid {

namespace {
struct AmbientState {
  core::PerfCtr* ctr = nullptr;
  std::function<int()> current_cpu;
  std::unique_ptr<core::MarkerSession> session;
};
AmbientState g_marker;
}  // namespace

void MarkerBinding::bind(core::PerfCtr* ctr, std::function<int()> current_cpu) {
  LIKWID_REQUIRE(ctr != nullptr, "null PerfCtr");
  LIKWID_REQUIRE(current_cpu != nullptr, "null current_cpu callback");
  if (g_marker.ctr != nullptr) {
    throw_error(ErrorCode::kInvalidState,
                "marker environment is already bound");
  }
  g_marker.ctr = ctr;
  g_marker.current_cpu = std::move(current_cpu);
}

void MarkerBinding::unbind() noexcept {
  g_marker.session.reset();
  g_marker.ctr = nullptr;
  g_marker.current_cpu = nullptr;
}

bool MarkerBinding::bound() noexcept { return g_marker.ctr != nullptr; }

core::MarkerSession* MarkerBinding::session() { return g_marker.session.get(); }

core::PerfCtr* MarkerBinding::counters() { return g_marker.ctr; }

int MarkerBinding::current_cpu() {
  LIKWID_REQUIRE(g_marker.current_cpu != nullptr,
                 "marker environment not bound");
  return g_marker.current_cpu();
}

void likwid_markerInit(int numberOfThreads, int numberOfRegions) {
  if (g_marker.ctr == nullptr) {
    throw_error(ErrorCode::kInvalidState,
                "likwid_markerInit: not running under likwid-perfctr -m");
  }
  LIKWID_REQUIRE(g_marker.session == nullptr,
                 "likwid_markerInit called twice");
  g_marker.session = std::make_unique<core::MarkerSession>(
      *g_marker.ctr, numberOfThreads, numberOfRegions);
}

int likwid_markerRegisterRegion(const char* name) {
  LIKWID_REQUIRE(g_marker.session != nullptr,
                 "likwid_markerRegisterRegion before likwid_markerInit");
  return g_marker.session->register_region(name != nullptr ? name : "");
}

void likwid_markerStartRegion(int threadId, int coreId) {
  LIKWID_REQUIRE(g_marker.session != nullptr,
                 "likwid_markerStartRegion before likwid_markerInit");
  g_marker.session->start_region(threadId, coreId);
}

void likwid_markerStopRegion(int threadId, int coreId, int regionId) {
  LIKWID_REQUIRE(g_marker.session != nullptr,
                 "likwid_markerStopRegion before likwid_markerInit");
  g_marker.session->stop_region(threadId, coreId, regionId);
}

void likwid_markerClose() {
  LIKWID_REQUIRE(g_marker.session != nullptr,
                 "likwid_markerClose before likwid_markerInit");
  g_marker.session->close();
}

int likwid_processGetProcessorId() { return MarkerBinding::current_cpu(); }

}  // namespace likwid
