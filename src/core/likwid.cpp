#include "core/likwid.hpp"

#include <atomic>

#include "util/status.hpp"

namespace likwid {

namespace {
/// The env behind the legacy MarkerBinding::bind(ctr, fn) convenience.
core::MarkerEnv& legacy_env() {
  static core::MarkerEnv env("MarkerBinding");
  return env;
}
/// The one env the C-style marker functions operate on. Atomic because
/// concurrent Sessions adopt/release it from their own threads (every
/// Session destructor releases); the registry itself is race-free, while
/// the marker calls routed THROUGH the ambient env stay single-threaded
/// per env, as documented on api::Session.
std::atomic<core::MarkerEnv*> g_ambient{nullptr};

core::MarkerEnv& require_ambient(const char* what) {
  core::MarkerEnv* env = g_ambient.load(std::memory_order_acquire);
  if (env == nullptr) {
    throw_error(ErrorCode::kInvalidState,
                std::string(what) + ": not running under likwid-perfctr -m");
  }
  return *env;
}
}  // namespace

void MarkerBinding::bind(core::PerfCtr* ctr, std::function<int()> current_cpu) {
  const bool was_ambient =
      g_ambient.load(std::memory_order_acquire) == &legacy_env();
  adopt_env(&legacy_env());
  try {
    legacy_env().bind(ctr, std::move(current_cpu));
  } catch (...) {
    if (!was_ambient) release_env(&legacy_env());
    throw;
  }
}

void MarkerBinding::unbind() noexcept {
  core::MarkerEnv* env = g_ambient.exchange(nullptr,
                                            std::memory_order_acq_rel);
  if (env != nullptr) env->unbind();
  // The legacy env is library-owned: reset it even when a session env was
  // ambient, so no stale state survives into the next bind cycle.
  legacy_env().unbind();
}

bool MarkerBinding::bound() noexcept {
  core::MarkerEnv* env = g_ambient.load(std::memory_order_acquire);
  return env != nullptr && env->bound();
}

void MarkerBinding::adopt_env(core::MarkerEnv* env) {
  LIKWID_REQUIRE(env != nullptr, "null marker environment");
  core::MarkerEnv* expected = nullptr;
  if (g_ambient.compare_exchange_strong(expected, env,
                                        std::memory_order_acq_rel)) {
    return;
  }
  if (expected == env) return;  // already ours
  throw_error(ErrorCode::kInvalidState,
              "marker environment is already bound by '" +
                  expected->owner() + "'");
}

void MarkerBinding::release_env(core::MarkerEnv* env) noexcept {
  core::MarkerEnv* expected = env;
  g_ambient.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

core::MarkerEnv* MarkerBinding::ambient() noexcept {
  return g_ambient.load(std::memory_order_acquire);
}

core::MarkerSession* MarkerBinding::session() {
  core::MarkerEnv* env = g_ambient.load(std::memory_order_acquire);
  return env != nullptr ? env->session() : nullptr;
}

core::PerfCtr* MarkerBinding::counters() {
  core::MarkerEnv* env = g_ambient.load(std::memory_order_acquire);
  return env != nullptr ? env->counters() : nullptr;
}

int MarkerBinding::current_cpu() {
  return require_ambient("likwid_processGetProcessorId").current_cpu();
}

void likwid_markerInit(int numberOfThreads, int numberOfRegions) {
  require_ambient("likwid_markerInit").init(numberOfThreads, numberOfRegions);
}

int likwid_markerRegisterRegion(const char* name) {
  return require_ambient("likwid_markerRegisterRegion")
      .register_region(name != nullptr ? name : "");
}

void likwid_markerStartRegion(int threadId, int coreId) {
  require_ambient("likwid_markerStartRegion").start_region(threadId, coreId);
}

void likwid_markerStopRegion(int threadId, int coreId, int regionId) {
  require_ambient("likwid_markerStopRegion")
      .stop_region(threadId, coreId, regionId);
}

void likwid_markerClose() { require_ambient("likwid_markerClose").close(); }

int likwid_processGetProcessorId() { return MarkerBinding::current_cpu(); }

}  // namespace likwid
