// likwid.hpp — umbrella header: the public API of the LIKWID reproduction.
//
// #include "core/likwid.hpp" gives access to:
//   * topology probing           (core/topology.hpp)
//   * performance counting       (core/perfctr.hpp, core/perf_groups.hpp)
//   * continuous/interval sampling (core/sampling.hpp)
//   * the marker API             (core/marker.hpp + the C-style shim below)
//   * pinning                    (core/affinity.hpp)
//   * feature/prefetcher control (core/features.hpp)
//
// The C-style marker functions reproduce the exact call sequence of the
// paper's Section II-A listing. In the real tool the ambient measurement
// state is injected into the profiled process by likwid-perfctr -m; here
// the harness binds it explicitly with MarkerBinding.
#pragma once

#include <functional>

#include "core/affinity.hpp"
#include "core/features.hpp"
#include "core/marker.hpp"
#include "core/metric_expr.hpp"
#include "core/perf_groups.hpp"
#include "core/perfctr.hpp"
#include "core/sampling.hpp"
#include "core/topology.hpp"

namespace likwid {

/// Ambient marker state, as exported into a measured process by
/// `likwid-perfctr -m`. Bind before using the C-style functions below.
class MarkerBinding {
 public:
  /// `ctr` must be configured (event set added) before binding; started
  /// counters are required before regions are entered. `current_cpu`
  /// reports the calling thread's hardware thread, the analog of
  /// sched_getcpu(). Throws Error(kInvalidState) on double bind.
  static void bind(core::PerfCtr* ctr, std::function<int()> current_cpu);
  static void unbind() noexcept;
  static bool bound() noexcept;

  /// The live session (created by likwid_markerInit); null before init.
  static core::MarkerSession* session();
  static core::PerfCtr* counters();
  static int current_cpu();
};

// --- the paper's marker API (Section II-A) -------------------------------

/// #include <likwid.h>-compatible entry points.
void likwid_markerInit(int numberOfThreads, int numberOfRegions);
int likwid_markerRegisterRegion(const char* name);
void likwid_markerStartRegion(int threadId, int coreId);
void likwid_markerStopRegion(int threadId, int coreId, int regionId);
void likwid_markerClose();

/// Core id of the calling thread (sched_getcpu analog).
int likwid_processGetProcessorId();

}  // namespace likwid
