// likwid.hpp — umbrella header over the core measurement subsystems.
//
// #include "core/likwid.hpp" gives access to:
//   * topology probing           (core/topology.hpp)
//   * performance counting       (core/perfctr.hpp, core/perf_groups.hpp)
//   * continuous/interval sampling (core/sampling.hpp)
//   * the marker API             (core/marker.hpp + the C-style shim below)
//   * pinning                    (core/affinity.hpp)
//   * feature/prefetcher control (core/features.hpp)
//
// Embedders should prefer the stable facade one layer up: api/session.hpp
// (likwid::api::Session, C++) and api/likwid.h (the flat, handle-based C
// API) — the tools and examples are written against those.
//
// The C-style marker functions reproduce the exact call sequence of the
// paper's Section II-A listing. In the real tool the ambient measurement
// state is injected into the profiled process by likwid-perfctr -m; here
// a harness binds it explicitly — per session via
// api::Session::bind_ambient_markers(), or through the legacy
// MarkerBinding shim below.
#pragma once

#include <functional>

#include "core/affinity.hpp"
#include "core/features.hpp"
#include "core/marker.hpp"
#include "core/metric_expr.hpp"
#include "core/perf_groups.hpp"
#include "core/perfctr.hpp"
#include "core/sampling.hpp"
#include "core/topology.hpp"

namespace likwid {

/// The process-global marker registry, as exported into a measured process
/// by `likwid-perfctr -m`. Marker state itself lives in a core::MarkerEnv
/// (one per likwid::Session); this shim only designates ONE env as the
/// ambient target of the C-style functions below. The static bind()
/// overload keeps the pre-facade calling convention working by binding a
/// library-owned legacy env.
class MarkerBinding {
 public:
  /// Legacy convenience: bind a library-owned env to `ctr`. `ctr` must be
  /// configured (event set added) before binding; started counters are
  /// required before regions are entered. `current_cpu` reports the
  /// calling thread's hardware thread, the analog of sched_getcpu().
  /// Throws Error(kInvalidState), naming the already-bound owner, on
  /// double bind.
  static void bind(core::PerfCtr* ctr, std::function<int()> current_cpu);

  /// Release the ambient env, fully resetting its state (counters,
  /// callback and any live MarkerSession), so bind -> unbind -> bind
  /// cycles and test ordering are always safe.
  static void unbind() noexcept;
  static bool bound() noexcept;

  /// Make `env` the ambient target of the C-style marker functions.
  /// Throws Error(kInvalidState), naming the current owner, if a
  /// different env is already ambient. `env` must stay alive until
  /// release_env(env) (likwid::Session does this from its destructor).
  static void adopt_env(core::MarkerEnv* env);

  /// Drop `env` as ambient (no-op when another env is ambient). Unlike
  /// unbind(), does not reset `env` — its marker results stay readable
  /// through the owning session.
  static void release_env(core::MarkerEnv* env) noexcept;

  /// The ambient env; null when nothing is bound.
  static core::MarkerEnv* ambient() noexcept;

  /// The live session (created by likwid_markerInit); null before init.
  static core::MarkerSession* session();
  static core::PerfCtr* counters();
  static int current_cpu();
};

// --- the paper's marker API (Section II-A) -------------------------------

/// #include <likwid.h>-compatible entry points.
void likwid_markerInit(int numberOfThreads, int numberOfRegions);
int likwid_markerRegisterRegion(const char* name);
void likwid_markerStartRegion(int threadId, int coreId);
void likwid_markerStopRegion(int threadId, int coreId, int regionId);
void likwid_markerClose();

/// Core id of the calling thread (sched_getcpu analog).
int likwid_processGetProcessorId();

}  // namespace likwid
