// metric_expr.hpp — tiny arithmetic expression engine for derived metrics.
//
// Performance groups define derived metrics as formula strings over event
// names and the built-in variables `time` (region runtime in seconds) and
// `clock` (core clock in Hz), e.g.
//     "1.0E-06*(FLOPS_PD*2.0+FLOPS_SD)/time"
// Supported grammar: + - * /, unary minus, parentheses, floating literals
// (with exponents), identifiers [A-Za-z_][A-Za-z0-9_]*.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace likwid::core {

/// A parsed, reusable metric expression.
class MetricExpr {
 public:
  /// Parse `text`; throws Error(kInvalidArgument) with position info on
  /// syntax errors.
  static MetricExpr parse(std::string_view text);

  /// Evaluate with the given variable bindings; throws Error(kNotFound) for
  /// unbound identifiers. Division by zero yields 0 (likwid prints 0 for
  /// metrics whose denominator event did not fire, rather than inf).
  double evaluate(const std::map<std::string, double>& vars) const;

  /// All identifiers referenced by the expression.
  const std::vector<std::string>& variables() const { return variables_; }

  const std::string& text() const { return text_; }

  struct Node;  ///< implementation detail, public for the parser

 private:
  MetricExpr() = default;

  std::string text_;
  std::shared_ptr<const Node> root_;
  std::vector<std::string> variables_;
};

}  // namespace likwid::core
