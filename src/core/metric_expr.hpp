// metric_expr.hpp — tiny arithmetic expression engine for derived metrics.
//
// Performance groups define derived metrics as formula strings over event
// names and the built-in variables `time` (region runtime in seconds) and
// `clock` (core clock in Hz), e.g.
//     "1.0E-06*(FLOPS_PD*2.0+FLOPS_SD)/time"
// Supported grammar: + - * /, unary minus, parentheses, floating literals
// (with exponents), identifiers [A-Za-z_][A-Za-z0-9_]*.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiled_metric.hpp"

namespace likwid::core {

/// A parsed, reusable metric expression.
class MetricExpr {
 public:
  /// Parse `text`; throws Error(kInvalidArgument) with position info on
  /// syntax errors.
  static MetricExpr parse(std::string_view text);

  /// Evaluate with the given variable bindings; throws Error(kNotFound) for
  /// unbound identifiers. Division by zero yields 0 (likwid prints 0 for
  /// metrics whose denominator event did not fire, rather than inf).
  /// This is the slow reference path; hot loops use compile() once and run
  /// the CompiledMetric instead.
  double evaluate(const std::map<std::string, double>& vars) const;

  /// Maps a variable name to its register index in the compiled program's
  /// register file; a negative return means the name is not bound.
  using RegisterResolver = std::function<int(std::string_view)>;

  /// Lower the expression to a flat postfix program with every variable
  /// resolved through `reg_of`. Throws Error(kNotFound) for variables the
  /// resolver rejects — the AST evaluator's unbound-variable error, moved
  /// from every evaluation to the one compile.
  CompiledMetric compile(const RegisterResolver& reg_of) const;

  /// All identifiers referenced by the expression.
  const std::vector<std::string>& variables() const { return variables_; }

  const std::string& text() const { return text_; }

  struct Node;  ///< implementation detail, public for the parser

 private:
  MetricExpr() = default;

  std::string text_;
  std::shared_ptr<const Node> root_;
  std::vector<std::string> variables_;
};

}  // namespace likwid::core
