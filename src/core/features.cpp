#include "core/features.hpp"

#include "hwsim/msr.hpp"
#include "util/bitops.hpp"
#include "util/status.hpp"

namespace likwid::core {

namespace msr = hwsim::msr;

Prefetcher parse_prefetcher(const std::string& name) {
  if (name == "HW_PREFETCHER") return Prefetcher::kHardware;
  if (name == "CL_PREFETCHER") return Prefetcher::kAdjacentLine;
  if (name == "DCU_PREFETCHER") return Prefetcher::kDcu;
  if (name == "IP_PREFETCHER") return Prefetcher::kIp;
  throw_error(ErrorCode::kInvalidArgument,
              "unknown prefetcher '" + name +
                  "' (HW_PREFETCHER, CL_PREFETCHER, DCU_PREFETCHER, "
                  "IP_PREFETCHER)");
}

std::string_view to_string(Prefetcher p) noexcept {
  switch (p) {
    case Prefetcher::kHardware: return "HW_PREFETCHER";
    case Prefetcher::kAdjacentLine: return "CL_PREFETCHER";
    case Prefetcher::kDcu: return "DCU_PREFETCHER";
    case Prefetcher::kIp: return "IP_PREFETCHER";
  }
  return "?";
}

Features::Features(ossim::SimKernel& kernel, int cpu)
    : kernel_(kernel), cpu_(cpu) {
  if (kernel_.machine().spec().vendor != hwsim::Vendor::kIntel) {
    throw_error(ErrorCode::kUnsupported,
                "likwid-features supports only Intel processors");
  }
  LIKWID_REQUIRE(cpu >= 0 && cpu < kernel_.machine().num_threads(),
                 "cpu out of range");
}

unsigned Features::disable_bit(Prefetcher p) const {
  switch (p) {
    case Prefetcher::kHardware: return msr::kMiscHwPrefetcherDisable;
    case Prefetcher::kAdjacentLine: return msr::kMiscAdjacentLineDisable;
    case Prefetcher::kDcu: return msr::kMiscDcuPrefetcherDisable;
    case Prefetcher::kIp: return msr::kMiscIpPrefetcherDisable;
  }
  return 0;
}

bool Features::prefetcher_enabled(Prefetcher p) const {
  const std::uint64_t misc = kernel_.msr_read(cpu_, msr::kMiscEnable);
  return !util::test_bit(misc, disable_bit(p));
}

void Features::set_prefetcher(Prefetcher p, bool enable) {
  const std::uint64_t misc = kernel_.msr_read(cpu_, msr::kMiscEnable);
  kernel_.msr_write(cpu_, msr::kMiscEnable,
                    util::assign_bit(misc, disable_bit(p), !enable));
}

std::vector<FeatureState> Features::report() const {
  const std::uint64_t misc = kernel_.msr_read(cpu_, msr::kMiscEnable);
  const auto on = [&](unsigned bit) { return util::test_bit(misc, bit); };
  const auto enabled = [&](unsigned bit) {
    return on(bit) ? "enabled" : "disabled";
  };
  const auto inverted = [&](unsigned bit) {
    return on(bit) ? "disabled" : "enabled";
  };

  std::vector<FeatureState> out;
  out.push_back({"Fast-Strings", enabled(msr::kMiscFastStrings)});
  out.push_back(
      {"Automatic Thermal Control", enabled(msr::kMiscThermalControl)});
  out.push_back(
      {"Performance monitoring", enabled(msr::kMiscPerfMonAvailable)});
  out.push_back(
      {"Hardware Prefetcher", inverted(msr::kMiscHwPrefetcherDisable)});
  out.push_back({"Branch Trace Storage",
                 on(msr::kMiscBtsUnavailable) ? "not supported" : "supported"});
  out.push_back({"PEBS", on(msr::kMiscPebsUnavailable) ? "not supported"
                                                       : "supported"});
  out.push_back({"Intel Enhanced SpeedStep", enabled(msr::kMiscSpeedStep)});
  out.push_back({"MONITOR/MWAIT",
                 on(msr::kMiscMonitorMwait) ? "supported" : "not supported"});
  out.push_back({"Adjacent Cache Line Prefetch",
                 inverted(msr::kMiscAdjacentLineDisable)});
  out.push_back(
      {"Limit CPUID Maxval", enabled(msr::kMiscLimitCpuidMaxval)});
  out.push_back({"XD Bit Disable", enabled(msr::kMiscXdBitDisable)});
  out.push_back({"DCU Prefetcher", inverted(msr::kMiscDcuPrefetcherDisable)});
  out.push_back(
      {"Intel Dynamic Acceleration", inverted(msr::kMiscIdaDisable)});
  out.push_back({"IP Prefetcher", inverted(msr::kMiscIpPrefetcherDisable)});
  return out;
}

}  // namespace likwid::core
