// affinity.hpp — likwid-pin's core: enforce thread-core affinity from the
// outside, with no application code changes.
//
// The real tool preloads a shared library that overloads pthread_create;
// each created thread is pinned, in creation order, to the next entry of a
// core list, except threads selected by a skip mask (OpenMP shepherds, MPI
// progress threads). Configuration travels through environment variables.
// PinWrapper reproduces the wrapper library against the simulated thread
// runtime; helpers provide the thread-model presets and the placement
// policies used in the paper's case studies.
#pragma once

#include <string>
#include <vector>

#include "core/topology.hpp"
#include "ossim/threads.hpp"
#include "util/cpulist.hpp"
#include "util/env.hpp"

namespace likwid::core {

/// Threading-model presets (-t): which newly created threads are runtime
/// service threads that must not be pinned.
enum class ThreadModel { kGcc, kIntel, kIntelMpi, kCustom };

/// The paper's skip masks: gcc 0x0, intel 0x1, intel+Intel MPI 0x3.
util::SkipMask default_skip_mask(ThreadModel model);

/// Parse "-t gcc|intel|intel-mpi".
ThreadModel parse_thread_model(const std::string& text);

struct PinConfig {
  std::vector<int> cpu_list;  ///< -c; threads pinned round-robin through it
  util::SkipMask skip;        ///< -s overrides the model's default
  ThreadModel model = ThreadModel::kGcc;

  /// Encode into the environment the wrapper library reads (and disable the
  /// compiler's own affinity, as the tool sets KMP_AFFINITY=disabled).
  void to_environment(util::Environment& env) const;
  static PinConfig from_environment(const util::Environment& env);
};

/// The wrapper-library state machine. Construction pins the main thread to
/// the first core of the list (likwid-pin does this before exec'ing the
/// program); every observed pthread_create pins the new thread to the next
/// list entry unless skipped. The list wraps around when exhausted.
class PinWrapper {
 public:
  /// Installs itself as the runtime's create hook; `runtime` must outlive
  /// the wrapper. Throws if the cpu list is empty.
  PinWrapper(ossim::ThreadRuntime& runtime, PinConfig config);
  ~PinWrapper();

  PinWrapper(const PinWrapper&) = delete;
  PinWrapper& operator=(const PinWrapper&) = delete;

  int pinned_count() const { return pinned_; }
  int skipped_count() const { return skipped_; }
  const PinConfig& config() const { return config_; }

 private:
  void on_create(int create_index, int tid);

  ossim::ThreadRuntime& runtime_;
  PinConfig config_;
  std::size_t next_entry_ = 0;  ///< next cpu_list position
  int pinned_ = 0;
  int skipped_ = 0;
};

/// Placement helpers for the case studies -------------------------------

/// "Scatter" policy (Fig. 6, KMP_AFFINITY=scatter): distribute n threads
/// round-robin over sockets, filling physical cores before SMT siblings.
std::vector<int> scatter_cpu_list(const NodeTopology& topo, int n);

/// The paper's likwid-pin list for Figs. 5/8/10: threads equally
/// distributed over the sockets, physical cores first, then SMT —
/// identical to scatter but returned for all hardware threads so callers
/// can prefix-select.
std::vector<int> physical_first_cpu_list(const NodeTopology& topo);

/// Section V future work, implemented: "likwid-pin will be equipped with
/// cpuset support, so that logical core IDs may be used when binding
/// threads." Translates a logical selection ("L:0-5" on the command line)
/// into physical os ids: logical id k is the k-th entry of the
/// topology-aware physical-first enumeration. Throws kInvalidArgument for
/// logical ids beyond the machine.
std::vector<int> resolve_logical_cpu_list(const NodeTopology& topo,
                                          const std::vector<int>& logical);

/// Parse a -c argument that may be physical ("0-3,8") or logical
/// ("L:0-5"); returns the physical os-id list.
std::vector<int> parse_pin_cpu_expression(const NodeTopology& topo,
                                          const std::string& text);

}  // namespace likwid::core
