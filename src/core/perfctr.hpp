// perfctr.hpp — likwid-perfctr's measurement core.
//
// Responsibilities, mirroring the real tool:
//   * translate event names / performance groups into counter programming
//     for the target architecture (PMC/FIXC/UPMC assignment, with fixed
//     counters always measured on architectures that have them),
//   * enforce "socket locks" for uncore events: exactly one measured
//     hardware thread per socket programs and reads the uncore PMU,
//   * start/stop/read counters through the msr device with wrap-aware
//     deltas, strictly core-based (whatever runs on a measured core is
//     counted — the tool never filters by process),
//   * counter multiplexing: several event sets measured round-robin, with
//     counts extrapolated to the full runtime,
//   * derived metrics evaluated from the group formulas.
//
// Data flow is interned end-to-end: event and metric names are interned
// into core::NameTable ids at set-up time, counts travel as dense
// CountSlab matrices (cpu row x assignment slot), and each group formula
// is compiled once into a CompiledMetric whose registers are the set's
// slots plus the trailing `time` and `clock` registers. Strings reappear
// only at the output boundary.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch_program.hpp"
#include "core/compiled_metric.hpp"
#include "core/count_slab.hpp"
#include "core/name_table.hpp"
#include "core/perf_groups.hpp"
#include "hwsim/arch.hpp"
#include "ossim/kernel.hpp"

namespace likwid::core {

/// A single event placed on a physical counter.
struct CounterAssignment {
  std::string event_name;
  NameId event_id = kInvalidNameId;  ///< interned event_name
  std::string counter_name;          ///< "PMC0", "FIXC1", "UPMC3"
  hwsim::CounterClass klass = hwsim::CounterClass::kCore;
  int index = 0;             ///< index within the class
  const hwsim::EventEncoding* encoding = nullptr;
};

/// Raw counter snapshot for one cpu (used by the marker API).
struct CounterSnapshot {
  std::vector<std::uint64_t> values;  ///< one per assignment of the set
};

class PerfCtr {
 public:
  /// Measure on the given hardware threads (os ids, as `-c 0-3`).
  PerfCtr(ossim::SimKernel& kernel, std::vector<int> cpus);

  PerfCtr(const PerfCtr&) = delete;
  PerfCtr& operator=(const PerfCtr&) = delete;

  // --- configuration ----------------------------------------------------

  /// Append a performance group as the next event set. Throws
  /// Error(kUnsupported) if the architecture lacks the group.
  void add_group(const std::string& group_name);

  /// Append a custom event set: "EVT:PMC0,EVT2:PMC1" with explicit
  /// counters, or "EVT,EVT2" for automatic assignment.
  void add_custom(const std::string& event_spec);

  int num_event_sets() const { return static_cast<int>(sets_.size()); }
  int current_set() const { return current_; }

  /// Make `set` the one programmed by the next start() (the flat API's
  /// likwid_setupCounters). Throws Error(kNotFound) for an unknown set and
  /// Error(kInvalidState) while the counters are running.
  void select_set(int set);

  /// The group behind a set (std::nullopt for custom sets).
  const std::optional<EventGroup>& group_of(int set) const;
  const std::vector<CounterAssignment>& assignments_of(int set) const;

  /// Slot (= assignment index = compiled register index) of an event in a
  /// set; std::nullopt when the set does not count it.
  std::optional<std::size_t> slot_of(int set, std::string_view event) const;

  // --- measurement ------------------------------------------------------

  void start();   ///< program + zero + enable the current set
  void stop();    ///< disable and accumulate deltas + elapsed time
  void rotate();  ///< multiplexing: stop, advance to the next set, start

  bool running() const { return running_; }

  /// Raw per-cpu snapshot of the current set's counters (marker API).
  CounterSnapshot snapshot(int cpu) const;
  /// snapshot() into a reusable buffer — the steady-state form start()/
  /// stop() use so the sampling loop never allocates.
  void snapshot_into(int cpu, CounterSnapshot& out) const;

  /// Wrap-aware difference between two snapshots of the current set.
  std::vector<double> snapshot_delta(const CounterSnapshot& before,
                                     const CounterSnapshot& after) const;
  /// snapshot_delta() into a reusable buffer.
  void snapshot_delta_into(const CounterSnapshot& before,
                           const CounterSnapshot& after,
                           std::vector<double>& out) const;

  // --- results ------------------------------------------------------------

  struct SetResults {
    CountSlab counts;             ///< accumulated deltas, cpu row x slot
    double measured_seconds = 0;  ///< time this set was live
  };
  const SetResults& results(int set) const;

  /// A zeroed slab with the set's shape (external accumulators — markers).
  CountSlab make_slab(int set) const;

  /// Total measured wall time across all sets.
  double total_seconds() const;

  /// Counts corrected for multiplexing: measured * total/measured_time.
  double extrapolated_count(int set, int cpu, std::string_view event) const;

  /// The whole set's counts extrapolated at once (dense twin of
  /// extrapolated_count, and what the writers and metrics consume).
  CountSlab extrapolated_counts(int set) const;
  /// extrapolated_counts() into a reusable slab (copy-assignment keeps the
  /// destination's capacity, so refills after warm-up never allocate).
  void extrapolated_counts_into(int set, CountSlab& out) const;

  /// One derived metric evaluated per measured cpu; `values` is aligned
  /// with `cpus()` and the name is resolved through the NameTable only
  /// when asked for.
  struct MetricRow {
    NameId name_id = kInvalidNameId;
    std::shared_ptr<const std::vector<int>> cpus;  ///< row -> os cpu id
    std::vector<double> values;

    const std::string& name() const { return resolve_name(name_id); }

    /// Value for an os cpu id; throws Error(kNotFound) when unmeasured.
    double at(int cpu) const;
    /// Value for an os cpu id, or `fallback` when unmeasured.
    double value_or(int cpu, double fallback) const noexcept;
  };

  /// Metric names of a group set in display order (interned); empty for
  /// custom sets.
  std::vector<NameId> metric_ids(int set) const;

  /// Evaluate the derived metrics of a group set per measured cpu.
  std::vector<MetricRow> compute_metrics(int set) const;

  /// Evaluate the metrics over externally accumulated counts (marker
  /// regions and interval sampling reuse the group machinery for metric
  /// evaluation and reporting). `fallback_seconds` supplies the runtime
  /// for formulas when the set counts no cycles event (negative: use the
  /// set's measured wall time). With `wall_time`, the formulas always
  /// evaluate `time` as `fallback_seconds` even when the set counts
  /// cycles — the continuous-monitoring semantic, where rates are per
  /// sampling interval rather than per unhalted-cycle busy time.
  ///
  /// This is the row-at-a-time SCALAR interpreter, kept as the
  /// differential oracle for the batched engine below (and for callers
  /// that want standalone rows). Production paths use the batched form.
  std::vector<MetricRow> compute_metrics_for(
      int set, const CountSlab& counts, double fallback_seconds = -1.0,
      bool wall_time = false) const;

  /// The batched twin of compute_metrics_for: evaluates the set's fused
  /// BatchProgram across all cpu rows at once into a reusable MetricBatch.
  /// Bit-equal to the scalar interpreter by contract; allocation-free once
  /// `out` is warm. Same `fallback_seconds` / `wall_time` semantics.
  void compute_metrics_batched(int set, const CountSlab& counts,
                               MetricBatch& out,
                               double fallback_seconds = -1.0,
                               bool wall_time = false) const;

  /// The fused step DAG of a group set (diagnostics / benchmarks); throws
  /// like group_of for out-of-range sets. Empty program for custom sets.
  const BatchProgram& fused_metrics(int set) const;

  const std::vector<int>& cpus() const { return *cpus_; }
  /// The shared cpu list backing every slab and metric row of this ctr.
  const std::shared_ptr<const std::vector<int>>& cpus_ptr() const {
    return cpus_;
  }
  ossim::SimKernel& kernel() { return kernel_; }
  /// Socket-lock holders: the first measured cpu of each socket.
  const std::vector<int>& socket_lock_cpus() const { return lock_cpus_; }
  hwsim::Arch arch() const { return arch_; }
  double clock_hz() const;

 private:
  /// A group formula lowered to its postfix program at add_group time.
  struct CompiledGroupMetric {
    NameId name_id = kInvalidNameId;
    CompiledMetric program;
  };

  struct EventSet {
    std::vector<CounterAssignment> assignments;
    std::optional<EventGroup> group;
    std::vector<CompiledGroupMetric> programs;  ///< empty for custom sets
    BatchProgram batch;    ///< all programs fused (empty for custom sets)
    int cycles_slot = -1;  ///< slot counting core cycles, -1 if none
    SetResults results;
  };

  void add_fixed_counters(EventSet& set) const;
  void validate_and_store(EventSet set);
  std::uint32_t counter_msr(const CounterAssignment& a) const;
  std::uint32_t select_msr(const CounterAssignment& a) const;
  int counter_bits(const CounterAssignment& a) const;
  bool owns_uncore(int cpu) const;
  void program_set(const EventSet& set);
  void enable_set(const EventSet& set);
  void disable_set(const EventSet& set);

  ossim::SimKernel& kernel_;
  hwsim::Arch arch_;
  std::shared_ptr<const std::vector<int>> cpus_;
  std::vector<int> lock_cpus_;
  std::vector<EventSet> sets_;
  int current_ = 0;
  bool running_ = false;
  double start_time_ = 0;
  /// start values per cpu row (cpus() order) of the running set; resized,
  /// never reallocated, across start()/stop() cycles
  std::vector<CounterSnapshot> start_values_;
  /// stop() read-out scratch, reused so rotate() stays allocation-free
  CounterSnapshot stop_snapshot_;
  std::vector<double> stop_delta_;
};

}  // namespace likwid::core
