// batch_program.hpp — fused struct-of-arrays execution of a group's metrics.
//
// CompiledMetric evaluates ONE formula for ONE cpu row: the monitoring loop
// therefore re-ran every shared subexpression (time, clock, per-event
// deltas) once per metric per cpu. A BatchProgram fuses all formulas of an
// event set into a single step DAG at group-setup time — common
// subexpressions are merged by structural value numbering — and evaluates
// each step across ALL cpu rows of a CountSlab at once: one tight,
// vectorizable loop per step over dense columns, no per-row dispatch.
//
// Bit-equality contract: for every register file the batched evaluator
// performs exactly the IEEE-754 double operations the scalar interpreter
// performs, in the same dependency order (CSE only merges structurally
// identical subtrees, which compute identical values; every step
// materializes its result, so the compiler cannot contract operations
// across steps into FMAs). tests/batch_program_test.cpp enforces this
// differentially over every machine x group catalog entry, and the scalar
// CompiledMetric::evaluate stays in the tree as the oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/compiled_metric.hpp"
#include "core/count_slab.hpp"
#include "core/name_table.hpp"

namespace likwid::core {

/// Where a BatchProgram reads its registers for one evaluation.
struct BatchBinding {
  /// Counts, one slab row per covered cpu; null/empty means every event
  /// register reads 0.0 (the scalar path's "slab does not cover this cpu"
  /// convention).
  const CountSlab* counts = nullptr;
  /// Output row -> slab row (-1: uncovered, registers read 0.0). Empty
  /// means identity — valid when the slab's cpu list IS the output list.
  std::span<const int> row_map;
  /// Uniform value of the `time` register when `time_slot < 0`.
  double time_value = 0.0;
  /// When >= 0: `time` is counts[row][time_slot] / clock_hz per row (the
  /// busy-time semantic derived from the core-cycles slot).
  int time_slot = -1;
  /// Value of the `clock` register (and the time divisor).
  double clock_hz = 0.0;
};

/// Reusable evaluation workspace; sized on first use, then allocation-free.
struct BatchScratch {
  std::vector<double> columns;            ///< step-major, num_steps x rows
  std::vector<double> uniform;            ///< per-step scalar value
  std::vector<std::uint8_t> uniform_flag;  ///< step is row-invariant
};

class BatchProgram {
 public:
  BatchProgram() = default;

  /// Fuse the postfix programs of one event set (register convention:
  /// regs [0, slab_slots) are the slots, slab_slots is `time`,
  /// slab_slots + 1 is `clock`) into a shared step DAG. Null entries are
  /// not allowed; an empty span yields a program with zero metrics.
  static BatchProgram fuse(std::span<const CompiledMetric* const> programs,
                           std::size_t slab_slots);

  /// Evaluate every metric for `rows` output rows into `out`, metric-major
  /// (out[m * rows + r] = metric m on row r, so out.size() must be
  /// num_metrics() * rows). Allocation-free once `scratch` is warm.
  void evaluate(const BatchBinding& binding, std::size_t rows,
                BatchScratch& scratch, std::span<double> out) const;

  /// The zero-division analysis over the fused DAG, one risk vector per
  /// metric in fuse() order. Reports exactly what
  /// CompiledMetric::division_risks reports for the corresponding scalar
  /// program (CSE-duplicated division sites included) — likwid-lint
  /// cross-checks the two on every group.
  std::vector<std::vector<CompiledMetric::DivisionRisk>> division_risks(
      const std::vector<bool>& nonzero_regs) const;

  std::size_t num_metrics() const noexcept { return roots_.size(); }
  std::size_t num_steps() const noexcept { return steps_.size(); }
  /// Total scalar instructions fed into fuse(); num_steps() below this
  /// is the CSE win (tests assert it on real groups).
  std::size_t fused_instructions() const noexcept {
    return fused_instructions_;
  }
  std::size_t slab_slots() const noexcept { return slab_slots_; }

 private:
  enum class StepOp : std::uint8_t {
    kConst,  ///< uniform `value`
    kReg,    ///< gather slab column `reg`
    kTime,   ///< the `time` built-in (uniform or cycles/clock per row)
    kClock,  ///< the `clock` built-in (uniform)
    kAdd,
    kSub,
    kMul,
    kDiv,  ///< x/0 -> 0, matching CompiledMetric::evaluate
    kNeg,
  };

  struct Step {
    StepOp op;
    std::int32_t a = -1;  ///< left operand step (binaries, kNeg)
    std::int32_t b = -1;  ///< right operand step (binaries)
    std::int32_t reg = 0;  ///< kReg slot; slots / slots+1 for kTime/kClock
    double value = 0;      ///< kConst payload
  };

  std::vector<Step> steps_;
  /// Result step per metric; -1 for an empty program (evaluates to 0.0,
  /// the scalar interpreter's empty-stack result).
  std::vector<std::int32_t> roots_;
  /// Per metric: the step of every kDiv INSTRUCTION in program order.
  /// CSE-merged duplicates appear once per original instruction so
  /// division_risks reports per-site like the scalar analysis.
  std::vector<std::vector<std::int32_t>> div_sites_;
  std::size_t slab_slots_ = 0;
  std::size_t fused_instructions_ = 0;
};

/// The batched twin of std::vector<PerfCtr::MetricRow>: one dense
/// metric-major value matrix plus interned names, with row views that
/// mirror MetricRow's accessors. Engine-side it is a reusable output
/// buffer — reset()/clear() keep capacity, so the steady-state sampling
/// path refills it without allocating.
class MetricBatch {
 public:
  /// One metric across all measured cpus (values[r] belongs to
  /// (*cpus)[r]). A cheap value type — spans into the batch.
  struct RowView {
    NameId name_id = kInvalidNameId;
    const std::vector<int>* cpus = nullptr;  ///< row -> os cpu id
    std::span<const double> values;

    const std::string& name() const { return resolve_name(name_id); }

    /// Value for an os cpu id; throws Error(kNotFound) when unmeasured.
    double at(int cpu) const;
    /// Value for an os cpu id, or `fallback` when unmeasured.
    double value_or(int cpu, double fallback) const noexcept;
  };

  /// Forward iterator yielding RowView by value (range-for support).
  class const_iterator {
   public:
    using value_type = RowView;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const MetricBatch* batch, std::size_t index)
        : batch_(batch), index_(index) {}

    RowView operator*() const { return (*batch_)[index_]; }
    const_iterator& operator++() {
      ++index_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++index_;
      return old;
    }
    bool operator==(const const_iterator& o) const {
      return index_ == o.index_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    const MetricBatch* batch_ = nullptr;
    std::size_t index_ = 0;
  };

  bool empty() const noexcept { return names_.empty(); }
  std::size_t size() const noexcept { return names_.size(); }
  std::size_t rows() const noexcept { return rows_; }

  RowView operator[](std::size_t m) const {
    RowView view;
    view.name_id = names_[m];
    view.cpus = cpus_ ? cpus_.get() : nullptr;
    view.values = values(m);
    return view;
  }

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, names_.size()}; }

  std::span<const double> values(std::size_t m) const {
    return {values_.data() + m * rows_, rows_};
  }

  /// Drop all rows, keeping every buffer's capacity.
  void clear() noexcept {
    names_.clear();
    values_.clear();
    rows_ = 0;
    cpus_.reset();
  }

  // --- engine-facing refill interface (PerfCtr::compute_metrics_batched) --

  /// Shape the batch for `metrics` rows over `cpus`; existing capacity is
  /// reused. Names must be set afterwards, values via mutable_values().
  void reset(std::shared_ptr<const std::vector<int>> cpus,
             std::size_t metrics) {
    cpus_ = std::move(cpus);
    rows_ = cpus_ ? cpus_->size() : 0;
    names_.resize(metrics);
    values_.resize(metrics * rows_);
  }

  void set_name(std::size_t m, NameId id) { names_[m] = id; }

  /// The whole metric-major value matrix (size() * rows() doubles).
  std::span<double> mutable_values() noexcept { return values_; }

  BatchScratch& scratch() noexcept { return scratch_; }
  std::vector<int>& row_map_scratch() noexcept { return row_map_; }

 private:
  std::shared_ptr<const std::vector<int>> cpus_;
  std::vector<NameId> names_;
  std::size_t rows_ = 0;
  std::vector<double> values_;  ///< metric-major, size() x rows()
  BatchScratch scratch_;        ///< evaluation workspace, reused per poll
  std::vector<int> row_map_;    ///< binding scratch, reused per poll
};

}  // namespace likwid::core
