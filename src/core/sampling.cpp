#include "core/sampling.hpp"

#include <cmath>

#include "util/status.hpp"

namespace likwid::core {

SamplingProfiler::SamplingProfiler(PerfCtr& ctr, int cpu,
                                   int assignment_index,
                                   std::uint64_t period,
                                   double interrupt_cycles)
    : ctr_(ctr),
      cpu_(cpu),
      index_(assignment_index),
      period_(period),
      interrupt_cycles_(interrupt_cycles) {
  LIKWID_REQUIRE(period_ > 0, "sampling period must be positive");
  LIKWID_REQUIRE(interrupt_cycles_ >= 0, "interrupt cost cannot be negative");
  LIKWID_REQUIRE(ctr_.running(), "attach the profiler to started counters");
  const auto& assignments = ctr_.assignments_of(ctr_.current_set());
  LIKWID_REQUIRE(assignment_index >= 0 &&
                     assignment_index <
                         static_cast<int>(assignments.size()),
                 "assignment index out of range");
  bool measured = false;
  for (const int c : ctr_.cpus()) {
    if (c == cpu_) measured = true;
  }
  LIKWID_REQUIRE(measured, "cpu is not measured by this PerfCtr");
  last_ = ctr_.snapshot(cpu_);
}

void SamplingProfiler::poll(const std::string& label) {
  const CounterSnapshot now = ctr_.snapshot(cpu_);
  const std::vector<double> delta = ctr_.snapshot_delta(last_, now);
  last_ = now;
  pending_ += delta[static_cast<std::size_t>(index_)];
  if (pending_ < static_cast<double>(period_)) return;
  const double fired = std::floor(pending_ / static_cast<double>(period_));
  pending_ -= fired * static_cast<double>(period_);
  const auto n = static_cast<std::uint64_t>(fired);
  samples_ += n;
  histogram_[label] += n;
}

double SamplingProfiler::overhead_seconds() const {
  return static_cast<double>(samples_) * interrupt_cycles_ /
         ctr_.clock_hz();
}

IntervalSampler::IntervalSampler(PerfCtr& ctr)
    : ctr_(ctr), last_time_(ctr.kernel().now()) {}

namespace {

/// RAII for the poll-overlap tripwire (see the class contract).
class PollScope {
 public:
  explicit PollScope(std::atomic<bool>& flag) : flag_(flag) {
    if (flag_.exchange(true, std::memory_order_acq_rel)) {
      throw_error(ErrorCode::kInvalidState,
                  "IntervalSampler::poll re-entered while a poll is in "
                  "flight; a sampler is single-threaded");
    }
  }
  ~PollScope() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool>& flag_;
};

}  // namespace

IntervalSampler::Interval IntervalSampler::poll(bool rotate) {
  Interval iv;
  poll_into(iv, rotate);
  return iv;
}

void IntervalSampler::poll_into(Interval& iv, bool rotate) {
  const PollScope scope(polling_);
  const int set = ctr_.current_set();
  if (rotate && ctr_.num_event_sets() > 1) {
    ctr_.rotate();
  } else {
    ctr_.stop();
    ctr_.start();
  }

  iv.set = set;
  iv.t_start = last_time_;
  iv.t_end = ctr_.kernel().now();
  last_time_ = iv.t_end;

  // Dense interval delta: copy the cumulative slab, subtract the previous
  // poll's cumulative values — two flat array passes, no lookups. Sized
  // here, not at construction: event sets may be added after the sampler.
  // All copies are copy-ASSIGNMENTS into retained buffers: once every set
  // has been polled, the slabs refill in place without allocating.
  if (prev_.size() < static_cast<std::size_t>(ctr_.num_event_sets())) {
    prev_.resize(static_cast<std::size_t>(ctr_.num_event_sets()));
  }
  const CountSlab& cumulative = ctr_.results(set).counts;
  iv.counts = cumulative;
  CountSlab& prev = prev_[static_cast<std::size_t>(set)];
  if (!prev.empty()) iv.counts.subtract(prev);
  prev = cumulative;

  if (ctr_.group_of(set)) {
    ctr_.compute_metrics_batched(set, iv.counts, iv.metrics, iv.seconds(),
                                 /*wall_time=*/true);
  } else {
    iv.metrics.clear();
  }
}

}  // namespace likwid::core
