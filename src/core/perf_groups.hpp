// perf_groups.hpp — the preconfigured event sets ("performance groups")
// with derived metrics, as listed in the paper:
//
//   FLOPS_DP  Double Precision MFlops/s      FLOPS_SP  Single Precision
//   L2/L3/MEM cache & memory bandwidths      CACHE/L2CACHE/L3CACHE miss
//   DATA      Load to store ratio            BRANCH / TLB miss rates
//
// Groups are defined per architecture over that architecture's documented
// event names ("we try to provide the same preconfigured event groups on
// all supported architectures, as long as the native events support them").
// Architectures without suitable native events simply lack the group.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hwsim/arch.hpp"

namespace likwid::core {

struct GroupMetric {
  std::string name;     ///< e.g. "DP MFlops/s"
  std::string formula;  ///< MetricExpr over event names, `time`, `clock`
};

struct EventGroup {
  std::string name;         ///< e.g. "FLOPS_DP"
  std::string description;  ///< paper wording
  /// Events to program, in display order. Fixed-counter events (on
  /// architectures that have them) are added implicitly by the measurement
  /// layer and referenced by the formulas.
  std::vector<std::string> events;
  std::vector<GroupMetric> metrics;
};

/// All group names the suite defines (whether or not an arch supports them).
const std::vector<std::string>& group_names();

/// Groups available on an architecture.
std::vector<EventGroup> supported_groups(hwsim::Arch arch);

/// Find a group by name; std::nullopt if this architecture cannot support
/// it with native events.
std::optional<EventGroup> find_group(hwsim::Arch arch, std::string_view name);

}  // namespace likwid::core
