#include "core/affinity.hpp"

#include <algorithm>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::core {

util::SkipMask default_skip_mask(ThreadModel model) {
  switch (model) {
    case ThreadModel::kGcc: return util::SkipMask(0x0);
    case ThreadModel::kIntel: return util::SkipMask(0x1);
    case ThreadModel::kIntelMpi: return util::SkipMask(0x3);
    case ThreadModel::kCustom: return util::SkipMask(0x0);
  }
  return util::SkipMask(0x0);
}

ThreadModel parse_thread_model(const std::string& text) {
  const std::string t = util::to_lower(text);
  if (t == "gcc") return ThreadModel::kGcc;
  if (t == "intel") return ThreadModel::kIntel;
  if (t == "intel-mpi" || t == "intelmpi") return ThreadModel::kIntelMpi;
  throw_error(ErrorCode::kInvalidArgument,
              "unknown thread model '" + text + "' (gcc, intel, intel-mpi)");
}

void PinConfig::to_environment(util::Environment& env) const {
  env.set("LIKWID_PIN_CPULIST", util::format_cpu_list(cpu_list));
  env.set("LIKWID_SKIP_MASK", util::strprintf("0x%llX",
          static_cast<unsigned long long>(skip.bits())));
  switch (model) {
    case ThreadModel::kGcc: env.set("LIKWID_PIN_TYPE", "gcc"); break;
    case ThreadModel::kIntel: env.set("LIKWID_PIN_TYPE", "intel"); break;
    case ThreadModel::kIntelMpi:
      env.set("LIKWID_PIN_TYPE", "intel-mpi");
      break;
    case ThreadModel::kCustom: env.set("LIKWID_PIN_TYPE", "custom"); break;
  }
  // The current version of LIKWID disables the Intel compiler's own
  // affinity interface automatically to avoid interference.
  env.set("KMP_AFFINITY", "disabled");
}

PinConfig PinConfig::from_environment(const util::Environment& env) {
  PinConfig cfg;
  const auto list = env.get("LIKWID_PIN_CPULIST");
  LIKWID_REQUIRE(list.has_value(),
                 "LIKWID_PIN_CPULIST missing from environment");
  cfg.cpu_list = util::parse_cpu_list(*list);
  const auto skip = env.get("LIKWID_SKIP_MASK");
  cfg.skip = skip ? util::SkipMask::parse(*skip) : util::SkipMask(0);
  const auto type = env.get("LIKWID_PIN_TYPE");
  if (type && *type != "custom") {
    cfg.model = parse_thread_model(*type);
  } else {
    cfg.model = ThreadModel::kCustom;
  }
  return cfg;
}

PinWrapper::PinWrapper(ossim::ThreadRuntime& runtime, PinConfig config)
    : runtime_(runtime), config_(std::move(config)) {
  LIKWID_REQUIRE(!config_.cpu_list.empty(), "empty pin cpu list");
  // likwid-pin binds the process (main thread) to the first list entry
  // before the application starts.
  runtime_.set_affinity(0, ossim::CpuMask::single(config_.cpu_list.front()));
  next_entry_ = 1;
  pinned_ = 1;
  runtime_.set_create_hook(
      [this](int create_index, int tid) { on_create(create_index, tid); });
}

PinWrapper::~PinWrapper() { runtime_.clear_create_hook(); }

void PinWrapper::on_create(int create_index, int tid) {
  if (config_.skip.skips(static_cast<unsigned>(create_index))) {
    ++skipped_;
    return;
  }
  const int cpu =
      config_.cpu_list[next_entry_ % config_.cpu_list.size()];
  ++next_entry_;
  ++pinned_;
  runtime_.set_affinity(tid, ossim::CpuMask::single(cpu));
}

std::vector<int> physical_first_cpu_list(const NodeTopology& topo) {
  // Round-robin over sockets; within a socket walk cores in core-id order;
  // SMT thread 0 of every core first, then SMT thread 1, and so on.
  std::vector<int> list;
  for (int smt = 0; smt < topo.num_threads_per_core; ++smt) {
    for (int core_rank = 0; core_rank < topo.num_cores_per_socket;
         ++core_rank) {
      for (int socket = 0; socket < topo.num_sockets; ++socket) {
        // topo.sockets[socket] is ordered (core, smt); entry index:
        const auto& members = topo.sockets[static_cast<std::size_t>(socket)];
        const std::size_t idx = static_cast<std::size_t>(
            core_rank * topo.num_threads_per_core + smt);
        LIKWID_ASSERT(idx < members.size(), "socket member indexing");
        list.push_back(members[idx]);
      }
    }
  }
  return list;
}

std::vector<int> scatter_cpu_list(const NodeTopology& topo, int n) {
  LIKWID_REQUIRE(n >= 1, "scatter needs at least one thread");
  const std::vector<int> all = physical_first_cpu_list(topo);
  LIKWID_REQUIRE(n <= static_cast<int>(all.size()),
                 "more threads than hardware threads");
  return std::vector<int>(all.begin(), all.begin() + n);
}

std::vector<int> resolve_logical_cpu_list(const NodeTopology& topo,
                                          const std::vector<int>& logical) {
  const std::vector<int> all = physical_first_cpu_list(topo);
  std::vector<int> physical;
  physical.reserve(logical.size());
  for (const int l : logical) {
    LIKWID_REQUIRE(l >= 0 && l < static_cast<int>(all.size()),
                   "logical core id " + std::to_string(l) +
                       " exceeds the machine");
    physical.push_back(all[static_cast<std::size_t>(l)]);
  }
  return physical;
}

std::vector<int> parse_pin_cpu_expression(const NodeTopology& topo,
                                          const std::string& text) {
  if (util::starts_with(text, "L:")) {
    return resolve_logical_cpu_list(topo,
                                    util::parse_cpu_list(text.substr(2)));
  }
  const std::vector<int> physical = util::parse_cpu_list(text);
  for (const int cpu : physical) {
    LIKWID_REQUIRE(cpu < topo.num_hw_threads,
                   "cpu " + std::to_string(cpu) + " does not exist");
  }
  return physical;
}

}  // namespace likwid::core
