#include "core/topology.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace likwid::core {

using hwsim::CpuidRegs;
using hwsim::Vendor;
using util::extract_bits;

namespace {

Vendor decode_vendor(const CpuidRegs& leaf0) {
  char text[13] = {};
  std::memcpy(text + 0, &leaf0.ebx, 4);
  std::memcpy(text + 4, &leaf0.edx, 4);
  std::memcpy(text + 8, &leaf0.ecx, 4);
  if (std::string_view(text) == "GenuineIntel") return Vendor::kIntel;
  if (std::string_view(text) == "AuthenticAMD") return Vendor::kAmd;
  throw_error(ErrorCode::kUnsupported,
              std::string("unknown cpu vendor '") + text + "'");
}

std::string display_name(hwsim::Arch arch, std::uint32_t model) {
  switch (arch) {
    case hwsim::Arch::kPentiumM:
      return model == 0x09 ? "Intel Pentium M Banias processor"
                           : "Intel Pentium M Dothan processor";
    case hwsim::Arch::kAtom: return "Intel Atom processor";
    case hwsim::Arch::kCore2:
      return model == 0x0F ? "Intel Core 2 65nm processor"
                           : "Intel Core 2 45nm processor";
    case hwsim::Arch::kNehalem: return "Intel Nehalem EP processor";
    case hwsim::Arch::kWestmere: return "Intel Westmere EP processor";
    case hwsim::Arch::kK8: return "AMD K8 processor";
    case hwsim::Arch::kK10: return "AMD K10 processor";
  }
  return "Unknown processor";
}

struct ApicDecode {
  std::uint32_t apic_id = 0;
  int smt = 0;
  int core = 0;
  int socket = 0;
};

}  // namespace

NodeTopology probe_topology(const CpuidSource& cpuid, int num_cpus,
                            double clock_ghz) {
  LIKWID_REQUIRE(num_cpus >= 1, "node has no cpus");
  NodeTopology topo;
  topo.clock_ghz = clock_ghz;
  topo.num_hw_threads = num_cpus;

  const CpuidRegs leaf0 = cpuid(0, 0x0, 0);
  const std::uint32_t max_leaf = leaf0.eax;
  topo.vendor = decode_vendor(leaf0);

  const CpuidRegs leaf1 = cpuid(0, 0x1, 0);
  const std::uint32_t base_family = extract_bits(leaf1.eax, 8, 11);
  const std::uint32_t ext_family = extract_bits(leaf1.eax, 20, 27);
  const std::uint32_t base_model = extract_bits(leaf1.eax, 4, 7);
  const std::uint32_t ext_model = extract_bits(leaf1.eax, 16, 19);
  topo.family = base_family == 0xF ? base_family + ext_family : base_family;
  topo.model = (ext_model << 4) | base_model;
  topo.stepping = extract_bits(leaf1.eax, 0, 3);
  topo.arch = hwsim::classify_arch(topo.vendor, topo.family, topo.model);
  topo.cpu_name = display_name(topo.arch, topo.model);

  // --- per-cpu APIC decoding -------------------------------------------
  std::vector<ApicDecode> apics(static_cast<std::size_t>(num_cpus));
  const bool has_leaf_b =
      topo.vendor == Vendor::kIntel && max_leaf >= 0xB &&
      cpuid(0, 0xB, 0).ebx != 0;

  if (has_leaf_b) {
    for (int cpu = 0; cpu < num_cpus; ++cpu) {
      const CpuidRegs sl0 = cpuid(cpu, 0xB, 0);
      const CpuidRegs sl1 = cpuid(cpu, 0xB, 1);
      const unsigned smt_width = extract_bits(sl0.eax, 0, 4);
      const unsigned pkg_width = extract_bits(sl1.eax, 0, 4);
      const std::uint32_t x2apic = sl0.edx;
      ApicDecode d;
      d.apic_id = x2apic;
      d.smt = smt_width == 0
                  ? 0
                  : static_cast<int>(extract_bits(x2apic, 0, smt_width - 1));
      d.core = pkg_width == smt_width
                   ? 0
                   : static_cast<int>(
                         extract_bits(x2apic, smt_width, pkg_width - 1));
      d.socket = static_cast<int>(x2apic >> pkg_width);
      apics[static_cast<std::size_t>(cpu)] = d;
    }
  } else if (topo.vendor == Vendor::kIntel) {
    // Legacy Intel: leaf 1 gives logical count + initial APIC id, leaf 4
    // gives cores per package.
    const std::uint32_t logical_per_pkg = extract_bits(leaf1.ebx, 16, 23);
    std::uint32_t cores_per_pkg = 1;
    if (max_leaf >= 0x4) {
      const CpuidRegs l4 = cpuid(0, 0x4, 0);
      if (extract_bits(l4.eax, 0, 4) != 0) {
        cores_per_pkg =
            static_cast<std::uint32_t>(extract_bits(l4.eax, 26, 31)) + 1;
      }
    }
    const std::uint32_t smt_per_core =
        std::max(1u, logical_per_pkg / std::max(1u, cores_per_pkg));
    const unsigned smt_width = util::field_width(smt_per_core);
    const unsigned core_width = util::field_width(cores_per_pkg);
    for (int cpu = 0; cpu < num_cpus; ++cpu) {
      const CpuidRegs l1 = cpuid(cpu, 0x1, 0);
      const std::uint32_t apic = extract_bits(l1.ebx, 24, 31);
      ApicDecode d;
      d.apic_id = apic;
      d.smt = smt_width == 0
                  ? 0
                  : static_cast<int>(extract_bits(apic, 0, smt_width - 1));
      d.core = core_width == 0
                   ? 0
                   : static_cast<int>(extract_bits(apic, smt_width,
                                                   smt_width + core_width - 1));
      d.socket = static_cast<int>(apic >> (smt_width + core_width));
      apics[static_cast<std::size_t>(cpu)] = d;
    }
  } else {
    // AMD: core count from 0x80000008, APIC id from leaf 1.
    const CpuidRegs l8 = cpuid(0, 0x80000008u, 0);
    const std::uint32_t nc = extract_bits(l8.ecx, 0, 7) + 1;
    unsigned core_width = extract_bits(l8.ecx, 12, 15);
    if (core_width == 0) core_width = util::field_width(nc);
    for (int cpu = 0; cpu < num_cpus; ++cpu) {
      const CpuidRegs l1 = cpuid(cpu, 0x1, 0);
      const std::uint32_t apic = extract_bits(l1.ebx, 24, 31);
      ApicDecode d;
      d.apic_id = apic;
      d.smt = 0;
      d.core = core_width == 0
                   ? 0
                   : static_cast<int>(extract_bits(apic, 0, core_width - 1));
      d.socket = static_cast<int>(apic >> core_width);
      apics[static_cast<std::size_t>(cpu)] = d;
    }
  }

  // --- aggregate thread topology ---------------------------------------
  std::set<int> socket_ids;
  std::map<std::pair<int, int>, std::vector<int>> core_members;
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    const ApicDecode& d = apics[static_cast<std::size_t>(cpu)];
    socket_ids.insert(d.socket);
    core_members[{d.socket, d.core}].push_back(cpu);
    ThreadEntry e;
    e.os_id = cpu;
    e.apic_id = d.apic_id;
    e.thread_id = d.smt;
    e.core_id = d.core;
    e.socket_id = d.socket;
    topo.threads.push_back(e);
  }
  topo.num_sockets = static_cast<int>(socket_ids.size());
  LIKWID_ASSERT(topo.num_sockets > 0, "no sockets decoded");
  LIKWID_ASSERT(core_members.size() % socket_ids.size() == 0,
                "uneven cores per socket");
  topo.num_cores_per_socket =
      static_cast<int>(core_members.size() / socket_ids.size());
  topo.num_threads_per_core =
      static_cast<int>(core_members.begin()->second.size());

  topo.sockets.resize(socket_ids.size());
  for (const auto& t : topo.threads) {
    topo.sockets[static_cast<std::size_t>(t.socket_id)].push_back(t.os_id);
  }
  // Socket member lists in likwid order: SMT siblings adjacent
  // "( 0 12 1 13 2 14 ... )" — sort by (core, smt).
  for (auto& members : topo.sockets) {
    std::sort(members.begin(), members.end(), [&](int a, int b) {
      const auto& ta = topo.threads[static_cast<std::size_t>(a)];
      const auto& tb = topo.threads[static_cast<std::size_t>(b)];
      if (ta.core_id != tb.core_id) return ta.core_id < tb.core_id;
      return ta.thread_id < tb.thread_id;
    });
  }
  for (auto& [key, members] : core_members) {
    std::sort(members.begin(), members.end(), [&](int a, int b) {
      return topo.threads[static_cast<std::size_t>(a)].thread_id <
             topo.threads[static_cast<std::size_t>(b)].thread_id;
    });
    topo.cores.push_back(members);
  }

  // --- cache topology ---------------------------------------------------
  const int threads_per_socket =
      topo.num_cores_per_socket * topo.num_threads_per_core;

  const auto add_groups = [&](CacheEntry& entry) {
    // Build the sharing groups structurally from the decoded thread map:
    // an instance covers `threads_sharing` hw threads = a run of
    // consecutive cores (by core rank within the socket) times SMT.
    const int cores_per_instance =
        std::max(1, entry.threads_sharing / topo.num_threads_per_core);
    // Rank cores within each socket by core_id.
    for (int s = 0; s < topo.num_sockets; ++s) {
      std::vector<std::vector<int>> socket_cores;
      for (const auto& core : topo.cores) {
        if (topo.threads[static_cast<std::size_t>(core.front())].socket_id ==
            s) {
          socket_cores.push_back(core);
        }
      }
      std::sort(socket_cores.begin(), socket_cores.end(),
                [&](const auto& a, const auto& b) {
                  return topo.threads[static_cast<std::size_t>(a.front())]
                             .core_id <
                         topo.threads[static_cast<std::size_t>(b.front())]
                             .core_id;
                });
      for (std::size_t c = 0; c < socket_cores.size();
           c += static_cast<std::size_t>(cores_per_instance)) {
        std::vector<int> group;
        for (int k = 0; k < cores_per_instance &&
                        c + static_cast<std::size_t>(k) < socket_cores.size();
             ++k) {
          for (const int os : socket_cores[c + static_cast<std::size_t>(k)]) {
            group.push_back(os);
          }
        }
        entry.groups.push_back(std::move(group));
      }
    }
  };

  if (topo.vendor == Vendor::kIntel && max_leaf >= 0x4 &&
      extract_bits(cpuid(0, 0x4, 0).eax, 0, 4) != 0) {
    for (std::uint32_t sub = 0;; ++sub) {
      const CpuidRegs r = cpuid(0, 0x4, sub);
      const std::uint32_t type = extract_bits(r.eax, 0, 4);
      if (type == 0) break;
      CacheEntry e;
      e.type = type == 1 ? hwsim::CacheType::kData
               : type == 2 ? hwsim::CacheType::kInstruction
                           : hwsim::CacheType::kUnified;
      e.level = static_cast<int>(extract_bits(r.eax, 5, 7));
      const int capacity = static_cast<int>(extract_bits(r.eax, 14, 25)) + 1;
      e.threads_sharing = std::min(capacity, threads_per_socket);
      e.line_size = static_cast<std::uint32_t>(extract_bits(r.ebx, 0, 11)) + 1;
      e.associativity =
          static_cast<std::uint32_t>(extract_bits(r.ebx, 22, 31)) + 1;
      e.num_sets = r.ecx + 1;
      e.size_bytes = static_cast<std::uint64_t>(e.line_size) *
                     e.associativity * e.num_sets;
      e.inclusive = util::test_bit(r.edx, 1);
      if (e.type != hwsim::CacheType::kInstruction) {
        add_groups(e);
        topo.caches.push_back(e);
      }
    }
  } else if (topo.vendor == Vendor::kIntel && max_leaf >= 0x2) {
    // Pentium M era: descriptor table.
    const CpuidRegs r = cpuid(0, 0x2, 0);
    const std::uint32_t regs[4] = {r.eax, r.ebx, r.ecx, r.edx};
    for (int reg = 0; reg < 4; ++reg) {
      if (util::test_bit(regs[reg], 31)) continue;  // register invalid
      for (int byte = 0; byte < 4; ++byte) {
        if (reg == 0 && byte == 0) continue;  // AL: iteration count
        const auto code = static_cast<std::uint8_t>(
            (regs[reg] >> (8 * byte)) & 0xFF);
        if (code == 0) continue;
        const hwsim::CacheDescriptor* d = hwsim::find_descriptor(code);
        if (d == nullptr || d->type == hwsim::CacheType::kInstruction) {
          continue;
        }
        CacheEntry e;
        e.level = d->level;
        e.type = d->type;
        e.size_bytes = static_cast<std::uint64_t>(d->size_kb) * 1024;
        e.associativity = d->associativity;
        e.line_size = d->line_size;
        e.num_sets = static_cast<std::uint32_t>(
            e.size_bytes / (e.associativity * e.line_size));
        e.inclusive = true;
        e.threads_sharing = topo.num_threads_per_core;
        add_groups(e);
        topo.caches.push_back(e);
      }
    }
  } else {
    // AMD legacy cache leaves.
    const CpuidRegs l5 = cpuid(0, 0x80000005u, 0);
    {
      CacheEntry e;
      e.level = 1;
      e.type = hwsim::CacheType::kData;
      e.size_bytes = extract_bits(l5.ecx, 24, 31) * 1024;
      e.associativity = static_cast<std::uint32_t>(extract_bits(l5.ecx, 16, 23));
      e.line_size = static_cast<std::uint32_t>(extract_bits(l5.ecx, 0, 7));
      e.num_sets = static_cast<std::uint32_t>(
          e.size_bytes / (e.associativity * e.line_size));
      e.inclusive = false;
      e.threads_sharing = topo.num_threads_per_core;
      add_groups(e);
      topo.caches.push_back(e);
    }
    const CpuidRegs l6 = cpuid(0, 0x80000006u, 0);
    if (extract_bits(l6.ecx, 16, 31) > 0) {
      CacheEntry e;
      e.level = 2;
      e.type = hwsim::CacheType::kUnified;
      e.size_bytes = extract_bits(l6.ecx, 16, 31) * 1024;
      e.associativity = hwsim::amd_assoc_ways(
          static_cast<std::uint32_t>(extract_bits(l6.ecx, 12, 15)), 16);
      e.line_size = static_cast<std::uint32_t>(extract_bits(l6.ecx, 0, 7));
      e.num_sets = static_cast<std::uint32_t>(
          e.size_bytes / (e.associativity * e.line_size));
      e.inclusive = false;
      e.threads_sharing = topo.num_threads_per_core;
      add_groups(e);
      topo.caches.push_back(e);
    }
    if (extract_bits(l6.edx, 18, 31) > 0) {
      CacheEntry e;
      e.level = 3;
      e.type = hwsim::CacheType::kUnified;
      e.size_bytes = extract_bits(l6.edx, 18, 31) * 512 * 1024;
      e.associativity = hwsim::amd_assoc_ways(
          static_cast<std::uint32_t>(extract_bits(l6.edx, 12, 15)), 48);
      e.line_size = static_cast<std::uint32_t>(extract_bits(l6.edx, 0, 7));
      e.num_sets = static_cast<std::uint32_t>(
          e.size_bytes / (e.associativity * e.line_size));
      e.inclusive = false;
      e.threads_sharing = threads_per_socket;  // shared victim cache
      add_groups(e);
      topo.caches.push_back(e);
    }
  }

  std::stable_sort(topo.caches.begin(), topo.caches.end(),
                   [](const CacheEntry& a, const CacheEntry& b) {
                     return a.level < b.level;
                   });
  return topo;
}

NodeTopology probe_topology(const hwsim::SimMachine& machine) {
  const CpuidSource source = [&machine](int os_id, std::uint32_t leaf,
                                        std::uint32_t subleaf) {
    return machine.cpuid(os_id, leaf, subleaf);
  };
  return probe_topology(source, machine.num_threads(), machine.clock_ghz());
}

}  // namespace likwid::core
