// topology.hpp — likwid-topology's core: reconstruct the node's thread and
// cache topology exclusively from the cpuid instruction.
//
// The decoder never sees the machine description. It is handed a CpuidSource
// (a callable executing cpuid on a given hardware thread) plus the number of
// online cpus, and reconstructs everything the way the real tool does:
//   * vendor/family/model from leaves 0x0/0x1,
//   * APIC ids and field widths from leaf 0xB (Nehalem+), leaf 1 + leaf 4
//     (legacy Intel) or leaf 0x80000008 (AMD),
//   * cache parameters from leaf 4, the leaf-2 descriptor table, or the AMD
//     0x8000000x leaves.
// The paper notes this module is deliberately usable as a library from
// application code; probe_topology is that entry point.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hwsim/arch.hpp"
#include "hwsim/cpuid.hpp"
#include "hwsim/machine.hpp"
#include "hwsim/machine_spec.hpp"

namespace likwid::core {

/// Executes cpuid on hardware thread `os_id`.
using CpuidSource = std::function<hwsim::CpuidRegs(
    int os_id, std::uint32_t leaf, std::uint32_t subleaf)>;

/// One hardware thread as reported by likwid-topology's first table.
struct ThreadEntry {
  int os_id = 0;       ///< HWThread column
  int thread_id = 0;   ///< Thread column (SMT index)
  int core_id = 0;     ///< Core column (physical, may be non-contiguous)
  int socket_id = 0;   ///< Socket column
  std::uint32_t apic_id = 0;
};

/// One cache level as reported by the cache-topology section.
struct CacheEntry {
  int level = 1;
  hwsim::CacheType type = hwsim::CacheType::kData;
  std::uint64_t size_bytes = 0;
  std::uint32_t associativity = 0;
  std::uint32_t line_size = 0;
  std::uint32_t num_sets = 0;
  bool inclusive = false;
  int threads_sharing = 1;  ///< hw threads sharing one instance
  /// Cache groups: the os ids sharing each instance.
  std::vector<std::vector<int>> groups;
};

struct NodeTopology {
  std::string cpu_name;     ///< likwid display name ("Intel Core 2 45nm...")
  hwsim::Vendor vendor = hwsim::Vendor::kIntel;
  hwsim::Arch arch = hwsim::Arch::kCore2;
  std::uint32_t family = 0;
  std::uint32_t model = 0;
  std::uint32_t stepping = 0;
  double clock_ghz = 0;

  int num_hw_threads = 0;
  int num_sockets = 0;
  int num_cores_per_socket = 0;
  int num_threads_per_core = 0;

  std::vector<ThreadEntry> threads;          ///< by os id
  std::vector<std::vector<int>> sockets;     ///< os ids per socket
  std::vector<CacheEntry> caches;            ///< data/unified, by level

  /// os ids of SMT sibling groups per physical core (socket-major).
  std::vector<std::vector<int>> cores;
};

/// Probe the topology of a node with `num_cpus` online hardware threads.
/// `clock_ghz` is the measured clock (the real tool times the TSC; the
/// simulator provides it). Throws Error(kUnsupported) for processors the
/// suite does not support.
NodeTopology probe_topology(const CpuidSource& cpuid, int num_cpus,
                            double clock_ghz);

/// Convenience overload probing a simulated machine.
NodeTopology probe_topology(const hwsim::SimMachine& machine);

}  // namespace likwid::core
