// metric_abstract.hpp — the zero-division abstract domain shared by the
// scalar and fused metric interpreters.
//
// CompiledMetric::division_risks() walks a postfix program with a
// may-be-zero/always-zero/nonnegative lattice per stack slot;
// BatchProgram::division_risks() walks the fused step DAG with the same
// lattice per step. Both must report identical diagnostics (likwid-lint
// cross-checks them on every machine x group), so the transfer functions
// live here exactly once. The semantics encode evaluate()'s x/0 = 0
// convention and the counters-are-nonnegative assumption; see the scalar
// implementation's comments for the case-by-case rationale.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace likwid::core {

/// Abstract value of one subexpression: what the analysis can prove about
/// its sign/zeroness, and which registers feed it.
struct AbstractValue {
  bool may_zero = true;      ///< cannot rule out the value being 0
  bool always_zero = false;  ///< provably 0 on every register file
  bool nonneg = false;       ///< provably >= 0 (counters, nonneg literals)
  bool has_sub = false;      ///< a live subtraction feeds this value
  std::vector<std::int32_t> regs;  ///< ascending, deduped
};

namespace abstract_detail {

inline AbstractValue merge_regs(AbstractValue v, const AbstractValue& a,
                                const AbstractValue& b) {
  v.regs = a.regs;
  v.regs.insert(v.regs.end(), b.regs.begin(), b.regs.end());
  std::sort(v.regs.begin(), v.regs.end());
  v.regs.erase(std::unique(v.regs.begin(), v.regs.end()), v.regs.end());
  return v;
}

}  // namespace abstract_detail

inline AbstractValue abstract_const(double value) {
  AbstractValue v;
  v.may_zero = v.always_zero = (value == 0.0);
  v.nonneg = value >= 0.0;
  return v;
}

/// `nonzero` marks the register as guaranteed nonzero (time, clock,
/// always-advancing fixed counters).
inline AbstractValue abstract_reg(std::int32_t reg, bool nonzero) {
  AbstractValue v;
  v.may_zero = !nonzero;
  v.always_zero = false;
  v.nonneg = true;  // registers carry counts / seconds / Hz
  v.regs = {reg};
  return v;
}

inline AbstractValue abstract_add(const AbstractValue& a,
                                  const AbstractValue& b) {
  AbstractValue v;
  // A sum of nonnegatives vanishes only when both sides do; with a
  // possibly negative side anything can cancel.
  v.may_zero = (a.nonneg && b.nonneg) ? (a.may_zero && b.may_zero)
                                      : !(a.always_zero && b.always_zero);
  v.always_zero = a.always_zero && b.always_zero;
  v.nonneg = a.nonneg && b.nonneg;
  v.has_sub = a.has_sub || b.has_sub;
  return abstract_detail::merge_regs(std::move(v), a, b);
}

inline AbstractValue abstract_sub(const AbstractValue& a,
                                  const AbstractValue& b) {
  AbstractValue v;
  v.may_zero = b.always_zero ? a.may_zero : true;
  v.always_zero = a.always_zero && b.always_zero;
  v.nonneg = a.nonneg && b.always_zero;
  v.has_sub = a.has_sub || b.has_sub || !b.always_zero;
  return abstract_detail::merge_regs(std::move(v), a, b);
}

inline AbstractValue abstract_mul(const AbstractValue& a,
                                  const AbstractValue& b) {
  AbstractValue v;
  v.may_zero = a.may_zero || b.may_zero;
  v.always_zero = a.always_zero || b.always_zero;
  v.nonneg = (a.nonneg && b.nonneg) || v.always_zero;
  v.has_sub = a.has_sub || b.has_sub;
  return abstract_detail::merge_regs(std::move(v), a, b);
}

/// The quotient's abstract value; whether the DIVISOR is risky is the
/// caller's check (b.may_zero), because only the caller knows the site.
inline AbstractValue abstract_div(const AbstractValue& a,
                                  const AbstractValue& b) {
  AbstractValue v;
  // evaluate() defines x/0 = 0, so a zero on EITHER side zeroes the
  // quotient.
  v.may_zero = a.may_zero || b.may_zero;
  v.always_zero = a.always_zero || b.always_zero;
  v.nonneg = (a.nonneg && b.nonneg) || v.always_zero;
  v.has_sub = a.has_sub || b.has_sub;
  return abstract_detail::merge_regs(std::move(v), a, b);
}

inline AbstractValue abstract_neg(AbstractValue a) {
  a.nonneg = a.always_zero;
  return a;
}

}  // namespace likwid::core
