// name_table.hpp — process-wide string interner for the counter pipeline.
//
// Every event and metric name that flows through the measurement hot path
// (perfctr readout, interval sampling, marker accumulation, the monitoring
// rollups) is interned once into a small dense NameId at setup time; the
// per-sample code then moves ids and flat arrays only. Strings are resolved
// back exclusively at the output boundary (ASCII/CSV/XML writers), so the
// emitted files are unchanged while the hot loops never hash or compare a
// string.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/thread_annotations.hpp"

namespace likwid::core {

/// Dense identifier of an interned name. Ids are assigned consecutively
/// from 0 in interning order and are never recycled.
using NameId = std::int32_t;

inline constexpr NameId kInvalidNameId = -1;

class NameTable {
 public:
  /// The process-wide table shared by all measurement objects.
  static NameTable& instance();

  NameTable() = default;
  NameTable(const NameTable&) = delete;
  NameTable& operator=(const NameTable&) = delete;

  /// Id of `name`, interning it on first sight.
  NameId intern(std::string_view name);

  /// Id of `name` if already interned, kInvalidNameId otherwise.
  NameId find(std::string_view name) const noexcept;

  /// The string behind an id; throws Error(kNotFound) for ids this table
  /// never handed out. The reference stays valid for the table's lifetime.
  const std::string& name(NameId id) const;

  std::size_t size() const noexcept;

 private:
  mutable util::Mutex mutex_;
  /// Deque: growth never moves existing strings, so name() can hand out
  /// stable references (the returned reference outlives the lock by
  /// design — only the container structure is guarded, not the interned
  /// bytes, which are immutable once published).
  std::deque<std::string> names_ LIKWID_GUARDED_BY(mutex_);
  /// Views point into names_ entries, which never move or die.
  std::unordered_map<std::string_view, NameId> index_
      LIKWID_GUARDED_BY(mutex_);
};

/// Shorthands for the common case of the process-wide table.
inline NameId intern_name(std::string_view name) {
  return NameTable::instance().intern(name);
}
inline const std::string& resolve_name(NameId id) {
  return NameTable::instance().name(id);
}

}  // namespace likwid::core
