#include "core/compiled_metric.hpp"

#include <algorithm>

namespace likwid::core {

double CompiledMetric::evaluate(std::span<const double> regs) const noexcept {
  double stack[kMaxStack];
  int top = -1;  // index of the stack head
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case Op::kPushConst:
        stack[++top] = ins.value;
        break;
      case Op::kPushReg:
        stack[++top] = regs[static_cast<std::size_t>(ins.reg)];
        break;
      case Op::kAdd:
        --top;
        stack[top] += stack[top + 1];
        break;
      case Op::kSub:
        --top;
        stack[top] -= stack[top + 1];
        break;
      case Op::kMul:
        --top;
        stack[top] *= stack[top + 1];
        break;
      case Op::kDiv:
        --top;
        stack[top] =
            stack[top + 1] == 0.0 ? 0.0 : stack[top] / stack[top + 1];
        break;
      case Op::kNeg:
        stack[top] = -stack[top];
        break;
    }
  }
  return top >= 0 ? stack[top] : 0.0;
}

namespace {

/// Abstract value of one operand-stack slot for division_risks(): what we
/// can prove about the sign/zeroness of the subexpression it holds, and
/// which registers feed it.
struct AbstractValue {
  bool may_zero = true;      ///< cannot rule out the value being 0
  bool always_zero = false;  ///< provably 0 on every register file
  bool nonneg = false;       ///< provably >= 0 (counters, nonneg literals)
  bool has_sub = false;      ///< a live subtraction feeds this value
  std::vector<std::int32_t> regs;
};

AbstractValue merge_regs(AbstractValue v, const AbstractValue& a,
                         const AbstractValue& b) {
  v.regs = a.regs;
  v.regs.insert(v.regs.end(), b.regs.begin(), b.regs.end());
  std::sort(v.regs.begin(), v.regs.end());
  v.regs.erase(std::unique(v.regs.begin(), v.regs.end()), v.regs.end());
  return v;
}

}  // namespace

std::vector<CompiledMetric::DivisionRisk> CompiledMetric::division_risks(
    const std::vector<bool>& nonzero_regs) const {
  std::vector<DivisionRisk> risks;
  std::vector<AbstractValue> stack;
  stack.reserve(static_cast<std::size_t>(max_depth_));
  const auto pop = [&]() {
    AbstractValue v = std::move(stack.back());
    stack.pop_back();
    return v;
  };
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case Op::kPushConst: {
        AbstractValue v;
        v.may_zero = v.always_zero = (ins.value == 0.0);
        v.nonneg = ins.value >= 0.0;
        stack.push_back(std::move(v));
        break;
      }
      case Op::kPushReg: {
        AbstractValue v;
        const auto reg = static_cast<std::size_t>(ins.reg);
        const bool nonzero = reg < nonzero_regs.size() && nonzero_regs[reg];
        v.may_zero = !nonzero;
        v.always_zero = false;
        v.nonneg = true;  // registers carry counts / seconds / Hz
        v.regs = {ins.reg};
        stack.push_back(std::move(v));
        break;
      }
      case Op::kAdd: {
        const AbstractValue b = pop();
        const AbstractValue a = pop();
        AbstractValue v;
        // A sum of nonnegatives vanishes only when both sides do; with a
        // possibly negative side anything can cancel.
        v.may_zero = (a.nonneg && b.nonneg) ? (a.may_zero && b.may_zero)
                                            : !(a.always_zero && b.always_zero);
        v.always_zero = a.always_zero && b.always_zero;
        v.nonneg = a.nonneg && b.nonneg;
        v.has_sub = a.has_sub || b.has_sub;
        stack.push_back(merge_regs(std::move(v), a, b));
        break;
      }
      case Op::kSub: {
        const AbstractValue b = pop();
        const AbstractValue a = pop();
        AbstractValue v;
        v.may_zero = b.always_zero ? a.may_zero : true;
        v.always_zero = a.always_zero && b.always_zero;
        v.nonneg = a.nonneg && b.always_zero;
        v.has_sub = a.has_sub || b.has_sub || !b.always_zero;
        stack.push_back(merge_regs(std::move(v), a, b));
        break;
      }
      case Op::kMul: {
        const AbstractValue b = pop();
        const AbstractValue a = pop();
        AbstractValue v;
        v.may_zero = a.may_zero || b.may_zero;
        v.always_zero = a.always_zero || b.always_zero;
        v.nonneg = (a.nonneg && b.nonneg) || v.always_zero;
        v.has_sub = a.has_sub || b.has_sub;
        stack.push_back(merge_regs(std::move(v), a, b));
        break;
      }
      case Op::kDiv: {
        const AbstractValue b = pop();
        const AbstractValue a = pop();
        if (b.may_zero) {
          DivisionRisk risk;
          risk.certain = b.always_zero;
          risk.cancellation = b.has_sub;
          risk.registers = b.regs;
          risks.push_back(std::move(risk));
        }
        AbstractValue v;
        // evaluate() defines x/0 = 0, so a zero on EITHER side zeroes the
        // quotient.
        v.may_zero = a.may_zero || b.may_zero;
        v.always_zero = a.always_zero || b.always_zero;
        v.nonneg = (a.nonneg && b.nonneg) || v.always_zero;
        v.has_sub = a.has_sub || b.has_sub;
        stack.push_back(merge_regs(std::move(v), a, b));
        break;
      }
      case Op::kNeg: {
        AbstractValue v = pop();
        v.nonneg = v.always_zero;
        stack.push_back(std::move(v));
        break;
      }
    }
  }
  return risks;
}

}  // namespace likwid::core
