#include "core/compiled_metric.hpp"

namespace likwid::core {

double CompiledMetric::evaluate(std::span<const double> regs) const noexcept {
  double stack[kMaxStack];
  int top = -1;  // index of the stack head
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case Op::kPushConst:
        stack[++top] = ins.value;
        break;
      case Op::kPushReg:
        stack[++top] = regs[static_cast<std::size_t>(ins.reg)];
        break;
      case Op::kAdd:
        --top;
        stack[top] += stack[top + 1];
        break;
      case Op::kSub:
        --top;
        stack[top] -= stack[top + 1];
        break;
      case Op::kMul:
        --top;
        stack[top] *= stack[top + 1];
        break;
      case Op::kDiv:
        --top;
        stack[top] =
            stack[top + 1] == 0.0 ? 0.0 : stack[top] / stack[top + 1];
        break;
      case Op::kNeg:
        stack[top] = -stack[top];
        break;
    }
  }
  return top >= 0 ? stack[top] : 0.0;
}

}  // namespace likwid::core
