#include "core/compiled_metric.hpp"

#include <utility>

#include "core/metric_abstract.hpp"

namespace likwid::core {

double CompiledMetric::evaluate(std::span<const double> regs) const noexcept {
  double stack[kMaxStack];
  int top = -1;  // index of the stack head
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case Op::kPushConst:
        stack[++top] = ins.value;
        break;
      case Op::kPushReg:
        stack[++top] = regs[static_cast<std::size_t>(ins.reg)];
        break;
      case Op::kAdd:
        --top;
        stack[top] += stack[top + 1];
        break;
      case Op::kSub:
        --top;
        stack[top] -= stack[top + 1];
        break;
      case Op::kMul:
        --top;
        stack[top] *= stack[top + 1];
        break;
      case Op::kDiv:
        --top;
        stack[top] =
            stack[top + 1] == 0.0 ? 0.0 : stack[top] / stack[top + 1];
        break;
      case Op::kNeg:
        stack[top] = -stack[top];
        break;
    }
  }
  return top >= 0 ? stack[top] : 0.0;
}

// The lattice and its transfer functions live in core/metric_abstract.hpp,
// shared with the fused interpreter (BatchProgram::division_risks) so the
// two can never drift apart — likwid-lint cross-checks them on every
// machine x group catalog entry.
std::vector<CompiledMetric::DivisionRisk> CompiledMetric::division_risks(
    const std::vector<bool>& nonzero_regs) const {
  std::vector<DivisionRisk> risks;
  std::vector<AbstractValue> stack;
  stack.reserve(static_cast<std::size_t>(max_depth_));
  const auto pop = [&]() {
    AbstractValue v = std::move(stack.back());
    stack.pop_back();
    return v;
  };
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case Op::kPushConst:
        stack.push_back(abstract_const(ins.value));
        break;
      case Op::kPushReg: {
        const auto reg = static_cast<std::size_t>(ins.reg);
        const bool nonzero = reg < nonzero_regs.size() && nonzero_regs[reg];
        stack.push_back(abstract_reg(ins.reg, nonzero));
        break;
      }
      case Op::kAdd: {
        const AbstractValue b = pop();
        const AbstractValue a = pop();
        stack.push_back(abstract_add(a, b));
        break;
      }
      case Op::kSub: {
        const AbstractValue b = pop();
        const AbstractValue a = pop();
        stack.push_back(abstract_sub(a, b));
        break;
      }
      case Op::kMul: {
        const AbstractValue b = pop();
        const AbstractValue a = pop();
        stack.push_back(abstract_mul(a, b));
        break;
      }
      case Op::kDiv: {
        const AbstractValue b = pop();
        const AbstractValue a = pop();
        if (b.may_zero) {
          DivisionRisk risk;
          risk.certain = b.always_zero;
          risk.cancellation = b.has_sub;
          risk.registers = b.regs;
          risks.push_back(std::move(risk));
        }
        stack.push_back(abstract_div(a, b));
        break;
      }
      case Op::kNeg:
        stack.push_back(abstract_neg(pop()));
        break;
    }
  }
  return risks;
}

}  // namespace likwid::core
