#include "core/perfctr.hpp"

#include <algorithm>
#include <set>

#include "core/metric_expr.hpp"
#include "hwsim/msr.hpp"
#include "hwsim/pmu.hpp"
#include "util/bitops.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::core {

namespace msr = hwsim::msr;
using hwsim::CounterClass;
using hwsim::Vendor;

double PerfCtr::MetricRow::at(int cpu) const {
  for (std::size_t r = 0; r < cpus->size(); ++r) {
    if ((*cpus)[r] == cpu) return values[r];
  }
  throw_error(ErrorCode::kNotFound,
              "cpu " + std::to_string(cpu) + " is not measured by this row");
}

double PerfCtr::MetricRow::value_or(int cpu, double fallback) const noexcept {
  for (std::size_t r = 0; r < cpus->size(); ++r) {
    if ((*cpus)[r] == cpu) return values[r];
  }
  return fallback;
}

PerfCtr::PerfCtr(ossim::SimKernel& kernel, std::vector<int> cpus)
    : kernel_(kernel),
      cpus_(std::make_shared<const std::vector<int>>(std::move(cpus))) {
  LIKWID_REQUIRE(!cpus_->empty(), "no cpus selected for measurement");
  const auto& machine = kernel_.machine();
  arch_ = machine.arch();
  std::set<int> seen;
  for (const int cpu : *cpus_) {
    LIKWID_REQUIRE(cpu >= 0 && cpu < machine.num_threads(),
                   "measured cpu " + std::to_string(cpu) +
                       " does not exist on this machine");
    LIKWID_REQUIRE(seen.insert(cpu).second,
                   "cpu " + std::to_string(cpu) + " listed twice");
  }
  // Socket locks: the first measured cpu of each socket owns the uncore.
  std::set<int> locked_sockets;
  for (const int cpu : *cpus_) {
    const int socket = machine.socket_of(cpu);
    if (locked_sockets.insert(socket).second) lock_cpus_.push_back(cpu);
  }
}

double PerfCtr::clock_hz() const {
  return kernel_.machine().clock_ghz() * 1e9;
}

bool PerfCtr::owns_uncore(int cpu) const {
  return std::find(lock_cpus_.begin(), lock_cpus_.end(), cpu) !=
         lock_cpus_.end();
}

void PerfCtr::add_fixed_counters(EventSet& set) const {
  // "INSTR_RETIRED_ANY and CPU_CLK_UNHALTED_CORE are always counted" on
  // architectures with fixed counters.
  //
  // analysis/lint.cpp mirrors this assignment logic (and add_group's /
  // validate_and_store's) as a pure check; keep the two in sync.
  const auto& pmu = kernel_.machine().spec().pmu;
  if (pmu.num_fixed_counters <= 0) return;
  static constexpr const char* kFixedNames[3] = {
      "INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE", "CPU_CLK_UNHALTED_REF"};
  for (int i = 0; i < std::min(2, pmu.num_fixed_counters); ++i) {
    const hwsim::EventEncoding* enc = hwsim::find_event(arch_, kFixedNames[i]);
    LIKWID_ASSERT(enc != nullptr && enc->klass == CounterClass::kFixed,
                  "fixed event missing from arch table");
    CounterAssignment a;
    a.event_name = kFixedNames[i];
    a.event_id = intern_name(a.event_name);
    a.counter_name = "FIXC" + std::to_string(i);
    a.klass = CounterClass::kFixed;
    a.index = enc->fixed_index;
    a.encoding = enc;
    set.assignments.push_back(std::move(a));
  }
}

void PerfCtr::validate_and_store(EventSet set) {
  const auto& pmu = kernel_.machine().spec().pmu;
  int gp = 0;
  int unc = 0;
  std::set<std::string> used_counters;
  for (const auto& a : set.assignments) {
    LIKWID_REQUIRE(used_counters.insert(a.counter_name).second,
                   "counter " + a.counter_name + " assigned twice");
    switch (a.klass) {
      case CounterClass::kCore:
        LIKWID_REQUIRE(a.index >= 0 && a.index < pmu.num_gp_counters,
                       "no counter " + a.counter_name + " on this cpu");
        ++gp;
        break;
      case CounterClass::kFixed:
        LIKWID_REQUIRE(a.index >= 0 && a.index < pmu.num_fixed_counters,
                       "no fixed counter " + a.counter_name);
        break;
      case CounterClass::kUncore:
        LIKWID_REQUIRE(a.index >= 0 && a.index < pmu.num_uncore_counters,
                       "no uncore counter " + a.counter_name);
        ++unc;
        break;
    }
  }
  if (gp > pmu.num_gp_counters) {
    throw_error(ErrorCode::kResourceExhausted,
                util::strprintf("%d core events but only %d counters", gp,
                                pmu.num_gp_counters));
  }
  if (unc > pmu.num_uncore_counters) {
    throw_error(ErrorCode::kResourceExhausted, "too many uncore events");
  }

  const std::size_t slots = set.assignments.size();
  for (std::size_t i = 0; i < slots; ++i) {
    const auto* enc = set.assignments[i].encoding;
    if (enc != nullptr && enc->id == hwsim::EventId::kCoreCycles) {
      set.cycles_slot = static_cast<int>(i);
    }
  }

  // Group sets: bind every formula to the set's register file once. Slots
  // [0, slots) are the assignments; the two trailing registers carry the
  // built-ins `time` and `clock`.
  if (set.group) {
    const auto reg_of = [&](std::string_view name) -> int {
      for (std::size_t i = 0; i < slots; ++i) {
        if (set.assignments[i].event_name == name) return static_cast<int>(i);
      }
      if (name == "time") return static_cast<int>(slots);
      if (name == "clock") return static_cast<int>(slots) + 1;
      return -1;
    };
    for (const auto& metric : set.group->metrics) {
      CompiledGroupMetric compiled;
      compiled.name_id = intern_name(metric.name);
      compiled.program = MetricExpr::parse(metric.formula).compile(reg_of);
      set.programs.push_back(std::move(compiled));
    }
    // Fuse the whole group into one step DAG for the batched evaluator.
    std::vector<const CompiledMetric*> programs;
    programs.reserve(set.programs.size());
    for (const auto& m : set.programs) programs.push_back(&m.program);
    set.batch = BatchProgram::fuse(programs, slots);
  }

  set.results.counts = CountSlab(cpus_, slots);
  sets_.push_back(std::move(set));
}

void PerfCtr::add_group(const std::string& group_name) {
  LIKWID_REQUIRE(!running_, "cannot add event sets while counting");
  const auto group = find_group(arch_, group_name);
  if (!group) {
    throw_error(ErrorCode::kUnsupported,
                "group " + group_name + " is not supported on " +
                    std::string(hwsim::to_string(arch_)));
  }
  EventSet set;
  set.group = *group;
  add_fixed_counters(set);
  int next_pmc = 0;
  int next_upmc = 0;
  for (const auto& name : group->events) {
    const hwsim::EventEncoding* enc = hwsim::find_event(arch_, name);
    LIKWID_ASSERT(enc != nullptr, "group references unknown event " + name);
    CounterAssignment a;
    a.event_name = name;
    a.event_id = intern_name(name);
    a.encoding = enc;
    a.klass = enc->klass;
    if (enc->klass == CounterClass::kUncore) {
      a.index = next_upmc++;
      a.counter_name = "UPMC" + std::to_string(a.index);
    } else if (enc->klass == CounterClass::kFixed) {
      continue;  // already added implicitly
    } else {
      a.index = next_pmc++;
      a.counter_name = "PMC" + std::to_string(a.index);
    }
    set.assignments.push_back(std::move(a));
  }
  validate_and_store(std::move(set));
}

void PerfCtr::add_custom(const std::string& event_spec) {
  LIKWID_REQUIRE(!running_, "cannot add event sets while counting");
  const auto& pmu = kernel_.machine().spec().pmu;
  EventSet set;
  add_fixed_counters(set);
  int next_pmc = 0;
  int next_upmc = 0;
  for (const auto& item : util::split_trimmed(event_spec, ',')) {
    const auto parts = util::split(item, ':');
    LIKWID_REQUIRE(parts.size() <= 2, "malformed event '" + item + "'");
    const std::string name(util::trim(parts[0]));
    const hwsim::EventEncoding* enc = hwsim::find_event(arch_, name);
    if (enc == nullptr) {
      throw_error(ErrorCode::kNotFound,
                  "event " + name + " is not documented for " +
                      std::string(hwsim::to_string(arch_)));
    }
    CounterAssignment a;
    a.event_name = name;
    a.event_id = intern_name(name);
    a.encoding = enc;
    a.klass = enc->klass;
    if (enc->klass == CounterClass::kFixed) continue;  // implicit
    if (parts.size() == 2) {
      const std::string counter(util::trim(parts[1]));
      std::string prefix;
      if (util::starts_with(counter, "UPMC")) {
        prefix = "UPMC";
      } else if (util::starts_with(counter, "PMC")) {
        prefix = "PMC";
      } else {
        throw_error(ErrorCode::kInvalidArgument,
                    "unknown counter '" + counter + "' (use PMCn or UPMCn)");
      }
      const auto idx = util::parse_u64(counter.substr(prefix.size()));
      LIKWID_REQUIRE(idx.has_value(),
                     "malformed counter name '" + counter + "'");
      const bool want_uncore = prefix == "UPMC";
      if (want_uncore != (enc->klass == CounterClass::kUncore)) {
        throw_error(ErrorCode::kInvalidArgument,
                    "event " + name + " cannot be counted on " + counter);
      }
      a.index = static_cast<int>(*idx);
      a.counter_name = counter;
    } else if (enc->klass == CounterClass::kUncore) {
      a.index = next_upmc++;
      if (a.index >= pmu.num_uncore_counters) {
        throw_error(ErrorCode::kResourceExhausted,
                    "no free uncore counter for event " + name);
      }
      a.counter_name = "UPMC" + std::to_string(a.index);
    } else {
      a.index = next_pmc++;
      if (a.index >= pmu.num_gp_counters) {
        throw_error(ErrorCode::kResourceExhausted,
                    "no free core counter for event " + name +
                        util::strprintf(" (%d PMC counters on this cpu)",
                                        pmu.num_gp_counters));
      }
      a.counter_name = "PMC" + std::to_string(a.index);
    }
    set.assignments.push_back(std::move(a));
  }
  LIKWID_REQUIRE(!set.assignments.empty(), "empty event specification");
  validate_and_store(std::move(set));
}

const std::optional<EventGroup>& PerfCtr::group_of(int set) const {
  LIKWID_REQUIRE(set >= 0 && set < num_event_sets(), "event set out of range");
  return sets_[static_cast<std::size_t>(set)].group;
}

const std::vector<CounterAssignment>& PerfCtr::assignments_of(int set) const {
  LIKWID_REQUIRE(set >= 0 && set < num_event_sets(), "event set out of range");
  return sets_[static_cast<std::size_t>(set)].assignments;
}

std::optional<std::size_t> PerfCtr::slot_of(int set,
                                            std::string_view event) const {
  const auto& assignments = assignments_of(set);
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    if (assignments[i].event_name == event) return i;
  }
  return std::nullopt;
}

std::uint32_t PerfCtr::counter_msr(const CounterAssignment& a) const {
  const bool amd = kernel_.machine().spec().vendor == Vendor::kAmd;
  switch (a.klass) {
    case CounterClass::kCore:
      return (amd ? msr::kAmdPerfCtr0 : msr::kPmc0) +
             static_cast<std::uint32_t>(a.index);
    case CounterClass::kFixed:
      return msr::kFixedCtr0 + static_cast<std::uint32_t>(a.index);
    case CounterClass::kUncore:
      return msr::kUncPmc0 + static_cast<std::uint32_t>(a.index);
  }
  return 0;
}

std::uint32_t PerfCtr::select_msr(const CounterAssignment& a) const {
  const bool amd = kernel_.machine().spec().vendor == Vendor::kAmd;
  switch (a.klass) {
    case CounterClass::kCore:
      return (amd ? msr::kAmdPerfCtl0 : msr::kPerfEvtSel0) +
             static_cast<std::uint32_t>(a.index);
    case CounterClass::kUncore:
      return msr::kUncPerfEvtSel0 + static_cast<std::uint32_t>(a.index);
    case CounterClass::kFixed:
      return msr::kFixedCtrCtrl;
  }
  return 0;
}

int PerfCtr::counter_bits(const CounterAssignment& a) const {
  const auto& pmu = kernel_.machine().spec().pmu;
  switch (a.klass) {
    case CounterClass::kCore: return pmu.gp_counter_bits;
    case CounterClass::kFixed: return 48;
    case CounterClass::kUncore: return pmu.uncore_counter_bits;
  }
  return 48;
}

void PerfCtr::program_set(const EventSet& set) {
  const auto& spec = kernel_.machine().spec();
  const bool amd = spec.vendor == Vendor::kAmd;
  for (const int cpu : *cpus_) {
    bool any_fixed = false;
    for (const auto& a : set.assignments) {
      if (a.klass == CounterClass::kFixed) {
        any_fixed = true;
        kernel_.msr_write(cpu, counter_msr(a), 0);
        continue;
      }
      if (a.klass == CounterClass::kUncore) {
        if (!owns_uncore(cpu)) continue;
        std::uint64_t sel = 0;
        sel = util::deposit_bits(sel, msr::kEvtSelEventLo, msr::kEvtSelEventHi,
                                 a.encoding->event_code);
        sel = util::deposit_bits(sel, msr::kEvtSelUmaskLo, msr::kEvtSelUmaskHi,
                                 a.encoding->umask);
        sel = util::assign_bit(sel, msr::kEvtSelEnable, true);
        kernel_.msr_write(cpu, select_msr(a), sel);
        kernel_.msr_write(cpu, counter_msr(a), 0);
        continue;
      }
      std::uint64_t sel = 0;
      sel = util::deposit_bits(sel, msr::kEvtSelEventLo, msr::kEvtSelEventHi,
                               a.encoding->event_code & 0xFF);
      if (amd && a.encoding->event_code > 0xFF) {
        sel = util::deposit_bits(sel, msr::kAmdEvtSelExtLo, msr::kAmdEvtSelExtHi,
                                 a.encoding->event_code >> 8);
      }
      sel = util::deposit_bits(sel, msr::kEvtSelUmaskLo, msr::kEvtSelUmaskHi,
                               a.encoding->umask);
      sel = util::assign_bit(sel, msr::kEvtSelUsr, true);
      sel = util::assign_bit(sel, msr::kEvtSelOs, true);
      sel = util::assign_bit(sel, msr::kEvtSelEnable, true);
      kernel_.msr_write(cpu, select_msr(a), sel);
      kernel_.msr_write(cpu, counter_msr(a), 0);
    }
    if (any_fixed) {
      // Enable all present fixed counters for ring 0+3 (0x3 per counter).
      std::uint64_t ctrl = 0;
      for (int i = 0; i < spec.pmu.num_fixed_counters; ++i) {
        ctrl |= std::uint64_t{0x3} << (4 * i);
      }
      kernel_.msr_write(cpu, msr::kFixedCtrCtrl, ctrl);
    }
  }
}

void PerfCtr::enable_set(const EventSet& set) {
  const auto& spec = kernel_.machine().spec();
  if (spec.vendor == Vendor::kAmd) return;  // per-counter EN bits suffice
  if (!spec.pmu.has_global_ctrl) return;
  std::uint64_t global = 0;
  for (int i = 0; i < spec.pmu.num_gp_counters; ++i) {
    global = util::assign_bit(global, static_cast<unsigned>(i), true);
  }
  for (int i = 0; i < spec.pmu.num_fixed_counters; ++i) {
    global = util::assign_bit(global, 32u + static_cast<unsigned>(i), true);
  }
  for (const int cpu : *cpus_) {
    kernel_.msr_write(cpu, msr::kPerfGlobalCtrl, global);
  }
  if (spec.pmu.num_uncore_counters > 0) {
    bool any_uncore = false;
    for (const auto& a : set.assignments) {
      any_uncore = any_uncore || a.klass == CounterClass::kUncore;
    }
    if (any_uncore) {
      std::uint64_t unc = std::uint64_t{1} << 32;  // fixed uncore clock
      for (int i = 0; i < spec.pmu.num_uncore_counters; ++i) {
        unc = util::assign_bit(unc, static_cast<unsigned>(i), true);
      }
      for (const int cpu : lock_cpus_) {
        kernel_.msr_write(cpu, msr::kUncFixedCtrCtrl, 1);
        kernel_.msr_write(cpu, msr::kUncPerfGlobalCtrl, unc);
      }
    }
  }
}

void PerfCtr::disable_set(const EventSet& set) {
  const auto& spec = kernel_.machine().spec();
  if (spec.vendor == Vendor::kAmd) {
    for (const int cpu : *cpus_) {
      for (const auto& a : set.assignments) {
        if (a.klass != CounterClass::kCore) continue;
        const std::uint64_t sel = kernel_.msr_read(cpu, select_msr(a));
        kernel_.msr_write(cpu, select_msr(a),
                          util::assign_bit(sel, msr::kEvtSelEnable, false));
      }
    }
    return;
  }
  if (spec.pmu.has_global_ctrl) {
    for (const int cpu : *cpus_) {
      kernel_.msr_write(cpu, msr::kPerfGlobalCtrl, 0);
    }
    if (spec.pmu.num_uncore_counters > 0) {
      for (const int cpu : lock_cpus_) {
        kernel_.msr_write(cpu, msr::kUncPerfGlobalCtrl, 0);
      }
    }
  } else {
    // Pre-global-ctrl parts: clear the per-counter enable bits.
    for (const int cpu : *cpus_) {
      for (const auto& a : set.assignments) {
        if (a.klass != CounterClass::kCore) continue;
        const std::uint64_t sel = kernel_.msr_read(cpu, select_msr(a));
        kernel_.msr_write(cpu, select_msr(a),
                          util::assign_bit(sel, msr::kEvtSelEnable, false));
      }
    }
  }
  if (spec.pmu.num_fixed_counters > 0) {
    for (const int cpu : *cpus_) {
      kernel_.msr_write(cpu, msr::kFixedCtrCtrl, 0);
    }
  }
}

void PerfCtr::start() {
  LIKWID_REQUIRE(!running_, "counters already running");
  LIKWID_REQUIRE(!sets_.empty(), "no event set configured");
  const EventSet& set = sets_[static_cast<std::size_t>(current_)];
  program_set(set);
  enable_set(set);
  // resize + snapshot_into reuse the per-row buffers from earlier
  // start()/stop() cycles — the rotating sampling loop never allocates.
  start_values_.resize(cpus_->size());
  for (std::size_t r = 0; r < cpus_->size(); ++r) {
    snapshot_into((*cpus_)[r], start_values_[r]);
  }
  start_time_ = kernel_.now();
  running_ = true;
}

void PerfCtr::stop() {
  LIKWID_REQUIRE(running_, "counters are not running");
  EventSet& set = sets_[static_cast<std::size_t>(current_)];
  for (std::size_t r = 0; r < cpus_->size(); ++r) {
    snapshot_into((*cpus_)[r], stop_snapshot_);
    snapshot_delta_into(start_values_[r], stop_snapshot_, stop_delta_);
    const std::span<double> row = set.results.counts.row(r);
    for (std::size_t i = 0; i < stop_delta_.size(); ++i) {
      row[i] += stop_delta_[i];
    }
  }
  set.results.measured_seconds += kernel_.now() - start_time_;
  disable_set(set);
  running_ = false;
}

void PerfCtr::rotate() {
  stop();
  current_ = (current_ + 1) % num_event_sets();
  start();
}

void PerfCtr::select_set(int set) {
  if (set < 0 || set >= num_event_sets()) {
    throw_error(ErrorCode::kNotFound,
                "event set " + std::to_string(set) + " does not exist");
  }
  if (running_) {
    throw_error(ErrorCode::kInvalidState,
                "cannot select an event set while the counters are running");
  }
  current_ = set;
}

CounterSnapshot PerfCtr::snapshot(int cpu) const {
  CounterSnapshot snap;
  snapshot_into(cpu, snap);
  return snap;
}

void PerfCtr::snapshot_into(int cpu, CounterSnapshot& out) const {
  LIKWID_REQUIRE(!sets_.empty(), "no event set configured");
  const EventSet& set = sets_[static_cast<std::size_t>(current_)];
  out.values.clear();
  out.values.reserve(set.assignments.size());
  for (const auto& a : set.assignments) {
    if (a.klass == CounterClass::kUncore && !owns_uncore(cpu)) {
      out.values.push_back(0);
      continue;
    }
    out.values.push_back(kernel_.msr_read(cpu, counter_msr(a)));
  }
}

std::vector<double> PerfCtr::snapshot_delta(const CounterSnapshot& before,
                                            const CounterSnapshot& after) const {
  std::vector<double> delta;
  snapshot_delta_into(before, after, delta);
  return delta;
}

void PerfCtr::snapshot_delta_into(const CounterSnapshot& before,
                                  const CounterSnapshot& after,
                                  std::vector<double>& out) const {
  const EventSet& set = sets_[static_cast<std::size_t>(current_)];
  LIKWID_REQUIRE(before.values.size() == set.assignments.size() &&
                     after.values.size() == set.assignments.size(),
                 "snapshot does not match the current event set");
  out.resize(set.assignments.size());
  for (std::size_t i = 0; i < set.assignments.size(); ++i) {
    out[i] = static_cast<double>(hwsim::counter_delta(
        before.values[i], after.values[i],
        counter_bits(set.assignments[i])));
  }
}

const PerfCtr::SetResults& PerfCtr::results(int set) const {
  LIKWID_REQUIRE(set >= 0 && set < num_event_sets(), "event set out of range");
  return sets_[static_cast<std::size_t>(set)].results;
}

CountSlab PerfCtr::make_slab(int set) const {
  return CountSlab(cpus_, assignments_of(set).size());
}

double PerfCtr::total_seconds() const {
  double total = 0;
  for (const auto& s : sets_) total += s.results.measured_seconds;
  return total;
}

double PerfCtr::extrapolated_count(int set, int cpu,
                                   std::string_view event) const {
  const SetResults& r = results(set);
  const auto slot = slot_of(set, event);
  if (!slot.has_value()) return 0;
  const int row = r.counts.row_of(cpu);
  if (row < 0) return 0;
  const double measured = r.counts.row(static_cast<std::size_t>(row))[*slot];
  if (num_event_sets() <= 1 || r.measured_seconds <= 0) return measured;
  return measured * total_seconds() / r.measured_seconds;
}

CountSlab PerfCtr::extrapolated_counts(int set) const {
  CountSlab counts;
  extrapolated_counts_into(set, counts);
  return counts;
}

void PerfCtr::extrapolated_counts_into(int set, CountSlab& out) const {
  const SetResults& r = results(set);
  out = r.counts;  // vector copy-assignment: reuses out's capacity
  if (num_event_sets() > 1 && r.measured_seconds > 0) {
    out.scale(total_seconds() / r.measured_seconds);
  }
}

std::vector<NameId> PerfCtr::metric_ids(int set) const {
  LIKWID_REQUIRE(set >= 0 && set < num_event_sets(), "event set out of range");
  std::vector<NameId> ids;
  for (const auto& m : sets_[static_cast<std::size_t>(set)].programs) {
    ids.push_back(m.name_id);
  }
  return ids;
}

std::vector<PerfCtr::MetricRow> PerfCtr::compute_metrics(int set) const {
  // One-shot reporting path: batched evaluation, then standalone rows.
  MetricBatch batch;
  compute_metrics_batched(set, extrapolated_counts(set), batch);
  std::vector<MetricRow> rows;
  rows.reserve(batch.size());
  for (std::size_t m = 0; m < batch.size(); ++m) {
    MetricRow row;
    row.name_id = batch[m].name_id;
    row.cpus = cpus_;
    const std::span<const double> values = batch.values(m);
    row.values.assign(values.begin(), values.end());
    rows.push_back(std::move(row));
  }
  return rows;
}

void PerfCtr::compute_metrics_batched(int set, const CountSlab& counts,
                                      MetricBatch& out,
                                      double fallback_seconds,
                                      bool wall_time) const {
  const auto& group = group_of(set);
  LIKWID_REQUIRE(group.has_value(),
                 "metrics require a performance group event set");
  const EventSet& es = sets_[static_cast<std::size_t>(set)];
  const std::size_t slots = es.assignments.size();
  LIKWID_REQUIRE(counts.empty() || counts.slots() == slots,
                 "count slab does not match the event set");

  out.reset(cpus_, es.programs.size());
  for (std::size_t m = 0; m < es.programs.size(); ++m) {
    out.set_name(m, es.programs[m].name_id);
  }

  BatchBinding binding;
  binding.clock_hz = clock_hz();
  binding.time_value = fallback_seconds >= 0 ? fallback_seconds
                                             : es.results.measured_seconds;
  if (!wall_time && es.cycles_slot >= 0) binding.time_slot = es.cycles_slot;
  if (!counts.empty()) {
    binding.counts = &counts;
    if (counts.cpus_ptr() != cpus_) {
      // Foreign cpu list (e.g. an externally built slab): map each output
      // row to its slab row once; -1 rows read 0 like the scalar path.
      std::vector<int>& map = out.row_map_scratch();
      map.resize(cpus_->size());
      for (std::size_t r = 0; r < cpus_->size(); ++r) {
        map[r] = counts.row_of((*cpus_)[r]);
      }
      binding.row_map = map;
    }
  }
  es.batch.evaluate(binding, cpus_->size(), out.scratch(),
                    out.mutable_values());
}

const BatchProgram& PerfCtr::fused_metrics(int set) const {
  LIKWID_REQUIRE(set >= 0 && set < num_event_sets(), "event set out of range");
  return sets_[static_cast<std::size_t>(set)].batch;
}

std::vector<PerfCtr::MetricRow> PerfCtr::compute_metrics_for(
    int set, const CountSlab& counts, double fallback_seconds,
    bool wall_time) const {
  const auto& group = group_of(set);
  LIKWID_REQUIRE(group.has_value(),
                 "metrics require a performance group event set");
  const EventSet& es = sets_[static_cast<std::size_t>(set)];
  const std::size_t slots = es.assignments.size();
  LIKWID_REQUIRE(counts.empty() || counts.slots() == slots,
                 "count slab does not match the event set");

  std::vector<MetricRow> rows;
  rows.reserve(es.programs.size());
  for (const auto& m : es.programs) {
    MetricRow row;
    row.name_id = m.name_id;
    row.cpus = cpus_;
    row.values.resize(cpus_->size());
    rows.push_back(std::move(row));
  }

  // Register file: the set's slots, then the built-ins `time` and `clock`.
  std::vector<double> regs(slots + 2, 0.0);
  regs[slots + 1] = clock_hz();
  for (std::size_t r = 0; r < cpus_->size(); ++r) {
    const int cpu = (*cpus_)[r];
    // Counts default to 0 for cpus the slab does not cover (e.g. cores
    // that never entered a marker region), so metrics still evaluate.
    const int crow = counts.empty() ? -1 : counts.row_of(cpu);
    if (crow >= 0) {
      const std::span<const double> src =
          counts.row(static_cast<std::size_t>(crow));
      std::copy(src.begin(), src.end(), regs.begin());
    } else {
      std::fill(regs.begin(), regs.begin() + static_cast<std::ptrdiff_t>(slots),
                0.0);
    }
    // Runtime: derived from core cycles when the set counts them (the
    // busy-time semantic), else the caller's fallback / measured wall time.
    double time = fallback_seconds >= 0 ? fallback_seconds
                                        : es.results.measured_seconds;
    if (!wall_time && es.cycles_slot >= 0) {
      time = regs[static_cast<std::size_t>(es.cycles_slot)] / clock_hz();
    }
    regs[slots] = time;
    for (std::size_t m = 0; m < es.programs.size(); ++m) {
      rows[m].values[r] = es.programs[m].program.evaluate(regs);
    }
  }
  return rows;
}

}  // namespace likwid::core
