// sampling.hpp — event-based sampling on top of the counting machinery,
// built to substantiate the paper's Section II-A design argument:
//
//   "There are generally two options for using hardware performance
//    counter data: Either event counts are collected over the runtime of
//    an application ... or overflowing hardware counters can generate
//    interrupts, which can be used for IP or call-stack sampling. The
//    latter option enables a very fine-grained view ... (limited only by
//    the inherent statistical errors). However, the first option is
//    sufficient in many cases and also practically overhead-free. This is
//    why it was chosen as the underlying principle for likwid-perfCtr."
//
// SamplingProfiler emulates the interrupt-driven option: a hardware
// counter overflows every `period` events and each overflow costs one
// interrupt (whose cycle cost the caller charges to the application).
// Comparing its estimate quality and overhead against wrapper-mode
// counting is bench/abl_sampling_overhead — the quantified version of the
// paragraph above. This is an ablation harness, not a feature of the
// published tool.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/perfctr.hpp"

namespace likwid::core {

class SamplingProfiler {
 public:
  /// Sample the event at `assignment_index` of `ctr`'s current set on
  /// `cpu`, one sample per `period` events. `ctr` must be configured and
  /// started; it must not rotate sets while the profiler is attached.
  /// `interrupt_cycles` is the cost of one overflow interrupt (PMI entry,
  /// handler, IP capture, return) charged per sample.
  SamplingProfiler(PerfCtr& ctr, int cpu, int assignment_index,
                   std::uint64_t period, double interrupt_cycles = 2000.0);

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Poll the counter (the analog of the overflow interrupt firing since
  /// the last poll) and attribute any new samples to `label` — the IP /
  /// call-site bucket a real profiler would record. Polling granularity
  /// bounds attribution accuracy exactly like interrupt latency does.
  void poll(const std::string& label);

  /// Number of overflow interrupts so far.
  std::uint64_t samples() const { return samples_; }

  /// The profiler's estimate of the total event count: samples x period.
  /// Always an undercount; the residue below one period is still pending.
  double estimated_count() const {
    return static_cast<double>(samples_) *
           static_cast<double>(period_);
  }

  /// Time the overflow interrupts stole from the application.
  double overhead_seconds() const;

  /// Samples per attribution label (the "flat profile").
  const std::map<std::string, std::uint64_t>& histogram() const {
    return histogram_;
  }

  std::uint64_t period() const { return period_; }

 private:
  PerfCtr& ctr_;
  int cpu_;
  int index_;
  std::uint64_t period_;
  double interrupt_cycles_;
  CounterSnapshot last_;
  double pending_ = 0;  ///< events since the last overflow
  std::uint64_t samples_ = 0;
  std::map<std::string, std::uint64_t> histogram_;
};

/// IntervalSampler — the reusable step/poll hook behind every continuous
/// consumer of the counting machinery (likwid-perfctr's timeline mode, the
/// likwid-agent monitoring daemon). Each poll() closes the current
/// measurement interval: it reads the counter deltas accrued since the
/// previous poll of the same event set, evaluates the derived metrics over
/// the interval's wall time, and leaves the counters running — optionally
/// rotated to the next set for interval-grained multiplexing.
///
/// Thread-safety / reentrancy: a sampler is single-threaded, like the
/// PerfCtr it wraps — poll() mutates both the sampler's interval state
/// (prev_, last_time_) and the counters (stop/start/rotate), so exactly
/// one thread may drive a given (PerfCtr, IntervalSampler) pair, and
/// poll() must not be re-entered while a poll is in flight (it is not a
/// signal-safe hook). Distinct samplers over distinct PerfCtrs are fully
/// independent — that independence is what lets the fleet scheduler poll
/// one sampler per node from parallel workers. poll() carries a lock-free
/// tripwire that throws Error(kInvalidState) on observed overlap.
class IntervalSampler {
 public:
  struct Interval {
    int set = 0;        ///< event set that was live during the interval
    double t_start = 0; ///< kernel time when the interval opened
    double t_end = 0;   ///< kernel time of the closing poll
    /// Counts accrued since the set's previous poll (cpu row x slot).
    CountSlab counts;
    /// Derived metrics over `counts` and the interval's wall time,
    /// evaluated by the set's fused BatchProgram (empty for custom sets,
    /// which have no formulas). A reusable buffer: poll_into() refills it
    /// in place, so a long-lived Interval stops allocating once warm.
    MetricBatch metrics;

    double seconds() const { return t_end - t_start; }
  };

  /// `ctr` must be configured and outlive the sampler. The counters may be
  /// started after construction; the first interval opens at construction
  /// time, but poll() requires running counters.
  explicit IntervalSampler(PerfCtr& ctr);

  IntervalSampler(const IntervalSampler&) = delete;
  IntervalSampler& operator=(const IntervalSampler&) = delete;

  /// Close the interval and restart measurement. With `rotate`, the next
  /// interval measures the next event set (multiplexing at interval
  /// granularity); a rotated set's metrics are still evaluated against the
  /// full wall interval, so its rates match what extrapolation reports.
  Interval poll(bool rotate = false);

  /// poll() into a caller-owned Interval. The steady-state form: every
  /// buffer (counts, metric batch, scratch) is refilled in place, so a
  /// monitoring loop that reuses one Interval allocates nothing per poll
  /// once every set has been seen (tests/alloc_steadystate_test.cpp holds
  /// this to zero with a counting allocator).
  void poll_into(Interval& iv, bool rotate = false);

  PerfCtr& ctr() { return ctr_; }

 private:
  PerfCtr& ctr_;
  double last_time_;
  /// Cumulative counts of each set as of its previous poll (empty slab
  /// until a set's first poll).
  std::vector<CountSlab> prev_;
  /// Overlap tripwire: set while a poll is in flight.
  std::atomic<bool> polling_{false};
};

}  // namespace likwid::core
