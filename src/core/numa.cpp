#include "core/numa.hpp"

#include <cmath>

#include "util/status.hpp"

namespace likwid::core {

int NumaTopology::domain_of(int os_id) const {
  for (const auto& d : domains) {
    for (const int cpu : d.processors) {
      if (cpu == os_id) return d.id;
    }
  }
  throw_error(ErrorCode::kNotFound,
              "no NUMA domain contains cpu " + std::to_string(os_id));
}

NumaTopology probe_numa(const ossim::SimKernel& kernel) {
  const auto& machine = kernel.machine();
  const auto& spec = machine.spec();
  NumaTopology topo;
  const int domains = spec.numa_domains();
  // ACPI SLIT convention: local distance 10; remote scaled by the access
  // penalty (penalty 0.7 -> distance ~ 10/0.7 ~ 14... capped to >= 11;
  // real two-socket Nehalem boxes report 21).
  const int remote_distance = spec.memory.remote_penalty > 0
                                  ? std::max(11, static_cast<int>(std::lround(
                                                     10.0 /
                                                     spec.memory.remote_penalty)))
                                  : 10;
  for (int d = 0; d < domains; ++d) {
    NumaDomain domain;
    domain.id = d;
    domain.processors = machine.cpus_of_socket(d);
    domain.memory_total_gb = 12.0;  // model constant: 12 GB per socket
    domain.memory_free_gb = 10.5;
    domain.distances.resize(static_cast<std::size_t>(domains));
    for (int o = 0; o < domains; ++o) {
      domain.distances[static_cast<std::size_t>(o)] =
          o == d ? 10 : remote_distance;
    }
    topo.domains.push_back(std::move(domain));
  }
  return topo;
}

}  // namespace likwid::core
