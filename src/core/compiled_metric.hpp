// compiled_metric.hpp — flat postfix programs for derived-metric formulas.
//
// A parsed MetricExpr is a shared_ptr AST whose evaluation walks pointers
// and looks every identifier up in a string-keyed map — fine for one-shot
// reporting, far too heavy for the monitoring hot loop that evaluates every
// group formula for every cpu on every sampling interval. compile() lowers
// the AST once into a CompiledMetric: a flat vector of postfix instructions
// whose variables were resolved to register indices at compile (group
// setup) time. evaluate() is then a tight loop over a std::span<const
// double> register file — no hashing, no allocation, no recursion.
//
// The AST path stays as the parse front-end and as the differential-testing
// oracle (tests/compiled_metric_test.cpp fuzzes one against the other).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace likwid::core {

class MetricExpr;
struct MetricCompiler;

class CompiledMetric {
 public:
  /// Evaluate against a register file; reg indices were bound at compile
  /// time, so `regs` only has to be as long as the largest bound index + 1.
  /// Division by zero yields 0, matching the AST evaluator (likwid prints 0
  /// for metrics whose denominator event did not fire).
  double evaluate(std::span<const double> regs) const noexcept;

  /// Instruction count (diagnostics / tests).
  std::size_t size() const noexcept { return code_.size(); }

  /// Deepest operand-stack use of evaluate(); bounded by kMaxStack.
  int max_stack_depth() const noexcept { return max_depth_; }

  /// One division whose divisor the static analysis could not prove
  /// nonzero. evaluate() defines x/0 = 0, so such a division silently
  /// reports 0 instead of the intended ratio — worth a diagnostic at
  /// group-definition time (likwid-lint's zero-division check).
  struct DivisionRisk {
    /// The divisor is PROVABLY always zero (e.g. a literal 0, or a value
    /// multiplied by one): the metric can only ever report 0.
    bool certain = false;
    /// The divisor contains a live subtraction, so it can cancel to zero
    /// even when every input register is nonzero.
    bool cancellation = false;
    /// Registers feeding the divisor subexpression, ascending, deduped
    /// (callers map them back to event names for the message).
    std::vector<std::int32_t> registers;
  };

  /// Abstract interpretation over the postfix program: walk it once with
  /// a may-be-zero/always-zero/nonnegative lattice per stack slot and
  /// report every kDiv whose divisor may be zero. `nonzero_regs[i]` marks
  /// register i as guaranteed nonzero (time, clock, always-advancing
  /// fixed counters); out-of-range registers are assumed maybe-zero.
  /// Registers are otherwise assumed nonnegative (they carry counter
  /// values), which lets `a + b` stay nonzero when either side is.
  std::vector<DivisionRisk> division_risks(
      const std::vector<bool>& nonzero_regs) const;

  /// Operand stack ceiling; compile() rejects deeper programs with
  /// Error(kResourceExhausted). Group formulas are tiny — a program this
  /// deep would need >60 nested parentheses.
  static constexpr int kMaxStack = 64;

 private:
  friend class MetricExpr;     ///< compile() is the only constructor path
  friend struct MetricCompiler;  ///< the AST-lowering pass (metric_expr.cpp)
  friend class BatchProgram;   ///< fuses programs into step DAGs (batch_program.hpp)

  enum class Op : std::uint8_t {
    kPushConst,  ///< push `value`
    kPushReg,    ///< push regs[`reg`]
    kAdd,
    kSub,
    kMul,
    kDiv,  ///< x/0 -> 0
    kNeg,
  };

  struct Instr {
    Op op;
    std::int32_t reg = 0;
    double value = 0;
  };

  std::vector<Instr> code_;
  int max_depth_ = 0;
};

}  // namespace likwid::core
