#include "core/name_table.hpp"

#include "util/status.hpp"

namespace likwid::core {

NameTable& NameTable::instance() {
  static NameTable table;
  return table;
}

NameId NameTable::intern(std::string_view name) {
  const util::MutexLock lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

NameId NameTable::find(std::string_view name) const noexcept {
  const util::MutexLock lock(mutex_);
  const auto it = index_.find(name);
  return it == index_.end() ? kInvalidNameId : it->second;
}

const std::string& NameTable::name(NameId id) const {
  const util::MutexLock lock(mutex_);
  if (id < 0 || static_cast<std::size_t>(id) >= names_.size()) {
    throw_error(ErrorCode::kNotFound,
                "name id " + std::to_string(id) + " was never interned");
  }
  return names_[static_cast<std::size_t>(id)];
}

std::size_t NameTable::size() const noexcept {
  const util::MutexLock lock(mutex_);
  return names_.size();
}

}  // namespace likwid::core
