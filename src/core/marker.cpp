#include "core/marker.hpp"

#include "util/status.hpp"

namespace likwid::core {

MarkerSession::MarkerSession(PerfCtr& ctr, int num_threads, int num_regions)
    : ctr_(ctr), num_threads_(num_threads), max_regions_(num_regions) {
  LIKWID_REQUIRE(num_threads >= 1, "markerInit: need at least one thread");
  LIKWID_REQUIRE(num_regions >= 1, "markerInit: need at least one region");
  open_.resize(static_cast<std::size_t>(num_threads));
}

int MarkerSession::register_region(const std::string& name) {
  LIKWID_REQUIRE(!closed_, "markerRegisterRegion after markerClose");
  LIKWID_REQUIRE(!name.empty(), "empty region name");
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].name == name) return static_cast<int>(i);
  }
  if (static_cast<int>(regions_.size()) >= max_regions_) {
    throw_error(ErrorCode::kResourceExhausted,
                "more regions than declared in likwid_markerInit");
  }
  RegionResults r;
  r.name = name;
  r.event_set = ctr_.current_set();
  r.counts = ctr_.make_slab(r.event_set);
  regions_.push_back(std::move(r));
  return static_cast<int>(regions_.size()) - 1;
}

void MarkerSession::start_region(int thread_id, int core_id) {
  LIKWID_REQUIRE(!closed_, "markerStartRegion after markerClose");
  LIKWID_REQUIRE(thread_id >= 0 && thread_id < num_threads_,
                 "thread id out of range");
  OpenRegion& slot = open_[static_cast<std::size_t>(thread_id)];
  if (slot.open) {
    throw_error(ErrorCode::kInvalidState,
                "nested or overlapping marker regions are not allowed");
  }
  slot.snapshot = ctr_.snapshot(core_id);
  slot.start_seconds = ctr_.kernel().now();
  slot.core_id = core_id;
  slot.open = true;
}

void MarkerSession::stop_region(int thread_id, int core_id, int region_id) {
  LIKWID_REQUIRE(!closed_, "markerStopRegion after markerClose");
  LIKWID_REQUIRE(thread_id >= 0 && thread_id < num_threads_,
                 "thread id out of range");
  LIKWID_REQUIRE(region_id >= 0 &&
                     region_id < static_cast<int>(regions_.size()),
                 "unregistered region id");
  OpenRegion& slot = open_[static_cast<std::size_t>(thread_id)];
  if (!slot.open) {
    throw_error(ErrorCode::kInvalidState,
                "markerStopRegion without a matching start");
  }
  LIKWID_REQUIRE(slot.core_id == core_id,
                 "region started and stopped on different cores");

  const CounterSnapshot after = ctr_.snapshot(core_id);
  const std::vector<double> delta = ctr_.snapshot_delta(slot.snapshot, after);
  RegionResults& region = regions_[static_cast<std::size_t>(region_id)];
  // The slab's slots are the registration-time set's assignments; deltas
  // from a rotated set would land in slots labeled with other events.
  if (region.event_set != ctr_.current_set()) {
    throw_error(ErrorCode::kInvalidState,
                "region '" + region.name +
                    "' stopped under a different event set than it was "
                    "registered with (marker regions do not multiplex)");
  }
  // Regions may run on cores outside the measured -c list (unpinned
  // threads); their counts never reach any report, so only measured cores
  // accumulate. The elapsed time below is kept for every core — it feeds
  // the region's wall-time estimate.
  const int row = region.counts.row_of(core_id);
  if (row >= 0) {
    const std::span<double> counts =
        region.counts.row(static_cast<std::size_t>(row));
    for (std::size_t i = 0; i < delta.size(); ++i) counts[i] += delta[i];
  }
  region.seconds[core_id] += ctr_.kernel().now() - slot.start_seconds;
  region.call_count += 1;
  slot.open = false;
}

void MarkerSession::close() {
  for (const auto& slot : open_) {
    if (slot.open) {
      throw_error(ErrorCode::kInvalidState,
                  "markerClose with a region still open");
    }
  }
  closed_ = true;
}

const MarkerSession::RegionResults& MarkerSession::region(int region_id) const {
  LIKWID_REQUIRE(region_id >= 0 &&
                     region_id < static_cast<int>(regions_.size()),
                 "unregistered region id");
  return regions_[static_cast<std::size_t>(region_id)];
}

void MarkerEnv::bind(PerfCtr* ctr, std::function<int()> current_cpu) {
  LIKWID_REQUIRE(ctr != nullptr, "null PerfCtr");
  LIKWID_REQUIRE(current_cpu != nullptr, "null current_cpu callback");
  if (ctr_ != nullptr) {
    throw_error(ErrorCode::kInvalidState,
                "marker environment is already bound by '" + owner_ + "'");
  }
  ctr_ = ctr;
  current_cpu_ = std::move(current_cpu);
}

void MarkerEnv::unbind() noexcept {
  session_.reset();
  ctr_ = nullptr;
  current_cpu_ = nullptr;
}

void MarkerEnv::init(int num_threads, int num_regions) {
  if (ctr_ == nullptr) {
    throw_error(ErrorCode::kInvalidState,
                "likwid_markerInit: not running under likwid-perfctr -m");
  }
  LIKWID_REQUIRE(session_ == nullptr, "likwid_markerInit called twice");
  session_ = std::make_unique<MarkerSession>(*ctr_, num_threads, num_regions);
}

MarkerSession& MarkerEnv::require_session(const char* what) const {
  if (session_ == nullptr) {
    throw_error(ErrorCode::kInvalidArgument,
                std::string(what) + " before likwid_markerInit");
  }
  return *session_;
}

int MarkerEnv::register_region(const std::string& name) {
  return require_session("likwid_markerRegisterRegion").register_region(name);
}

void MarkerEnv::start_region(int thread_id, int core_id) {
  require_session("likwid_markerStartRegion").start_region(thread_id, core_id);
}

void MarkerEnv::stop_region(int thread_id, int core_id, int region_id) {
  require_session("likwid_markerStopRegion")
      .stop_region(thread_id, core_id, region_id);
}

void MarkerEnv::close() { require_session("likwid_markerClose").close(); }

int MarkerEnv::current_cpu() const {
  LIKWID_REQUIRE(current_cpu_ != nullptr, "marker environment not bound");
  return current_cpu_();
}

}  // namespace likwid::core
